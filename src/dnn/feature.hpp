// The activation value that flows between layers: either an NCHW tensor
// (convolutional nets) or a (features x tokens) matrix (transformers /
// post-pooling heads).
#pragma once

#include "core/config.hpp"
#include "tensor/matrix.hpp"
#include "tensor/tensor4d.hpp"

namespace tasd::dnn {

/// Tagged union of the two activation shapes.
class Feature {
 public:
  Feature() = default;
  explicit Feature(Tensor4D t) : tensor_(std::move(t)), is_tensor_(true) {}
  explicit Feature(MatrixF m) : matrix_(std::move(m)), is_tensor_(false) {}

  [[nodiscard]] bool is_tensor() const { return is_tensor_; }
  [[nodiscard]] const Tensor4D& tensor() const;
  [[nodiscard]] Tensor4D& tensor();
  [[nodiscard]] const MatrixF& matrix() const;
  [[nodiscard]] MatrixF& matrix();

  /// Total element count.
  [[nodiscard]] Index size() const;

  /// Fraction of zero elements.
  [[nodiscard]] double sparsity() const;

 private:
  Tensor4D tensor_;
  MatrixF matrix_;
  bool is_tensor_ = false;
};

/// Apply a TASD series approximation to an activation tensor with blocks
/// running along the channel dimension at every (batch, y, x) position —
/// the layout the TTC's TASD units produce for the next layer (paper
/// Fig. 10). Returns the approximated tensor.
Tensor4D tasd_channelwise(const Tensor4D& t, const TasdConfig& config);

/// Same for a (features x tokens) matrix: blocks run along the feature
/// dimension independently for each token (column).
MatrixF tasd_featurewise(const MatrixF& x, const TasdConfig& config);

}  // namespace tasd::dnn
