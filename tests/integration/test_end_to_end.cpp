// Integration tests: the full TASDER pipeline from model to accelerator
// simulation, crossing every module boundary.
#include <gtest/gtest.h>

#include "accel/network_sim.hpp"
#include "dnn/builders.hpp"
#include "dnn/pruning.hpp"
#include "tasder/framework.hpp"
#include "tasder/workload_opt.hpp"

namespace tasd {
namespace {

TEST(EndToEnd, SparseResnetTasdwToAccelSim) {
  // 1. Build + prune a twin model; 2. run TASDER (quality-gated);
  // 3. carry the decisions to the full-scale workload; 4. simulate.
  dnn::ConvNetOptions o;
  o.input_hw = 8;
  o.width_mult = 0.125;
  o.num_classes = 10;
  dnn::Model model = dnn::make_resnet(50, o);
  (void)dnn::prune_unstructured(model, 0.95);

  const auto eval = dnn::EvalSet::images(32, 8, 3, 601);
  const auto calib = dnn::EvalSet::images(8, 8, 3, 602);
  const auto ref = dnn::predict(model, eval);
  const auto hw =
      tasder::hw_profile_from(accel::ArchConfig::ttc_vegeta_m8());
  const auto result = tasder::optimize_model(model, hw, calib, eval, ref);
  EXPECT_EQ(result.mode, tasder::TasderMode::kWeights);
  EXPECT_GE(result.achieved_agreement, 0.99);
  // Paper: ~49 % MAC reduction for layer-wise TASD-W; expect > 25 % here.
  EXPECT_LT(result.mac_fraction, 0.75);

  // Full-scale counterpart through the accelerator model.
  const auto net = dnn::resnet50_workload(true, 42);
  const auto execs = tasder::optimize_workload(net, hw);
  const auto ttc = accel::ArchConfig::ttc_vegeta_m8();
  const auto tc = accel::ArchConfig::dense_tc();
  const auto sim = accel::simulate_network(ttc, execs, net.name);
  const auto base = accel::simulate_network(
      tc, tasder::plain_executions(net), net.name);
  EXPECT_LT(accel::normalized_edp(sim, base), 0.5);
}

TEST(EndToEnd, DenseBertTasdaKeepsQualityAndSavesEdp) {
  dnn::TransformerOptions o;
  o.dim = 32;
  o.layers = 2;
  o.heads = 2;
  o.num_classes = 10;
  dnn::Model model = dnn::make_bert(o);
  const auto eval = dnn::EvalSet::tokens(32, 32, 8, 603);
  const auto calib = dnn::EvalSet::tokens(8, 32, 8, 604);
  const auto ref = dnn::predict(model, eval);
  const auto hw =
      tasder::hw_profile_from(accel::ArchConfig::ttc_vegeta_m8());
  const auto result = tasder::optimize_model(model, hw, calib, eval, ref);
  EXPECT_EQ(result.mode, tasder::TasderMode::kActivations);
  EXPECT_GE(result.achieved_agreement, 0.99);

  const auto net = dnn::bert_workload(false, 42);
  const auto execs = tasder::optimize_workload(net, hw);
  const auto sim = accel::simulate_network(
      accel::ArchConfig::ttc_vegeta_m8(), execs, net.name);
  const auto base = accel::simulate_network(
      accel::ArchConfig::dense_tc(), tasder::plain_executions(net), net.name);
  EXPECT_LT(accel::normalized_edp(sim, base), 1.0);
}

TEST(EndToEnd, Figure12OrderingHolds) {
  // The qualitative shape of Fig. 12 on the sparse ResNet-50 workload:
  // TTC-VEGETA-M8 < TTC-STC-M4 < TC, and DSTC < TC.
  const auto net = dnn::resnet50_workload(true, 42);
  const auto tc = accel::ArchConfig::dense_tc();
  const auto base =
      accel::simulate_network(tc, tasder::plain_executions(net), net.name);

  auto edp_of = [&](const accel::ArchConfig& arch) {
    const auto execs =
        tasder::optimize_workload(net, tasder::hw_profile_from(arch));
    return accel::normalized_edp(
        accel::simulate_network(arch, execs, net.name), base);
  };

  const double dstc = edp_of(accel::ArchConfig::dstc());
  const double stc_m4 = edp_of(accel::ArchConfig::ttc_stc_m4());
  const double vegeta_m8 = edp_of(accel::ArchConfig::ttc_vegeta_m8());
  EXPECT_LT(dstc, 1.0);
  EXPECT_LT(stc_m4, 1.0);
  EXPECT_LT(vegeta_m8, stc_m4);
}

TEST(EndToEnd, PlainVegetaGainsNothingOnUnstructuredModel) {
  // Fig. 19 ablation: structured HW without TASDER cannot exploit
  // unstructured sparsity.
  const auto net = dnn::resnet50_workload(true, 42);
  const auto vegeta = accel::ArchConfig::vegeta_m8_no_tasd();
  const auto tc = accel::ArchConfig::dense_tc();
  // No TASDER: plain executions on both.
  const auto sim_v = accel::simulate_network(
      vegeta, tasder::plain_executions(net), net.name);
  const auto sim_tc =
      accel::simulate_network(tc, tasder::plain_executions(net), net.name);
  EXPECT_NEAR(accel::normalized_edp(sim_v, sim_tc), 1.0, 1e-9);
}

}  // namespace
}  // namespace tasd
