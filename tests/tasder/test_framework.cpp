#include "tasder/framework.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/plan_cache.hpp"
#include "dnn/builders.hpp"
#include "dnn/pruning.hpp"
#include "tensor/generator.hpp"

namespace tasd::tasder {
namespace {

dnn::ConvNetOptions tiny() {
  dnn::ConvNetOptions o;
  o.input_hw = 8;
  o.width_mult = 0.125;
  o.num_classes = 10;
  return o;
}

TEST(Framework, SparseModelRoutedToTasdW) {
  dnn::Model model = dnn::make_resnet(18, tiny());
  (void)dnn::prune_unstructured(model, 0.92);
  const auto calib = dnn::EvalSet::images(8, 8, 3, 401);
  const auto eval = dnn::EvalSet::images(32, 8, 3, 402);
  const auto ref = dnn::predict(model, eval);
  const auto hw = hw_profile_from(accel::ArchConfig::ttc_vegeta_m8());
  const auto r = optimize_model(model, hw, calib, eval, ref);
  EXPECT_EQ(r.mode, TasderMode::kWeights);
  EXPECT_GE(r.achieved_agreement, 0.99);
  EXPECT_LT(r.mac_fraction, 1.0);
}

TEST(Framework, DenseModelRoutedToTasdA) {
  dnn::Model model = dnn::make_resnet(18, tiny());
  const auto calib = dnn::EvalSet::images(8, 8, 3, 403);
  const auto eval = dnn::EvalSet::images(32, 8, 3, 404);
  const auto ref = dnn::predict(model, eval);
  const auto hw = hw_profile_from(accel::ArchConfig::ttc_vegeta_m8());
  const auto r = optimize_model(model, hw, calib, eval, ref);
  EXPECT_EQ(r.mode, TasderMode::kActivations);
  EXPECT_GE(r.achieved_agreement, 0.99);
}

TEST(Framework, DenseHardwareDoesNothing) {
  dnn::Model model = dnn::make_resnet(18, tiny());
  const auto calib = dnn::EvalSet::images(8, 8, 3, 405);
  const auto eval = dnn::EvalSet::images(16, 8, 3, 406);
  const auto ref = dnn::predict(model, eval);
  const auto hw = hw_profile_from(accel::ArchConfig::dense_tc());
  const auto r = optimize_model(model, hw, calib, eval, ref);
  EXPECT_EQ(r.mode, TasderMode::kNone);
  for (auto* l : model.gemm_layers()) {
    EXPECT_FALSE(l->tasd_w().has_value());
    EXPECT_FALSE(l->tasd_a().has_value());
  }
}

TEST(Framework, NoTasdUnitsMeansNoActivationMode) {
  dnn::Model model = dnn::make_resnet(18, tiny());  // dense weights
  const auto calib = dnn::EvalSet::images(8, 8, 3, 407);
  const auto eval = dnn::EvalSet::images(16, 8, 3, 408);
  const auto ref = dnn::predict(model, eval);
  const auto hw = hw_profile_from(accel::ArchConfig::vegeta_m8_no_tasd());
  const auto r = optimize_model(model, hw, calib, eval, ref);
  // Plain VEGETA cannot decompose dense activations dynamically.
  EXPECT_EQ(r.mode, TasderMode::kNone);
}

TEST(Framework, CompileProducesDeployableArtifact) {
  dnn::Model model = dnn::make_resnet(18, tiny());
  (void)dnn::prune_unstructured(model, 0.92);
  const auto calib = dnn::EvalSet::images(8, 8, 3, 409);
  const auto eval = dnn::EvalSet::images(32, 8, 3, 410);
  const auto ref = dnn::predict(model, eval);
  const auto hw = hw_profile_from(accel::ArchConfig::ttc_vegeta_m8());

  const auto compiled = compile(model, hw, calib, eval, ref);
  EXPECT_EQ(compiled.decision.mode, TasderMode::kWeights);
  EXPECT_EQ(compiled.network.layer_count(), model.gemm_layers().size());
  // The artifact binds exactly the layers TASD-W configured.
  std::size_t configured = 0;
  const auto layers = model.gemm_layers();
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const auto& bound = compiled.network.layer(i);
    EXPECT_EQ(bound.name, layers[i]->name());
    EXPECT_EQ(bound.config, layers[i]->tasd_w());
    if (layers[i]->tasd_w()) ++configured;
  }
  EXPECT_EQ(compiled.network.configured_count(), configured);
  EXPECT_GT(configured, 0u) << "a 92%-sparse model should convert layers";

  // Executing the artifact decomposes nothing further.
  Rng rng(411);
  const auto before = plan_cache().stats();
  const MatrixF input = random_dense(compiled.network.layer(0).k, 4,
                                     Dist::kNormalStd1, rng);
  const MatrixF out = compiled.network.run(0, input);
  EXPECT_EQ(out.rows(), compiled.network.layer(0).m);
  EXPECT_EQ(out.cols(), 4u);
  const auto after = plan_cache().stats();
  EXPECT_EQ(after.decompositions, before.decompositions);
}

TEST(Framework, CompileOnDenseHardwareBindsAllDense) {
  dnn::Model model = dnn::make_resnet(18, tiny());
  const auto calib = dnn::EvalSet::images(8, 8, 3, 412);
  const auto eval = dnn::EvalSet::images(16, 8, 3, 413);
  const auto ref = dnn::predict(model, eval);
  const auto hw = hw_profile_from(accel::ArchConfig::dense_tc());
  const auto compiled = compile(model, hw, calib, eval, ref);
  EXPECT_EQ(compiled.decision.mode, TasderMode::kNone);
  EXPECT_EQ(compiled.network.configured_count(), 0u);
  EXPECT_EQ(compiled.network.plan_bytes(), 0u);
  EXPECT_EQ(compiled.network.layer_count(), model.gemm_layers().size());
}

TEST(Framework, ModeNames) {
  TasderModelResult r;
  EXPECT_EQ(r.mode_name(), "none");
  r.mode = TasderMode::kWeights;
  EXPECT_EQ(r.mode_name(), "TASD-W");
  r.mode = TasderMode::kActivations;
  EXPECT_EQ(r.mode_name(), "TASD-A");
}

}  // namespace
}  // namespace tasd::tasder
