// Tests for DecompositionPlan (direct-compression decomposition) and the
// process-wide PlanCache: term equivalence with the dense-path
// decompose(), stats equivalence with approx_stats(), hit/miss/eviction
// accounting, and the zero-redecomposition guarantee.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/approx_stats.hpp"
#include "core/decompose.hpp"
#include "core/plan_cache.hpp"
#include "tensor/generator.hpp"

namespace tasd {
namespace {

MatrixF test_matrix(Index rows, Index cols, double density,
                    std::uint64_t seed) {
  Rng rng(seed);
  return random_unstructured(rows, cols, density, Dist::kNormalStd1, rng);
}

TEST(DecompositionPlanBuild, TermsDecompressToDensePathTerms) {
  for (const char* cfg_str : {"2:4", "4:8+1:8", "2:8+1:8", "1:4"}) {
    const auto cfg = TasdConfig::parse(cfg_str);
    const MatrixF m = test_matrix(17, 30, 0.5, 42);  // ragged K
    const auto dense_path = decompose(m, cfg);
    const auto plan = build_plan(m, cfg);

    ASSERT_EQ(plan.terms.size(), dense_path.terms.size()) << cfg_str;
    EXPECT_EQ(plan.rows, m.rows());
    EXPECT_EQ(plan.cols, m.cols());
    for (std::size_t i = 0; i < plan.terms.size(); ++i) {
      EXPECT_EQ(plan.terms[i].pattern(), dense_path.terms[i].pattern);
      // Same stored values, same order, same dense reconstruction.
      const auto compressed = dense_path.terms[i].compressed();
      EXPECT_EQ(plan.terms[i].values(), compressed.values());
      EXPECT_EQ(plan.terms[i].in_block_index(), compressed.in_block_index());
      EXPECT_EQ(plan.terms[i].block_offsets(), compressed.block_offsets());
      EXPECT_TRUE(plan.terms[i].to_dense() == dense_path.terms[i].dense);
    }
  }
}

TEST(DecompositionPlanBuild, ApproximationBitIdenticalToDensePath) {
  const auto cfg = TasdConfig::parse("4:8+2:8");
  const MatrixF m = test_matrix(23, 40, 0.7, 43);
  EXPECT_TRUE(build_plan(m, cfg).approximation() ==
              decompose(m, cfg).approximation());
}

TEST(DecompositionPlanBuild, StatsMatchDensePathApproxStats) {
  const auto cfg = TasdConfig::parse("4:8+1:8");
  const MatrixF m = test_matrix(19, 32, 0.6, 44);
  const ApproxStats expected = approx_stats(m, decompose(m, cfg));
  const ApproxStats got = build_plan(m, cfg).stats;
  EXPECT_EQ(got.original_nnz, expected.original_nnz);
  EXPECT_EQ(got.kept_nnz, expected.kept_nnz);
  EXPECT_EQ(got.dropped_nnz, expected.dropped_nnz);
  EXPECT_DOUBLE_EQ(got.original_magnitude, expected.original_magnitude);
  EXPECT_DOUBLE_EQ(got.dropped_magnitude, expected.dropped_magnitude);
  EXPECT_DOUBLE_EQ(got.kept_magnitude, expected.kept_magnitude);
  EXPECT_DOUBLE_EQ(got.mse, expected.mse);
  EXPECT_DOUBLE_EQ(got.rel_frobenius_error, expected.rel_frobenius_error);
}

TEST(DecompositionPlanBuild, NnzSumsStoredValues) {
  const auto cfg = TasdConfig::parse("2:4+1:4");
  const MatrixF m = test_matrix(8, 16, 0.9, 45);
  const auto plan = build_plan(m, cfg);
  Index expected = 0;
  for (const auto& t : plan.terms) expected += t.nnz();
  EXPECT_EQ(plan.nnz(), expected);
  EXPECT_EQ(plan.nnz(), static_cast<Index>(plan.stats.kept_nnz));
}

TEST(PlanCacheBehavior, SecondLookupIsAHitWithZeroDecompositions) {
  auto& cache = plan_cache();
  const auto cfg = TasdConfig::parse("2:4");
  const MatrixF m = test_matrix(12, 24, 0.5, 1001);

  const auto before = cache.stats();
  const auto p1 = cache.get_or_build(m, cfg);
  const auto mid = cache.stats();
  EXPECT_EQ(mid.decompositions, before.decompositions + 1);

  const auto p2 = cache.get_or_build(m, cfg);
  const auto after = cache.stats();
  EXPECT_EQ(after.hits, mid.hits + 1);
  EXPECT_EQ(after.decompositions, mid.decompositions)
      << "second lookup must not decompose again";
  EXPECT_EQ(p1.get(), p2.get()) << "same cached plan object";
}

TEST(PlanCacheBehavior, EqualContentDifferentObjectSharesEntry) {
  auto& cache = plan_cache();
  const auto cfg = TasdConfig::parse("2:4");
  const MatrixF a = test_matrix(10, 20, 0.4, 1002);
  const MatrixF b = a;  // distinct allocation, same contents
  const auto p1 = cache.get_or_build(a, cfg);
  const auto before = cache.stats();
  const auto p2 = cache.get_or_build(b, cfg);
  EXPECT_EQ(cache.stats().hits, before.hits + 1);
  EXPECT_EQ(p1.get(), p2.get());
}

TEST(PlanCacheBehavior, DifferentConfigOrContentMisses) {
  auto& cache = plan_cache();
  const MatrixF m = test_matrix(10, 16, 0.5, 1003);
  (void)cache.get_or_build(m, TasdConfig::parse("2:4"));
  const auto before = cache.stats();
  (void)cache.get_or_build(m, TasdConfig::parse("1:4"));
  EXPECT_EQ(cache.stats().misses, before.misses + 1);

  MatrixF changed = m;
  changed(0, 0) += 1.0F;
  const auto mid = cache.stats();
  (void)cache.get_or_build(changed, TasdConfig::parse("2:4"));
  EXPECT_EQ(cache.stats().misses, mid.misses + 1);
}

TEST(PlanCacheBehavior, LruEvictionAtCapacity) {
  PlanCache cache(2);
  const auto cfg = TasdConfig::parse("1:4");
  const MatrixF a = test_matrix(4, 8, 0.5, 2001);
  const MatrixF b = test_matrix(4, 8, 0.5, 2002);
  const MatrixF c = test_matrix(4, 8, 0.5, 2003);

  (void)cache.get_or_build(a, cfg);
  (void)cache.get_or_build(b, cfg);
  EXPECT_EQ(cache.size(), 2u);
  (void)cache.get_or_build(a, cfg);  // refresh a: b becomes LRU
  (void)cache.get_or_build(c, cfg);  // evicts b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  const auto before = cache.stats();
  (void)cache.get_or_build(a, cfg);
  EXPECT_EQ(cache.stats().hits, before.hits + 1) << "a survived";
  (void)cache.get_or_build(b, cfg);
  EXPECT_EQ(cache.stats().misses, before.misses + 1) << "b was evicted";
}

TEST(PlanCacheBehavior, ClearDropsPlansAndKeepsCounters) {
  PlanCache cache(8);
  const auto cfg = TasdConfig::parse("2:4");
  (void)cache.get_or_build(test_matrix(4, 8, 0.5, 3001), cfg);
  EXPECT_EQ(cache.size(), 1u);
  const auto stats = cache.stats();
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().misses, stats.misses);
  cache.reset_stats();
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(PlanCacheBehavior, InsertPreloadedAdoptsWithoutDecomposing) {
  PlanCache cache(8);
  const auto cfg = TasdConfig::parse("2:4");
  const MatrixF m = test_matrix(8, 16, 0.5, 5001);
  auto plan = std::make_shared<const DecompositionPlan>(build_plan(m, cfg));

  const auto resident = cache.insert_preloaded(m, plan);
  const auto stats = cache.stats();
  EXPECT_EQ(resident.get(), plan.get());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(stats.preloads, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.decompositions, 0u)
      << "adoption must count as neither hit, miss nor decomposition";

  // Later lookups of the same (matrix, config) hit the adopted entry.
  const auto p2 = cache.get_or_build(m, cfg);
  EXPECT_EQ(p2.get(), plan.get());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().decompositions, 0u);
}

TEST(PlanCacheBehavior, InsertPreloadedExistingEntryWins) {
  PlanCache cache(8);
  const auto cfg = TasdConfig::parse("2:4");
  const MatrixF m = test_matrix(8, 16, 0.5, 5002);
  const auto cached = cache.get_or_build(m, cfg);
  auto duplicate =
      std::make_shared<const DecompositionPlan>(build_plan(m, cfg));
  const auto resident = cache.insert_preloaded(m, duplicate);
  EXPECT_EQ(resident.get(), cached.get())
      << "a plan already resident keeps winning, preserving sharing";
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().preloads, 1u);
}

TEST(PlanCacheBehavior, InsertPreloadedRejectsMismatchedPlan) {
  PlanCache cache(8);
  const auto cfg = TasdConfig::parse("2:4");
  const MatrixF m = test_matrix(8, 16, 0.5, 5003);
  const MatrixF other = test_matrix(8, 24, 0.5, 5004);  // different shape
  auto plan = std::make_shared<const DecompositionPlan>(build_plan(m, cfg));
  EXPECT_THROW((void)cache.insert_preloaded(other, plan), Error);
  EXPECT_THROW((void)cache.insert_preloaded(m, nullptr), Error);
}

TEST(PlanCacheIntegration, ApproxStatsAndApproximateAreCached) {
  auto& cache = plan_cache();
  const auto cfg = TasdConfig::parse("4:8+1:8");
  const MatrixF m = test_matrix(14, 32, 0.6, 4001);

  (void)approx_stats(m, cfg);  // may miss (first sight of m)
  const auto before = cache.stats();
  (void)approx_stats(m, cfg);
  const MatrixF approx = approximate(m, cfg);
  const auto after = cache.stats();
  EXPECT_EQ(after.decompositions, before.decompositions)
      << "repeat stats/approximate calls must not re-decompose";
  EXPECT_GE(after.hits, before.hits + 2);
  EXPECT_TRUE(approx == decompose(m, cfg).approximation());
}

}  // namespace
}  // namespace tasd
