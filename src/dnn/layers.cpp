#include "dnn/layers.hpp"

#include <cmath>

#include "common/error.hpp"
#include "core/decompose.hpp"
#include "sparse/stats.hpp"
#include "tensor/gemm_ref.hpp"

namespace tasd::dnn {

// ---------------------------------------------------------------- GemmLayer

void GemmLayer::set_weight(MatrixF w) {
  TASD_CHECK_MSG(w.rows() == weight_.rows() && w.cols() == weight_.cols(),
                 "set_weight must preserve shape");
  weight_ = std::move(w);
  effective_weight_cache_.reset();
}

const MatrixF& GemmLayer::effective_weight() const {
  if (!tasd_w_) return weight_;
  if (!effective_weight_cache_)
    effective_weight_cache_ = approximate(weight_, *tasd_w_);
  return *effective_weight_cache_;
}

void GemmLayer::set_tasd_w(std::optional<TasdConfig> cfg) {
  tasd_w_ = std::move(cfg);
  effective_weight_cache_.reset();
}

// Magnitude fraction the pseudo-density heuristic preserves (paper §4.3
// uses "e.g. 99 %"). Our synthetic GELU activations are Gaussian-tailed —
// less skewed than real transformer activations with their outlier
// channels — so we preserve 95 % to keep the heuristic's selectivity
// (DESIGN.md, substitution table).
constexpr double kPseudoCoverage = 0.95;

void GemmLayer::record_forward(const GemmDims& dims,
                               const MatrixF& sample_operand,
                               double raw_density, double operand_density) {
  stats_.dims = dims;
  stats_.input_density = operand_density;
  stats_.raw_input_density = raw_density;
  stats_.input_pseudo_density =
      sparse::pseudo_density(sample_operand, kPseudoCoverage);
  ++stats_.forward_count;
}

namespace {

/// Compute per-channel (mean, 1/std) over (batch x spatial): `ys` holds
/// one GEMM result per batch item, (channels x positions). Whole-batch
/// statistics avoid zeroing out 1x1 feature maps.
std::vector<std::pair<float, float>> batch_norm_stats(
    const std::vector<MatrixF>& ys) {
  std::vector<std::pair<float, float>> stats;
  if (ys.empty()) return stats;
  const double eps = 1e-5;
  const Index rows = ys.front().rows();
  stats.reserve(rows);
  for (Index r = 0; r < rows; ++r) {
    double mean = 0.0;
    Index count = 0;
    for (const auto& y : ys) {
      for (float v : y.row(r)) mean += v;
      count += y.cols();
    }
    mean /= static_cast<double>(count);
    double var = 0.0;
    for (const auto& y : ys)
      for (float v : y.row(r)) var += (v - mean) * (v - mean);
    var /= static_cast<double>(count);
    stats.emplace_back(static_cast<float>(mean),
                       static_cast<float>(1.0 / std::sqrt(var + eps)));
  }
  return stats;
}

/// Apply frozen per-channel normalization.
void apply_norm_stats(const std::vector<std::pair<float, float>>& stats,
                      std::vector<MatrixF>& ys) {
  for (auto& y : ys) {
    for (Index r = 0; r < y.rows(); ++r) {
      const auto [mean, inv] = stats[r];
      for (float& v : y.row(r)) v = (v - mean) * inv;
    }
  }
}

/// LayerNorm per token (column) over features (rows), in place.
void normalize_cols(MatrixF& x) {
  const double eps = 1e-5;
  for (Index c = 0; c < x.cols(); ++c) {
    double mean = 0.0;
    for (Index r = 0; r < x.rows(); ++r) mean += x(r, c);
    mean /= static_cast<double>(x.rows());
    double var = 0.0;
    for (Index r = 0; r < x.rows(); ++r) {
      const double d = x(r, c) - mean;
      var += d * d;
    }
    var /= static_cast<double>(x.rows());
    const double inv = 1.0 / std::sqrt(var + eps);
    for (Index r = 0; r < x.rows(); ++r)
      x(r, c) = static_cast<float>((x(r, c) - mean) * inv);
  }
}

void apply_act_inplace(ActKind kind, MatrixF& x) {
  if (kind == ActKind::kNone) return;
  for (float& v : x.flat()) v = apply_act(kind, v);
}

}  // namespace

// -------------------------------------------------------------- Conv2dLayer

Conv2dLayer::Conv2dLayer(ConvShape shape, MatrixF weight, ActKind act,
                         bool batch_norm)
    : GemmLayer(std::move(weight), act), shape_(shape),
      batch_norm_(batch_norm) {
  TASD_CHECK_MSG(
      this->weight().rows() == shape_.out_channels &&
          this->weight().cols() ==
              shape_.in_channels * shape_.kernel_h * shape_.kernel_w,
      "conv weight must be (out_ch) x (in_ch*kh*kw)");
}

Feature Conv2dLayer::forward(const Feature& in) {
  const Tensor4D* input = &in.tensor();
  const double raw_density = 1.0 - input->sparsity();

  // Dynamic activation decomposition (the TASD layer of Fig. 7c).
  Tensor4D decomposed;
  if (tasd_a()) {
    decomposed = tasd_channelwise(*input, *tasd_a());
    input = &decomposed;
  }

  const Index oh = shape_.out_h(input->h());
  const Index ow = shape_.out_w(input->w());
  Tensor4D out(input->n(), shape_.out_channels, oh, ow);

  // Accumulate operand stats over the whole batch via a concatenated
  // "virtual" X operand; we track densities incrementally instead of
  // materializing it.
  double x_nnz = 0.0;
  double x_total = 0.0;
  MatrixF first_patches;  // kept for pseudo-density estimation
  std::vector<MatrixF> ys;
  ys.reserve(input->n());
  for (Index b = 0; b < input->n(); ++b) {
    MatrixF patches = im2col(*input, b, shape_);
    if (b == 0) first_patches = patches;
    x_nnz += static_cast<double>(patches.nnz());
    x_total += static_cast<double>(patches.size());
    ys.push_back(gemm_ref(effective_weight(), patches));
  }
  if (batch_norm_) {
    // Calibrate once (deployment-style frozen statistics), then reuse.
    if (bn_frozen_.empty()) bn_frozen_ = batch_norm_stats(ys);
    apply_norm_stats(bn_frozen_, ys);
  }
  for (Index b = 0; b < input->n(); ++b) {
    apply_act_inplace(act_, ys[b]);
    col2im_output(ys[b], b, oh, ow, out);
  }

  GemmDims dims{shape_.out_channels,
                shape_.in_channels * shape_.kernel_h * shape_.kernel_w,
                oh * ow * input->n()};
  record_forward(dims, first_patches, raw_density,
                 x_total > 0.0 ? x_nnz / x_total : 1.0);
  return Feature(std::move(out));
}

// -------------------------------------------------------------- LinearLayer

LinearLayer::LinearLayer(MatrixF weight, ActKind act, bool layer_norm)
    : GemmLayer(std::move(weight), act), layer_norm_(layer_norm) {}

Feature LinearLayer::forward(const Feature& in) {
  const MatrixF* x = &in.matrix();
  const double raw_density = 1.0 - x->sparsity();
  TASD_CHECK_MSG(x->rows() == weight().cols(),
                 "linear input features " << x->rows() << " != weight K "
                                          << weight().cols());
  MatrixF decomposed;
  if (tasd_a()) {
    decomposed = tasd_featurewise(*x, *tasd_a());
    x = &decomposed;
  }
  MatrixF y = gemm_ref(effective_weight(), *x);
  if (layer_norm_) normalize_cols(y);
  apply_act_inplace(act_, y);

  GemmDims dims{weight().rows(), weight().cols(), x->cols()};
  record_forward(dims, *x, raw_density, sparse::density(*x));
  return Feature(std::move(y));
}

// ----------------------------------------------------------------- ActLayer

Feature ActLayer::forward(const Feature& in) {
  if (in.is_tensor()) {
    Tensor4D t = in.tensor();
    for (float& v : t.flat()) v = apply_act(kind_, v);
    return Feature(std::move(t));
  }
  MatrixF m = in.matrix();
  for (float& v : m.flat()) v = apply_act(kind_, v);
  return Feature(std::move(m));
}

// ------------------------------------------------------------ MaxPool2Layer

Feature MaxPool2Layer::forward(const Feature& in) {
  const Tensor4D& t = in.tensor();
  TASD_CHECK_MSG(t.h() >= 2 && t.w() >= 2, "pooling needs H,W >= 2");
  const Index oh = t.h() / 2;
  const Index ow = t.w() / 2;
  Tensor4D out(t.n(), t.c(), oh, ow);
  for (Index n = 0; n < t.n(); ++n)
    for (Index c = 0; c < t.c(); ++c)
      for (Index y = 0; y < oh; ++y)
        for (Index x = 0; x < ow; ++x) {
          float m = t(n, c, 2 * y, 2 * x);
          m = std::max(m, t(n, c, 2 * y, 2 * x + 1));
          m = std::max(m, t(n, c, 2 * y + 1, 2 * x));
          m = std::max(m, t(n, c, 2 * y + 1, 2 * x + 1));
          out(n, c, y, x) = m;
        }
  return Feature(std::move(out));
}

// ------------------------------------------------------ GlobalAvgPoolLayer

Feature GlobalAvgPoolLayer::forward(const Feature& in) {
  const Tensor4D& t = in.tensor();
  MatrixF out(t.c(), t.n());
  const double denom = static_cast<double>(t.h() * t.w());
  for (Index n = 0; n < t.n(); ++n)
    for (Index c = 0; c < t.c(); ++c) {
      double acc = 0.0;
      for (Index y = 0; y < t.h(); ++y)
        for (Index x = 0; x < t.w(); ++x) acc += t(n, c, y, x);
      out(c, n) = static_cast<float>(acc / denom);
    }
  return Feature(std::move(out));
}

// ------------------------------------------------------------ ToTokensLayer

Feature ToTokensLayer::forward(const Feature& in) {
  const Tensor4D& t = in.tensor();
  MatrixF out(t.c(), t.n() * t.h() * t.w());
  for (Index n = 0; n < t.n(); ++n)
    for (Index y = 0; y < t.h(); ++y)
      for (Index x = 0; x < t.w(); ++x) {
        const Index tok = (n * t.h() + y) * t.w() + x;
        for (Index c = 0; c < t.c(); ++c) out(c, tok) = t(n, c, y, x);
      }
  return Feature(std::move(out));
}

// ------------------------------------------------------------ ResBlockLayer

ResBlockLayer::ResBlockLayer(std::vector<std::unique_ptr<Layer>> branch,
                             std::unique_ptr<Layer> project, ActKind out_act)
    : branch_(std::move(branch)), project_(std::move(project)),
      out_act_(out_act) {
  TASD_CHECK_MSG(!branch_.empty(), "residual branch must be non-empty");
}

Feature ResBlockLayer::forward(const Feature& in) {
  Feature main = branch_.front()->forward(in);
  for (std::size_t i = 1; i < branch_.size(); ++i)
    main = branch_[i]->forward(main);
  Feature skip = project_ ? project_->forward(in) : Feature(in.tensor());

  Tensor4D& a = main.tensor();
  const Tensor4D& b = skip.tensor();
  TASD_CHECK_MSG(a.size() == b.size(), "residual shape mismatch");
  auto fa = a.flat();
  auto fb = b.flat();
  for (Index i = 0; i < fa.size(); ++i)
    fa[i] = apply_act(out_act_,
                      fa[i] * kResidualBranchScale + fb[i] * kResidualSkipScale);
  return main;
}

void ResBlockLayer::collect_gemm_layers(std::vector<GemmLayer*>& out) {
  for (auto& l : branch_) l->collect_gemm_layers(out);
  if (project_) project_->collect_gemm_layers(out);
}

// ----------------------------------------------------------------- builders

namespace {

MatrixF he_init(Index rows, Index cols, Rng& rng) {
  MatrixF w(rows, cols);
  const double stddev = std::sqrt(2.0 / static_cast<double>(cols));
  for (float& v : w.flat()) v = static_cast<float>(rng.normal(0.0, stddev));
  return w;
}

}  // namespace

std::unique_ptr<Conv2dLayer> make_conv(Index in_ch, Index out_ch, Index kernel,
                                       Index stride, Index padding,
                                       ActKind act, Rng& rng,
                                       bool batch_norm) {
  ConvShape shape;
  shape.in_channels = in_ch;
  shape.out_channels = out_ch;
  shape.kernel_h = kernel;
  shape.kernel_w = kernel;
  shape.stride = stride;
  shape.padding = padding;
  return std::make_unique<Conv2dLayer>(
      shape, he_init(out_ch, in_ch * kernel * kernel, rng), act, batch_norm);
}

std::unique_ptr<LinearLayer> make_linear(Index in_features, Index out_features,
                                         ActKind act, Rng& rng,
                                         bool layer_norm) {
  return std::make_unique<LinearLayer>(he_init(out_features, in_features, rng),
                                       act, layer_norm);
}

}  // namespace tasd::dnn
