#include "accel/network_sim.hpp"

#include <cmath>

#include "common/error.hpp"

namespace tasd::accel {

NetworkSim simulate_network(const ArchConfig& arch,
                            const std::vector<LayerExecution>& layers,
                            const std::string& workload_name,
                            const EnergyTable& table) {
  NetworkSim net;
  net.arch_name = arch.name;
  net.workload_name = workload_name;
  for (const auto& exec : layers) {
    const LayerSim sim = simulate_layer(arch, exec, table);
    const double rep = static_cast<double>(exec.layer.repeat);
    net.cycles += sim.cycles * rep;
    net.effectual_macs += sim.effectual_macs * rep;
    net.slot_macs += sim.slot_macs * rep;
    for (std::size_t c = 0; c < kComponentCount; ++c) {
      net.energy_by_component[c] += sim.energy_pj[c] * rep;
      net.energy_pj += sim.energy_pj[c] * rep;
    }
  }
  return net;
}

double normalized_edp(const NetworkSim& sim, const NetworkSim& baseline) {
  TASD_CHECK_MSG(baseline.edp() > 0.0, "baseline EDP must be positive");
  return sim.edp() / baseline.edp();
}

double geomean(const std::vector<double>& values) {
  TASD_CHECK_MSG(!values.empty(), "geomean of empty set");
  double log_sum = 0.0;
  for (double v : values) {
    TASD_CHECK_MSG(v > 0.0, "geomean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace tasd::accel
