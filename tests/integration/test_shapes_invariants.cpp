// Cross-module invariants: the same TASD decision seen by the functional
// model, the perf model, and the runtime kernels must agree on the work
// it implies.
#include <gtest/gtest.h>

#include "accel/perf_model.hpp"
#include "common/rng.hpp"
#include "core/tasd_gemm.hpp"
#include "runtime/nm_gemm.hpp"
#include "tensor/generator.hpp"

namespace tasd {
namespace {

TEST(CrossModel, SlotMacsAgreeBetweenPerfModelAndConfig) {
  // Perf model's slot MACs == dense MACs x series slot density.
  dnn::GemmWorkload l;
  l.m = 128;
  l.k = 512;
  l.n = 64;
  l.weight_density = 0.1;
  l.act_density = 0.5;
  const auto arch = accel::ArchConfig::ttc_vegeta_m8();
  for (const char* cfg : {"1:8", "2:8", "4:8", "4:8+1:8", "4:8+2:8"}) {
    const auto series = TasdConfig::parse(cfg);
    accel::LayerExecution exec{l, series, {}, {}};
    const auto sim = simulate_layer(arch, exec);
    const double dense = static_cast<double>(l.macs());
    EXPECT_NEAR(sim.slot_macs / dense, series.max_density(), 0.01) << cfg;
  }
}

TEST(CrossModel, RuntimeNnzMatchesFunctionalKeptNnz) {
  // The compressed runtime kernel stores exactly the elements the
  // functional decomposition kept.
  Rng rng(7201);
  const MatrixF w = random_unstructured(64, 256, 0.1, Dist::kNormalStd1, rng);
  for (const char* cfg : {"1:8", "2:8", "4:8+1:8"}) {
    const auto d = decompose(w, TasdConfig::parse(cfg));
    const rt::TasdSeriesGemm kernel(d);
    EXPECT_EQ(kernel.nnz(), w.nnz() - d.residual.nnz()) << cfg;
  }
}

TEST(CrossModel, MacCountConsistency) {
  // tasd_gemm_macs (functional) == runtime nnz * N.
  Rng rng(7202);
  const MatrixF w = random_unstructured(32, 128, 0.2, Dist::kNormalStd1, rng);
  const auto d = decompose(w, TasdConfig::parse("2:8+1:8"));
  const rt::TasdSeriesGemm kernel(d);
  EXPECT_EQ(tasd_gemm_macs(d, 16), kernel.nnz() * 16);
}

TEST(CrossModel, WeightKeptFractionFeedsEnergyGating) {
  // Passing the measured kept fraction into the perf model must scale
  // MAC energy linearly.
  dnn::GemmWorkload l;
  l.m = 64;
  l.k = 256;
  l.n = 32;
  l.weight_density = 0.2;
  l.act_density = 1.0;
  const auto arch = accel::ArchConfig::ttc_vegeta_m8();
  accel::LayerExecution half{l, TasdConfig::parse("4:8"), {}, 0.10};
  accel::LayerExecution tenth{l, TasdConfig::parse("4:8"), {}, 0.02};
  const double e_half =
      simulate_layer(arch, half)
          .energy_pj[static_cast<std::size_t>(accel::Component::kMac)];
  const double e_tenth =
      simulate_layer(arch, tenth)
          .energy_pj[static_cast<std::size_t>(accel::Component::kMac)];
  EXPECT_NEAR(e_half / e_tenth, 5.0, 1e-6);
}

}  // namespace
}  // namespace tasd
