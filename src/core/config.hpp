// TASD series configuration (paper §3.1).
//
// A configuration is an ordered list of N:M patterns s1, s2, …, sn; term i
// is the si view of the running residual. "4:8+1:8" denotes a two-term
// series.
#pragma once

#include <string>
#include <vector>

#include "sparse/pattern.hpp"

namespace tasd {

/// Ordered TASD series configuration.
struct TasdConfig {
  std::vector<sparse::NMPattern> terms;

  TasdConfig() = default;
  explicit TasdConfig(std::vector<sparse::NMPattern> t);

  /// Parse "N:M+N:M+…" (e.g. "4:8+1:8"). Throws on malformed input.
  static TasdConfig parse(const std::string& text);

  /// "N:M+N:M" rendering. An empty config (order 0, i.e. "approximate
  /// everything away") renders as "<empty>".
  [[nodiscard]] std::string str() const;

  /// Number of terms (the series "order").
  [[nodiscard]] std::size_t order() const { return terms.size(); }

  /// Upper bound on the fraction of elements the series can retain:
  /// sum of Ni/Mi, clamped to 1.
  [[nodiscard]] double max_density() const;

  /// The paper's "approximated sparsity" of the series: 1 - max_density().
  [[nodiscard]] double approximated_sparsity() const {
    return 1.0 - max_density();
  }

  /// Decomposition cost in TASD-unit cycles per M-element block: the sum
  /// of Ni over terms (paper §4.4: "a TASD unit sequentially extracts the
  /// largest values", 4:8+1:8 takes 5 cycles/block).
  [[nodiscard]] int extraction_cycles_per_block() const;

  friend bool operator==(const TasdConfig&, const TasdConfig&) = default;
};

}  // namespace tasd
