// MUST NOT COMPILE under -Wthread-safety -Werror: calls a
// TASD_REQUIRES(mu) helper without holding mu — the
// "forgot the lock around the _locked helper" bug
// ("calling function ... requires holding mutex").
#include "common/sync.hpp"

namespace {

class Engine {
 public:
  int pending_locked() const TASD_REQUIRES(mu_) { return pending_; }

  int broken_probe() const {
    return pending_locked();  // mu_ not held: compile error
  }

 private:
  mutable tasd::Mutex mu_;
  int pending_ TASD_GUARDED_BY(mu_) = 0;
};

}  // namespace

int probe() {
  Engine e;
  return e.broken_probe();
}
