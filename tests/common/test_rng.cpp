#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tasd {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRespectsRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalHasRequestedMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(1.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ForkIsIndependent) {
  Rng parent(23);
  Rng child = parent.fork();
  // Child continues deterministically but differs from parent stream.
  Rng parent2(23);
  Rng child2 = parent2.fork();
  EXPECT_EQ(child.uniform(), child2.uniform());
}

}  // namespace
}  // namespace tasd
