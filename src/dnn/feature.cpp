#include "dnn/feature.hpp"

#include "common/error.hpp"
#include "core/decompose.hpp"

namespace tasd::dnn {

const Tensor4D& Feature::tensor() const {
  TASD_CHECK_MSG(is_tensor_, "Feature holds a matrix, not a tensor");
  return tensor_;
}
Tensor4D& Feature::tensor() {
  TASD_CHECK_MSG(is_tensor_, "Feature holds a matrix, not a tensor");
  return tensor_;
}
const MatrixF& Feature::matrix() const {
  TASD_CHECK_MSG(!is_tensor_, "Feature holds a tensor, not a matrix");
  return matrix_;
}
MatrixF& Feature::matrix() {
  TASD_CHECK_MSG(!is_tensor_, "Feature holds a tensor, not a matrix");
  return matrix_;
}

Index Feature::size() const {
  return is_tensor_ ? tensor_.size() : matrix_.size();
}

double Feature::sparsity() const {
  return is_tensor_ ? tensor_.sparsity() : matrix_.sparsity();
}

Tensor4D tasd_channelwise(const Tensor4D& t, const TasdConfig& config) {
  // Lay channels out contiguously per (n, y, x) position, approximate,
  // and scatter back.
  MatrixF rows(t.n() * t.h() * t.w(), t.c());
  for (Index n = 0; n < t.n(); ++n)
    for (Index y = 0; y < t.h(); ++y)
      for (Index x = 0; x < t.w(); ++x) {
        const Index r = (n * t.h() + y) * t.w() + x;
        for (Index c = 0; c < t.c(); ++c) rows(r, c) = t(n, c, y, x);
      }
  const MatrixF approx = approximate(rows, config);
  Tensor4D out(t.n(), t.c(), t.h(), t.w());
  for (Index n = 0; n < t.n(); ++n)
    for (Index y = 0; y < t.h(); ++y)
      for (Index x = 0; x < t.w(); ++x) {
        const Index r = (n * t.h() + y) * t.w() + x;
        for (Index c = 0; c < t.c(); ++c) out(n, c, y, x) = approx(r, c);
      }
  return out;
}

MatrixF tasd_featurewise(const MatrixF& x, const TasdConfig& config) {
  // Blocks along features (rows of x) per token (column): approximate the
  // transpose, whose rows are per-token feature vectors.
  return approximate(x.transposed(), config).transposed();
}

}  // namespace tasd::dnn
