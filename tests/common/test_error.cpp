#include "common/error.hpp"

#include <gtest/gtest.h>

namespace tasd {
namespace {

TEST(Error, CheckPassesOnTrue) { EXPECT_NO_THROW(TASD_CHECK(1 + 1 == 2)); }

TEST(Error, CheckThrowsOnFalse) {
  EXPECT_THROW(TASD_CHECK(false), Error);
}

TEST(Error, MessageContainsExpressionAndLocation) {
  try {
    TASD_CHECK_MSG(2 < 1, "custom detail " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("custom detail 42"), std::string::npos);
    EXPECT_NE(what.find("test_error.cpp"), std::string::npos);
  }
}

TEST(Error, IsRuntimeError) {
  EXPECT_THROW(TASD_CHECK(false), std::runtime_error);
}

}  // namespace
}  // namespace tasd
