#include "artifact/artifact.hpp"

#include <fstream>
#include <utility>

#include "artifact/format.hpp"
#include "common/error.hpp"
#include "tensor/io.hpp"

namespace tasd::rt {

namespace {

using artifact::crc32;

std::size_t align_up(std::size_t v, std::size_t alignment) {
  return (v + alignment - 1) / alignment * alignment;
}

[[noreturn]] void fail_corrupt(const std::string& path,
                               const std::string& what) {
  throw Error(Error::Code::kInternal,
              "artifact '" + path + "': " + what);
}

// ------------------------------------------------------------- writing

/// Serialize one bound layer into `w` (a fresh per-section buffer).
/// Variable-length payloads are padded to 8 bytes so every fixed-width
/// field keeps its natural alignment (mmap-friendliness contract).
void write_section(const CompiledNetwork::BoundLayer& l, io::ByteWriter& w) {
  w.u32(static_cast<std::uint32_t>(l.name.size()));
  w.bytes(l.name.data(), l.name.size());
  w.pad_to(8);
  w.u64(l.m);
  w.u64(l.k);
  w.u64(l.n);
  w.u32(l.plan ? 1 : 0);
  w.u32(0);  // reserved; keeps the weight array 8-aligned
  w.f32_array(l.weight.flat());
  if (!l.plan) return;

  const DecompositionPlan& plan = *l.plan;
  w.pad_to(8);
  w.u64(plan.config.terms.size());
  for (const auto& pattern : plan.config.terms) {
    w.u32(static_cast<std::uint32_t>(pattern.n));
    w.u32(static_cast<std::uint32_t>(pattern.m));
  }
  const ApproxStats& s = plan.stats;
  w.u64(s.original_nnz);
  w.u64(s.kept_nnz);
  w.u64(s.dropped_nnz);
  w.f64(s.original_magnitude);
  w.f64(s.kept_magnitude);
  w.f64(s.dropped_magnitude);
  w.f64(s.mse);
  w.f64(s.rel_frobenius_error);
  for (const auto& term : plan.terms) {
    w.u32(static_cast<std::uint32_t>(term.pattern().n));
    w.u32(static_cast<std::uint32_t>(term.pattern().m));
    w.u64(term.rows());
    w.u64(term.cols());
    w.u64(term.values().size());
    w.f32_array(term.values());
    w.bytes(term.in_block_index().data(), term.in_block_index().size());
    w.pad_to(8);
    w.u64(term.block_offsets().size());
    for (const Index off : term.block_offsets()) w.u64(off);
  }
}

/// Serialize a TuningResult into `w` (the optional trailing tuning
/// section). Strings are u32-length-prefixed and padded to 8 bytes so
/// the fixed-width fields keep their natural alignment.
void write_tuning(const TuningResult& tuning, io::ByteWriter& w) {
  const auto put_string = [&w](const std::string& s) {
    w.u32(static_cast<std::uint32_t>(s.size()));
    w.bytes(s.data(), s.size());
    w.pad_to(8);
  };
  const auto put_table = [&](const std::vector<TuneCandidate>& table) {
    w.u64(table.size());
    for (const auto& c : table) {
      put_string(c.kernel);
      w.f64(c.ms);
    }
  };
  put_string(tuning.host_signature);
  w.u64(tuning.layers.size());
  for (const auto& l : tuning.layers) {
    put_string(l.layer);
    w.u32(l.nm ? 1 : 0);
    w.u32(0);  // reserved; keeps the candidate counts 8-aligned
    put_table(l.single);
    put_string(l.chosen_single);
    put_table(l.batch);
    put_string(l.chosen_batch);
  }
}

// ------------------------------------------------------------- reading

struct TocEntry {
  ContentFingerprint fingerprint;
  std::uint64_t section_offset = 0;
  std::uint64_t section_size = 0;
  std::uint32_t section_crc = 0;
  std::uint32_t flags = 0;
};

struct ParsedToc {
  std::string name;
  std::vector<TocEntry> entries;
  std::uint32_t tuning_crc = 0;
  std::uint64_t tuning_offset = 0;  ///< 0 = no tuning section
  std::uint64_t tuning_size = 0;
};

/// Validate magic/version/header/TOC per the failure contract in
/// artifact.hpp. Section payloads are not touched.
ParsedToc parse_header_and_toc(std::span<const unsigned char> bytes,
                               const std::string& path) {
  if (bytes.size() < sizeof artifact::kMagic)
    fail_corrupt(path, "truncated before the magic");
  if (std::memcmp(bytes.data(), artifact::kMagic,
                  sizeof artifact::kMagic) != 0)
    throw Error(Error::Code::kFailedPrecondition,
                "'" + path + "' is not a TASD artifact (bad magic)");
  if (bytes.size() < artifact::kHeaderBytes)
    fail_corrupt(path, "truncated header");

  io::ByteReader header(bytes.subspan(0, artifact::kHeaderBytes),
                        "artifact '" + path + "' header");
  char magic[sizeof artifact::kMagic];
  header.bytes(magic, sizeof magic);
  const std::uint32_t version = header.u32();
  if (version != artifact::kVersion)
    throw Error(Error::Code::kFailedPrecondition,
                "artifact '" + path + "' is format version " +
                    std::to_string(version) + "; this reader speaks version " +
                    std::to_string(artifact::kVersion));
  const std::uint32_t header_bytes = header.u32();
  if (header_bytes != artifact::kHeaderBytes)
    fail_corrupt(path, "implausible header size field");
  const std::uint32_t layer_count = header.u32();
  const std::uint32_t name_len = header.u32();
  const std::uint64_t file_size = header.u64();
  const std::uint64_t toc_offset = header.u64();
  const std::uint32_t toc_crc = header.u32();
  const std::uint32_t tuning_crc = header.u32();
  const std::uint64_t tuning_offset = header.u64();
  const std::uint64_t tuning_size = header.u64();

  if (file_size != bytes.size())
    fail_corrupt(path, "file is " + std::to_string(bytes.size()) +
                           " bytes, header claims " +
                           std::to_string(file_size) + " (truncated?)");
  if (artifact::kHeaderBytes + std::uint64_t{name_len} > bytes.size())
    fail_corrupt(path, "network name extends past the file");
  ParsedToc toc;
  toc.name.assign(
      reinterpret_cast<const char*>(bytes.data()) + artifact::kHeaderBytes,
      name_len);
  // Tuning section bounds. Zero offset+size (what pre-tuning writers
  // left in the reserved bytes) means absent; anything half-present or
  // out of bounds means the header lies.
  toc.tuning_crc = tuning_crc;
  toc.tuning_offset = tuning_offset;
  toc.tuning_size = tuning_size;
  if (tuning_offset == 0 && tuning_size != 0)
    fail_corrupt(path, "tuning section has a size but no offset");
  if (tuning_offset != 0) {
    if (tuning_size == 0)
      fail_corrupt(path, "tuning section has an offset but no size");
    if (tuning_offset < artifact::kHeaderBytes ||
        tuning_offset + tuning_size < tuning_offset ||
        tuning_offset + tuning_size > bytes.size())
      fail_corrupt(path, "tuning section extends past the file");
  }

  const std::uint64_t toc_bytes =
      std::uint64_t{layer_count} * artifact::kTocEntryBytes;
  if (toc_offset < artifact::kHeaderBytes + name_len ||
      toc_offset + toc_bytes > bytes.size())
    fail_corrupt(path, "truncated table of contents");
  if (crc32(bytes.data() + toc_offset, toc_bytes) != toc_crc)
    fail_corrupt(path, "table-of-contents CRC mismatch");

  io::ByteReader r(bytes.subspan(toc_offset, toc_bytes),
                   "artifact '" + path + "' TOC");
  toc.entries.reserve(layer_count);
  const std::uint64_t sections_begin = toc_offset + toc_bytes;
  for (std::uint32_t i = 0; i < layer_count; ++i) {
    TocEntry e;
    e.fingerprint.lo = r.u64();
    e.fingerprint.hi = r.u64();
    e.section_offset = r.u64();
    e.section_size = r.u64();
    e.section_crc = r.u32();
    e.flags = r.u32();
    (void)r.u64();  // reserved
    if (e.section_offset < sections_begin ||
        e.section_offset + e.section_size > bytes.size() ||
        e.section_offset + e.section_size < e.section_offset)
      fail_corrupt(path, "layer " + std::to_string(i) +
                             " section extends past the file");
    toc.entries.push_back(e);
  }
  return toc;
}

/// Deserialize one layer section (already CRC-verified) into a
/// PreboundLayer. Throws kInternal on any structural inconsistency.
detail::PreboundLayer read_section(std::span<const unsigned char> bytes,
                                   bool configured, const std::string& path,
                                   std::size_t layer_index) {
  const std::string context = "artifact '" + path + "' layer " +
                              std::to_string(layer_index) + " section";
  io::ByteReader r(bytes, context);
  detail::PreboundLayer l;
  const std::uint32_t name_len = r.u32();
  if (name_len > r.remaining())
    fail_corrupt(path, "layer " + std::to_string(layer_index) +
                           " name extends past its section");
  l.name.resize(name_len);
  r.bytes(l.name.data(), name_len);
  r.skip_pad(8);
  const std::uint64_t m = r.u64();
  const std::uint64_t k = r.u64();
  const std::uint64_t positions = r.u64();
  const std::uint32_t flag = r.u32();
  (void)r.u32();  // reserved
  if ((flag != 0) != configured)
    fail_corrupt(path, "layer " + std::to_string(layer_index) +
                           " section flag disagrees with the TOC");
  if (m >= (1ULL << 32) || k >= (1ULL << 32) || m * k >= (1ULL << 32))
    fail_corrupt(path, "layer " + std::to_string(layer_index) +
                           " has a size-overflow shape header");
  if (m * k * sizeof(float) > r.remaining())
    fail_corrupt(path, "layer " + std::to_string(layer_index) +
                           " weight extends past its section");
  l.positions = static_cast<Index>(positions);
  l.weight = MatrixF(static_cast<Index>(m), static_cast<Index>(k));
  r.f32_array(l.weight.flat());
  if (!configured) {
    if (r.remaining() != 0)
      fail_corrupt(path, "layer " + std::to_string(layer_index) +
                             " section has trailing bytes");
    return l;
  }

  r.skip_pad(8);
  auto plan = std::make_shared<DecompositionPlan>();
  plan->rows = static_cast<Index>(m);
  plan->cols = static_cast<Index>(k);
  const std::uint64_t term_count = r.u64();
  if (term_count > 64)
    fail_corrupt(path, "layer " + std::to_string(layer_index) +
                           " claims an implausible series order");
  std::vector<sparse::NMPattern> patterns;
  patterns.reserve(term_count);
  for (std::uint64_t t = 0; t < term_count; ++t) {
    const std::uint32_t pn = r.u32();
    const std::uint32_t pm = r.u32();
    if (pm == 0 || pn > pm || pm > 256)
      fail_corrupt(path, "layer " + std::to_string(layer_index) +
                             " has an invalid N:M pattern");
    patterns.emplace_back(static_cast<int>(pn), static_cast<int>(pm));
  }
  plan->config = TasdConfig(patterns);
  ApproxStats& s = plan->stats;
  s.original_nnz = static_cast<Index>(r.u64());
  s.kept_nnz = static_cast<Index>(r.u64());
  s.dropped_nnz = static_cast<Index>(r.u64());
  s.original_magnitude = r.f64();
  s.kept_magnitude = r.f64();
  s.dropped_magnitude = r.f64();
  s.mse = r.f64();
  s.rel_frobenius_error = r.f64();

  plan->terms.reserve(term_count);
  for (std::uint64_t t = 0; t < term_count; ++t) {
    const std::uint32_t pn = r.u32();
    const std::uint32_t pm = r.u32();
    const std::uint64_t rows = r.u64();
    const std::uint64_t cols = r.u64();
    if (patterns[t].n != static_cast<int>(pn) ||
        patterns[t].m != static_cast<int>(pm) || rows != m || cols != k)
      fail_corrupt(path, "layer " + std::to_string(layer_index) + " term " +
                             std::to_string(t) +
                             " disagrees with its plan header");
    const std::uint64_t value_count = r.u64();
    if (value_count > m * k ||
        value_count * (sizeof(float) + 1) > r.remaining())
      fail_corrupt(path, "layer " + std::to_string(layer_index) + " term " +
                             std::to_string(t) + " claims " +
                             std::to_string(value_count) + " values in a " +
                             std::to_string(m) + "x" + std::to_string(k) +
                             " matrix");
    std::vector<float> values(value_count);
    r.f32_array(values);
    std::vector<std::uint8_t> in_block_index(value_count);
    r.bytes(in_block_index.data(), in_block_index.size());
    r.skip_pad(8);
    const std::uint64_t offsets_count = r.u64();
    const std::uint64_t blocks_per_row =
        (cols + pm - 1) / pm;  // pm > 0 checked above
    if (offsets_count != rows * blocks_per_row + 1)
      fail_corrupt(path, "layer " + std::to_string(layer_index) + " term " +
                             std::to_string(t) +
                             " has a wrong block-offset count");
    std::vector<std::uint64_t> raw_offsets(offsets_count);
    r.u64_array(raw_offsets);
    std::vector<Index> offsets(raw_offsets.begin(), raw_offsets.end());
    try {
      plan->terms.push_back(sparse::NMSparseMatrix::from_parts(
          patterns[t], static_cast<Index>(rows), static_cast<Index>(cols),
          std::move(values), std::move(in_block_index), std::move(offsets)));
    } catch (const Error& e) {
      // from_parts checks the grouping invariant with kInvalidArgument;
      // on this path an inconsistency means the bytes lie — data loss.
      fail_corrupt(path, "layer " + std::to_string(layer_index) + " term " +
                             std::to_string(t) +
                             " is structurally inconsistent: " + e.what());
    }
  }
  if (r.remaining() != 0)
    fail_corrupt(path, "layer " + std::to_string(layer_index) +
                           " section has trailing bytes");
  l.config = plan->config;
  l.plan = std::shared_ptr<const DecompositionPlan>(std::move(plan));
  return l;
}

/// Deserialize the tuning section (CRC already verified by the caller).
/// Throws kInternal on any structural inconsistency — including a chosen
/// kernel name missing from its own candidate table, the "silent
/// mis-binding" a corrupted section must never cause. Whether the result
/// *transfers* to this host (signature, registered kernels) is decided
/// later by detail::apply_tuning, not here.
TuningResult read_tuning(std::span<const unsigned char> bytes,
                         std::uint32_t layer_count, const std::string& path) {
  io::ByteReader r(bytes, "artifact '" + path + "' tuning section");
  const auto get_string = [&](const char* what) {
    const std::uint32_t len = r.u32();
    if (len > 4096)
      fail_corrupt(path, "tuning section claims an implausible " +
                             std::string(what) + " length");
    std::string s(len, '\0');
    r.bytes(s.data(), len);
    r.skip_pad(8);
    return s;
  };
  const auto get_table = [&](const char* what) {
    const std::uint64_t count = r.u64();
    if (count > 4096)
      fail_corrupt(path, "tuning section claims an implausible " +
                             std::string(what) + " candidate count");
    std::vector<TuneCandidate> table;
    table.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      TuneCandidate c;
      c.kernel = get_string("candidate kernel name");
      c.ms = r.f64();
      table.push_back(std::move(c));
    }
    return table;
  };
  const auto chosen_in = [&](const std::vector<TuneCandidate>& table,
                             const std::string& chosen) {
    for (const auto& c : table)
      if (c.kernel == chosen) return true;
    return false;
  };

  TuningResult tuning;
  tuning.host_signature = get_string("host signature");
  const std::uint64_t layers = r.u64();
  if (layers != layer_count)
    fail_corrupt(path, "tuning section covers " + std::to_string(layers) +
                           " layers, the artifact has " +
                           std::to_string(layer_count));
  tuning.layers.reserve(layers);
  for (std::uint64_t i = 0; i < layers; ++i) {
    LayerTuning lt;
    lt.layer = get_string("layer name");
    lt.nm = r.u32() != 0;
    (void)r.u32();  // reserved
    lt.single = get_table("single-RHS");
    lt.chosen_single = get_string("chosen kernel name");
    lt.batch = get_table("batch");
    lt.chosen_batch = get_string("chosen kernel name");
    if (!chosen_in(lt.single, lt.chosen_single) ||
        !chosen_in(lt.batch, lt.chosen_batch))
      fail_corrupt(path, "tuning section layer " + std::to_string(i) +
                             " chose a kernel outside its candidate table");
    tuning.layers.push_back(std::move(lt));
  }
  if (r.remaining() != 0)
    fail_corrupt(path, "tuning section has trailing bytes");
  return tuning;
}

}  // namespace

void save_artifact(const CompiledNetwork& net, const std::string& path) {
  // Serialize every section first: the TOC (written before the sections)
  // needs their sizes, CRCs and fingerprints.
  std::vector<io::ByteWriter> sections(net.layer_count());
  for (std::size_t i = 0; i < net.layer_count(); ++i)
    write_section(net.layer(i), sections[i]);

  const std::string& name = net.name();
  const std::size_t toc_offset =
      align_up(artifact::kHeaderBytes + name.size(), artifact::kSectionAlign);
  const std::size_t toc_bytes = net.layer_count() * artifact::kTocEntryBytes;

  io::ByteWriter toc;
  std::size_t cursor =
      align_up(toc_offset + toc_bytes, artifact::kSectionAlign);
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    const CompiledNetwork::BoundLayer& l = net.layer(i);
    const auto fp = content_fingerprint(l.weight);
    const auto& body = sections[i].data();
    toc.u64(fp.lo);
    toc.u64(fp.hi);
    toc.u64(cursor);
    toc.u64(body.size());
    toc.u32(crc32(body.data(), body.size()));
    toc.u32(l.plan ? artifact::kFlagConfigured : 0);
    toc.u64(0);  // reserved
    cursor = align_up(cursor + body.size(), artifact::kSectionAlign);
  }
  // file_size counts up to the end of the last section's bytes, without
  // the trailing alignment pad no reader would consume.
  std::size_t file_size = align_up(toc_offset + toc_bytes,
                                   artifact::kSectionAlign);
  for (std::size_t i = 0; i < sections.size(); ++i) {
    if (i + 1 == sections.size())
      file_size += sections[i].data().size();
    else
      file_size = align_up(file_size + sections[i].data().size(),
                           artifact::kSectionAlign);
  }
  if (sections.empty()) file_size = toc_offset + toc_bytes;

  // Optional trailing tuning section (autotuned artifacts only): aligned
  // like the layer sections, CRC'd, located by the header.
  io::ByteWriter tuning;
  std::size_t tuning_offset = 0;
  if (net.tuning()) {
    write_tuning(*net.tuning(), tuning);
    tuning_offset = align_up(file_size, artifact::kSectionAlign);
    file_size = tuning_offset + tuning.data().size();
  }

  io::ByteWriter head;
  head.bytes(artifact::kMagic, sizeof artifact::kMagic);
  head.u32(artifact::kVersion);
  head.u32(static_cast<std::uint32_t>(artifact::kHeaderBytes));
  head.u32(static_cast<std::uint32_t>(net.layer_count()));
  head.u32(static_cast<std::uint32_t>(name.size()));
  head.u64(file_size);
  head.u64(toc_offset);
  head.u32(crc32(toc.data().data(), toc.data().size()));
  head.u32(net.tuning() ? crc32(tuning.data().data(), tuning.data().size())
                        : 0);
  head.u64(tuning_offset);
  head.u64(net.tuning() ? tuning.data().size() : 0);
  head.pad_to(artifact::kHeaderBytes);
  head.bytes(name.data(), name.size());
  head.pad_to(artifact::kSectionAlign);  // through the name region
  head.bytes(toc.data().data(), toc.data().size());

  // Stream to disk: header+TOC, then each section at its aligned
  // offset. Sections can be hundreds of MB; never concatenate them.
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good())
    throw Error(Error::Code::kInvalidArgument,
                "cannot open '" + path + "' for writing");
  std::size_t written = 0;
  const auto emit = [&](const unsigned char* data, std::size_t size) {
    out.write(reinterpret_cast<const char*>(data),
              static_cast<std::streamsize>(size));
    written += size;
  };
  static constexpr unsigned char kZeros[artifact::kSectionAlign] = {};
  const auto pad_to = [&](std::size_t target) {
    while (written < target)
      emit(kZeros, std::min(target - written, sizeof kZeros));
  };
  emit(head.data().data(), head.data().size());
  for (const auto& section : sections) {
    pad_to(align_up(written, artifact::kSectionAlign));
    emit(section.data().data(), section.data().size());
  }
  if (net.tuning()) {
    pad_to(tuning_offset);
    emit(tuning.data().data(), tuning.data().size());
  }
  out.flush();
  if (!out.good())
    throw Error(Error::Code::kInternal,
                "short write to '" + path + "' (artifact is " +
                    std::to_string(file_size) + " bytes)");
}

CompiledNetwork load_artifact(const std::string& path,
                              const CompileOptions& opt) {
  const auto bytes = io::read_file(path);
  const ParsedToc toc = parse_header_and_toc(bytes, path);

  std::vector<detail::PreboundLayer> layers;
  layers.reserve(toc.entries.size());
  for (std::size_t i = 0; i < toc.entries.size(); ++i) {
    const TocEntry& e = toc.entries[i];
    const auto section = std::span<const unsigned char>(bytes).subspan(
        e.section_offset, e.section_size);
    if (crc32(section.data(), section.size()) != e.section_crc)
      fail_corrupt(path,
                   "layer " + std::to_string(i) + " section CRC mismatch");
    detail::PreboundLayer l = read_section(
        section, (e.flags & artifact::kFlagConfigured) != 0, path, i);
    // The fingerprint binds the deserialized plan to the weight bytes it
    // was decomposed from — the same key the PlanCache uses, so a
    // mismatch means the section pairs a weight with someone else's
    // plan (or a corruption both CRCs missed).
    if (content_fingerprint(l.weight) != e.fingerprint)
      fail_corrupt(path, "layer " + std::to_string(i) + " ('" + l.name +
                             "') weight does not match its recorded "
                             "content fingerprint");
    if (l.plan && opt.measure.use_plan_cache)
      l.plan = plan_cache().insert_preloaded(l.weight, l.plan);
    layers.push_back(std::move(l));
  }
  // Deserialize the tuning section (when present and CRC-clean) and let
  // assemble_network decide whether it transfers to this host: binding
  // restored on a signature match, best_*() re-resolution (or a fresh
  // autotune under kAutotune) otherwise. Either way: zero decompositions.
  std::optional<TuningResult> tuning;
  if (toc.tuning_offset != 0) {
    const auto section = std::span<const unsigned char>(bytes).subspan(
        toc.tuning_offset, toc.tuning_size);
    if (crc32(section.data(), section.size()) != toc.tuning_crc)
      fail_corrupt(path, "tuning section CRC mismatch");
    tuning = read_tuning(
        section, static_cast<std::uint32_t>(toc.entries.size()), path);
  }
  return detail::assemble_network(toc.name, std::move(layers), opt,
                                  tuning ? &*tuning : nullptr);
}

ArtifactInfo inspect_artifact(const std::string& path) {
  const auto bytes = io::read_file(path);
  const ParsedToc toc = parse_header_and_toc(bytes, path);
  ArtifactInfo info;
  info.version = artifact::kVersion;
  info.name = toc.name;
  info.file_bytes = bytes.size();
  info.has_tuning = toc.tuning_offset != 0;
  info.tuning_bytes = toc.tuning_size;
  info.layers.reserve(toc.entries.size());
  for (const TocEntry& e : toc.entries) {
    ArtifactLayerInfo l;
    l.fingerprint = e.fingerprint;
    l.configured = (e.flags & artifact::kFlagConfigured) != 0;
    l.section_offset = e.section_offset;
    l.section_size = e.section_size;
    l.section_crc32 = e.section_crc;
    info.layers.push_back(l);
  }
  return info;
}

}  // namespace tasd::rt
