// Behavioral coverage for the annotated sync wrappers (common/sync.hpp).
// The *compile-time* contract — guarded reads without the lock, unlock
// without lock, CV wait on the wrong mutex — is covered by the
// negative-compile harness in tests/static/; these tests pin the
// runtime semantics the wrappers must preserve: mutual exclusion, RAII
// release (including via exceptions), manual unlock/relock, and the
// CV wait/notify protocol.

#include "common/sync.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace tasd {
namespace {

TEST(SyncMutex, LockUnlockExcludes) {
  Mutex mu;
  mu.lock();
  EXPECT_FALSE(mu.try_lock());  // non-recursive: second acquire fails
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(SyncMutex, ProvidesMutualExclusion) {
  Mutex mu;
  int counter = 0;  // guarded by mu (by convention in this test)
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(SyncMutexLock, ReleasesOnScopeExit) {
  Mutex mu;
  {
    MutexLock lock(mu);
    EXPECT_FALSE(mu.try_lock());
  }
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(SyncMutexLock, ReleasesWhenScopeExitsViaException) {
  Mutex mu;
  try {
    MutexLock lock(mu);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  // The unwind must have released the mutex.
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(SyncMutexLock, ManualUnlockAndRelock) {
  Mutex mu;
  MutexLock lock(mu);
  lock.unlock();
  EXPECT_TRUE(mu.try_lock());  // actually released
  mu.unlock();
  lock.lock();
  EXPECT_FALSE(mu.try_lock());  // actually re-held
  // Destructor releases the re-acquired lock; a double-unlock here
  // would abort under the sanitizer legs.
}

TEST(SyncMutexLock, DestructorAfterManualUnlockDoesNotDoubleRelease) {
  Mutex mu;
  {
    MutexLock lock(mu);
    lock.unlock();
  }  // destructor must be a no-op now
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(SyncCondVar, WaitPredicateSeesNotifiedState) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    {
      MutexLock lock(mu);
      ready = true;
    }
    cv.notify_one();
  });
  {
    MutexLock lock(mu);
    cv.wait(mu, [&] { return ready; });
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(SyncCondVar, ExplicitWhileLoopWaitProtocol) {
  // The while (!cond) cv.wait(mu); shape the library uses for guarded
  // conditions (a predicate lambda would escape the analysis).
  Mutex mu;
  CondVar cv;
  int stage = 0;
  std::thread worker([&] {
    MutexLock lock(mu);
    while (stage != 1) cv.wait(mu);
    stage = 2;
    cv.notify_all();
  });
  {
    MutexLock lock(mu);
    stage = 1;
  }
  cv.notify_all();
  {
    MutexLock lock(mu);
    while (stage != 2) cv.wait(mu);
    EXPECT_EQ(stage, 2);
  }
  worker.join();
}

TEST(SyncCondVar, WaitUntilTimesOut) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  EXPECT_EQ(cv.wait_until(mu, deadline), std::cv_status::timeout);
  // The wait re-acquired the mutex before returning.
  EXPECT_FALSE(mu.try_lock());
}

TEST(SyncCondVar, WaitForTimesOutAndKeepsLockHeld) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_EQ(cv.wait_for(mu, std::chrono::milliseconds(5)),
            std::cv_status::timeout);
  EXPECT_FALSE(mu.try_lock());
}

TEST(SyncCondVar, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int awake = 0;
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.wait(mu);
      ++awake;
    });
  }
  {
    MutexLock lock(mu);
    go = true;
  }
  cv.notify_all();
  for (auto& t : waiters) t.join();
  MutexLock lock(mu);
  EXPECT_EQ(awake, kWaiters);
}

}  // namespace
}  // namespace tasd
