#include "runtime/serving_engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/error.hpp"
#include "common/fault.hpp"

namespace tasd::rt {

namespace {

double ms_between(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Map an Error's taxonomy code to the request's terminal status.
RequestStatus status_from_code(Error::Code code) {
  switch (code) {
    case Error::Code::kInvalidArgument:
    case Error::Code::kFailedPrecondition:
      return RequestStatus::kInvalid;
    case Error::Code::kDeadlineExceeded:
      return RequestStatus::kDeadline;
    case Error::Code::kResourceExhausted:
      return RequestStatus::kShed;
    case Error::Code::kUnavailable:
    case Error::Code::kInternal:
      return RequestStatus::kFailed;
  }
  return RequestStatus::kFailed;
}

/// q-th percentile (0 <= q <= 1) of an unsorted sample, by nearest-rank
/// on a sorted copy. 0 for an empty sample.
double percentile(std::vector<double> sample, double q) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sample.size())));
  return sample[std::min(sample.size() - 1, rank == 0 ? 0 : rank - 1)];
}

}  // namespace

const char* to_string(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk: return "ok";
    case RequestStatus::kInvalid: return "invalid";
    case RequestStatus::kDeadline: return "deadline";
    case RequestStatus::kShed: return "shed";
    case RequestStatus::kFailed: return "failed";
  }
  return "unknown";
}

ServingEngine::ServingEngine(CompiledNetwork model, ServingOptions opt)
    : ServingEngine(
          [&] {
            std::vector<CompiledNetwork> ms;
            ms.push_back(std::move(model));
            return ms;
          }(),
          opt) {}

ServingEngine::ServingEngine(std::vector<CompiledNetwork> models,
                             ServingOptions opt)
    : opt_(opt), start_time_(Clock::now()) {
  TASD_CHECK_MSG(!models.empty(), "ServingEngine needs at least one model");
  TASD_CHECK_MSG(opt_.max_queue_depth >= 1, "max_queue_depth must be >= 1");
  TASD_CHECK_MSG(opt_.max_batch >= 1, "max_batch must be >= 1");
  TASD_CHECK_MSG(opt_.latency_window >= 1, "latency_window must be >= 1");
  nets_.reserve(models.size());
  for (auto& m : models) nets_.push_back(std::move(m));
  {
    MutexLock lock(mu_);
    stats_.resize(nets_.size());
  }
  // Start the batcher last: everything it touches is constructed.
  MutexLock lock(drain_mu_);
  batcher_ = std::thread([this] { batcher_main(); });
}

ServingEngine::~ServingEngine() { drain(); }

const CompiledNetwork& ServingEngine::model(std::size_t i) const {
  TASD_CHECK_MSG(i < nets_.size(), "model index " << i << " out of range ("
                                                  << nets_.size()
                                                  << " models)");
  return nets_[i];
}

std::size_t ServingEngine::queue_depth() const {
  MutexLock lock(mu_);
  return queue_.size();
}

std::size_t ServingEngine::matching_locked(std::size_t model,
                                           std::size_t layer) const {
  std::size_t n = 0;
  for (const auto& r : queue_)
    if (r.model == model && r.layer == layer) ++n;
  return n;
}

void ServingEngine::enqueue(Request req) {
  std::optional<std::string> shed_reason;
  {
    MutexLock lock(mu_);
    stats_[req.model].submitted++;
    if (draining_) {
      shed_reason = "engine is draining";
    } else if (queue_.size() >= opt_.max_queue_depth) {
      if (opt_.overflow == ServingOptions::Overflow::kReject) {
        shed_reason = "queue full (depth " + std::to_string(queue_.size()) +
                      ", policy reject)";
      } else {
        while (!draining_ && queue_.size() >= opt_.max_queue_depth)
          space_cv_.wait(mu_);
        if (draining_) shed_reason = "engine drained while blocked on queue space";
      }
    }
    if (!shed_reason) {
      ModelStats& ms = stats_[req.model];
      ms.queued++;
      ms.peak_queued = std::max(ms.peak_queued, ms.queued);
      queue_.push_back(std::move(req));
    }
  }
  if (shed_reason) {
    Response resp;
    resp.status = RequestStatus::kShed;
    resp.error = *shed_reason;
    resolve(req, std::move(resp));
  } else {
    work_cv_.notify_one();
  }
}

std::future<Response> ServingEngine::submit(
    std::size_t model_index, std::size_t layer_index, MatrixF input,
    std::optional<std::chrono::microseconds> deadline) {
  TASD_CHECK_MSG(model_index < nets_.size(),
                 "model index " << model_index << " out of range ("
                                << nets_.size() << " models)");
  Request req;
  req.model = model_index;
  req.layer = layer_index;
  req.input = std::move(input);
  req.submit_time = Clock::now();
  const auto effective = deadline.value_or(opt_.default_deadline);
  if (effective.count() > 0) req.deadline = req.submit_time + effective;

  std::future<Response> future = req.promise.get_future();
  enqueue(std::move(req));
  return future;
}

std::future<Response> ServingEngine::submit(
    std::size_t layer_index, MatrixF input,
    std::optional<std::chrono::microseconds> deadline) {
  return submit(0, layer_index, std::move(input), deadline);
}

void ServingEngine::submit_async(
    std::size_t model_index, std::size_t layer_index, MatrixF input,
    Callback on_done, std::optional<std::chrono::microseconds> deadline) {
  TASD_CHECK_MSG(model_index < nets_.size(),
                 "model index " << model_index << " out of range ("
                                << nets_.size() << " models)");
  TASD_CHECK_MSG(on_done != nullptr, "submit_async needs a completion callback");
  Request req;
  req.callback = std::move(on_done);
  req.model = model_index;
  req.layer = layer_index;
  req.input = std::move(input);
  req.submit_time = Clock::now();
  const auto effective = deadline.value_or(opt_.default_deadline);
  if (effective.count() > 0) req.deadline = req.submit_time + effective;
  enqueue(std::move(req));
}

void ServingEngine::submit_async(
    std::size_t layer_index, MatrixF input, Callback on_done,
    std::optional<std::chrono::microseconds> deadline) {
  submit_async(0, layer_index, std::move(input), std::move(on_done), deadline);
}

void ServingEngine::drain() {
  {
    MutexLock lock(mu_);
    draining_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  // Serialize the join: drain() is idempotent and may race the
  // destructor with an explicit call.
  MutexLock lock(drain_mu_);
  if (batcher_.joinable()) batcher_.join();
}

ModelMetrics ServingEngine::metrics(std::size_t model_index) const {
  TASD_CHECK_MSG(model_index < nets_.size(),
                 "model index " << model_index << " out of range ("
                                << nets_.size() << " models)");
  ModelMetrics out;
  out.model = nets_[model_index].name();
  std::vector<double> latencies;
  {
    MutexLock lock(mu_);
    const ModelStats& ms = stats_[model_index];
    out.submitted = ms.submitted;
    out.ok = ms.ok;
    out.invalid = ms.invalid;
    out.expired = ms.expired;
    out.shed = ms.shed;
    out.failed = ms.failed;
    out.batches = ms.batches;
    out.batched_requests = ms.batched_requests;
    out.degraded_batches = ms.degraded_batches;
    out.queue_depth = ms.queued;
    out.peak_queue_depth = ms.peak_queued;
    latencies = ms.latencies;
  }
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start_time_).count();
  out.qps = elapsed_s > 0.0 ? static_cast<double>(out.ok) / elapsed_s : 0.0;
  out.p50_ms = percentile(latencies, 0.50);
  out.p95_ms = percentile(latencies, 0.95);
  out.p99_ms = percentile(latencies, 0.99);
  return out;
}

void ServingEngine::resolve(Request& req, Response response) {
  response.latency_ms = ms_between(req.submit_time, Clock::now());
  {
    MutexLock lock(mu_);
    ModelStats& ms = stats_[req.model];
    switch (response.status) {
      case RequestStatus::kOk:
        ms.ok++;
        if (ms.latencies.size() < opt_.latency_window) {
          ms.latencies.push_back(response.latency_ms);
        } else {
          ms.latencies[ms.latency_next] = response.latency_ms;
          ms.latency_next = (ms.latency_next + 1) % opt_.latency_window;
        }
        break;
      case RequestStatus::kInvalid: ms.invalid++; break;
      case RequestStatus::kDeadline: ms.expired++; break;
      case RequestStatus::kShed: ms.shed++; break;
      case RequestStatus::kFailed: ms.failed++; break;
    }
  }
  // Delivery happens outside mu_: a callback (or a future-waiter woken
  // by set_value) may immediately call metrics()/queue_depth().
  if (req.callback) {
    try {
      req.callback(std::move(response));
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "[tasd serving] submit_async callback threw (%s); "
                   "callbacks must not throw\n",
                   e.what());
    } catch (...) {
      std::fprintf(stderr,
                   "[tasd serving] submit_async callback threw; "
                   "callbacks must not throw\n");
    }
  } else {
    req.promise.set_value(std::move(response));
  }
}

EngineMetrics ServingEngine::engine_metrics() const {
  EngineMetrics out;
  MutexLock lock(mu_);
  out.busy_ms = batcher_busy_ms_;
  out.idle_ms = batcher_idle_ms_;
  out.groups = groups_;
  const double total = out.busy_ms + out.idle_ms;
  out.occupancy = total > 0.0 ? out.busy_ms / total : 0.0;
  return out;
}

void ServingEngine::batcher_main() {
  MutexLock lock(mu_);
  for (;;) {
    // Idle: waiting for work to arrive. The accumulators are written
    // while mu_ is held (the wait reacquires it before returning).
    const auto idle_start = Clock::now();
    while (!draining_ && queue_.empty()) work_cv_.wait(mu_);
    batcher_idle_ms_ += ms_between(idle_start, Clock::now());
    if (queue_.empty()) {
      if (draining_) return;
      continue;
    }
    const std::size_t key_model = queue_.front().model;
    const std::size_t key_layer = queue_.front().layer;
    // Hold the admission window open for batchmates — but never past
    // the head's own deadline, and not at all while draining (the flush
    // must be prompt) or when the batch is already full.
    if (!draining_ && opt_.admission_window.count() > 0 &&
        matching_locked(key_model, key_layer) < opt_.max_batch) {
      auto wait_end = queue_.front().submit_time + opt_.admission_window;
      if (queue_.front().deadline && *queue_.front().deadline < wait_end)
        wait_end = *queue_.front().deadline;
      // Also idle: deliberately holding the window open for batchmates.
      const auto window_start = Clock::now();
      while (!draining_ &&
             matching_locked(key_model, key_layer) < opt_.max_batch) {
        if (work_cv_.wait_until(mu_, wait_end) == std::cv_status::timeout)
          break;
      }
      batcher_idle_ms_ += ms_between(window_start, Clock::now());
    }
    const auto busy_start = Clock::now();
    // Dequeue up to max_batch requests with the head's (model, layer),
    // preserving arrival order of everything else.
    std::vector<Request> group;
    std::deque<Request> rest;
    while (!queue_.empty()) {
      Request r = std::move(queue_.front());
      queue_.pop_front();
      if (group.size() < opt_.max_batch && r.model == key_model &&
          r.layer == key_layer) {
        group.push_back(std::move(r));
      } else {
        rest.push_back(std::move(r));
      }
    }
    queue_ = std::move(rest);
    stats_[key_model].queued -= group.size();

    lock.unlock();
    space_cv_.notify_all();
    execute_group(std::move(group));
    lock.lock();
    // Busy: dequeue + execute of one coalesced group (callback delivery
    // included — it runs on this thread).
    batcher_busy_ms_ += ms_between(busy_start, Clock::now());
    groups_++;
  }
}

void ServingEngine::execute_group(std::vector<Request> group) {
  const auto dequeue_time = Clock::now();
  const std::size_t model = group.front().model;
  const CompiledNetwork& net = nets_[model];
  const std::size_t layer = group.front().layer;

  // Dequeue-time expiry and per-request admission validation: a request
  // that expired or cannot legally run resolves here and never touches
  // the kernels — and never poisons its batchmates.
  std::vector<std::size_t> runnable;
  runnable.reserve(group.size());
  for (std::size_t i = 0; i < group.size(); ++i) {
    Request& req = group[i];
    const double queue_ms = ms_between(req.submit_time, dequeue_time);
    if (req.deadline && dequeue_time > *req.deadline) {
      Response resp;
      resp.status = RequestStatus::kDeadline;
      resp.error = "deadline exceeded after " + std::to_string(queue_ms) +
                   " ms in queue";
      resp.queue_ms = queue_ms;
      resolve(req, std::move(resp));
      continue;
    }
    try {
      net.validate_input(req.layer, req.input);
      runnable.push_back(i);
    } catch (const Error& e) {
      Response resp;
      resp.status = status_from_code(e.code());
      resp.error = e.what();
      resp.queue_ms = queue_ms;
      resolve(req, std::move(resp));
    }
  }
  if (runnable.empty()) return;

  std::vector<MatrixF> inputs;
  inputs.reserve(runnable.size());
  for (const std::size_t i : runnable)
    inputs.push_back(std::move(group[i].input));

  const auto finish = [&](std::size_t j, MatrixF output,
                          std::size_t batch_size) {
    Request& req = group[runnable[j]];
    Response resp;
    resp.status = RequestStatus::kOk;
    resp.output = std::move(output);
    resp.queue_ms = ms_between(req.submit_time, dequeue_time);
    resp.batch_size = batch_size;
    resolve(req, std::move(resp));
  };

  try {
    fault::inject("serving.execute", net.name());
    auto outputs = net.run_batch(layer, inputs);
    {
      // Count the batch before resolving any promise: a caller that
      // joins its future must see these counters in metrics().
      MutexLock lock(mu_);
      stats_[model].batches++;
      stats_[model].batched_requests += runnable.size();
    }
    for (std::size_t j = 0; j < runnable.size(); ++j)
      finish(j, std::move(outputs[j]), runnable.size());
  } catch (const std::exception&) {
    // Graceful degradation: the batch as a whole failed (throwing
    // layer, injected fault, allocation failure). Retry each admitted
    // request alone so only the ones that fail on their own do fail —
    // the batcher thread survives regardless.
    {
      MutexLock lock(mu_);
      stats_[model].degraded_batches++;
    }
    for (std::size_t j = 0; j < runnable.size(); ++j) {
      Request& req = group[runnable[j]];
      try {
        finish(j, net.run(layer, inputs[j]), 1);
      } catch (const Error& e) {
        Response resp;
        resp.status = status_from_code(e.code());
        resp.error = e.what();
        resp.queue_ms = ms_between(req.submit_time, dequeue_time);
        resolve(req, std::move(resp));
      } catch (const std::exception& e) {
        Response resp;
        resp.status = RequestStatus::kFailed;
        resp.error = e.what();
        resp.queue_ms = ms_between(req.submit_time, dequeue_time);
        resolve(req, std::move(resp));
      }
    }
  }
}

}  // namespace tasd::rt
