// AVX-512 vectorized GEMM kernels — the 16-lane SIMD backend of
// GemmDispatch.
//
// Registered names (see docs/kernels.md for the author guide):
//   dense       "dense-avx512"        row-parallel, 16-lane FMA
//   N:M         "nm-avx512"           compressed traversal, 16-lane FMA
//   dense batch "dense-batch-avx512"  packed (row, batch-column) tile grid
//   N:M batch   "nm-batch-avx512"     same grid over the compressed core
//
// Bit-exactness model: identical to the AVX2 family (kernels_avx2.hpp) —
// every output element accumulates along a single k-ascending (dense) /
// stored-value-ascending (N:M) chain of *fused* multiply-adds, with
// sub-vector column tails running the same chain through __mmask16
// masked vector ops. Because a 512-bit FMA performs the same rounded
// scalar fma per lane as a 256-bit FMA, the AVX-512 kernels land in the
// SAME rounding family as the AVX2 ones: bit-identical to them (and to
// their own serial/batched runs), float-tolerance-close to the scalar
// mul+add kernels. The differential property sweep
// (tests/runtime/test_kernel_differential.cpp) pins both claims.
//
// This translation unit is compiled with -mavx512f -mavx512bw (see
// src/CMakeLists.txt); GemmDispatch registers the kernels only when
// tasd::avx512_available() says the executing CPU/OS can run them
// (CPUID F+BW, OS saves ZMM/opmask state, TASD_DISABLE_AVX512 unset).
#pragma once

#include "runtime/gemm_dispatch.hpp"

namespace tasd::rt {

/// Dense C += A*B restricted to an (output-row, output-column) tile;
/// AVX-512 analogue of dense_gemm_tile with the same any-disjoint-tiling
/// bit-exactness property (within the FMA family).
void dense_gemm_tile_avx512(const MatrixF& a, const MatrixF& b, MatrixF& c,
                            Index row_begin, Index row_end, Index col_begin,
                            Index col_end);

/// Compressed N:M C += A*B restricted to a tile; AVX-512 analogue of
/// nm_gemm_tile.
void nm_gemm_tile_avx512(const sparse::NMSparseMatrix& a, const MatrixF& b,
                         MatrixF& c, Index row_begin, Index row_end,
                         Index col_begin, Index col_end);

/// Register all four AVX-512 kernels under their names. Called once by
/// GemmDispatch's constructor when avx512_available(); never changes the
/// registry defaults.
void register_avx512_kernels(GemmDispatch& dispatch);

}  // namespace tasd::rt
