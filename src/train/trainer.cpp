#include "train/trainer.hpp"

#include <numeric>

#include "common/error.hpp"

namespace tasd::train {

Dataset Dataset::synthetic(Index features, Index classes, Index samples,
                           double noise, std::uint64_t proto_seed,
                           std::uint64_t sample_seed) {
  TASD_CHECK_MSG(classes >= 2, "need at least two classes");
  // Class prototypes: unit-ish Gaussian directions, shared by every
  // split generated from the same proto_seed.
  Rng proto_rng(proto_seed);
  MatrixF prototypes(features, classes);
  for (float& v : prototypes.flat())
    v = static_cast<float>(proto_rng.normal(0.0, 1.0));

  Rng rng(sample_seed);
  Dataset d;
  d.inputs = MatrixF(features, samples);
  d.labels.reserve(samples);
  for (Index s = 0; s < samples; ++s) {
    const auto cls =
        static_cast<Index>(rng.uniform_int(0, static_cast<long>(classes) - 1));
    d.labels.push_back(cls);
    for (Index f = 0; f < features; ++f)
      d.inputs(f, s) = prototypes(f, cls) +
                       static_cast<float>(rng.normal(0.0, noise));
  }
  return d;
}

double accuracy(Mlp& mlp, const Dataset& data) {
  const auto pred = mlp.predict(data.inputs);
  Index hits = 0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    if (pred[i] == data.labels[i]) ++hits;
  return data.labels.empty()
             ? 0.0
             : static_cast<double>(hits) /
                   static_cast<double>(data.labels.size());
}

TrainResult train(Mlp& mlp, const Dataset& train_set,
                  const Dataset& test_set, const TrainOptions& opt) {
  TASD_CHECK_MSG(opt.batch > 0 && opt.epochs > 0, "invalid train options");
  const Index samples = train_set.inputs.cols();
  const Index features = train_set.inputs.rows();

  TrainResult result;
  result.hook_description =
      std::string("act=") +
      (opt.hooks.activations ? opt.hooks.activations->str() : "none") +
      " grad=" + (opt.hooks.gradients ? opt.hooks.gradients->str() : "none");

  for (Index epoch = 0; epoch < opt.epochs; ++epoch) {
    double epoch_loss = 0.0;
    Index batches = 0;
    for (Index start = 0; start < samples; start += opt.batch) {
      const Index end = std::min(samples, start + opt.batch);
      MatrixF x(features, end - start);
      std::vector<Index> y;
      y.reserve(end - start);
      for (Index s = start; s < end; ++s) {
        for (Index f = 0; f < features; ++f)
          x(f, s - start) = train_set.inputs(f, s);
        y.push_back(train_set.labels[s]);
      }
      const MatrixF logits = mlp.forward(x);
      MatrixF dlogits;
      epoch_loss += Mlp::softmax_ce_loss(logits, y, dlogits);
      mlp.backward(dlogits, opt.hooks);
      mlp.step(opt.lr);
      ++batches;
    }
    result.loss_per_epoch.push_back(epoch_loss /
                                    static_cast<double>(batches));
    result.train_accuracy_per_epoch.push_back(accuracy(mlp, train_set));
  }
  result.final_test_accuracy = accuracy(mlp, test_set);
  return result;
}

}  // namespace tasd::train
