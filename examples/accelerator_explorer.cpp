// Architecture exploration with the analytical model: sweep the
// structured-sparsity support (M, pattern set, TASD-unit count) and see
// how EDP on the paper's workloads responds — the design-space angle of
// paper §4.4 / Table 3.
//
//   build/examples/accelerator_explorer
#include <iostream>

#include "accel/network_sim.hpp"
#include "accel/tasd_unit.hpp"
#include "common/table.hpp"
#include "dnn/workloads.hpp"
#include "tasder/workload_opt.hpp"

using namespace tasd;

int main() {
  print_banner("Accelerator design-space exploration");

  const auto sparse_rn50 = dnn::resnet50_workload(true, 42);
  const auto dense_bert = dnn::bert_workload(false, 42);
  const auto base_rn50 = accel::simulate_network(
      accel::ArchConfig::dense_tc(), tasder::plain_executions(sparse_rn50),
      sparse_rn50.name);
  const auto base_bert = accel::simulate_network(
      accel::ArchConfig::dense_tc(), tasder::plain_executions(dense_bert),
      dense_bert.name);

  TextTable t;
  t.header({"design", "max terms", "EDP sparse-RN50", "EDP dense-BERT",
            "TASD-unit area"});
  for (auto arch : {accel::ArchConfig::ttc_stc_m4(),
                    accel::ArchConfig::ttc_stc_m8(),
                    accel::ArchConfig::ttc_vegeta_m4(),
                    accel::ArchConfig::ttc_vegeta_m8()}) {
    const auto hw = tasder::hw_profile_from(arch);
    const auto rn = accel::simulate_network(
        arch, tasder::optimize_workload(sparse_rn50, hw), sparse_rn50.name);
    const auto bert = accel::simulate_network(
        arch, tasder::optimize_workload(dense_bert, hw), dense_bert.name);
    t.row({arch.name, std::to_string(arch.max_tasd_terms),
           TextTable::num(accel::normalized_edp(rn, base_rn50), 3),
           TextTable::num(accel::normalized_edp(bert, base_bert), 3),
           TextTable::pct(accel::tasd_area_model(arch).ratio(), 2)});
  }
  t.print();

  // What if the TASD units are under-provisioned? Show the stall factor.
  std::cout << "\nTASD-unit provisioning (4:8+1:8 series on M8):\n";
  TextTable u;
  u.header({"units/engine", "required", "stall factor"});
  for (Index units : {4u, 8u, 12u, 16u}) {
    auto arch = accel::ArchConfig::ttc_vegeta_m8();
    arch.tasd_units_per_engine = units;
    const auto m = accel::tasd_unit_model(arch, TasdConfig::parse("4:8+1:8"));
    u.row({std::to_string(units), TextTable::num(m.required_units, 1),
           TextTable::num(m.stall_factor(), 2) + "x"});
  }
  u.print();
  std::cout << "\nPaper check (Fig. 10/Little's law): 12 units suffice for "
               "4:8+1:8; 16 cover the worst admissible series.\n";
  return 0;
}
