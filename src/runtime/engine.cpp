#include "runtime/engine.hpp"

#include <algorithm>
#include <functional>
#include <numeric>
#include <optional>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/plan_cache.hpp"
#include "runtime/dense_gemm.hpp"
#include "tensor/generator.hpp"

namespace tasd::rt {

std::vector<LayerTiming> measure_workload(
    const dnn::NetworkWorkload& net,
    const std::vector<std::optional<TasdConfig>>& configs,
    const EngineOptions& opt) {
  TASD_CHECK_MSG(configs.size() == net.layers.size(),
                 "config list must align with workload layers");
  Rng rng(opt.data_seed);
  std::vector<LayerTiming> out;
  out.reserve(net.layers.size());

  std::optional<ThreadPool> dedicated;
  if (opt.num_threads != 0) dedicated.emplace(opt.num_threads);
  ExecPolicy policy;
  policy.pool = dedicated ? &*dedicated : nullptr;

  for (std::size_t i = 0; i < net.layers.size(); ++i) {
    const auto& layer = net.layers[i];
    LayerTiming t;
    t.name = layer.name;
    t.m = layer.m;
    t.k = layer.k;
    t.n = std::max<Index>(1, layer.n / opt.n_divisor);
    t.config = configs[i];

    const MatrixF w = dnn::materialize_weight(layer);
    const MatrixF b = random_dense(t.k, t.n, Dist::kNormalStd1, rng);

    volatile float sink = 0.0F;  // defeat dead-code elimination
    t.dense_ms = time_ms_min(opt.repeats, [&] {
      const MatrixF c = dense_gemm(w, b, policy);
      sink = sink + c(0, 0);
    });

    if (t.config) {
      const TasdSeriesGemm series =
          opt.use_plan_cache
              ? TasdSeriesGemm(plan_cache().get_or_build(w, *t.config))
              : TasdSeriesGemm(
                    std::make_shared<const DecompositionPlan>(
                        build_plan(w, *t.config)));
      t.kept_nnz_fraction =
          static_cast<double>(series.nnz()) / static_cast<double>(w.size());
      t.tasd_ms = time_ms_min(opt.repeats, [&] {
        const MatrixF c = series.multiply(b, policy);
        sink = sink + c(0, 0);
      });
    }
    out.push_back(std::move(t));
  }
  return out;
}

double network_latency_ms(const std::vector<LayerTiming>& timings,
                          const std::vector<std::size_t>& order,
                          std::size_t num_converted) {
  TASD_CHECK_MSG(num_converted <= order.size(),
                 "num_converted exceeds layer count");
  std::vector<bool> converted(timings.size(), false);
  for (std::size_t i = 0; i < num_converted; ++i) converted[order[i]] = true;
  double total = 0.0;
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const auto& t = timings[i];
    const bool use_tasd = converted[i] && t.config;
    total += use_tasd ? t.tasd_ms : t.dense_ms;
  }
  return total;
}

std::vector<std::size_t> conversion_order(
    const std::vector<LayerTiming>& timings) {
  std::vector<std::size_t> order(timings.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double save_a =
        timings[a].config ? timings[a].dense_ms - timings[a].tasd_ms : -1.0;
    const double save_b =
        timings[b].config ? timings[b].dense_ms - timings[b].tasd_ms : -1.0;
    if (save_a != save_b) return save_a > save_b;
    return a < b;
  });
  return order;
}

}  // namespace tasd::rt
