// Measurement-surface tests of the compile-once/execute-many API: the
// per-layer measure() report, the Fig. 16 conversion ranking, and the
// serving-throughput sweep (the deprecated one-shot wrappers these tests
// once drove were removed; CompiledNetwork is the only surface).
#include "runtime/compiled_network.hpp"

#include <gtest/gtest.h>

#include "core/plan_cache.hpp"

namespace tasd::rt {
namespace {

/// Small synthetic workload: two layers, generous sparsity.
dnn::NetworkWorkload tiny_net() {
  dnn::NetworkWorkload net;
  net.name = "tiny";
  net.sparse_weights = true;
  dnn::GemmWorkload l1;
  l1.name = "a";
  l1.m = 64;
  l1.k = 256;
  l1.n = 64;
  l1.weight_density = 0.1;
  l1.weight_seed = 5;
  dnn::GemmWorkload l2 = l1;
  l2.name = "b";
  l2.m = 128;
  l2.k = 128;
  l2.weight_seed = 6;
  net.layers = {l1, l2};
  return net;
}

TEST(Engine, MeasuresAllLayers) {
  const auto net = tiny_net();
  CompileOptions opt;
  opt.n_divisor = 1;
  opt.measure.repeats = 1;
  const std::vector<std::optional<TasdConfig>> cfgs{
      TasdConfig::parse("2:4"), std::nullopt};
  const auto timings = compile(net, cfgs, opt).measure();
  ASSERT_EQ(timings.size(), 2u);
  EXPECT_GT(timings[0].dense_ms, 0.0);
  EXPECT_GT(timings[0].tasd_ms, 0.0);
  EXPECT_TRUE(timings[0].config.has_value());
  EXPECT_FALSE(timings[1].config.has_value());
  EXPECT_EQ(timings[1].tasd_ms, 0.0);
}

TEST(Engine, ConfigListMustAlign) {
  const auto net = tiny_net();
  EXPECT_THROW(compile(net, {std::nullopt}, {}), Error);
}

TEST(Engine, CompressedKernelFasterOnSparseWeights) {
  // 2:4 executes half the MACs of dense: expect a real speed-up. Layers
  // are sized so per-measurement work is well above timer noise (the
  // AVX2 kernels shrank absolute times ~3x), and min-of-repeats absorbs
  // scheduler contention from parallel ctest.
  auto net = tiny_net();
  for (auto& l : net.layers) {
    l.k = 512;
    l.n = 128;
  }
  CompileOptions opt;
  opt.n_divisor = 1;
  opt.measure.repeats = 5;
  const std::vector<std::optional<TasdConfig>> cfgs{
      TasdConfig::parse("2:4"), TasdConfig::parse("2:4")};
  const auto timings = compile(net, cfgs, opt).measure();
  for (const auto& t : timings)
    EXPECT_LT(t.tasd_ms, t.dense_ms * 0.95) << t.name;
}

TEST(Engine, NetworkLatencyComposition) {
  std::vector<LayerTiming> timings(3);
  for (std::size_t i = 0; i < 3; ++i) {
    timings[i].dense_ms = 10.0;
    timings[i].tasd_ms = 6.0;
    timings[i].config = TasdConfig::parse("2:4");
  }
  const auto order = conversion_order(timings);
  EXPECT_DOUBLE_EQ(network_latency_ms(timings, order, 0), 30.0);
  EXPECT_DOUBLE_EQ(network_latency_ms(timings, order, 2), 22.0);
  EXPECT_DOUBLE_EQ(network_latency_ms(timings, order, 3), 18.0);
  EXPECT_THROW(network_latency_ms(timings, order, 4), Error);
}

TEST(Engine, ConversionOrderPrefersBiggestSavings) {
  std::vector<LayerTiming> timings(3);
  timings[0].dense_ms = 10.0;
  timings[0].tasd_ms = 9.0;
  timings[0].config = TasdConfig::parse("2:4");
  timings[1].dense_ms = 20.0;
  timings[1].tasd_ms = 10.0;
  timings[1].config = TasdConfig::parse("2:4");
  timings[2].dense_ms = 5.0;  // no config: never converted
  const auto order = conversion_order(timings);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 0u);
  EXPECT_EQ(order[2], 2u);
}

TEST(Engine, SecondMeasurementPassDecomposesNothing) {
  const auto net = tiny_net();
  CompileOptions opt;
  opt.n_divisor = 4;
  opt.measure.repeats = 1;
  const std::vector<std::optional<TasdConfig>> cfgs{
      TasdConfig::parse("2:4"), TasdConfig::parse("2:4")};

  (void)compile(net, cfgs, opt);  // warm the plan cache
  const auto before = plan_cache().stats();
  (void)compile(net, cfgs, opt);
  const auto after = plan_cache().stats();
  EXPECT_EQ(after.decompositions, before.decompositions)
      << "a second pass over the same weights must perform zero "
         "additional decompositions";
  EXPECT_GE(after.hits, before.hits + 2);
}

TEST(Engine, PlanCacheOptOutStillDecomposes) {
  const auto net = tiny_net();
  CompileOptions opt;
  opt.n_divisor = 4;
  opt.measure.repeats = 1;
  opt.measure.use_plan_cache = false;
  const std::vector<std::optional<TasdConfig>> cfgs{
      TasdConfig::parse("2:4"), std::nullopt};
  const auto before = plan_cache().stats();
  const auto timings = compile(net, cfgs, opt).measure();
  const auto after = plan_cache().stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_GT(timings[0].tasd_ms, 0.0);
}

TEST(Engine, ExplicitThreadCountMatchesDefaultResults) {
  // Timings differ with the thread count; measured layer metadata (the
  // kept-non-zero fraction comes from the kernel-visible plan) must not.
  const auto net = tiny_net();
  CompileOptions serial;
  serial.n_divisor = 4;
  serial.measure.repeats = 1;
  serial.measure.num_threads = 1;
  CompileOptions parallel = serial;
  parallel.measure.num_threads = 4;
  const std::vector<std::optional<TasdConfig>> cfgs{
      TasdConfig::parse("2:4"), TasdConfig::parse("1:4")};
  const auto a = compile(net, cfgs, serial).measure();
  const auto b = compile(net, cfgs, parallel).measure();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(a[i].kept_nnz_fraction, b[i].kept_nnz_fraction);
}

// --- Fig. 16 conversion-ranking regressions: a configured layer whose
// TASD series measured *slower* than dense must never be ranked as a
// beneficial conversion, and converting it must never worsen latency
// (the deployment engineer keeps the dense kernel).

/// Three layers: one big winner, one unconfigured, one configured loser.
std::vector<LayerTiming> timings_with_slower_than_dense_layer() {
  std::vector<LayerTiming> timings(3);
  timings[0].dense_ms = 10.0;
  timings[0].tasd_ms = 10.5;  // TASD measured slower than dense
  timings[0].config = TasdConfig::parse("2:4");
  timings[1].dense_ms = 5.0;  // no config: not convertible
  timings[2].dense_ms = 20.0;
  timings[2].tasd_ms = 12.0;
  timings[2].config = TasdConfig::parse("2:4");
  return timings;
}

TEST(Engine, BestMsKeepsDenseWhenTasdSlower) {
  const auto timings = timings_with_slower_than_dense_layer();
  EXPECT_DOUBLE_EQ(timings[0].best_ms(), 10.0);  // min, not tasd_ms
  EXPECT_DOUBLE_EQ(timings[1].best_ms(), 5.0);
  EXPECT_DOUBLE_EQ(timings[2].best_ms(), 12.0);
  EXPECT_DOUBLE_EQ(timings[0].conversion_savings_ms(), 0.0);
  EXPECT_DOUBLE_EQ(timings[2].conversion_savings_ms(), 8.0);
}

TEST(Engine, ConversionOrderNeverRanksLosingLayersAsBeneficial) {
  const auto timings = timings_with_slower_than_dense_layer();
  const auto order = conversion_order(timings);
  // The winner first; the -1.0 sentinel bug ranked the losing layer 0
  // (savings -0.5) ahead of the unconfigured layer 1.
  EXPECT_EQ(order[0], 2u);
  EXPECT_EQ(order[1], 0u);  // zero savings, index tie-break
  EXPECT_EQ(order[2], 1u);
}

TEST(Engine, NetworkLatencyMonotoneWithSlowerThanDenseLayer) {
  const auto timings = timings_with_slower_than_dense_layer();
  const auto order = conversion_order(timings);
  double prev = network_latency_ms(timings, order, 0);
  EXPECT_DOUBLE_EQ(prev, 35.0);
  for (std::size_t k = 1; k <= timings.size(); ++k) {
    const double cur = network_latency_ms(timings, order, k);
    EXPECT_LE(cur, prev) << "converting layer " << order[k - 1]
                         << " must never worsen latency";
    prev = cur;
  }
  // Converting everything equals converting only the beneficial prefix.
  EXPECT_DOUBLE_EQ(network_latency_ms(timings, order, 3), 27.0);
}

TEST(Engine, NDivisorRoundsAndSkipsTinyLayers) {
  auto net = tiny_net();
  net.layers[0].n = 6;    // < n_divisor: must keep full N
  net.layers[1].n = 100;  // 100/8 = 12.5: must round to 13, not 12
  CompileOptions opt;
  opt.n_divisor = 8;
  opt.measure.repeats = 1;
  const auto timings =
      compile(net, {std::nullopt, std::nullopt}, opt).measure();
  EXPECT_EQ(timings[0].n, 6u);
  EXPECT_EQ(timings[1].n, 13u);

  // No cliff at n == n_divisor: a layer one position wider than a
  // kept-at-full-N tiny layer must not measure narrower than it.
  net.layers[0].n = 8;   // == n_divisor: floor keeps it at 7, not 1
  net.layers[1].n = 7;   // < n_divisor: kept at full N
  const auto edge =
      compile(net, {std::nullopt, std::nullopt}, opt).measure();
  EXPECT_EQ(edge[0].n, 7u);
  EXPECT_EQ(edge[1].n, 7u);
}

TEST(Engine, ServingThroughputMeasuresEveryBatchSize) {
  const auto net = tiny_net();
  CompileOptions opt;
  const std::vector<std::size_t> batch_sizes = {1, 3};
  opt.measure.repeats = 1;
  const std::vector<std::optional<TasdConfig>> cfgs{
      TasdConfig::parse("2:4"), std::nullopt};

  const auto before = plan_cache().stats();
  const auto results = compile(net, cfgs, opt).serving_throughput(batch_sizes);
  const auto after = plan_cache().stats();

  ASSERT_EQ(results.size(), 2u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].batch_size, batch_sizes[i]);
    EXPECT_GT(results[i].dense_ms, 0.0);
    EXPECT_GT(results[i].tasd_ms, 0.0);
    EXPECT_GT(results[i].dense_qps, 0.0);
    EXPECT_GT(results[i].tasd_qps, 0.0);
  }
  // One plan for the single configured layer serves both batch sizes.
  EXPECT_LE(after.decompositions, before.decompositions + 1);
}

TEST(Engine, MonotoneSpeedupInConvertedLayers) {
  const auto net = tiny_net();
  CompileOptions opt;
  opt.n_divisor = 1;
  opt.measure.repeats = 2;
  const std::vector<std::optional<TasdConfig>> cfgs{
      TasdConfig::parse("1:4"), TasdConfig::parse("1:4")};
  const auto timings = compile(net, cfgs, opt).measure();
  const auto order = conversion_order(timings);
  double prev = network_latency_ms(timings, order, 0);
  for (std::size_t k = 1; k <= timings.size(); ++k) {
    const double cur = network_latency_ms(timings, order, k);
    EXPECT_LE(cur, prev + 1e-9);
    prev = cur;
  }
}

}  // namespace
}  // namespace tasd::rt
