#include "tensor/io.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace tasd::io {

std::vector<unsigned char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.good())
    throw Error(Error::Code::kInvalidArgument,
                "cannot open '" + path + "' for reading");
  const std::streamoff size = in.tellg();
  in.seekg(0);
  std::vector<unsigned char> bytes(static_cast<std::size_t>(size));
  if (!bytes.empty())
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!in.good() && !bytes.empty())
    throw Error(Error::Code::kInternal,
                "short read from '" + path + "' (wanted " +
                    std::to_string(bytes.size()) + " bytes)");
  return bytes;
}

void write_file(const std::string& path,
                std::span<const unsigned char> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good())
    throw Error(Error::Code::kInvalidArgument,
                "cannot open '" + path + "' for writing");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out.good())
    throw Error(Error::Code::kInternal,
                "short write to '" + path + "' (wanted " +
                    std::to_string(bytes.size()) + " bytes)");
}

}  // namespace tasd::io

namespace tasd {

namespace {
constexpr char kMagic[8] = {'T', 'A', 'S', 'D', 'M', 'A', 'T', '1'};
}

void save_matrix_csv(const MatrixF& m, const std::string& path) {
  std::ofstream out(path);
  TASD_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  char buf[64];
  for (Index r = 0; r < m.rows(); ++r) {
    for (Index c = 0; c < m.cols(); ++c) {
      std::snprintf(buf, sizeof buf, "%.9g", static_cast<double>(m(r, c)));
      if (c) out << ',';
      out << buf;
    }
    out << '\n';
  }
  TASD_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

MatrixF load_matrix_csv(const std::string& path) {
  std::ifstream in(path);
  TASD_CHECK_MSG(in.good(), "cannot open '" << path << "' for reading");
  std::vector<float> data;
  Index cols = 0;
  Index rows = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Index line_cols = 0;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      try {
        // Parse through double: stof rejects subnormal float values,
        // stod handles them and the cast rounds correctly.
        data.push_back(static_cast<float>(std::stod(cell)));
      } catch (const std::exception&) {
        TASD_CHECK_MSG(false, "bad CSV cell '" << cell << "' in " << path);
      }
      ++line_cols;
    }
    if (rows == 0) {
      cols = line_cols;
    } else {
      TASD_CHECK_MSG(line_cols == cols,
                     "ragged CSV: row " << rows << " has " << line_cols
                                        << " cells, expected " << cols);
    }
    ++rows;
  }
  TASD_CHECK_MSG(rows > 0, "empty CSV file '" << path << "'");
  return {rows, cols, std::move(data)};
}

void save_matrix_binary(const MatrixF& m, const std::string& path) {
  io::ByteWriter w;
  w.bytes(kMagic, sizeof kMagic);
  w.u64(m.rows());
  w.u64(m.cols());
  w.f32_array(m.flat());
  io::write_file(path, w.data());
}

MatrixF load_matrix_binary(const std::string& path) {
  const auto bytes = io::read_file(path);
  if (bytes.size() < sizeof kMagic)
    throw Error(Error::Code::kInternal,
                "'" + path + "' is truncated before the magic");
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0)
    throw Error(Error::Code::kFailedPrecondition,
                "'" + path + "' is not a TASD matrix file");
  io::ByteReader r(bytes, "matrix file '" + path + "'");
  char magic[sizeof kMagic];
  r.bytes(magic, sizeof magic);
  const std::uint64_t rows = r.u64();
  const std::uint64_t cols = r.u64();
  // Guard the element count before multiplying: with both factors below
  // 2^32 the u64 product cannot wrap, so a crafted header can neither
  // pass the size check via overflow nor drive a huge allocation.
  if (rows >= (1ULL << 32) || cols >= (1ULL << 32) ||
      rows * cols >= (1ULL << 32))
    throw Error(Error::Code::kInternal,
                "size-overflow header in '" + path + "' (" +
                    std::to_string(rows) + "x" + std::to_string(cols) + ")");
  const std::uint64_t expected = rows * cols * sizeof(float);
  if (r.remaining() != expected)
    throw Error(Error::Code::kInternal,
                "'" + path + "' holds " + std::to_string(r.remaining()) +
                    " data bytes, header claims " + std::to_string(expected));
  MatrixF m(static_cast<Index>(rows), static_cast<Index>(cols));
  r.f32_array(m.flat());
  return m;
}

}  // namespace tasd
