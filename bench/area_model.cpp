// §5.4: area overhead of the TASD units on top of the structured sparse
// PE array. The paper synthesizes RTL at Nangate 15 nm and reports <= 2 %
// of the PE area; we reproduce the claim with a gate-count model of the
// comparator trees.
#include <iostream>

#include "accel/tasd_unit.hpp"
#include "common/table.hpp"

using namespace tasd;

int main() {
  print_banner("TASD unit area model (paper 5.4: <= 2% of PE array)");

  TextTable t;
  t.header({"design", "TASD-unit gates/engine", "PE-array gates/engine",
            "overhead"});
  for (const auto& arch :
       {accel::ArchConfig::ttc_stc_m4(), accel::ArchConfig::ttc_stc_m8(),
        accel::ArchConfig::ttc_vegeta_m4(),
        accel::ArchConfig::ttc_vegeta_m8()}) {
    const auto a = accel::tasd_area_model(arch);
    t.row({arch.name, TextTable::num(a.tasd_unit_gates / 1e3, 1) + "k",
           TextTable::num(a.pe_array_gates / 1e3, 1) + "k",
           TextTable::pct(a.ratio(), 2)});
  }
  t.print();
  std::cout << "\nPaper check: every design stays at or below 2% area "
               "overhead.\n";
  return 0;
}
