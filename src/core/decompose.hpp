// Structured decomposition — the core TASD algorithm (paper §3).
//
// decompose(A, cfg) peels cfg.terms off A one at a time: term i is the
// si-view (largest-|value| per block) of the residual left by terms
// 1..i-1. The invariant `A == Σ terms + residual` holds *exactly* because
// elements are moved, never recombined arithmetically.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "sparse/nm_matrix.hpp"
#include "tensor/matrix.hpp"

namespace tasd {

/// One extracted TASD term: the pattern it satisfies plus its dense and
/// compressed representations. `dense` always satisfies `pattern`.
struct TasdTerm {
  sparse::NMPattern pattern;
  MatrixF dense;

  /// Compress this term to the hardware format.
  [[nodiscard]] sparse::NMSparseMatrix compressed() const {
    return {dense, pattern};
  }
};

/// Result of a structured decomposition.
struct Decomposition {
  TasdConfig config;
  std::vector<TasdTerm> terms;
  MatrixF residual;  ///< what the approximation drops

  /// Sum of the terms (the approximation of the original matrix).
  [[nodiscard]] MatrixF approximation() const;

  /// approximation() + residual — must equal the original exactly.
  [[nodiscard]] MatrixF reconstruct_exact() const;

  /// True when nothing was dropped (residual is all zeros).
  [[nodiscard]] bool lossless() const;
};

/// Decompose `matrix` with the given series configuration.
Decomposition decompose(const MatrixF& matrix, const TasdConfig& config);

/// Convenience: just the approximation Σ terms (e.g. for accuracy
/// experiments that do not need per-term access).
MatrixF approximate(const MatrixF& matrix, const TasdConfig& config);

}  // namespace tasd
