#include "core/config.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tasd {
namespace {

TEST(TasdConfig, ParseSingleTerm) {
  const auto cfg = TasdConfig::parse("2:4");
  ASSERT_EQ(cfg.order(), 1u);
  EXPECT_EQ(cfg.terms[0], sparse::NMPattern(2, 4));
  EXPECT_EQ(cfg.str(), "2:4");
}

TEST(TasdConfig, ParseSeries) {
  const auto cfg = TasdConfig::parse("4:8+1:8");
  ASSERT_EQ(cfg.order(), 2u);
  EXPECT_EQ(cfg.terms[0], sparse::NMPattern(4, 8));
  EXPECT_EQ(cfg.terms[1], sparse::NMPattern(1, 8));
  EXPECT_EQ(cfg.str(), "4:8+1:8");
}

TEST(TasdConfig, ParseThreeTerms) {
  const auto cfg = TasdConfig::parse("2:4+2:8+2:16");
  ASSERT_EQ(cfg.order(), 3u);
  EXPECT_DOUBLE_EQ(cfg.max_density(), 0.5 + 0.25 + 0.125);
}

TEST(TasdConfig, ParseRejectsMalformed) {
  EXPECT_THROW(TasdConfig::parse("2:4+"), Error);
  EXPECT_THROW(TasdConfig::parse("+2:4"), Error);
  EXPECT_THROW(TasdConfig::parse("2:4++1:8"), Error);
  EXPECT_THROW(TasdConfig::parse("garbage"), Error);
}

TEST(TasdConfig, MaxDensityClampsAtOne) {
  const auto cfg = TasdConfig::parse("4:4+4:4");
  EXPECT_DOUBLE_EQ(cfg.max_density(), 1.0);
  EXPECT_DOUBLE_EQ(cfg.approximated_sparsity(), 0.0);
}

TEST(TasdConfig, ApproximatedSparsity) {
  EXPECT_DOUBLE_EQ(TasdConfig::parse("4:8+1:8").approximated_sparsity(),
                   1.0 - 5.0 / 8.0);
  // 1:4 and 2:8 share the approximated sparsity.
  EXPECT_DOUBLE_EQ(TasdConfig::parse("1:4").approximated_sparsity(),
                   TasdConfig::parse("2:8").approximated_sparsity());
}

TEST(TasdConfig, ExtractionCyclesIsSumOfNs) {
  // Paper §4.4: the 4:8+1:8 configuration takes 5 extraction cycles.
  EXPECT_EQ(TasdConfig::parse("4:8+1:8").extraction_cycles_per_block(), 5);
  EXPECT_EQ(TasdConfig::parse("2:4").extraction_cycles_per_block(), 2);
}

TEST(TasdConfig, EmptyConfig) {
  TasdConfig empty;
  EXPECT_EQ(empty.order(), 0u);
  EXPECT_EQ(empty.str(), "<empty>");
  EXPECT_DOUBLE_EQ(empty.max_density(), 0.0);
}

TEST(TasdConfig, Equality) {
  EXPECT_EQ(TasdConfig::parse("2:4+2:8"), TasdConfig::parse("2:4+2:8"));
  EXPECT_FALSE(TasdConfig::parse("2:4+2:8") == TasdConfig::parse("2:8+2:4"));
}

}  // namespace
}  // namespace tasd
