#include "sparse/view.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace tasd::sparse {

namespace {

/// Indices (within [begin,end) of row) of the n largest-|v| elements,
/// ties toward lower index.
void select_top_n(std::span<const float> row, Index begin, Index end, int n,
                  std::vector<Index>& selected) {
  selected.clear();
  const Index len = end - begin;
  if (len == 0 || n == 0) return;
  std::vector<Index> idx(len);
  std::iota(idx.begin(), idx.end(), begin);
  const auto keep = std::min<Index>(static_cast<Index>(n), len);
  std::partial_sort(idx.begin(), idx.begin() + static_cast<long>(keep),
                    idx.end(), [&row](Index a, Index b) {
                      const float fa = std::fabs(row[a]);
                      const float fb = std::fabs(row[b]);
                      if (fa != fb) return fa > fb;
                      return a < b;
                    });
  selected.assign(idx.begin(), idx.begin() + static_cast<long>(keep));
}

}  // namespace

MatrixF nm_view(const MatrixF& matrix, const NMPattern& pattern) {
  return split_nm(matrix, pattern).view;
}

ViewSplit split_nm(const MatrixF& matrix, const NMPattern& pattern) {
  ViewSplit out{MatrixF(matrix.rows(), matrix.cols()), matrix};
  const auto m = static_cast<Index>(pattern.m);
  std::vector<Index> selected;
  for (Index r = 0; r < matrix.rows(); ++r) {
    auto src = matrix.row(r);
    auto view_row = out.view.row(r);
    auto res_row = out.residual.row(r);
    for (Index b = 0; b < matrix.cols(); b += m) {
      const Index end = std::min(matrix.cols(), b + m);
      select_top_n(src, b, end, pattern.n, selected);
      for (Index i : selected) {
        // Move the element: it appears in the view, vanishes from the
        // residual. No arithmetic, so the split is exact.
        view_row[i] = src[i];
        res_row[i] = 0.0F;
      }
    }
  }
  return out;
}

NMSparseMatrix extract_term_inplace(MatrixF& residual,
                                    const NMPattern& pattern) {
  const auto m = static_cast<Index>(pattern.m);
  const Index cols = residual.cols();
  const Index blocks_per_row = (cols + m - 1) / m;

  std::vector<float> values;
  std::vector<std::uint8_t> in_block_index;
  std::vector<Index> block_offsets;
  block_offsets.reserve(residual.rows() * blocks_per_row + 1);
  block_offsets.push_back(0);

  std::vector<Index> selected;
  for (Index r = 0; r < residual.rows(); ++r) {
    auto row = residual.row(r);
    for (Index b = 0; b < cols; b += m) {
      const Index end = std::min(cols, b + m);
      select_top_n(row, b, end, pattern.n, selected);
      // Emit in ascending column order — the order NMSparseMatrix's
      // dense-compression constructor produces — skipping zeros the way
      // compression does. Extracted elements move: they vanish from the
      // residual, so view + residual stays exact.
      std::sort(selected.begin(), selected.end());
      for (Index i : selected) {
        if (row[i] != 0.0F) {
          values.push_back(row[i]);
          in_block_index.push_back(static_cast<std::uint8_t>(i - b));
        }
        row[i] = 0.0F;
      }
      block_offsets.push_back(values.size());
    }
  }
  return NMSparseMatrix::from_parts(pattern, residual.rows(), cols,
                                    std::move(values),
                                    std::move(in_block_index),
                                    std::move(block_offsets));
}

}  // namespace tasd::sparse
