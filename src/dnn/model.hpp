// Model: an owning sequence of layers plus the TASD bookkeeping TASDER
// operates on.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dnn/layers.hpp"

namespace tasd::dnn {

/// How activations enter the model.
enum class InputKind { kImage, kTokens };

/// A DNN model: layers executed in sequence, with composite layers
/// (residual / attention blocks) nesting internally.
class Model {
 public:
  Model(std::string name, InputKind input_kind)
      : name_(std::move(name)), input_kind_(input_kind) {}

  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  /// Run the model end to end.
  Feature forward(const Feature& input);

  /// All TASD-targetable GEMM layers in execution order.
  [[nodiscard]] std::vector<GemmLayer*> gemm_layers();

  /// Clear every TASD-W / TASD-A config (restore the original model).
  void clear_tasd();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] InputKind input_kind() const { return input_kind_; }
  [[nodiscard]] std::size_t layer_count() const { return layers_.size(); }

  /// Models that fold the batch dimension into tokens (ViT) must be fed
  /// one sample at a time; predict() honours this flag.
  [[nodiscard]] bool single_sample_batches() const {
    return single_sample_batches_;
  }
  void set_single_sample_batches(bool v) { single_sample_batches_ = v; }

  /// Total parameters across GEMM layers.
  [[nodiscard]] Index parameter_count();

  /// Global weight sparsity across GEMM layers.
  [[nodiscard]] double weight_sparsity();

 private:
  std::string name_;
  InputKind input_kind_;
  bool single_sample_batches_ = false;
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace tasd::dnn
