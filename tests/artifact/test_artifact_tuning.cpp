// Tuning-section round-trip, host-signature policy, and the fuzz-style
// corruption matrix for TASDART1 files (ISSUE 10): a tuned artifact
// restores its per-layer binding verbatim on the measuring host, falls
// back to best_*() re-resolution (never a stale binding) on any other
// host, and no byte flip anywhere in the file — header, TOC, sections,
// tuning payload — can crash the loader or silently mis-bind kernels.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "artifact/artifact.hpp"
#include "artifact/format.hpp"
#include "common/cpu_features.hpp"
#include "common/rng.hpp"
#include "core/plan_cache.hpp"
#include "dnn/workloads.hpp"
#include "runtime/autotune.hpp"
#include "runtime/compiled_network.hpp"
#include "tensor/generator.hpp"
#include "tensor/io.hpp"

namespace tasd::rt {
namespace {

struct TimerGuard {
  explicit TimerGuard(TuneTimer hook) { set_autotune_timer(std::move(hook)); }
  ~TimerGuard() { set_autotune_timer({}); }
};

struct SignatureGuard {
  explicit SignatureGuard(const std::string& sig) {
    setenv("TASD_CPU_SIGNATURE", sig.c_str(), 1);
  }
  ~SignatureGuard() { unsetenv("TASD_CPU_SIGNATURE"); }
};

struct TempPath {
  std::string path;
  explicit TempPath(const std::string& name)
      : path(testing::TempDir() + name) {}
  ~TempPath() { std::remove(path.c_str()); }
};

/// Small on purpose: the corruption matrix loads the file once per byte,
/// so the whole artifact should stay a few KiB.
dnn::NetworkWorkload small_net() {
  dnn::NetworkWorkload net;
  net.name = "tuned-artifact";
  net.sparse_weights = true;
  dnn::GemmWorkload l1;
  l1.name = "a";
  l1.m = 8;
  l1.k = 16;
  l1.n = 8;
  l1.weight_density = 0.4;
  l1.weight_seed = 9301;
  dnn::GemmWorkload l2 = l1;
  l2.name = "b";
  l2.weight_density = 1.0;
  l2.weight_seed = 9302;
  net.layers = {l1, l2};
  return net;
}

std::vector<std::optional<TasdConfig>> small_configs() {
  return {TasdConfig::parse("2:4"), std::nullopt};
}

/// Deterministic non-default winners, so "binding restored" is
/// distinguishable from "binding re-resolved": serial/batch-loop are
/// never what best_*() picks.
TuneTimer slow_is_fast() {
  return [](const TuneMeasurement& m) {
    return m.kernel == (m.batch ? "batch-loop"
                                : (m.nm ? "serial" : "tiled-serial"))
               ? 1.0
               : 9.0;
  };
}

CompileOptions tuned_opt() {
  CompileOptions opt;
  opt.kernel_policy = KernelPolicy::kAutotune;
  opt.measure.use_plan_cache = false;
  return opt;
}

template <typename Fn>
std::optional<Error::Code> failure_code(Fn&& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.code();
  }
  return std::nullopt;
}

TEST(ArtifactTuning, TunedRoundTripRestoresTheBindingWithZeroDecompositions) {
  const TimerGuard timer(slow_is_fast());
  TempPath tmp("tasd_tuned_roundtrip.tasdart");
  const auto engine = compile(small_net(), small_configs(), tuned_opt());
  ASSERT_TRUE(engine.tuning().has_value());
  save_artifact(engine, tmp.path);

  const auto info = inspect_artifact(tmp.path);
  EXPECT_TRUE(info.has_tuning);
  EXPECT_GT(info.tuning_bytes, 0u);

  plan_cache().clear();
  const auto before = plan_cache().stats();
  const auto loaded = load_artifact(tmp.path, {});  // kStatic options
  EXPECT_EQ(plan_cache().stats().decompositions, before.decompositions);

  // The binding came back verbatim — tuning() populated, per-layer
  // kernels equal, candidate tables (f64 timings included) bit-exact.
  ASSERT_TRUE(loaded.tuning().has_value());
  const TuningResult& got = *loaded.tuning();
  const TuningResult& want = *engine.tuning();
  EXPECT_EQ(got.host_signature, want.host_signature);
  ASSERT_EQ(got.layers.size(), want.layers.size());
  for (std::size_t i = 0; i < want.layers.size(); ++i) {
    EXPECT_EQ(got.layers[i].layer, want.layers[i].layer);
    EXPECT_EQ(got.layers[i].nm, want.layers[i].nm);
    EXPECT_EQ(got.layers[i].chosen_single, want.layers[i].chosen_single);
    EXPECT_EQ(got.layers[i].chosen_batch, want.layers[i].chosen_batch);
    ASSERT_EQ(got.layers[i].single.size(), want.layers[i].single.size());
    for (std::size_t c = 0; c < want.layers[i].single.size(); ++c) {
      EXPECT_EQ(got.layers[i].single[c].kernel,
                want.layers[i].single[c].kernel);
      EXPECT_EQ(got.layers[i].single[c].ms, want.layers[i].single[c].ms);
    }
  }
  for (std::size_t i = 0; i < loaded.layer_count(); ++i) {
    EXPECT_EQ(loaded.layer(i).kernel, engine.layer(i).kernel) << i;
    EXPECT_EQ(loaded.layer(i).batch_kernel, engine.layer(i).batch_kernel) << i;
  }
  // And it executes with the restored (non-default) kernels, bitwise.
  Rng rng(9310);
  const MatrixF b = random_dense(16, 5, Dist::kNormalStd1, rng);
  EXPECT_EQ(loaded.run(0, b), engine.run(0, b));
  EXPECT_EQ(loaded.run(1, b), engine.run(1, b));
}

TEST(ArtifactTuning, StaticArtifactCarriesNoTuningSection) {
  TempPath tmp("tasd_static.tasdart");
  CompileOptions opt;
  opt.measure.use_plan_cache = false;
  save_artifact(compile(small_net(), small_configs(), opt), tmp.path);
  const auto info = inspect_artifact(tmp.path);
  EXPECT_FALSE(info.has_tuning);
  EXPECT_EQ(info.tuning_bytes, 0u);
  EXPECT_FALSE(load_artifact(tmp.path, opt).tuning().has_value());
}

TEST(ArtifactTuning, ForeignHostSignatureFallsBackToReResolution) {
  const TimerGuard timer(slow_is_fast());
  TempPath tmp("tasd_foreign.tasdart");
  save_artifact(compile(small_net(), small_configs(), tuned_opt()), tmp.path);

  // Load "on another machine": the stored binding must NOT transfer;
  // every layer re-resolves through the static best_*() chain exactly
  // as an untuned artifact would.
  const SignatureGuard sig("other-box|avx2=0,avx512=0");
  CompileOptions opt;
  opt.measure.use_plan_cache = false;
  const auto loaded = load_artifact(tmp.path, opt);
  EXPECT_FALSE(loaded.tuning().has_value());
  const auto& dispatch = GemmDispatch::instance();
  for (std::size_t i = 0; i < loaded.layer_count(); ++i) {
    const bool nm = loaded.layer(i).series.has_value();
    EXPECT_EQ(loaded.layer(i).kernel,
              nm ? dispatch.best_nm() : dispatch.best_dense())
        << "stale foreign binding on layer " << i;
    EXPECT_EQ(loaded.layer(i).batch_kernel,
              nm ? dispatch.best_nm_batch() : dispatch.best_dense_batch());
  }
}

TEST(ArtifactTuning, ForeignHostWithAutotunePolicyReTunes) {
  const TimerGuard timer(slow_is_fast());
  TempPath tmp("tasd_retune.tasdart");
  save_artifact(compile(small_net(), small_configs(), tuned_opt()), tmp.path);

  const SignatureGuard sig("other-box|avx2=0,avx512=0");
  const auto loaded = load_artifact(tmp.path, tuned_opt());
  ASSERT_TRUE(loaded.tuning().has_value());
  // Fresh measurement under the new identity, not the stored result.
  EXPECT_EQ(loaded.tuning()->host_signature, "other-box|avx2=0,avx512=0");
}

TEST(ArtifactTuning, MatchingHostRestoreSkipsReMeasurement) {
  // Loading with kAutotune on the measuring host must restore, not
  // re-tune: the hook counts invocations.
  std::size_t calls = 0;
  {
    const TimerGuard timer(slow_is_fast());
    TempPath tmp("tasd_norerun.tasdart");
    save_artifact(compile(small_net(), small_configs(), tuned_opt()),
                  tmp.path);
    set_autotune_timer([&calls](const TuneMeasurement&) {
      ++calls;
      return 1.0;
    });
    const auto loaded = load_artifact(tmp.path, tuned_opt());
    EXPECT_TRUE(loaded.tuning().has_value());
  }
  EXPECT_EQ(calls, 0u) << "a transferring binding must not re-measure";
}

TEST(ArtifactTuning, EveryByteFlipFailsTypedOrLoadsIdentically) {
  // The fuzz matrix: XOR one byte at a time across the ENTIRE file —
  // header (incl. the tuning crc/offset/size fields), name, TOC,
  // section payloads, alignment padding, tuning payload. Each mutation
  // must either throw a typed Error (kFailedPrecondition when the file
  // no longer identifies as ours, kInternal for corruption) or load a
  // network whose bindings and outputs are identical to the pristine
  // one (flips in padding or in non-semantic name bytes) — never a
  // crash, another exception type, or a silently different network.
  const TimerGuard timer(slow_is_fast());
  TempPath tmp("tasd_fuzz.tasdart");
  const auto engine = compile(small_net(), small_configs(), tuned_opt());
  save_artifact(engine, tmp.path);
  const auto pristine = io::read_file(tmp.path);

  Rng rng(9320);
  const MatrixF probe = random_dense(16, 3, Dist::kNormalStd1, rng);
  const MatrixF want0 = engine.run(0, probe);
  const MatrixF want1 = engine.run(1, probe);
  CompileOptions opt;
  opt.measure.use_plan_cache = false;

  std::size_t typed = 0, benign = 0;
  for (std::size_t pos = 0; pos < pristine.size(); ++pos) {
    auto bytes = pristine;
    bytes[pos] ^= 0xA5;
    io::write_file(tmp.path, bytes);
    try {
      const auto loaded = load_artifact(tmp.path, opt);
      ++benign;
      for (std::size_t i = 0; i < loaded.layer_count(); ++i) {
        ASSERT_EQ(loaded.layer(i).kernel, engine.layer(i).kernel)
            << "silent re-binding after flipping byte " << pos;
        ASSERT_EQ(loaded.layer(i).batch_kernel, engine.layer(i).batch_kernel)
            << "byte " << pos;
      }
      ASSERT_EQ(loaded.run(0, probe), want0) << "byte " << pos;
      ASSERT_EQ(loaded.run(1, probe), want1) << "byte " << pos;
    } catch (const Error& e) {
      ++typed;
      ASSERT_TRUE(e.code() == Error::Code::kFailedPrecondition ||
                  e.code() == Error::Code::kInternal)
          << "byte " << pos << ": unexpected code " << static_cast<int>(e.code());
    }
    // Any other exception (or a crash) propagates and fails the test.
  }
  // CRCs cover all payloads, so the overwhelming majority of flips must
  // be caught; only padding/name flips may load.
  EXPECT_GT(typed, pristine.size() / 2);
  EXPECT_EQ(typed + benign, pristine.size());
}

}  // namespace
}  // namespace tasd::rt
