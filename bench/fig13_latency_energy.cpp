// Figure 13: normalized end-to-end latency and energy for the four
// workloads on the six designs (dense TC = 1.0).
//
// Paper reference: TTC-VEGETA-M8 is the most energy-efficient everywhere
// and only slightly slower than DSTC on sparse ResNet-50.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"

using namespace tasd;

int main() {
  print_banner(
      "Figure 13: normalized latency / energy (dense TC = 1.0)");

  const auto workloads = bench::paper_workloads();
  const auto designs = accel::ArchConfig::paper_designs();

  for (const char* metric : {"latency", "energy"}) {
    std::cout << "\n-- " << metric << " --\n";
    TextTable t;
    std::vector<std::string> header{"workload"};
    for (const auto& d : designs) header.push_back(d.name);
    t.header(header);
    std::vector<std::vector<double>> norm(designs.size());
    for (const auto& net : workloads) {
      const auto base = bench::baseline_tc(net);
      std::vector<std::string> row{net.name};
      for (std::size_t a = 0; a < designs.size(); ++a) {
        const auto sim = bench::run_on(designs[a], net);
        const double v = std::string(metric) == "latency"
                             ? sim.cycles / base.cycles
                             : sim.energy_pj / base.energy_pj;
        norm[a].push_back(v);
        row.push_back(TextTable::num(v, 3));
      }
      t.row(row);
    }
    std::vector<std::string> geo{"geomean"};
    for (std::size_t a = 0; a < designs.size(); ++a)
      geo.push_back(TextTable::num(accel::geomean(norm[a]), 3));
    t.row(geo);
    t.print();
  }

  std::cout << "\nPaper shape check: TTC-VEGETA-M8 lowest-energy across "
               "workloads; DSTC latency\ncompetitive only on sparse "
               "ResNet-50; DSTC energy worst on dense BERT.\n";
  return 0;
}
