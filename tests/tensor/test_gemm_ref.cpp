#include "tensor/gemm_ref.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/generator.hpp"
#include "tensor/norms.hpp"

namespace tasd {
namespace {

TEST(GemmRef, TwoByTwoKnownResult) {
  MatrixF a(2, 2, {1, 2, 3, 4});
  MatrixF b(2, 2, {5, 6, 7, 8});
  MatrixF c = gemm_ref(a, b);
  EXPECT_EQ(c(0, 0), 19.0F);
  EXPECT_EQ(c(0, 1), 22.0F);
  EXPECT_EQ(c(1, 0), 43.0F);
  EXPECT_EQ(c(1, 1), 50.0F);
}

TEST(GemmRef, IdentityIsNeutral) {
  Rng rng(1);
  MatrixF a = random_dense(5, 5, Dist::kNormalStd1, rng);
  MatrixF id(5, 5);
  for (Index i = 0; i < 5; ++i) id(i, i) = 1.0F;
  EXPECT_TRUE(allclose(gemm_ref(a, id), a));
  EXPECT_TRUE(allclose(gemm_ref(id, a), a));
}

TEST(GemmRef, InnerDimMismatchThrows) {
  MatrixF a(2, 3);
  MatrixF b(4, 2);
  EXPECT_THROW(gemm_ref(a, b), Error);
}

TEST(GemmRef, AccumulateAddsIntoC) {
  MatrixF a(1, 1, {2.0F});
  MatrixF b(1, 1, {3.0F});
  MatrixF c(1, 1, {10.0F});
  gemm_ref_accumulate(a, b, c);
  EXPECT_EQ(c(0, 0), 16.0F);
}

TEST(GemmRef, AccumulateValidatesCShape) {
  MatrixF a(2, 2);
  MatrixF b(2, 2);
  MatrixF c(2, 3);
  EXPECT_THROW(gemm_ref_accumulate(a, b, c), Error);
}

TEST(GemmRef, ZeroRowsOfAYieldZeroRowsOfC) {
  Rng rng(2);
  MatrixF a(3, 4);  // all zeros
  MatrixF b = random_dense(4, 5, Dist::kUniform01, rng);
  MatrixF c = gemm_ref(a, b);
  for (float v : c.flat()) EXPECT_EQ(v, 0.0F);
}

TEST(GemmRef, LinearInA) {
  Rng rng(3);
  MatrixF a = random_dense(4, 6, Dist::kNormalStd1, rng);
  MatrixF b = random_dense(6, 3, Dist::kNormalStd1, rng);
  MatrixF a2 = a;
  a2 *= 2.0F;
  MatrixF c1 = gemm_ref(a, b);
  c1 *= 2.0F;
  EXPECT_TRUE(allclose(gemm_ref(a2, b), c1, 1e-4, 1e-4));
}

TEST(GemmRef, RectangularShapes) {
  Rng rng(4);
  MatrixF a = random_dense(7, 13, Dist::kNormalStd1, rng);
  MatrixF b = random_dense(13, 2, Dist::kNormalStd1, rng);
  MatrixF c = gemm_ref(a, b);
  EXPECT_EQ(c.rows(), 7u);
  EXPECT_EQ(c.cols(), 2u);
  // Check one element by hand.
  float acc = 0.0F;
  for (Index p = 0; p < 13; ++p) acc += a(3, p) * b(p, 1);
  EXPECT_NEAR(c(3, 1), acc, 1e-4);
}

}  // namespace
}  // namespace tasd
