// Error handling for the TASD library.
//
// All precondition violations throw tasd::Error with a message that
// includes the failing expression and source location. TASD_CHECK is
// compiled in every build type (these are API-contract checks, not
// debug-only asserts).
//
// Every Error carries a Code so layered components (notably the serving
// engine) can map a failure to a per-request status programmatically
// instead of parsing what() strings. The one-argument constructor keeps
// every existing `throw Error(msg)` / TASD_CHECK call site source- and
// semantics-compatible: contract violations are kInvalidArgument.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tasd {

/// Exception type thrown on any TASD API contract violation.
class Error : public std::runtime_error {
 public:
  /// Failure taxonomy, in the spirit of canonical RPC status codes.
  enum class Code {
    kInvalidArgument,    ///< caller broke an API contract (bad shape, NaN…)
    kFailedPrecondition, ///< object state does not permit the call
    kDeadlineExceeded,   ///< work expired before (or while) running
    kResourceExhausted,  ///< queue full, allocation failure, over budget
    kUnavailable,        ///< component shut down / draining
    kInternal,           ///< invariant broken inside the library
  };

  explicit Error(const std::string& what, Code code = Code::kInvalidArgument)
      : std::runtime_error(what), code_(code) {}
  Error(Code code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  [[nodiscard]] Code code() const { return code_; }

 private:
  Code code_;
};

/// Stable lowercase name of a code (for logs, JSON, and test messages).
inline const char* error_code_name(Error::Code code) {
  switch (code) {
    case Error::Code::kInvalidArgument: return "invalid_argument";
    case Error::Code::kFailedPrecondition: return "failed_precondition";
    case Error::Code::kDeadlineExceeded: return "deadline_exceeded";
    case Error::Code::kResourceExhausted: return "resource_exhausted";
    case Error::Code::kUnavailable: return "unavailable";
    case Error::Code::kInternal: return "internal";
  }
  return "unknown";
}

namespace detail {

[[noreturn]] inline void raise_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "TASD_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str(), Error::Code::kInvalidArgument);
}

}  // namespace detail
}  // namespace tasd

/// Contract check, active in all build types. Throws tasd::Error.
#define TASD_CHECK(expr)                                                   \
  do {                                                                     \
    if (!(expr))                                                           \
      ::tasd::detail::raise_check_failure(#expr, __FILE__, __LINE__, "");  \
  } while (false)

/// Contract check with a streamed message: TASD_CHECK_MSG(x > 0, "x=" << x).
#define TASD_CHECK_MSG(expr, msg)                                          \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream tasd_check_os_;                                   \
      tasd_check_os_ << msg;                                               \
      ::tasd::detail::raise_check_failure(#expr, __FILE__, __LINE__,       \
                                          tasd_check_os_.str());           \
    }                                                                      \
  } while (false)
