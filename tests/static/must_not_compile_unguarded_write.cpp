// MUST NOT COMPILE under -Wthread-safety -Werror: writes a
// TASD_GUARDED_BY field without holding its mutex — the exact shape of
// a lost-update data race on a metrics counter.
#include "common/sync.hpp"

namespace {

class Counter {
 public:
  void racy_increment() {
    ++value_;  // write without mu_ held: compile error
  }

 private:
  tasd::Mutex mu_;
  int value_ TASD_GUARDED_BY(mu_) = 0;
};

}  // namespace

void probe() {
  Counter c;
  c.racy_increment();
}
