// Round-trip property sweeps across formats, patterns, and densities.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sparse/csr.hpp"
#include "sparse/nm_matrix.hpp"
#include "sparse/view.hpp"
#include "tensor/generator.hpp"

namespace tasd::sparse {
namespace {

struct RoundTripCase {
  int n, m;
  double density;
  Index rows, cols;
};

void PrintTo(const RoundTripCase& c, std::ostream* os) {
  *os << c.n << ":" << c.m << " d=" << c.density << " " << c.rows << "x"
      << c.cols;
}

class NmRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(NmRoundTrip, ViewCompressDecompressExact) {
  const auto p = GetParam();
  Rng rng(1000 + p.n * 13 + p.m + p.cols);
  const MatrixF dense =
      random_unstructured(p.rows, p.cols, p.density, Dist::kNormalStd1, rng);
  const NMPattern pattern(p.n, p.m);
  const MatrixF view = nm_view(dense, pattern);
  const NMSparseMatrix compressed(view, pattern);
  EXPECT_EQ(compressed.to_dense(), view);
  EXPECT_EQ(compressed.nnz(), view.nnz());
  EXPECT_LE(compressed.nnz(),
            (p.rows * ((p.cols + p.m - 1) / p.m)) *
                static_cast<Index>(p.n));
}

TEST_P(NmRoundTrip, CsrRoundTripExact) {
  const auto p = GetParam();
  Rng rng(2000 + p.n * 13 + p.m + p.cols);
  const MatrixF dense =
      random_unstructured(p.rows, p.cols, p.density, Dist::kNormalStd1, rng);
  const CSRMatrix csr(dense);
  EXPECT_EQ(csr.to_dense(), dense);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, NmRoundTrip,
    ::testing::Values(RoundTripCase{1, 4, 0.1, 8, 32},
                      RoundTripCase{2, 4, 0.5, 8, 32},
                      RoundTripCase{3, 4, 0.9, 8, 32},
                      RoundTripCase{1, 8, 0.05, 16, 64},
                      RoundTripCase{2, 8, 0.3, 16, 64},
                      RoundTripCase{4, 8, 0.7, 16, 64},
                      RoundTripCase{7, 8, 1.0, 16, 64},
                      RoundTripCase{2, 16, 0.2, 8, 48},
                      RoundTripCase{2, 8, 0.5, 4, 30},    // ragged
                      RoundTripCase{1, 4, 0.5, 1, 3},     // tiny ragged
                      RoundTripCase{4, 8, 0.0, 8, 32}));  // all-zero

}  // namespace
}  // namespace tasd::sparse
