// Failure injection: malformed inputs must fail loudly (tasd::Error),
// never silently corrupt results — including on the concurrent batch
// path, where a mid-batch failure must name the offending item and
// leave the compiled artifact fully usable.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "accel/perf_model.hpp"
#include "common/fault.hpp"
#include "common/rng.hpp"
#include "core/decompose.hpp"
#include "core/series_enum.hpp"
#include "dnn/builders.hpp"
#include "dnn/metrics.hpp"
#include "runtime/compiled_network.hpp"
#include "tasder/tasda.hpp"
#include "tensor/generator.hpp"

namespace tasd {
namespace {

TEST(FailureInjection, MalformedConfigStrings) {
  for (const char* bad : {"", "2", "2:", ":4", "2:4+", "+", "2;4", "a:b",
                          "2:4 + 1:8", "-1:4", "5:4"}) {
    EXPECT_THROW(TasdConfig::parse(bad), Error) << '"' << bad << '"';
  }
}

TEST(FailureInjection, OversizedPatternRejected) {
  EXPECT_THROW(sparse::NMPattern(9, 8), Error);
  EXPECT_THROW(sparse::NMPattern(1, -4), Error);
}

TEST(FailureInjection, EmptyModelForwardThrows) {
  dnn::Model empty("empty", dnn::InputKind::kImage);
  EXPECT_THROW(empty.forward(dnn::Feature(Tensor4D(1, 1, 2, 2))), Error);
}

TEST(FailureInjection, MismatchedEvalSetThrows) {
  dnn::ConvNetOptions o;
  o.input_hw = 8;
  o.width_mult = 0.125;
  o.num_classes = 10;
  dnn::Model m = dnn::make_resnet(18, o);
  // Wrong channel count fails inside im2col's contract check.
  const auto eval = dnn::EvalSet::images(2, 8, 5, 1);
  EXPECT_THROW(dnn::predict(m, eval), Error);
}

TEST(FailureInjection, PerfModelRejectsForeignSeries) {
  dnn::GemmWorkload l;
  l.m = l.k = l.n = 64;
  const auto stc = accel::ArchConfig::ttc_stc_m4();
  accel::LayerExecution exec{l, TasdConfig::parse("1:4"), {}, {}};
  EXPECT_THROW(accel::simulate_layer(stc, exec), Error);
}

TEST(FailureInjection, CompileRejectsMisalignedConfigList) {
  dnn::NetworkWorkload net;
  net.name = "x";
  dnn::GemmWorkload l;
  l.m = l.k = l.n = 8;
  net.layers = {l, l};
  EXPECT_THROW(rt::compile(net, {std::nullopt}, {}), Error);
}

TEST(FailureInjection, SeriesEnumRejectsZeroTermBudget) {
  EXPECT_THROW(enumerate_configs({sparse::NMPattern(2, 4)}, 0), Error);
}

TEST(FailureInjection, AgreementLengthMismatch) {
  EXPECT_THROW(dnn::agreement({1, 2}, {1}), Error);
}

TEST(FailureInjection, DecomposeWithNonFiniteValuesStillExact) {
  // Even pathological values must preserve the move-exactness invariant
  // (no NaN arithmetic is performed on the kept/dropped split).
  MatrixF m(1, 8, {1.0F, -2.0F, 1e30F, -1e30F, 1e-30F, 0.0F, 3.0F, -4.0F});
  const auto d = decompose(m, TasdConfig::parse("2:4+2:8"));
  EXPECT_EQ(d.reconstruct_exact(), m);
}

TEST(FailureInjection, TasdaSelectionHandlesExtremeSparsity) {
  const auto candidates =
      tasder::hw_profile_from(accel::ArchConfig::ttc_vegeta_m8())
          .candidate_configs();
  // Sparsity above 1 (impossible but defensive): picks the sparsest.
  const auto cfg = tasder::select_tasda_config(candidates, 1.5, 0.0);
  ASSERT_TRUE(cfg);
  EXPECT_EQ(cfg->str(), "1:8");
  // Negative sparsity: nothing fits.
  EXPECT_FALSE(tasder::select_tasda_config(candidates, -1.0, 0.0));
}

// --- Concurrent-path containment -----------------------------------
//
// The cases below drive the real compiled kernel path (TASD series and
// dense layers) at thread counts {0, 2, 8} — the same execution
// substrate the serving engine batches onto.

/// Two-layer net (one 2:4 TASD, one dense) with integration-suite seeds.
rt::CompiledNetwork compile_two_layer(std::size_t threads,
                                      bool validate_inputs = false) {
  dnn::NetworkWorkload net;
  net.name = "inject-net";
  net.sparse_weights = true;
  dnn::GemmWorkload l1;
  l1.name = "fi_sparse";
  l1.m = 48;
  l1.k = 128;
  l1.n = 32;
  l1.weight_density = 0.1;
  l1.weight_seed = 7300;
  dnn::GemmWorkload l2 = l1;
  l2.name = "fi_dense";
  l2.m = 64;
  l2.k = 96;
  l2.weight_seed = 7301;
  net.layers = {l1, l2};
  rt::CompileOptions opt;
  opt.validate_inputs = validate_inputs;
  opt.measure.num_threads = threads;
  return rt::compile(net, {TasdConfig::parse("2:4"), std::nullopt}, opt);
}

TEST(FailureInjection, MidBatchShapeMismatchNamesItemUnderThreads) {
  for (std::size_t threads : {0u, 2u, 8u}) {
    const auto net = compile_two_layer(threads);
    for (std::size_t layer : {0u, 1u}) {
      Rng rng(9301 + layer);
      std::vector<MatrixF> batch;
      for (int i = 0; i < 4; ++i)
        batch.push_back(random_dense(net.layer(layer).k, 3,
                                     Dist::kNormalStd1, rng));
      // Poison item 2 with a wrong row count.
      batch[2] = random_dense(net.layer(layer).k + 1, 3, Dist::kNormalStd1,
                              rng);
      try {
        (void)net.run_batch(layer, batch);
        FAIL() << "threads=" << threads << " layer=" << layer;
      } catch (const Error& e) {
        EXPECT_EQ(e.code(), Error::Code::kInvalidArgument);
        const std::string what = e.what();
        EXPECT_NE(what.find("at item 2"), std::string::npos) << what;
        EXPECT_NE(what.find(net.layer(layer).name), std::string::npos);
      }
      // The artifact stays usable: the healthy prefix runs bit-exactly.
      batch.resize(2);
      const auto out = net.run_batch(layer, batch);
      ASSERT_EQ(out.size(), 2u);
      for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], net.run(layer, batch[i]))
            << "threads=" << threads << " layer=" << layer << " i=" << i;
    }
  }
}

TEST(FailureInjection, ThrowingLayerUnderThreadsIsContained) {
  for (std::size_t threads : {0u, 2u, 8u}) {
    const auto net = compile_two_layer(threads);
    Rng rng(9310);
    std::vector<MatrixF> batch;
    for (int i = 0; i < 3; ++i)
      batch.push_back(random_dense(net.layer(0).k, 2, Dist::kNormalStd1,
                                   rng));
    const auto reference = net.run_batch(0, batch);
    {
      fault::Spec spec;
      spec.site = "rt.run_batch";
      spec.detail = "fi_sparse";
      const fault::ScopedFault f(spec);
      try {
        (void)net.run_batch(0, batch);
        FAIL() << "threads=" << threads;
      } catch (const Error& e) {
        EXPECT_EQ(e.code(), Error::Code::kInternal);
      }
      EXPECT_EQ(f.fires(), 1u);
      // Other layers are unaffected while the fault is armed.
      EXPECT_NO_THROW(net.run(
          1, random_dense(net.layer(1).k, 1, Dist::kNormalStd1, rng)));
    }
    // Disarmed: same call, bit-exact results — no corrupted state.
    EXPECT_EQ(net.run_batch(0, batch), reference) << "threads=" << threads;
  }
}

TEST(FailureInjection, ValidateInputsRejectsNonFiniteNamingItem) {
  const auto strict = compile_two_layer(0, /*validate_inputs=*/true);
  const auto lax = compile_two_layer(0, /*validate_inputs=*/false);
  const float poisons[] = {std::numeric_limits<float>::quiet_NaN(),
                           std::numeric_limits<float>::infinity(),
                           -std::numeric_limits<float>::infinity()};
  for (const float poison : poisons) {
    Rng rng(9320);
    std::vector<MatrixF> batch;
    for (int i = 0; i < 3; ++i)
      batch.push_back(random_dense(strict.layer(0).k, 2, Dist::kNormalStd1,
                                   rng));
    batch[1](5, 1) = poison;
    try {
      (void)strict.run_batch(0, batch);
      FAIL() << "poison=" << poison;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), Error::Code::kInvalidArgument);
      const std::string what = e.what();
      EXPECT_NE(what.find("non-finite"), std::string::npos) << what;
      EXPECT_NE(what.find("batch item 1"), std::string::npos) << what;
    }
    // Off by default: the scan is opt-in, so the lax artifact computes
    // through (garbage in, garbage out — but no throw).
    EXPECT_NO_THROW(lax.run_batch(0, batch));
  }
}

TEST(FailureInjection, FaultScheduleIsDeterministicThroughKernelPath) {
  const auto net = compile_two_layer(0);
  Rng rng(9330);
  const MatrixF in = random_dense(net.layer(1).k, 1, Dist::kNormalStd1, rng);
  const auto drive = [&] {
    fault::Spec spec;
    spec.site = "rt.run";
    spec.detail = "fi_dense";
    spec.probability = 0.5;
    spec.seed = 99;
    const fault::ScopedFault f(spec);
    std::vector<bool> fired;
    for (int i = 0; i < 32; ++i) {
      bool threw = false;
      try {
        (void)net.run(1, in);
      } catch (const Error&) {
        threw = true;
      }
      fired.push_back(threw);
    }
    return fired;
  };
  EXPECT_EQ(drive(), drive())
      << "same seed through the real kernel path must reproduce";
}

}  // namespace
}  // namespace tasd
