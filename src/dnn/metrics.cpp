#include "dnn/metrics.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "tensor/generator.hpp"

namespace tasd::dnn {

EvalSet EvalSet::images(Index count, Index hw, Index channels,
                        std::uint64_t seed) {
  EvalSet s;
  s.is_images_ = true;
  Rng rng(seed);
  Index remaining = count;
  while (remaining > 0) {
    const Index n = std::min(kImageBatch, remaining);
    s.image_batches_.push_back(
        random_tensor(n, channels, hw, hw, 1.0, Dist::kNormalStd1, rng));
    remaining -= n;
  }
  return s;
}

EvalSet EvalSet::tokens(Index count, Index dim, Index tokens,
                        std::uint64_t seed) {
  EvalSet s;
  s.is_images_ = false;
  Rng rng(seed);
  for (Index i = 0; i < count; ++i)
    s.sequences_.push_back(random_dense(dim, tokens, Dist::kNormalStd1, rng));
  return s;
}

Index EvalSet::count() const {
  if (!is_images_) return sequences_.size();
  Index total = 0;
  for (const auto& b : image_batches_) total += b.n();
  return total;
}

namespace {

/// Argmax over each column of a (classes x samples) logits matrix,
/// ties toward the lower class index. When `margins` is non-null, the
/// top-1/top-2 logit gap of each column is appended to it.
void argmax_cols(const MatrixF& logits, std::vector<Index>& out,
                 std::vector<float>* margins = nullptr) {
  for (Index c = 0; c < logits.cols(); ++c) {
    Index best = 0;
    float best_v = logits(0, c);
    float second_v = -std::numeric_limits<float>::infinity();
    for (Index r = 1; r < logits.rows(); ++r) {
      const float v = logits(r, c);
      if (v > best_v) {
        second_v = best_v;
        best_v = v;
        best = r;
      } else if (v > second_v) {
        second_v = v;
      }
    }
    out.push_back(best);
    if (margins) {
      margins->push_back(logits.rows() > 1 ? best_v - second_v
                                           : best_v);
    }
  }
}

}  // namespace

namespace {

/// Shared forward loop for predict()/confident_labels().
std::vector<Index> predict_impl(Model& model, const EvalSet& eval,
                                std::vector<float>* margins) {
  std::vector<Index> labels;
  labels.reserve(eval.count());
  if (eval.is_images()) {
    TASD_CHECK_MSG(model.input_kind() == InputKind::kImage,
                   "image eval set on a token model");
    for (const auto& batch : eval.image_batches()) {
      if (model.single_sample_batches()) {
        // ViT-style models fold batch into tokens: feed one sample at a
        // time.
        for (Index i = 0; i < batch.n(); ++i) {
          Tensor4D one(1, batch.c(), batch.h(), batch.w());
          for (Index c = 0; c < batch.c(); ++c)
            for (Index y = 0; y < batch.h(); ++y)
              for (Index x = 0; x < batch.w(); ++x)
                one(0, c, y, x) = batch(i, c, y, x);
          const MatrixF logits = model.forward(Feature(std::move(one))).matrix();
          argmax_cols(logits, labels, margins);
        }
      } else {
        const MatrixF logits = model.forward(Feature(batch)).matrix();
        argmax_cols(logits, labels, margins);
      }
    }
  } else {
    TASD_CHECK_MSG(model.input_kind() == InputKind::kTokens,
                   "token eval set on an image model");
    for (const auto& seq : eval.sequences()) {
      const MatrixF logits = model.forward(Feature(seq)).matrix();
      argmax_cols(logits, labels, margins);
    }
  }
  return labels;
}

}  // namespace

std::vector<Index> predict(Model& model, const EvalSet& eval) {
  return predict_impl(model, eval, nullptr);
}

std::vector<Index> confident_labels(Model& model, const EvalSet& eval,
                                    double keep_fraction) {
  TASD_CHECK_MSG(keep_fraction > 0.0 && keep_fraction <= 1.0,
                 "keep_fraction " << keep_fraction << " out of (0,1]");
  std::vector<float> margins;
  std::vector<Index> labels = predict_impl(model, eval, &margins);
  if (keep_fraction >= 1.0 || labels.empty()) return labels;
  std::vector<float> sorted = margins;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const auto keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(keep_fraction * static_cast<double>(sorted.size()))));
  const float threshold = sorted[keep - 1];
  for (std::size_t i = 0; i < labels.size(); ++i)
    if (margins[i] < threshold) labels[i] = kIgnoreLabel;
  return labels;
}

double agreement(const std::vector<Index>& reference,
                 const std::vector<Index>& predictions) {
  TASD_CHECK_MSG(reference.size() == predictions.size(),
                 "label vectors differ in length");
  Index hits = 0;
  Index counted = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    if (reference[i] == kIgnoreLabel) continue;
    ++counted;
    if (reference[i] == predictions[i]) ++hits;
  }
  if (counted == 0) return 1.0;
  return static_cast<double>(hits) / static_cast<double>(counted);
}

double top1_agreement(Model& model, const EvalSet& eval,
                      const std::vector<Index>& reference) {
  return agreement(reference, predict(model, eval));
}

}  // namespace tasd::dnn
