#include "sparse/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "sparse/view.hpp"
#include "tensor/norms.hpp"

namespace tasd::sparse {

std::vector<Index> block_nnz_histogram(const MatrixF& matrix, int m) {
  TASD_CHECK_MSG(m > 0, "block size must be positive");
  std::vector<Index> hist(static_cast<Index>(m) + 1, 0);
  const auto mm = static_cast<Index>(m);
  for (Index r = 0; r < matrix.rows(); ++r) {
    auto row = matrix.row(r);
    for (Index b = 0; b < matrix.cols(); b += mm) {
      const Index end = std::min(matrix.cols(), b + mm);
      Index nnz = 0;
      for (Index i = b; i < end; ++i)
        if (row[i] != 0.0F) ++nnz;
      ++hist[nnz];
    }
  }
  return hist;
}

double view_nnz_coverage(const MatrixF& matrix, const NMPattern& pattern) {
  const Index total = matrix.nnz();
  if (total == 0) return 1.0;
  const MatrixF v = nm_view(matrix, pattern);
  return static_cast<double>(v.nnz()) / static_cast<double>(total);
}

double view_magnitude_coverage(const MatrixF& matrix,
                               const NMPattern& pattern) {
  const double total = magnitude_sum(matrix);
  if (total == 0.0) return 1.0;
  const MatrixF v = nm_view(matrix, pattern);
  return magnitude_sum(v) / total;
}

double density(const MatrixF& matrix) { return 1.0 - matrix.sparsity(); }

double pseudo_density(const MatrixF& matrix, double coverage) {
  TASD_CHECK_MSG(coverage > 0.0 && coverage <= 1.0,
                 "coverage " << coverage << " out of (0,1]");
  if (matrix.empty()) return 0.0;
  std::vector<float> mags;
  mags.reserve(matrix.size());
  for (float v : matrix.flat()) mags.push_back(std::fabs(v));
  std::sort(mags.begin(), mags.end(), std::greater<>());
  double total = 0.0;
  for (float v : mags) total += v;
  if (total == 0.0) return 0.0;
  const double target = coverage * total;
  double acc = 0.0;
  Index needed = 0;
  for (float v : mags) {
    acc += v;
    ++needed;
    if (acc >= target) break;
  }
  return static_cast<double>(needed) / static_cast<double>(mags.size());
}

}  // namespace tasd::sparse
