// Bit-exactness of the parallel execution layer: every GEMM kernel must
// produce *identical* bits at every thread count (deterministic row
// partitioning, no shared float accumulation), across odd shapes that
// stress the partition (m=1, non-multiple-of-tile N, ragged K).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/cpu_features.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/decompose.hpp"
#include "core/plan_cache.hpp"
#include "core/tasd_gemm.hpp"
#include "runtime/dense_gemm.hpp"
#include "runtime/gemm_dispatch.hpp"
#include "runtime/nm_gemm.hpp"
#include "tensor/gemm_ref.hpp"
#include "tensor/generator.hpp"
#include "tensor/norms.hpp"

namespace tasd::rt {
namespace {

struct Shape {
  Index m, k, n;
};

// m=1, tiny, prime dims, non-multiple-of-tile (kTileN=512) widths, and a
// k that is not a multiple of the 4-wide unroll or the N:M block size.
const Shape kShapes[] = {
    {1, 8, 8}, {1, 64, 517}, {3, 7, 5},  {16, 32, 8},
    {33, 30, 129}, {64, 100, 513}, {7, 128, 1024},
};

const std::size_t kThreadCounts[] = {0, 1, 2, 3, 5, 8};

TEST(ParallelKernels, DenseBitIdenticalAcrossThreadCounts) {
  // Every registered dense kernel (scalar and SIMD alike) must match its
  // own 1-thread run bitwise at every thread count.
  for (const std::string& kernel : GemmDispatch::instance().dense_kernels()) {
    for (const auto& s : kShapes) {
      Rng rng(100 + s.m + s.k + s.n);
      const MatrixF a = random_dense(s.m, s.k, Dist::kNormalStd1, rng);
      const MatrixF b = random_dense(s.k, s.n, Dist::kNormalStd1, rng);

      ThreadPool serial(1);
      ExecPolicy serial_policy;
      serial_policy.pool = &serial;
      serial_policy.dense_kernel = kernel;
      const MatrixF reference = dense_gemm(a, b, serial_policy);

      for (std::size_t threads : kThreadCounts) {
        ThreadPool pool(threads);
        ExecPolicy policy;
        policy.pool = &pool;
        policy.dense_kernel = kernel;
        const MatrixF c = dense_gemm(a, b, policy);
        EXPECT_TRUE(c == reference) << kernel << " " << s.m << "x" << s.k
                                    << "x" << s.n << " threads=" << threads;
      }
    }
  }
}

TEST(ParallelKernels, NmBitIdenticalAcrossThreadCounts) {
  for (const std::string& kernel : GemmDispatch::instance().nm_kernels()) {
    for (const auto& s : kShapes) {
      Rng rng(200 + s.m + s.k + s.n);
      const MatrixF dense =
          random_unstructured(s.m, s.k, 0.4, Dist::kNormalStd1, rng);
      const auto d = decompose(dense, TasdConfig::parse("2:4"));
      const sparse::NMSparseMatrix a = d.terms[0].compressed();
      const MatrixF b = random_dense(s.k, s.n, Dist::kNormalStd1, rng);

      ThreadPool serial(1);
      ExecPolicy serial_policy;
      serial_policy.pool = &serial;
      serial_policy.nm_kernel = kernel;
      const MatrixF reference = nm_gemm(a, b, serial_policy);

      for (std::size_t threads : kThreadCounts) {
        ThreadPool pool(threads);
        ExecPolicy policy;
        policy.pool = &pool;
        policy.nm_kernel = kernel;
        EXPECT_TRUE(nm_gemm(a, b, policy) == reference)
            << kernel << " " << s.m << "x" << s.k << "x" << s.n
            << " threads=" << threads;
      }
    }
  }
}

TEST(ParallelKernels, TasdSeriesBitIdenticalAcrossThreadCounts) {
  for (const std::string& kernel : GemmDispatch::instance().nm_kernels()) {
    for (const auto& s : kShapes) {
      Rng rng(300 + s.m + s.k + s.n);
      const MatrixF dense =
          random_unstructured(s.m, s.k, 0.3, Dist::kNormalStd1, rng);
      const TasdSeriesGemm series(
          decompose(dense, TasdConfig::parse("4:8+1:8")));
      const MatrixF b = random_dense(s.k, s.n, Dist::kNormalStd1, rng);

      ThreadPool serial(1);
      ExecPolicy serial_policy;
      serial_policy.pool = &serial;
      serial_policy.nm_kernel = kernel;
      const MatrixF reference = series.multiply(b, serial_policy);

      for (std::size_t threads : kThreadCounts) {
        ThreadPool pool(threads);
        ExecPolicy policy;
        policy.pool = &pool;
        policy.nm_kernel = kernel;
        EXPECT_TRUE(series.multiply(b, policy) == reference)
            << kernel << " " << s.m << "x" << s.k << "x" << s.n
            << " threads=" << threads;
      }
    }
  }
}

TEST(ParallelKernels, SeriesFromPlanMatchesSeriesFromDecomposition) {
  Rng rng(404);
  const MatrixF dense =
      random_unstructured(33, 40, 0.5, Dist::kNormalStd1, rng);
  const auto cfg = TasdConfig::parse("2:8+1:8");
  const MatrixF b = random_dense(40, 21, Dist::kNormalStd1, rng);
  const TasdSeriesGemm from_decomp(decompose(dense, cfg));
  const TasdSeriesGemm from_plan(plan_cache().get_or_build(dense, cfg));
  EXPECT_EQ(from_decomp.nnz(), from_plan.nnz());
  EXPECT_EQ(from_decomp.term_count(), from_plan.term_count());
  EXPECT_TRUE(from_decomp.multiply(b) == from_plan.multiply(b));
}

TEST(ParallelKernels, CoreTasdGemmMatchesSerialTermMajorLoop) {
  // core/tasd_gemm routes through the shared parallel layer; its output
  // must stay bit-identical to the serial term-major accumulation it
  // replaced.
  Rng rng(505);
  const MatrixF a = random_unstructured(37, 48, 0.4, Dist::kNormalStd1, rng);
  const MatrixF b = random_dense(48, 19, Dist::kNormalStd1, rng);
  const auto d = decompose(a, TasdConfig::parse("4:8+1:8"));

  MatrixF expected(a.rows(), b.cols());
  for (const auto& term : d.terms)
    gemm_ref_accumulate(term.dense, b, expected);

  EXPECT_TRUE(tasd_gemm(d, b) == expected);
}

TEST(GemmDispatchRegistry, ListsBuiltinsAndDefaults) {
  auto& dispatch = GemmDispatch::instance();
  const auto dense = dispatch.dense_kernels();
  EXPECT_NE(std::find(dense.begin(), dense.end(), "tiled-parallel"),
            dense.end());
  EXPECT_NE(std::find(dense.begin(), dense.end(), "tiled-serial"),
            dense.end());
  EXPECT_NE(std::find(dense.begin(), dense.end(), "reference"), dense.end());
  const auto nm = dispatch.nm_kernels();
  EXPECT_NE(std::find(nm.begin(), nm.end(), "row-parallel"), nm.end());
  EXPECT_NE(std::find(nm.begin(), nm.end(), "serial"), nm.end());
  EXPECT_EQ(dispatch.default_dense(), "tiled-parallel");
  EXPECT_EQ(dispatch.default_nm(), "row-parallel");
}

TEST(GemmDispatchRegistry, SimdKernelsFollowRuntimeDetection) {
  // Each SIMD family is registered exactly when the executing CPU/OS
  // can run it (and its TASD_DISABLE_* flag is unset); best_*() walks
  // the avx512 > avx2 > scalar chain over whatever registered. The
  // avx2-only and scalar CI legs exercise the lower rungs on capable
  // hardware via the disable flags.
  auto& dispatch = GemmDispatch::instance();
  const auto dense = dispatch.dense_kernels();
  const auto nm = dispatch.nm_kernels();
  const auto dense_batch = dispatch.dense_batch_kernels();
  const auto nm_batch = dispatch.nm_batch_kernels();
  const auto has = [&](const std::vector<std::string>& names,
                       const char* name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };
  EXPECT_EQ(has(dense, "dense-avx2"), avx2_available());
  EXPECT_EQ(has(nm, "nm-avx2"), avx2_available());
  EXPECT_EQ(has(dense_batch, "dense-batch-avx2"), avx2_available());
  EXPECT_EQ(has(nm_batch, "nm-batch-avx2"), avx2_available());
  EXPECT_EQ(has(dense, "dense-avx512"), avx512_available());
  EXPECT_EQ(has(nm, "nm-avx512"), avx512_available());
  EXPECT_EQ(has(dense_batch, "dense-batch-avx512"), avx512_available());
  EXPECT_EQ(has(nm_batch, "nm-batch-avx512"), avx512_available());
  if (avx512_available()) {
    EXPECT_EQ(dispatch.best_dense(), "dense-avx512");
    EXPECT_EQ(dispatch.best_nm(), "nm-avx512");
    EXPECT_EQ(dispatch.best_dense_batch(), "dense-batch-avx512");
    EXPECT_EQ(dispatch.best_nm_batch(), "nm-batch-avx512");
  } else if (avx2_available()) {
    EXPECT_EQ(dispatch.best_dense(), "dense-avx2");
    EXPECT_EQ(dispatch.best_nm(), "nm-avx2");
    EXPECT_EQ(dispatch.best_dense_batch(), "dense-batch-avx2");
    EXPECT_EQ(dispatch.best_nm_batch(), "nm-batch-avx2");
  } else {
    EXPECT_EQ(dispatch.best_dense(), dispatch.default_dense());
    EXPECT_EQ(dispatch.best_nm(), dispatch.default_nm());
    EXPECT_EQ(dispatch.best_dense_batch(), dispatch.default_dense_batch());
    EXPECT_EQ(dispatch.best_nm_batch(), dispatch.default_nm_batch());
  }
  // Defaults stay scalar either way: opting into SIMD is a per-artifact
  // (CompileOptions "auto") or per-call (ExecPolicy) decision.
  EXPECT_EQ(dispatch.default_dense(), "tiled-parallel");
  EXPECT_EQ(dispatch.default_nm(), "row-parallel");
}

TEST(GemmDispatchRegistry, UnknownKernelThrows) {
  EXPECT_THROW(GemmDispatch::instance().dense("no-such-kernel"), Error);
  EXPECT_THROW(GemmDispatch::instance().nm("no-such-kernel"), Error);
  Rng rng(606);
  const MatrixF a = random_dense(4, 4, Dist::kNormalStd1, rng);
  ExecPolicy policy;
  policy.dense_kernel = "no-such-kernel";
  EXPECT_THROW(dense_gemm(a, a, policy), Error);
}

TEST(GemmDispatchRegistry, AllDenseKernelsAgree) {
  Rng rng(707);
  const MatrixF a = random_dense(13, 29, Dist::kNormalStd1, rng);
  const MatrixF b = random_dense(29, 17, Dist::kNormalStd1, rng);
  const MatrixF oracle = gemm_ref(a, b);
  for (const auto& name : GemmDispatch::instance().dense_kernels()) {
    ExecPolicy policy;
    policy.dense_kernel = name;
    EXPECT_TRUE(allclose(dense_gemm(a, b, policy), oracle, 1e-5, 1e-5))
        << "kernel " << name;
  }
}

TEST(GemmDispatchRegistry, RegisteredKernelIsDispatchable) {
  auto& dispatch = GemmDispatch::instance();
  dispatch.register_dense("test-zero",
                          [](const MatrixF&, const MatrixF&, MatrixF& c,
                             ThreadPool&) {
                            for (float& v : c.flat()) v = -1.0F;
                          });
  Rng rng(808);
  const MatrixF a = random_dense(3, 3, Dist::kNormalStd1, rng);
  ExecPolicy policy;
  policy.dense_kernel = "test-zero";
  const MatrixF c = dense_gemm(a, a, policy);
  for (float v : c.flat()) EXPECT_EQ(v, -1.0F);
  // The default is untouched by registering a named kernel.
  EXPECT_EQ(dispatch.default_dense(), "tiled-parallel");
}

}  // namespace
}  // namespace tasd::rt
