#include "tasder/framework.hpp"

#include <gtest/gtest.h>

#include "dnn/builders.hpp"
#include "dnn/pruning.hpp"

namespace tasd::tasder {
namespace {

dnn::ConvNetOptions tiny() {
  dnn::ConvNetOptions o;
  o.input_hw = 8;
  o.width_mult = 0.125;
  o.num_classes = 10;
  return o;
}

TEST(Framework, SparseModelRoutedToTasdW) {
  dnn::Model model = dnn::make_resnet(18, tiny());
  (void)dnn::prune_unstructured(model, 0.92);
  const auto calib = dnn::EvalSet::images(8, 8, 3, 401);
  const auto eval = dnn::EvalSet::images(32, 8, 3, 402);
  const auto ref = dnn::predict(model, eval);
  const auto hw = hw_profile_from(accel::ArchConfig::ttc_vegeta_m8());
  const auto r = optimize_model(model, hw, calib, eval, ref);
  EXPECT_EQ(r.mode, TasderMode::kWeights);
  EXPECT_GE(r.achieved_agreement, 0.99);
  EXPECT_LT(r.mac_fraction, 1.0);
}

TEST(Framework, DenseModelRoutedToTasdA) {
  dnn::Model model = dnn::make_resnet(18, tiny());
  const auto calib = dnn::EvalSet::images(8, 8, 3, 403);
  const auto eval = dnn::EvalSet::images(32, 8, 3, 404);
  const auto ref = dnn::predict(model, eval);
  const auto hw = hw_profile_from(accel::ArchConfig::ttc_vegeta_m8());
  const auto r = optimize_model(model, hw, calib, eval, ref);
  EXPECT_EQ(r.mode, TasderMode::kActivations);
  EXPECT_GE(r.achieved_agreement, 0.99);
}

TEST(Framework, DenseHardwareDoesNothing) {
  dnn::Model model = dnn::make_resnet(18, tiny());
  const auto calib = dnn::EvalSet::images(8, 8, 3, 405);
  const auto eval = dnn::EvalSet::images(16, 8, 3, 406);
  const auto ref = dnn::predict(model, eval);
  const auto hw = hw_profile_from(accel::ArchConfig::dense_tc());
  const auto r = optimize_model(model, hw, calib, eval, ref);
  EXPECT_EQ(r.mode, TasderMode::kNone);
  for (auto* l : model.gemm_layers()) {
    EXPECT_FALSE(l->tasd_w().has_value());
    EXPECT_FALSE(l->tasd_a().has_value());
  }
}

TEST(Framework, NoTasdUnitsMeansNoActivationMode) {
  dnn::Model model = dnn::make_resnet(18, tiny());  // dense weights
  const auto calib = dnn::EvalSet::images(8, 8, 3, 407);
  const auto eval = dnn::EvalSet::images(16, 8, 3, 408);
  const auto ref = dnn::predict(model, eval);
  const auto hw = hw_profile_from(accel::ArchConfig::vegeta_m8_no_tasd());
  const auto r = optimize_model(model, hw, calib, eval, ref);
  // Plain VEGETA cannot decompose dense activations dynamically.
  EXPECT_EQ(r.mode, TasderMode::kNone);
}

TEST(Framework, ModeNames) {
  TasderModelResult r;
  EXPECT_EQ(r.mode_name(), "none");
  r.mode = TasderMode::kWeights;
  EXPECT_EQ(r.mode_name(), "TASD-W");
  r.mode = TasderMode::kActivations;
  EXPECT_EQ(r.mode_name(), "TASD-A");
}

}  // namespace
}  // namespace tasd::tasder
