// Structured sparse GEMM over compressed N:M operands — the CPU analogue
// of a sparse tensor core: it executes one MAC per *stored* value, so a
// 2:4-compressed operand does half the work of the dense kernel through
// the same inner loop.
//
// Execution routes through the GemmDispatch kernel registry (row-parallel
// by default, bit-identical at every thread count). TASD series can run
// from a cached DecompositionPlan so the weights are decomposed and
// compressed exactly once.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/decompose.hpp"
#include "core/plan_cache.hpp"
#include "runtime/gemm_dispatch.hpp"
#include "sparse/nm_matrix.hpp"
#include "tensor/matrix.hpp"

namespace tasd::rt {

/// C = A_compressed * B.
MatrixF nm_gemm(const sparse::NMSparseMatrix& a, const MatrixF& b,
                const ExecPolicy& policy = {});

/// C += A_compressed * B.
void nm_gemm_accumulate(const sparse::NMSparseMatrix& a, const MatrixF& b,
                        MatrixF& c, const ExecPolicy& policy = {});

/// cs[i] = A_compressed * bs[i] for a batch of right-hand sides (ragged
/// widths allowed). Bit-identical to calling nm_gemm per item, at every
/// thread count and batch size.
std::vector<MatrixF> nm_gemm_batch(const sparse::NMSparseMatrix& a,
                                   std::span<const MatrixF> bs,
                                   const ExecPolicy& policy = {});

/// cs[i] += A_compressed * bs[i] into preallocated accumulators.
void nm_gemm_batch_accumulate(const sparse::NMSparseMatrix& a,
                              std::span<const MatrixF> bs,
                              std::span<MatrixF> cs,
                              const ExecPolicy& policy = {});

/// C = Σ_i term_i * B over a whole TASD series (distributive execution of
/// the decomposed GEMM, paper §3.2). Terms are pre-compressed once.
class TasdSeriesGemm {
 public:
  /// Compress the decomposition's terms for repeated execution.
  explicit TasdSeriesGemm(const Decomposition& decomposition);

  /// Execute a cached plan's terms (shares the plan's compressed storage;
  /// no copy, no re-decomposition).
  explicit TasdSeriesGemm(std::shared_ptr<const DecompositionPlan> plan);

  /// Execute against a dense right-hand side. Row-parallel: each output
  /// row accumulates its terms in series order, matching the serial
  /// term-major loop bit-for-bit.
  [[nodiscard]] MatrixF multiply(const MatrixF& b,
                                 const ExecPolicy& policy = {}) const;

  /// Execute against a batch of dense right-hand sides (ragged widths
  /// allowed), sharing this series' one decomposition plan across every
  /// item. Each term runs through the registry's batch kernel, which
  /// partitions (output-row, batch-column) tiles over the pool; output
  /// is bit-identical to calling multiply() per item — the serving-path
  /// invariant — at every thread count and batch size.
  [[nodiscard]] std::vector<MatrixF> multiply_batch(
      std::span<const MatrixF> bs, const ExecPolicy& policy = {}) const;

  /// Stored non-zeros across terms.
  [[nodiscard]] Index nnz() const;

  [[nodiscard]] Index rows() const { return rows_; }
  [[nodiscard]] Index cols() const { return cols_; }
  [[nodiscard]] std::size_t term_count() const { return terms().size(); }

 private:
  [[nodiscard]] const std::vector<sparse::NMSparseMatrix>& terms() const {
    return plan_ ? plan_->terms : owned_terms_;
  }

  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<sparse::NMSparseMatrix> owned_terms_;
  std::shared_ptr<const DecompositionPlan> plan_;
};

}  // namespace tasd::rt
