// Property tests: decomposition invariants swept over configurations,
// densities, shapes, and distributions (TEST_P).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/approx_stats.hpp"
#include "core/decompose.hpp"
#include "tensor/generator.hpp"
#include "tensor/norms.hpp"

namespace tasd {
namespace {

struct PropertyCase {
  const char* config;
  double density;
  Index rows;
  Index cols;
  Dist dist;
};

void PrintTo(const PropertyCase& c, std::ostream* os) {
  *os << c.config << " d=" << c.density << " " << c.rows << "x" << c.cols;
}

class DecomposeProperty : public ::testing::TestWithParam<PropertyCase> {
 protected:
  MatrixF make_matrix() const {
    const auto& p = GetParam();
    Rng rng(1234 + static_cast<std::uint64_t>(p.density * 100) + p.cols);
    return random_unstructured(p.rows, p.cols, p.density, p.dist, rng);
  }
};

TEST_P(DecomposeProperty, ExactReconstruction) {
  const MatrixF m = make_matrix();
  const auto d = decompose(m, TasdConfig::parse(GetParam().config));
  EXPECT_EQ(d.reconstruct_exact(), m);
}

TEST_P(DecomposeProperty, EveryTermSatisfiesItsPattern) {
  const MatrixF m = make_matrix();
  const auto cfg = TasdConfig::parse(GetParam().config);
  const auto d = decompose(m, cfg);
  ASSERT_EQ(d.terms.size(), cfg.terms.size());
  for (std::size_t i = 0; i < d.terms.size(); ++i)
    EXPECT_TRUE(sparse::satisfies(d.terms[i].dense, cfg.terms[i]))
        << "term " << i;
}

TEST_P(DecomposeProperty, ResidualShrinksMonotonically) {
  const MatrixF m = make_matrix();
  const auto cfg = TasdConfig::parse(GetParam().config);
  // Peeling one more term never increases the residual nnz or magnitude.
  Index prev_nnz = m.nnz();
  double prev_mag = magnitude_sum(m);
  for (std::size_t k = 1; k <= cfg.terms.size(); ++k) {
    TasdConfig prefix;
    prefix.terms.assign(cfg.terms.begin(),
                        cfg.terms.begin() + static_cast<long>(k));
    const auto d = decompose(m, prefix);
    EXPECT_LE(d.residual.nnz(), prev_nnz);
    EXPECT_LE(magnitude_sum(d.residual), prev_mag + 1e-9);
    prev_nnz = d.residual.nnz();
    prev_mag = magnitude_sum(d.residual);
  }
}

TEST_P(DecomposeProperty, MagnitudeCoverageDominatesNnzCoverage) {
  const MatrixF m = make_matrix();
  const auto stats = approx_stats(m, TasdConfig::parse(GetParam().config));
  EXPECT_GE(stats.magnitude_coverage() + 1e-12, stats.nnz_coverage());
}

TEST_P(DecomposeProperty, KeptNnzBoundedBySlotBudget) {
  const MatrixF m = make_matrix();
  const auto cfg = TasdConfig::parse(GetParam().config);
  const auto stats = approx_stats(m, cfg);
  // The series cannot keep more elements than its slot budget
  // (max_density * size) nor more than the matrix had.
  EXPECT_LE(static_cast<double>(stats.kept_nnz),
            cfg.max_density() * static_cast<double>(m.size()) + 1e-9);
  EXPECT_LE(stats.kept_nnz, stats.original_nnz);
}

TEST_P(DecomposeProperty, ApproxErrorEqualsResidualNorm) {
  const MatrixF m = make_matrix();
  const auto d = decompose(m, TasdConfig::parse(GetParam().config));
  const auto stats = approx_stats(m, d);
  const double ref = frobenius_norm(m);
  if (ref > 0.0) {
    EXPECT_NEAR(stats.rel_frobenius_error, frobenius_norm(d.residual) / ref,
                1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DecomposeProperty,
    ::testing::Values(
        PropertyCase{"2:4", 0.10, 16, 64, Dist::kNormal},
        PropertyCase{"2:4", 0.50, 16, 64, Dist::kNormal},
        PropertyCase{"2:4", 0.90, 16, 64, Dist::kNormal},
        PropertyCase{"2:4+2:8", 0.25, 16, 64, Dist::kNormal},
        PropertyCase{"2:4+2:8", 0.75, 16, 64, Dist::kNormal},
        PropertyCase{"2:4+2:8+2:16", 0.60, 8, 64, Dist::kNormal},
        PropertyCase{"1:8", 0.05, 32, 64, Dist::kNormalStd1},
        PropertyCase{"4:8+1:8", 0.50, 16, 48, Dist::kNormalStd1},
        PropertyCase{"4:8+2:8", 0.95, 8, 40, Dist::kUniform01},
        PropertyCase{"1:4+1:8", 0.30, 16, 30, Dist::kUniform01},  // ragged
        PropertyCase{"3:4", 1.00, 8, 32, Dist::kNormalStd1},
        PropertyCase{"1:16", 0.02, 64, 64, Dist::kNormal}));

// ---- lossless guarantee sweep: if every block has <= N non-zeros, a
// single N:M term is lossless.
class LosslessProperty : public ::testing::TestWithParam<int> {};

TEST_P(LosslessProperty, ConformingMatrixDecomposesLosslessly) {
  const int n = GetParam();
  Rng rng(777 + n);
  const MatrixF m =
      random_nm_structured(16, 64, n, 8, Dist::kNormalStd1, rng);
  TasdConfig cfg;
  cfg.terms.push_back(sparse::NMPattern(n, 8));
  const auto d = decompose(m, cfg);
  EXPECT_TRUE(d.lossless());
}

INSTANTIATE_TEST_SUITE_P(AllN, LosslessProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace tasd
