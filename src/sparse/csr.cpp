#include "sparse/csr.hpp"

#include "common/error.hpp"

namespace tasd::sparse {

CSRMatrix::CSRMatrix(const MatrixF& dense)
    : rows_(dense.rows()), cols_(dense.cols()) {
  row_ptr_.reserve(rows_ + 1);
  row_ptr_.push_back(0);
  for (Index r = 0; r < rows_; ++r) {
    auto row = dense.row(r);
    for (Index c = 0; c < cols_; ++c) {
      if (row[c] != 0.0F) {
        values_.push_back(row[c]);
        col_index_.push_back(c);
      }
    }
    row_ptr_.push_back(values_.size());
  }
}

double CSRMatrix::sparsity() const {
  const Index total = rows_ * cols_;
  if (total == 0) return 0.0;
  return 1.0 - static_cast<double>(nnz()) / static_cast<double>(total);
}

MatrixF CSRMatrix::to_dense() const {
  MatrixF out(rows_, cols_);
  for (Index r = 0; r < rows_; ++r)
    for (Index i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i)
      out(r, col_index_[i]) = values_[i];
  return out;
}

std::vector<float> CSRMatrix::spmv(std::span<const float> x) const {
  TASD_CHECK_MSG(x.size() == cols_,
                 "spmv vector size " << x.size() << " != cols " << cols_);
  std::vector<float> y(rows_, 0.0F);
  for (Index r = 0; r < rows_; ++r) {
    float acc = 0.0F;
    for (Index i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i)
      acc += values_[i] * x[col_index_[i]];
    y[r] = acc;
  }
  return y;
}

MatrixF CSRMatrix::spmm(const MatrixF& b) const {
  TASD_CHECK_MSG(cols_ == b.rows(), "spmm inner dim mismatch: " << cols_
                                                                << " vs "
                                                                << b.rows());
  MatrixF c(rows_, b.cols());
  const Index n = b.cols();
  for (Index r = 0; r < rows_; ++r) {
    float* crow = c.data() + r * n;
    for (Index i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      const float v = values_[i];
      const float* brow = b.data() + col_index_[i] * n;
      for (Index j = 0; j < n; ++j) crow[j] += v * brow[j];
    }
  }
  return c;
}

}  // namespace tasd::sparse
