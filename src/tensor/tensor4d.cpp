#include "tensor/tensor4d.hpp"

namespace tasd {

Tensor4D::Tensor4D(Index n, Index c, Index h, Index w)
    : n_(n), c_(c), h_(h), w_(w), data_(n * c * h * w, 0.0F) {}

float& Tensor4D::at(Index n, Index c, Index h, Index w) {
  TASD_CHECK_MSG(n < n_ && c < c_ && h < h_ && w < w_,
                 "index (" << n << ',' << c << ',' << h << ',' << w
                           << ") out of " << n_ << 'x' << c_ << 'x' << h_
                           << 'x' << w_);
  return (*this)(n, c, h, w);
}

const float& Tensor4D::at(Index n, Index c, Index h, Index w) const {
  TASD_CHECK_MSG(n < n_ && c < c_ && h < h_ && w < w_,
                 "index (" << n << ',' << c << ',' << h << ',' << w
                           << ") out of " << n_ << 'x' << c_ << 'x' << h_
                           << 'x' << w_);
  return (*this)(n, c, h, w);
}

Index Tensor4D::nnz() const {
  Index count = 0;
  for (float v : data_)
    if (v != 0.0F) ++count;
  return count;
}

double Tensor4D::sparsity() const {
  if (data_.empty()) return 0.0;
  return 1.0 - static_cast<double>(nnz()) / static_cast<double>(data_.size());
}

MatrixF Tensor4D::as_matrix(Index batch) const {
  TASD_CHECK(batch < n_);
  MatrixF m(c_, h_ * w_);
  for (Index c = 0; c < c_; ++c)
    for (Index h = 0; h < h_; ++h)
      for (Index w = 0; w < w_; ++w) m(c, h * w_ + w) = (*this)(batch, c, h, w);
  return m;
}

}  // namespace tasd
