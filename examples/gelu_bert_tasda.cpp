// TASD-A on a GELU transformer: no activation is ever exactly zero, so
// TASDER falls back to the paper's pseudo-density heuristic (§4.3) to
// decide which MLP layers can be decomposed dynamically.
//
//   build/examples/gelu_bert_tasda
#include <iostream>

#include "common/table.hpp"
#include "dnn/builders.hpp"
#include "dnn/calib.hpp"
#include "tasder/framework.hpp"

using namespace tasd;

int main() {
  print_banner("TASD-A on a GELU BERT-like encoder");

  dnn::TransformerOptions o;
  o.dim = 64;
  o.layers = 3;
  o.heads = 4;
  o.num_classes = 100;
  dnn::Model model = dnn::make_bert(o);

  const auto calib = dnn::EvalSet::tokens(16, 64, 16, 7);
  const auto eval = dnn::EvalSet::tokens(96, 64, 16, 8);
  const auto ref = dnn::confident_labels(model, eval, 0.5);

  // Calibration first: literal density vs pseudo-density per layer.
  std::cout << "calibration (activations are literally dense, but "
               "magnitude-skewed):\n";
  TextTable ct;
  ct.header({"layer", "density", "pseudo-density", "TASD-A eligible"});
  for (const auto& s : dnn::collect_calibration(model, calib)) {
    ct.row({s.name, TextTable::num(s.mean_density, 3),
            TextTable::num(s.mean_pseudo_density, 3),
            s.layer->allow_tasd_a() ? "yes" : "no (attention proj)"});
  }
  ct.print();

  // TASDER: layer-wise TASD-A with auto-tuned alpha.
  const auto hw = tasder::hw_profile_from(accel::ArchConfig::ttc_vegeta_m8());
  const auto result = tasder::optimize_model(model, hw, calib, eval, ref);
  std::cout << "\nTASDER mode: " << result.mode_name() << '\n';

  TextTable t;
  t.header({"layer", "series", "S(L) used", "via pseudo-density"});
  for (const auto& d : result.tasda.decisions) {
    if (!d.config) continue;
    t.row({d.layer_name, d.config->str(),
           TextTable::pct(d.act_sparsity_used),
           d.used_pseudo_density ? "yes" : "no"});
  }
  t.print();
  std::cout << "\nagreement: " << TextTable::pct(result.achieved_agreement)
            << " (>= 99% rule), slot MACs: "
            << TextTable::pct(result.mac_fraction) << " of dense\n"
            << "Paper check: only the GELU-fed MLP layers are decomposed; "
               "attention projections are skipped.\n";
  return 0;
}
