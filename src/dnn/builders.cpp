#include "dnn/builders.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "dnn/attention.hpp"

namespace tasd::dnn {

namespace {

Index scaled(Index base, double mult) {
  return std::max<Index>(4, static_cast<Index>(std::lround(
                                static_cast<double>(base) * mult)));
}

std::string stage_name(const char* prefix, Index stage, Index block,
                       const char* leaf) {
  return std::string(prefix) + std::to_string(stage) + ".b" +
         std::to_string(block) + "." + leaf;
}

/// Basic (two 3x3 convs) residual block, ResNet-18/34 style.
std::unique_ptr<Layer> basic_block(Index in_ch, Index out_ch, Index stride,
                                   Index stage, Index block, Rng& rng) {
  std::vector<std::unique_ptr<Layer>> branch;
  auto c1 = make_conv(in_ch, out_ch, 3, stride, 1, ActKind::kRelu, rng);
  c1->set_name(stage_name("s", stage, block, "conv1"));
  auto c2 = make_conv(out_ch, out_ch, 3, 1, 1, ActKind::kNone, rng);
  c2->set_name(stage_name("s", stage, block, "conv2"));
  branch.push_back(std::move(c1));
  branch.push_back(std::move(c2));

  std::unique_ptr<Layer> project;
  if (in_ch != out_ch || stride != 1) {
    auto p = make_conv(in_ch, out_ch, 1, stride, 0, ActKind::kNone, rng);
    p->set_name(stage_name("s", stage, block, "proj"));
    // Fig. 8(b): TASD layers sit before the branch TCONVs only — the
    // projection (skip) path is not dynamically decomposed.
    p->set_allow_tasd_a(false);
    project = std::move(p);
  }
  return std::make_unique<ResBlockLayer>(std::move(branch), std::move(project),
                                         ActKind::kRelu);
}

/// Bottleneck (1x1 -> 3x3 -> 1x1, expansion 4) block, ResNet-50 style.
std::unique_ptr<Layer> bottleneck_block(Index in_ch, Index mid_ch,
                                        Index stride, Index stage, Index block,
                                        Rng& rng) {
  const Index out_ch = mid_ch * 4;
  std::vector<std::unique_ptr<Layer>> branch;
  auto c1 = make_conv(in_ch, mid_ch, 1, 1, 0, ActKind::kRelu, rng);
  c1->set_name(stage_name("s", stage, block, "conv1"));
  auto c2 = make_conv(mid_ch, mid_ch, 3, stride, 1, ActKind::kRelu, rng);
  c2->set_name(stage_name("s", stage, block, "conv2"));
  auto c3 = make_conv(mid_ch, out_ch, 1, 1, 0, ActKind::kNone, rng);
  c3->set_name(stage_name("s", stage, block, "conv3"));
  branch.push_back(std::move(c1));
  branch.push_back(std::move(c2));
  branch.push_back(std::move(c3));

  std::unique_ptr<Layer> project;
  if (in_ch != out_ch || stride != 1) {
    auto p = make_conv(in_ch, out_ch, 1, stride, 0, ActKind::kNone, rng);
    p->set_name(stage_name("s", stage, block, "proj"));
    p->set_allow_tasd_a(false);  // skip path, not a Fig. 8 TASD target
    project = std::move(p);
  }
  return std::make_unique<ResBlockLayer>(std::move(branch), std::move(project),
                                         ActKind::kRelu);
}

/// ConvNeXt-flavoured block: 3x3 -> 1x1 expand -> 1x1 reduce, GELU, no
/// post-add activation.
std::unique_ptr<Layer> convnext_block(Index ch, Index stage, Index block,
                                      Rng& rng) {
  std::vector<std::unique_ptr<Layer>> branch;
  auto c1 = make_conv(ch, ch, 3, 1, 1, ActKind::kGelu, rng);
  c1->set_name(stage_name("cx", stage, block, "dw"));
  auto c2 = make_conv(ch, ch * 2, 1, 1, 0, ActKind::kGelu, rng);
  c2->set_name(stage_name("cx", stage, block, "pw1"));
  auto c3 = make_conv(ch * 2, ch, 1, 1, 0, ActKind::kNone, rng);
  c3->set_name(stage_name("cx", stage, block, "pw2"));
  branch.push_back(std::move(c1));
  branch.push_back(std::move(c2));
  branch.push_back(std::move(c3));
  return std::make_unique<ResBlockLayer>(std::move(branch), nullptr,
                                         ActKind::kNone);
}

void add_classifier_head(Model& model, Index feat, Index hidden,
                         Index num_classes, Rng& rng) {
  model.add(std::make_unique<GlobalAvgPoolLayer>());
  auto fc1 = make_linear(feat, hidden, ActKind::kRelu, rng);
  fc1->set_name("head.fc1");
  // The classifier head is not a Fig. 8 TASD-A target (the paper inserts
  // TASD layers inside ResBlocks / transformer MLPs only), and its pooled
  // input feeds logits directly — decomposing it flips predictions.
  fc1->set_allow_tasd_a(false);
  model.add(std::move(fc1));
  auto fc2 = make_linear(hidden, num_classes, ActKind::kNone, rng);
  fc2->set_name("head.fc2");
  fc2->set_allow_tasd_a(false);
  model.add(std::move(fc2));
}

}  // namespace

Model make_resnet(int depth, const ConvNetOptions& opt) {
  std::vector<Index> blocks;
  bool bottleneck = false;
  switch (depth) {
    case 18: blocks = {2, 2, 2, 2}; break;
    case 34: blocks = {3, 4, 6, 3}; break;
    case 50: blocks = {3, 4, 6, 3}; bottleneck = true; break;
    default:
      TASD_CHECK_MSG(false, "unsupported ResNet depth " << depth
                                                        << " (18/34/50)");
  }
  Rng rng(opt.seed);
  Model model("resnet" + std::to_string(depth), InputKind::kImage);

  const Index w0 = scaled(64, opt.width_mult);
  auto stem = make_conv(opt.input_channels, w0, 3, 1, 1, ActKind::kRelu, rng);
  stem->set_name("stem");
  model.add(std::move(stem));

  Index in_ch = w0;
  for (Index stage = 0; stage < 4; ++stage) {
    const Index width = scaled(64 << stage, opt.width_mult);
    for (Index b = 0; b < blocks[stage]; ++b) {
      const Index stride = (stage > 0 && b == 0) ? 2 : 1;
      if (bottleneck) {
        model.add(bottleneck_block(in_ch, width, stride, stage, b, rng));
        in_ch = width * 4;
      } else {
        model.add(basic_block(in_ch, width, stride, stage, b, rng));
        in_ch = width;
      }
    }
  }
  add_classifier_head(model, in_ch, std::max<Index>(in_ch / 2, 16),
                      opt.num_classes, rng);
  return model;
}

Model make_vgg(int depth, const ConvNetOptions& opt) {
  // 'M' = maxpool. Channel plans of the original VGG configs.
  std::vector<int> plan;
  switch (depth) {
    case 11: plan = {64, -1, 128, -1, 256, 256, -1, 512, 512, -1, 512, 512, -1};
      break;
    case 16:
      plan = {64, 64, -1, 128, 128, -1, 256, 256, 256, -1,
              512, 512, 512, -1, 512, 512, 512, -1};
      break;
    default:
      TASD_CHECK_MSG(false, "unsupported VGG depth " << depth << " (11/16)");
  }
  Rng rng(opt.seed);
  Model model("vgg" + std::to_string(depth), InputKind::kImage);
  Index in_ch = opt.input_channels;
  Index conv_idx = 0;
  Index hw = opt.input_hw;
  for (int p : plan) {
    if (p < 0) {
      // Stop pooling once the spatial size reaches 2x2.
      if (hw >= 4) {
        model.add(std::make_unique<MaxPool2Layer>());
        hw /= 2;
      }
      continue;
    }
    const Index out_ch = scaled(p, opt.width_mult);
    auto c = make_conv(in_ch, out_ch, 3, 1, 1, ActKind::kRelu, rng);
    c->set_name("conv" + std::to_string(conv_idx++));
    model.add(std::move(c));
    in_ch = out_ch;
  }
  add_classifier_head(model, in_ch, std::max<Index>(in_ch / 2, 16),
                      opt.num_classes, rng);
  return model;
}

Model make_convnext(const ConvNetOptions& opt) {
  Rng rng(opt.seed);
  Model model("convnext_tiny", InputKind::kImage);
  const std::vector<Index> depths = {2, 2, 4, 2};  // Tiny is 3-3-9-3; scaled
  Index in_ch = opt.input_channels;
  for (Index stage = 0; stage < 4; ++stage) {
    const Index width = scaled(96 << stage, opt.width_mult);
    // Downsampling patch conv between stages (stride 2, except stage 0 on
    // small inputs where we keep resolution).
    const Index stride = stage == 0 ? 1 : 2;
    auto down = make_conv(in_ch, width, stride == 1 ? 3 : 2, stride,
                          stride == 1 ? 1 : 0, ActKind::kNone, rng);
    down->set_name("cx" + std::to_string(stage) + ".down");
    model.add(std::move(down));
    in_ch = width;
    for (Index b = 0; b < depths[stage]; ++b)
      model.add(convnext_block(width, stage, b, rng));
  }
  add_classifier_head(model, in_ch, std::max<Index>(in_ch / 2, 16),
                      opt.num_classes, rng);
  return model;
}

Model make_mobilenet(const ConvNetOptions& opt) {
  Rng rng(opt.seed + 5);
  Model model("mobilenet", InputKind::kImage);
  auto stem =
      make_conv(opt.input_channels, scaled(32, opt.width_mult), 3, 1, 1,
                ActKind::kRelu6, rng);
  stem->set_name("stem");
  model.add(std::move(stem));
  Index in_ch = scaled(32, opt.width_mult);
  // (base width, stride) plan loosely following MobileNetV2 stages.
  const std::pair<int, Index> plan[] = {{16, 1}, {24, 2}, {32, 1},
                                        {64, 2}, {96, 1}, {160, 2}};
  Index idx = 0;
  for (const auto& [base, stride] : plan) {
    const Index width = scaled(base, opt.width_mult);
    // Inverted residual: 1x1 expand (x4, ReLU6) -> 3x3 (ReLU6) ->
    // 1x1 project (linear). Residual only at stride 1 with equal width.
    std::vector<std::unique_ptr<Layer>> branch;
    auto e = make_conv(in_ch, width * 4, 1, 1, 0, ActKind::kRelu6, rng);
    e->set_name("mb" + std::to_string(idx) + ".expand");
    auto d = make_conv(width * 4, width * 4, 3, stride, 1, ActKind::kRelu6,
                       rng);
    d->set_name("mb" + std::to_string(idx) + ".dw");
    auto p = make_conv(width * 4, width, 1, 1, 0, ActKind::kNone, rng);
    p->set_name("mb" + std::to_string(idx) + ".project");
    branch.push_back(std::move(e));
    branch.push_back(std::move(d));
    branch.push_back(std::move(p));
    if (stride == 1 && in_ch == width) {
      model.add(std::make_unique<ResBlockLayer>(std::move(branch), nullptr,
                                                ActKind::kNone));
    } else {
      for (auto& l : branch) model.add(std::move(l));
    }
    in_ch = width;
    ++idx;
  }
  add_classifier_head(model, in_ch, std::max<Index>(in_ch, 16),
                      opt.num_classes, rng);
  return model;
}

Model make_bert(const TransformerOptions& opt) {
  Rng rng(opt.seed);
  Model model("bert", InputKind::kTokens);
  for (Index l = 0; l < opt.layers; ++l) {
    auto attn = std::make_unique<AttentionLayer>(opt.dim, opt.heads, rng);
    attn->set_name("enc" + std::to_string(l) + ".attn");
    model.add(std::move(attn));
    auto mlp = std::make_unique<TokenMlpBlockLayer>(
        opt.dim, opt.dim * opt.mlp_ratio, ActKind::kGelu, rng);
    mlp->set_name("enc" + std::to_string(l) + ".mlp");
    model.add(std::move(mlp));
  }
  model.add(std::make_unique<TokenNormLayer>());
  model.add(std::make_unique<TokenMeanPoolLayer>());
  auto head = make_linear(opt.dim, opt.num_classes, ActKind::kNone, rng);
  head->set_name("head");
  head->set_allow_tasd_a(false);  // classifier, not a Fig. 8 TASD target
  model.add(std::move(head));
  return model;
}

Model make_vit(const ConvNetOptions& conv_opt, const TransformerOptions& opt) {
  Rng rng(opt.seed ^ 0x9E3779B97F4A7C15ULL);
  Model model("vit", InputKind::kImage);
  model.set_single_sample_batches(true);
  // Patchify: non-overlapping patches of 1/8 of the input resolution.
  const Index patch = std::max<Index>(2, conv_opt.input_hw / 8);
  auto patchify = make_conv(conv_opt.input_channels, opt.dim, patch, patch, 0,
                            ActKind::kNone, rng, /*batch_norm=*/false);
  patchify->set_name("patchify");
  model.add(std::move(patchify));
  model.add(std::make_unique<ToTokensLayer>());
  for (Index l = 0; l < opt.layers; ++l) {
    auto attn = std::make_unique<AttentionLayer>(opt.dim, opt.heads, rng);
    attn->set_name("enc" + std::to_string(l) + ".attn");
    model.add(std::move(attn));
    auto mlp = std::make_unique<TokenMlpBlockLayer>(
        opt.dim, opt.dim * opt.mlp_ratio, ActKind::kGelu, rng);
    mlp->set_name("enc" + std::to_string(l) + ".mlp");
    model.add(std::move(mlp));
  }
  model.add(std::make_unique<TokenNormLayer>());
  model.add(std::make_unique<TokenMeanPoolLayer>());
  auto head = make_linear(opt.dim, opt.num_classes, ActKind::kNone, rng);
  head->set_name("head");
  head->set_allow_tasd_a(false);  // classifier, not a Fig. 8 TASD target
  model.add(std::move(head));
  return model;
}

}  // namespace tasd::dnn
