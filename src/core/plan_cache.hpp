// Decomposition plans and the process-wide plan cache.
//
// A DecompositionPlan is the execution-path form of a TASD decomposition:
// every term is held directly in the compressed N:M format the runtime
// kernels consume — no dense per-term MatrixF is ever materialized — plus
// the approximation-quality statistics TASDER's search needs. Plans for
// the same (matrix contents, shape, config) are expensive to rebuild and
// bit-identical every time, so PlanCache memoizes them: the engine,
// TASDER and the benches all decompose a given weight matrix exactly
// once.
//
// The dense-term Decomposition in core/decompose.hpp remains the
// functional model used by tests and the accuracy experiments;
// build_plan() peels the same series with the same selection rule, so
// plan terms decompress to exactly the Decomposition's dense terms.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/approx_stats.hpp"
#include "core/config.hpp"
#include "sparse/nm_matrix.hpp"
#include "tensor/matrix.hpp"

namespace tasd {

/// Compressed, execution-ready decomposition of one matrix.
struct DecompositionPlan {
  TasdConfig config;
  Index rows = 0;
  Index cols = 0;
  /// One compressed term per series pattern, in series order.
  std::vector<sparse::NMSparseMatrix> terms;
  /// Quality of the approximation vs. the original matrix (identical to
  /// approx_stats(original, decompose(original, config))).
  ApproxStats stats;

  /// Total stored non-zeros across terms.
  [[nodiscard]] Index nnz() const;

  /// Compressed storage footprint in bytes across terms (hardware-style
  /// encoding, see NMSparseMatrix::storage_bytes) — the per-plan memory
  /// a serving process pays to share one decomposition across a batch.
  [[nodiscard]] Index storage_bytes() const;

  /// Dense Σ terms (bit-identical to Decomposition::approximation():
  /// every element lives in at most one term, so no summation-order
  /// effects exist).
  [[nodiscard]] MatrixF approximation() const;
};

/// Decompose `matrix` straight into compressed form (no per-term dense
/// intermediates). Uncached building block; prefer plan_cache().
DecompositionPlan build_plan(const MatrixF& matrix, const TasdConfig& config);

/// Cache observability counters (monotonic since process start or the
/// last reset_stats()).
struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t decompositions = 0;  ///< plans actually built (== misses)
  std::uint64_t evictions = 0;
};

/// Thread-safe LRU cache of DecompositionPlans keyed on (matrix
/// fingerprint, shape, config). The fingerprint hashes the full matrix
/// contents, so logically-equal matrices share an entry regardless of
/// where they live.
class PlanCache {
 public:
  /// Process-wide instance. Capacity defaults to 256 plans and can be
  /// overridden with the TASD_PLAN_CACHE_CAPACITY environment variable.
  static PlanCache& instance();

  explicit PlanCache(std::size_t capacity);
  ~PlanCache();
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Return the cached plan for (matrix, config), building and inserting
  /// it on miss.
  std::shared_ptr<const DecompositionPlan> get_or_build(
      const MatrixF& matrix, const TasdConfig& config);

  [[nodiscard]] PlanCacheStats stats() const;
  void reset_stats();

  /// Number of cached plans.
  [[nodiscard]] std::size_t size() const;

  /// Drop every cached plan (stats are kept).
  void clear();

  /// Change capacity; evicts LRU entries if shrinking below size().
  void set_capacity(std::size_t capacity);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Shorthand for PlanCache::instance().
PlanCache& plan_cache();

}  // namespace tasd
