#include "runtime/nm_gemm.hpp"

#include "common/error.hpp"

namespace tasd::rt {

MatrixF nm_gemm(const sparse::NMSparseMatrix& a, const MatrixF& b) {
  MatrixF c(a.rows(), b.cols());
  nm_gemm_accumulate(a, b, c);
  return c;
}

void nm_gemm_accumulate(const sparse::NMSparseMatrix& a, const MatrixF& b,
                        MatrixF& c) {
  TASD_CHECK_MSG(a.cols() == b.rows(), "N:M GEMM inner dim mismatch");
  TASD_CHECK(c.rows() == a.rows() && c.cols() == b.cols());
  const Index n = b.cols();
  const auto m = static_cast<Index>(a.pattern().m);
  const auto& values = a.values();
  const auto& idx = a.in_block_index();
  const auto& offsets = a.block_offsets();
  const Index blocks_per_row = a.blocks_per_row();

  Index group = 0;
  for (Index r = 0; r < a.rows(); ++r) {
    float* __restrict crow = c.data() + r * n;
    for (Index blk = 0; blk < blocks_per_row; ++blk, ++group) {
      const Index k_base = blk * m;
      for (Index s = offsets[group]; s < offsets[group + 1]; ++s) {
        const float av = values[s];
        const float* __restrict brow = b.data() + (k_base + idx[s]) * n;
        for (Index j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

TasdSeriesGemm::TasdSeriesGemm(const Decomposition& decomposition)
    : rows_(decomposition.residual.rows()),
      cols_(decomposition.residual.cols()) {
  terms_.reserve(decomposition.terms.size());
  for (const auto& t : decomposition.terms) terms_.push_back(t.compressed());
}

MatrixF TasdSeriesGemm::multiply(const MatrixF& b) const {
  TASD_CHECK_MSG(cols_ == b.rows(), "TASD series GEMM inner dim mismatch");
  MatrixF c(rows_, b.cols());
  for (const auto& t : terms_) nm_gemm_accumulate(t, b, c);
  return c;
}

Index TasdSeriesGemm::nnz() const {
  Index total = 0;
  for (const auto& t : terms_) total += t.nnz();
  return total;
}

}  // namespace tasd::rt
