// Runtime CPU feature detection for the SIMD kernel dispatch.
//
// The AVX2/FMA and AVX-512 GEMM kernels (src/runtime/kernels_avx2.cpp,
// src/runtime/kernels_avx512.cpp) are compiled with their ISA flags
// whenever the compiler supports them, but executing them is gated here
// at runtime: GemmDispatch registers each family only when the matching
// *_available() says so — CPUID reports the ISA, the OS saves the
// register state (YMM for AVX2, ZMM/opmask for AVX-512), and the
// operator did not force a fallback with TASD_DISABLE_AVX2 /
// TASD_DISABLE_AVX512. That split keeps one binary correct on every x86
// machine and gives CI knobs to exercise every dispatch path (see
// docs/kernels.md § fallback chain).
#pragma once

#include <string>

namespace tasd {

/// Raw instruction-set capabilities of the executing CPU/OS pair.
struct CpuFeatures {
  bool avx2 = false;        ///< CPUID.7.0:EBX[5]
  bool fma = false;         ///< CPUID.1:ECX[12]
  bool os_ymm = false;      ///< OSXSAVE set and XCR0 enables XMM+YMM state
  bool avx512f = false;     ///< CPUID.7.0:EBX[16]
  bool avx512bw = false;    ///< CPUID.7.0:EBX[30]
  bool avx512vnni = false;  ///< CPUID.7.0:ECX[11] (int8 dot; reported only)
  bool os_zmm = false;      ///< XCR0 also enables opmask + ZMM hi/lo state

  /// The AVX2/FMA kernels may execute: ISA present and OS-supported.
  [[nodiscard]] bool avx2_usable() const { return avx2 && fma && os_ymm; }

  /// The AVX-512 kernels may execute: F+BW present and the OS context-
  /// switches the full ZMM/opmask state (VNNI is not required — the f32
  /// kernels use only F; BW covers the mask ops the tails rely on).
  [[nodiscard]] bool avx512_usable() const {
    return avx512f && avx512bw && os_zmm;
  }
};

/// Probe CPUID/XGETBV. All-false on non-x86 targets. Not cached; the
/// answer never changes within a process.
CpuFeatures detect_cpu_features();

/// Pure selection policy, exposed for tests: the AVX2 kernels are enabled
/// exactly when the hardware can run them and the operator did not
/// disable them.
bool avx2_enabled(const CpuFeatures& features, bool disabled_by_env);

/// True when the TASD_DISABLE_AVX2 environment variable forces the scalar
/// fallback (set to any non-empty value other than "0").
bool avx2_disabled_by_env();

/// Cached process-wide answer combining detect_cpu_features() and
/// TASD_DISABLE_AVX2 — what GemmDispatch consults at registry
/// construction.
bool avx2_available();

/// Pure selection policy for the AVX-512 kernels, mirror of
/// avx2_enabled(). Independent of the AVX2 knobs: disabling AVX2 alone
/// leaves AVX-512 kernels registered (and vice versa), so CI can pin any
/// single family.
bool avx512_enabled(const CpuFeatures& features, bool disabled_by_env);

/// True when TASD_DISABLE_AVX512 forces the AVX2/scalar fallback (set to
/// any non-empty value other than "0").
bool avx512_disabled_by_env();

/// Cached process-wide answer combining detect_cpu_features() and
/// TASD_DISABLE_AVX512.
bool avx512_available();

/// Identity of this host for tuning-result validity: the CPUID brand
/// string plus the *effective* kernel-family availability (avx2/avx512
/// after the env disables), e.g.
///   "Intel(R) Xeon(R) ... CPU @ 2.20GHz|avx2=1,avx512=1".
/// A TuningResult measured under one signature is only trusted on a host
/// reporting the same string — the candidate pool and relative kernel
/// speeds are functions of exactly these inputs. The TASD_CPU_SIGNATURE
/// environment variable overrides the computed value (read on every
/// call), the test seam for host-mismatch coverage.
std::string cpu_signature();

}  // namespace tasd
