// Block-sparse TASD terms — the paper's generality claim in action.
//
// §3 introduces TASD with N:M patterns but notes "the method is general
// and not limited to only N:M structured sparsity". This module supplies
// a second structured family: coarse-grained block sparsity (Narang et
// al.), where each tile-row keeps its K largest-Frobenius-norm bh x bw
// tiles. Terms from both families compose: a block term can peel the
// dense clusters and an N:M series mops up the scattered remainder.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "core/decompose.hpp"
#include "tensor/matrix.hpp"

namespace tasd {

/// Coarse block-sparsity pattern: the matrix is partitioned into
/// bh x bw tiles; at most `keep_per_row` tiles survive per tile-row.
struct BlockPattern {
  Index bh = 4;
  Index bw = 4;
  Index keep_per_row = 1;

  BlockPattern() = default;
  BlockPattern(Index bh_, Index bw_, Index keep_);

  /// Upper bound on the kept-element fraction for a matrix with
  /// `cols` columns.
  [[nodiscard]] double density(Index cols) const;
};

/// One extracted block term.
struct BlockTerm {
  BlockPattern pattern;
  MatrixF dense;
};

/// Result of a hybrid decomposition: zero or more block terms followed
/// by zero or more N:M terms, plus the dropped residual.
struct HybridDecomposition {
  std::vector<BlockTerm> block_terms;
  std::vector<TasdTerm> nm_terms;
  MatrixF residual;

  [[nodiscard]] MatrixF approximation() const;
  [[nodiscard]] MatrixF reconstruct_exact() const;
  [[nodiscard]] bool lossless() const;

  /// Kept elements across all terms.
  [[nodiscard]] Index kept_nnz() const;
};

/// Split off one block term: keep the `keep_per_row` largest-norm tiles
/// of each tile-row (move semantics — view + residual == input exactly).
struct BlockSplit {
  MatrixF view;
  MatrixF residual;
};
BlockSplit split_block(const MatrixF& matrix, const BlockPattern& pattern);

/// Decompose with `blocks` block terms first (each applied to the running
/// residual), then the N:M series `nm`.
HybridDecomposition hybrid_decompose(const MatrixF& matrix,
                                     const std::vector<BlockPattern>& blocks,
                                     const TasdConfig& nm);

}  // namespace tasd
