#include "tasder/tasdw.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/plan_cache.hpp"
#include "dnn/builders.hpp"
#include "dnn/pruning.hpp"

namespace tasd::tasder {
namespace {

struct Fixture {
  dnn::Model model;
  dnn::EvalSet eval;
  std::vector<Index> reference;
  HwProfile hw;

  static Fixture sparse_resnet() {
    dnn::ConvNetOptions o;
    o.input_hw = 8;
    o.width_mult = 0.125;
    o.num_classes = 10;
    Fixture f{dnn::make_resnet(18, o), dnn::EvalSet::images(32, 8, 3, 201),
              {}, hw_profile_from(accel::ArchConfig::ttc_vegeta_m8())};
    (void)dnn::prune_unstructured(f.model, 0.92);
    f.reference = dnn::predict(f.model, f.eval);
    return f;
  }
};

TEST(TasdwUniform, LosslessSeriesKeepsFullAgreement) {
  auto f = Fixture::sparse_resnet();
  // 4:8+4:8 covers every element: zero drop, full agreement.
  const auto r = tasdw_apply_uniform(f.model, TasdConfig::parse("4:8+4:8"),
                                     f.eval, f.reference);
  EXPECT_DOUBLE_EQ(r.achieved_agreement, 1.0);
  EXPECT_DOUBLE_EQ(r.mac_fraction, 1.0);
}

TEST(TasdwUniform, RecordsPerLayerDecisions) {
  auto f = Fixture::sparse_resnet();
  const auto r = tasdw_apply_uniform(f.model, TasdConfig::parse("2:8"),
                                     f.eval, f.reference);
  EXPECT_EQ(r.decisions.size(), f.model.gemm_layers().size());
  for (const auto& d : r.decisions) {
    ASSERT_TRUE(d.config.has_value());
    EXPECT_DOUBLE_EQ(d.series_density, 0.25);
  }
  EXPECT_NEAR(r.mac_fraction, 0.25, 1e-9);
}

TEST(TasdwNetworkWise, MeetsQualityThreshold) {
  auto f = Fixture::sparse_resnet();
  const auto r = tasdw_network_wise(f.model, f.hw, f.eval, f.reference);
  EXPECT_GE(r.achieved_agreement, 0.99);
  EXPECT_LT(r.mac_fraction, 1.0);  // found something beneficial
}

TEST(TasdwLayerWise, MeetsQualityAndBeatsNetworkWise) {
  auto f = Fixture::sparse_resnet();
  const auto net = tasdw_network_wise(f.model, f.hw, f.eval, f.reference);
  f.model.clear_tasd();
  const auto layer = tasdw_layer_wise(f.model, f.hw, f.eval, f.reference);
  EXPECT_GE(layer.achieved_agreement, 0.99);
  // Paper §5.3: layer-wise can adapt aggressiveness per layer, so its
  // MAC fraction is never (meaningfully) worse.
  EXPECT_LE(layer.mac_fraction, net.mac_fraction + 0.05);
}

TEST(TasdwLayerWise, SecondPassOverSameWeightsDecomposesNothing) {
  auto f = Fixture::sparse_resnet();
  (void)tasdw_layer_wise(f.model, f.hw, f.eval, f.reference);  // warm
  f.model.clear_tasd();
  const auto before = plan_cache().stats();
  const auto r = tasdw_layer_wise(f.model, f.hw, f.eval, f.reference);
  const auto after = plan_cache().stats();
  EXPECT_EQ(after.decompositions, before.decompositions)
      << "every (layer weight, config) plan must come from the cache on "
         "the second TASDER pass";
  EXPECT_GT(after.hits, before.hits);
  EXPECT_GE(r.achieved_agreement, 0.99);
}

TEST(TasdwLayerWise, AdaptsAggressivenessPerLayer) {
  auto f = Fixture::sparse_resnet();
  const auto r = tasdw_layer_wise(f.model, f.hw, f.eval, f.reference);
  // Layer-wise TASD-W tailors the series per layer: expect at least one
  // aggressive choice (<= 0.375 slot density) and more than one distinct
  // config across the network.
  bool saw_aggressive = false;
  std::set<std::string> distinct;
  for (const auto& d : r.decisions) {
    if (!d.config) continue;
    distinct.insert(d.config->str());
    if (d.series_density <= 0.375 + 1e-9) saw_aggressive = true;
  }
  EXPECT_TRUE(saw_aggressive);
  EXPECT_GT(distinct.size(), 1u);
}

TEST(TasdwLayerWise, BinaryAndLinearSearchAgree) {
  auto f = Fixture::sparse_resnet();
  TasdwOptions bin;
  bin.binary_search_prefix = true;
  const auto r_bin = tasdw_layer_wise(f.model, f.hw, f.eval, f.reference, bin);
  f.model.clear_tasd();
  TasdwOptions lin;
  lin.binary_search_prefix = false;
  const auto r_lin = tasdw_layer_wise(f.model, f.hw, f.eval, f.reference, lin);
  // Both must satisfy quality; the linear ("stop at first violation")
  // variant can only be more conservative.
  EXPECT_GE(r_bin.achieved_agreement, 0.99);
  EXPECT_GE(r_lin.achieved_agreement, 0.99);
  EXPECT_LE(r_bin.mac_fraction, r_lin.mac_fraction + 1e-9);
}

TEST(TasdwLayerWise, DenseModelGetsConservativeTreatment) {
  dnn::ConvNetOptions o;
  o.input_hw = 8;
  o.width_mult = 0.125;
  o.num_classes = 10;
  dnn::Model model = dnn::make_resnet(18, o);  // dense weights
  const auto eval = dnn::EvalSet::images(32, 8, 3, 202);
  const auto ref = dnn::predict(model, eval);
  const auto hw = hw_profile_from(accel::ArchConfig::ttc_vegeta_m8());
  const auto r = tasdw_layer_wise(model, hw, eval, ref);
  // Must still respect quality on a dense model (fewer layers converted).
  EXPECT_GE(r.achieved_agreement, 0.99);
}

}  // namespace
}  // namespace tasd::tasder
