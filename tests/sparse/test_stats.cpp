#include "sparse/stats.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/generator.hpp"

namespace tasd::sparse {
namespace {

TEST(BlockHistogram, CountsExactly) {
  // Row [1 1 0 0 | 1 0 0 0], M=4 -> one block with 2, one with 1.
  MatrixF m(1, 8, {1, 1, 0, 0, 1, 0, 0, 0});
  const auto h = block_nnz_histogram(m, 4);
  ASSERT_EQ(h.size(), 5u);
  EXPECT_EQ(h[0], 0u);
  EXPECT_EQ(h[1], 1u);
  EXPECT_EQ(h[2], 1u);
  EXPECT_EQ(h[3], 0u);
}

TEST(BlockHistogram, TotalBlocksConserved) {
  Rng rng(51);
  const MatrixF m = random_unstructured(7, 20, 0.5, Dist::kNormalStd1, rng);
  const auto h = block_nnz_histogram(m, 8);
  Index total = 0;
  for (Index c : h) total += c;
  EXPECT_EQ(total, 7u * 3u);  // ceil(20/8) = 3 blocks per row
}

TEST(BlockHistogram, RejectsBadBlockSize) {
  MatrixF m(1, 4);
  EXPECT_THROW(block_nnz_histogram(m, 0), tasd::Error);
}

TEST(ViewCoverage, FullWhenMatrixConforming) {
  Rng rng(52);
  const MatrixF m = random_nm_structured(4, 16, 2, 4, Dist::kNormalStd1, rng);
  EXPECT_DOUBLE_EQ(view_nnz_coverage(m, NMPattern(2, 4)), 1.0);
  EXPECT_DOUBLE_EQ(view_magnitude_coverage(m, NMPattern(2, 4)), 1.0);
}

TEST(ViewCoverage, MagnitudeAtLeastNnzCoverage) {
  // Greedy keeps the largest elements, so magnitude coverage dominates
  // count coverage (paper Fig. 4 observation: 84 % vs 70 %).
  Rng rng(53);
  for (double density : {0.4, 0.7, 1.0}) {
    const MatrixF m =
        random_unstructured(16, 64, density, Dist::kNormal, rng);
    const double nnz_cov = view_nnz_coverage(m, NMPattern(2, 4));
    const double mag_cov = view_magnitude_coverage(m, NMPattern(2, 4));
    EXPECT_GE(mag_cov + 1e-12, nnz_cov) << "density " << density;
  }
}

TEST(ViewCoverage, ZeroMatrixIsFullyCovered) {
  MatrixF m(4, 8);
  EXPECT_DOUBLE_EQ(view_nnz_coverage(m, NMPattern(1, 4)), 1.0);
  EXPECT_DOUBLE_EQ(view_magnitude_coverage(m, NMPattern(1, 4)), 1.0);
}

TEST(PseudoDensity, DenseSkewedTensorHasLowPseudoDensity) {
  // One dominant element: 99 % of the magnitude sits in a tiny fraction
  // of elements.
  MatrixF m(1, 100, 0.0001F);
  m(0, 0) = 100.0F;
  EXPECT_LT(pseudo_density(m, 0.99), 0.05);
  EXPECT_DOUBLE_EQ(1.0 - m.sparsity(), 1.0);  // literally dense
}

TEST(PseudoDensity, UniformTensorHasHighPseudoDensity) {
  MatrixF m(1, 100, 1.0F);
  EXPECT_NEAR(pseudo_density(m, 0.99), 0.99, 0.011);
}

TEST(PseudoDensity, ZeroMatrix) {
  MatrixF m(2, 2);
  EXPECT_DOUBLE_EQ(pseudo_density(m, 0.99), 0.0);
}

TEST(PseudoDensity, MonotoneInCoverage) {
  Rng rng(54);
  const MatrixF m = random_dense(8, 32, Dist::kNormalStd1, rng);
  EXPECT_LE(pseudo_density(m, 0.5), pseudo_density(m, 0.9));
  EXPECT_LE(pseudo_density(m, 0.9), pseudo_density(m, 0.999));
}

TEST(PseudoDensity, RejectsBadCoverage) {
  MatrixF m(1, 4, 1.0F);
  EXPECT_THROW(pseudo_density(m, 0.0), tasd::Error);
  EXPECT_THROW(pseudo_density(m, 1.5), tasd::Error);
}

TEST(Density, Complement) {
  MatrixF m(1, 4, {1, 0, 0, 0});
  EXPECT_DOUBLE_EQ(density(m), 0.25);
}

}  // namespace
}  // namespace tasd::sparse
