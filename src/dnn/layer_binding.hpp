// Workload → layer bindings: the common executable form the runtime's
// compile step consumes.
//
// Both sources of deployable layers — the full-scale NetworkWorkload
// shape tables (weights materialized from seeds) and an in-memory
// dnn::Model that TASDER optimized (weights owned by the layers) —
// flatten into the same per-layer record: a name, the materialized GEMM
// weight, the activation positions to measure at, and the chosen TASD
// series. dnn cannot depend on the runtime, so the binding lives here
// and rt::compile() (src/runtime/compiled_network.hpp) consumes it.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "dnn/model.hpp"
#include "dnn/workloads.hpp"
#include "tensor/matrix.hpp"

namespace tasd::dnn {

/// One deployable layer: C(m x positions) = weight(m x k) * X(k x positions).
struct LayerBinding {
  std::string name;
  MatrixF weight;                    ///< materialized GEMM operand (M x K)
  /// Full-scale activation positions (the GEMM's N) used when measuring
  /// the layer; execution accepts any right-hand-side width.
  Index positions = 0;
  std::optional<TasdConfig> config;  ///< nullopt = dense
};

/// Bind a full-scale workload's layers under per-layer configs (entries
/// align with net.layers; nullopt = dense). Weights are materialized
/// from each layer's seed, deterministically.
std::vector<LayerBinding> bind_layers(
    const NetworkWorkload& net,
    const std::vector<std::optional<TasdConfig>>& configs);

/// Bind a model's GEMM layers: each layer contributes its current weight
/// and its TASD-W config (TASD-A is a dynamic activation transformation
/// and has no static kernel to bind). `positions` sets the measurement
/// width for every layer (models don't pin activation widths statically).
std::vector<LayerBinding> bind_layers(Model& model, Index positions = 128);

}  // namespace tasd::dnn
