// Shared plumbing for the accelerator-model benches (Figs. 12/13/15/19):
// run TASDER for each workload x architecture pair and simulate.
#pragma once

#include <string>
#include <vector>

#include "accel/network_sim.hpp"
#include "dnn/workloads.hpp"
#include "tasder/workload_opt.hpp"

namespace tasd::bench {

/// The paper's four evaluation workloads (Figs. 12–13) in paper order.
std::vector<dnn::NetworkWorkload> paper_workloads();

/// TASDER-optimized simulation of `net` on `arch` (plain executions when
/// the architecture has no structured support).
accel::NetworkSim run_on(const accel::ArchConfig& arch,
                         const dnn::NetworkWorkload& net);

/// Dense-TC baseline simulation of `net`.
accel::NetworkSim baseline_tc(const dnn::NetworkWorkload& net);

}  // namespace tasd::bench
