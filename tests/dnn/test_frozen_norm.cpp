// Tests for the deployment-style frozen batch-norm semantics.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dnn/layers.hpp"
#include "tensor/generator.hpp"

namespace tasd::dnn {
namespace {

Tensor4D batch(std::uint64_t seed) {
  Rng rng(seed);
  return random_tensor(8, 4, 6, 6, 1.0, Dist::kNormalStd1, rng);
}

TEST(FrozenNorm, FirstForwardCalibrates) {
  Rng rng(901);
  auto conv = make_conv(4, 8, 3, 1, 1, ActKind::kNone, rng);
  const Tensor4D in = batch(1);
  const Feature out1 = conv->forward(Feature(in));
  // Calibration batch: per-channel mean ~0, std ~1 across batch*spatial.
  const Tensor4D& t = out1.tensor();
  for (Index c = 0; c < t.c(); ++c) {
    double mean = 0.0;
    Index n = 0;
    for (Index b = 0; b < t.n(); ++b)
      for (Index y = 0; y < t.h(); ++y)
        for (Index x = 0; x < t.w(); ++x) {
          mean += t(b, c, y, x);
          ++n;
        }
    EXPECT_NEAR(mean / static_cast<double>(n), 0.0, 1e-3);
  }
}

TEST(FrozenNorm, StatsDoNotDriftOnLaterBatches) {
  Rng rng(902);
  auto conv = make_conv(4, 8, 3, 1, 1, ActKind::kNone, rng);
  (void)conv->forward(Feature(batch(1)));  // calibrate
  // A later batch with a big mean shift must NOT be re-normalized to
  // zero mean — frozen stats pass the shift through.
  Tensor4D shifted = batch(2);
  for (float& v : shifted.flat()) v += 5.0F;
  // Copy out of the temporary Feature: tensor() returns a reference into
  // it, which dies at the end of the full expression.
  const Tensor4D t = conv->forward(Feature(shifted)).tensor();
  double mean = 0.0;
  for (float v : t.flat()) mean += v;
  mean /= static_cast<double>(t.size());
  EXPECT_GT(std::fabs(mean), 0.5);
}

TEST(FrozenNorm, SameInputSameOutputAcrossCalls) {
  Rng rng(903);
  auto conv = make_conv(4, 8, 3, 1, 1, ActKind::kRelu, rng);
  const Tensor4D in = batch(3);
  const Feature a = conv->forward(Feature(in));
  const Feature b = conv->forward(Feature(in));
  auto fa = a.tensor().flat();
  auto fb = b.tensor().flat();
  for (Index i = 0; i < fa.size(); ++i) EXPECT_EQ(fa[i], fb[i]);
}

TEST(FrozenNorm, ResetRecalibrates) {
  Rng rng(904);
  auto conv = make_conv(4, 8, 3, 1, 1, ActKind::kNone, rng);
  (void)conv->forward(Feature(batch(4)));
  Tensor4D shifted = batch(5);
  for (float& v : shifted.flat()) v += 5.0F;
  conv->reset_norm_calibration();
  // Recalibrated on the shifted batch: output mean back near zero. Copy
  // out of the temporary Feature (tensor() returns a reference into it).
  const Tensor4D t = conv->forward(Feature(shifted)).tensor();
  double mean = 0.0;
  for (float v : t.flat()) mean += v;
  mean /= static_cast<double>(t.size());
  EXPECT_NEAR(mean, 0.0, 1e-3);
}

TEST(FrozenNorm, TasdConfigsDoNotRecalibrate) {
  // The heart of the metric's validity: setting TASD configs after
  // calibration must not shift the normalization operating point.
  Rng rng(905);
  auto conv = make_conv(8, 8, 1, 1, 0, ActKind::kNone, rng);
  const Tensor4D in = batch(6).n() ? batch(6) : Tensor4D();
  Rng rng2(907);
  const Tensor4D input = random_tensor(8, 8, 4, 4, 1.0, Dist::kNormalStd1,
                                       rng2);
  const Feature base = conv->forward(Feature(input));
  conv->set_tasd_w(TasdConfig::parse("4:8+4:8"));  // lossless series
  const Feature after = conv->forward(Feature(input));
  auto fa = base.tensor().flat();
  auto fb = after.tensor().flat();
  for (Index i = 0; i < fa.size(); ++i) EXPECT_EQ(fa[i], fb[i]);
}

}  // namespace
}  // namespace tasd::dnn
