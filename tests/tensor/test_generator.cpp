#include "tensor/generator.hpp"

#include <gtest/gtest.h>

#include "sparse/pattern.hpp"

namespace tasd {
namespace {

TEST(Generator, DenseHasNoStructuralZeros) {
  Rng rng(5);
  MatrixF m = random_dense(32, 32, Dist::kUniform01, rng);
  // U[0,1) draws exact zero with probability ~0: expect near-full density.
  EXPECT_GT(1.0 - m.sparsity(), 0.999);
}

TEST(Generator, UnstructuredHitsTargetDensity) {
  Rng rng(6);
  const double density = 0.3;
  MatrixF m = random_unstructured(100, 100, density, Dist::kNormalStd1, rng);
  EXPECT_NEAR(1.0 - m.sparsity(), density, 0.03);
}

TEST(Generator, UnstructuredExtremes) {
  Rng rng(7);
  MatrixF empty = random_unstructured(10, 10, 0.0, Dist::kNormalStd1, rng);
  EXPECT_EQ(empty.nnz(), 0u);
  MatrixF full = random_unstructured(10, 10, 1.0, Dist::kNormalStd1, rng);
  EXPECT_EQ(full.nnz(), 100u);
}

TEST(Generator, UnstructuredRejectsBadDensity) {
  Rng rng(8);
  EXPECT_THROW(random_unstructured(2, 2, -0.1, Dist::kNormalStd1, rng), Error);
  EXPECT_THROW(random_unstructured(2, 2, 1.5, Dist::kNormalStd1, rng), Error);
}

TEST(Generator, NmStructuredSatisfiesPattern) {
  Rng rng(9);
  MatrixF m = random_nm_structured(16, 64, 2, 4, Dist::kNormalStd1, rng);
  EXPECT_TRUE(sparse::satisfies(m, sparse::NMPattern(2, 4)));
  // Exactly 2 non-zeros per full block.
  EXPECT_EQ(m.nnz(), 16u * (64u / 4u) * 2u);
}

TEST(Generator, NmStructuredHandlesRaggedTail) {
  Rng rng(10);
  // cols = 10, blocks of 4: tail block has 2 elements.
  MatrixF m = random_nm_structured(4, 10, 3, 4, Dist::kNormalStd1, rng);
  EXPECT_TRUE(sparse::satisfies(m, sparse::NMPattern(3, 4)));
}

TEST(Generator, NmStructuredRejectsInvalidPattern) {
  Rng rng(11);
  EXPECT_THROW(random_nm_structured(2, 8, 5, 4, Dist::kNormalStd1, rng), Error);
  EXPECT_THROW(random_nm_structured(2, 8, 1, 0, Dist::kNormalStd1, rng), Error);
}

TEST(Generator, MagnitudePruneExactCount) {
  Rng rng(12);
  MatrixF m = random_dense(20, 20, Dist::kNormalStd1, rng);
  MatrixF pruned = magnitude_prune(m, 0.75);
  EXPECT_EQ(pruned.nnz(), 100u);
  EXPECT_DOUBLE_EQ(pruned.sparsity(), 0.75);
}

TEST(Generator, MagnitudePruneKeepsLargest) {
  MatrixF m(1, 4, {0.1F, -5.0F, 0.2F, 3.0F});
  MatrixF pruned = magnitude_prune(m, 0.5);
  EXPECT_EQ(pruned(0, 0), 0.0F);
  EXPECT_EQ(pruned(0, 1), -5.0F);
  EXPECT_EQ(pruned(0, 2), 0.0F);
  EXPECT_EQ(pruned(0, 3), 3.0F);
}

TEST(Generator, MagnitudePruneZeroTargetIsIdentity) {
  Rng rng(13);
  MatrixF m = random_dense(5, 5, Dist::kNormalStd1, rng);
  EXPECT_EQ(magnitude_prune(m, 0.0), m);
}

TEST(Generator, MagnitudePruneFullTargetZeroesAll) {
  Rng rng(14);
  MatrixF m = random_dense(5, 5, Dist::kNormalStd1, rng);
  EXPECT_EQ(magnitude_prune(m, 1.0).nnz(), 0u);
}

TEST(Generator, TensorDensityTarget) {
  Rng rng(15);
  Tensor4D t = random_tensor(2, 8, 8, 8, 0.5, Dist::kNormalStd1, rng);
  EXPECT_NEAR(1.0 - t.sparsity(), 0.5, 0.05);
}

TEST(Generator, DistributionsDiffer) {
  Rng rng_a(16);
  Rng rng_b(16);
  MatrixF u = random_dense(50, 50, Dist::kUniform01, rng_a);
  MatrixF n = random_dense(50, 50, Dist::kNormalStd1, rng_b);
  // Uniform draws are non-negative; normal draws are not.
  bool any_negative = false;
  for (float v : n.flat()) any_negative |= v < 0.0F;
  EXPECT_TRUE(any_negative);
  for (float v : u.flat()) EXPECT_GE(v, 0.0F);
}

}  // namespace
}  // namespace tasd
