// AVX2/FMA GEMM kernels. Compiled with -mavx2 -mfma; executed only when
// runtime detection (tasd::avx2_available) registered them.
//
// The bit-exactness discipline (docs/kernels.md): one accumulator chain
// per output element, advanced by exactly one fused multiply-add per
// k-step (dense) or stored value (N:M), k/value order ascending. The
// full-vector blocks and the masked-vector column tail perform the
// *same* rounded operations per element, so which path computes an
// element — decided by tile boundaries, batch packing, or thread
// partitioning — never changes its bits.
//
// The loop structure fights memory traffic, the regime that caps GEMM
// past L2-sized operands: a 512-column macro tile is processed for a
// whole block of output rows before moving right, so the B tile is
// reused across the block instead of being re-streamed per row, and the
// dense core accumulates 4 output rows per pass (each B vector load
// feeds 4 FMA chains). None of this reorders any single element's chain.
#include "runtime/kernels_avx2.hpp"

#include <immintrin.h>

#include <algorithm>

namespace tasd::rt {

namespace {

// Row grain of the parallel_for partition; matches the scalar kernels so
// thread scheduling granularity is comparable across families (the grain
// never affects results, only load balance). It also bounds how many
// rows reuse one resident B macro tile.
constexpr std::size_t kRowGrain = 8;

// Column macro tile: B rows' 2 KB segments stay cache-resident while a
// row block passes over them (matches the scalar kernels' kTileN).
constexpr Index kMacroTileN = 512;

/// Lane mask enabling the first `tail` (1..7) of 8 lanes. Masked loads
/// return 0.0f in disabled lanes and never fault on them, masked stores
/// leave them untouched, so a sub-vector column tail runs the same fused
/// accumulator chain as a full vector block with the accumulator in a
/// register (a runtime-bounded scalar tail would force it through the
/// stack, putting a store-forward on the chain's critical path).
inline __m256i tail_mask(Index tail) {
  alignas(32) static constexpr int kTable[16] = {-1, -1, -1, -1, -1, -1, -1,
                                                 -1, 0,  0,  0,  0,  0,  0,
                                                 0,  0};
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kTable + 8 - tail));
}

// ------------------------------------------------------------ dense core

/// Accumulate kRows consecutive output rows of C over columns [c0, c1):
/// 16-column register blocks (kRows x 2 vector accumulators), so each
/// loaded B vector feeds kRows FMA chains; then an 8-column block and a
/// std::fmaf scalar remainder with the identical per-element chain.
template <int kRows>
void dense_rows_avx2(const float* __restrict arow, Index k, const float* bd,
                     Index n, float* __restrict crow, Index c0, Index c1) {
  Index j = c0;
  for (; j + 16 <= c1; j += 16) {
    __m256 acc0[kRows], acc1[kRows];
    for (int r = 0; r < kRows; ++r) {
      acc0[r] = _mm256_loadu_ps(crow + r * n + j);
      acc1[r] = _mm256_loadu_ps(crow + r * n + j + 8);
    }
    for (Index p = 0; p < k; ++p) {
      const __m256 b0 = _mm256_loadu_ps(bd + p * n + j);
      const __m256 b1 = _mm256_loadu_ps(bd + p * n + j + 8);
      for (int r = 0; r < kRows; ++r) {
        const __m256 av = _mm256_set1_ps(arow[r * k + p]);
        acc0[r] = _mm256_fmadd_ps(av, b0, acc0[r]);
        acc1[r] = _mm256_fmadd_ps(av, b1, acc1[r]);
      }
    }
    for (int r = 0; r < kRows; ++r) {
      _mm256_storeu_ps(crow + r * n + j, acc0[r]);
      _mm256_storeu_ps(crow + r * n + j + 8, acc1[r]);
    }
  }
  for (; j + 8 <= c1; j += 8) {
    __m256 acc[kRows];
    for (int r = 0; r < kRows; ++r) acc[r] = _mm256_loadu_ps(crow + r * n + j);
    for (Index p = 0; p < k; ++p) {
      const __m256 bv = _mm256_loadu_ps(bd + p * n + j);
      for (int r = 0; r < kRows; ++r)
        acc[r] = _mm256_fmadd_ps(_mm256_set1_ps(arow[r * k + p]), bv, acc[r]);
    }
    for (int r = 0; r < kRows; ++r) _mm256_storeu_ps(crow + r * n + j, acc[r]);
  }
  if (j < c1) {
    // Sub-vector column tail: one masked-vector pass, the same
    // k-ascending fused chain per element as the full blocks.
    const __m256i mask = tail_mask(c1 - j);
    __m256 acc[kRows];
    for (int r = 0; r < kRows; ++r)
      acc[r] = _mm256_maskload_ps(crow + r * n + j, mask);
    for (Index p = 0; p < k; ++p) {
      const __m256 bv = _mm256_maskload_ps(bd + p * n + j, mask);
      for (int r = 0; r < kRows; ++r)
        acc[r] = _mm256_fmadd_ps(_mm256_set1_ps(arow[r * k + p]), bv, acc[r]);
    }
    for (int r = 0; r < kRows; ++r)
      _mm256_maskstore_ps(crow + r * n + j, mask, acc[r]);
  }
}

// -------------------------------------------------------------- N:M core

/// Accumulate kVecs*8 columns of C row r from the compressed row's
/// stored values, in stored order, with the accumulators held in
/// registers across the whole traversal.
template <int kVecs>
void nm_row_block_avx2(const sparse::NMSparseMatrix& a, const float* bd,
                       float* __restrict crow, Index r, Index n, Index j) {
  const auto m = static_cast<Index>(a.pattern().m);
  const auto& values = a.values();
  const auto& idx = a.in_block_index();
  const auto& offsets = a.block_offsets();
  const Index blocks_per_row = a.blocks_per_row();

  __m256 acc[kVecs];
  for (int v = 0; v < kVecs; ++v)
    acc[v] = _mm256_loadu_ps(crow + j + 8 * v);
  Index group = r * blocks_per_row;
  for (Index blk = 0; blk < blocks_per_row; ++blk, ++group) {
    const Index k_base = blk * m;
    for (Index s = offsets[group]; s < offsets[group + 1]; ++s) {
      const __m256 av = _mm256_set1_ps(values[s]);
      const float* brow = bd + (k_base + idx[s]) * n + j;
      for (int v = 0; v < kVecs; ++v)
        acc[v] = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 8 * v), acc[v]);
    }
  }
  for (int v = 0; v < kVecs; ++v)
    _mm256_storeu_ps(crow + j + 8 * v, acc[v]);
}

}  // namespace

void dense_gemm_tile_avx2(const MatrixF& a, const MatrixF& b, MatrixF& c,
                          Index row_begin, Index row_end, Index col_begin,
                          Index col_end) {
  const Index k = a.cols(), n = b.cols();
  for (Index jt = col_begin; jt < col_end; jt += kMacroTileN) {
    const Index je = std::min(col_end, jt + kMacroTileN);
    Index i = row_begin;
    for (; i + 4 <= row_end; i += 4)
      dense_rows_avx2<4>(a.data() + i * k, k, b.data(), n, c.data() + i * n,
                         jt, je);
    for (; i + 2 <= row_end; i += 2)
      dense_rows_avx2<2>(a.data() + i * k, k, b.data(), n, c.data() + i * n,
                         jt, je);
    if (i < row_end)
      dense_rows_avx2<1>(a.data() + i * k, k, b.data(), n, c.data() + i * n,
                         jt, je);
  }
}

void nm_gemm_tile_avx2(const sparse::NMSparseMatrix& a, const MatrixF& b,
                       MatrixF& c, Index row_begin, Index row_end,
                       Index col_begin, Index col_end) {
  const Index n = b.cols();
  const auto m = static_cast<Index>(a.pattern().m);
  const auto& values = a.values();
  const auto& idx = a.in_block_index();
  const auto& offsets = a.block_offsets();
  const Index blocks_per_row = a.blocks_per_row();
  const float* bd = b.data();

  for (Index jt = col_begin; jt < col_end; jt += kMacroTileN) {
    const Index je = std::min(col_end, jt + kMacroTileN);
    for (Index r = row_begin; r < row_end; ++r) {
      float* __restrict crow = c.data() + r * n;
      // Each block width costs one traversal of the row's compressed
      // storage, so take the widest block that fits (32/16/8 columns)
      // and finish the sub-vector tail in a single traversal too — the
      // serving path's narrow packed batches (a few width-1 queries)
      // live entirely in the 16/8/tail cases.
      Index j = jt;
      for (; j + 32 <= je; j += 32) nm_row_block_avx2<4>(a, bd, crow, r, n, j);
      if (j + 16 <= je) {
        nm_row_block_avx2<2>(a, bd, crow, r, n, j);
        j += 16;
      }
      if (j + 8 <= je) {
        nm_row_block_avx2<1>(a, bd, crow, r, n, j);
        j += 8;
      }
      if (j < je) {
        // Masked-vector tail: one traversal, register accumulator,
        // stored-value-ascending fused chain per element — the batch-1
        // GEMV serving case runs entirely through here.
        const __m256i mask = tail_mask(je - j);
        __m256 acc = _mm256_maskload_ps(crow + j, mask);
        Index group = r * blocks_per_row;
        for (Index blk = 0; blk < blocks_per_row; ++blk, ++group) {
          const Index k_base = blk * m;
          for (Index v = offsets[group]; v < offsets[group + 1]; ++v) {
            const __m256 bv =
                _mm256_maskload_ps(bd + (k_base + idx[v]) * n + j, mask);
            acc = _mm256_fmadd_ps(_mm256_set1_ps(values[v]), bv, acc);
          }
        }
        _mm256_maskstore_ps(crow + j, mask, acc);
      }
    }
  }
}

namespace {

void dense_avx2(const MatrixF& a, const MatrixF& b, MatrixF& c,
                ThreadPool& pool) {
  pool.parallel_for(0, a.rows(), kRowGrain, [&](Index r0, Index r1) {
    dense_gemm_tile_avx2(a, b, c, r0, r1, 0, b.cols());
  });
}

void nm_avx2(const sparse::NMSparseMatrix& a, const MatrixF& b, MatrixF& c,
             ThreadPool& pool) {
  pool.parallel_for(0, a.rows(), kRowGrain, [&](Index r0, Index r1) {
    nm_gemm_tile_avx2(a, b, c, r0, r1, 0, b.cols());
  });
}

void dense_batch_avx2(const MatrixF& a, std::span<const MatrixF> bs,
                      std::span<MatrixF> cs, ThreadPool& pool) {
  run_packed_batch(a.rows(), bs, cs, pool,
                   [&a](const MatrixF& b, MatrixF& c, Index r0, Index r1,
                        Index c0, Index c1) {
                     dense_gemm_tile_avx2(a, b, c, r0, r1, c0, c1);
                   });
}

void nm_batch_avx2(const sparse::NMSparseMatrix& a,
                   std::span<const MatrixF> bs, std::span<MatrixF> cs,
                   ThreadPool& pool) {
  run_packed_batch(a.rows(), bs, cs, pool,
                   [&a](const MatrixF& b, MatrixF& c, Index r0, Index r1,
                        Index c0, Index c1) {
                     nm_gemm_tile_avx2(a, b, c, r0, r1, c0, c1);
                   });
}

}  // namespace

void register_avx2_kernels(GemmDispatch& dispatch) {
  dispatch.register_dense("dense-avx2", dense_avx2);
  dispatch.register_nm("nm-avx2", nm_avx2);
  dispatch.register_dense_batch("dense-batch-avx2", dense_batch_avx2);
  dispatch.register_nm_batch("nm-batch-avx2", nm_batch_avx2);
}

}  // namespace tasd::rt
