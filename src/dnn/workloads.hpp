// Full-scale network workloads for the accelerator model.
//
// The analytical accelerator model (src/accel/) needs each layer's GEMM
// shape plus operand densities — not activations or gradients. These
// builders enumerate the *original, full-scale* layer shapes of the
// paper's evaluation networks (ResNet-50/34 at 224x224, BERT-base at
// sequence length 128), with per-layer weight densities following the
// Fig. 6 profile and activation densities following measured ReLU/GELU
// behaviour. Weight values can be materialized on demand (seeded) when a
// consumer needs magnitude information (TASD-W dropped-non-zero stats).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace tasd::dnn {

/// One GEMM layer of a full-scale network: C(MxN) = W(MxK) * X(KxN).
struct GemmWorkload {
  std::string name;
  Index m = 0;
  Index k = 0;
  Index n = 0;
  double weight_density = 1.0;
  double act_density = 1.0;          ///< literal density of X
  double act_pseudo_density = 1.0;   ///< magnitude pseudo-density of X
  bool act_relu = true;   ///< X produced by a ReLU-family activation
  /// TASD-A permitted on this layer (attention Q/K/V/out projections are
  /// excluded, paper §4.3 / Fig. 8).
  bool tasd_a_eligible = true;
  /// Non-zero when the model was structured-pruned (HW-aware
  /// fine-tuning): weights conform to structured_n:structured_m.
  int structured_n = 0;
  int structured_m = 0;
  std::uint64_t weight_seed = 0;     ///< seed to materialize weight values
  Index repeat = 1;       ///< number of identical instances in the network

  /// Dense MAC count of one instance.
  [[nodiscard]] Index macs() const { return m * k * n; }
};

/// A whole network as a stack of GEMM workloads.
struct NetworkWorkload {
  std::string name;
  bool sparse_weights = false;
  std::vector<GemmWorkload> layers;

  /// Total dense MACs including repeats.
  [[nodiscard]] Index total_macs() const;
  /// Total weight parameters including repeats.
  [[nodiscard]] Index total_params() const;
};

/// ResNet-50, 224x224 input, batch 1. `sparse_weights` applies the 95 %
/// Fig. 6 pruning profile.
NetworkWorkload resnet50_workload(bool sparse_weights, std::uint64_t seed);

/// ResNet-34, 224x224 input, batch 1 (the real-system experiment model).
NetworkWorkload resnet34_workload(bool sparse_weights, std::uint64_t seed);

/// BERT-base: 12 encoders, hidden 768, sequence length 128.
NetworkWorkload bert_workload(bool sparse_weights, std::uint64_t seed);

/// One autoregressive transformer decode step at a given KV-cache
/// length: query projection, attention scores against the K cache,
/// value mixing, output projection, then the MLP pair. Every layer has
/// n = 1 (a single token's activations) and chains — each layer's K
/// equals the previous layer's M — so the stack runs end-to-end through
/// CompiledNetwork::run_network and rt::PipelinedExecutor. This is the
/// GEMV serving regime where per-layer dispatch overhead dominates
/// arithmetic. `sparse_weights` prunes the four projection/MLP weights
/// (90 %, BERT profile); the score/value layers are the KV cache itself
/// — dense activations, never pruned, and not TASD-A targets (attention
/// exclusion, paper §4.3 / Fig. 8).
NetworkWorkload decode_step_workload(Index hidden, Index kv_len,
                                     bool sparse_weights, std::uint64_t seed);

/// The paper's Table 4 representative layers (L1/L2/L3 per workload).
/// Names are "<workload>/L<i>".
std::vector<GemmWorkload> table4_layers();

/// Generate the actual weight matrix of a workload layer: He-initialized
/// Gaussian, magnitude-pruned to (1 - weight_density). Deterministic in
/// weight_seed.
MatrixF materialize_weight(const GemmWorkload& layer);

}  // namespace tasd::dnn
