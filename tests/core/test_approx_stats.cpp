#include "core/approx_stats.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/generator.hpp"

namespace tasd {
namespace {

TEST(ApproxStats, CountsAddUp) {
  Rng rng(71);
  const MatrixF m = random_unstructured(8, 32, 0.5, Dist::kNormalStd1, rng);
  const auto s = approx_stats(m, TasdConfig::parse("1:4"));
  EXPECT_EQ(s.kept_nnz + s.dropped_nnz, s.original_nnz);
  EXPECT_NEAR(s.kept_magnitude + s.dropped_magnitude, s.original_magnitude,
              1e-6);
}

TEST(ApproxStats, LosslessSeriesHasZeroError) {
  Rng rng(72);
  const MatrixF m = random_nm_structured(8, 32, 2, 8, Dist::kNormalStd1, rng);
  const auto s = approx_stats(m, TasdConfig::parse("2:8"));
  EXPECT_EQ(s.dropped_nnz, 0u);
  EXPECT_DOUBLE_EQ(s.mse, 0.0);
  EXPECT_DOUBLE_EQ(s.rel_frobenius_error, 0.0);
}

TEST(ApproxStats, ZeroMatrixFractionsAreDefined) {
  const MatrixF m(4, 16);
  const auto s = approx_stats(m, TasdConfig::parse("1:4"));
  EXPECT_DOUBLE_EQ(s.dropped_nnz_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(s.nnz_coverage(), 1.0);
  EXPECT_DOUBLE_EQ(s.magnitude_coverage(), 1.0);
}

TEST(ApproxStats, MoreTermsNeverWorse) {
  Rng rng(73);
  const MatrixF m = random_unstructured(16, 64, 0.6, Dist::kNormal, rng);
  const auto s1 = approx_stats(m, TasdConfig::parse("2:4"));
  const auto s2 = approx_stats(m, TasdConfig::parse("2:4+2:8"));
  const auto s3 = approx_stats(m, TasdConfig::parse("2:4+2:8+2:16"));
  EXPECT_LE(s2.dropped_nnz, s1.dropped_nnz);
  EXPECT_LE(s3.dropped_nnz, s2.dropped_nnz);
  EXPECT_LE(s2.rel_frobenius_error, s1.rel_frobenius_error + 1e-12);
  EXPECT_LE(s3.rel_frobenius_error, s2.rel_frobenius_error + 1e-12);
}

TEST(ApproxStats, MismatchedDecompositionRejected) {
  Rng rng(74);
  const MatrixF m = random_dense(4, 8, Dist::kNormalStd1, rng);
  const MatrixF other = random_dense(4, 16, Dist::kNormalStd1, rng);
  const auto d = decompose(other, TasdConfig::parse("2:4"));
  EXPECT_THROW(approx_stats(m, d), Error);
}

TEST(ApproxStats, SparserMatrixDropsLess) {
  // Paper Fig. 17 takeaway 1: lower density -> smaller dropped fraction.
  Rng rng(75);
  const auto cfg = TasdConfig::parse("2:4+2:8");
  const MatrixF sparse_m =
      random_unstructured(64, 128, 0.1, Dist::kNormal, rng);
  const MatrixF dense_m =
      random_unstructured(64, 128, 0.7, Dist::kNormal, rng);
  EXPECT_LT(approx_stats(sparse_m, cfg).dropped_nnz_fraction(),
            approx_stats(dense_m, cfg).dropped_nnz_fraction());
}

}  // namespace
}  // namespace tasd
