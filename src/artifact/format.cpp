#include "artifact/format.hpp"

#include <array>

namespace tasd::artifact {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit)
      c = (c & 1U) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr auto kCrcTable = make_crc_table();

}  // namespace

std::uint32_t crc32(const unsigned char* data, std::size_t size,
                    std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xFFFFFFFFU;
  for (std::size_t i = 0; i < size; ++i)
    c = kCrcTable[(c ^ data[i]) & 0xFFU] ^ (c >> 8);
  return c ^ 0xFFFFFFFFU;
}

}  // namespace tasd::artifact
