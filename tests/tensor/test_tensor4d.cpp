#include "tensor/tensor4d.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tasd {
namespace {

TEST(Tensor4D, ShapeAndZeroInit) {
  Tensor4D t(2, 3, 4, 5);
  EXPECT_EQ(t.n(), 2u);
  EXPECT_EQ(t.c(), 3u);
  EXPECT_EQ(t.h(), 4u);
  EXPECT_EQ(t.w(), 5u);
  EXPECT_EQ(t.size(), 120u);
  for (float v : t.flat()) EXPECT_EQ(v, 0.0F);
}

TEST(Tensor4D, NchwLayout) {
  Tensor4D t(1, 2, 2, 2);
  t(0, 1, 1, 1) = 5.0F;
  // NCHW: last element of flat storage.
  EXPECT_EQ(t.flat()[7], 5.0F);
  t(0, 0, 0, 1) = 3.0F;
  EXPECT_EQ(t.flat()[1], 3.0F);
}

TEST(Tensor4D, AtBoundsCheck) {
  Tensor4D t(1, 1, 2, 2);
  EXPECT_THROW(t.at(1, 0, 0, 0), Error);
  EXPECT_THROW(t.at(0, 0, 2, 0), Error);
  EXPECT_NO_THROW(t.at(0, 0, 1, 1));
}

TEST(Tensor4D, NnzSparsity) {
  Tensor4D t(1, 1, 2, 2);
  t(0, 0, 0, 0) = 1.0F;
  EXPECT_EQ(t.nnz(), 1u);
  EXPECT_DOUBLE_EQ(t.sparsity(), 0.75);
}

TEST(Tensor4D, AsMatrixExtractsBatchItem) {
  Tensor4D t(2, 2, 1, 2);
  t(1, 0, 0, 0) = 1.0F;
  t(1, 1, 0, 1) = 2.0F;
  MatrixF m = t.as_matrix(1);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m(0, 0), 1.0F);
  EXPECT_EQ(m(1, 1), 2.0F);
  EXPECT_THROW(t.as_matrix(2), Error);
}

}  // namespace
}  // namespace tasd
