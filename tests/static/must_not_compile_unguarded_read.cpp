// MUST NOT COMPILE under -Wthread-safety -Werror: reads a
// TASD_GUARDED_BY field without holding its mutex
// (-Wthread-safety-analysis: "reading variable ... requires holding
// mutex").
#include "common/sync.hpp"

namespace {

class Counter {
 public:
  int racy_get() const {
    return value_;  // read without mu_ held: compile error
  }

 private:
  mutable tasd::Mutex mu_;
  int value_ TASD_GUARDED_BY(mu_) = 0;
};

}  // namespace

int probe() {
  Counter c;
  return c.racy_get();
}
