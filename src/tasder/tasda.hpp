// TASD-A: dynamic decomposition of activations (paper §4.3).
//
// Strategy: profile the model on calibration data, then for each eligible
// layer pick the most aggressive series whose approximated sparsity stays
// below (layer activation sparsity + α). For GELU/Swish layers (dense
// activations) the sparsity is replaced by (1 - pseudo-density), the
// paper's "beyond sparsity" heuristic.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dnn/calib.hpp"
#include "dnn/metrics.hpp"
#include "dnn/model.hpp"
#include "tasder/hw_profile.hpp"

namespace tasd::tasder {

/// TASD-A options.
struct TasdaOptions {
  double alpha = 0.05;              ///< aggressiveness hyper-parameter
  double quality_threshold = 0.99;  ///< 99 % rule
  bool use_p99_density = false;     ///< conservative: p99 instead of mean
};

/// Per-layer TASD-A decision.
struct TasdaLayerDecision {
  std::string layer_name;
  std::optional<TasdConfig> config;
  double act_sparsity_used = 0.0;  ///< S(Li) that drove the selection
  bool used_pseudo_density = false;
};

/// Result of a TASD-A run (configs applied to the model on return).
struct TasdaResult {
  std::vector<TasdaLayerDecision> decisions;
  double achieved_agreement = 1.0;
  double mac_fraction = 1.0;
  std::string strategy;
};

/// The sparsity-based selection rule: most aggressive config in
/// `candidates` (sorted most-aggressive-first) whose approximated
/// sparsity < sparsity + alpha; nullopt if even the least aggressive
/// one exceeds the budget.
std::optional<TasdConfig> select_tasda_config(
    const std::vector<TasdConfig>& candidates, double sparsity, double alpha);

/// Layer-wise TASD-A with a fixed alpha.
TasdaResult tasda_layer_wise(dnn::Model& model, const HwProfile& hw,
                             const dnn::EvalSet& calib,
                             const dnn::EvalSet& eval,
                             const std::vector<Index>& reference,
                             const TasdaOptions& opt = {});

/// Sweep alphas from aggressive to conservative and keep the most
/// aggressive result that satisfies the quality threshold.
TasdaResult tasda_layer_wise_auto(dnn::Model& model, const HwProfile& hw,
                                  const dnn::EvalSet& calib,
                                  const dnn::EvalSet& eval,
                                  const std::vector<Index>& reference,
                                  const TasdaOptions& opt = {});

/// Network-wise: one fixed config on all eligible layers (Fig. 14 sweep
/// helper).
TasdaResult tasda_apply_uniform(dnn::Model& model, const TasdConfig& cfg,
                                const dnn::EvalSet& eval,
                                const std::vector<Index>& reference);

}  // namespace tasd::tasder
