// GemmDispatch: the kernel registry every GEMM path routes through.
//
// All dense and N:M-compressed CPU kernels register here by name; callers
// pick one through an ExecPolicy (or take the default). This is the seam
// future backends (batched, sharded, SIMD-specialized) plug into without
// touching call sites, and what lets the benches sweep kernels and thread
// counts uniformly.
//
// Built-in dense kernels:
//   "tiled-parallel"  row-parallel, j-tiled, 4-wide k-unrolled (default)
//   "tiled-serial"    the same arithmetic on one thread
//   "reference"       the tensor/gemm_ref correctness oracle
// Built-in N:M kernels:
//   "row-parallel"    row-parallel compressed traversal (default)
//   "serial"          the same arithmetic on one thread
// Built-in batch kernels (dense and N:M, serving path):
//   "batch-packed"    pack the batch into one wide RHS and partition
//                     (output-row, batch-column) tiles over the pool
//                     (default)
//   "batch-loop"      per-item serial loop of the single-RHS core
//
// Every kernel partitions work by output row (batch kernels also by
// batch column) with no shared float accumulation, so all of them
// produce bit-identical results at every thread count. Batch kernels
// additionally preserve each output element's MAC order exactly as the
// single-RHS kernels execute it, so a batched call is bit-identical to
// looping the single-RHS kernel over the batch.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "sparse/nm_matrix.hpp"
#include "tensor/matrix.hpp"

namespace tasd::rt {

/// How a GEMM call should execute: which pool and which kernels. The
/// defaults (null pool, empty names) mean "the process default pool and
/// the registry's default kernels".
struct ExecPolicy {
  ThreadPool* pool = nullptr;
  std::string dense_kernel;
  std::string nm_kernel;
  std::string dense_batch_kernel;
  std::string nm_batch_kernel;
};

/// Resolve the pool an ExecPolicy designates.
ThreadPool& resolve_pool(const ExecPolicy& policy);

/// A dense kernel accumulates C += A * B using the given pool.
using DenseKernel = std::function<void(const MatrixF& a, const MatrixF& b,
                                       MatrixF& c, ThreadPool& pool)>;

/// An N:M kernel accumulates C += A * B for a compressed A.
using NmKernel =
    std::function<void(const sparse::NMSparseMatrix& a, const MatrixF& b,
                       MatrixF& c, ThreadPool& pool)>;

/// A batched dense kernel accumulates cs[i] += A * bs[i] for every item
/// of a batch of right-hand sides (items may have ragged widths). The
/// contract every registered kernel must keep: output bits identical to
/// looping the single-RHS kernel over the items, at every thread count.
using DenseBatchKernel =
    std::function<void(const MatrixF& a, std::span<const MatrixF> bs,
                       std::span<MatrixF> cs, ThreadPool& pool)>;

/// A batched N:M kernel accumulates cs[i] += A * bs[i] for compressed A,
/// under the same bit-exactness contract.
using NmBatchKernel =
    std::function<void(const sparse::NMSparseMatrix& a,
                       std::span<const MatrixF> bs, std::span<MatrixF> cs,
                       ThreadPool& pool)>;

/// Thread-safe named registry of GEMM kernels.
class GemmDispatch {
 public:
  /// Process-wide registry, pre-populated with the built-ins.
  static GemmDispatch& instance();

  void register_dense(const std::string& name, DenseKernel kernel);
  void register_nm(const std::string& name, NmKernel kernel);
  void register_dense_batch(const std::string& name, DenseBatchKernel kernel);
  void register_nm_batch(const std::string& name, NmBatchKernel kernel);
  void set_default_dense(const std::string& name);
  void set_default_nm(const std::string& name);
  void set_default_dense_batch(const std::string& name);
  void set_default_nm_batch(const std::string& name);

  /// Registered kernel names, sorted.
  [[nodiscard]] std::vector<std::string> dense_kernels() const;
  [[nodiscard]] std::vector<std::string> nm_kernels() const;
  [[nodiscard]] std::vector<std::string> dense_batch_kernels() const;
  [[nodiscard]] std::vector<std::string> nm_batch_kernels() const;
  [[nodiscard]] std::string default_dense() const;
  [[nodiscard]] std::string default_nm() const;
  [[nodiscard]] std::string default_dense_batch() const;
  [[nodiscard]] std::string default_nm_batch() const;

  /// Look up a kernel ("" = the default). Throws tasd::Error on unknown
  /// names.
  [[nodiscard]] DenseKernel dense(const std::string& name = {}) const;
  [[nodiscard]] NmKernel nm(const std::string& name = {}) const;
  [[nodiscard]] DenseBatchKernel dense_batch(const std::string& name = {}) const;
  [[nodiscard]] NmBatchKernel nm_batch(const std::string& name = {}) const;

 private:
  GemmDispatch();
  struct Impl;
  Impl* impl_;
};

// ------------------------------------------------------ row-range cores
// The serial units the kernels partition over; exposed so composite
// kernels (TASD series) and tests can drive exact row ranges.

/// Dense C += A*B restricted to output rows [row_begin, row_end):
/// j-tiled, 4-wide k-unrolled, every MAC executed (no zero skip).
void dense_gemm_rows(const MatrixF& a, const MatrixF& b, MatrixF& c,
                     Index row_begin, Index row_end);

/// Compressed N:M C += A*B restricted to output rows [row_begin,
/// row_end).
void nm_gemm_rows(const sparse::NMSparseMatrix& a, const MatrixF& b,
                  MatrixF& c, Index row_begin, Index row_end);

/// Dense C += A*B restricted to output rows [row_begin, row_end) and
/// output columns [col_begin, col_end). Per-element MAC order (k
/// ascending, 4-wide) is the same for every tile shape, so any disjoint
/// tiling of the output reproduces the full-range result bit-for-bit.
void dense_gemm_tile(const MatrixF& a, const MatrixF& b, MatrixF& c,
                     Index row_begin, Index row_end, Index col_begin,
                     Index col_end);

/// Compressed N:M C += A*B restricted to an (output-row, output-column)
/// tile, same bit-exactness property as dense_gemm_tile.
void nm_gemm_tile(const sparse::NMSparseMatrix& a, const MatrixF& b,
                  MatrixF& c, Index row_begin, Index row_end,
                  Index col_begin, Index col_end);

// Packed batch layout: items' columns laid side by side in one wide
// matrix, packed(r, off[i] + j) == item_i(r, j). Pack/unpack are exact
// copies, so callers that run many kernels over the same batch (e.g. a
// TASD series' term loop) can pack once, pass the packed pair through
// the batch kernels as a single-item batch, and unpack once.

/// Prefix sums of item widths; off.back() is the packed column count.
std::vector<Index> batch_offsets(std::span<const MatrixF> items);

/// Copy items (all with equal row counts) into one packed wide matrix.
MatrixF pack_batch(std::span<const MatrixF> items,
                   const std::vector<Index>& off);

/// Copy packed columns back out into the per-item matrices.
void unpack_batch(const MatrixF& packed, const std::vector<Index>& off,
                  std::span<MatrixF> items);

}  // namespace tasd::rt
