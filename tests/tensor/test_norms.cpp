#include "tensor/norms.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tasd {
namespace {

TEST(Norms, FrobeniusKnownValue) {
  MatrixF m(1, 2, {3.0F, 4.0F});
  EXPECT_DOUBLE_EQ(frobenius_norm(m), 5.0);
}

TEST(Norms, FrobeniusOfZeroMatrix) {
  MatrixF m(3, 3);
  EXPECT_DOUBLE_EQ(frobenius_norm(m), 0.0);
}

TEST(Norms, MagnitudeSumUsesAbs) {
  MatrixF m(1, 3, {-1.0F, 2.0F, -3.0F});
  EXPECT_DOUBLE_EQ(magnitude_sum(m), 6.0);
  EXPECT_DOUBLE_EQ(element_sum(m), -2.0);
}

TEST(Norms, MseKnownValue) {
  MatrixF a(1, 2, {1.0F, 2.0F});
  MatrixF b(1, 2, {3.0F, 2.0F});
  EXPECT_DOUBLE_EQ(mse(a, b), 2.0);  // (4 + 0) / 2
}

TEST(Norms, MseShapeMismatchThrows) {
  MatrixF a(1, 2);
  MatrixF b(2, 1);
  EXPECT_THROW(mse(a, b), Error);
}

TEST(Norms, RelativeErrorZeroForIdentical) {
  MatrixF a(2, 2, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(relative_frobenius_error(a, a), 0.0);
}

TEST(Norms, RelativeErrorOfZeroReference) {
  MatrixF zero(2, 2);
  MatrixF other(2, 2, 1.0F);
  EXPECT_DOUBLE_EQ(relative_frobenius_error(zero, zero), 0.0);
  EXPECT_TRUE(std::isinf(relative_frobenius_error(zero, other)));
}

TEST(Norms, RelativeErrorScaleInvariant) {
  MatrixF a(1, 2, {2.0F, 0.0F});
  MatrixF b(1, 2, {1.0F, 0.0F});
  // ||a-b||/||a|| = 1/2 regardless of global scaling.
  EXPECT_DOUBLE_EQ(relative_frobenius_error(a, b), 0.5);
  MatrixF a2 = a;
  a2 *= 10.0F;
  MatrixF b2 = b;
  b2 *= 10.0F;
  EXPECT_DOUBLE_EQ(relative_frobenius_error(a2, b2), 0.5);
}

TEST(Norms, AllcloseTolerances) {
  MatrixF a(1, 1, {1.0F});
  MatrixF b(1, 1, {1.0001F});
  EXPECT_TRUE(allclose(a, b, 1e-3, 0.0));
  EXPECT_FALSE(allclose(a, b, 1e-6, 1e-6));
}

TEST(Norms, AllcloseShapeMismatchIsFalse) {
  MatrixF a(1, 2);
  MatrixF b(2, 1);
  EXPECT_FALSE(allclose(a, b));
}

}  // namespace
}  // namespace tasd
