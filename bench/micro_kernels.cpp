// Kernel microbenchmarks: dense vs N:M-compressed vs TASD-series GEMM
// across the parallel execution layer's thread counts, plus
// decomposition and plan-cache throughput.
//
// Emits BENCH_kernels.json (schema tasd-bench-kernels-v2). Every
// parallel measurement is checked bit-exact against the serial result
// before it is recorded — a wrong-but-fast kernel fails loudly here.
//
// Usage: micro_kernels [output.json] [--quick]
#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/decompose.hpp"
#include "core/plan_cache.hpp"
#include "runtime/dense_gemm.hpp"
#include "runtime/nm_gemm.hpp"
#include "tensor/generator.hpp"

namespace {

using namespace tasd;

struct Entry {
  std::string kernel;
  Index m = 0, k = 0, n = 0;
  std::string config;
  double sparsity = 0.0;
  std::size_t threads = 1;
  double ms = 0.0;
  double gops = 0.0;
  double speedup_vs_serial = 1.0;
  bool bit_exact = true;
};

/// Run `make_result` at every thread count, timing it and checking the
/// output bit-exact against the serial (1-thread) result.
void sweep(const std::string& kernel, Index m, Index k, Index n,
           const std::string& config, double sparsity, double macs,
           int repeats, const std::vector<std::size_t>& thread_counts,
           const std::function<MatrixF(rt::ExecPolicy&)>& make_result,
           std::vector<Entry>& out) {
  double serial_ms = 0.0;
  MatrixF serial_result;
  for (std::size_t threads : thread_counts) {
    rt::ThreadPool pool(threads);
    rt::ExecPolicy policy;
    policy.pool = &pool;
    MatrixF result = make_result(policy);
    const double ms =
        time_ms_min(repeats, [&] { result = make_result(policy); });
    Entry e{kernel, m,  k,  n, config, sparsity, threads, ms,
            macs / (ms * 1e6),  // 1e9 ops/s from ms
            1.0, true};
    if (threads == thread_counts.front()) {
      serial_ms = ms;
      serial_result = std::move(result);
    } else {
      e.speedup_vs_serial = serial_ms / ms;
      e.bit_exact = (result == serial_result);
    }
    std::fprintf(stderr, "%-12s %4zux%-4zux%-4zu %-8s t=%zu  %8.3f ms%s\n",
                 kernel.c_str(), static_cast<std::size_t>(m),
                 static_cast<std::size_t>(k), static_cast<std::size_t>(n),
                 config.empty() ? "-" : config.c_str(), threads, e.ms,
                 e.bit_exact ? "" : "  ** NOT BIT-EXACT **");
    out.push_back(std::move(e));
  }
}

void write_json(const std::string& path, const std::vector<Entry>& entries) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::perror("micro_kernels: cannot open output");
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": \"tasd-bench-kernels-v2\",\n");
  std::fprintf(f, "  \"entries\": [\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::fprintf(
        f,
        "    {\"kernel\": \"%s\", \"m\": %zu, \"k\": %zu, \"n\": %zu, "
        "\"config\": \"%s\", \"sparsity\": %.6f, \"threads\": %zu, "
        "\"ms\": %.6f, \"gops\": %.6f, \"speedup_vs_serial\": %.6f, "
        "\"bit_exact\": %s}%s\n",
        e.kernel.c_str(), static_cast<std::size_t>(e.m),
        static_cast<std::size_t>(e.k), static_cast<std::size_t>(e.n),
        e.config.c_str(), e.sparsity, e.threads, e.ms, e.gops,
        e.speedup_vs_serial, e.bit_exact ? "true" : "false",
        i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_kernels.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else {
      out_path = arg;
    }
  }

  const int repeats = quick ? 1 : 3;
  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  const std::vector<Index> gemm_sizes =
      quick ? std::vector<Index>{128, 256} : std::vector<Index>{256, 512, 1024};

  std::vector<Entry> entries;
  Rng rng(9001);

  // Dense GEMM (every MAC executed).
  for (Index n : gemm_sizes) {
    const MatrixF a = random_dense(n, n, Dist::kNormalStd1, rng);
    const MatrixF b = random_dense(n, n, Dist::kNormalStd1, rng);
    sweep("dense_gemm", n, n, n, "", 0.0,
          2.0 * static_cast<double>(n) * n * n, repeats, thread_counts,
          [&](rt::ExecPolicy& p) { return rt::dense_gemm(a, b, p); },
          entries);
  }

  // 2:4-compressed GEMM over a 50 %-sparse operand.
  for (Index n : gemm_sizes) {
    const MatrixF dense = random_dense(n, n, Dist::kNormalStd1, rng);
    const auto d = decompose(dense, TasdConfig::parse("2:4"));
    const sparse::NMSparseMatrix a = d.terms[0].compressed();
    const MatrixF b = random_dense(n, n, Dist::kNormalStd1, rng);
    sweep("nm_gemm", n, n, n, "2:4", 0.5,
          2.0 * static_cast<double>(a.nnz()) * n, repeats, thread_counts,
          [&](rt::ExecPolicy& p) { return rt::nm_gemm(a, b, p); }, entries);
  }

  // TASD-series GEMM (4:8+1:8) over a 90 %-sparse operand, executed from
  // a cached DecompositionPlan exactly the way the engine runs it.
  for (Index n : gemm_sizes) {
    const MatrixF dense =
        random_unstructured(n, n, 0.1, Dist::kNormalStd1, rng);
    const auto plan =
        plan_cache().get_or_build(dense, TasdConfig::parse("4:8+1:8"));
    const rt::TasdSeriesGemm series(plan);
    const MatrixF b = random_dense(n, n, Dist::kNormalStd1, rng);
    sweep("tasd_gemm", n, n, n, "4:8+1:8", 0.9,
          2.0 * static_cast<double>(series.nnz()) * n, repeats,
          thread_counts,
          [&](rt::ExecPolicy& p) { return series.multiply(b, p); }, entries);
  }

  // Decomposition throughput: cold build_plan vs plan-cache hit.
  {
    const Index sz = quick ? 256 : 1024;
    const auto cfg = TasdConfig::parse("4:8+1:8");
    const MatrixF m =
        random_unstructured(sz, sz, 0.3, Dist::kNormalStd1, rng);
    const double cold_ms = time_ms_min(repeats, [&] {
      const auto p = build_plan(m, cfg);
      (void)p;
    });
    entries.push_back({"decompose_cold", sz, sz, 0, cfg.str(), 0.7, 1,
                       cold_ms, 0.0, 1.0, true});
    plan_cache().get_or_build(m, cfg);  // warm
    const double hit_ms = time_ms_min(repeats, [&] {
      const auto p = plan_cache().get_or_build(m, cfg);
      (void)p;
    });
    entries.push_back({"decompose_cached", sz, sz, 0, cfg.str(), 0.7, 1,
                       hit_ms, 0.0, cold_ms / std::max(hit_ms, 1e-9), true});
  }

  write_json(out_path, entries);
  const bool all_exact =
      std::all_of(entries.begin(), entries.end(),
                  [](const Entry& e) { return e.bit_exact; });
  std::fprintf(stderr, "wrote %s (%zu entries)%s\n", out_path.c_str(),
               entries.size(), all_exact ? "" : "  ** EXACTNESS FAILURES **");
  return all_exact ? 0 : 1;
}
