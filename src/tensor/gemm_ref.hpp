// Reference (correctness-oracle) GEMM. The optimized kernels live in
// src/runtime/ behind the GemmDispatch registry (which also exposes this
// oracle as the "reference" dense kernel); everything is validated
// against this implementation.
#pragma once

#include "tensor/matrix.hpp"

namespace tasd {

/// C = A * B. A is MxK, B is KxN; returns MxN.
MatrixF gemm_ref(const MatrixF& a, const MatrixF& b);

/// C += A * B into an existing accumulator (shapes checked).
void gemm_ref_accumulate(const MatrixF& a, const MatrixF& b, MatrixF& c);

/// Row-range core of gemm_ref_accumulate: accumulate output rows
/// [row_begin, row_end) only. Rows are independent, so running disjoint
/// ranges on different threads is bit-identical to the serial loop —
/// this is the unit the parallel execution layer partitions over.
void gemm_ref_accumulate_rows(const MatrixF& a, const MatrixF& b, MatrixF& c,
                              Index row_begin, Index row_end);

}  // namespace tasd
