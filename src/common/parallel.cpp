#include "common/parallel.hpp"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <exception>
#include <string>

#include "common/error.hpp"
#include "common/sync.hpp"

namespace tasd::rt {

namespace {

// True while the current thread is executing a parallel_for chunk;
// nested parallel_for calls from such a thread run inline.
thread_local bool t_in_parallel_region = false;

}  // namespace

struct ThreadPool::Impl {
  Mutex mutex;
  CondVar work_ready;  ///< signaled on enqueue and on stop
  std::deque<std::function<void()>> queue TASD_GUARDED_BY(mutex);
  bool stopping TASD_GUARDED_BY(mutex) = false;
  /// Written by the constructor before any worker can observe it and
  /// read by the destructor after stop; never touched concurrently.
  std::vector<std::thread> workers;

  void worker_loop() TASD_EXCLUDES(mutex) {
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(mutex);
        while (!stopping && queue.empty()) work_ready.wait(mutex);
        if (stopping && queue.empty()) return;
        task = std::move(queue.front());
        queue.pop_front();
      }
      task();
    }
  }
};

ThreadPool::ThreadPool(std::size_t num_threads)
    : threads_(std::max<std::size_t>(1, num_threads)) {
  if (threads_ == 1) return;
  impl_ = new Impl;
  impl_->workers.reserve(threads_ - 1);
  try {
    for (std::size_t i = 0; i + 1 < threads_; ++i)
      impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  } catch (...) {
    // Thread spawn failed mid-way: stop and join the workers that did
    // start, free the impl, and surface the original error.
    {
      MutexLock lock(impl_->mutex);
      impl_->stopping = true;
    }
    impl_->work_ready.notify_all();
    for (auto& w : impl_->workers) w.join();
    delete impl_;
    impl_ = nullptr;
    throw;
  }
}

ThreadPool::~ThreadPool() {
  if (!impl_) return;
  {
    MutexLock lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->work_ready.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

std::size_t ThreadPool::workers() const {
  return impl_ ? impl_->workers.size() : 0;
}

std::vector<std::size_t> ThreadPool::partition(std::size_t len,
                                               std::size_t grain) const {
  const std::size_t g = std::max<std::size_t>(1, grain);
  std::size_t chunks = std::min(threads_, len / g);
  chunks = std::max<std::size_t>(1, chunks);
  // Boundaries at floor(i*len/chunks): contiguous, exhaustive, and a pure
  // function of (len, grain, num_threads).
  std::vector<std::size_t> bounds(chunks + 1);
  for (std::size_t i = 0; i <= chunks; ++i) bounds[i] = i * len / chunks;
  return bounds;
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (end <= begin) return;
  const std::size_t len = end - begin;
  const auto bounds = partition(len, grain);
  const std::size_t chunks = bounds.size() - 1;

  if (!impl_ || chunks == 1 || t_in_parallel_region) {
    // Serial pool, degenerate range, or nested call: run inline. The
    // chunk boundaries (and therefore the per-chunk arithmetic) are the
    // same ones the parallel path would use. Save/restore the region
    // flag so a nested call does not clear the outer region's state.
    const bool was_in_region = t_in_parallel_region;
    t_in_parallel_region = true;
    try {
      for (std::size_t i = 0; i < chunks; ++i)
        fn(begin + bounds[i], begin + bounds[i + 1]);
    } catch (...) {
      t_in_parallel_region = was_in_region;
      throw;
    }
    t_in_parallel_region = was_in_region;
    return;
  }

  struct Sync {
    Mutex mutex;
    CondVar done;  ///< signaled when the last worker chunk finishes
    std::size_t remaining TASD_GUARDED_BY(mutex) = 0;
    std::exception_ptr error TASD_GUARDED_BY(mutex);
  } sync;
  {
    MutexLock lock(sync.mutex);
    sync.remaining = chunks - 1;
  }

  auto run_chunk = [&](std::size_t i) {
    const bool was_in_region = t_in_parallel_region;
    t_in_parallel_region = true;
    try {
      fn(begin + bounds[i], begin + bounds[i + 1]);
    } catch (...) {
      MutexLock lock(sync.mutex);
      if (!sync.error) sync.error = std::current_exception();
    }
    t_in_parallel_region = was_in_region;
  };

  {
    MutexLock lock(impl_->mutex);
    for (std::size_t i = 1; i < chunks; ++i) {
      impl_->queue.emplace_back([&, i] {
        run_chunk(i);
        MutexLock done_lock(sync.mutex);
        if (--sync.remaining == 0) sync.done.notify_one();
      });
    }
  }
  impl_->work_ready.notify_all();

  // The caller executes chunk 0, then waits for the workers.
  run_chunk(0);
  {
    MutexLock lock(sync.mutex);
    while (sync.remaining != 0) sync.done.wait(sync.mutex);
    if (sync.error) std::rethrow_exception(sync.error);
  }
}

TaskGraph::TaskId TaskGraph::add(std::function<void()> fn,
                                 const std::vector<TaskId>& deps) {
  TASD_CHECK_MSG(!ran_, "TaskGraph is single-use; add() after run()");
  const TaskId id = nodes_.size();
  // Validate before mutating: a rejected add must leave the graph as it
  // was (no node with a dependency that will never be released).
  for (const TaskId dep : deps) {
    TASD_CHECK_MSG(dep < id, "task " << id << " depends on task " << dep
                                     << ", which has not been added yet");
  }
  Node node;
  node.fn = std::move(fn);
  node.unmet_deps = deps.size();
  nodes_.push_back(std::move(node));
  for (const TaskId dep : deps) nodes_[dep].successors.push_back(id);
  return id;
}

void TaskGraph::run(ThreadPool& pool) {
  TASD_CHECK_MSG(!ran_, "TaskGraph is single-use; run() already called");
  ran_ = true;
  if (nodes_.empty()) return;

  // Shared scheduling state. Workers claim ready tasks under the mutex,
  // execute them unlocked, then release successors. Because every
  // dependency precedes its dependents (deps < id), whenever unfinished
  // tasks remain either one is ready or one is in flight — so the wait
  // below always terminates.
  struct Sched {
    Mutex mutex;
    CondVar ready_cv;  ///< signaled when tasks become ready or all done
    std::deque<TaskId> ready TASD_GUARDED_BY(mutex);
    std::size_t done TASD_GUARDED_BY(mutex) = 0;
    std::exception_ptr error TASD_GUARDED_BY(mutex);
  } sched;
  const std::size_t total = nodes_.size();
  {
    MutexLock lock(sched.mutex);
    for (TaskId id = 0; id < nodes_.size(); ++id)
      if (nodes_[id].unmet_deps == 0) sched.ready.push_back(id);
  }

  const std::size_t workers = std::min(pool.num_threads(), total);
  pool.parallel_for(0, workers, 1, [&](std::size_t, std::size_t) {
    MutexLock lock(sched.mutex);
    for (;;) {
      while (sched.ready.empty() && sched.done != total)
        sched.ready_cv.wait(sched.mutex);
      if (sched.ready.empty()) return;  // done == total
      const TaskId id = sched.ready.front();
      sched.ready.pop_front();
      // After a failure the remaining tasks are skipped, not executed;
      // their successors are still released so done reaches total.
      const bool skip = sched.error != nullptr;
      if (!skip) {
        lock.unlock();
        try {
          nodes_[id].fn();
          lock.lock();
        } catch (...) {
          lock.lock();
          if (!sched.error) sched.error = std::current_exception();
        }
      }
      ++sched.done;
      for (const TaskId succ : nodes_[id].successors)
        if (--nodes_[succ].unmet_deps == 0) sched.ready.push_back(succ);
      if (sched.done == total || !sched.ready.empty())
        sched.ready_cv.notify_all();
    }
  });
  std::exception_ptr error;
  {
    MutexLock lock(sched.mutex);
    error = sched.error;
  }
  if (error) std::rethrow_exception(error);
}

std::size_t default_num_threads() {
  static const std::size_t cached = [] {
    if (const char* env = std::getenv("TASD_NUM_THREADS")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      TASD_CHECK_MSG(end != env && *end == '\0' && v >= 0,
                     "TASD_NUM_THREADS must be a non-negative integer, got '"
                         << env << "'");
      if (v > 0) return static_cast<std::size_t>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hw == 0 ? 1 : hw);
  }();
  return cached;
}

ThreadPool& default_pool() {
  static ThreadPool pool(default_num_threads());
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  default_pool().parallel_for(begin, end, grain, fn);
}

}  // namespace tasd::rt
