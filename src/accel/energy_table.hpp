// Energy and bandwidth constants for the analytical accelerator model.
//
// Every architecture in the comparison (TC, DSTC, TTC-*) shares this
// table — the paper fixes the memory hierarchy and PE count across
// designs for fairness (§5.1). Values are picojoules per *element*
// (4-byte float) accessed, in the spirit of Accelergy/Sparseloop component
// tables; they are representative ratios (DRAM ≫ L2 ≫ L1 ≫ RF ≫ MAC), not
// a specific technology node. Only ratios matter for the normalized
// EDP/latency/energy results.
#pragma once

namespace tasd::accel {

/// Per-access energies (pJ / element) and machine constants.
struct EnergyTable {
  double mac = 1.0;        ///< one multiply-accumulate
  double rf = 0.15;        ///< register-file access
  double l1 = 1.2;         ///< L1 scratchpad access (per engine)
  double l2 = 3.5;         ///< shared L2 scratchpad access
  double dram = 56.0;      ///< DRAM access
  double tasd_unit = 0.25; ///< TASD-unit comparator pass per element

  /// DSTC-style unstructured overheads: every effectual MAC's partial
  /// product takes an accumulation-buffer round-trip, and compressed
  /// operands carry coordinate metadata.
  double dstc_accum_buffer = 1.5;  ///< per effectual MAC
  double dstc_metadata_factor = 1.45;  ///< operand traffic multiplier

  /// DRAM bandwidth in elements per cycle (4B each).
  double dram_elems_per_cycle = 32.0;

  /// PE-array utilization of the unstructured design (workload imbalance
  /// across rows; paper §2.3 cites imbalance as a known DSTC cost).
  double dstc_utilization = 0.50;
};

/// The default table used by all benches.
inline constexpr EnergyTable kDefaultEnergy{};

}  // namespace tasd::accel
