// Dense row-major matrix, the workhorse value type of the library.
//
// Design notes:
//  * Value semantics (copyable, movable); no views that outlive storage.
//  * Row-major so a "block of M consecutive elements in a row" — the unit
//    of N:M structured sparsity — is contiguous in memory.
//  * Header-only template; instantiated in practice as Matrix<float>.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace tasd {

using Index = std::size_t;

/// Dense row-major matrix over an arithmetic element type.
template <typename T>
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(Index rows, Index cols)
      : rows_(rows), cols_(cols), data_(rows * cols, T{}) {}

  /// rows x cols matrix filled with `fill`.
  Matrix(Index rows, Index cols, T fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Build from a row-major flat initializer; data.size() must equal
  /// rows*cols.
  Matrix(Index rows, Index cols, std::vector<T> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    TASD_CHECK_MSG(data_.size() == rows_ * cols_,
                   "flat data size " << data_.size() << " != " << rows_ << "x"
                                     << cols_);
  }

  [[nodiscard]] Index rows() const { return rows_; }
  [[nodiscard]] Index cols() const { return cols_; }
  [[nodiscard]] Index size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  /// Unchecked element access (hot paths).
  T& operator()(Index r, Index c) { return data_[r * cols_ + c]; }
  const T& operator()(Index r, Index c) const { return data_[r * cols_ + c]; }

  /// Bounds-checked element access.
  T& at(Index r, Index c) {
    TASD_CHECK_MSG(r < rows_ && c < cols_,
                   "index (" << r << "," << c << ") out of " << rows_ << "x"
                             << cols_);
    return (*this)(r, c);
  }
  const T& at(Index r, Index c) const {
    TASD_CHECK_MSG(r < rows_ && c < cols_,
                   "index (" << r << "," << c << ") out of " << rows_ << "x"
                             << cols_);
    return (*this)(r, c);
  }

  /// Contiguous row view.
  std::span<T> row(Index r) {
    TASD_CHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const T> row(Index r) const {
    TASD_CHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  /// Whole-storage views.
  std::span<T> flat() { return {data_.data(), data_.size()}; }
  std::span<const T> flat() const { return {data_.data(), data_.size()}; }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  /// Elementwise addition; shapes must match.
  Matrix& operator+=(const Matrix& o) {
    check_same_shape(o);
    for (Index i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
    return *this;
  }

  /// Elementwise subtraction; shapes must match.
  Matrix& operator-=(const Matrix& o) {
    check_same_shape(o);
    for (Index i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
    return *this;
  }

  /// Scalar scaling.
  Matrix& operator*=(T s) {
    for (auto& v : data_) v *= s;
    return *this;
  }

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }

  /// Exact elementwise equality (useful for decomposition invariants where
  /// values are moved, never recomputed).
  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

  /// Transposed copy.
  [[nodiscard]] Matrix transposed() const {
    Matrix t(cols_, rows_);
    for (Index r = 0; r < rows_; ++r)
      for (Index c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    return t;
  }

  /// Number of non-zero elements.
  [[nodiscard]] Index nnz() const {
    Index n = 0;
    for (const auto& v : data_)
      if (v != T{}) ++n;
    return n;
  }

  /// Fraction of zero elements in [0,1]; 0 for an empty matrix.
  [[nodiscard]] double sparsity() const {
    if (data_.empty()) return 0.0;
    return 1.0 - static_cast<double>(nnz()) / static_cast<double>(size());
  }

 private:
  void check_same_shape(const Matrix& o) const {
    TASD_CHECK_MSG(rows_ == o.rows_ && cols_ == o.cols_,
                   "shape mismatch: " << rows_ << "x" << cols_ << " vs "
                                      << o.rows_ << "x" << o.cols_);
  }

  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<T> data_;
};

using MatrixF = Matrix<float>;
using MatrixD = Matrix<double>;

}  // namespace tasd
