// Quickstart: decompose an unstructured sparse matrix into a TASD series
// and execute an approximated matrix multiplication — the paper's Fig. 4
// walked end to end through the public API.
//
//   build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "artifact/artifact.hpp"
#include "common/table.hpp"
#include "core/approx_stats.hpp"
#include "core/tasd_gemm.hpp"
#include "dnn/layer_binding.hpp"
#include "runtime/compiled_network.hpp"
#include "runtime/nm_gemm.hpp"
#include "tensor/gemm_ref.hpp"
#include "tensor/norms.hpp"

using namespace tasd;

namespace {

void print_matrix(const char* label, const MatrixF& m) {
  std::cout << label << ":\n";
  for (Index r = 0; r < m.rows(); ++r) {
    for (Index c = 0; c < m.cols(); ++c)
      std::cout << ' ' << static_cast<int>(m(r, c));
    std::cout << '\n';
  }
}

}  // namespace

int main() {
  print_banner("TASD quickstart");

  // The paper's 2x8 example matrix (Fig. 4).
  const MatrixF a(2, 8,
                  {1, 3, 0, 0, 2, 4, 4, 1,
                   2, 0, 0, 0, 0, 3, 1, 4});
  print_matrix("A (37.5% sparse, unstructured)", a);

  // 1. Decompose into a 2:4 + 2:8 series.
  const TasdConfig cfg = TasdConfig::parse("2:4+2:8");
  const Decomposition d = decompose(a, cfg);
  print_matrix("\nterm 1 (2:4 view)", d.terms[0].dense);
  print_matrix("\nterm 2 (2:8 view of the residual)", d.terms[1].dense);
  std::cout << "\nlossless: " << (d.lossless() ? "yes" : "no")
            << " (A == term1 + term2 exactly)\n";

  // 2. Quality statistics of the one-term approximation.
  const auto one_term = approx_stats(a, TasdConfig::parse("2:4"));
  std::cout << "\nwith one 2:4 term only: keeps "
            << TextTable::pct(one_term.nnz_coverage()) << " of non-zeros, "
            << TextTable::pct(one_term.magnitude_coverage())
            << " of magnitude (paper: 70% / 84%)\n";

  // 3. Approximated GEMM via the distributive property.
  MatrixF b(8, 3);
  for (Index r = 0; r < 8; ++r)
    for (Index c = 0; c < 3; ++c)
      b(r, c) = static_cast<float>((r + c) % 3) - 1.0F;
  const MatrixF exact = gemm_ref(a, b);
  const MatrixF approx = tasd_gemm(a, b, TasdConfig::parse("2:4"));
  std::cout << "\none-term GEMM relative error: "
            << relative_frobenius_error(exact, approx) << '\n';

  // 4. The compressed structured kernel a sparse tensor core would run.
  const rt::TasdSeriesGemm series(d);
  const MatrixF hw_result = series.multiply(b);
  std::cout << "two-term compressed-kernel error vs exact: "
            << relative_frobenius_error(exact, hw_result)
            << " (lossless series)\n"
            << "stored non-zeros across terms: " << series.nnz() << " of "
            << a.size() << " slots\n";

  // 5. Compile once, execute many (§5.5 deployment): bind A's series into
  // an immutable artifact whose plan is decomposed exactly once, then
  // serve right-hand sides through it repeatedly.
  std::vector<dnn::LayerBinding> bindings(1);
  bindings[0].name = "fig4";
  bindings[0].weight = a;
  bindings[0].positions = b.cols();
  bindings[0].config = cfg;
  const rt::CompiledNetwork engine =
      rt::compile("quickstart", std::move(bindings), {});
  const MatrixF served = engine.run(0, b);
  const auto batch_out = engine.run_batch(0, std::vector<MatrixF>{b, b});
  // run() must be bit-exact to the direct series multiply under the
  // artifact's resolved kernel selection ("auto" binds the AVX2 kernels
  // when the CPU supports them, the scalar tiled kernels otherwise).
  const bool run_exact = served == series.multiply(b, engine.policy());
  const bool batch_exact = batch_out[0] == served && batch_out[1] == served;
  std::cout << "\ncompiled artifact: " << engine.layer_count() << " layer, "
            << engine.plan_bytes() << " plan bytes resident ("
            << engine.artifact_bytes() << " with weights); kernels: "
            << engine.options().dense_kernel << " / "
            << engine.options().nm_kernel << "; run() == "
            << "direct series multiply: "
            << (run_exact ? "bit-exact" : "MISMATCH")
            << ", run_batch() == run(): "
            << (batch_exact ? "bit-exact" : "MISMATCH") << '\n';

  // 6. Save the artifact and reload it cold — the deployment hand-off.
  // load_artifact() rebuilds the plan from the serialized compressed
  // terms (zero decompositions) and must reproduce run() bit-for-bit.
  const std::string path = "quickstart.tasdart";
  rt::save_artifact(engine, path);
  const rt::CompiledNetwork reloaded = rt::load_artifact(path);
  const bool reload_exact = reloaded.run(0, b) == served;
  std::cout << "saved " << rt::inspect_artifact(path).file_bytes
            << "-byte artifact; reloaded run() == saved run(): "
            << (reload_exact ? "bit-exact" : "MISMATCH") << '\n';
  std::remove(path.c_str());
  return run_exact && batch_exact && reload_exact ? 0 : 1;
}
