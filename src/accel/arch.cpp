#include "accel/arch.hpp"

#include <algorithm>

namespace tasd::accel {

int ArchConfig::block_size() const {
  int m = 0;
  for (const auto& p : supported_patterns) m = std::max(m, p.m);
  return m;
}

bool ArchConfig::supports(const TasdConfig& cfg) const {
  if (kind != HwKind::kTTC) return false;
  if (static_cast<int>(cfg.terms.size()) > max_tasd_terms) return false;
  for (const auto& t : cfg.terms) {
    const bool found =
        std::find(supported_patterns.begin(), supported_patterns.end(), t) !=
        supported_patterns.end();
    if (!found) return false;
  }
  return !cfg.terms.empty();
}

ArchConfig ArchConfig::dense_tc() {
  ArchConfig a;
  a.name = "TC";
  a.kind = HwKind::kDenseTC;
  return a;
}

ArchConfig ArchConfig::dstc() {
  ArchConfig a;
  a.name = "DSTC";
  a.kind = HwKind::kDSTC;
  return a;
}

ArchConfig ArchConfig::ttc_stc_m4() {
  ArchConfig a;
  a.name = "TTC-STC-M4";
  a.kind = HwKind::kTTC;
  a.supported_patterns = {sparse::NMPattern(2, 4)};
  a.max_tasd_terms = 1;
  a.has_tasd_units = true;
  return a;
}

ArchConfig ArchConfig::ttc_stc_m8() {
  ArchConfig a;
  a.name = "TTC-STC-M8";
  a.kind = HwKind::kTTC;
  a.supported_patterns = {sparse::NMPattern(4, 8)};
  a.max_tasd_terms = 1;
  a.has_tasd_units = true;
  return a;
}

ArchConfig ArchConfig::ttc_vegeta_m4() {
  ArchConfig a;
  a.name = "TTC-VEGETA-M4";
  a.kind = HwKind::kTTC;
  a.supported_patterns = {sparse::NMPattern(1, 4), sparse::NMPattern(2, 4)};
  a.max_tasd_terms = 2;
  a.has_tasd_units = true;
  return a;
}

ArchConfig ArchConfig::ttc_vegeta_m8() {
  ArchConfig a;
  a.name = "TTC-VEGETA-M8";
  a.kind = HwKind::kTTC;
  a.supported_patterns = {sparse::NMPattern(1, 8), sparse::NMPattern(2, 8),
                          sparse::NMPattern(4, 8)};
  a.max_tasd_terms = 2;
  a.has_tasd_units = true;
  return a;
}

ArchConfig ArchConfig::vegeta_m8_no_tasd() {
  ArchConfig a = ttc_vegeta_m8();
  a.name = "VEGETA-M8";
  a.has_tasd_units = false;
  return a;
}

std::vector<ArchConfig> ArchConfig::paper_designs() {
  return {dense_tc(),   dstc(),          ttc_stc_m4(),
          ttc_stc_m8(), ttc_vegeta_m4(), ttc_vegeta_m8()};
}

}  // namespace tasd::accel
