#include "accel/tasd_unit.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tasd::accel {

double TasdUnitModel::stall_factor() const {
  if (available_units == 0) return 1.0;
  return std::max(1.0,
                  required_units / static_cast<double>(available_units));
}

TasdUnitModel tasd_unit_model(const ArchConfig& arch, const TasdConfig& cfg) {
  TASD_CHECK_MSG(arch.has_tasd_units,
                 arch.name << " has no TASD units; TASD-A unavailable");
  TASD_CHECK_MSG(!cfg.terms.empty(), "empty TASD config");
  const int m = cfg.terms.front().m;
  for (const auto& t : cfg.terms)
    TASD_CHECK_MSG(t.m == m, "TASD-A series must share one block size");

  TasdUnitModel model;
  // PE array emits pe_cols output elements per cycle per engine.
  model.blocks_per_cycle =
      static_cast<double>(arch.pe_cols) / static_cast<double>(m);
  // Extraction takes one cycle per kept element plus one emit cycle
  // (paper: 4:8+1:8 -> 5 cycles/block).
  model.cycles_per_block = cfg.extraction_cycles_per_block() + 1;
  model.required_units =
      model.blocks_per_cycle * static_cast<double>(model.cycles_per_block);
  model.available_units = arch.tasd_units_per_engine;
  return model;
}

TasdAreaModel tasd_area_model(const ArchConfig& arch) {
  TasdAreaModel a;
  // Gate-count estimates (NAND2-equivalent), representative of a 16-bit
  // datapath:
  //   fp16 magnitude comparator  ~ 120 gates
  //   2:1 16-bit mux             ~ 50 gates
  //   fp16 MAC (mul + add + acc) ~ 4200 gates
  //   per-PE operand registers   ~ 800 gates
  const double cmp_gates = 120.0;
  const double mux_gates = 50.0;
  const double mac_gates = 4200.0;
  const double pe_reg_gates = 800.0;

  const int m = std::max(arch.block_size(), 2);
  // One TASD unit: a comparator tree over an M-block ((M-1) comparators,
  // (M-1) muxes) plus an M-entry index register (~16 gates/bit * log2M).
  const double unit_gates =
      static_cast<double>(m - 1) * (cmp_gates + mux_gates) + 16.0 * 8.0;
  a.tasd_unit_gates =
      unit_gates * static_cast<double>(arch.tasd_units_per_engine);
  a.pe_array_gates = static_cast<double>(arch.pe_rows * arch.pe_cols) *
                     (mac_gates + pe_reg_gates);
  return a;
}

}  // namespace tasd::accel
