// Tests for the decomposition-aware-dataflow ablation knob.
#include <gtest/gtest.h>

#include "accel/perf_model.hpp"

namespace tasd::accel {
namespace {

dnn::GemmWorkload layer() {
  dnn::GemmWorkload l;
  l.m = 256;
  l.k = 2304;
  l.n = 784;
  l.weight_density = 0.05;
  l.act_density = 0.4;
  return l;
}

TEST(DataflowAblation, NaiveChargesDramForExtraTerms) {
  auto aware = ArchConfig::ttc_vegeta_m8();
  auto naive = ArchConfig::ttc_vegeta_m8();
  naive.decomposition_aware_dataflow = false;
  LayerExecution exec{layer(), TasdConfig::parse("4:8+1:8"), {}, {}};
  const auto s_aware = simulate_layer(aware, exec);
  const auto s_naive = simulate_layer(naive, exec);
  EXPECT_GT(s_naive.energy_pj[static_cast<std::size_t>(Component::kDram)],
            s_aware.energy_pj[static_cast<std::size_t>(Component::kDram)]);
  EXPECT_GT(s_naive.total_energy(), s_aware.total_energy());
}

TEST(DataflowAblation, SingleTermUnaffected) {
  auto aware = ArchConfig::ttc_vegeta_m8();
  auto naive = ArchConfig::ttc_vegeta_m8();
  naive.decomposition_aware_dataflow = false;
  LayerExecution exec{layer(), TasdConfig::parse("2:8"), {}, {}};
  EXPECT_DOUBLE_EQ(simulate_layer(aware, exec).total_energy(),
                   simulate_layer(naive, exec).total_energy());
}

TEST(DataflowAblation, ComputeCyclesUnchanged) {
  // The dataflow is an energy/traffic optimization; slot-loop cycles are
  // identical either way.
  auto aware = ArchConfig::ttc_vegeta_m8();
  auto naive = ArchConfig::ttc_vegeta_m8();
  naive.decomposition_aware_dataflow = false;
  LayerExecution exec{layer(), TasdConfig::parse("4:8+2:8"), {}, {}};
  EXPECT_DOUBLE_EQ(simulate_layer(aware, exec).compute_cycles,
                   simulate_layer(naive, exec).compute_cycles);
}

TEST(DataflowAblation, NaiveCanBecomeMemoryBound) {
  // The extra DRAM traffic raises memory cycles; a layer near the
  // roofline can flip to memory-bound under the naive dataflow.
  auto naive = ArchConfig::ttc_vegeta_m8();
  naive.decomposition_aware_dataflow = false;
  dnn::GemmWorkload l = layer();
  l.n = 49;  // small reuse: memory-heavy
  LayerExecution exec{l, TasdConfig::parse("1:8"), {}, {}};
  // With a one-term config both designs match even here.
  auto aware = ArchConfig::ttc_vegeta_m8();
  EXPECT_DOUBLE_EQ(simulate_layer(aware, exec).memory_cycles,
                   simulate_layer(naive, exec).memory_cycles);
  LayerExecution exec2{l, TasdConfig::parse("4:8+1:8"), {}, {}};
  EXPECT_GT(simulate_layer(naive, exec2).memory_cycles,
            simulate_layer(aware, exec2).memory_cycles);
}

}  // namespace
}  // namespace tasd::accel
