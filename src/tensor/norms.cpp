#include "tensor/norms.hpp"

#include <cmath>
#include <limits>

namespace tasd {

double frobenius_norm(const MatrixF& m) {
  double acc = 0.0;
  for (float v : m.flat()) acc += static_cast<double>(v) * v;
  return std::sqrt(acc);
}

double magnitude_sum(const MatrixF& m) {
  double acc = 0.0;
  for (float v : m.flat()) acc += std::fabs(static_cast<double>(v));
  return acc;
}

double element_sum(const MatrixF& m) {
  double acc = 0.0;
  for (float v : m.flat()) acc += static_cast<double>(v);
  return acc;
}

double mse(const MatrixF& a, const MatrixF& b) {
  TASD_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  if (a.empty()) return 0.0;
  double acc = 0.0;
  auto fa = a.flat();
  auto fb = b.flat();
  for (Index i = 0; i < fa.size(); ++i) {
    const double d = static_cast<double>(fa[i]) - fb[i];
    acc += d * d;
  }
  return acc / static_cast<double>(fa.size());
}

double relative_frobenius_error(const MatrixF& a, const MatrixF& b) {
  TASD_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  const double ref = frobenius_norm(a);
  const double diff = frobenius_norm(a - b);
  if (ref == 0.0) {
    return diff == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return diff / ref;
}

bool allclose(const MatrixF& a, const MatrixF& b, double rtol, double atol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  auto fa = a.flat();
  auto fb = b.flat();
  for (Index i = 0; i < fa.size(); ++i) {
    const double diff = std::fabs(static_cast<double>(fa[i]) - fb[i]);
    if (diff > atol + rtol * std::fabs(static_cast<double>(fa[i])))
      return false;
  }
  return true;
}

}  // namespace tasd
