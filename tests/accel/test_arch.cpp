#include "accel/arch.hpp"

#include <gtest/gtest.h>

namespace tasd::accel {
namespace {

TEST(Arch, PaperDesignRoster) {
  const auto designs = ArchConfig::paper_designs();
  ASSERT_EQ(designs.size(), 6u);
  EXPECT_EQ(designs[0].name, "TC");
  EXPECT_EQ(designs[1].name, "DSTC");
  EXPECT_EQ(designs[5].name, "TTC-VEGETA-M8");
}

TEST(Arch, AllDesignsShareComputeBudget) {
  // Paper §5.1: same PEs across designs for fairness.
  const auto designs = ArchConfig::paper_designs();
  for (const auto& d : designs)
    EXPECT_EQ(d.macs_per_cycle(), designs[0].macs_per_cycle());
}

TEST(Arch, VegetaM8SupportsTable2Series) {
  const auto a = ArchConfig::ttc_vegeta_m8();
  EXPECT_TRUE(a.supports(TasdConfig::parse("1:8")));
  EXPECT_TRUE(a.supports(TasdConfig::parse("4:8+1:8")));
  EXPECT_TRUE(a.supports(TasdConfig::parse("4:8+2:8")));
  EXPECT_FALSE(a.supports(TasdConfig::parse("3:8")));       // not native
  EXPECT_FALSE(a.supports(TasdConfig::parse("2:4")));       // wrong M
  EXPECT_FALSE(a.supports(TasdConfig::parse("4:8+2:8+1:8")));  // > 2 terms
}

TEST(Arch, StcM4SingleTermOnly) {
  const auto a = ArchConfig::ttc_stc_m4();
  EXPECT_TRUE(a.supports(TasdConfig::parse("2:4")));
  EXPECT_FALSE(a.supports(TasdConfig::parse("1:4")));
  EXPECT_FALSE(a.supports(TasdConfig::parse("2:4+2:4")));
}

TEST(Arch, DenseAndDstcSupportNoSeries) {
  EXPECT_FALSE(ArchConfig::dense_tc().supports(TasdConfig::parse("2:4")));
  EXPECT_FALSE(ArchConfig::dstc().supports(TasdConfig::parse("2:4")));
}

TEST(Arch, BlockSize) {
  EXPECT_EQ(ArchConfig::ttc_vegeta_m8().block_size(), 8);
  EXPECT_EQ(ArchConfig::ttc_stc_m4().block_size(), 4);
  EXPECT_EQ(ArchConfig::dense_tc().block_size(), 0);
}

TEST(Arch, NoTasdVariantKeepsPatterns) {
  const auto a = ArchConfig::vegeta_m8_no_tasd();
  EXPECT_FALSE(a.has_tasd_units);
  EXPECT_TRUE(a.supports(TasdConfig::parse("2:8")));
}

TEST(Arch, TileDims) {
  const auto a = ArchConfig::dense_tc();
  EXPECT_EQ(a.tile_m(), 32u);
  EXPECT_EQ(a.tile_n(), 32u);
  EXPECT_EQ(a.macs_per_cycle(), 1024u);
}

}  // namespace
}  // namespace tasd::accel
