// Whole-network aggregation of per-layer simulations (the "Overall" bars
// of Figs. 12–13) plus normalized-metric helpers.
#pragma once

#include <vector>

#include "accel/perf_model.hpp"

namespace tasd::accel {

/// Aggregated simulation of a network on one architecture.
struct NetworkSim {
  std::string arch_name;
  std::string workload_name;
  double cycles = 0.0;
  double energy_pj = 0.0;
  std::array<double, kComponentCount> energy_by_component{};
  double effectual_macs = 0.0;
  double slot_macs = 0.0;

  [[nodiscard]] double edp() const { return cycles * energy_pj; }
};

/// Simulate all layers (repeats included) and aggregate. Latency adds
/// across layers (they execute sequentially); energy adds too.
NetworkSim simulate_network(const ArchConfig& arch,
                            const std::vector<LayerExecution>& layers,
                            const std::string& workload_name,
                            const EnergyTable& table = kDefaultEnergy);

/// EDP of `sim` normalized to `baseline` (the dense TC run of the same
/// workload in the paper's figures).
double normalized_edp(const NetworkSim& sim, const NetworkSim& baseline);

/// Geometric mean over a set of positive values.
double geomean(const std::vector<double>& values);

}  // namespace tasd::accel
