// Per-layer kernel autotuning (ISSUE 10 tentpole): compile() under
// KernelPolicy::kAutotune micro-benches every registered candidate per
// layer and binds the winner. The measurement-override hook
// (set_autotune_timer) replaces the wall clock with injected timings so
// the selection logic is testable deterministically: fixed fake timings
// must yield a fixed binding, run after run.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/cpu_features.hpp"
#include "common/rng.hpp"
#include "runtime/autotune.hpp"
#include "runtime/compiled_network.hpp"
#include "tensor/generator.hpp"

namespace tasd::rt {
namespace {

/// RAII: install a fake timer for one test, restore the wall clock on
/// exit so sibling tests (and wall-clock autotune tests) are unaffected.
struct TimerGuard {
  explicit TimerGuard(TuneTimer hook) { set_autotune_timer(std::move(hook)); }
  ~TimerGuard() { set_autotune_timer({}); }
};

dnn::NetworkWorkload two_layer_net() {
  dnn::NetworkWorkload net;
  net.name = "tune-net";
  net.sparse_weights = true;
  dnn::GemmWorkload l1;
  l1.name = "a";
  l1.m = 24;
  l1.k = 48;
  l1.n = 16;
  l1.weight_density = 0.3;
  l1.weight_seed = 7501;
  dnn::GemmWorkload l2 = l1;
  l2.name = "b";
  l2.weight_seed = 7502;
  net.layers = {l1, l2};
  return net;
}

std::vector<std::optional<TasdConfig>> mixed_configs() {
  return {TasdConfig::parse("2:4"), std::nullopt};
}

CompileOptions autotune_opt() {
  CompileOptions opt;
  opt.kernel_policy = KernelPolicy::kAutotune;
  opt.measure.repeats = 2;  // keep the wall-clock path cheap
  return opt;
}

bool contains(const std::vector<std::string>& names, const std::string& n) {
  return std::find(names.begin(), names.end(), n) != names.end();
}

TEST(Autotune, FixedFakeTimingsYieldAFixedBinding) {
  // The fake timer prefers a different kernel on each layer: the nm
  // layer "a" gets "serial"/"batch-loop", the dense layer "b" gets
  // "tiled-serial"/"batch-loop" — deliberately NOT the static best_*()
  // picks, so a pass proves the injected measurements (and nothing
  // else) drove the binding.
  const TimerGuard guard([](const TuneMeasurement& m) {
    if (m.layer == "a") return m.kernel == (m.batch ? "batch-loop" : "serial")
                                   ? 1.0
                                   : 9.0;
    return m.kernel == (m.batch ? "batch-loop" : "tiled-serial") ? 1.0 : 9.0;
  });
  for (int round = 0; round < 2; ++round) {
    const auto engine = compile(two_layer_net(), mixed_configs(),
                                autotune_opt());
    ASSERT_TRUE(engine.tuning().has_value()) << "round " << round;
    const TuningResult& t = *engine.tuning();
    EXPECT_EQ(t.host_signature, cpu_signature());
    ASSERT_EQ(t.layers.size(), 2U);
    EXPECT_EQ(t.find("a")->chosen_single, "serial");
    EXPECT_EQ(t.find("a")->chosen_batch, "batch-loop");
    EXPECT_EQ(t.find("b")->chosen_single, "tiled-serial");
    EXPECT_EQ(t.find("b")->chosen_batch, "batch-loop");
    // The binding is per layer: layer_policy() overlays the chosen name
    // on the right slot of the network-wide policy.
    EXPECT_EQ(engine.layer_policy(0).nm_kernel, "serial");
    EXPECT_EQ(engine.layer_policy(0).nm_batch_kernel, "batch-loop");
    EXPECT_EQ(engine.layer_policy(1).dense_kernel, "tiled-serial");
    EXPECT_EQ(engine.layer_policy(1).dense_batch_kernel, "batch-loop");
    // Every candidate table covers the whole registry and records the
    // injected timings verbatim.
    for (const LayerTuning& lt : t.layers) {
      EXPECT_EQ(lt.single.size(),
                (lt.nm ? GemmDispatch::instance().nm_kernels()
                       : GemmDispatch::instance().dense_kernels())
                    .size());
      for (const TuneCandidate& c : lt.single)
        EXPECT_TRUE(c.ms == 1.0 || c.ms == 9.0) << c.kernel;
    }
  }
}

TEST(Autotune, PerLayerWinnersDivergeWhenTimingsDo) {
  // Two dense layers, opposite preferences: the binding must differ per
  // layer even though both layers share one network-wide policy.
  auto net = two_layer_net();
  const std::vector<std::optional<TasdConfig>> both_dense = {std::nullopt,
                                                             std::nullopt};
  const TimerGuard guard([](const TuneMeasurement& m) {
    const bool fast = m.layer == "a" ? m.kernel == "tiled-serial"
                                     : m.kernel == "reference";
    return fast ? 0.5 : 2.0;
  });
  const auto engine = compile(net, both_dense, autotune_opt());
  EXPECT_EQ(engine.layer_policy(0).dense_kernel, "tiled-serial");
  EXPECT_EQ(engine.layer_policy(1).dense_kernel, "reference");
}

TEST(Autotune, TunedRunMatchesTheStaticallyPinnedKernelBitwise) {
  const auto net = two_layer_net();
  const TimerGuard guard([](const TuneMeasurement& m) {
    return m.kernel == (m.nm ? "serial" : "tiled-serial") ||
                   m.kernel == "batch-loop"
               ? 1.0
               : 9.0;
  });
  const auto tuned = compile(net, mixed_configs(), autotune_opt());
  CompileOptions pin;
  pin.nm_kernel = "serial";
  pin.dense_kernel = "tiled-serial";
  pin.nm_batch_kernel = "batch-loop";
  pin.dense_batch_kernel = "batch-loop";
  const auto pinned = compile(net, mixed_configs(), pin);
  Rng rng(7600);
  const MatrixF b = random_dense(net.layers[0].k, 9, Dist::kNormalStd1, rng);
  std::vector<MatrixF> bs;
  for (const Index cols : {3u, 0u, 7u})
    bs.push_back(random_dense(net.layers[0].k, cols, Dist::kNormalStd1, rng));
  for (std::size_t layer = 0; layer < 2; ++layer) {
    EXPECT_EQ(tuned.run(layer, b), pinned.run(layer, b)) << layer;
    const auto tb = tuned.run_batch(layer, bs);
    const auto pb = pinned.run_batch(layer, bs);
    for (std::size_t q = 0; q < bs.size(); ++q)
      EXPECT_EQ(tb[q], pb[q]) << layer << "/" << q;
  }
}

TEST(Autotune, WallClockTuningChoosesTheTableMinimum) {
  // No hook installed: real micro-bench timings. The absolute numbers
  // are noisy on CI, but the invariants are not — the chosen kernel is
  // the argmin of its own candidate table, every candidate is a
  // registered name, and timings are positive.
  const auto engine =
      compile(two_layer_net(), mixed_configs(), autotune_opt());
  ASSERT_TRUE(engine.tuning().has_value());
  for (const LayerTuning& lt : engine.tuning()->layers) {
    const auto check = [&](const std::vector<TuneCandidate>& table,
                           const std::string& chosen,
                           const std::vector<std::string>& registry) {
      ASSERT_FALSE(table.empty());
      double best = table.front().ms;
      for (const TuneCandidate& c : table) {
        EXPECT_GT(c.ms, 0.0) << c.kernel;
        EXPECT_TRUE(contains(registry, c.kernel)) << c.kernel;
        best = std::min(best, c.ms);
      }
      const auto it =
          std::find_if(table.begin(), table.end(),
                       [&](const TuneCandidate& c) { return c.kernel == chosen; });
      ASSERT_NE(it, table.end()) << chosen;
      EXPECT_EQ(it->ms, best) << lt.layer;
    };
    const auto& d = GemmDispatch::instance();
    check(lt.single, lt.chosen_single, lt.nm ? d.nm_kernels() : d.dense_kernels());
    check(lt.batch, lt.chosen_batch,
          lt.nm ? d.nm_batch_kernels() : d.dense_batch_kernels());
  }
}

TEST(Autotune, StaticPolicyCompilesWithoutTuning) {
  const auto engine = compile(two_layer_net(), mixed_configs(), {});
  EXPECT_FALSE(engine.tuning().has_value());
}

TEST(Autotune, CandidatePoolHonorsTheSimdDisableFlags) {
  // Forced-fallback coverage: under TASD_DISABLE_AVX512=1 (the avx2 CI
  // leg) no avx512 candidate may appear in any table; with
  // TASD_DISABLE_AVX2=1 stacked on top (the scalar leg) no avx kernel
  // at all. On a fully enabled host this asserts the complement — the
  // SIMD families are in the pool and autotune considered them.
  const TimerGuard guard([](const TuneMeasurement&) { return 1.0; });
  const auto engine =
      compile(two_layer_net(), mixed_configs(), autotune_opt());
  ASSERT_TRUE(engine.tuning().has_value());
  for (const LayerTuning& lt : engine.tuning()->layers) {
    for (const auto* table : {&lt.single, &lt.batch}) {
      const bool has512 = std::any_of(
          table->begin(), table->end(), [](const TuneCandidate& c) {
            return c.kernel.find("avx512") != std::string::npos;
          });
      const bool has2 = std::any_of(
          table->begin(), table->end(), [](const TuneCandidate& c) {
            return c.kernel.find("avx2") != std::string::npos;
          });
      EXPECT_EQ(has512, avx512_available()) << lt.layer;
      EXPECT_EQ(has2, avx2_available()) << lt.layer;
    }
  }
}

}  // namespace
}  // namespace tasd::rt
