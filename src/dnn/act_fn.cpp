#include "dnn/act_fn.hpp"

#include <algorithm>
#include <cmath>

namespace tasd::dnn {

float apply_act(ActKind kind, float x) {
  switch (kind) {
    case ActKind::kNone:
      return x;
    case ActKind::kRelu:
      return x > 0.0F ? x : 0.0F;
    case ActKind::kRelu6:
      return std::clamp(x, 0.0F, 6.0F);
    case ActKind::kGelu: {
      // tanh approximation of GELU.
      const float c = 0.7978845608028654F;  // sqrt(2/pi)
      const float inner = c * (x + 0.044715F * x * x * x);
      return 0.5F * x * (1.0F + std::tanh(inner));
    }
    case ActKind::kSwish:
      return x / (1.0F + std::exp(-x));
  }
  return x;
}

std::string act_name(ActKind kind) {
  switch (kind) {
    case ActKind::kNone: return "none";
    case ActKind::kRelu: return "relu";
    case ActKind::kRelu6: return "relu6";
    case ActKind::kGelu: return "gelu";
    case ActKind::kSwish: return "swish";
  }
  return "?";
}

bool induces_sparsity(ActKind kind) {
  return kind == ActKind::kRelu || kind == ActKind::kRelu6;
}

}  // namespace tasd::dnn
