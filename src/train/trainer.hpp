// Training-loop harness for the §6.2 future-work experiment: does TASD-
// approximating the backward-pass operands (stored activations and/or
// upstream gradients) preserve training convergence?
#pragma once

#include <string>
#include <vector>

#include "train/mlp.hpp"

namespace tasd::train {

/// A synthetic classification task: Gaussian class prototypes + noise.
/// Linearly-separable-ish but not trivial (noise scale ~ prototype
/// scale), so training accuracy moves meaningfully over epochs.
///
/// The prototypes are derived from `proto_seed` and the per-sample draws
/// from `sample_seed`; train/test splits of one task share the former
/// and differ in the latter.
struct Dataset {
  MatrixF inputs;              // (features x samples)
  std::vector<Index> labels;   // one per column

  static Dataset synthetic(Index features, Index classes, Index samples,
                           double noise, std::uint64_t proto_seed,
                           std::uint64_t sample_seed);
};

/// Training configuration.
struct TrainOptions {
  Index epochs = 20;
  Index batch = 32;
  double lr = 0.1;
  TasdTrainingHooks hooks;  ///< TASD applied inside backward
};

/// Per-epoch training trace.
struct TrainResult {
  std::vector<double> loss_per_epoch;
  std::vector<double> train_accuracy_per_epoch;
  double final_test_accuracy = 0.0;
  std::string hook_description;
};

/// Train `mlp` on `train_set`, evaluate on `test_set`.
TrainResult train(Mlp& mlp, const Dataset& train_set,
                  const Dataset& test_set, const TrainOptions& opt);

/// Classification accuracy of the model on a dataset.
double accuracy(Mlp& mlp, const Dataset& data);

}  // namespace tasd::train
