#include "core/permute.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace tasd {

double PermutationResult::dropped_nnz_reduction() const {
  if (before.dropped_nnz == 0) return 0.0;
  return 1.0 - static_cast<double>(after.dropped_nnz) /
                   static_cast<double>(before.dropped_nnz);
}

MatrixF apply_column_permutation(const MatrixF& m,
                                 const std::vector<Index>& perm) {
  TASD_CHECK_MSG(perm.size() == m.cols(),
                 "permutation size " << perm.size() << " != cols "
                                     << m.cols());
  MatrixF out(m.rows(), m.cols());
  for (Index j = 0; j < m.cols(); ++j) {
    TASD_CHECK_MSG(perm[j] < m.cols(), "permutation index out of range");
    for (Index r = 0; r < m.rows(); ++r) out(r, j) = m(r, perm[j]);
  }
  return out;
}

MatrixF permute_rows(const MatrixF& m, const std::vector<Index>& perm) {
  TASD_CHECK_MSG(perm.size() == m.rows(),
                 "permutation size " << perm.size() << " != rows "
                                     << m.rows());
  MatrixF out(m.rows(), m.cols());
  for (Index i = 0; i < m.rows(); ++i) {
    TASD_CHECK_MSG(perm[i] < m.rows(), "permutation index out of range");
    for (Index c = 0; c < m.cols(); ++c) out(i, c) = m(perm[i], c);
  }
  return out;
}

namespace {

/// For a same-M series the greedy decomposition keeps the (Σ Ni) largest
/// elements of every M-block, so the dropped count of a block with k
/// non-zeros is exactly max(0, k - slots). This makes the permutation
/// objective purely combinatorial.
int series_slots(const TasdConfig& config) {
  TASD_CHECK_MSG(!config.terms.empty(), "empty TASD config");
  const int m = config.terms.front().m;
  int slots = 0;
  for (const auto& t : config.terms) {
    TASD_CHECK_MSG(t.m == m,
                   "permutation search requires a same-M series, got "
                       << config.str());
    slots += t.n;
  }
  return std::min(slots, m);
}

Index block_dropped(Index nnz, Index slots) {
  return nnz > slots ? nnz - slots : 0;
}

}  // namespace

PermutationResult find_tasd_permutation(const MatrixF& matrix,
                                        const TasdConfig& config,
                                        int refine_passes) {
  PermutationResult result;
  result.before = approx_stats(matrix, config);

  const auto m = static_cast<Index>(config.terms.front().m);
  const auto slots = static_cast<Index>(series_slots(config));
  const Index cols = matrix.cols();
  const Index rows = matrix.rows();
  const Index groups = (cols + m - 1) / m;

  // --- construction: deal columns (densest first) round-robin over the
  // groups so block occupancy is balanced.
  std::vector<Index> col_nnz(cols, 0);
  for (Index r = 0; r < rows; ++r) {
    auto row = matrix.row(r);
    for (Index c = 0; c < cols; ++c)
      if (row[c] != 0.0F) ++col_nnz[c];
  }
  std::vector<Index> order(cols);
  std::iota(order.begin(), order.end(), Index{0});
  std::stable_sort(order.begin(), order.end(), [&](Index a, Index b) {
    return col_nnz[a] > col_nnz[b];
  });
  // group_cols[g] collects the original column ids assigned to group g.
  std::vector<std::vector<Index>> group_cols(groups);
  // Tail group may be shorter; compute capacities first.
  std::vector<Index> capacity(groups, m);
  if (cols % m != 0) capacity[groups - 1] = cols % m;
  {
    Index g = 0;
    for (Index c : order) {
      while (group_cols[g].size() >= capacity[g]) g = (g + 1) % groups;
      group_cols[g].push_back(c);
      g = (g + 1) % groups;
      // Skip full groups.
      Index guard = 0;
      while (group_cols[g].size() >= capacity[g] && guard++ < groups)
        g = (g + 1) % groups;
    }
  }

  // Per-(row, group) non-zero counts for O(rows) swap deltas.
  std::vector<std::vector<Index>> cnt(groups, std::vector<Index>(rows, 0));
  for (Index g = 0; g < groups; ++g)
    for (Index c : group_cols[g])
      for (Index r = 0; r < rows; ++r)
        if (matrix(r, c) != 0.0F) ++cnt[g][r];

  auto group_overflow = [&](Index g) {
    Index total = 0;
    for (Index r = 0; r < rows; ++r) total += block_dropped(cnt[g][r], slots);
    return total;
  };

  // --- refinement: move the densest column of the worst group into the
  // emptiest groups if that reduces total dropped non-zeros.
  for (int pass = 0; pass < refine_passes; ++pass) {
    bool improved = false;
    std::vector<Index> by_overflow(groups);
    std::iota(by_overflow.begin(), by_overflow.end(), Index{0});
    std::stable_sort(by_overflow.begin(), by_overflow.end(),
                     [&](Index a, Index b) {
                       return group_overflow(a) > group_overflow(b);
                     });
    for (Index gi = 0; gi < groups; ++gi) {
      const Index g1 = by_overflow[gi];
      if (group_overflow(g1) == 0) break;
      // Candidate partners: the least-overflowing groups.
      const Index partners = std::min<Index>(8, groups);
      for (Index pj = 0; pj < partners; ++pj) {
        const Index g2 = by_overflow[groups - 1 - pj];
        if (g2 == g1) continue;
        // Try every (a in g1, b in g2) pair; keep the best swap.
        long long best_delta = 0;
        Index best_a = 0, best_b = 0;
        bool found = false;
        for (Index a : group_cols[g1]) {
          for (Index b : group_cols[g2]) {
            long long delta = 0;
            for (Index r = 0; r < rows; ++r) {
              const Index az = matrix(r, a) != 0.0F ? 1 : 0;
              const Index bz = matrix(r, b) != 0.0F ? 1 : 0;
              if (az == bz) continue;
              const Index n1 = cnt[g1][r];
              const Index n2 = cnt[g2][r];
              const Index n1p = n1 - az + bz;
              const Index n2p = n2 - bz + az;
              delta += static_cast<long long>(block_dropped(n1p, slots)) +
                       static_cast<long long>(block_dropped(n2p, slots)) -
                       static_cast<long long>(block_dropped(n1, slots)) -
                       static_cast<long long>(block_dropped(n2, slots));
            }
            if (delta < best_delta) {
              best_delta = delta;
              best_a = a;
              best_b = b;
              found = true;
            }
          }
        }
        if (found) {
          // Commit the swap: update membership and counts.
          auto& v1 = group_cols[g1];
          auto& v2 = group_cols[g2];
          *std::find(v1.begin(), v1.end(), best_a) = best_b;
          *std::find(v2.begin(), v2.end(), best_b) = best_a;
          for (Index r = 0; r < rows; ++r) {
            const Index az = matrix(r, best_a) != 0.0F ? 1 : 0;
            const Index bz = matrix(r, best_b) != 0.0F ? 1 : 0;
            cnt[g1][r] = cnt[g1][r] - az + bz;
            cnt[g2][r] = cnt[g2][r] - bz + az;
          }
          improved = true;
        }
      }
    }
    if (!improved) break;
  }

  result.perm.reserve(cols);
  for (Index g = 0; g < groups; ++g)
    for (Index c : group_cols[g]) result.perm.push_back(c);
  result.after =
      approx_stats(apply_column_permutation(matrix, result.perm), config);
  return result;
}

}  // namespace tasd
