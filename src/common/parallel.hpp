// Shared parallel execution layer: a reusable worker pool plus a
// deterministic parallel_for that every CPU kernel routes through.
//
// Design notes:
//  * Determinism first. parallel_for splits [begin, end) into contiguous
//    chunks that are a pure function of the range and the pool's thread
//    count; workers never share accumulators, so kernels that write
//    disjoint row ranges produce bit-identical results at every thread
//    count (no atomics on float accumulation).
//  * The calling thread participates: ThreadPool(t) serves t-way
//    parallelism with t-1 workers plus the caller. t <= 1 runs inline
//    with zero synchronization, so the serial path *is* the parallel
//    path with one chunk.
//  * Nested parallel_for calls run inline on the calling worker rather
//    than re-entering the pool (no deadlock, no oversubscription).
//  * Exceptions thrown by chunk bodies are captured and the first one is
//    rethrown on the calling thread after all chunks finish; the pool
//    stays usable afterwards.
//
// The pool used by default is sized from TASD_NUM_THREADS (falling back
// to std::thread::hardware_concurrency) — see default_pool().
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace tasd::rt {

class ThreadPool;

/// An explicit dependency schedule of tasks, executed over a ThreadPool.
///
/// This is the task-level counterpart to parallel_for: where parallel_for
/// expresses "these iterations are independent", a TaskGraph expresses
/// "these tasks are independent *except* along these edges" — the shape
/// the pipelined executor needs to overlap layer L+1 of batch item i with
/// layer L of item i+1 without ad-hoc threads.
///
/// Semantics:
///  * add(fn, deps) returns the task's id; every dependency must name an
///    already-added task (deps < id), so the graph is acyclic by
///    construction and a topological order always exists.
///  * run(pool) executes every task exactly once, never starting a task
///    before all of its dependencies finished. Ready tasks are claimed by
///    up to pool.num_threads() workers (the calling thread participates);
///    with a serial pool the tasks run inline in id order restricted to
///    readiness — the serial path is a valid schedule of the same graph.
///  * Task bodies may call parallel_for (it runs inline on the claiming
///    worker — same nested rule as parallel_for itself), so a task can be
///    "one kernel" without oversubscribing the pool.
///  * Exceptions: the first thrown exception is captured, every task not
///    yet started is skipped (dependencies of skipped tasks count as
///    satisfied so run() always terminates), and the exception is
///    rethrown on the calling thread. A TaskGraph is single-use: run()
///    may be called at most once.
class TaskGraph {
 public:
  using TaskId = std::size_t;

  /// Add a task depending on the given earlier tasks. Every entry of
  /// `deps` must be a TaskId returned by a previous add().
  TaskId add(std::function<void()> fn, const std::vector<TaskId>& deps = {});

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  /// Execute the whole graph on `pool`; blocks until every task has run
  /// (or been skipped after a failure), then rethrows the first failure.
  void run(ThreadPool& pool);

 private:
  struct Node {
    std::function<void()> fn;
    std::vector<TaskId> successors;
    std::size_t unmet_deps = 0;
  };
  std::vector<Node> nodes_;
  bool ran_ = false;
};

/// Reusable fixed-size worker pool executing parallel_for chunks.
class ThreadPool {
 public:
  /// `num_threads` is the total parallelism (workers + calling thread).
  /// 0 and 1 both mean "serial": no worker threads are spawned.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism this pool provides (always >= 1).
  [[nodiscard]] std::size_t num_threads() const { return threads_; }

  /// Number of spawned worker threads (num_threads() - 1, or 0 when
  /// serial).
  [[nodiscard]] std::size_t workers() const;

  /// Run fn(chunk_begin, chunk_end) over a deterministic partition of
  /// [begin, end) into at most num_threads() contiguous chunks of at
  /// least `grain` iterations each. Blocks until every chunk finished;
  /// rethrows the first chunk exception. Safe to call from inside a
  /// chunk body (the nested call runs inline).
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Chunk boundaries parallel_for would use for a range of length `len`
  /// with the given grain: a pure function of (len, grain, num_threads),
  /// exposed so tests can assert the partition is deterministic.
  [[nodiscard]] std::vector<std::size_t> partition(std::size_t len,
                                                   std::size_t grain) const;

 private:
  struct Impl;
  std::size_t threads_ = 1;
  Impl* impl_ = nullptr;  // null when serial
};

/// Process-wide default pool, sized from the TASD_NUM_THREADS environment
/// variable (unset/0 = std::thread::hardware_concurrency). Constructed on
/// first use.
ThreadPool& default_pool();

/// Thread count default_pool() is (or would be) built with.
std::size_t default_num_threads();

/// parallel_for on the default pool.
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace tasd::rt
