// Plain-text table printer used by every bench binary to emit the rows of
// the paper's tables and figures in a uniform, diffable format.
#pragma once

#include <string>
#include <vector>

namespace tasd {

/// Column-aligned text table. Add a header row, then data rows; str()
/// renders with column widths fitted to contents.
class TextTable {
 public:
  /// Set the header row. Resets any previously added rows' width info.
  void header(std::vector<std::string> cells);

  /// Append a data row; it may have fewer cells than the header.
  void row(std::vector<std::string> cells);

  /// Convenience: format a double with the given precision.
  static std::string num(double v, int precision = 3);

  /// Convenience: format a percentage ("12.3%").
  static std::string pct(double fraction, int precision = 1);

  /// Render the table.
  [[nodiscard]] std::string str() const;

  /// Render and write to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner ("=== title ===") to stdout.
void print_banner(const std::string& title);

}  // namespace tasd
