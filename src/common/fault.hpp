// Deterministic fault injection for robustness testing.
//
// Production code marks interesting failure sites with fault::inject()
// calls; tests (and only tests — nothing in the library arms faults on
// its own) arm Specs that make matching sites throw, report allocation
// failure, or stall, on a seeded deterministic schedule. The hooks are
// compiled in every build type so the exact binary that serves traffic
// is the one whose failure paths were exercised; when nothing is armed,
// inject() is a single relaxed atomic load.
//
// Typical test use:
//
//   fault::Spec spec;
//   spec.site = "rt.run_batch";        // substring match on the site name
//   spec.detail = "conv1";            // substring match on the detail
//   spec.kind = fault::Kind::kThrow;  // or kBadAlloc / kDelay
//   spec.max_fires = 1;               // fail the first matching hit only
//   fault::ScopedFault f(spec);       // disarms on scope exit
//   ... drive the system; assert it degraded gracefully ...
//   EXPECT_EQ(f.fires(), 1u);
//
// Determinism: each armed spec owns a private mt19937_64 stream seeded
// from spec.seed; the k-th matching hit of a spec fires iff the k-th
// draw of that stream lands under `probability`. For a single-threaded
// caller the fire pattern is a pure function of (seed, probability,
// hit order). Under concurrency the set of *sites* that hit in each
// position may vary with scheduling, but the schedule itself — and
// therefore counts like max_fires — stays exact.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

namespace tasd::fault {

/// What a firing fault does at the injection site.
enum class Kind {
  kThrow,     ///< throw tasd::Error{kInternal} (a "throwing layer")
  kBadAlloc,  ///< throw std::bad_alloc (allocation failure)
  kDelay,     ///< sleep delay_us (a slow kernel), then continue
};

/// One armed fault: which sites it matches and how/when it fires.
struct Spec {
  /// Substring matched against the injection point's site name; empty
  /// matches every site.
  std::string site;
  /// Substring matched against the point's detail (e.g. a layer name);
  /// empty matches any detail.
  std::string detail;
  Kind kind = Kind::kThrow;
  /// Per-hit chance of firing, drawn from this spec's seeded stream.
  double probability = 1.0;
  std::uint64_t seed = 1;
  /// Sleep for kDelay fires, in microseconds.
  int delay_us = 1000;
  /// Stop firing (but keep counting hits) after this many fires.
  std::size_t max_fires = std::numeric_limits<std::size_t>::max();
  /// Included in the thrown error's message.
  std::string message = "injected fault";
};

/// Arm a fault; returns a token for disarm()/fire_count(). Faults stack:
/// every armed spec is consulted at every hit, in arming order.
int arm(Spec spec);

/// Disarm one fault (no-op for unknown tokens) / every fault.
void disarm(int token);
void disarm_all();

/// Hits and fires recorded for an armed fault (0 for unknown tokens).
std::size_t hit_count(int token);
std::size_t fire_count(int token);

/// True when at least one fault is armed (the slow path is reachable).
bool any_armed();

/// The injection point. Call from code under test at named failure
/// sites; near-zero cost (one relaxed atomic load) when nothing is armed.
/// May throw tasd::Error or std::bad_alloc, or sleep, per armed specs.
void inject(std::string_view site, std::string_view detail = {});

/// RAII arming for tests: disarms on destruction.
class ScopedFault {
 public:
  explicit ScopedFault(Spec spec) : token_(arm(std::move(spec))) {}
  ~ScopedFault() { disarm(token_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  [[nodiscard]] int token() const { return token_; }
  [[nodiscard]] std::size_t hits() const { return hit_count(token_); }
  [[nodiscard]] std::size_t fires() const { return fire_count(token_); }

 private:
  int token_;
};

}  // namespace tasd::fault
