#include "core/plan_cache.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <list>
#include <unordered_map>

#include "common/error.hpp"
#include "common/sync.hpp"
#include "sparse/view.hpp"

namespace tasd {

Index DecompositionPlan::nnz() const {
  Index total = 0;
  for (const auto& t : terms) total += t.nnz();
  return total;
}

Index DecompositionPlan::storage_bytes() const {
  Index total = 0;
  for (const auto& t : terms) total += t.storage_bytes();
  return total;
}

MatrixF DecompositionPlan::approximation() const {
  MatrixF acc(rows, cols);
  for (const auto& t : terms) {
    const auto m = static_cast<Index>(t.pattern().m);
    const auto& values = t.values();
    const auto& idx = t.in_block_index();
    const auto& offsets = t.block_offsets();
    Index group = 0;
    for (Index r = 0; r < rows; ++r) {
      float* row = acc.data() + r * cols;
      for (Index blk = 0; blk < t.blocks_per_row(); ++blk, ++group) {
        const Index base = blk * m;
        for (Index s = offsets[group]; s < offsets[group + 1]; ++s)
          row[base + idx[s]] += values[s];
      }
    }
  }
  return acc;
}

DecompositionPlan build_plan(const MatrixF& matrix, const TasdConfig& config) {
  DecompositionPlan plan;
  plan.config = config;
  plan.rows = matrix.rows();
  plan.cols = matrix.cols();

  MatrixF residual = matrix;
  plan.terms.reserve(config.terms.size());
  for (const auto& pattern : config.terms)
    plan.terms.push_back(sparse::extract_term_inplace(residual, pattern));

  // Quality stats straight from the residual: the decomposition moves
  // elements (never recombines them), so original - approximation ==
  // residual exactly, and every stat approx_stats() derives from the
  // dense approximation can be derived from the residual instead. The
  // accumulation orders below match tensor/norms.cpp so the numbers are
  // bit-identical to the dense-path approx_stats().
  ApproxStats& s = plan.stats;
  s.original_nnz = matrix.nnz();
  s.dropped_nnz = residual.nnz();
  s.kept_nnz = s.original_nnz - s.dropped_nnz;
  double orig_mag = 0.0, res_mag = 0.0, orig_sq = 0.0, res_sq = 0.0;
  for (float v : matrix.flat()) {
    orig_mag += std::fabs(static_cast<double>(v));
    orig_sq += static_cast<double>(v) * v;
  }
  for (float v : residual.flat()) {
    res_mag += std::fabs(static_cast<double>(v));
    res_sq += static_cast<double>(v) * v;
  }
  s.original_magnitude = orig_mag;
  s.dropped_magnitude = res_mag;
  s.kept_magnitude = orig_mag - res_mag;
  s.mse = matrix.empty() ? 0.0
                         : res_sq / static_cast<double>(matrix.size());
  const double orig_norm = std::sqrt(orig_sq);
  s.rel_frobenius_error =
      orig_norm == 0.0 ? 0.0 : std::sqrt(res_sq) / orig_norm;
  return plan;
}

namespace {

struct PlanKey {
  std::uint64_t fp_lo = 0;  ///< FNV-1a over the matrix bytes
  std::uint64_t fp_hi = 0;  ///< independent second hash (see fingerprint)
  Index rows = 0;
  Index cols = 0;
  std::string config;

  friend bool operator==(const PlanKey&, const PlanKey&) = default;
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const {
    std::size_t h = std::hash<std::uint64_t>{}(k.fp_lo);
    h ^= std::hash<std::uint64_t>{}(k.fp_hi) + 0x9e3779b97f4a7c15ULL +
         (h << 6);
    h ^= std::hash<Index>{}(k.rows) + 0x9e3779b97f4a7c15ULL + (h << 6);
    h ^= std::hash<Index>{}(k.cols) + 0x9e3779b97f4a7c15ULL + (h << 6);
    h ^= std::hash<std::string>{}(k.config) + (h >> 2);
    return h;
  }
};

}  // namespace

// Plans are the inputs to every downstream numeric result, so a single
// 64-bit hash would be too thin a guarantee — see the header contract.
// Byte-order note: the hash runs over the in-memory float bytes, so the
// value is endian-specific; the artifact store records and verifies it
// on the same convention (docs/artifact.md).
ContentFingerprint content_fingerprint(const MatrixF& m) {
  std::uint64_t fnv = 1469598103934665603ULL;
  std::uint64_t mix = 0x2b992ddfa23249d6ULL;
  const auto flat = m.flat();
  const auto* bytes = reinterpret_cast<const unsigned char*>(flat.data());
  const std::size_t n = flat.size() * sizeof(float);
  for (std::size_t i = 0; i < n; ++i) {
    fnv ^= bytes[i];
    fnv *= 1099511628211ULL;
    mix = (mix ^ bytes[i]) * 0x9e3779b97f4a7c15ULL;
    mix = (mix << 27) | (mix >> 37);
  }
  return {fnv, mix};
}

struct PlanCache::Impl {
  mutable Mutex mutex;
  std::size_t capacity TASD_GUARDED_BY(mutex) = 1;
  PlanCacheStats stats TASD_GUARDED_BY(mutex);
  // LRU: most recent at the front.
  using LruList =
      std::list<std::pair<PlanKey, std::shared_ptr<const DecompositionPlan>>>;
  LruList lru TASD_GUARDED_BY(mutex);
  std::unordered_map<PlanKey, LruList::iterator, PlanKeyHash> index
      TASD_GUARDED_BY(mutex);
};

PlanCache::PlanCache(std::size_t capacity) : impl_(new Impl) {
  MutexLock lock(impl_->mutex);
  impl_->capacity = std::max<std::size_t>(1, capacity);
}

PlanCache::~PlanCache() = default;

PlanCache& PlanCache::instance() {
  static PlanCache cache([] {
    if (const char* env = std::getenv("TASD_PLAN_CACHE_CAPACITY")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v > 0)
        return static_cast<std::size_t>(v);
    }
    return std::size_t{256};
  }());
  return cache;
}

std::shared_ptr<const DecompositionPlan> PlanCache::get_or_build(
    const MatrixF& matrix, const TasdConfig& config) {
  const auto fp = content_fingerprint(matrix);
  PlanKey key{fp.lo, fp.hi, matrix.rows(), matrix.cols(), config.str()};
  {
    MutexLock lock(impl_->mutex);
    if (auto it = impl_->index.find(key); it != impl_->index.end()) {
      ++impl_->stats.hits;
      impl_->lru.splice(impl_->lru.begin(), impl_->lru, it->second);
      return it->second->second;
    }
    ++impl_->stats.misses;
  }

  // Build outside the lock: decompositions are the expensive part and
  // independent builds may proceed concurrently. A racing builder for
  // the same key just produces the same (bit-identical) plan; the first
  // insert wins.
  auto plan = std::make_shared<const DecompositionPlan>(
      build_plan(matrix, config));

  MutexLock lock(impl_->mutex);
  ++impl_->stats.decompositions;
  if (auto it = impl_->index.find(key); it != impl_->index.end())
    return it->second->second;
  impl_->lru.emplace_front(key, plan);
  impl_->index.emplace(std::move(key), impl_->lru.begin());
  while (impl_->lru.size() > impl_->capacity) {
    impl_->index.erase(impl_->lru.back().first);
    impl_->lru.pop_back();
    ++impl_->stats.evictions;
  }
  return plan;
}

std::shared_ptr<const DecompositionPlan> PlanCache::insert_preloaded(
    const MatrixF& matrix, std::shared_ptr<const DecompositionPlan> plan) {
  TASD_CHECK_MSG(plan != nullptr, "insert_preloaded requires a plan");
  TASD_CHECK_MSG(plan->rows == matrix.rows() && plan->cols == matrix.cols(),
                 "preloaded plan is " << plan->rows << "x" << plan->cols
                                      << ", matrix is " << matrix.rows() << "x"
                                      << matrix.cols());
  const auto fp = content_fingerprint(matrix);
  PlanKey key{fp.lo, fp.hi, matrix.rows(), matrix.cols(), plan->config.str()};

  MutexLock lock(impl_->mutex);
  ++impl_->stats.preloads;
  if (auto it = impl_->index.find(key); it != impl_->index.end()) {
    impl_->lru.splice(impl_->lru.begin(), impl_->lru, it->second);
    return it->second->second;
  }
  impl_->lru.emplace_front(key, plan);
  impl_->index.emplace(std::move(key), impl_->lru.begin());
  while (impl_->lru.size() > impl_->capacity) {
    impl_->index.erase(impl_->lru.back().first);
    impl_->lru.pop_back();
    ++impl_->stats.evictions;
  }
  return plan;
}

PlanCacheStats PlanCache::stats() const {
  MutexLock lock(impl_->mutex);
  return impl_->stats;
}

void PlanCache::reset_stats() {
  MutexLock lock(impl_->mutex);
  impl_->stats = {};
}

std::size_t PlanCache::size() const {
  MutexLock lock(impl_->mutex);
  return impl_->lru.size();
}

void PlanCache::clear() {
  MutexLock lock(impl_->mutex);
  impl_->index.clear();
  impl_->lru.clear();
}

void PlanCache::set_capacity(std::size_t capacity) {
  MutexLock lock(impl_->mutex);
  impl_->capacity = std::max<std::size_t>(1, capacity);
  while (impl_->lru.size() > impl_->capacity) {
    impl_->index.erase(impl_->lru.back().first);
    impl_->lru.pop_back();
    ++impl_->stats.evictions;
  }
}

PlanCache& plan_cache() { return PlanCache::instance(); }

}  // namespace tasd
