// GemmDispatch: the kernel registry every GEMM path routes through.
//
// All dense and N:M-compressed CPU kernels register here by name; callers
// pick one through an ExecPolicy (or take the default). This is the seam
// future backends (batched, sharded, SIMD-specialized) plug into without
// touching call sites, and what lets the benches sweep kernels and thread
// counts uniformly.
//
// Built-in dense kernels:
//   "tiled-parallel"  row-parallel, j-tiled, 4-wide k-unrolled (default)
//   "tiled-serial"    the same arithmetic on one thread
//   "reference"       the tensor/gemm_ref correctness oracle
// Built-in N:M kernels:
//   "row-parallel"    row-parallel compressed traversal (default)
//   "serial"          the same arithmetic on one thread
//
// Every kernel partitions work by output row with no shared float
// accumulation, so all of them produce bit-identical results at every
// thread count.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "sparse/nm_matrix.hpp"
#include "tensor/matrix.hpp"

namespace tasd::rt {

/// How a GEMM call should execute: which pool and which kernels. The
/// defaults (null pool, empty names) mean "the process default pool and
/// the registry's default kernels".
struct ExecPolicy {
  ThreadPool* pool = nullptr;
  std::string dense_kernel;
  std::string nm_kernel;
};

/// Resolve the pool an ExecPolicy designates.
ThreadPool& resolve_pool(const ExecPolicy& policy);

/// A dense kernel accumulates C += A * B using the given pool.
using DenseKernel = std::function<void(const MatrixF& a, const MatrixF& b,
                                       MatrixF& c, ThreadPool& pool)>;

/// An N:M kernel accumulates C += A * B for a compressed A.
using NmKernel =
    std::function<void(const sparse::NMSparseMatrix& a, const MatrixF& b,
                       MatrixF& c, ThreadPool& pool)>;

/// Thread-safe named registry of GEMM kernels.
class GemmDispatch {
 public:
  /// Process-wide registry, pre-populated with the built-ins.
  static GemmDispatch& instance();

  void register_dense(const std::string& name, DenseKernel kernel);
  void register_nm(const std::string& name, NmKernel kernel);
  void set_default_dense(const std::string& name);
  void set_default_nm(const std::string& name);

  /// Registered kernel names, sorted.
  [[nodiscard]] std::vector<std::string> dense_kernels() const;
  [[nodiscard]] std::vector<std::string> nm_kernels() const;
  [[nodiscard]] std::string default_dense() const;
  [[nodiscard]] std::string default_nm() const;

  /// Look up a kernel ("" = the default). Throws tasd::Error on unknown
  /// names.
  [[nodiscard]] DenseKernel dense(const std::string& name = {}) const;
  [[nodiscard]] NmKernel nm(const std::string& name = {}) const;

 private:
  GemmDispatch();
  struct Impl;
  Impl* impl_;
};

// ------------------------------------------------------ row-range cores
// The serial units the kernels partition over; exposed so composite
// kernels (TASD series) and tests can drive exact row ranges.

/// Dense C += A*B restricted to output rows [row_begin, row_end):
/// j-tiled, 4-wide k-unrolled, every MAC executed (no zero skip).
void dense_gemm_rows(const MatrixF& a, const MatrixF& b, MatrixF& c,
                     Index row_begin, Index row_end);

/// Compressed N:M C += A*B restricted to output rows [row_begin,
/// row_end).
void nm_gemm_rows(const sparse::NMSparseMatrix& a, const MatrixF& b,
                  MatrixF& c, Index row_begin, Index row_end);

}  // namespace tasd::rt
