// Runtime CPU feature detection for the SIMD kernel dispatch.
//
// The AVX2/FMA GEMM kernels (src/runtime/kernels_avx2.cpp) are compiled
// with -mavx2 -mfma whenever the compiler supports it, but executing them
// is gated here at runtime: GemmDispatch registers them only when
// avx2_available() — CPUID says AVX2+FMA, the OS saves YMM state, and the
// operator did not force the scalar fallback with TASD_DISABLE_AVX2.
// That split keeps one binary correct on every x86 machine and gives CI a
// knob to exercise both dispatch paths (see docs/kernels.md).
#pragma once

namespace tasd {

/// Raw instruction-set capabilities of the executing CPU/OS pair.
struct CpuFeatures {
  bool avx2 = false;    ///< CPUID.7.0:EBX[5]
  bool fma = false;     ///< CPUID.1:ECX[12]
  bool os_ymm = false;  ///< OSXSAVE set and XCR0 enables XMM+YMM state

  /// The AVX2/FMA kernels may execute: ISA present and OS-supported.
  [[nodiscard]] bool avx2_usable() const { return avx2 && fma && os_ymm; }
};

/// Probe CPUID/XGETBV. All-false on non-x86 targets. Not cached; the
/// answer never changes within a process.
CpuFeatures detect_cpu_features();

/// Pure selection policy, exposed for tests: the AVX2 kernels are enabled
/// exactly when the hardware can run them and the operator did not
/// disable them.
bool avx2_enabled(const CpuFeatures& features, bool disabled_by_env);

/// True when the TASD_DISABLE_AVX2 environment variable forces the scalar
/// fallback (set to any non-empty value other than "0").
bool avx2_disabled_by_env();

/// Cached process-wide answer combining detect_cpu_features() and
/// TASD_DISABLE_AVX2 — what GemmDispatch consults at registry
/// construction.
bool avx2_available();

}  // namespace tasd
