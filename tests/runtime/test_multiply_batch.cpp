// Bit-exactness of the batched serving path: dense_gemm_batch,
// nm_gemm_batch and TasdSeriesGemm::multiply_batch must produce outputs
// `==` to looping the single-RHS kernel over the batch, at every thread
// count, for every registered batch kernel, across ragged batch sizes
// and ragged per-item widths.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/decompose.hpp"
#include "core/plan_cache.hpp"
#include "kernel_families.hpp"
#include "runtime/dense_gemm.hpp"
#include "runtime/gemm_dispatch.hpp"
#include "runtime/nm_gemm.hpp"
#include "tensor/generator.hpp"

namespace tasd::rt {
namespace {

const std::size_t kThreadCounts[] = {0, 1, 2, 5, 8};

using testing::paired_single_kernel;

// Ragged batches: singleton, GEMV-style uniform width 1, ragged widths
// (including a zero-column item), and a batch larger than the tile grid's
// column grain would fill at width 1.
std::vector<std::vector<Index>> batch_shapes() {
  return {
      {5},
      {1, 1, 1},
      {3, 1, 16, 0, 7},
      std::vector<Index>(17, 1),
      {129, 2, 33},
  };
}

std::vector<MatrixF> make_batch(Index k, const std::vector<Index>& widths,
                                Rng& rng) {
  std::vector<MatrixF> bs;
  bs.reserve(widths.size());
  for (Index w : widths)
    bs.push_back(random_dense(k, w, Dist::kNormalStd1, rng));
  return bs;
}

TEST(MultiplyBatch, DenseBatchBitIdenticalToSingleLoop) {
  Rng rng(41);
  const MatrixF a = random_dense(33, 50, Dist::kNormalStd1, rng);
  for (const auto& widths : batch_shapes()) {
    const auto bs = make_batch(a.cols(), widths, rng);
    for (const std::string& kernel :
         GemmDispatch::instance().dense_batch_kernels()) {
      ExecPolicy single;
      single.dense_kernel = paired_single_kernel(kernel, true);
      std::vector<MatrixF> expected;
      for (const auto& b : bs) expected.push_back(dense_gemm(a, b, single));
      for (std::size_t threads : kThreadCounts) {
        ThreadPool pool(threads);
        ExecPolicy policy;
        policy.pool = &pool;
        policy.dense_batch_kernel = kernel;
        const auto cs = dense_gemm_batch(a, bs, policy);
        ASSERT_EQ(cs.size(), bs.size());
        for (std::size_t i = 0; i < cs.size(); ++i)
          EXPECT_TRUE(cs[i] == expected[i])
              << kernel << " threads=" << threads << " item=" << i;
      }
    }
  }
}

TEST(MultiplyBatch, NmBatchBitIdenticalToSingleLoop) {
  Rng rng(42);
  const MatrixF dense =
      random_unstructured(29, 48, 0.4, Dist::kNormalStd1, rng);
  const auto d = decompose(dense, TasdConfig::parse("2:4"));
  const sparse::NMSparseMatrix a = d.terms[0].compressed();
  for (const auto& widths : batch_shapes()) {
    const auto bs = make_batch(a.cols(), widths, rng);
    for (const std::string& kernel :
         GemmDispatch::instance().nm_batch_kernels()) {
      ExecPolicy single;
      single.nm_kernel = paired_single_kernel(kernel, false);
      std::vector<MatrixF> expected;
      for (const auto& b : bs) expected.push_back(nm_gemm(a, b, single));
      for (std::size_t threads : kThreadCounts) {
        ThreadPool pool(threads);
        ExecPolicy policy;
        policy.pool = &pool;
        policy.nm_batch_kernel = kernel;
        const auto cs = nm_gemm_batch(a, bs, policy);
        ASSERT_EQ(cs.size(), bs.size());
        for (std::size_t i = 0; i < cs.size(); ++i)
          EXPECT_TRUE(cs[i] == expected[i])
              << kernel << " threads=" << threads << " item=" << i;
      }
    }
  }
}

TEST(MultiplyBatch, SeriesBatchBitIdenticalToSingleLoop) {
  Rng rng(43);
  const MatrixF dense =
      random_unstructured(37, 56, 0.3, Dist::kNormalStd1, rng);
  const TasdSeriesGemm series(
      plan_cache().get_or_build(dense, TasdConfig::parse("4:8+1:8")));
  for (const auto& widths : batch_shapes()) {
    const auto bs = make_batch(series.cols(), widths, rng);
    for (const std::string& kernel :
         GemmDispatch::instance().nm_batch_kernels()) {
      ExecPolicy single;
      single.nm_kernel = paired_single_kernel(kernel, false);
      std::vector<MatrixF> expected;
      for (const auto& b : bs) expected.push_back(series.multiply(b, single));
      for (std::size_t threads : kThreadCounts) {
        ThreadPool pool(threads);
        ExecPolicy policy;
        policy.pool = &pool;
        policy.nm_batch_kernel = kernel;
        const auto cs = series.multiply_batch(bs, policy);
        ASSERT_EQ(cs.size(), bs.size());
        for (std::size_t i = 0; i < cs.size(); ++i)
          EXPECT_TRUE(cs[i] == expected[i])
              << kernel << " threads=" << threads << " item=" << i;
      }
    }
  }
}

TEST(MultiplyBatch, SharesOnePlanAcrossTheBatch) {
  Rng rng(44);
  const MatrixF dense =
      random_unstructured(16, 32, 0.5, Dist::kNormalStd1, rng);
  const auto cfg = TasdConfig::parse("2:8+1:8");
  const TasdSeriesGemm series(plan_cache().get_or_build(dense, cfg));
  const auto before = plan_cache().stats();
  const auto bs = make_batch(series.cols(), {1, 1, 1, 1, 1, 1, 1, 1}, rng);
  (void)series.multiply_batch(bs);
  const auto after = plan_cache().stats();
  EXPECT_EQ(after.decompositions, before.decompositions)
      << "a batched multiply must reuse the series' one plan, not "
         "decompose per item";
}

TEST(MultiplyBatch, EmptyBatchReturnsEmpty) {
  Rng rng(45);
  const MatrixF a = random_dense(8, 8, Dist::kNormalStd1, rng);
  EXPECT_TRUE(dense_gemm_batch(a, {}).empty());
  const auto d = decompose(a, TasdConfig::parse("2:4"));
  EXPECT_TRUE(nm_gemm_batch(d.terms[0].compressed(), {}).empty());
  const TasdSeriesGemm series(d);
  EXPECT_TRUE(series.multiply_batch({}).empty());
}

TEST(MultiplyBatch, MismatchedItemThrows) {
  Rng rng(46);
  const MatrixF a = random_dense(8, 12, Dist::kNormalStd1, rng);
  std::vector<MatrixF> bs;
  bs.push_back(random_dense(12, 3, Dist::kNormalStd1, rng));
  bs.push_back(random_dense(11, 3, Dist::kNormalStd1, rng));  // bad rows
  EXPECT_THROW(dense_gemm_batch(a, bs), Error);
  const TasdSeriesGemm series(decompose(a, TasdConfig::parse("2:4")));
  EXPECT_THROW(series.multiply_batch(bs), Error);
}

// --- TasdSeriesGemm shape validation: a wrong b.rows() must throw a
// tasd::Error whose message carries both operand shapes (not corrupt
// memory or return garbage), for the single-RHS and the batched path.

TEST(MultiplyBatch, SeriesMultiplyRejectsWrongInnerDimWithShapesInMessage) {
  Rng rng(47);
  const MatrixF a = random_dense(8, 12, Dist::kNormalStd1, rng);
  const TasdSeriesGemm series(decompose(a, TasdConfig::parse("2:4")));
  for (const Index rows : {Index{11}, Index{13}, Index{1}}) {
    const MatrixF bad = random_dense(rows, 3, Dist::kNormalStd1, rng);
    try {
      (void)series.multiply(bad);
      FAIL() << "multiply must reject a " << rows << "-row b";
    } catch (const Error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("8x12"), std::string::npos) << msg;
      EXPECT_NE(msg.find(std::to_string(rows) + "x3"), std::string::npos)
          << msg;
    }
  }
}

TEST(MultiplyBatch, SeriesMultiplyBatchNamesOffendingItem) {
  Rng rng(48);
  const MatrixF a = random_dense(8, 12, Dist::kNormalStd1, rng);
  const TasdSeriesGemm series(decompose(a, TasdConfig::parse("2:4")));
  std::vector<MatrixF> bs;
  bs.push_back(random_dense(12, 3, Dist::kNormalStd1, rng));
  bs.push_back(random_dense(12, 3, Dist::kNormalStd1, rng));
  bs.push_back(random_dense(9, 3, Dist::kNormalStd1, rng));  // bad rows
  try {
    (void)series.multiply_batch(bs);
    FAIL() << "multiply_batch must reject the mismatched item";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("item 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("9x3"), std::string::npos) << msg;
  }
}

TEST(MultiplyBatch, RegistryListsBatchBuiltinsAndDefaults) {
  auto& dispatch = GemmDispatch::instance();
  const auto dense_names = dispatch.dense_batch_kernels();
  const auto nm_names = dispatch.nm_batch_kernels();
  for (const auto& names : {dense_names, nm_names}) {
    EXPECT_NE(std::find(names.begin(), names.end(), "batch-packed"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "batch-loop"),
              names.end());
  }
  EXPECT_EQ(dispatch.default_dense_batch(), "batch-packed");
  EXPECT_EQ(dispatch.default_nm_batch(), "batch-packed");
  EXPECT_THROW(dispatch.dense_batch("no-such-kernel"), Error);
  EXPECT_THROW(dispatch.nm_batch("no-such-kernel"), Error);
}

}  // namespace
}  // namespace tasd::rt
