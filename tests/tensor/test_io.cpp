#include "tensor/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>

#include "common/rng.hpp"
#include "tensor/generator.hpp"

namespace tasd {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(MatrixIo, CsvRoundTripExact) {
  Rng rng(9101);
  const MatrixF m = random_unstructured(7, 11, 0.5, Dist::kNormalStd1, rng);
  const auto path = temp_path("m.csv");
  save_matrix_csv(m, path);
  EXPECT_EQ(load_matrix_csv(path), m);  // %.9g is lossless for float32
  std::remove(path.c_str());
}

TEST(MatrixIo, BinaryRoundTripExact) {
  Rng rng(9102);
  const MatrixF m = random_dense(13, 5, Dist::kNormalStd1, rng);
  const auto path = temp_path("m.bin");
  save_matrix_binary(m, path);
  EXPECT_EQ(load_matrix_binary(path), m);
  std::remove(path.c_str());
}

TEST(MatrixIo, MissingFileThrows) {
  EXPECT_THROW(load_matrix_csv("/nonexistent/nope.csv"), Error);
  EXPECT_THROW(load_matrix_binary("/nonexistent/nope.bin"), Error);
}

TEST(MatrixIo, RaggedCsvRejected) {
  const auto path = temp_path("ragged.csv");
  std::ofstream(path) << "1,2,3\n4,5\n";
  EXPECT_THROW(load_matrix_csv(path), Error);
  std::remove(path.c_str());
}

TEST(MatrixIo, MalformedCellRejected) {
  const auto path = temp_path("bad.csv");
  std::ofstream(path) << "1,abc\n";
  EXPECT_THROW(load_matrix_csv(path), Error);
  std::remove(path.c_str());
}

TEST(MatrixIo, EmptyCsvRejected) {
  const auto path = temp_path("empty.csv");
  std::ofstream(path) << "";
  EXPECT_THROW(load_matrix_csv(path), Error);
  std::remove(path.c_str());
}

TEST(MatrixIo, WrongMagicRejected) {
  const auto path = temp_path("notmat.bin");
  std::ofstream(path, std::ios::binary) << "GARBAGE!" << std::string(16, 'x');
  EXPECT_THROW(load_matrix_binary(path), Error);
  std::remove(path.c_str());
}

/// The error code a callable fails with (nullopt = it didn't throw).
template <typename Fn>
std::optional<Error::Code> failure_code(Fn&& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.code();
  }
  return std::nullopt;
}

TEST(MatrixIo, WrongMagicIsFailedPrecondition) {
  const auto path = temp_path("notmat2.bin");
  std::ofstream(path, std::ios::binary) << "GARBAGE!" << std::string(16, 'x');
  EXPECT_EQ(failure_code([&] { (void)load_matrix_binary(path); }),
            Error::Code::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(MatrixIo, BinaryTruncationIsInternal) {
  Rng rng(9103);
  const MatrixF m = random_dense(6, 9, Dist::kNormalStd1, rng);
  const auto path = temp_path("trunc.bin");
  save_matrix_binary(m, path);
  const auto bytes = io::read_file(path);
  // Shorter than the magic, mid-header, and mid-payload.
  for (const std::size_t keep : {std::size_t{4}, std::size_t{12},
                                 bytes.size() - 3}) {
    io::write_file(path, std::span(bytes).subspan(0, keep));
    EXPECT_EQ(failure_code([&] { (void)load_matrix_binary(path); }),
              Error::Code::kInternal)
        << "kept " << keep << " of " << bytes.size() << " bytes";
  }
  std::remove(path.c_str());
}

TEST(MatrixIo, BinaryTrailingBytesAreInternal) {
  Rng rng(9104);
  const MatrixF m = random_dense(3, 4, Dist::kNormalStd1, rng);
  const auto path = temp_path("trail.bin");
  save_matrix_binary(m, path);
  auto bytes = io::read_file(path);
  bytes.push_back(0);
  io::write_file(path, bytes);
  EXPECT_EQ(failure_code([&] { (void)load_matrix_binary(path); }),
            Error::Code::kInternal);
  std::remove(path.c_str());
}

TEST(MatrixIo, BinarySizeOverflowHeaderIsInternal) {
  // rows * cols wraps past 2^32: the reader must refuse before
  // attempting a bogus allocation or a short read.
  const auto path = temp_path("overflow.bin");
  io::ByteWriter w;
  w.bytes("TASDMAT1", 8);
  w.u64(1ULL << 31);
  w.u64(1ULL << 31);
  io::write_file(path, w.data());
  EXPECT_EQ(failure_code([&] { (void)load_matrix_binary(path); }),
            Error::Code::kInternal);
  std::remove(path.c_str());
}

TEST(MatrixIo, ByteWriterReaderRoundTripAndPadding) {
  io::ByteWriter w;
  w.u32(0x01020304U);
  w.f32(-1.5F);
  w.pad_to(8);
  w.u64(0x1122334455667788ULL);
  w.f64(2.5);
  const std::vector<float> fs{1.0F, -0.0F, 3.5F};
  w.f32_array(fs);
  w.pad_to(8);
  EXPECT_EQ(w.size() % 8, 0u);
  // The stream is defined little-endian regardless of host order.
  EXPECT_EQ(w.data()[0], 0x04);
  EXPECT_EQ(w.data()[3], 0x01);

  io::ByteReader r(w.data(), "round-trip");
  EXPECT_EQ(r.u32(), 0x01020304U);
  EXPECT_EQ(r.f32(), -1.5F);
  r.skip_pad(8);
  EXPECT_EQ(r.u64(), 0x1122334455667788ULL);
  EXPECT_EQ(r.f64(), 2.5);
  std::vector<float> back(3);
  r.f32_array(back);
  EXPECT_EQ(back, fs);
  r.skip_pad(8);
  EXPECT_EQ(r.remaining(), 0u);
  // Over-read past the end: typed kInternal naming the context.
  EXPECT_EQ(failure_code([&] { (void)r.u32(); }), Error::Code::kInternal);
}

TEST(MatrixIo, SpecialValuesSurviveCsv) {
  MatrixF m(1, 3, {-0.0F, 1e-38F, 3.4e38F});
  const auto path = temp_path("special.csv");
  save_matrix_csv(m, path);
  const MatrixF back = load_matrix_csv(path);
  EXPECT_EQ(back(0, 1), 1e-38F);
  EXPECT_EQ(back(0, 2), 3.4e38F);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tasd
