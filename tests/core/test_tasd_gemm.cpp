#include "core/tasd_gemm.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/gemm_ref.hpp"
#include "tensor/generator.hpp"
#include "tensor/norms.hpp"

namespace tasd {
namespace {

TEST(TasdGemm, LosslessSeriesMatchesDenseGemm) {
  Rng rng(81);
  const MatrixF a = random_nm_structured(8, 16, 2, 4, Dist::kNormalStd1, rng);
  const MatrixF b = random_dense(16, 6, Dist::kNormalStd1, rng);
  const MatrixF c = tasd_gemm(a, b, TasdConfig::parse("2:4"));
  EXPECT_TRUE(allclose(c, gemm_ref(a, b), 1e-4, 1e-5));
}

TEST(TasdGemm, DistributivityOverTerms) {
  // C from the series equals the sum of per-term GEMMs by construction;
  // verify against an independently computed sum.
  Rng rng(82);
  const MatrixF a = random_dense(8, 32, Dist::kNormalStd1, rng);
  const MatrixF b = random_dense(32, 5, Dist::kNormalStd1, rng);
  const auto d = decompose(a, TasdConfig::parse("2:8+2:8"));
  MatrixF expected(8, 5);
  for (const auto& t : d.terms) expected += gemm_ref(t.dense, b);
  EXPECT_TRUE(allclose(tasd_gemm(d, b), expected, 1e-5, 1e-6));
}

TEST(TasdGemm, ErrorEqualsResidualTimesB) {
  Rng rng(83);
  const MatrixF a = random_unstructured(8, 24, 0.8, Dist::kNormalStd1, rng);
  const MatrixF b = random_dense(24, 4, Dist::kNormalStd1, rng);
  const auto d = decompose(a, TasdConfig::parse("1:4"));
  const MatrixF approx_c = tasd_gemm(d, b);
  const MatrixF exact_c = gemm_ref(a, b);
  const MatrixF residual_c = gemm_ref(d.residual, b);
  EXPECT_TRUE(allclose(exact_c - approx_c, residual_c, 1e-4, 1e-4));
}

TEST(TasdGemm, InnerDimMismatchThrows) {
  MatrixF a(4, 8);
  MatrixF b(7, 3);
  EXPECT_THROW(tasd_gemm(a, b, TasdConfig::parse("2:4")), Error);
}

TEST(TasdGemm, MacCountsMatchTermNnz) {
  Rng rng(84);
  const MatrixF a = random_unstructured(8, 32, 0.5, Dist::kNormalStd1, rng);
  const auto d = decompose(a, TasdConfig::parse("2:8+1:8"));
  Index nnz = 0;
  for (const auto& t : d.terms) nnz += t.dense.nnz();
  EXPECT_EQ(tasd_gemm_macs(d, 10), nnz * 10);
  EXPECT_EQ(dense_gemm_macs(8, 32, 10), 8u * 32u * 10u);
}

TEST(TasdGemm, MoreAggressiveSeriesLargerError) {
  // Paper Fig. 18: higher approximated sparsity -> larger matmul error.
  Rng rng(85);
  const MatrixF a = random_unstructured(64, 64, 0.8, Dist::kUniform01, rng);
  const MatrixF b = random_dense(64, 64, Dist::kUniform01, rng);
  const MatrixF exact = gemm_ref(a, b);
  const double e_aggressive = relative_frobenius_error(
      exact, tasd_gemm(a, b, TasdConfig::parse("1:8")));
  const double e_moderate = relative_frobenius_error(
      exact, tasd_gemm(a, b, TasdConfig::parse("4:8")));
  const double e_mild = relative_frobenius_error(
      exact, tasd_gemm(a, b, TasdConfig::parse("6:8")));
  EXPECT_GT(e_aggressive, e_moderate);
  EXPECT_GT(e_moderate, e_mild);
}

TEST(TasdGemm, EmptyConfigYieldsZero) {
  Rng rng(86);
  const MatrixF a = random_dense(4, 8, Dist::kNormalStd1, rng);
  const MatrixF b = random_dense(8, 3, Dist::kNormalStd1, rng);
  const MatrixF c = tasd_gemm(a, b, TasdConfig{});
  for (float v : c.flat()) EXPECT_EQ(v, 0.0F);
}

}  // namespace
}  // namespace tasd
