// CPU feature detection and the AVX2 enablement policy (the gate the
// GemmDispatch registry consults before registering the SIMD kernels).
#include "common/cpu_features.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace tasd {
namespace {

TEST(CpuFeatures, DetectionIsStableWithinAProcess) {
  const CpuFeatures a = detect_cpu_features();
  const CpuFeatures b = detect_cpu_features();
  EXPECT_EQ(a.avx2, b.avx2);
  EXPECT_EQ(a.fma, b.fma);
  EXPECT_EQ(a.os_ymm, b.os_ymm);
}

TEST(CpuFeatures, Avx2UsableRequiresIsaAndOsSupport) {
  CpuFeatures f;
  EXPECT_FALSE(f.avx2_usable());
  f.avx2 = true;
  f.fma = true;
  EXPECT_FALSE(f.avx2_usable()) << "OS must save YMM state";
  f.os_ymm = true;
  EXPECT_TRUE(f.avx2_usable());
  f.fma = false;
  EXPECT_FALSE(f.avx2_usable()) << "the kernels use FMA instructions";
}

TEST(CpuFeatures, EnablementPolicyHonorsTheDisableFlag) {
  // The pure policy behind avx2_available(): hardware support is
  // necessary, and TASD_DISABLE_AVX2 vetoes it — the forced-fallback
  // path the scalar CI leg runs.
  CpuFeatures capable;
  capable.avx2 = capable.fma = capable.os_ymm = true;
  EXPECT_TRUE(avx2_enabled(capable, /*disabled_by_env=*/false));
  EXPECT_FALSE(avx2_enabled(capable, /*disabled_by_env=*/true));
  EXPECT_FALSE(avx2_enabled(CpuFeatures{}, /*disabled_by_env=*/false));
  EXPECT_FALSE(avx2_enabled(CpuFeatures{}, /*disabled_by_env=*/true));
}

TEST(CpuFeatures, DisableFlagParsesLikeABoolean) {
  // Empty and "0" mean "not disabled"; anything else disables. Restore
  // the variable afterwards so sibling tests see the process's real
  // environment.
  const char* saved = std::getenv("TASD_DISABLE_AVX2");
  const std::string saved_value = saved ? saved : "";
  const bool had = saved != nullptr;

  unsetenv("TASD_DISABLE_AVX2");
  EXPECT_FALSE(avx2_disabled_by_env());
  setenv("TASD_DISABLE_AVX2", "", 1);
  EXPECT_FALSE(avx2_disabled_by_env());
  setenv("TASD_DISABLE_AVX2", "0", 1);
  EXPECT_FALSE(avx2_disabled_by_env());
  setenv("TASD_DISABLE_AVX2", "1", 1);
  EXPECT_TRUE(avx2_disabled_by_env());
  setenv("TASD_DISABLE_AVX2", "yes", 1);
  EXPECT_TRUE(avx2_disabled_by_env());

  if (had)
    setenv("TASD_DISABLE_AVX2", saved_value.c_str(), 1);
  else
    unsetenv("TASD_DISABLE_AVX2");
}

TEST(CpuFeatures, CachedAvailabilityMatchesThePolicy) {
  // avx2_available() caches the process-start answer; it must equal the
  // policy applied to the current probe as long as the env var did not
  // change after first use (this suite restores it above).
  EXPECT_EQ(avx2_available(),
            avx2_enabled(detect_cpu_features(), avx2_disabled_by_env()));
  EXPECT_EQ(avx512_available(),
            avx512_enabled(detect_cpu_features(), avx512_disabled_by_env()));
}

TEST(CpuFeatures, Avx512UsableRequiresFoundationBwAndZmmState) {
  // The f32 kernels need AVX512F (arithmetic) + AVX512BW (mask ops) and
  // an OS that context-switches ZMM and opmask registers. VNNI is
  // detected and reported but NOT required — the kernels are f32 FMA.
  CpuFeatures f;
  EXPECT_FALSE(f.avx512_usable());
  f.avx512f = true;
  EXPECT_FALSE(f.avx512_usable()) << "BW is required for mask ops";
  f.avx512bw = true;
  EXPECT_FALSE(f.avx512_usable()) << "OS must save ZMM/opmask state";
  f.os_zmm = true;
  EXPECT_TRUE(f.avx512_usable());
  f.avx512vnni = false;
  EXPECT_TRUE(f.avx512_usable()) << "VNNI must not gate the f32 kernels";
  f.avx512f = false;
  EXPECT_FALSE(f.avx512_usable());
}

TEST(CpuFeatures, Avx512EnablementPolicyHonorsTheDisableFlag) {
  CpuFeatures capable;
  capable.avx512f = capable.avx512bw = capable.os_zmm = true;
  EXPECT_TRUE(avx512_enabled(capable, /*disabled_by_env=*/false));
  EXPECT_FALSE(avx512_enabled(capable, /*disabled_by_env=*/true));
  EXPECT_FALSE(avx512_enabled(CpuFeatures{}, /*disabled_by_env=*/false));
  EXPECT_FALSE(avx512_enabled(CpuFeatures{}, /*disabled_by_env=*/true));
}

TEST(CpuFeatures, SimdDisableFlagsAreIndependent) {
  // TASD_DISABLE_AVX512=1 alone must leave AVX2 enabled (the avx2 CI
  // leg); disabling both is the scalar leg. Each flag only vetoes its
  // own family.
  const char* saved = std::getenv("TASD_DISABLE_AVX512");
  const std::string saved_value = saved ? saved : "";
  const bool had = saved != nullptr;

  unsetenv("TASD_DISABLE_AVX512");
  EXPECT_FALSE(avx512_disabled_by_env());
  setenv("TASD_DISABLE_AVX512", "0", 1);
  EXPECT_FALSE(avx512_disabled_by_env());
  setenv("TASD_DISABLE_AVX512", "1", 1);
  EXPECT_TRUE(avx512_disabled_by_env());
  // The AVX2 flag reads its own variable, not this one.
  CpuFeatures capable;
  capable.avx2 = capable.fma = capable.os_ymm = true;
  EXPECT_TRUE(avx2_enabled(capable, /*disabled_by_env=*/false));

  if (had)
    setenv("TASD_DISABLE_AVX512", saved_value.c_str(), 1);
  else
    unsetenv("TASD_DISABLE_AVX512");
}

TEST(CpuFeatures, SignatureIsStableAndReflectsTheCandidatePool) {
  // cpu_signature() keys artifact tuning sections: it must be stable
  // within a process and encode the *effective* SIMD availability (a
  // binding tuned with AVX-512 on must not transfer to a run with it
  // disabled — the candidate pool differs).
  const std::string a = cpu_signature();
  EXPECT_EQ(a, cpu_signature());
  EXPECT_FALSE(a.empty());
  const std::string avx2_tag = std::string("avx2=") +
                               (avx2_available() ? "1" : "0");
  const std::string avx512_tag = std::string("avx512=") +
                                 (avx512_available() ? "1" : "0");
  EXPECT_NE(a.find(avx2_tag), std::string::npos) << a;
  EXPECT_NE(a.find(avx512_tag), std::string::npos) << a;
}

TEST(CpuFeatures, SignatureEnvOverrideWinsForTesting) {
  // TASD_CPU_SIGNATURE is the test seam the artifact host-mismatch
  // tests use: it replaces the probed signature wholesale and is read
  // per call, so setting/unsetting inside one process works.
  const std::string real = cpu_signature();
  setenv("TASD_CPU_SIGNATURE", "some-other-machine|avx2=0,avx512=0", 1);
  EXPECT_EQ(cpu_signature(), "some-other-machine|avx2=0,avx512=0");
  unsetenv("TASD_CPU_SIGNATURE");
  EXPECT_EQ(cpu_signature(), real);
}

}  // namespace
}  // namespace tasd
