#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <sstream>

namespace tasd {

void TextTable::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
  return os.str();
}

std::string TextTable::str() const {
  // Compute column widths over header + rows.
  std::vector<std::size_t> width;
  auto absorb = [&width](const std::vector<std::string>& cells) {
    if (cells.size() > width.size()) width.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      width[i] = std::max(width[i], cells[i].size());
  };
  absorb(header_);
  for (const auto& r : rows_) absorb(r);

  std::ostringstream os;
  auto emit = [&os, &width](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      os << std::left << std::setw(static_cast<int>(width[i]) + 2) << c;
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (auto w : width) total += w + 2;
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void TextTable::print() const { std::cout << str(); }

void print_banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

}  // namespace tasd
