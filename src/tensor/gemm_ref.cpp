#include "tensor/gemm_ref.hpp"

namespace tasd {

MatrixF gemm_ref(const MatrixF& a, const MatrixF& b) {
  MatrixF c(a.rows(), b.cols());
  gemm_ref_accumulate(a, b, c);
  return c;
}

void gemm_ref_accumulate(const MatrixF& a, const MatrixF& b, MatrixF& c) {
  TASD_CHECK_MSG(a.cols() == b.rows(), "GEMM inner dim mismatch: A is "
                                           << a.rows() << "x" << a.cols()
                                           << ", B is " << b.rows() << "x"
                                           << b.cols());
  TASD_CHECK(c.rows() == a.rows() && c.cols() == b.cols());
  gemm_ref_accumulate_rows(a, b, c, 0, a.rows());
}

void gemm_ref_accumulate_rows(const MatrixF& a, const MatrixF& b, MatrixF& c,
                              Index row_begin, Index row_end) {
  const Index k = a.cols(), n = b.cols();
  // i-k-j loop order keeps B and C accesses sequential.
  for (Index i = row_begin; i < row_end; ++i) {
    for (Index p = 0; p < k; ++p) {
      const float av = a(i, p);
      if (av == 0.0F) continue;  // honest work-skipping for sparse A
      const float* brow = b.data() + p * n;
      float* crow = c.data() + i * n;
      for (Index j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace tasd
