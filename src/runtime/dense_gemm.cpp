#include "runtime/dense_gemm.hpp"

#include "common/error.hpp"

namespace tasd::rt {

MatrixF dense_gemm(const MatrixF& a, const MatrixF& b,
                   const ExecPolicy& policy) {
  MatrixF c(a.rows(), b.cols());
  dense_gemm_accumulate(a, b, c, policy);
  return c;
}

void dense_gemm_accumulate(const MatrixF& a, const MatrixF& b, MatrixF& c,
                           const ExecPolicy& policy) {
  TASD_CHECK_MSG(a.cols() == b.rows(), "GEMM inner dim mismatch");
  TASD_CHECK(c.rows() == a.rows() && c.cols() == b.cols());
  GemmDispatch::instance().dense(policy.dense_kernel)(a, b, c,
                                                      resolve_pool(policy));
}

}  // namespace tasd::rt
