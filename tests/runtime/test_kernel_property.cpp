// Property sweep: the timed runtime kernels agree bit-for-bit in shape
// and numerically with the functional model across patterns/densities.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/decompose.hpp"
#include "runtime/dense_gemm.hpp"
#include "runtime/nm_gemm.hpp"
#include "tensor/gemm_ref.hpp"
#include "tensor/generator.hpp"
#include "tensor/norms.hpp"

namespace tasd::rt {
namespace {

struct KernelCase {
  const char* config;
  double density;
  Index m, k, n;
};

void PrintTo(const KernelCase& c, std::ostream* os) {
  *os << c.config << " d=" << c.density << " " << c.m << "x" << c.k << "x"
      << c.n;
}

class KernelEquivalence : public ::testing::TestWithParam<KernelCase> {};

TEST_P(KernelEquivalence, SeriesKernelMatchesFunctionalModel) {
  const auto p = GetParam();
  Rng rng(3000 + p.m + p.k);
  const MatrixF a =
      random_unstructured(p.m, p.k, p.density, Dist::kNormalStd1, rng);
  const MatrixF b = random_dense(p.k, p.n, Dist::kNormalStd1, rng);
  const auto d = decompose(a, TasdConfig::parse(p.config));
  const TasdSeriesGemm series(d);
  const MatrixF kernel_out = series.multiply(b);
  const MatrixF functional = gemm_ref(d.approximation(), b);
  EXPECT_TRUE(allclose(kernel_out, functional, 1e-4, 1e-4));
}

TEST_P(KernelEquivalence, DenseKernelMatchesReference) {
  const auto p = GetParam();
  Rng rng(4000 + p.m + p.k);
  const MatrixF a =
      random_unstructured(p.m, p.k, p.density, Dist::kNormalStd1, rng);
  const MatrixF b = random_dense(p.k, p.n, Dist::kNormalStd1, rng);
  EXPECT_TRUE(allclose(dense_gemm(a, b), gemm_ref(a, b), 1e-4, 1e-4));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KernelEquivalence,
    ::testing::Values(KernelCase{"2:4", 0.1, 16, 32, 8},
                      KernelCase{"2:4", 0.9, 16, 32, 8},
                      KernelCase{"1:8", 0.05, 32, 64, 4},
                      KernelCase{"4:8", 0.5, 8, 64, 16},
                      KernelCase{"4:8+1:8", 0.4, 16, 48, 8},
                      KernelCase{"2:8+1:8", 0.2, 8, 40, 12},
                      KernelCase{"2:4+2:8", 0.7, 16, 30, 5},  // ragged K
                      KernelCase{"1:4", 1.0, 4, 7, 3}));      // tiny ragged

TEST(KernelEdgeCases, OneByOne) {
  MatrixF a(1, 1, {3.0F});
  MatrixF b(1, 1, {4.0F});
  EXPECT_EQ(dense_gemm(a, b)(0, 0), 12.0F);
  const auto d = decompose(a, TasdConfig::parse("1:4"));
  EXPECT_EQ(TasdSeriesGemm(d).multiply(b)(0, 0), 12.0F);
}

TEST(KernelEdgeCases, EmptyOutputColumns) {
  Rng rng(5000);
  const MatrixF a = random_dense(4, 8, Dist::kNormalStd1, rng);
  const MatrixF b(8, 0);
  const MatrixF c = dense_gemm(a, b);
  EXPECT_EQ(c.cols(), 0u);
}

}  // namespace
}  // namespace tasd::rt
