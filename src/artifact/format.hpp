// TASDART1 on-disk format constants + CRC (docs/artifact.md).
//
// Layout (all integers little-endian; offsets from file start):
//
//   header   64 bytes, fixed — see the kHeader*Offset constants
//   name     network name bytes (header names the length), zero-padded
//            to the next 64-byte boundary
//   TOC      layer_count fixed 48-byte entries (kTocEntryBytes), one per
//            layer, CRC'd as a whole (header stores the CRC)
//   sections one per layer, each 64-byte aligned, individually CRC'd
//            (the TOC stores offset/size/CRC and the weight's 128-bit
//            content fingerprint)
//   tuning   optional trailing section, 64-byte aligned, CRC'd (the
//            header stores its crc/offset/size in the former reserved
//            bytes): the serialized per-layer TuningResult plus the
//            host CPU signature it was measured under
//
// The fixed-width, aligned layout is deliberately mmap-friendly: every
// integer field sits at a natural alignment, sections start on cache-
// line boundaries, and the TOC locates every payload without parsing
// the sections — a future zero-copy loader can bind term buffers
// straight out of a mapping. The v1 reader copies (NMSparseMatrix owns
// its storage) but validates exactly the same invariants.
//
// These constants are public so tooling and the corruption-matrix tests
// (tests/artifact/) can locate and patch specific fields; the reader/
// writer in artifact.cpp is the only code that should interpret whole
// files.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tasd::artifact {

inline constexpr char kMagic[8] = {'T', 'A', 'S', 'D', 'A', 'R', 'T', '1'};
inline constexpr std::uint32_t kVersion = 1;

/// Fixed header size; the name bytes follow it.
inline constexpr std::size_t kHeaderBytes = 64;
/// Alignment of the TOC and of every layer section.
inline constexpr std::size_t kSectionAlign = 64;
/// Fixed TOC entry size.
inline constexpr std::size_t kTocEntryBytes = 48;

// Header field offsets (sizes in the comments).
inline constexpr std::size_t kHeaderMagicOffset = 0;       // char[8]
inline constexpr std::size_t kHeaderVersionOffset = 8;     // u32
inline constexpr std::size_t kHeaderHeaderBytesOffset = 12;  // u32 (= 64)
inline constexpr std::size_t kHeaderLayerCountOffset = 16;   // u32
inline constexpr std::size_t kHeaderNameLenOffset = 20;      // u32
inline constexpr std::size_t kHeaderFileSizeOffset = 24;     // u64
inline constexpr std::size_t kHeaderTocOffsetOffset = 32;    // u64
inline constexpr std::size_t kHeaderTocCrcOffset = 40;       // u32
// Optional tuning section (per-layer autotuning results; docs/artifact.md
// § Tuning section). offset == 0 and size == 0 — what v1 writers put in
// these then-reserved bytes — means "absent", so pre-tuning files load
// unchanged and pre-tuning readers ignore the trailing section.
inline constexpr std::size_t kHeaderTuningCrcOffset = 44;     // u32
inline constexpr std::size_t kHeaderTuningOffsetOffset = 48;  // u64
inline constexpr std::size_t kHeaderTuningSizeOffset = 56;    // u64

// TOC entry field offsets, relative to the entry start.
inline constexpr std::size_t kTocFpLoOffset = 0;           // u64
inline constexpr std::size_t kTocFpHiOffset = 8;           // u64
inline constexpr std::size_t kTocSectionOffsetOffset = 16;  // u64
inline constexpr std::size_t kTocSectionSizeOffset = 24;    // u64
inline constexpr std::size_t kTocSectionCrcOffset = 32;     // u32
inline constexpr std::size_t kTocFlagsOffset = 36;          // u32
// [40, 48): reserved, written as zero.

/// TOC entry flag: the layer carries a TASD config + serialized plan.
inline constexpr std::uint32_t kFlagConfigured = 1U << 0;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `size`
/// bytes, continuing from `seed` (pass a previous return value to
/// checksum discontiguous ranges).
std::uint32_t crc32(const unsigned char* data, std::size_t size,
                    std::uint32_t seed = 0);

}  // namespace tasd::artifact
