// Sparsity statistics: degree, per-block histograms, magnitude coverage.
// These drive both TASDER's selection heuristics and the Fig. 6 / Fig. 17
// experiments.
#pragma once

#include <vector>

#include "sparse/pattern.hpp"
#include "tensor/matrix.hpp"

namespace tasd::sparse {

/// Histogram of per-block non-zero counts for block size M: result[k] =
/// number of blocks with exactly k non-zeros (k in 0..M).
std::vector<Index> block_nnz_histogram(const MatrixF& matrix, int m);

/// Fraction of non-zeros that an N:M view of `matrix` would keep.
double view_nnz_coverage(const MatrixF& matrix, const NMPattern& pattern);

/// Fraction of total |magnitude| that an N:M view of `matrix` would keep.
double view_magnitude_coverage(const MatrixF& matrix,
                               const NMPattern& pattern);

/// Density (1 - sparsity) of a matrix.
double density(const MatrixF& matrix);

/// Pseudo-density (paper §4.3): the smallest fraction q of elements
/// (taken in decreasing |magnitude| order) whose magnitude sum reaches
/// `coverage` (e.g. 0.99) of the total magnitude sum. Dense-but-skewed
/// tensors (GELU activations) get a small pseudo-density even though their
/// literal density is 1.0. Returns 0 for an all-zero matrix.
double pseudo_density(const MatrixF& matrix, double coverage);

}  // namespace tasd::sparse
