#include "runtime/compiled_network.hpp"

#include <cmath>
#include <numeric>
#include <utility>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "runtime/dense_gemm.hpp"
#include "tensor/generator.hpp"

namespace tasd::rt {

double network_latency_ms(const std::vector<LayerTiming>& timings,
                          const std::vector<std::size_t>& order,
                          std::size_t num_converted) {
  TASD_CHECK_MSG(num_converted <= order.size(),
                 "num_converted exceeds layer count");
  std::vector<bool> converted(timings.size(), false);
  for (std::size_t i = 0; i < num_converted; ++i) converted[order[i]] = true;
  double total = 0.0;
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const auto& t = timings[i];
    // A converted layer keeps the faster of its two measured engines.
    total += converted[i] ? t.best_ms() : t.dense_ms;
  }
  return total;
}

std::vector<std::size_t> conversion_order(
    const std::vector<LayerTiming>& timings) {
  std::vector<std::size_t> order(timings.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // conversion_savings_ms() is zero for unconfigured layers and for
  // configured layers whose TASD series measured slower than dense, so
  // neither can rank ahead of a layer with a real saving.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double save_a = timings[a].conversion_savings_ms();
    const double save_b = timings[b].conversion_savings_ms();
    if (save_a != save_b) return save_a > save_b;
    return a < b;
  });
  return order;
}

Index measured_n(Index n, Index n_divisor) {
  return std::max<Index>({Index{1}, (n + n_divisor / 2) / n_divisor,
                          std::min<Index>(n, n_divisor - 1)});
}

const CompiledNetwork::BoundLayer& CompiledNetwork::layer(
    std::size_t i) const {
  TASD_CHECK_MSG(i < layers_.size(), "layer index " << i << " out of range ("
                                                    << layers_.size()
                                                    << " layers)");
  return layers_[i];
}

std::size_t CompiledNetwork::configured_count() const {
  std::size_t n = 0;
  for (const auto& l : layers_)
    if (l.series) ++n;
  return n;
}

Index CompiledNetwork::plan_bytes() const {
  Index total = 0;
  for (const auto& l : layers_)
    if (l.plan) total += l.plan->storage_bytes();
  return total;
}

Index CompiledNetwork::artifact_bytes() const {
  Index total = 0;
  for (const auto& l : layers_) {
    total += l.weight.size() * sizeof(float);
    if (l.plan) {
      total += l.plan->storage_bytes();
      // Plan metadata: shape, the config's term patterns, quality stats.
      total += 2 * sizeof(Index) + sizeof(ApproxStats) +
               l.plan->config.terms.size() * sizeof(sparse::NMPattern);
    }
  }
  return total;
}

ExecPolicy CompiledNetwork::policy() const {
  ExecPolicy p;
  p.pool = pool_.get();
  p.dense_kernel = opt_.dense_kernel;
  p.nm_kernel = opt_.nm_kernel;
  p.dense_batch_kernel = opt_.dense_batch_kernel;
  p.nm_batch_kernel = opt_.nm_batch_kernel;
  return p;
}

ExecPolicy CompiledNetwork::layer_policy(std::size_t i) const {
  const BoundLayer& l = layer(i);
  ExecPolicy p = policy();
  // Only the slot pair the layer executes is overridden: a configured
  // layer runs its series through the N:M kernels, a dense layer runs
  // dense_gemm. The other pair keeps the network-wide names (it is only
  // reached by measure()'s explicit dense-vs-TASD comparison).
  if (l.series) {
    p.nm_kernel = l.kernel;
    p.nm_batch_kernel = l.batch_kernel;
  } else {
    p.dense_kernel = l.kernel;
    p.dense_batch_kernel = l.batch_kernel;
  }
  return p;
}

void CompiledNetwork::validate_input(std::size_t layer_index,
                                     const MatrixF& input,
                                     std::size_t item) const {
  const BoundLayer& l = layer(layer_index);
  const bool in_batch = item != static_cast<std::size_t>(-1);
  if (input.rows() != l.k) {
    std::ostringstream os;
    os << "layer '" << l.name << "' expects a " << l.k
       << "-row right-hand side, got " << input.rows() << "x" << input.cols();
    if (in_batch) os << " at item " << item;
    throw Error(Error::Code::kInvalidArgument, os.str());
  }
  if (!opt_.validate_inputs) return;
  const auto flat = input.flat();
  for (std::size_t i = 0; i < flat.size(); ++i) {
    if (std::isfinite(flat[i])) continue;
    std::ostringstream os;
    os << "layer '" << l.name << "' input contains a non-finite value ("
       << flat[i] << ") at (" << i / input.cols() << "," << i % input.cols()
       << ")";
    if (in_batch) os << " in batch item " << item;
    throw Error(Error::Code::kInvalidArgument, os.str());
  }
}

MatrixF CompiledNetwork::run(std::size_t layer_index,
                             const MatrixF& input) const {
  const BoundLayer& l = layer(layer_index);
  validate_input(layer_index, input);
  fault::inject("rt.run", l.name);
  const ExecPolicy p = layer_policy(layer_index);
  return l.series ? l.series->multiply(input, p)
                  : dense_gemm(l.weight, input, p);
}

std::vector<MatrixF> CompiledNetwork::run_batch(
    std::size_t layer_index, std::span<const MatrixF> inputs) const {
  const BoundLayer& l = layer(layer_index);
  for (std::size_t i = 0; i < inputs.size(); ++i)
    validate_input(layer_index, inputs[i], i);
  fault::inject("rt.run_batch", l.name);
  const ExecPolicy p = layer_policy(layer_index);
  return l.series ? l.series->multiply_batch(inputs, p)
                  : dense_gemm_batch(l.weight, inputs, p);
}

bool CompiledNetwork::is_chain() const {
  for (std::size_t i = 1; i < layers_.size(); ++i)
    if (layers_[i].k != layers_[i - 1].m) return false;
  return true;
}

MatrixF CompiledNetwork::run_network(const MatrixF& input) const {
  TASD_CHECK_MSG(!layers_.empty(), "run_network on an empty artifact");
  TASD_CHECK_MSG(is_chain(),
                 "run_network requires a layer chain (every layer's k == "
                 "previous layer's m)");
  MatrixF act = run(0, input);
  for (std::size_t l = 1; l < layers_.size(); ++l) act = run(l, act);
  return act;
}

std::vector<MatrixF> CompiledNetwork::run_network_batch(
    std::span<const MatrixF> inputs) const {
  TASD_CHECK_MSG(!layers_.empty(), "run_network_batch on an empty artifact");
  TASD_CHECK_MSG(is_chain(),
                 "run_network_batch requires a layer chain (every layer's "
                 "k == previous layer's m)");
  std::vector<MatrixF> acts = run_batch(0, inputs);
  for (std::size_t l = 1; l < layers_.size(); ++l) acts = run_batch(l, acts);
  return acts;
}

std::vector<LayerTiming> CompiledNetwork::measure() const {
  Rng rng(opt_.measure.data_seed);
  const ExecPolicy p = policy();
  std::vector<LayerTiming> out;
  out.reserve(layers_.size());
  volatile float sink = 0.0F;  // defeat dead-code elimination
  for (const auto& l : layers_) {
    LayerTiming t;
    t.name = l.name;
    t.m = l.m;
    t.k = l.k;
    // Rounded division with a uniform floor of min(layer.n, n_divisor-1):
    // layers with fewer than n_divisor positions keep their full N, the
    // measured N is monotone in layer.n (no cliff at layer.n ==
    // n_divisor), and above the floor region it is exactly proportional
    // to the true N, so cross-layer savings rankings are preserved.
    t.n = measured_n(l.n, opt_.n_divisor);
    t.config = l.config;
    t.kept_nnz_fraction = l.kept_nnz_fraction;

    const MatrixF b = random_dense(t.k, t.n, Dist::kNormalStd1, rng);
    // Engage the SIMD power license with untimed passes of BOTH paths
    // before timing either: the first ZMM-heavy calls in a process run
    // during the frequency transition, and min-of-repeats would
    // otherwise credit the dense side (measured first) with the
    // pre-transition clocks while the compressed side pays the
    // sustained AVX-512 rate — skewing exactly the dense/tasd ratio
    // this report exists to compare. The transition needs sustained
    // wide-vector work, not one call, so warm until a small wall-time
    // budget is spent (at least one pass of each path).
    for (Timer warm; warm.millis() < 2.0;) {
      const MatrixF c = dense_gemm(l.weight, b, p);
      sink = sink + c(0, 0);
      if (l.series) {
        const MatrixF c2 = l.series->multiply(b, p);
        sink = sink + c2(0, 0);
      }
    }
    t.dense_ms = time_ms_min(opt_.measure.repeats, [&] {
      const MatrixF c = dense_gemm(l.weight, b, p);
      sink = sink + c(0, 0);
    });
    if (l.series) {
      t.tasd_ms = time_ms_min(opt_.measure.repeats, [&] {
        const MatrixF c = l.series->multiply(b, p);
        sink = sink + c(0, 0);
      });
    }
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<ServingThroughput> CompiledNetwork::serving_throughput(
    const std::vector<std::size_t>& batch_sizes) const {
  const ExecPolicy p = policy();
  std::vector<ServingThroughput> out;
  out.reserve(batch_sizes.size());
  volatile float sink = 0.0F;  // defeat dead-code elimination
  for (const std::size_t batch : batch_sizes) {
    TASD_CHECK_MSG(batch >= 1, "batch sizes must be >= 1");
    ServingThroughput r;
    r.batch_size = batch;
    Rng rng(opt_.measure.data_seed + batch);
    for (const auto& l : layers_) {
      std::vector<MatrixF> bs;
      bs.reserve(batch);
      for (std::size_t q = 0; q < batch; ++q)
        bs.push_back(
            random_dense(l.k, opt_.query_cols, Dist::kNormalStd1, rng));
      // Same SIMD power-license warmup as measure(): run both paths
      // untimed before timing either, so the dense/tasd comparison is
      // made at the same sustained clocks.
      for (Timer warm; warm.millis() < 2.0;) {
        const auto cs = dense_gemm_batch(l.weight, bs, p);
        sink = sink + cs[0](0, 0);
        if (l.series) {
          const auto ct = l.series->multiply_batch(bs, p);
          sink = sink + ct[0](0, 0);
        }
      }
      const double dense_ms = time_ms_min(opt_.measure.repeats, [&] {
        const auto cs = dense_gemm_batch(l.weight, bs, p);
        sink = sink + cs[0](0, 0);
      });
      r.dense_ms += dense_ms;
      if (l.series) {
        r.tasd_ms += time_ms_min(opt_.measure.repeats, [&] {
          const auto cs = l.series->multiply_batch(bs, p);
          sink = sink + cs[0](0, 0);
        });
      } else {
        r.tasd_ms += dense_ms;
      }
    }
    const double queries = static_cast<double>(batch);
    r.dense_qps = r.dense_ms > 0.0 ? queries * 1e3 / r.dense_ms : 0.0;
    r.tasd_qps = r.tasd_ms > 0.0 ? queries * 1e3 / r.tasd_ms : 0.0;
    out.push_back(r);
  }
  return out;
}

namespace detail {

CompiledNetwork assemble_network(std::string name,
                                 std::vector<PreboundLayer> layers,
                                 const CompileOptions& opt,
                                 const TuningResult* restored) {
  TASD_CHECK_MSG(opt.n_divisor >= 1, "n_divisor must be >= 1");
  TASD_CHECK_MSG(opt.query_cols >= 1, "query_cols must be >= 1");
  // Kernel binding happens now, not at first execution: "auto" resolves
  // to the registry's best kernel (AVX2 when available, scalar
  // otherwise), and every selected name is looked up so a misspelled or
  // unregistered name fails at compile time with the registry's
  // descriptive error. The artifact stores the *resolved* names: its
  // kernel binding never changes after compile, even if the registry
  // gains kernels later. (This is also why a serialized artifact stores
  // no kernel names: a load re-enters this resolution on its own host.)
  const auto& dispatch = GemmDispatch::instance();
  CompiledNetwork cn;
  cn.name_ = std::move(name);
  cn.opt_ = opt;
  if (cn.opt_.dense_kernel == "auto") cn.opt_.dense_kernel = dispatch.best_dense();
  if (cn.opt_.nm_kernel == "auto") cn.opt_.nm_kernel = dispatch.best_nm();
  if (cn.opt_.dense_batch_kernel == "auto")
    cn.opt_.dense_batch_kernel = dispatch.best_dense_batch();
  if (cn.opt_.nm_batch_kernel == "auto")
    cn.opt_.nm_batch_kernel = dispatch.best_nm_batch();
  (void)dispatch.dense(cn.opt_.dense_kernel);
  (void)dispatch.nm(cn.opt_.nm_kernel);
  (void)dispatch.dense_batch(cn.opt_.dense_batch_kernel);
  (void)dispatch.nm_batch(cn.opt_.nm_batch_kernel);
  if (opt.measure.num_threads != 0)
    cn.pool_ = std::make_unique<ThreadPool>(opt.measure.num_threads);
  cn.layers_.reserve(layers.size());
  for (auto& prebound : layers) {
    CompiledNetwork::BoundLayer l;
    l.name = std::move(prebound.name);
    l.m = prebound.weight.rows();
    l.k = prebound.weight.cols();
    l.n = prebound.positions;
    l.weight = std::move(prebound.weight);
    l.config = std::move(prebound.config);
    if (prebound.plan) {
      // Prebuilt (deserialized) plan: bind it directly — the zero-
      // decomposition load path. The plan must describe this layer.
      TASD_CHECK_MSG(l.config && prebound.plan->config == *l.config,
                     "prebuilt plan config does not match layer '" << l.name
                                                                   << "'");
      TASD_CHECK_MSG(prebound.plan->rows == l.m && prebound.plan->cols == l.k,
                     "prebuilt plan shape " << prebound.plan->rows << "x"
                                            << prebound.plan->cols
                                            << " does not match layer '"
                                            << l.name << "' (" << l.m << "x"
                                            << l.k << ")");
      l.plan = std::move(prebound.plan);
    } else if (l.config) {
      // The one decomposition of this layer's lifetime: through the
      // shared cache (so sibling artifacts and future compiles reuse
      // it), or a private plan when the cache is opted out.
      l.plan = opt.measure.use_plan_cache
                   ? plan_cache().get_or_build(l.weight, *l.config)
                   : std::make_shared<const DecompositionPlan>(
                         build_plan(l.weight, *l.config));
    }
    if (l.plan) {
      l.series.emplace(l.plan);
      l.kept_nnz_fraction = static_cast<double>(l.series->nnz()) /
                            static_cast<double>(l.weight.size());
    }
    // Per-layer binding starts at the network-wide resolution; the
    // tuning paths below rebind it per layer.
    l.kernel = l.series ? cn.opt_.nm_kernel : cn.opt_.dense_kernel;
    l.batch_kernel =
        l.series ? cn.opt_.nm_batch_kernel : cn.opt_.dense_batch_kernel;
    cn.layers_.push_back(std::move(l));
  }
  // Binding priority: a restored tuning that transfers to this host
  // (load path, zero re-measurement) > a fresh autotune when the caller
  // asked for one > the static resolution above. A restored result that
  // does NOT transfer is dropped, not partially applied — on a kStatic
  // load that is exactly the "fall back to best_*() re-resolution"
  // contract of docs/artifact.md.
  if (restored != nullptr && apply_tuning(cn, *restored)) return cn;
  if (cn.opt_.kernel_policy == KernelPolicy::kAutotune)
    cn.tuning_ = run_autotune(cn);
  return cn;
}

}  // namespace detail

CompiledNetwork compile(std::string name,
                        std::vector<dnn::LayerBinding> layers,
                        const CompileOptions& opt) {
  std::vector<detail::PreboundLayer> prebound;
  prebound.reserve(layers.size());
  for (auto& binding : layers) {
    detail::PreboundLayer l;
    l.name = std::move(binding.name);
    l.positions = binding.positions;
    l.weight = std::move(binding.weight);
    l.config = std::move(binding.config);
    prebound.push_back(std::move(l));
  }
  return detail::assemble_network(std::move(name), std::move(prebound), opt);
}

CompiledNetwork compile(const dnn::NetworkWorkload& net,
                        const std::vector<std::optional<TasdConfig>>& configs,
                        const CompileOptions& opt) {
  TASD_CHECK_MSG(configs.size() == net.layers.size(),
                 "config list must align with workload layers");
  return compile(net.name, dnn::bind_layers(net, configs), opt);
}

}  // namespace tasd::rt
