#include "core/config.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tasd {

TasdConfig::TasdConfig(std::vector<sparse::NMPattern> t)
    : terms(std::move(t)) {}

TasdConfig TasdConfig::parse(const std::string& text) {
  TasdConfig cfg;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t plus = text.find('+', start);
    const std::size_t end = plus == std::string::npos ? text.size() : plus;
    const std::string part = text.substr(start, end - start);
    TASD_CHECK_MSG(!part.empty(), "empty term " << cfg.terms.size() + 1
                                                << " in TASD config '" << text
                                                << "'");
    try {
      cfg.terms.push_back(sparse::NMPattern::parse(part));
    } catch (const Error& e) {
      // Note: str() renders an order-0 config as "<empty>", which is a
      // display form, not parseable input.
      throw Error("TASD config '" + text + "', term " +
                  std::to_string(cfg.terms.size() + 1) + ": " + e.what());
    }
    if (plus == std::string::npos) break;
    start = plus + 1;
  }
  return cfg;
}

std::string TasdConfig::str() const {
  if (terms.empty()) return "<empty>";
  std::string out;
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out += '+';
    out += terms[i].str();
  }
  return out;
}

double TasdConfig::max_density() const {
  double d = 0.0;
  for (const auto& p : terms) d += p.density();
  return std::min(d, 1.0);
}

int TasdConfig::extraction_cycles_per_block() const {
  int cycles = 0;
  for (const auto& p : terms) cycles += p.n;
  return cycles;
}

}  // namespace tasd
