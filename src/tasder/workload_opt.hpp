// TASDER at the full-scale-workload level: choose per-layer TASD series
// for the accelerator model's network workloads (DESIGN.md §experiment
// index; feeds Figs. 12, 13, 15, 19).
//
// The decision policy mirrors the model-level strategies, but quality is
// enforced through a per-layer dropped-non-zero budget (TASD-W) and the
// sparsity+α rule (TASD-A) instead of end-to-end accuracy — the budgets
// are validated against the twin-model accuracy experiments (Fig. 14).
#pragma once

#include <vector>

#include "accel/perf_model.hpp"
#include "dnn/workloads.hpp"
#include "tasder/hw_profile.hpp"

namespace tasd::tasder {

/// Workload-level TASDER knobs.
struct WorkloadOptOptions {
  /// Maximum fraction of a layer's weight non-zeros a TASD-W series may
  /// drop (validated to keep >= 99 % agreement on the twin models).
  double weight_drop_budget = 0.02;
  /// TASD-A aggressiveness (paper's α).
  double alpha = 0.05;
  /// Channel-permutation pre-pass before TASD-W selection (paper §6.1):
  /// reorder weight columns to balance non-zeros across M-blocks, letting
  /// a sparser series fit the same drop budget. The GEMM stays exact (the
  /// activation operand is gathered in the permuted order).
  bool use_channel_permutation = false;
};

/// Decide a TASD series per layer. Sparse-weight networks get TASD-W
/// (chosen against materialized weights); dense-weight networks get
/// TASD-A if the hardware has TASD units. Architectures without
/// structured support (empty pattern set) get plain executions.
std::vector<accel::LayerExecution> optimize_workload(
    const dnn::NetworkWorkload& net, const HwProfile& hw,
    const WorkloadOptOptions& opt = {});

/// Plain executions (no TASD) for baselines.
std::vector<accel::LayerExecution> plain_executions(
    const dnn::NetworkWorkload& net);

}  // namespace tasd::tasder
