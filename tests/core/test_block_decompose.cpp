#include "core/block_decompose.hpp"

#include <gtest/gtest.h>

#include "core/approx_stats.hpp"

#include "common/rng.hpp"
#include "tensor/generator.hpp"
#include "tensor/norms.hpp"

namespace tasd {
namespace {

TEST(BlockPattern, ValidatesAndComputesDensity) {
  EXPECT_THROW(BlockPattern(0, 4, 1), Error);
  EXPECT_THROW(BlockPattern(4, 4, 0), Error);
  const BlockPattern p(4, 4, 2);
  EXPECT_DOUBLE_EQ(p.density(16), 0.5);  // 2 of 4 tiles per row
  EXPECT_DOUBLE_EQ(p.density(4), 1.0);   // keep >= tiles: clamped
}

TEST(SplitBlock, KeepsHighestNormTiles) {
  // 4x8 matrix, 4x4 tiles: right tile much larger norm.
  MatrixF m(4, 8);
  for (Index r = 0; r < 4; ++r) {
    m(r, 1) = 0.1F;   // left tile: small
    m(r, 5) = 10.0F;  // right tile: large
  }
  const auto split = split_block(m, BlockPattern(4, 4, 1));
  EXPECT_EQ(split.view(0, 5), 10.0F);
  EXPECT_EQ(split.view(0, 1), 0.0F);
  EXPECT_EQ(split.residual(0, 1), 0.1F);
  EXPECT_EQ(split.residual(0, 5), 0.0F);
}

TEST(SplitBlock, ExactReconstruction) {
  Rng rng(81);
  const MatrixF m = random_unstructured(16, 24, 0.5, Dist::kNormalStd1, rng);
  const auto split = split_block(m, BlockPattern(4, 8, 1));
  MatrixF sum = split.view;
  sum += split.residual;
  EXPECT_EQ(sum, m);
}

TEST(SplitBlock, EmptyTilesNotWastedOnKeepBudget) {
  // An all-zero tile must not consume a keep slot... it may, but moving
  // it is a no-op; what matters is that zero-norm tiles never displace
  // real content into the residual.
  MatrixF m(4, 16);
  m(0, 13) = 5.0F;  // only tile 3 has content
  const auto split = split_block(m, BlockPattern(4, 4, 1));
  EXPECT_EQ(split.view(0, 13), 5.0F);
  EXPECT_TRUE(split.residual.nnz() == 0u);
}

TEST(SplitBlock, RaggedEdges) {
  Rng rng(82);
  // 6 rows, 10 cols with 4x4 tiles: ragged in both dims.
  const MatrixF m = random_dense(6, 10, Dist::kNormalStd1, rng);
  const auto split = split_block(m, BlockPattern(4, 4, 2));
  MatrixF sum = split.view;
  sum += split.residual;
  EXPECT_EQ(sum, m);
}

TEST(HybridDecompose, ExactnessAndComposition) {
  Rng rng(83);
  const MatrixF m = random_unstructured(16, 32, 0.6, Dist::kNormalStd1, rng);
  const auto h = hybrid_decompose(m, {BlockPattern(4, 8, 1)},
                                  TasdConfig::parse("1:8"));
  EXPECT_EQ(h.block_terms.size(), 1u);
  EXPECT_EQ(h.nm_terms.size(), 1u);
  EXPECT_EQ(h.reconstruct_exact(), m);
}

TEST(HybridDecompose, TermsDisjoint) {
  Rng rng(84);
  const MatrixF m = random_dense(8, 16, Dist::kNormalStd1, rng);
  const auto h = hybrid_decompose(m, {BlockPattern(4, 4, 2)},
                                  TasdConfig::parse("2:8"));
  for (Index i = 0; i < m.size(); ++i) {
    int holders = 0;
    for (const auto& t : h.block_terms)
      if (t.dense.flat()[i] != 0.0F) ++holders;
    for (const auto& t : h.nm_terms)
      if (t.dense.flat()[i] != 0.0F) ++holders;
    EXPECT_LE(holders, 1);
  }
}

TEST(HybridDecompose, BlockTermHelpsClusteredSparsity) {
  // Clustered non-zeros (a dense 4x8 patch in a sparse sea): one block
  // term captures the cluster; a pure N:M series of the same density
  // cannot.
  Rng rng(85);
  MatrixF m(16, 64);
  for (Index r = 4; r < 8; ++r)
    for (Index c = 16; c < 24; ++c)
      m(r, c) = static_cast<float>(rng.normal(0.0, 1.0));
  // Pure 1:8 series: density 0.125 — drops most of the cluster rows'
  // content (8 nnz per 8-block, keeps 1).
  const auto pure = approx_stats(m, TasdConfig::parse("1:8"));
  // Hybrid with one 4x8 block per tile-row (density 8/64 = 0.125 too).
  const auto hybrid =
      hybrid_decompose(m, {BlockPattern(4, 8, 1)}, TasdConfig{});
  EXPECT_TRUE(hybrid.lossless());
  EXPECT_GT(pure.dropped_nnz, 0u);
}

TEST(HybridDecompose, NoBlocksEqualsPlainDecompose) {
  Rng rng(86);
  const MatrixF m = random_unstructured(8, 32, 0.4, Dist::kNormalStd1, rng);
  const auto cfg = TasdConfig::parse("2:8+1:8");
  const auto h = hybrid_decompose(m, {}, cfg);
  const auto d = decompose(m, cfg);
  EXPECT_EQ(h.residual, d.residual);
  ASSERT_EQ(h.nm_terms.size(), d.terms.size());
  for (std::size_t i = 0; i < d.terms.size(); ++i)
    EXPECT_EQ(h.nm_terms[i].dense, d.terms[i].dense);
}

}  // namespace
}  // namespace tasd
