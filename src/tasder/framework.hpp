// TASDER facade (paper Fig. 5): one entry point that takes a model (or a
// full-scale workload), sample/calibration data, and the target hardware
// description, and returns/applies the TASD transformation.
#pragma once

#include <string>

#include "runtime/compiled_network.hpp"
#include "tasder/tasda.hpp"
#include "tasder/tasdw.hpp"
#include "tasder/workload_opt.hpp"

namespace tasd::tasder {

/// Combined options for the facade.
struct TasderOptions {
  TasdwOptions tasdw;
  TasdaOptions tasda;
  WorkloadOptOptions workload;
  /// Weight-sparsity threshold above which the framework prefers TASD-W
  /// over TASD-A for a model.
  double weight_sparse_threshold = 0.30;
};

/// Which strategy the facade chose for a model.
enum class TasderMode { kNone, kWeights, kActivations };

/// Result of optimizing a model in place.
struct TasderModelResult {
  TasderMode mode = TasderMode::kNone;
  TasdwResult tasdw;      ///< valid when mode == kWeights
  TasdaResult tasda;      ///< valid when mode == kActivations
  double achieved_agreement = 1.0;
  double mac_fraction = 1.0;

  [[nodiscard]] std::string mode_name() const;
};

/// Optimize `model` for `hw`: layer-wise TASD-W when the model's weights
/// are unstructured sparse, otherwise layer-wise TASD-A (auto-α) when the
/// hardware has TASD units. Configs are applied to the model.
TasderModelResult optimize_model(dnn::Model& model, const HwProfile& hw,
                                 const dnn::EvalSet& calib,
                                 const dnn::EvalSet& eval,
                                 const std::vector<Index>& reference,
                                 const TasderOptions& opt = {});

/// A deployable compilation of an optimized model: the TASDER decision
/// plus the executable artifact over the model's GEMM layers. Move-only
/// (the artifact owns its plans and pool).
struct TasderCompiled {
  TasderModelResult decision;
  rt::CompiledNetwork network;
};

/// Compile-once entry point: run optimize_model(), then bind the model's
/// GEMM layers into an rt::CompiledNetwork — TASD-W series become bound
/// structured kernels over prewarmed plans; layers left dense (including
/// all layers under TASD-A, a dynamic activation transformation with no
/// static kernel to bind) bind the dense kernel. The artifact is ready
/// for run()/run_batch()/measure()/serving_throughput() with zero
/// further decompositions. `measure_positions` sets every layer's
/// measurement width (models don't pin activation widths statically).
TasderCompiled compile(dnn::Model& model, const HwProfile& hw,
                       const dnn::EvalSet& calib, const dnn::EvalSet& eval,
                       const std::vector<Index>& reference,
                       const TasderOptions& opt = {},
                       const rt::CompileOptions& compile_opt = {},
                       Index measure_positions = 128);

}  // namespace tasd::tasder
