#include "tasder/hw_profile.hpp"

namespace tasd::tasder {

HwProfile hw_profile_from(const accel::ArchConfig& arch) {
  HwProfile p;
  p.name = arch.name;
  if (arch.kind == accel::HwKind::kTTC) {
    p.patterns = arch.supported_patterns;
    p.max_terms = arch.max_tasd_terms;
    p.has_tasd_units = arch.has_tasd_units;
  }
  return p;
}

}  // namespace tasd::tasder
