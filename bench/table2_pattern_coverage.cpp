// Table 2: the N:8 patterns a TTC-VEGETA engine (native 1:8/2:8/4:8)
// reaches with at most two TASD terms.
#include <iostream>

#include "common/table.hpp"
#include "core/series_enum.hpp"

using namespace tasd;

int main() {
  print_banner("Table 2: supported sparse patterns with TTC-VEGETA-M8");

  const std::vector<sparse::NMPattern> native{
      sparse::NMPattern(1, 8), sparse::NMPattern(2, 8),
      sparse::NMPattern(4, 8)};

  TextTable t;
  t.header({"effective pattern", "TASD series"});
  for (int n = 1; n <= 8; ++n) {
    std::string series;
    if (n == 8) {
      series = "Dense";
    } else if (auto cfg = config_for_effective_pattern(native, 2, n, 8)) {
      series = cfg->str();
    } else {
      series = "-";
    }
    t.row({std::to_string(n) + ":8", series});
  }
  t.print();

  std::cout << "\nPaper check: 3:8 = 2:8+1:8, 5:8 = 4:8+1:8, 6:8 = "
               "4:8+2:8, 7:8 unreachable;\n7 of 8 N:8 patterns supported "
               "vs 3 native ones.\n";
  return 0;
}
