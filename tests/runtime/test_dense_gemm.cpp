#include "runtime/dense_gemm.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/gemm_ref.hpp"
#include "tensor/generator.hpp"
#include "tensor/norms.hpp"

namespace tasd::rt {
namespace {

TEST(DenseGemm, MatchesReference) {
  Rng rng(501);
  const MatrixF a = random_dense(17, 23, Dist::kNormalStd1, rng);
  const MatrixF b = random_dense(23, 9, Dist::kNormalStd1, rng);
  EXPECT_TRUE(allclose(dense_gemm(a, b), gemm_ref(a, b), 1e-4, 1e-5));
}

TEST(DenseGemm, HandlesKNotMultipleOfUnroll) {
  Rng rng(502);
  for (Index k : {1u, 2u, 3u, 5u, 7u}) {
    const MatrixF a = random_dense(4, k, Dist::kNormalStd1, rng);
    const MatrixF b = random_dense(k, 6, Dist::kNormalStd1, rng);
    EXPECT_TRUE(allclose(dense_gemm(a, b), gemm_ref(a, b), 1e-4, 1e-5))
        << "k=" << k;
  }
}

TEST(DenseGemm, AccumulatesIntoC) {
  MatrixF a(1, 4, {1, 1, 1, 1});
  MatrixF b(4, 1, {1, 1, 1, 1});
  MatrixF c(1, 1, {10.0F});
  dense_gemm_accumulate(a, b, c);
  EXPECT_EQ(c(0, 0), 14.0F);
}

TEST(DenseGemm, ShapeChecks) {
  MatrixF a(2, 3);
  MatrixF b(4, 5);
  EXPECT_THROW(dense_gemm(a, b), Error);
  MatrixF ok_b(3, 5);
  MatrixF bad_c(2, 4);
  EXPECT_THROW(dense_gemm_accumulate(a, ok_b, bad_c), Error);
}

TEST(DenseGemm, SparseAndDenseInputsSameResult) {
  // The dense kernel must not behave differently on zeros (no skipping).
  Rng rng(503);
  const MatrixF a = random_unstructured(8, 16, 0.1, Dist::kNormalStd1, rng);
  const MatrixF b = random_dense(16, 8, Dist::kNormalStd1, rng);
  EXPECT_TRUE(allclose(dense_gemm(a, b), gemm_ref(a, b), 1e-4, 1e-5));
}

}  // namespace
}  // namespace tasd::rt
