// Reference (correctness-oracle) GEMM. The optimized kernels live in
// src/runtime/; everything is validated against this implementation.
#pragma once

#include "tensor/matrix.hpp"

namespace tasd {

/// C = A * B. A is MxK, B is KxN; returns MxN.
MatrixF gemm_ref(const MatrixF& a, const MatrixF& b);

/// C += A * B into an existing accumulator (shapes checked).
void gemm_ref_accumulate(const MatrixF& a, const MatrixF& b, MatrixF& c);

}  // namespace tasd
