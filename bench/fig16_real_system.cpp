// Figure 16: real-system experiment — speed-up vs number of layers using
// TASD-W on an unstructured-sparse ResNet-34.
//
// The paper runs TensorRT engines on an RTX 3080's 2:4 sparse tensor
// cores; this repository substitutes the CPU runtime engine whose 2:4
// compressed kernel executes half the MACs of the dense kernel (see
// DESIGN.md). The quality axis is measured on the scaled-down twin model
// with the same fraction of layers converted.
//
// Paper reference: up to ~28-39 % speed-up with 0.9-1.5 % accuracy drop;
// speed-up grows with the number of converted layers.
#include <algorithm>
#include <iostream>

#include "common/table.hpp"
#include "dnn/builders.hpp"
#include "dnn/pruning.hpp"
#include "dnn/workloads.hpp"
#include "runtime/compiled_network.hpp"
#include "tasder/tasdw.hpp"

using namespace tasd;

int main() {
  print_banner("Figure 16: TASD-W on the CPU real-system proxy "
               "(sparse ResNet-34, 2:4 kernels)");

  // --- wall-clock side: full-scale shapes, 2:4 (STC-style) kernels ---
  // Compile once (binds kernels, prewarms every layer's plan), then
  // measure the artifact — the deployment flow the paper's experiment
  // models.
  const auto net = dnn::resnet34_workload(true, 42);
  std::vector<std::optional<TasdConfig>> configs(net.layers.size(),
                                                 TasdConfig::parse("2:4"));
  rt::CompileOptions opt;
  opt.n_divisor = 8;  // shrink N to keep measurements fast; ratios hold
  opt.measure.repeats = 3;
  // Pin the scalar kernel pair: both engines share one inner loop, so
  // the measured ratio isolates the paper's variable (every-MAC dense vs
  // stored-values-only compressed). The AVX2 pair is a valid deployment
  // but its dense kernel streams B better than the compressed kernel's
  // scattered accesses, diluting the ratio with a microarchitectural
  // effect Fig. 16's hardware does not have (see docs/reproducing.md;
  // bench/serving_throughput reports both kernel sets).
  opt.dense_kernel = "tiled-parallel";
  opt.nm_kernel = "row-parallel";
  opt.dense_batch_kernel = "batch-packed";
  opt.nm_batch_kernel = "batch-packed";
  const auto engine = rt::compile(net, configs, opt);
  const auto timings = engine.measure();
  const auto order = rt::conversion_order(timings);
  const double dense_total = rt::network_latency_ms(timings, order, 0);

  // --- quality side: twin model, same conversion count ---
  dnn::ConvNetOptions o;
  o.input_hw = 16;
  o.width_mult = 0.25;
  o.num_classes = 100;
  dnn::Model twin = dnn::make_resnet(34, o);
  (void)dnn::prune_unstructured(twin, 0.95);
  const auto eval = dnn::EvalSet::images(128, 16, 3, 1601);
  const auto ref = dnn::confident_labels(twin, eval, 0.5);
  auto twin_layers = twin.gemm_layers();

  // Twin conversion order: mirror the timing order by benefit rank where
  // possible (twin has its own layer list; rank by weight size).
  std::vector<std::size_t> twin_order(twin_layers.size());
  for (std::size_t i = 0; i < twin_order.size(); ++i) twin_order[i] = i;
  std::sort(twin_order.begin(), twin_order.end(),
            [&](std::size_t a, std::size_t b) {
              return twin_layers[a]->weight().size() >
                     twin_layers[b]->weight().size();
            });

  TextTable t;
  t.header({"#layers w/ TASD", "latency (ms)", "speed-up", "agreement"});
  const std::size_t total_layers = timings.size();
  for (std::size_t k = 0; k <= total_layers; k += 4) {
    const double lat = rt::network_latency_ms(timings, order, k);
    // Twin agreement with the proportional number of layers converted.
    twin.clear_tasd();
    const std::size_t twin_k = std::min(
        twin_layers.size(), k * twin_layers.size() / total_layers);
    for (std::size_t i = 0; i < twin_k; ++i)
      twin_layers[twin_order[i]]->set_tasd_w(TasdConfig::parse("2:4"));
    const double agree = dnn::top1_agreement(twin, eval, ref);
    t.row({std::to_string(k), TextTable::num(lat, 2),
           TextTable::num(dense_total / lat, 3) + "x",
           TextTable::pct(agree)});
  }
  t.print();

  std::cout << "\nPaper shape check: speed-up rises monotonically toward "
               "~1.3-1.4x with most layers\nconverted, while agreement "
               "stays near (or above) the 99% threshold for the\n"
               "TASDER-chosen prefix.\n";
  return 0;
}
