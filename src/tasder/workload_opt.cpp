#include "tasder/workload_opt.hpp"

#include "common/logging.hpp"
#include "core/approx_stats.hpp"
#include "core/permute.hpp"
#include "tasder/tasda.hpp"

namespace tasd::tasder {

std::vector<accel::LayerExecution> plain_executions(
    const dnn::NetworkWorkload& net) {
  std::vector<accel::LayerExecution> out;
  out.reserve(net.layers.size());
  for (const auto& layer : net.layers) out.push_back({layer, {}, {}, {}});
  return out;
}

std::vector<accel::LayerExecution> optimize_workload(
    const dnn::NetworkWorkload& net, const HwProfile& hw,
    const WorkloadOptOptions& opt) {
  if (hw.patterns.empty()) return plain_executions(net);
  const auto candidates = hw.candidate_configs();

  std::vector<accel::LayerExecution> out;
  out.reserve(net.layers.size());
  for (const auto& layer : net.layers) {
    accel::LayerExecution exec{layer, {}, {}, {}};
    if (net.sparse_weights) {
      // TASD-W: most aggressive series within the drop budget, measured
      // on the materialized weights (optionally permutation-balanced).
      MatrixF w = dnn::materialize_weight(layer);
      for (const auto& cfg : candidates) {
        ApproxStats stats = approx_stats(w, cfg);
        if (opt.use_channel_permutation &&
            stats.dropped_nnz_fraction() > opt.weight_drop_budget) {
          stats = find_tasd_permutation(w, cfg, 1).after;
        }
        if (stats.dropped_nnz_fraction() <= opt.weight_drop_budget) {
          exec.weight_cfg = cfg;
          exec.weight_kept_fraction =
              static_cast<double>(stats.kept_nnz) /
              static_cast<double>(w.size());
          break;
        }
      }
      TASD_DEBUG("workload " << net.name << " layer " << layer.name
                             << ": TASD-W "
                             << (exec.weight_cfg ? exec.weight_cfg->str()
                                                 : "none"));
    } else if (hw.has_tasd_units && layer.tasd_a_eligible) {
      // TASD-A via the sparsity(+pseudo-density) + alpha rule.
      const double sparsity = layer.act_relu
                                  ? 1.0 - layer.act_density
                                  : 1.0 - layer.act_pseudo_density;
      exec.act_cfg = select_tasda_config(candidates, sparsity, opt.alpha);
      TASD_DEBUG("workload " << net.name << " layer " << layer.name
                             << ": TASD-A "
                             << (exec.act_cfg ? exec.act_cfg->str() : "none"));
    }
    out.push_back(std::move(exec));
  }
  return out;
}

}  // namespace tasd::tasder
