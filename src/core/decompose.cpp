#include "core/decompose.hpp"

#include "common/error.hpp"
#include "core/plan_cache.hpp"
#include "sparse/view.hpp"

namespace tasd {

MatrixF Decomposition::approximation() const {
  MatrixF acc(residual.rows(), residual.cols());
  for (const auto& t : terms) acc += t.dense;
  return acc;
}

MatrixF Decomposition::reconstruct_exact() const {
  MatrixF acc = approximation();
  acc += residual;
  return acc;
}

bool Decomposition::lossless() const {
  for (float v : residual.flat())
    if (v != 0.0F) return false;
  return true;
}

Decomposition decompose(const MatrixF& matrix, const TasdConfig& config) {
  Decomposition out;
  out.config = config;
  out.residual = matrix;
  out.terms.reserve(config.terms.size());
  for (const auto& pattern : config.terms) {
    auto split = sparse::split_nm(out.residual, pattern);
    out.terms.push_back(TasdTerm{pattern, std::move(split.view)});
    out.residual = std::move(split.residual);
  }
  return out;
}

MatrixF approximate(const MatrixF& matrix, const TasdConfig& config) {
  // Served from the plan cache (bit-identical to the dense path: every
  // element lands in at most one term). Layer forward passes re-request
  // the same weight approximation after every TASDER re-configuration.
  return plan_cache().get_or_build(matrix, config)->approximation();
}

}  // namespace tasd
