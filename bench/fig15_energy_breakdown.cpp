// Figure 15: energy breakdown of the dense TC vs TTC-VEGETA (4:8+1:8
// TASD-W) on a representative sparse-ResNet-50 layer.
//
// Paper reference: TTC saves energy at every level of the hierarchy and
// ~55 % in total; the decomposition-aware dataflow keeps the extra-term
// traffic at RF/SMEM level instead of DRAM.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"

using namespace tasd;

int main() {
  print_banner("Figure 15: energy breakdown, dense TC vs TTC-VEGETA-M8");

  // Representative layer: sparse RN50 L3 (M256-K2304-N196 in our
  // convention), per Table 4.
  const auto net = dnn::resnet50_workload(true, 42);
  dnn::GemmWorkload layer;
  for (const auto& l : net.layers)
    if (l.m == 256 && l.k == 2304 && l.n == 196) layer = l;

  const auto tc = accel::ArchConfig::dense_tc();
  const auto ttc = accel::ArchConfig::ttc_vegeta_m8();

  accel::LayerExecution dense_exec{layer, {}, {}, {}};
  accel::LayerExecution tasd_exec{layer, TasdConfig::parse("4:8+1:8"), {}, {}};

  const auto tc_sim = accel::simulate_layer(tc, dense_exec);
  const auto ttc_sim = accel::simulate_layer(ttc, tasd_exec);

  TextTable t;
  t.header({"component", "TC (pJ)", "TTC-VEGETA 4:8+1:8 (pJ)", "ratio"});
  for (std::size_t c = 0; c < accel::kComponentCount; ++c) {
    const double a = tc_sim.energy_pj[c];
    const double b = ttc_sim.energy_pj[c];
    if (a == 0.0 && b == 0.0) continue;
    t.row({accel::component_name(static_cast<accel::Component>(c)),
           TextTable::num(a / 1e6, 3) + "M", TextTable::num(b / 1e6, 3) + "M",
           a > 0.0 ? TextTable::num(b / a, 3) : "-"});
  }
  t.row({"TOTAL", TextTable::num(tc_sim.total_energy() / 1e6, 3) + "M",
         TextTable::num(ttc_sim.total_energy() / 1e6, 3) + "M",
         TextTable::num(ttc_sim.total_energy() / tc_sim.total_energy(), 3)});
  t.print();

  std::cout << "\nPaper shape check: savings at every level; total ~0.45x "
               "(55% energy saving) on this layer.\n";
  return 0;
}
