#include "tasder/util.hpp"

namespace tasd::tasder {

double model_slot_mac_fraction(dnn::Model& model) {
  double dense = 0.0;
  double used = 0.0;
  for (auto* layer : model.gemm_layers()) {
    const auto& d = layer->stats().dims;
    const double macs = d.m && d.k && d.n
                            ? static_cast<double>(d.m * d.k * d.n)
                            : static_cast<double>(layer->weight().size());
    dense += macs;
    double density = 1.0;
    if (layer->tasd_w()) density = layer->tasd_w()->max_density();
    if (layer->tasd_a())
      density = std::min(density, layer->tasd_a()->max_density());
    used += macs * density;
  }
  return dense > 0.0 ? used / dense : 1.0;
}

}  // namespace tasd::tasder
