#include "dnn/calib.hpp"

#include <gtest/gtest.h>

#include "dnn/builders.hpp"

namespace tasd::dnn {
namespace {

ConvNetOptions tiny() {
  ConvNetOptions o;
  o.input_hw = 8;
  o.width_mult = 0.125;
  o.num_classes = 10;
  return o;
}

TEST(Calib, OneEntryPerGemmLayer) {
  Model m = make_resnet(18, tiny());
  const EvalSet calib = EvalSet::images(8, 8, 3, 11);
  const auto stats = collect_calibration(m, calib);
  EXPECT_EQ(stats.size(), m.gemm_layers().size());
  for (const auto& s : stats) {
    EXPECT_GT(s.samples, 0u);
    EXPECT_GE(s.mean_density, 0.0);
    EXPECT_LE(s.mean_density, 1.0);
    EXPECT_NE(s.layer, nullptr);
  }
}

TEST(Calib, ReluNetworkShowsActivationSparsity) {
  Model m = make_resnet(18, tiny());
  const EvalSet calib = EvalSet::images(16, 8, 3, 12);
  const auto stats = collect_calibration(m, calib);
  // At least half of the non-stem layers should see sparse inputs.
  Index sparse_layers = 0;
  for (std::size_t i = 1; i < stats.size(); ++i)
    if (stats[i].act_induces_sparsity) ++sparse_layers;
  EXPECT_GT(sparse_layers, stats.size() / 2);
}

TEST(Calib, GeluNetworkShowsDenseButSkewedActivations) {
  TransformerOptions o;
  o.dim = 16;
  o.layers = 2;
  o.heads = 2;
  o.num_classes = 10;
  Model m = make_bert(o);
  const EvalSet calib = EvalSet::tokens(8, 16, 8, 13);
  const auto stats = collect_calibration(m, calib);
  double min_pseudo = 1.0;
  for (const auto& s : stats) {
    EXPECT_GT(s.mean_density, 0.9);  // literally dense
    EXPECT_LT(s.mean_pseudo_density, 0.9);  // but magnitude-skewed
    min_pseudo = std::min(min_pseudo, s.mean_pseudo_density);
  }
  // GELU-fed layers (mlp.fc2 inputs) are the most skewed.
  EXPECT_LT(min_pseudo, 0.7);
}

TEST(Calib, P99AtLeastMean) {
  Model m = make_resnet(18, tiny());
  const EvalSet calib = EvalSet::images(32, 8, 3, 14);
  for (const auto& s : collect_calibration(m, calib))
    EXPECT_GE(s.p99_density + 1e-9, s.mean_density);
}

TEST(Calib, StemSeesDenseImageInput) {
  Model m = make_resnet(18, tiny());
  const EvalSet calib = EvalSet::images(8, 8, 3, 15);
  const auto stats = collect_calibration(m, calib);
  EXPECT_GT(stats.front().mean_density, 0.99);
  EXPECT_FALSE(stats.front().act_induces_sparsity);
}

}  // namespace
}  // namespace tasd::dnn
