#include "tasder/tasda.hpp"

#include <gtest/gtest.h>

#include "dnn/builders.hpp"

namespace tasd::tasder {
namespace {

std::vector<TasdConfig> vegeta_candidates() {
  return hw_profile_from(accel::ArchConfig::ttc_vegeta_m8())
      .candidate_configs();
}

TEST(SelectTasdaConfig, PicksMostAggressiveUnderBudget) {
  const auto candidates = vegeta_candidates();
  // Sparsity 0.80 + alpha 0.05 = 0.85 budget: the sparsest config under
  // 0.85 approximated sparsity... 1:8 has 0.875 (too much), 2:8 has 0.75.
  const auto cfg = select_tasda_config(candidates, 0.80, 0.05);
  ASSERT_TRUE(cfg);
  EXPECT_EQ(cfg->str(), "2:8");
}

TEST(SelectTasdaConfig, HighSparsityGetsSparsestPattern) {
  const auto cfg = select_tasda_config(vegeta_candidates(), 0.95, 0.05);
  ASSERT_TRUE(cfg);
  EXPECT_EQ(cfg->str(), "1:8");
}

TEST(SelectTasdaConfig, DenseActivationsGetNothing) {
  // Sparsity 0 + small alpha: even the least aggressive config (4:8+2:8,
  // 0.25 approx sparsity) exceeds the budget.
  EXPECT_FALSE(select_tasda_config(vegeta_candidates(), 0.0, 0.05));
}

TEST(SelectTasdaConfig, AlphaIncreasesAggressiveness) {
  const auto cautious = select_tasda_config(vegeta_candidates(), 0.70, 0.0);
  const auto eager = select_tasda_config(vegeta_candidates(), 0.70, 0.10);
  ASSERT_TRUE(cautious);
  ASSERT_TRUE(eager);
  EXPECT_GE(cautious->max_density(), eager->max_density());
}

struct Fixture {
  dnn::Model model;
  dnn::EvalSet calib;
  dnn::EvalSet eval;
  std::vector<Index> reference;
  HwProfile hw;

  static Fixture relu_resnet() {
    dnn::ConvNetOptions o;
    o.input_hw = 8;
    o.width_mult = 0.125;
    o.num_classes = 10;
    Fixture f{dnn::make_resnet(18, o), dnn::EvalSet::images(16, 8, 3, 301),
              dnn::EvalSet::images(32, 8, 3, 302), {},
              hw_profile_from(accel::ArchConfig::ttc_vegeta_m8())};
    f.reference = dnn::predict(f.model, f.eval);
    return f;
  }

  static Fixture gelu_bert() {
    dnn::TransformerOptions o;
    o.dim = 16;
    o.layers = 2;
    o.heads = 2;
    o.num_classes = 10;
    Fixture f{dnn::make_bert(o), dnn::EvalSet::tokens(16, 16, 8, 303),
              dnn::EvalSet::tokens(32, 16, 8, 304), {},
              hw_profile_from(accel::ArchConfig::ttc_vegeta_m8())};
    f.reference = dnn::predict(f.model, f.eval);
    return f;
  }
};

TEST(TasdaLayerWise, ReluNetGetsConfigsOnSparseLayers) {
  auto f = Fixture::relu_resnet();
  const auto r =
      tasda_layer_wise(f.model, f.hw, f.calib, f.eval, f.reference);
  Index with_config = 0;
  for (const auto& d : r.decisions)
    if (d.config) ++with_config;
  EXPECT_GT(with_config, 0u);
  EXPECT_LT(r.mac_fraction, 1.0);
}

TEST(TasdaLayerWise, GeluNetUsesPseudoDensity) {
  auto f = Fixture::gelu_bert();
  const auto r =
      tasda_layer_wise(f.model, f.hw, f.calib, f.eval, f.reference);
  bool pseudo_used = false;
  for (const auto& d : r.decisions)
    if (d.config && d.used_pseudo_density) pseudo_used = true;
  EXPECT_TRUE(pseudo_used);
}

TEST(TasdaLayerWise, RespectsAllowTasdAFlag) {
  auto f = Fixture::gelu_bert();
  const auto r =
      tasda_layer_wise(f.model, f.hw, f.calib, f.eval, f.reference);
  for (auto* l : f.model.gemm_layers()) {
    if (!l->allow_tasd_a()) EXPECT_FALSE(l->tasd_a().has_value());
  }
  (void)r;
}

TEST(TasdaAuto, MeetsQualityThreshold) {
  auto f = Fixture::relu_resnet();
  const auto r =
      tasda_layer_wise_auto(f.model, f.hw, f.calib, f.eval, f.reference);
  EXPECT_GE(r.achieved_agreement, 0.99);
}

TEST(TasdaUniform, AppliesOnlyToEligibleLayers) {
  auto f = Fixture::gelu_bert();
  const auto r = tasda_apply_uniform(f.model, TasdConfig::parse("4:8"),
                                     f.eval, f.reference);
  // 2 encoders x 2 MLP FCs = 4 eligible layers (attention projections
  // and the classifier head are excluded, Fig. 8).
  EXPECT_EQ(r.decisions.size(), 4u);
}

}  // namespace
}  // namespace tasd::tasder
