// TASD-W: static decomposition of (unstructured-sparse or dense) weights
// (paper §4.2).
//
// Two strategies:
//  * network-wise — one series for every layer, found by exhaustive
//    search over the HW's candidate configs;
//  * layer-wise   — the paper's greedy: rank (layer, config) pairs by
//    dropped-non-zero fraction and apply in that order while the model
//    keeps >= `quality_threshold` top-1 agreement.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dnn/metrics.hpp"
#include "dnn/model.hpp"
#include "tasder/hw_profile.hpp"

namespace tasd::tasder {

/// Options shared by both TASD-W strategies.
struct TasdwOptions {
  double quality_threshold = 0.99;  ///< MLPerf-style 99 % rule
  /// Evaluate the greedy prefix by binary search (O(log n) model
  /// evaluations) instead of after every single application.
  bool binary_search_prefix = true;
};

/// Final decision for one layer.
struct LayerDecision {
  std::string layer_name;
  std::optional<TasdConfig> config;   ///< nullopt = left dense
  double dropped_nnz_fraction = 0.0;  ///< of the layer's weights
  double series_density = 1.0;        ///< slot density (1 = dense)
};

/// Result of a TASD-W run. The configs are *applied* to the model on
/// return (model.clear_tasd() undoes them).
struct TasdwResult {
  std::vector<LayerDecision> decisions;
  double achieved_agreement = 1.0;
  /// Slot MACs of the transformed model / dense MACs (Fig. 20 metric).
  double mac_fraction = 1.0;
  /// Flat description, e.g. "layer-wise" / "network-wise 4:8+1:8".
  std::string strategy;
};

/// Network-wise TASD-W: pick the single most aggressive config that
/// keeps quality; applies it to every GEMM layer.
TasdwResult tasdw_network_wise(dnn::Model& model, const HwProfile& hw,
                               const dnn::EvalSet& eval,
                               const std::vector<Index>& reference,
                               const TasdwOptions& opt = {});

/// Layer-wise greedy TASD-W (the paper's algorithm).
TasdwResult tasdw_layer_wise(dnn::Model& model, const HwProfile& hw,
                             const dnn::EvalSet& eval,
                             const std::vector<Index>& reference,
                             const TasdwOptions& opt = {});

/// Evaluate a fixed network-wise config without searching (Fig. 14 sweep
/// helper): applies `cfg` to all layers and reports agreement + MACs.
TasdwResult tasdw_apply_uniform(dnn::Model& model, const TasdConfig& cfg,
                                const dnn::EvalSet& eval,
                                const std::vector<Index>& reference);

}  // namespace tasd::tasder
