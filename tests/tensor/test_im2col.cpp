#include "tensor/im2col.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/gemm_ref.hpp"
#include "tensor/generator.hpp"

namespace tasd {
namespace {

/// Direct (naive) convolution as the oracle for im2col+GEMM.
Tensor4D direct_conv(const Tensor4D& in, const MatrixF& w,
                     const ConvShape& s) {
  const Index oh = s.out_h(in.h());
  const Index ow = s.out_w(in.w());
  Tensor4D out(in.n(), s.out_channels, oh, ow);
  for (Index b = 0; b < in.n(); ++b)
    for (Index oc = 0; oc < s.out_channels; ++oc)
      for (Index y = 0; y < oh; ++y)
        for (Index x = 0; x < ow; ++x) {
          float acc = 0.0F;
          for (Index ic = 0; ic < s.in_channels; ++ic)
            for (Index kh = 0; kh < s.kernel_h; ++kh)
              for (Index kw = 0; kw < s.kernel_w; ++kw) {
                const auto iy = static_cast<std::ptrdiff_t>(y * s.stride + kh) -
                                static_cast<std::ptrdiff_t>(s.padding);
                const auto ix = static_cast<std::ptrdiff_t>(x * s.stride + kw) -
                                static_cast<std::ptrdiff_t>(s.padding);
                if (iy < 0 || ix < 0 ||
                    iy >= static_cast<std::ptrdiff_t>(in.h()) ||
                    ix >= static_cast<std::ptrdiff_t>(in.w()))
                  continue;
                const Index widx =
                    (ic * s.kernel_h + kh) * s.kernel_w + kw;
                acc += w(oc, widx) * in(b, ic, static_cast<Index>(iy),
                                        static_cast<Index>(ix));
              }
          out(b, oc, y, x) = acc;
        }
  return out;
}

struct Im2colCase {
  Index in_ch, out_ch, hw, kernel, stride, padding;
};

class Im2colEquivalence : public ::testing::TestWithParam<Im2colCase> {};

TEST_P(Im2colEquivalence, MatchesDirectConvolution) {
  const auto p = GetParam();
  Rng rng(100 + p.kernel * 10 + p.stride);
  ConvShape s;
  s.in_channels = p.in_ch;
  s.out_channels = p.out_ch;
  s.kernel_h = s.kernel_w = p.kernel;
  s.stride = p.stride;
  s.padding = p.padding;

  const Tensor4D in =
      random_tensor(2, p.in_ch, p.hw, p.hw, 1.0, Dist::kNormalStd1, rng);
  const MatrixF w = random_dense(p.out_ch, p.in_ch * p.kernel * p.kernel,
                                 Dist::kNormalStd1, rng);
  const Tensor4D oracle = direct_conv(in, w, s);

  const Index oh = s.out_h(in.h());
  const Index ow = s.out_w(in.w());
  Tensor4D out(in.n(), p.out_ch, oh, ow);
  for (Index b = 0; b < in.n(); ++b) {
    const MatrixF patches = im2col(in, b, s);
    EXPECT_EQ(patches.rows(), p.in_ch * p.kernel * p.kernel);
    EXPECT_EQ(patches.cols(), oh * ow);
    col2im_output(gemm_ref(w, patches), b, oh, ow, out);
  }
  auto fa = out.flat();
  auto fb = oracle.flat();
  ASSERT_EQ(fa.size(), fb.size());
  for (Index i = 0; i < fa.size(); ++i) EXPECT_NEAR(fa[i], fb[i], 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Im2colEquivalence,
    ::testing::Values(Im2colCase{1, 1, 4, 1, 1, 0},   // pointwise
                      Im2colCase{3, 4, 6, 3, 1, 1},   // padded 3x3
                      Im2colCase{2, 5, 8, 3, 2, 1},   // strided
                      Im2colCase{4, 2, 5, 5, 1, 2},   // 5x5 kernel
                      Im2colCase{3, 3, 7, 2, 2, 0},   // even kernel, stride 2
                      Im2colCase{1, 8, 9, 3, 3, 0})); // stride 3

TEST(Im2col, PaddingFillsZeros) {
  ConvShape s;
  s.in_channels = 1;
  s.out_channels = 1;
  s.kernel_h = s.kernel_w = 3;
  s.stride = 1;
  s.padding = 1;
  Tensor4D in(1, 1, 2, 2);
  in(0, 0, 0, 0) = 1.0F;
  const MatrixF patches = im2col(in, 0, s);
  // Patch at output (0,0): kernel centered at (0,0); the top-left kernel
  // positions fall in the padding -> zero.
  EXPECT_EQ(patches(0, 0), 0.0F);   // (kh=0,kw=0) out of bounds
  EXPECT_EQ(patches(4, 0), 1.0F);   // center hits in(0,0)
}

TEST(Im2col, RejectsWrongChannelCount) {
  ConvShape s;
  s.in_channels = 3;
  s.out_channels = 1;
  Tensor4D in(1, 2, 4, 4);
  EXPECT_THROW(im2col(in, 0, s), Error);
}

TEST(Im2col, RejectsKernelLargerThanPaddedInput) {
  ConvShape s;
  s.in_channels = 1;
  s.out_channels = 1;
  s.kernel_h = s.kernel_w = 5;
  Tensor4D in(1, 1, 3, 3);
  EXPECT_THROW(im2col(in, 0, s), Error);
}

TEST(Col2Im, ValidatesShapes) {
  Tensor4D out(1, 2, 2, 2);
  MatrixF wrong_rows(3, 4);
  EXPECT_THROW(col2im_output(wrong_rows, 0, 2, 2, out), Error);
  MatrixF wrong_cols(2, 3);
  EXPECT_THROW(col2im_output(wrong_cols, 0, 2, 2, out), Error);
}

}  // namespace
}  // namespace tasd
