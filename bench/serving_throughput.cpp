// Serving-throughput bench: the batched execution path on the Fig. 16
// real-system workload (unstructured-sparse ResNet-34, 2:4 kernels).
//
// Each query is one GEMV-style right-hand side per layer; the batch
// shares each layer's one DecompositionPlan across every item and runs
// through the packed batch kernels, which amortize per-k-step overhead
// over the whole batch — the queries/sec gain over batch-1 is the
// serving story (DeepSparse-style CPU runtimes, 2:4 tensor-core serving).
// The sweep runs once per kernel set — the pinned scalar kernels and,
// when the CPU supports them, the AVX2/FMA kernels — so the JSON records
// scalar vs SIMD serving throughput side by side.
//
// Emits BENCH_serving.json (schema tasd-bench-serving-v2; see
// docs/reproducing.md). Before timing, every layer's batched TASD output
// is checked bit-exact (`==`) against looping the single-RHS multiply of
// the same artifact — a wrong-but-fast batch kernel fails loudly here
// (non-zero exit).
//
// Usage: serving_throughput [output.json] [--quick]
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dnn/workloads.hpp"
#include "runtime/compiled_network.hpp"
#include "runtime/dense_gemm.hpp"
#include "tensor/generator.hpp"

namespace {

using namespace tasd;

/// Batched outputs == per-RHS loops, for every layer of the compiled
/// artifact at one probe batch size: run_batch vs run for the bound
/// (TASD) kernels, plus the artifact's dense batch kernel vs its dense
/// single-RHS kernel on the same weights (one rounding family per
/// artifact — the policy carries the resolved kernel names).
bool verify_bit_exact(const rt::CompiledNetwork& engine, std::size_t batch,
                      Index query_cols) {
  Rng rng(7001);
  const rt::ExecPolicy policy = engine.policy();
  bool ok = true;
  for (std::size_t i = 0; i < engine.layer_count(); ++i) {
    const auto& layer = engine.layer(i);
    std::vector<MatrixF> bs;
    for (std::size_t q = 0; q < batch; ++q)
      bs.push_back(random_dense(layer.k, query_cols, Dist::kNormalStd1, rng));

    const auto dense_batch = rt::dense_gemm_batch(layer.weight, bs, policy);
    for (std::size_t q = 0; q < batch; ++q)
      ok = ok && (dense_batch[q] == rt::dense_gemm(layer.weight, bs[q], policy));

    const auto bound_batch = engine.run_batch(i, bs);
    for (std::size_t q = 0; q < batch; ++q)
      ok = ok && (bound_batch[q] == engine.run(i, bs[q]));

    if (!ok) {
      std::fprintf(stderr, "** NOT BIT-EXACT at layer %s **\n",
                   layer.name.c_str());
      return false;
    }
  }
  return true;
}

struct KernelSetResult {
  std::string label;         ///< "scalar" | "avx2"
  std::string dense_kernel;  ///< resolved registry names
  std::string nm_kernel;
  Index plan_bytes = 0;
  double scaling_b16_over_b1 = 0.0;
  std::vector<rt::ServingThroughput> entries;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_serving.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else {
      out_path = arg;
    }
  }

  const auto net = dnn::resnet34_workload(true, 42);
  const std::vector<std::optional<TasdConfig>> configs(
      net.layers.size(), TasdConfig::parse("2:4"));

  const std::vector<std::size_t> batch_sizes =
      quick ? std::vector<std::size_t>{1, 16}
            : std::vector<std::size_t>{1, 4, 16, 64};

  // One artifact per kernel set; compiling both reuses every plan
  // through the PlanCache, so the second compile decomposes nothing.
  std::vector<std::pair<std::string, rt::CompileOptions>> kernel_sets;
  {
    rt::CompileOptions scalar;
    scalar.query_cols = 1;
    scalar.measure.repeats = quick ? 1 : 3;
    scalar.dense_kernel = "tiled-parallel";
    scalar.nm_kernel = "row-parallel";
    scalar.dense_batch_kernel = "batch-packed";
    scalar.nm_batch_kernel = "batch-packed";
    kernel_sets.emplace_back("scalar", scalar);
    // Gate on registry membership, not avx2_available(): a toolchain
    // whose compiler rejects -mavx2 builds no AVX2 kernels even on
    // capable hardware, and compiling an unregistered name would throw.
    if (rt::GemmDispatch::instance().best_dense() == "dense-avx2") {
      rt::CompileOptions simd = scalar;
      simd.dense_kernel = "dense-avx2";
      simd.nm_kernel = "nm-avx2";
      simd.dense_batch_kernel = "dense-batch-avx2";
      simd.nm_batch_kernel = "nm-batch-avx2";
      kernel_sets.emplace_back("avx2", simd);
    }
  }

  std::vector<KernelSetResult> results;
  for (const auto& [label, opt] : kernel_sets) {
    std::fprintf(stderr, "[%s] compiling %s (%zu layers)...\n", label.c_str(),
                 net.name.c_str(), net.layers.size());
    const auto engine = rt::compile(net, configs, opt);
    // Every layer is configured here; if the artifact silently bound the
    // dense kernel somewhere, run_batch == run below would hold
    // trivially and the sweep would report dense timings as TASD.
    if (engine.configured_count() != net.layers.size()) {
      std::fprintf(stderr,
                   "** only %zu of %zu layers bound a TASD series **\n",
                   engine.configured_count(), net.layers.size());
      return 1;
    }

    std::fprintf(stderr,
                 "[%s] verifying batched == per-RHS single multiply...\n",
                 label.c_str());
    if (!verify_bit_exact(engine, 5, opt.query_cols)) {
      std::fprintf(stderr,
                   "** batched path is not bit-exact; skipping the timing "
                   "sweep **\n");
      return 1;
    }

    std::fprintf(stderr, "[%s] measuring %zu batch sizes...\n", label.c_str(),
                 batch_sizes.size());
    KernelSetResult r;
    r.label = label;
    r.dense_kernel = engine.options().dense_kernel;
    r.nm_kernel = engine.options().nm_kernel;
    r.plan_bytes = engine.plan_bytes();
    r.entries = engine.serving_throughput(batch_sizes);

    double qps_b1 = 0.0, qps_b16 = 0.0;
    for (const auto& e : r.entries) {
      if (e.batch_size == 1) qps_b1 = e.tasd_qps;
      if (e.batch_size == 16) qps_b16 = e.tasd_qps;
      std::fprintf(stderr,
                   "[%s] batch %3zu  dense %8.2f ms (%7.2f qps)  tasd "
                   "%8.2f ms (%7.2f qps)  speedup %.3fx\n",
                   label.c_str(), e.batch_size, e.dense_ms, e.dense_qps,
                   e.tasd_ms, e.tasd_qps, e.dense_ms / e.tasd_ms);
    }
    r.scaling_b16_over_b1 = qps_b1 > 0.0 ? qps_b16 / qps_b1 : 0.0;
    results.push_back(std::move(r));
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::perror("serving_throughput: cannot open output");
    return 1;
  }
  std::fprintf(f, "{\n  \"schema\": \"tasd-bench-serving-v2\",\n");
  std::fprintf(f, "  \"workload\": \"%s\",\n", net.name.c_str());
  std::fprintf(f, "  \"config\": \"2:4\",\n");
  std::fprintf(f, "  \"query_cols\": 1,\n");
  std::fprintf(f, "  \"bit_exact\": true,\n");
  std::fprintf(f, "  \"kernel_sets\": [\n");
  for (std::size_t s = 0; s < results.size(); ++s) {
    const auto& r = results[s];
    std::fprintf(f, "    {\"kernels\": \"%s\", \"dense_kernel\": \"%s\", ",
                 r.label.c_str(), r.dense_kernel.c_str());
    std::fprintf(f, "\"nm_kernel\": \"%s\", \"plan_bytes\": %zu,\n",
                 r.nm_kernel.c_str(), static_cast<std::size_t>(r.plan_bytes));
    std::fprintf(f, "     \"tasd_qps_batch16_over_batch1\": %.6f,\n",
                 r.scaling_b16_over_b1);
    std::fprintf(f, "     \"entries\": [\n");
    for (std::size_t i = 0; i < r.entries.size(); ++i) {
      const auto& e = r.entries[i];
      std::fprintf(
          f,
          "      {\"batch\": %zu, \"dense_ms\": %.6f, \"tasd_ms\": %.6f, "
          "\"dense_qps\": %.6f, \"tasd_qps\": %.6f}%s\n",
          e.batch_size, e.dense_ms, e.tasd_ms, e.dense_qps, e.tasd_qps,
          i + 1 < r.entries.size() ? "," : "");
    }
    std::fprintf(f, "     ]}%s\n", s + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);

  for (const auto& r : results)
    std::fprintf(stderr, "%s: batch-16 tasd qps / batch-1: %.2fx\n",
                 r.label.c_str(), r.scaling_b16_over_b1);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}
