#include "accel/perf_model.hpp"

#include <algorithm>
#include <cmath>

#include "accel/tasd_unit.hpp"
#include "common/error.hpp"

namespace tasd::accel {

const char* component_name(Component c) {
  switch (c) {
    case Component::kMac: return "MAC";
    case Component::kRf: return "RF";
    case Component::kL1: return "L1-SMEM";
    case Component::kL2: return "L2-SMEM";
    case Component::kDram: return "DRAM";
    case Component::kTasdUnit: return "TASD-unit";
    case Component::kAccumBuf: return "AccumBuf";
    case Component::kCount: break;
  }
  return "?";
}

double LayerSim::total_energy() const {
  double total = 0.0;
  for (double e : energy_pj) total += e;
  return total;
}

namespace {

double& comp(LayerSim& sim, Component c) {
  return sim.energy_pj[static_cast<std::size_t>(c)];
}

/// Metadata storage overhead of an N:M-compressed operand, as a fraction
/// of the value bytes: ceil(log2 M) index bits per kept 32-bit value.
double nm_meta_overhead(const TasdConfig& cfg) {
  if (cfg.terms.empty()) return 0.0;
  double bits = 0.0;
  double density = 0.0;
  for (const auto& t : cfg.terms) {
    bits += std::ceil(std::log2(static_cast<double>(std::max(t.m, 2)))) *
            t.density();
    density += t.density();
  }
  if (density <= 0.0) return 0.0;
  return (bits / density) / 32.0;
}

struct Shape {
  double m, k, n;
  double passes;   // output tiles
  double tile_m, tile_n;
};

Shape make_shape(const ArchConfig& arch, const dnn::GemmWorkload& l) {
  Shape s;
  s.m = static_cast<double>(l.m);
  s.k = static_cast<double>(l.k);
  s.n = static_cast<double>(l.n);
  s.tile_m = static_cast<double>(arch.tile_m());
  s.tile_n = static_cast<double>(arch.tile_n());
  s.passes = std::ceil(s.m / s.tile_m) * std::ceil(s.n / s.tile_n);
  return s;
}

/// Dense-tensor-core execution: every MAC computed, no gating.
LayerSim simulate_dense(const ArchConfig& arch, const dnn::GemmWorkload& l,
                        const EnergyTable& t) {
  LayerSim sim;
  const Shape s = make_shape(arch, l);
  const double dense_macs = s.m * s.k * s.n;

  sim.slot_macs = dense_macs;
  sim.effectual_macs = dense_macs;
  sim.compute_cycles = s.passes * s.k;

  comp(sim, Component::kMac) = dense_macs * t.mac;
  comp(sim, Component::kRf) = 2.0 * dense_macs * t.rf;
  // Per pass, stream the A panel (tile_m x K) and B panel (K x tile_n)
  // through L2 and L1.
  const double streamed = s.passes * s.k * (s.tile_m + s.tile_n);
  comp(sim, Component::kL1) = (streamed + s.m * s.n) * t.l1;
  comp(sim, Component::kL2) = (streamed + s.m * s.n) * t.l2;
  // DRAM: read both operands once, write C once (B panel resident in L2).
  const double dram_elems = s.m * s.k + s.k * s.n + s.m * s.n;
  comp(sim, Component::kDram) = dram_elems * t.dram;
  sim.memory_cycles = dram_elems / t.dram_elems_per_cycle;
  sim.cycles = std::max(sim.compute_cycles, sim.memory_cycles);
  return sim;
}

/// DSTC: dual-side unstructured. Skips all ineffectual MACs but pays
/// imbalance (utilization), accumulation-buffer traffic per partial, and
/// coordinate metadata on compressed operands.
LayerSim simulate_dstc(const ArchConfig& arch, const dnn::GemmWorkload& l,
                       const EnergyTable& t) {
  LayerSim sim;
  const Shape s = make_shape(arch, l);
  const double dw = l.weight_density;
  const double da = l.act_density;
  const double eff = s.m * s.k * s.n * dw * da;

  sim.slot_macs = eff;
  sim.effectual_macs = eff;
  sim.compute_cycles =
      eff / (static_cast<double>(arch.macs_per_cycle()) * t.dstc_utilization);

  comp(sim, Component::kMac) = eff * t.mac;
  comp(sim, Component::kRf) = 2.0 * eff * t.rf;
  comp(sim, Component::kAccumBuf) = eff * t.dstc_accum_buffer;
  // Streamed compressed operands with coordinate metadata.
  const double streamed = s.passes * s.k *
                          (s.tile_m * dw + s.tile_n * da) *
                          t.dstc_metadata_factor;
  comp(sim, Component::kL1) = (streamed + s.m * s.n) * t.l1;
  comp(sim, Component::kL2) = (streamed + s.m * s.n) * t.l2;
  const double dram_elems = (s.m * s.k * dw + s.k * s.n * da) *
                                t.dstc_metadata_factor +
                            s.m * s.n;
  comp(sim, Component::kDram) = dram_elems * t.dram;
  sim.memory_cycles = dram_elems / t.dram_elems_per_cycle;
  sim.cycles = std::max(sim.compute_cycles, sim.memory_cycles);
  return sim;
}

/// TTC (STC/VEGETA + TASD): structured sparse execution of a TASD series
/// on one operand, dense otherwise.
LayerSim simulate_ttc(const ArchConfig& arch, const LayerExecution& exec,
                      const EnergyTable& t) {
  const dnn::GemmWorkload& l = exec.layer;
  LayerSim sim;
  const Shape s = make_shape(arch, l);

  const bool on_weights = exec.weight_cfg.has_value();
  const bool on_acts = exec.act_cfg.has_value();
  if (!on_weights && !on_acts) {
    // Plain structured HW on an unstructured workload: dense execution
    // (paper Fig. 19: VEGETA without TASDER gains nothing).
    return simulate_dense(arch, l, t);
  }
  const TasdConfig& cfg = on_weights ? *exec.weight_cfg : *exec.act_cfg;
  TASD_CHECK_MSG(arch.supports(cfg), arch.name << " cannot execute series "
                                               << cfg.str());

  const double sd = cfg.max_density();  // series slot density
  const double terms = static_cast<double>(cfg.order());
  const double meta = nm_meta_overhead(cfg);

  // Reduction loop shortened to the series' slots.
  const double k_eff = std::max(1.0, s.k * sd);
  sim.compute_cycles = s.passes * k_eff;

  // Dynamic decomposition pipeline stalls (TASD-A only; TASD-W is
  // decomposed offline).
  if (on_acts) {
    const auto unit = tasd_unit_model(arch, cfg);
    sim.compute_cycles *= unit.stall_factor();
  }

  // Slot occupancy and gating. Slots are reserved by the pattern whether
  // or not a real non-zero landed in them; energy is only spent on
  // effectual MACs (zero operands are gated).
  const double slot_macs = s.m * k_eff * s.n;
  double kept;  // fraction of all positions of the decomposed operand kept
  if (on_weights) {
    kept = exec.weight_kept_fraction.value_or(std::min(l.weight_density, sd));
  } else {
    // ReLU nets: real zeros cap occupancy; GELU nets: slots fill with
    // small-but-non-zero values.
    kept = l.act_relu ? std::min(l.act_density, sd) : sd;
  }
  const double other_density = on_weights
                                   ? (l.act_relu ? l.act_density : 1.0)
                                   : l.weight_density;
  const double eff = s.m * s.k * s.n * kept * other_density;
  sim.slot_macs = slot_macs;
  sim.effectual_macs = eff;

  comp(sim, Component::kMac) = eff * t.mac;
  comp(sim, Component::kRf) = 2.0 * slot_macs * t.rf;

  // Streaming: the compressed operand contributes k_eff rows per block
  // (values + metadata); the dense operand is gathered against the same
  // metadata, so it also streams k_eff per block.
  const double streamed =
      s.passes * k_eff * (s.tile_m * (1.0 + meta) + s.tile_n);
  // Decomposition-aware dataflow (Fig. 11): each extra term re-reads and
  // re-writes the C tile at L1 — never at DRAM. The ablation knob
  // instead streams each term's partial C through the whole hierarchy.
  const double c_reaccum = 2.0 * s.m * s.n * std::max(0.0, terms - 1.0);
  double c_l1 = s.m * s.n;
  double c_l2 = s.m * s.n;
  double c_dram_extra = 0.0;
  if (arch.decomposition_aware_dataflow) {
    c_l1 += c_reaccum;
  } else {
    c_l1 += c_reaccum;
    c_l2 += c_reaccum;
    c_dram_extra = c_reaccum;
  }
  comp(sim, Component::kL1) = (streamed + c_l1) * t.l1;
  comp(sim, Component::kL2) = (streamed + c_l2) * t.l2;

  // DRAM: the decomposed operand is stored compressed (values + meta).
  double a_dram = s.m * s.k;  // weight operand
  double b_dram = s.k * s.n;  // activation operand
  if (on_weights) {
    a_dram *= sd * (1.0 + meta);
  } else {
    b_dram *= sd * (1.0 + meta);
  }
  const double dram_elems = a_dram + b_dram + s.m * s.n + c_dram_extra;
  comp(sim, Component::kDram) = dram_elems * t.dram;

  // TASD-unit energy: each input element passes the comparator tree once.
  if (on_acts) comp(sim, Component::kTasdUnit) = s.k * s.n * t.tasd_unit;

  sim.memory_cycles = dram_elems / t.dram_elems_per_cycle;
  sim.cycles = std::max(sim.compute_cycles, sim.memory_cycles);
  return sim;
}

}  // namespace

LayerSim simulate_layer(const ArchConfig& arch, const LayerExecution& exec,
                        const EnergyTable& table) {
  TASD_CHECK_MSG(!(exec.weight_cfg && exec.act_cfg),
                 "cannot exploit weight and activation sparsity "
                 "concurrently (paper §5.1)");
  switch (arch.kind) {
    case HwKind::kDenseTC:
      return simulate_dense(arch, exec.layer, table);
    case HwKind::kDSTC:
      return simulate_dstc(arch, exec.layer, table);
    case HwKind::kTTC:
      return simulate_ttc(arch, exec, table);
  }
  TASD_CHECK_MSG(false, "unknown hardware kind");
  return {};
}

}  // namespace tasd::accel
