// Random matrix/tensor generators used across experiments.
//
// All generators take an explicit Rng so every experiment is reproducible.
#pragma once

#include "common/rng.hpp"
#include "tensor/matrix.hpp"
#include "tensor/tensor4d.hpp"

namespace tasd {

/// Element value distribution for generated data.
enum class Dist {
  kUniform01,   ///< U[0, 1) — the paper's Fig. 18 setup
  kNormal,      ///< N(0, 1/3) — the paper's Fig. 17 setup
  kNormalStd1,  ///< N(0, 1)
};

/// Dense matrix with every element drawn from `dist`.
MatrixF random_dense(Index rows, Index cols, Dist dist, Rng& rng);

/// Unstructured sparse matrix: each element is non-zero with probability
/// `density`, value drawn from `dist`. density in [0,1].
MatrixF random_unstructured(Index rows, Index cols, double density, Dist dist,
                            Rng& rng);

/// Matrix that already satisfies N:M structured sparsity: in every
/// M-aligned block of each row, exactly min(N, nnz budget) random positions
/// are non-zero. cols need not be divisible by m; the tail block is
/// treated as a shorter block.
MatrixF random_nm_structured(Index rows, Index cols, int n, int m, Dist dist,
                             Rng& rng);

/// Random NCHW tensor with the given density (1.0 = dense).
Tensor4D random_tensor(Index n, Index c, Index h, Index w, double density,
                       Dist dist, Rng& rng);

/// Prune a dense matrix to a target sparsity by zeroing the
/// smallest-magnitude elements (global magnitude pruning). Returns the
/// pruned copy; ties are broken by element order.
MatrixF magnitude_prune(const MatrixF& dense, double target_sparsity);

}  // namespace tasd
