#include "dnn/layer_binding.hpp"

#include "common/error.hpp"

namespace tasd::dnn {

std::vector<LayerBinding> bind_layers(
    const NetworkWorkload& net,
    const std::vector<std::optional<TasdConfig>>& configs) {
  TASD_CHECK_MSG(configs.size() == net.layers.size(),
                 "config list must align with workload layers");
  std::vector<LayerBinding> out;
  out.reserve(net.layers.size());
  for (std::size_t i = 0; i < net.layers.size(); ++i) {
    LayerBinding b;
    b.name = net.layers[i].name;
    b.weight = materialize_weight(net.layers[i]);
    b.positions = net.layers[i].n;
    b.config = configs[i];
    out.push_back(std::move(b));
  }
  return out;
}

std::vector<LayerBinding> bind_layers(Model& model, Index positions) {
  std::vector<LayerBinding> out;
  for (GemmLayer* layer : model.gemm_layers()) {
    LayerBinding b;
    b.name = layer->name();
    b.weight = layer->weight();
    b.positions = positions;
    b.config = layer->tasd_w();
    out.push_back(std::move(b));
  }
  return out;
}

}  // namespace tasd::dnn
