#include "sparse/nm_matrix.hpp"

#include <bit>
#include <cmath>

#include "common/error.hpp"

namespace tasd::sparse {

NMSparseMatrix::NMSparseMatrix(const MatrixF& dense, NMPattern pattern)
    : pattern_(pattern), rows_(dense.rows()), cols_(dense.cols()) {
  TASD_CHECK_MSG(satisfies(dense, pattern),
                 "matrix does not satisfy " << pattern.str()
                                            << "; project it to a view first");
  TASD_CHECK_MSG(pattern.m <= 256, "in-block index stored as u8; M <= 256");
  const auto m = static_cast<Index>(pattern.m);
  blocks_per_row_ = (cols_ + m - 1) / m;
  block_offsets_.reserve(rows_ * blocks_per_row_ + 1);
  block_offsets_.push_back(0);
  for (Index r = 0; r < rows_; ++r) {
    auto row = dense.row(r);
    for (Index b = 0; b < cols_; b += m) {
      const Index end = std::min(cols_, b + m);
      for (Index i = b; i < end; ++i) {
        if (row[i] != 0.0F) {
          values_.push_back(row[i]);
          in_block_index_.push_back(static_cast<std::uint8_t>(i - b));
        }
      }
      block_offsets_.push_back(values_.size());
    }
  }
}

NMSparseMatrix NMSparseMatrix::from_parts(
    NMPattern pattern, Index rows, Index cols, std::vector<float> values,
    std::vector<std::uint8_t> in_block_index,
    std::vector<Index> block_offsets) {
  TASD_CHECK_MSG(pattern.m <= 256, "in-block index stored as u8; M <= 256");
  NMSparseMatrix out;
  out.pattern_ = pattern;
  out.rows_ = rows;
  out.cols_ = cols;
  const auto m = static_cast<Index>(pattern.m);
  out.blocks_per_row_ = (cols + m - 1) / m;
  TASD_CHECK_MSG(
      block_offsets.size() == rows * out.blocks_per_row_ + 1,
      "block_offsets must hold rows*blocks_per_row+1 entries");
  TASD_CHECK(values.size() == in_block_index.size());
  TASD_CHECK(block_offsets.front() == 0 &&
             block_offsets.back() == values.size());
  out.values_ = std::move(values);
  out.in_block_index_ = std::move(in_block_index);
  out.block_offsets_ = std::move(block_offsets);
  return out;
}

double NMSparseMatrix::sparsity() const {
  const Index total = rows_ * cols_;
  if (total == 0) return 0.0;
  return 1.0 - static_cast<double>(nnz()) / static_cast<double>(total);
}

MatrixF NMSparseMatrix::to_dense() const {
  MatrixF out(rows_, cols_);
  const auto m = static_cast<Index>(pattern_.m);
  Index group = 0;
  for (Index r = 0; r < rows_; ++r) {
    for (Index b = 0; b < blocks_per_row_; ++b, ++group) {
      const Index base = b * m;
      for (Index i = block_offsets_[group]; i < block_offsets_[group + 1];
           ++i) {
        out(r, base + in_block_index_[i]) = values_[i];
      }
    }
  }
  return out;
}

Index NMSparseMatrix::storage_bytes() const {
  // Hardware-style: every block reserves N value slots (4B each) and
  // N * ceil(log2(M)) metadata bits, independent of actual occupancy.
  const Index blocks = rows_ * blocks_per_row_;
  const auto index_bits = static_cast<Index>(
      std::bit_width(static_cast<unsigned>(pattern_.m - 1)));
  const Index value_bytes = blocks * static_cast<Index>(pattern_.n) * 4;
  const Index meta_bits = blocks * static_cast<Index>(pattern_.n) * index_bits;
  return value_bytes + (meta_bits + 7) / 8;
}

}  // namespace tasd::sparse
