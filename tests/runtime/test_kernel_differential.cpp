// Differential property sweep (ISSUE 10 satellite): one seeded
// random-shape generator drives every registered kernel family — scalar,
// AVX2, AVX-512, and whatever a future backend registers — through the
// same draws and asserts the cross-kernel contract from docs/kernels.md:
//
//  * within a rounding family results are bit-identical (kernel vs
//    kernel, batched vs looped, any thread count vs one thread);
//  * across families results agree with the scalar gemm_ref oracle to
//    1e-4 float tolerance.
//
// Shapes are drawn, not hand-picked: ragged M/K/N around the vector
// blocking grains (1..64 rows, K crossing the 4-step unroll, N crossing
// the 8/16/32-lane blocks plus masked tails), ragged batch width mixes
// including zero-column items, and mixed-pattern TASD series (2:8+1:8).
// A new backend only has to register its kernels and name them into a
// family (kernel_families.hpp) to inherit the whole sweep.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/parallel.hpp"
#include "core/decompose.hpp"
#include "kernel_families.hpp"
#include "runtime/dense_gemm.hpp"
#include "runtime/nm_gemm.hpp"
#include "sparse/nm_matrix.hpp"
#include "tensor/gemm_ref.hpp"
#include "tensor/generator.hpp"
#include "tensor/norms.hpp"

namespace tasd::rt {
namespace {

using testing::paired_single_kernel;
using testing::rounding_family;

constexpr std::size_t kDraws = 6;
constexpr std::size_t kSweepThreads[] = {0, 1, 2, 5, 8};

struct Draw {
  Index m, k, n;
  std::vector<Index> widths;  // ragged batch mix (may contain 0)
  std::string label;
};

// The generator: shapes land on and around the kernels' blocking grains
// (AVX-512 handles 32/16-col blocks with a masked tail, AVX2 8-col,
// scalar tiles 512) — uniform draws over [1, 64]x[8, 160]x[1, 48] cross
// every remainder path within a few draws. K is rounded to a multiple
// of 8 so the same draw can also feed the N:M cases (patterns over M=4
// and M=8 groups); raggedness everywhere else is the point.
std::vector<Draw> make_draws(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Draw> draws;
  for (std::size_t i = 0; i < kDraws; ++i) {
    Draw d;
    d.m = static_cast<Index>(rng.uniform_int(1, 64));
    d.k = static_cast<Index>(rng.uniform_int(1, 20)) * 8;
    d.n = static_cast<Index>(rng.uniform_int(1, 48));
    const std::size_t items = static_cast<std::size_t>(rng.uniform_int(2, 5));
    for (std::size_t q = 0; q < items; ++q)
      d.widths.push_back(static_cast<Index>(rng.uniform_int(0, 33)));
    d.label = std::to_string(d.m) + "x" + std::to_string(d.k) + "x" +
              std::to_string(d.n) + " draw=" + std::to_string(i);
    draws.push_back(std::move(d));
  }
  return draws;
}

/// Assert `out` equals the family's canonical result bitwise (recording
/// it on first sight) and the oracle to float tolerance.
void check_family(std::map<std::string, MatrixF>& canon,
                  const std::string& kernel, const MatrixF& out,
                  const MatrixF& oracle, const std::string& ctx) {
  EXPECT_TRUE(allclose(out, oracle, 1e-4, 1e-4)) << ctx << " kernel=" << kernel;
  const std::string family = rounding_family(kernel);
  const auto [it, fresh] = canon.emplace(family, out);
  if (!fresh)
    EXPECT_TRUE(out == it->second)
        << ctx << " kernel=" << kernel << " diverges within family " << family;
}

TEST(KernelDifferential, DenseKernelsAgreeAcrossFamiliesOnRandomShapes) {
  for (const Draw& d : make_draws(7101)) {
    Rng rng(7102);
    const MatrixF a = random_dense(d.m, d.k, Dist::kNormalStd1, rng);
    const MatrixF b = random_dense(d.k, d.n, Dist::kNormalStd1, rng);
    const MatrixF oracle = gemm_ref(a, b);
    std::map<std::string, MatrixF> canon;
    for (const auto& kernel : GemmDispatch::instance().dense_kernels()) {
      ExecPolicy one_policy;
      one_policy.dense_kernel = kernel;
      ThreadPool one(1);
      one_policy.pool = &one;
      const MatrixF serial = dense_gemm(a, b, one_policy);
      check_family(canon, kernel, serial, oracle, d.label);
      for (const std::size_t threads : kSweepThreads) {
        ThreadPool pool(threads);
        ExecPolicy policy;
        policy.pool = &pool;
        policy.dense_kernel = kernel;
        EXPECT_TRUE(dense_gemm(a, b, policy) == serial)
            << d.label << " kernel=" << kernel << " threads=" << threads;
      }
    }
  }
}

TEST(KernelDifferential, NmKernelsAgreeAcrossFamiliesOnRandomShapes) {
  // Alternate the N:M pattern per draw so both the M=4 and M=8 group
  // decoders hit the random shapes.
  std::size_t i = 0;
  for (const Draw& d : make_draws(7201)) {
    Rng rng(7202);
    const bool wide = (i++ % 2) == 0;
    const MatrixF dense = random_nm_structured(d.m, d.k, wide ? 2 : 1,
                                               wide ? 4 : 8, Dist::kNormalStd1,
                                               rng);
    const sparse::NMSparseMatrix a(dense,
                                   sparse::NMPattern(wide ? 2 : 1, wide ? 4 : 8));
    const MatrixF b = random_dense(d.k, d.n, Dist::kNormalStd1, rng);
    const MatrixF oracle = gemm_ref(dense, b);
    std::map<std::string, MatrixF> canon;
    for (const auto& kernel : GemmDispatch::instance().nm_kernels()) {
      ExecPolicy one_policy;
      one_policy.nm_kernel = kernel;
      ThreadPool one(1);
      one_policy.pool = &one;
      const MatrixF serial = nm_gemm(a, b, one_policy);
      check_family(canon, kernel, serial, oracle, d.label);
      for (const std::size_t threads : kSweepThreads) {
        ThreadPool pool(threads);
        ExecPolicy policy;
        policy.pool = &pool;
        policy.nm_kernel = kernel;
        EXPECT_TRUE(nm_gemm(a, b, policy) == serial)
            << d.label << " kernel=" << kernel << " threads=" << threads;
      }
    }
  }
}

TEST(KernelDifferential, BatchKernelsMatchLoopedSinglesOnRaggedMixes) {
  for (const Draw& d : make_draws(7301)) {
    Rng rng(7303);
    const MatrixF aw = random_dense(d.m, d.k, Dist::kNormalStd1, rng);
    const MatrixF nm_dense =
        random_nm_structured(d.m, d.k, 2, 4, Dist::kNormalStd1, rng);
    const sparse::NMSparseMatrix an(nm_dense, sparse::NMPattern(2, 4));
    std::vector<MatrixF> bs;
    for (const Index w : d.widths)
      bs.push_back(random_dense(d.k, w, Dist::kNormalStd1, rng));

    for (const auto& kernel : GemmDispatch::instance().dense_batch_kernels()) {
      for (const std::size_t threads : kSweepThreads) {
        ThreadPool pool(threads);
        ExecPolicy policy;
        policy.pool = &pool;
        policy.dense_batch_kernel = kernel;
        policy.dense_kernel = paired_single_kernel(kernel, /*dense=*/true);
        const auto batch = dense_gemm_batch(aw, bs, policy);
        ASSERT_EQ(batch.size(), bs.size());
        for (std::size_t q = 0; q < bs.size(); ++q)
          EXPECT_TRUE(batch[q] == dense_gemm(aw, bs[q], policy))
              << d.label << " kernel=" << kernel << " threads=" << threads
              << " item=" << q;
      }
    }
    for (const auto& kernel : GemmDispatch::instance().nm_batch_kernels()) {
      for (const std::size_t threads : kSweepThreads) {
        ThreadPool pool(threads);
        ExecPolicy policy;
        policy.pool = &pool;
        policy.nm_batch_kernel = kernel;
        policy.nm_kernel = paired_single_kernel(kernel, /*dense=*/false);
        const auto batch = nm_gemm_batch(an, bs, policy);
        ASSERT_EQ(batch.size(), bs.size());
        for (std::size_t q = 0; q < bs.size(); ++q)
          EXPECT_TRUE(batch[q] == nm_gemm(an, bs[q], policy))
              << d.label << " kernel=" << kernel << " threads=" << threads
              << " item=" << q;
      }
    }
  }
}

TEST(KernelDifferential, MixedPatternSeriesAgreesAcrossFamilies) {
  // The full TASD pipeline (mixed 2:8+1:8 decomposition, two series
  // terms) under each registered nm kernel: families agree bitwise
  // internally and with the functional model to tolerance.
  for (const Draw& d : make_draws(7401)) {
    Rng rng(7402);
    const MatrixF a =
        random_unstructured(d.m, d.k, 0.3, Dist::kNormalStd1, rng);
    const MatrixF b = random_dense(d.k, d.n, Dist::kNormalStd1, rng);
    const auto dec = decompose(a, TasdConfig::parse("2:8+1:8"));
    const TasdSeriesGemm series(dec);
    const MatrixF functional = gemm_ref(dec.approximation(), b);
    std::map<std::string, MatrixF> canon;
    for (const auto& kernel : GemmDispatch::instance().nm_kernels()) {
      ExecPolicy policy;
      policy.nm_kernel = kernel;
      check_family(canon, kernel, series.multiply(b, policy), functional,
                   d.label);
    }
  }
}

}  // namespace
}  // namespace tasd::rt
