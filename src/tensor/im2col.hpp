// im2col lowering: turns a convolution into a GEMM, which is how both the
// paper's accelerators and our CPU runtime execute CONV layers.
#pragma once

#include "tensor/matrix.hpp"
#include "tensor/tensor4d.hpp"

namespace tasd {

/// Static shape description of a 2-D convolution.
struct ConvShape {
  Index in_channels = 0;
  Index out_channels = 0;
  Index kernel_h = 1;
  Index kernel_w = 1;
  Index stride = 1;
  Index padding = 0;

  /// Output spatial height for a given input height.
  [[nodiscard]] Index out_h(Index in_h) const {
    TASD_CHECK_MSG(in_h + 2 * padding >= kernel_h,
                   "kernel larger than padded input");
    return (in_h + 2 * padding - kernel_h) / stride + 1;
  }
  /// Output spatial width for a given input width.
  [[nodiscard]] Index out_w(Index in_w) const {
    TASD_CHECK_MSG(in_w + 2 * padding >= kernel_w,
                   "kernel larger than padded input");
    return (in_w + 2 * padding - kernel_w) / stride + 1;
  }
};

/// Lower one batch item to a (C*kh*kw) x (out_h*out_w) patch matrix.
/// Out-of-bounds (padding) positions contribute zeros.
MatrixF im2col(const Tensor4D& input, Index batch, const ConvShape& shape);

/// Fold a (out_channels) x (out_h*out_w) GEMM result back into the output
/// tensor at the given batch index.
void col2im_output(const MatrixF& gemm_out, Index batch, Index out_h,
                   Index out_w, Tensor4D& output);

}  // namespace tasd
