// TASD-approximated matrix multiplication (paper §3.2).
//
// C = A*B ≈ Σ_i Ai*B, executing one structured sparse GEMM per term via
// the distributive property. This is the functional (bit-accurate
// numerics, not performance) model of what a structured sparse
// accelerator executes; the performance model lives in src/accel/ and the
// timed CPU kernels in src/runtime/.
#pragma once

#include "core/config.hpp"
#include "core/decompose.hpp"
#include "tensor/matrix.hpp"

namespace tasd {

/// Approximate C = A*B by decomposing A with `config` and accumulating
/// one term-GEMM per series term.
MatrixF tasd_gemm(const MatrixF& a, const MatrixF& b,
                  const TasdConfig& config);

/// Same, reusing a precomputed decomposition of A (e.g. static weights
/// decomposed offline by TASD-W).
MatrixF tasd_gemm(const Decomposition& a_decomposed, const MatrixF& b);

/// Number of scalar multiply-accumulates the term GEMMs execute (counting
/// one MAC per stored non-zero of each term times B's width). This is the
/// "MACs" metric of paper Fig. 20.
Index tasd_gemm_macs(const Decomposition& a_decomposed, Index b_cols);

/// MACs for a dense GEMM of the same shape.
Index dense_gemm_macs(Index m, Index k, Index n);

}  // namespace tasd
