// Serving-throughput bench: the batched execution path on the Fig. 16
// real-system workload (unstructured-sparse ResNet-34, 2:4 kernels).
//
// Each query is one GEMV-style right-hand side per layer; the batch
// shares each layer's one DecompositionPlan across every item and runs
// through the packed batch kernels, which amortize per-k-step overhead
// over the whole batch — the queries/sec gain over batch-1 is the
// serving story (DeepSparse-style CPU runtimes, 2:4 tensor-core serving).
//
// Emits BENCH_serving.json (schema tasd-bench-serving-v1). Before
// timing, every layer's batched TASD output is checked bit-exact (`==`)
// against looping the single-RHS multiply — a wrong-but-fast batch
// kernel fails loudly here (non-zero exit).
//
// Usage: serving_throughput [output.json] [--quick]
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dnn/workloads.hpp"
#include "runtime/compiled_network.hpp"
#include "runtime/dense_gemm.hpp"
#include "tensor/generator.hpp"

namespace {

using namespace tasd;

/// Batched outputs == per-RHS loops, for every layer of the compiled
/// artifact at one probe batch size: run_batch vs run for the bound
/// (TASD) kernels, plus the dense batch kernel vs the dense single-RHS
/// kernel on the same weights.
bool verify_bit_exact(const rt::CompiledNetwork& engine, std::size_t batch,
                      Index query_cols) {
  Rng rng(7001);
  bool ok = true;
  for (std::size_t i = 0; i < engine.layer_count(); ++i) {
    const auto& layer = engine.layer(i);
    std::vector<MatrixF> bs;
    for (std::size_t q = 0; q < batch; ++q)
      bs.push_back(random_dense(layer.k, query_cols, Dist::kNormalStd1, rng));

    const auto dense_batch = rt::dense_gemm_batch(layer.weight, bs);
    for (std::size_t q = 0; q < batch; ++q)
      ok = ok && (dense_batch[q] == rt::dense_gemm(layer.weight, bs[q]));

    const auto bound_batch = engine.run_batch(i, bs);
    for (std::size_t q = 0; q < batch; ++q)
      ok = ok && (bound_batch[q] == engine.run(i, bs[q]));

    if (!ok) {
      std::fprintf(stderr, "** NOT BIT-EXACT at layer %s **\n",
                   layer.name.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_serving.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else {
      out_path = arg;
    }
  }

  const auto net = dnn::resnet34_workload(true, 42);
  const std::vector<std::optional<TasdConfig>> configs(
      net.layers.size(), TasdConfig::parse("2:4"));

  const std::vector<std::size_t> batch_sizes =
      quick ? std::vector<std::size_t>{1, 16}
            : std::vector<std::size_t>{1, 4, 16, 64};
  rt::CompileOptions opt;
  opt.query_cols = 1;
  opt.measure.repeats = quick ? 1 : 3;

  // Compile once: every layer's plan is prewarmed here, and the same
  // artifact serves the verification pass and every batch size.
  std::fprintf(stderr, "compiling %s (%zu layers)...\n", net.name.c_str(),
               net.layers.size());
  const auto engine = rt::compile(net, configs, opt);
  // Every layer is configured here; if the artifact silently bound the
  // dense kernel somewhere, run_batch == run below would hold trivially
  // and the sweep would report dense timings as TASD.
  if (engine.configured_count() != net.layers.size()) {
    std::fprintf(stderr, "** only %zu of %zu layers bound a TASD series **\n",
                 engine.configured_count(), net.layers.size());
    return 1;
  }
  const Index plan_bytes = engine.plan_bytes();

  std::fprintf(stderr, "verifying batched == per-RHS single multiply...\n");
  const bool bit_exact = verify_bit_exact(engine, 5, opt.query_cols);
  if (!bit_exact) {
    std::fprintf(stderr,
                 "** batched path is not bit-exact; skipping the timing "
                 "sweep **\n");
    return 1;
  }

  std::fprintf(stderr, "measuring %zu batch sizes...\n", batch_sizes.size());
  const auto results = engine.serving_throughput(batch_sizes);

  double qps_b1 = 0.0, qps_b16 = 0.0;
  for (const auto& r : results) {
    if (r.batch_size == 1) qps_b1 = r.tasd_qps;
    if (r.batch_size == 16) qps_b16 = r.tasd_qps;
    std::fprintf(stderr,
                 "batch %3zu  dense %8.2f ms (%7.2f qps)  tasd %8.2f ms "
                 "(%7.2f qps)  speedup %.3fx\n",
                 r.batch_size, r.dense_ms, r.dense_qps, r.tasd_ms, r.tasd_qps,
                 r.dense_ms / r.tasd_ms);
  }
  const double scaling = qps_b1 > 0.0 ? qps_b16 / qps_b1 : 0.0;

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::perror("serving_throughput: cannot open output");
    return 1;
  }
  std::fprintf(f, "{\n  \"schema\": \"tasd-bench-serving-v1\",\n");
  std::fprintf(f, "  \"workload\": \"%s\",\n", net.name.c_str());
  std::fprintf(f, "  \"config\": \"2:4\",\n");
  std::fprintf(f, "  \"query_cols\": %zu,\n",
               static_cast<std::size_t>(opt.query_cols));
  std::fprintf(f, "  \"plan_bytes\": %zu,\n",
               static_cast<std::size_t>(plan_bytes));
  std::fprintf(f, "  \"bit_exact\": %s,\n", bit_exact ? "true" : "false");
  std::fprintf(f, "  \"tasd_qps_batch16_over_batch1\": %.6f,\n", scaling);
  std::fprintf(f, "  \"entries\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "    {\"batch\": %zu, \"dense_ms\": %.6f, \"tasd_ms\": %.6f, "
                 "\"dense_qps\": %.6f, \"tasd_qps\": %.6f}%s\n",
                 r.batch_size, r.dense_ms, r.tasd_ms, r.dense_qps, r.tasd_qps,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);

  std::fprintf(stderr, "wrote %s  (batch-16 tasd qps / batch-1: %.2fx)\n",
               out_path.c_str(), scaling);
  return 0;
}
