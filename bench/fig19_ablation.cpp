// Figure 19 (Appendix B): ablation over the contributions — DSTC
// (unstructured HW), plain VEGETA (structured HW, no TASDER), VEGETA +
// TASDER (weight decomposition only), and TTC-VEGETA + TASDER (adds the
// dynamic TASD units for activations) — on dense / unstructured-pruned /
// structured-pruned ResNet-50 and BERT.
//
// Paper takeaways: plain VEGETA gains nothing on off-the-shelf models
// (except structured-pruned ones); TASDER unlocks unstructured weight
// sparsity on VEGETA; the TTC extension adds activation sparsity on top,
// improving every workload.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"

using namespace tasd;

namespace {

/// A structured-pruned workload: every layer's weights already conform
/// to 4:8 (HW-aware fine-tuning), density = 0.5.
dnn::NetworkWorkload structured_pruned(dnn::NetworkWorkload net) {
  net.name = "str_" + net.name.substr(net.name.find('_') + 1);
  net.sparse_weights = true;
  for (auto& l : net.layers) {
    l.weight_density = std::min(l.weight_density, 0.5);
    l.structured_n = 4;
    l.structured_m = 8;
  }
  return net;
}

}  // namespace

int main() {
  print_banner("Figure 19: ablation — DSTC / VEGETA / VEGETA+TASDER / "
               "TTC-VEGETA+TASDER (normalized EDP)");

  std::vector<dnn::NetworkWorkload> workloads = {
      dnn::resnet50_workload(false, 42),
      dnn::bert_workload(false, 42),
      dnn::resnet50_workload(true, 42),
      dnn::bert_workload(true, 42),
      structured_pruned(dnn::resnet50_workload(false, 42)),
      structured_pruned(dnn::bert_workload(false, 42)),
  };

  const auto dstc = accel::ArchConfig::dstc();
  const auto vegeta = accel::ArchConfig::vegeta_m8_no_tasd();
  const auto ttc = accel::ArchConfig::ttc_vegeta_m8();

  TextTable t;
  t.header({"workload", "DSTC", "VEGETA", "VEGETA w/ TASDER",
            "TTC-VEGETA w/ TASDER"});
  std::vector<std::vector<double>> norm(4);
  for (const auto& net : workloads) {
    const auto base = bench::baseline_tc(net);
    // DSTC: native unstructured execution.
    const double e_dstc =
        accel::normalized_edp(bench::run_on(dstc, net), base);
    // Plain VEGETA without TASDER: only structured-pruned weights are
    // directly executable (weights already conform to 4:8).
    std::vector<accel::LayerExecution> plain =
        tasder::plain_executions(net);
    if (net.name.rfind("str_", 0) == 0) {
      for (auto& e : plain) {
        e.weight_cfg = TasdConfig::parse("4:8");
        e.weight_kept_fraction = e.layer.weight_density;
      }
    }
    const double e_vegeta = accel::normalized_edp(
        accel::simulate_network(vegeta, plain, net.name), base);
    // VEGETA + TASDER: weight decomposition only (no TASD units).
    const double e_vegeta_tasder =
        accel::normalized_edp(bench::run_on(vegeta, net), base);
    // Full TTC-VEGETA + TASDER.
    const double e_ttc =
        accel::normalized_edp(bench::run_on(ttc, net), base);
    norm[0].push_back(e_dstc);
    norm[1].push_back(e_vegeta);
    norm[2].push_back(e_vegeta_tasder);
    norm[3].push_back(e_ttc);
    t.row({net.name, TextTable::num(e_dstc, 3), TextTable::num(e_vegeta, 3),
           TextTable::num(e_vegeta_tasder, 3), TextTable::num(e_ttc, 3)});
  }
  std::vector<std::string> geo{"geomean"};
  for (auto& v : norm) geo.push_back(TextTable::num(accel::geomean(v), 3));
  t.row(geo);
  t.print();

  std::cout << "\nPaper shape check: VEGETA = 1.0 on dense/unstructured "
               "models (no TASDER, no gain);\nVEGETA+TASDER recovers "
               "weight sparsity on unstructured models; TTC adds "
               "activation\nsparsity and improves every column.\n";
  return 0;
}
