// Deterministic random number generation.
//
// Every experiment, test, and bench constructs its own Rng from an explicit
// seed so that all results in the repository are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace tasd {

/// Seeded pseudo-random generator wrapping a fixed-algorithm engine.
///
/// We pin mt19937_64 (rather than default_random_engine) so streams are
/// identical across standard libraries.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Uniform float in [lo, hi).
  float uniform_float(float lo = 0.0F, float hi = 1.0F);

  /// Normal with the given mean / standard deviation.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child stream (for per-layer / per-matrix seeding).
  Rng fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tasd
