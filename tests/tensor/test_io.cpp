#include "tensor/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/rng.hpp"
#include "tensor/generator.hpp"

namespace tasd {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(MatrixIo, CsvRoundTripExact) {
  Rng rng(9101);
  const MatrixF m = random_unstructured(7, 11, 0.5, Dist::kNormalStd1, rng);
  const auto path = temp_path("m.csv");
  save_matrix_csv(m, path);
  EXPECT_EQ(load_matrix_csv(path), m);  // %.9g is lossless for float32
  std::remove(path.c_str());
}

TEST(MatrixIo, BinaryRoundTripExact) {
  Rng rng(9102);
  const MatrixF m = random_dense(13, 5, Dist::kNormalStd1, rng);
  const auto path = temp_path("m.bin");
  save_matrix_binary(m, path);
  EXPECT_EQ(load_matrix_binary(path), m);
  std::remove(path.c_str());
}

TEST(MatrixIo, MissingFileThrows) {
  EXPECT_THROW(load_matrix_csv("/nonexistent/nope.csv"), Error);
  EXPECT_THROW(load_matrix_binary("/nonexistent/nope.bin"), Error);
}

TEST(MatrixIo, RaggedCsvRejected) {
  const auto path = temp_path("ragged.csv");
  std::ofstream(path) << "1,2,3\n4,5\n";
  EXPECT_THROW(load_matrix_csv(path), Error);
  std::remove(path.c_str());
}

TEST(MatrixIo, MalformedCellRejected) {
  const auto path = temp_path("bad.csv");
  std::ofstream(path) << "1,abc\n";
  EXPECT_THROW(load_matrix_csv(path), Error);
  std::remove(path.c_str());
}

TEST(MatrixIo, EmptyCsvRejected) {
  const auto path = temp_path("empty.csv");
  std::ofstream(path) << "";
  EXPECT_THROW(load_matrix_csv(path), Error);
  std::remove(path.c_str());
}

TEST(MatrixIo, WrongMagicRejected) {
  const auto path = temp_path("notmat.bin");
  std::ofstream(path, std::ios::binary) << "GARBAGE!" << std::string(16, 'x');
  EXPECT_THROW(load_matrix_binary(path), Error);
  std::remove(path.c_str());
}

TEST(MatrixIo, SpecialValuesSurviveCsv) {
  MatrixF m(1, 3, {-0.0F, 1e-38F, 3.4e38F});
  const auto path = temp_path("special.csv");
  save_matrix_csv(m, path);
  const MatrixF back = load_matrix_csv(path);
  EXPECT_EQ(back(0, 1), 1e-38F);
  EXPECT_EQ(back(0, 2), 3.4e38F);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tasd
