// Wall-clock execution engine for full-scale GEMM workloads — the
// repository's stand-in for the paper's TensorRT-on-RTX3080 real-system
// experiment (§5.5, Fig. 16). See DESIGN.md's substitution table.
//
// For each layer the engine measures the dense kernel and (when a TASD
// series is chosen) the compressed structured kernel, then composes
// network latency from per-layer timings exactly the way a layer-serial
// inference runtime does.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "dnn/workloads.hpp"
#include "runtime/nm_gemm.hpp"

namespace tasd::rt {

/// Measured timings of one layer.
struct LayerTiming {
  std::string name;
  Index m = 0, k = 0, n = 0;
  double dense_ms = 0.0;
  double tasd_ms = 0.0;              ///< 0 when no series configured
  std::optional<TasdConfig> config;
  double kept_nnz_fraction = 0.0;    ///< stored values / total positions

  /// Best available time for this layer.
  [[nodiscard]] double best_ms() const {
    return config ? tasd_ms : dense_ms;
  }
};

/// Engine options.
struct EngineOptions {
  /// Shrink every layer's N (positions) by this factor so per-layer
  /// measurements finish quickly; speed-up ratios are unaffected because
  /// both kernels scale linearly in N.
  Index n_divisor = 4;
  /// Timing repetitions; the minimum is reported.
  int repeats = 3;
  std::uint64_t data_seed = 99;
  /// Kernel parallelism. 0 = the process default (TASD_NUM_THREADS, or
  /// hardware concurrency when unset); any other value builds a dedicated
  /// pool of that size for this measurement. Timings change with the
  /// thread count, kernel *results* never do.
  std::size_t num_threads = 0;
  /// Reuse decompositions from the process-wide PlanCache: repeated
  /// measurements of the same weights (TASDER sweeps, bench reruns)
  /// perform zero additional decompositions.
  bool use_plan_cache = true;
};

/// Measure every layer of a workload under the given per-layer configs
/// (entries align with net.layers; nullopt = dense).
std::vector<LayerTiming> measure_workload(
    const dnn::NetworkWorkload& net,
    const std::vector<std::optional<TasdConfig>>& configs,
    const EngineOptions& opt = {});

/// Network latency if only the `converted` lowest-cost-benefit... —
/// compose total latency with the first `num_converted` layers (by the
/// given order) using their TASD timing and the rest dense. `order` holds
/// indices into `timings`.
double network_latency_ms(const std::vector<LayerTiming>& timings,
                          const std::vector<std::size_t>& order,
                          std::size_t num_converted);

/// Order layers by descending absolute time saved (dense_ms - tasd_ms):
/// the order in which a deployment engineer would convert layers.
std::vector<std::size_t> conversion_order(
    const std::vector<LayerTiming>& timings);

}  // namespace tasd::rt
