// AVX-512 GEMM kernels. Compiled with -mavx512f -mavx512bw; executed
// only when runtime detection (tasd::avx512_available) registered them.
//
// The bit-exactness discipline (docs/kernels.md): one accumulator chain
// per output element, advanced by exactly one fused multiply-add per
// k-step (dense) or stored value (N:M), k/value order ascending. A ZMM
// FMA rounds each lane exactly like a YMM FMA rounds each of its lanes,
// so these kernels are bit-identical to the AVX2 family, not merely
// tolerance-close — the two SIMD backends form one rounding family and
// the autotuner can swap between them per layer without changing a bit
// of output. Sub-vector column tails run the same chain through
// __mmask16 masked loads/stores (zero-masked loads never fault on and
// never read the disabled lanes).
//
// The dense core mirrors kernels_avx2.cpp: a 512-column macro tile
// processed for a whole block of output rows, accumulating 4 rows per
// pass. The N:M core goes further than its AVX2 twin: output rows
// advance through the k blocks as a group (so a block's B slab is
// L1-hot for every row after the first) and row pairs take 128-column
// register blocks, because the compressed traversal is bound by loads
// and per-stored-value overhead (broadcast + index fetch), not FMA
// throughput. On narrow serving shapes (GEMV, width ≤ 8) almost
// everything runs through the masked tail, which is why the autotuner —
// not a static "widest wins" rule — picks between avx512/avx2/scalar
// per layer.
#include "runtime/kernels_avx512.hpp"

#include <immintrin.h>

#include <algorithm>

namespace tasd::rt {

namespace {

// Row grain of the parallel_for partition; matches the scalar and AVX2
// kernels so thread scheduling granularity is comparable across families
// (the grain never affects results, only load balance).
constexpr std::size_t kRowGrain = 8;

// Column macro tile: keeps B rows' 2 KB segments cache-resident while a
// row block passes over them (matches the other families' kTileN).
constexpr Index kMacroTileN = 512;

/// Opmask enabling the first `tail` (1..15) of 16 lanes.
inline __mmask16 tail_mask(Index tail) {
  return static_cast<__mmask16>((1U << tail) - 1U);
}

// ------------------------------------------------------------ dense core

/// Accumulate kRows consecutive output rows of C over columns [c0, c1):
/// 32-column register blocks (kRows x 2 vector accumulators) so each
/// loaded B vector feeds kRows FMA chains, then a 16-column block and a
/// masked-vector tail with the identical per-element chain.
template <int kRows>
void dense_rows_avx512(const float* __restrict arow, Index k, const float* bd,
                       Index n, float* __restrict crow, Index c0, Index c1) {
  Index j = c0;
  for (; j + 32 <= c1; j += 32) {
    __m512 acc0[kRows], acc1[kRows];
    for (int r = 0; r < kRows; ++r) {
      acc0[r] = _mm512_loadu_ps(crow + r * n + j);
      acc1[r] = _mm512_loadu_ps(crow + r * n + j + 16);
    }
    for (Index p = 0; p < k; ++p) {
      const __m512 b0 = _mm512_loadu_ps(bd + p * n + j);
      const __m512 b1 = _mm512_loadu_ps(bd + p * n + j + 16);
      for (int r = 0; r < kRows; ++r) {
        const __m512 av = _mm512_set1_ps(arow[r * k + p]);
        acc0[r] = _mm512_fmadd_ps(av, b0, acc0[r]);
        acc1[r] = _mm512_fmadd_ps(av, b1, acc1[r]);
      }
    }
    for (int r = 0; r < kRows; ++r) {
      _mm512_storeu_ps(crow + r * n + j, acc0[r]);
      _mm512_storeu_ps(crow + r * n + j + 16, acc1[r]);
    }
  }
  for (; j + 16 <= c1; j += 16) {
    __m512 acc[kRows];
    for (int r = 0; r < kRows; ++r) acc[r] = _mm512_loadu_ps(crow + r * n + j);
    for (Index p = 0; p < k; ++p) {
      const __m512 bv = _mm512_loadu_ps(bd + p * n + j);
      for (int r = 0; r < kRows; ++r)
        acc[r] = _mm512_fmadd_ps(_mm512_set1_ps(arow[r * k + p]), bv, acc[r]);
    }
    for (int r = 0; r < kRows; ++r) _mm512_storeu_ps(crow + r * n + j, acc[r]);
  }
  if (j < c1) {
    // Sub-vector column tail: one masked-vector pass, the same
    // k-ascending fused chain per element as the full blocks (disabled
    // lanes stay zero through the chain and are never stored).
    const __mmask16 mask = tail_mask(c1 - j);
    __m512 acc[kRows];
    for (int r = 0; r < kRows; ++r)
      acc[r] = _mm512_maskz_loadu_ps(mask, crow + r * n + j);
    for (Index p = 0; p < k; ++p) {
      const __m512 bv = _mm512_maskz_loadu_ps(mask, bd + p * n + j);
      for (int r = 0; r < kRows; ++r)
        acc[r] = _mm512_fmadd_ps(_mm512_set1_ps(arow[r * k + p]), bv, acc[r]);
    }
    for (int r = 0; r < kRows; ++r)
      _mm512_mask_storeu_ps(crow + r * n + j, mask, acc[r]);
  }
}

// -------------------------------------------------------------- N:M core

/// Accumulate kVecs*16 columns of a group of kRows consecutive C rows
/// from each row's compressed stored values. The group advances through
/// the k blocks together, so the block's B slab is L1-hot for every row
/// after the first — the single-row traversal was B-bandwidth-bound and
/// gained almost nothing from the wider vectors. Each output element
/// still accumulates its own register chain in stored-value order, so
/// the row grouping changes no bit of output.
template <int kRows, int kVecs>
void nm_rows_block_avx512(const sparse::NMSparseMatrix& a, const float* bd,
                          float* __restrict cd, Index r0, Index n, Index j) {
  const auto m = static_cast<Index>(a.pattern().m);
  const auto& values = a.values();
  const auto& idx = a.in_block_index();
  const auto& offsets = a.block_offsets();
  const Index blocks_per_row = a.blocks_per_row();

  __m512 acc[kRows][kVecs];
  for (int r = 0; r < kRows; ++r)
    for (int v = 0; v < kVecs; ++v)
      acc[r][v] = _mm512_loadu_ps(cd + (r0 + r) * n + j + 16 * v);
  for (Index blk = 0; blk < blocks_per_row; ++blk) {
    const Index k_base = blk * m;
    for (int r = 0; r < kRows; ++r) {
      const Index group = (r0 + r) * blocks_per_row + blk;
      for (Index s = offsets[group]; s < offsets[group + 1]; ++s) {
        const __m512 av = _mm512_set1_ps(values[s]);
        const float* brow = bd + (k_base + idx[s]) * n + j;
        for (int v = 0; v < kVecs; ++v)
          acc[r][v] =
              _mm512_fmadd_ps(av, _mm512_loadu_ps(brow + 16 * v), acc[r][v]);
      }
    }
  }
  for (int r = 0; r < kRows; ++r)
    for (int v = 0; v < kVecs; ++v)
      _mm512_storeu_ps(cd + (r0 + r) * n + j + 16 * v, acc[r][v]);
}

/// Masked sub-vector column tail of the same row-group traversal (the
/// batch-1 GEMV serving case runs entirely through here, where the
/// shared B column makes the group's L1 reuse total).
template <int kRows>
void nm_rows_tail_avx512(const sparse::NMSparseMatrix& a, const float* bd,
                         float* __restrict cd, Index r0, Index n, Index j,
                         __mmask16 mask) {
  const auto m = static_cast<Index>(a.pattern().m);
  const auto& values = a.values();
  const auto& idx = a.in_block_index();
  const auto& offsets = a.block_offsets();
  const Index blocks_per_row = a.blocks_per_row();

  __m512 acc[kRows];
  for (int r = 0; r < kRows; ++r)
    acc[r] = _mm512_maskz_loadu_ps(mask, cd + (r0 + r) * n + j);
  for (Index blk = 0; blk < blocks_per_row; ++blk) {
    const Index k_base = blk * m;
    for (int r = 0; r < kRows; ++r) {
      const Index group = (r0 + r) * blocks_per_row + blk;
      for (Index s = offsets[group]; s < offsets[group + 1]; ++s) {
        const __m512 bv =
            _mm512_maskz_loadu_ps(mask, bd + (k_base + idx[s]) * n + j);
        acc[r] = _mm512_fmadd_ps(_mm512_set1_ps(values[s]), bv, acc[r]);
      }
    }
  }
  for (int r = 0; r < kRows; ++r)
    _mm512_mask_storeu_ps(cd + (r0 + r) * n + j, mask, acc[r]);
}

/// One row group (kRows consecutive rows) across columns [jt, je).
template <int kRows>
void nm_rows_avx512(const sparse::NMSparseMatrix& a, const float* bd, float* cd,
                    Index r0, Index n, Index jt, Index je) {
  Index j = jt;
  // Pairs of rows take 128-column blocks (16 accumulators): each stored
  // value's fixed overhead (broadcast + index fetch) then feeds 8 FMAs
  // instead of 4, which matters because the traversal is load-port
  // bound, not FMA bound.
  if constexpr (kRows <= 2) {
    for (; j + 128 <= je; j += 128)
      nm_rows_block_avx512<kRows, 8>(a, bd, cd, r0, n, j);
  }
  for (; j + 64 <= je; j += 64) nm_rows_block_avx512<kRows, 4>(a, bd, cd, r0, n, j);
  if (j + 32 <= je) {
    nm_rows_block_avx512<kRows, 2>(a, bd, cd, r0, n, j);
    j += 32;
  }
  if (j + 16 <= je) {
    nm_rows_block_avx512<kRows, 1>(a, bd, cd, r0, n, j);
    j += 16;
  }
  if (j < je) nm_rows_tail_avx512<kRows>(a, bd, cd, r0, n, j, tail_mask(je - j));
}

}  // namespace

void dense_gemm_tile_avx512(const MatrixF& a, const MatrixF& b, MatrixF& c,
                            Index row_begin, Index row_end, Index col_begin,
                            Index col_end) {
  const Index k = a.cols(), n = b.cols();
  for (Index jt = col_begin; jt < col_end; jt += kMacroTileN) {
    const Index je = std::min(col_end, jt + kMacroTileN);
    Index i = row_begin;
    for (; i + 4 <= row_end; i += 4)
      dense_rows_avx512<4>(a.data() + i * k, k, b.data(), n, c.data() + i * n,
                           jt, je);
    for (; i + 2 <= row_end; i += 2)
      dense_rows_avx512<2>(a.data() + i * k, k, b.data(), n, c.data() + i * n,
                           jt, je);
    if (i < row_end)
      dense_rows_avx512<1>(a.data() + i * k, k, b.data(), n, c.data() + i * n,
                           jt, je);
  }
}

void nm_gemm_tile_avx512(const sparse::NMSparseMatrix& a, const MatrixF& b,
                         MatrixF& c, Index row_begin, Index row_end,
                         Index col_begin, Index col_end) {
  const Index n = b.cols();
  const float* bd = b.data();
  float* cd = c.data();

  // Each (row group, block width) pair costs one traversal of the
  // group's compressed storage, so take 4-row groups and the widest
  // column block that fits (64/32/16, then the masked tail) — the row
  // group shares each k block's B slab through L1, the wide block
  // amortizes each traversal.
  for (Index jt = col_begin; jt < col_end; jt += kMacroTileN) {
    const Index je = std::min(col_end, jt + kMacroTileN);
    Index r = row_begin;
    if (je - jt >= 128) {
      // Wide spans: row pairs, so most columns run the 128-wide block.
      for (; r + 2 <= row_end; r += 2)
        nm_rows_avx512<2>(a, bd, cd, r, n, jt, je);
    } else {
      for (; r + 4 <= row_end; r += 4)
        nm_rows_avx512<4>(a, bd, cd, r, n, jt, je);
      if (r + 2 <= row_end) {
        nm_rows_avx512<2>(a, bd, cd, r, n, jt, je);
        r += 2;
      }
    }
    if (r < row_end) nm_rows_avx512<1>(a, bd, cd, r, n, jt, je);
  }
}

namespace {

void dense_avx512(const MatrixF& a, const MatrixF& b, MatrixF& c,
                  ThreadPool& pool) {
  pool.parallel_for(0, a.rows(), kRowGrain, [&](Index r0, Index r1) {
    dense_gemm_tile_avx512(a, b, c, r0, r1, 0, b.cols());
  });
}

void nm_avx512(const sparse::NMSparseMatrix& a, const MatrixF& b, MatrixF& c,
               ThreadPool& pool) {
  pool.parallel_for(0, a.rows(), kRowGrain, [&](Index r0, Index r1) {
    nm_gemm_tile_avx512(a, b, c, r0, r1, 0, b.cols());
  });
}

void dense_batch_avx512(const MatrixF& a, std::span<const MatrixF> bs,
                        std::span<MatrixF> cs, ThreadPool& pool) {
  run_packed_batch(a.rows(), bs, cs, pool,
                   [&a](const MatrixF& b, MatrixF& c, Index r0, Index r1,
                        Index c0, Index c1) {
                     dense_gemm_tile_avx512(a, b, c, r0, r1, c0, c1);
                   });
}

void nm_batch_avx512(const sparse::NMSparseMatrix& a,
                     std::span<const MatrixF> bs, std::span<MatrixF> cs,
                     ThreadPool& pool) {
  run_packed_batch(a.rows(), bs, cs, pool,
                   [&a](const MatrixF& b, MatrixF& c, Index r0, Index r1,
                        Index c0, Index c1) {
                     nm_gemm_tile_avx512(a, b, c, r0, r1, c0, c1);
                   });
}

}  // namespace

void register_avx512_kernels(GemmDispatch& dispatch) {
  dispatch.register_dense("dense-avx512", dense_avx512);
  dispatch.register_nm("nm-avx512", nm_avx512);
  dispatch.register_dense_batch("dense-batch-avx512", dense_batch_avx512);
  dispatch.register_nm_batch("nm-batch-avx512", nm_batch_avx512);
}

}  // namespace tasd::rt
