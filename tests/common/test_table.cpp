#include "common/table.hpp"

#include <gtest/gtest.h>

namespace tasd {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.header({"name", "value"});
  t.row({"x", "1"});
  t.row({"longer-name", "2"});
  const std::string s = t.str();
  // Both data rows start their second column at the same offset.
  const auto l1 = s.find("x");
  const auto l2 = s.find("longer-name");
  ASSERT_NE(l1, std::string::npos);
  ASSERT_NE(l2, std::string::npos);
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find('-'), std::string::npos);  // separator line exists
}

TEST(TextTable, HandlesRaggedRows) {
  TextTable t;
  t.header({"a", "b", "c"});
  t.row({"only-one"});
  EXPECT_NO_THROW(t.str());
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(TextTable, PctFormatsFraction) {
  EXPECT_EQ(TextTable::pct(0.1234, 1), "12.3%");
  EXPECT_EQ(TextTable::pct(1.0, 0), "100%");
}

TEST(TextTable, EmptyTableRendersEmpty) {
  TextTable t;
  EXPECT_TRUE(t.str().empty());
}

}  // namespace
}  // namespace tasd
