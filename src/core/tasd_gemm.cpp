#include "core/tasd_gemm.hpp"

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "tensor/gemm_ref.hpp"

namespace tasd {

MatrixF tasd_gemm(const MatrixF& a, const MatrixF& b,
                  const TasdConfig& config) {
  return tasd_gemm(decompose(a, config), b);
}

MatrixF tasd_gemm(const Decomposition& a_decomposed, const MatrixF& b) {
  TASD_CHECK_MSG(a_decomposed.residual.cols() == b.rows(),
                 "TASD GEMM inner dim mismatch: A cols "
                     << a_decomposed.residual.cols() << " vs B rows "
                     << b.rows());
  MatrixF c(a_decomposed.residual.rows(), b.cols());
  // Row-parallel over the output; within a row the terms accumulate in
  // series order, exactly the sequence the serial term-major loop
  // produced per element, so results are bit-identical at every thread
  // count. Grain 8 matches the runtime kernels' row grain: below that,
  // fork/join overhead beats the win.
  rt::parallel_for(0, c.rows(), 8, [&](Index row_begin, Index row_end) {
    for (const auto& term : a_decomposed.terms)
      gemm_ref_accumulate_rows(term.dense, b, c, row_begin, row_end);
  });
  return c;
}

Index tasd_gemm_macs(const Decomposition& a_decomposed, Index b_cols) {
  Index macs = 0;
  for (const auto& term : a_decomposed.terms)
    macs += term.dense.nnz() * b_cols;
  return macs;
}

Index dense_gemm_macs(Index m, Index k, Index n) { return m * k * n; }

}  // namespace tasd
