// TASDER facade (paper Fig. 5): one entry point that takes a model (or a
// full-scale workload), sample/calibration data, and the target hardware
// description, and returns/applies the TASD transformation.
#pragma once

#include <string>

#include "tasder/tasda.hpp"
#include "tasder/tasdw.hpp"
#include "tasder/workload_opt.hpp"

namespace tasd::tasder {

/// Combined options for the facade.
struct TasderOptions {
  TasdwOptions tasdw;
  TasdaOptions tasda;
  WorkloadOptOptions workload;
  /// Weight-sparsity threshold above which the framework prefers TASD-W
  /// over TASD-A for a model.
  double weight_sparse_threshold = 0.30;
};

/// Which strategy the facade chose for a model.
enum class TasderMode { kNone, kWeights, kActivations };

/// Result of optimizing a model in place.
struct TasderModelResult {
  TasderMode mode = TasderMode::kNone;
  TasdwResult tasdw;      ///< valid when mode == kWeights
  TasdaResult tasda;      ///< valid when mode == kActivations
  double achieved_agreement = 1.0;
  double mac_fraction = 1.0;

  [[nodiscard]] std::string mode_name() const;
};

/// Optimize `model` for `hw`: layer-wise TASD-W when the model's weights
/// are unstructured sparse, otherwise layer-wise TASD-A (auto-α) when the
/// hardware has TASD units. Configs are applied to the model.
TasderModelResult optimize_model(dnn::Model& model, const HwProfile& hw,
                                 const dnn::EvalSet& calib,
                                 const dnn::EvalSet& eval,
                                 const std::vector<Index>& reference,
                                 const TasderOptions& opt = {});

}  // namespace tasd::tasder
