#include "dnn/pruning.hpp"

#include <algorithm>
#include <cmath>

#include "sparse/view.hpp"
#include "tensor/generator.hpp"

namespace tasd::dnn {

double layer_sparsity_target(double global_sparsity, double position,
                             bool is_last) {
  // Ramp from ~70 % of the global target at the first layer up to
  // slightly above it by a quarter of the depth, with a small
  // deterministic ripple; classifier pruned at ~85 % of global.
  double target;
  if (is_last) {
    target = global_sparsity * 0.85;
  } else {
    const double ramp = std::min(1.0, 0.70 + 1.4 * position);
    const double ripple = 0.015 * std::sin(position * 37.0);
    target = global_sparsity * ramp + ripple;
  }
  return std::clamp(target, 0.0, 0.99);
}

double prune_unstructured(Model& model, double global_sparsity) {
  auto layers = model.gemm_layers();
  const auto count = layers.size();
  Index total = 0;
  Index zeros = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const double pos =
        count > 1 ? static_cast<double>(i) / static_cast<double>(count - 1)
                  : 0.0;
    const double target =
        layer_sparsity_target(global_sparsity, pos, i + 1 == count);
    MatrixF pruned = magnitude_prune(layers[i]->weight(), target);
    total += pruned.size();
    zeros += pruned.size() - pruned.nnz();
    layers[i]->set_weight(std::move(pruned));
  }
  if (total == 0) return 0.0;
  return static_cast<double>(zeros) / static_cast<double>(total);
}

double prune_structured(Model& model, const sparse::NMPattern& pattern) {
  Index total = 0;
  Index zeros = 0;
  for (auto* layer : model.gemm_layers()) {
    MatrixF pruned = sparse::nm_view(layer->weight(), pattern);
    total += pruned.size();
    zeros += pruned.size() - pruned.nnz();
    layer->set_weight(std::move(pruned));
  }
  if (total == 0) return 0.0;
  return static_cast<double>(zeros) / static_cast<double>(total);
}

std::vector<LayerSparsityRow> sparsity_report(Model& model) {
  std::vector<LayerSparsityRow> rows;
  for (auto* layer : model.gemm_layers()) {
    LayerSparsityRow r;
    r.name = layer->name();
    r.weight_sparsity = layer->weight().sparsity();
    r.act_sparsity = 1.0 - layer->stats().raw_input_density;
    rows.push_back(std::move(r));
  }
  return rows;
}

}  // namespace tasd::dnn
