// Autotune bench (ISSUE 10 acceptance): does per-layer micro-bench
// binding ever lose to the static best_*() chain, and does the tuned
// artifact round-trip?
//
// The network mixes layer shapes and patterns on purpose — a skinny
// GEMV-regime layer, a wide batch-friendly layer, a mixed 2:8+1:8
// series, a dense layer — so different candidates get a chance to win
// different layers. compile() under KernelPolicy::kAutotune times every
// registered candidate per layer with time_ms_min (min-of-N, untimed
// warmup); the emitted JSON carries the full candidate tables, the
// chosen binding, and the static binding's timing *from the same
// table*, so "chosen vs static" compares measurements taken identically
// in the same process.
//
// Hard gates (non-zero exit):
//  * per layer and slot, chosen_ms <= static_ms — the winner is the
//    table argmin and the static name is in the table, so autotuning
//    can never regress a layer beyond measurement noise (and the noise
//    is shared: one table, one protocol);
//  * the tuned network matches a scalar-pinned compile of the same
//    network to 1e-4 on random inputs (tuning may change the rounding
//    family, never the math);
//  * save → load restores the binding verbatim with zero decompositions
//    and the loaded network runs bit-exact to the tuned one.
//
// Emits BENCH_autotune.json (schema tasd-bench-autotune-v1; see
// docs/reproducing.md).
//
// Usage: autotune [output.json] [--quick]
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "artifact/artifact.hpp"
#include "common/cpu_features.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/plan_cache.hpp"
#include "dnn/workloads.hpp"
#include "runtime/autotune.hpp"
#include "runtime/compiled_network.hpp"
#include "tensor/generator.hpp"
#include "tensor/norms.hpp"

namespace {

using namespace tasd;

dnn::NetworkWorkload bench_net(bool quick) {
  const Index scale = quick ? 1 : 2;
  dnn::NetworkWorkload net;
  net.name = "autotune-bench";
  net.sparse_weights = true;
  dnn::GemmWorkload skinny;  // GEMV regime: weight traversal dominates
  skinny.name = "skinny";
  skinny.m = 192 * scale;
  skinny.k = 256 * scale;
  skinny.n = 1;
  skinny.weight_density = 0.25;
  skinny.weight_seed = 7701;
  dnn::GemmWorkload wide = skinny;  // batch-friendly: wide RHS
  wide.name = "wide";
  wide.n = 64 * scale;
  wide.weight_seed = 7702;
  dnn::GemmWorkload mixed = skinny;  // two-term series, ragged K
  mixed.name = "mixed";
  mixed.k = 120 * scale;
  mixed.n = 16;
  mixed.weight_seed = 7703;
  dnn::GemmWorkload dense = skinny;  // dense slot
  dense.name = "dense";
  dense.weight_density = 1.0;
  dense.n = 24;
  dense.weight_seed = 7704;
  net.layers = {skinny, wide, mixed, dense};
  return net;
}

std::vector<std::optional<TasdConfig>> bench_configs() {
  return {TasdConfig::parse("2:4"), TasdConfig::parse("2:4"),
          TasdConfig::parse("2:8+1:8"), std::nullopt};
}

double table_ms(const std::vector<rt::TuneCandidate>& table,
                const std::string& kernel) {
  for (const auto& c : table)
    if (c.kernel == kernel) return c.ms;
  return -1.0;
}

void print_table(std::FILE* f, const char* key,
                 const std::vector<rt::TuneCandidate>& table,
                 const char* trailing) {
  std::fprintf(f, "        \"%s\": [", key);
  for (std::size_t i = 0; i < table.size(); ++i)
    std::fprintf(f, "%s{\"kernel\": \"%s\", \"ms\": %.6f}",
                 i == 0 ? "" : ", ", table[i].kernel.c_str(), table[i].ms);
  std::fprintf(f, "]%s\n", trailing);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_autotune.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick")
      quick = true;
    else
      out_path = arg;
  }

  const auto net = bench_net(quick);
  const auto configs = bench_configs();

  rt::CompileOptions tune_opt;
  tune_opt.kernel_policy = rt::KernelPolicy::kAutotune;
  tune_opt.measure.repeats = quick ? 3 : 7;
  std::fprintf(stderr, "[autotune] compiling + tuning %zu layers on %s...\n",
               net.layers.size(), cpu_signature().c_str());
  const auto tuned = rt::compile(net, configs, tune_opt);
  if (!tuned.tuning().has_value()) {
    std::fprintf(stderr, "** kAutotune produced no TuningResult **\n");
    return 1;
  }
  const rt::TuningResult& result = *tuned.tuning();

  // The static chain's picks, for the chosen-vs-static comparison. The
  // static names sit in the same candidate tables the tuner measured,
  // so both sides of every ratio share one measurement protocol.
  const auto& dispatch = rt::GemmDispatch::instance();
  bool never_slower = true;
  for (const rt::LayerTuning& lt : result.layers) {
    const std::string static_single =
        lt.nm ? dispatch.best_nm() : dispatch.best_dense();
    const std::string static_batch =
        lt.nm ? dispatch.best_nm_batch() : dispatch.best_dense_batch();
    const double chosen_s = table_ms(lt.single, lt.chosen_single);
    const double static_s = table_ms(lt.single, static_single);
    const double chosen_b = table_ms(lt.batch, lt.chosen_batch);
    const double static_b = table_ms(lt.batch, static_batch);
    std::fprintf(stderr,
                 "[autotune] %-7s single %-18s %8.4f ms (static %-18s "
                 "%8.4f ms)  batch %-18s %8.4f ms (static %-18s %8.4f ms)\n",
                 lt.layer.c_str(), lt.chosen_single.c_str(), chosen_s,
                 static_single.c_str(), static_s, lt.chosen_batch.c_str(),
                 chosen_b, static_batch.c_str(), static_b);
    if (chosen_s < 0 || static_s < 0 || chosen_b < 0 || static_b < 0 ||
        chosen_s > static_s || chosen_b > static_b) {
      std::fprintf(stderr, "** autotuned binding slower than static on %s **\n",
                   lt.layer.c_str());
      never_slower = false;
    }
  }
  if (!never_slower) return 1;

  // Correctness gate: the tuned network against a scalar-pinned compile
  // of the same weights — whatever family won, the math must agree.
  rt::CompileOptions scalar_opt;
  scalar_opt.dense_kernel = "tiled-parallel";
  scalar_opt.nm_kernel = "row-parallel";
  scalar_opt.dense_batch_kernel = "batch-packed";
  scalar_opt.nm_batch_kernel = "batch-packed";
  const auto scalar = rt::compile(net, configs, scalar_opt);
  Rng rng(7790);
  for (std::size_t i = 0; i < net.layers.size(); ++i) {
    const MatrixF b =
        random_dense(net.layers[i].k, 5, Dist::kNormalStd1, rng);
    if (!allclose(tuned.run(i, b), scalar.run(i, b), 1e-4, 1e-4)) {
      std::fprintf(stderr, "** tuned layer %zu diverges from scalar run **\n",
                   i);
      return 1;
    }
  }
  std::fprintf(stderr, "[autotune] scalar correctness gate passed\n");

  // Round-trip gate: the tuned artifact must come back with the binding
  // restored, zero decompositions, and bit-exact execution.
  const std::string art_path = out_path + ".tasdart";
  save_artifact(tuned, art_path);
  plan_cache().clear();
  const auto before = plan_cache().stats();
  const double load_ms = [&] {
    Timer t;
    const auto loaded = rt::load_artifact(art_path, {});
    const double ms = t.millis();
    const auto after = plan_cache().stats();
    if (after.decompositions != before.decompositions) {
      std::fprintf(stderr, "** tuned load decomposed **\n");
      std::exit(1);
    }
    if (!loaded.tuning().has_value()) {
      std::fprintf(stderr, "** tuned load dropped the binding **\n");
      std::exit(1);
    }
    for (std::size_t i = 0; i < loaded.layer_count(); ++i) {
      if (loaded.layer(i).kernel != tuned.layer(i).kernel ||
          loaded.layer(i).batch_kernel != tuned.layer(i).batch_kernel) {
        std::fprintf(stderr, "** binding not restored on layer %zu **\n", i);
        std::exit(1);
      }
      Rng prng(7791 + i);
      const MatrixF b =
          random_dense(net.layers[i].k, 3, Dist::kNormalStd1, prng);
      if (!(loaded.run(i, b) == tuned.run(i, b))) {
        std::fprintf(stderr, "** loaded tuned network not bit-exact **\n");
        std::exit(1);
      }
    }
    return ms;
  }();
  std::remove(art_path.c_str());
  std::fprintf(stderr,
               "[autotune] round-trip gate passed (load %0.3f ms, zero "
               "decompositions)\n",
               load_ms);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::perror("autotune: cannot open output");
    return 1;
  }
  std::fprintf(f, "{\n  \"schema\": \"tasd-bench-autotune-v1\",\n");
  std::fprintf(f, "  \"host_signature\": \"%s\",\n",
               result.host_signature.c_str());
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"repeats\": %d,\n", tune_opt.measure.repeats);
  std::fprintf(f, "  \"never_slower_than_static\": true,\n");
  std::fprintf(f, "  \"scalar_correctness\": true,\n");
  std::fprintf(f, "  \"roundtrip_restored\": true,\n");
  std::fprintf(f, "  \"roundtrip_load_ms\": %.4f,\n", load_ms);
  std::fprintf(f, "  \"layers\": [\n");
  for (std::size_t i = 0; i < result.layers.size(); ++i) {
    const rt::LayerTuning& lt = result.layers[i];
    const std::string static_single =
        lt.nm ? dispatch.best_nm() : dispatch.best_dense();
    const std::string static_batch =
        lt.nm ? dispatch.best_nm_batch() : dispatch.best_dense_batch();
    std::fprintf(f, "    {\n      \"layer\": \"%s\",\n", lt.layer.c_str());
    std::fprintf(f, "      \"nm\": %s,\n", lt.nm ? "true" : "false");
    std::fprintf(f, "      \"chosen_single\": \"%s\",\n",
                 lt.chosen_single.c_str());
    std::fprintf(f, "      \"static_single\": \"%s\",\n",
                 static_single.c_str());
    std::fprintf(f, "      \"chosen_batch\": \"%s\",\n",
                 lt.chosen_batch.c_str());
    std::fprintf(f, "      \"static_batch\": \"%s\",\n", static_batch.c_str());
    std::fprintf(f, "      \"single_chosen_ms\": %.6f,\n",
                 table_ms(lt.single, lt.chosen_single));
    std::fprintf(f, "      \"single_static_ms\": %.6f,\n",
                 table_ms(lt.single, static_single));
    std::fprintf(f, "      \"batch_chosen_ms\": %.6f,\n",
                 table_ms(lt.batch, lt.chosen_batch));
    std::fprintf(f, "      \"batch_static_ms\": %.6f,\n",
                 table_ms(lt.batch, static_batch));
    print_table(f, "candidates_single", lt.single, ",");
    print_table(f, "candidates_batch", lt.batch, "");
    std::fprintf(f, "    }%s\n", i + 1 < result.layers.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "[autotune] wrote %s\n", out_path.c_str());
  return 0;
}
