// MUST NOT COMPILE under -Wthread-safety -Werror: waits on a CondVar
// while holding a DIFFERENT mutex than the one passed to wait().
// CondVar::wait(mu) requires the capability `mu`; holding some other
// lock does not satisfy it — the classic sleeping-with-the-wrong-lock
// CV protocol bug.
#include "common/sync.hpp"

namespace {

struct TwoLocks {
  tasd::Mutex mu_a;
  tasd::Mutex mu_b;
  tasd::CondVar cv;
  bool ready TASD_GUARDED_BY(mu_b) = false;

  void broken_wait() TASD_EXCLUDES(mu_a, mu_b) {
    tasd::MutexLock lock(mu_a);  // holds mu_a ...
    cv.wait(mu_b);               // ... but waits on mu_b: compile error
  }
};

}  // namespace

void probe() {
  TwoLocks t;
  t.broken_wait();
}
