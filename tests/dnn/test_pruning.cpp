#include "dnn/pruning.hpp"

#include <gtest/gtest.h>

#include "dnn/builders.hpp"

namespace tasd::dnn {
namespace {

ConvNetOptions tiny() {
  ConvNetOptions o;
  o.input_hw = 8;
  o.width_mult = 0.125;
  o.num_classes = 10;
  return o;
}

TEST(SparsityProfile, RampsUpWithDepth) {
  const double early = layer_sparsity_target(0.95, 0.0, false);
  const double mid = layer_sparsity_target(0.95, 0.5, false);
  EXPECT_LT(early, mid);
  EXPECT_GT(early, 0.5);  // first layers still substantially pruned
}

TEST(SparsityProfile, ClassifierPrunedLess) {
  const double last = layer_sparsity_target(0.95, 1.0, true);
  const double mid = layer_sparsity_target(0.95, 0.5, false);
  EXPECT_LT(last, mid);
}

TEST(SparsityProfile, ClampedToValidRange) {
  EXPECT_LE(layer_sparsity_target(0.99, 1.0, false), 0.99);
  EXPECT_GE(layer_sparsity_target(0.0, 0.0, false), 0.0);
}

TEST(PruneUnstructured, HitsGlobalTargetApproximately) {
  Model m = make_resnet(18, tiny());
  const double achieved = prune_unstructured(m, 0.9);
  EXPECT_NEAR(achieved, 0.9, 0.06);
  EXPECT_NEAR(m.weight_sparsity(), achieved, 1e-9);
}

TEST(PruneUnstructured, LayersDifferInSparsity) {
  Model m = make_resnet(18, tiny());
  (void)prune_unstructured(m, 0.9);
  const auto rows = sparsity_report(m);
  double lo = 1.0, hi = 0.0;
  for (const auto& r : rows) {
    lo = std::min(lo, r.weight_sparsity);
    hi = std::max(hi, r.weight_sparsity);
  }
  EXPECT_GT(hi - lo, 0.05);  // Fig. 6: a real spread across layers
}

TEST(PruneStructured, EveryLayerSatisfiesPattern) {
  Model m = make_vgg(11, tiny());
  const sparse::NMPattern p(2, 4);
  (void)prune_structured(m, p);
  for (auto* l : m.gemm_layers()) EXPECT_TRUE(sparse::satisfies(l->weight(), p));
}

TEST(PruneStructured, AchievesAtLeastPatternSparsity) {
  Model m = make_vgg(11, tiny());
  const double s = prune_structured(m, sparse::NMPattern(2, 4));
  // Ragged tail blocks (K not divisible by 4) keep min(N, len) elements,
  // so the global figure can fall a hair short of N/M.
  EXPECT_GE(s, 0.49);
}

TEST(SparsityReport, OneRowPerGemmLayer) {
  Model m = make_resnet(18, tiny());
  EXPECT_EQ(sparsity_report(m).size(), m.gemm_layers().size());
}

TEST(PruneUnstructured, PreservesWeightShapes) {
  Model m = make_resnet(18, tiny());
  std::vector<std::pair<Index, Index>> shapes;
  for (auto* l : m.gemm_layers()) shapes.emplace_back(l->weight().rows(),
                                                      l->weight().cols());
  (void)prune_unstructured(m, 0.95);
  std::size_t i = 0;
  for (auto* l : m.gemm_layers()) {
    EXPECT_EQ(l->weight().rows(), shapes[i].first);
    EXPECT_EQ(l->weight().cols(), shapes[i].second);
    ++i;
  }
}

}  // namespace
}  // namespace tasd::dnn
