// AVX2/FMA vectorized GEMM kernels — the SIMD backend of GemmDispatch.
//
// Registered names (see docs/kernels.md for the author guide):
//   dense       "dense-avx2"        row-parallel, 8-lane FMA over columns
//   N:M         "nm-avx2"           compressed traversal, 8-lane FMA
//   dense batch "dense-batch-avx2"  packed (row, batch-column) tile grid
//   N:M batch   "nm-batch-avx2"     same grid over the compressed core
//
// Bit-exactness model: every output element accumulates along a single
// k-ascending (dense) / stored-value-ascending (N:M) chain of *fused*
// multiply-adds; sub-vector column tails run the same chain through
// masked vector ops, one rounding per step. The per-element value is
// therefore a pure function of the operands, independent of thread count,
// tile shape, column offset, and batch packing: each AVX2 kernel is
// bit-identical to its own serial run and a batched call is bit-identical
// to looping its single-RHS sibling. The FMA chain rounds differently
// from the scalar mul+add kernels ("tiled-parallel" etc.), so AVX2 and
// scalar kernels form two internally-consistent families that agree to
// float tolerance, not bitwise (the property tests pin both claims).
//
// This translation unit is compiled with -mavx2 -mfma (see
// src/CMakeLists.txt); GemmDispatch registers the kernels only when
// tasd::avx2_available() says the executing CPU/OS can run them.
#pragma once

#include "runtime/gemm_dispatch.hpp"

namespace tasd::rt {

/// Dense C += A*B restricted to an (output-row, output-column) tile;
/// AVX2/FMA analogue of dense_gemm_tile with the same any-disjoint-tiling
/// bit-exactness property (within the AVX2 family).
void dense_gemm_tile_avx2(const MatrixF& a, const MatrixF& b, MatrixF& c,
                          Index row_begin, Index row_end, Index col_begin,
                          Index col_end);

/// Compressed N:M C += A*B restricted to a tile; AVX2/FMA analogue of
/// nm_gemm_tile.
void nm_gemm_tile_avx2(const sparse::NMSparseMatrix& a, const MatrixF& b,
                       MatrixF& c, Index row_begin, Index row_end,
                       Index col_begin, Index col_end);

/// Register all four AVX2 kernels under their names. Called once by
/// GemmDispatch's constructor when avx2_available(); never changes the
/// registry defaults.
void register_avx2_kernels(GemmDispatch& dispatch);

}  // namespace tasd::rt
