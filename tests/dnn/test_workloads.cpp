#include "dnn/workloads.hpp"

#include <gtest/gtest.h>

namespace tasd::dnn {
namespace {

TEST(Workloads, ResNet50ShapeInventory) {
  const auto net = resnet50_workload(false, 42);
  // 1 stem + 16 bottlenecks*3 convs + 4 projections + 1 fc = 54 layers.
  EXPECT_EQ(net.layers.size(), 54u);
  // Full-scale ResNet-50 at 224x224 is ~4.1 GMACs and ~25.5 M params.
  EXPECT_NEAR(static_cast<double>(net.total_macs()) / 1e9, 4.1, 0.5);
  EXPECT_NEAR(static_cast<double>(net.total_params()) / 1e6, 25.5, 3.0);
}

TEST(Workloads, Table4RepresentativeLayersExist) {
  const auto t4 = table4_layers();
  ASSERT_EQ(t4.size(), 12u);
  // No fallback "(synthetic)" entries: every Table 4 shape must be found
  // in the generated network stacks.
  for (const auto& l : t4)
    EXPECT_EQ(l.name.find("synthetic"), std::string::npos) << l.name;
  // Dense RN50 L1 per the paper: M784-N128-K1152 in (positions, out,
  // reduction) convention = ours (m=128, k=1152, n=784).
  EXPECT_EQ(t4[0].m, 128u);
  EXPECT_EQ(t4[0].k, 1152u);
  EXPECT_EQ(t4[0].n, 784u);
}

TEST(Workloads, BertShapes) {
  const auto net = bert_workload(false, 42);
  // 6 distinct encoder shapes + head.
  EXPECT_EQ(net.layers.size(), 7u);
  // BERT-base ~ 85 M encoder params (12 x 7.1 M).
  EXPECT_NEAR(static_cast<double>(net.total_params()) / 1e6, 85.0, 5.0);
  // fc1 is 3072x768 with 128 tokens.
  bool found_fc1 = false;
  for (const auto& l : net.layers)
    if (l.m == 3072 && l.k == 768 && l.n == 128) found_fc1 = true;
  EXPECT_TRUE(found_fc1);
}

TEST(Workloads, SparseVariantHasReducedWeightDensity) {
  const auto dense = resnet50_workload(false, 42);
  const auto sparse = resnet50_workload(true, 42);
  ASSERT_EQ(dense.layers.size(), sparse.layers.size());
  for (std::size_t i = 0; i < dense.layers.size(); ++i) {
    EXPECT_DOUBLE_EQ(dense.layers[i].weight_density, 1.0);
    EXPECT_LT(sparse.layers[i].weight_density, 0.6);
  }
}

TEST(Workloads, ReluVsGeluActivationFields) {
  const auto rn = resnet50_workload(false, 42);
  for (std::size_t i = 1; i < rn.layers.size(); ++i) {
    EXPECT_TRUE(rn.layers[i].act_relu);
    EXPECT_LT(rn.layers[i].act_density, 1.0);
  }
  const auto bert = bert_workload(false, 42);
  for (const auto& l : bert.layers) {
    EXPECT_FALSE(l.act_relu);
    EXPECT_DOUBLE_EQ(l.act_density, 1.0);
    EXPECT_LT(l.act_pseudo_density, 0.9);
  }
}

TEST(Workloads, BertTasdAEligibilityMatchesPaper) {
  // Paper §4.3 / Fig. 8: only the MLP FCs are TASD-A targets; fc2's
  // input (GELU output) is the magnitude-skewed one.
  const auto bert = bert_workload(false, 42);
  for (const auto& l : bert.layers) {
    if (l.name == "enc.q" || l.name == "enc.k" || l.name == "enc.v" ||
        l.name == "enc.attn_out") {
      EXPECT_FALSE(l.tasd_a_eligible) << l.name;
    }
    if (l.name == "enc.fc1" || l.name == "enc.fc2")
      EXPECT_TRUE(l.tasd_a_eligible) << l.name;
  }
  double fc2_pseudo = 1.0, fc1_pseudo = 1.0;
  for (const auto& l : bert.layers) {
    if (l.name == "enc.fc2") fc2_pseudo = l.act_pseudo_density;
    if (l.name == "enc.fc1") fc1_pseudo = l.act_pseudo_density;
  }
  EXPECT_LT(fc2_pseudo, fc1_pseudo);
}

TEST(Workloads, MaterializeWeightMatchesDeclaredDensity) {
  const auto net = resnet50_workload(true, 42);
  const auto& layer = net.layers[10];
  const MatrixF w = materialize_weight(layer);
  EXPECT_EQ(w.rows(), layer.m);
  EXPECT_EQ(w.cols(), layer.k);
  EXPECT_NEAR(1.0 - w.sparsity(), layer.weight_density, 0.01);
}

TEST(Workloads, MaterializeWeightDeterministic) {
  const auto net = resnet50_workload(true, 42);
  const MatrixF a = materialize_weight(net.layers[5]);
  const MatrixF b = materialize_weight(net.layers[5]);
  EXPECT_EQ(a, b);
}

TEST(Workloads, ResNet34SmallerThanResNet50) {
  const auto rn34 = resnet34_workload(false, 1);
  const auto rn50 = resnet50_workload(false, 1);
  EXPECT_LT(rn34.total_macs(), rn50.total_macs());
  // 1 stem + 16 basic blocks * 2 convs + 3 projections + 1 fc = 37.
  EXPECT_EQ(rn34.layers.size(), 37u);
}

}  // namespace
}  // namespace tasd::dnn
