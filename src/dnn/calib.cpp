#include "dnn/calib.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace tasd::dnn {

std::vector<LayerCalibStats> collect_calibration(Model& model,
                                                 const EvalSet& calib) {
  auto layers = model.gemm_layers();
  // Per-layer density sample lists, indexed like `layers`.
  std::vector<std::vector<double>> density_samples(layers.size());
  std::vector<std::vector<double>> pseudo_samples(layers.size());

  auto record = [&] {
    for (std::size_t i = 0; i < layers.size(); ++i) {
      const auto& s = layers[i]->stats();
      density_samples[i].push_back(s.raw_input_density);
      pseudo_samples[i].push_back(s.input_pseudo_density);
    }
  };

  if (calib.is_images()) {
    for (const auto& batch : calib.image_batches()) {
      (void)model.forward(Feature(batch));
      record();
    }
  } else {
    for (const auto& seq : calib.sequences()) {
      (void)model.forward(Feature(seq));
      record();
    }
  }

  std::vector<LayerCalibStats> out;
  out.reserve(layers.size());
  for (std::size_t i = 0; i < layers.size(); ++i) {
    LayerCalibStats st;
    st.name = layers[i]->name();
    st.layer = layers[i];
    st.samples = density_samples[i].size();
    TASD_CHECK_MSG(st.samples > 0, "calibration set was empty");
    double sum = 0.0;
    for (double d : density_samples[i]) sum += d;
    st.mean_density = sum / static_cast<double>(st.samples);
    auto sorted = density_samples[i];
    std::sort(sorted.begin(), sorted.end());
    // p99 of density (upper tail — the conservative side for TASD-A).
    const auto idx = static_cast<std::size_t>(
        std::min<double>(static_cast<double>(sorted.size()) - 1.0,
                         std::ceil(0.99 * static_cast<double>(sorted.size())) - 1.0));
    st.p99_density = sorted[idx];
    double psum = 0.0;
    for (double d : pseudo_samples[i]) psum += d;
    st.mean_pseudo_density = psum / static_cast<double>(st.samples);
    st.act_induces_sparsity = st.mean_density < 0.95;
    out.push_back(std::move(st));
  }
  return out;
}

}  // namespace tasd::dnn
