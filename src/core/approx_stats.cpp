#include "core/approx_stats.hpp"

#include "common/error.hpp"
#include "core/plan_cache.hpp"
#include "tensor/norms.hpp"

namespace tasd {

double ApproxStats::dropped_nnz_fraction() const {
  if (original_nnz == 0) return 0.0;
  return static_cast<double>(dropped_nnz) /
         static_cast<double>(original_nnz);
}

double ApproxStats::dropped_magnitude_fraction() const {
  if (original_magnitude == 0.0) return 0.0;
  return dropped_magnitude / original_magnitude;
}

double ApproxStats::nnz_coverage() const {
  if (original_nnz == 0) return 1.0;
  return static_cast<double>(kept_nnz) / static_cast<double>(original_nnz);
}

double ApproxStats::magnitude_coverage() const {
  if (original_magnitude == 0.0) return 1.0;
  return kept_magnitude / original_magnitude;
}

ApproxStats approx_stats(const MatrixF& original, const Decomposition& d) {
  TASD_CHECK_MSG(original.rows() == d.residual.rows() &&
                     original.cols() == d.residual.cols(),
                 "decomposition shape does not match original");
  ApproxStats s;
  s.original_nnz = original.nnz();
  s.dropped_nnz = d.residual.nnz();
  s.kept_nnz = s.original_nnz - s.dropped_nnz;
  s.original_magnitude = magnitude_sum(original);
  s.dropped_magnitude = magnitude_sum(d.residual);
  s.kept_magnitude = s.original_magnitude - s.dropped_magnitude;
  const MatrixF approx = d.approximation();
  s.mse = mse(original, approx);
  s.rel_frobenius_error = relative_frobenius_error(original, approx);
  return s;
}

ApproxStats approx_stats(const MatrixF& original, const TasdConfig& config) {
  // Served from the plan cache: TASDER's search asks for the same
  // (weights, config) stats over and over. build_plan computes the
  // identical numbers from the residual without materializing dense
  // terms.
  return plan_cache().get_or_build(original, config)->stats;
}

}  // namespace tasd
