// Timed dense GEMM kernel — the "dense tensor core / dense TensorRT
// engine" stand-in for the real-system experiment (paper §5.5).
//
// Unlike tensor::gemm_ref (which honestly skips zero A elements as a
// correctness oracle), this kernel performs *every* MAC, exactly like
// dense hardware: the speed-up of the N:M kernel over this one comes only
// from structured compression, which is the effect the paper measures.
//
// Execution routes through the GemmDispatch kernel registry; pass an
// ExecPolicy to pick a pool or kernel, or take the defaults (default
// pool, tiled row-parallel kernel). Results are bit-identical at every
// thread count.
#pragma once

#include <span>
#include <vector>

#include "runtime/gemm_dispatch.hpp"
#include "tensor/matrix.hpp"

namespace tasd::rt {

/// C = A * B with no zero-skipping; A is MxK, B is KxN.
MatrixF dense_gemm(const MatrixF& a, const MatrixF& b,
                   const ExecPolicy& policy = {});

/// C += A * B into a preallocated accumulator.
void dense_gemm_accumulate(const MatrixF& a, const MatrixF& b, MatrixF& c,
                           const ExecPolicy& policy = {});

/// cs[i] = A * bs[i] for a batch of right-hand sides (ragged widths
/// allowed; every bs[i] must have A.cols() rows). Bit-identical to
/// calling dense_gemm per item, at every thread count and batch size.
std::vector<MatrixF> dense_gemm_batch(const MatrixF& a,
                                      std::span<const MatrixF> bs,
                                      const ExecPolicy& policy = {});

/// cs[i] += A * bs[i] into preallocated accumulators.
void dense_gemm_batch_accumulate(const MatrixF& a, std::span<const MatrixF> bs,
                                 std::span<MatrixF> cs,
                                 const ExecPolicy& policy = {});

}  // namespace tasd::rt
