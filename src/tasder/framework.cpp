#include "tasder/framework.hpp"

#include "dnn/layer_binding.hpp"

namespace tasd::tasder {

std::string TasderModelResult::mode_name() const {
  switch (mode) {
    case TasderMode::kNone: return "none";
    case TasderMode::kWeights: return "TASD-W";
    case TasderMode::kActivations: return "TASD-A";
  }
  return "?";
}

TasderModelResult optimize_model(dnn::Model& model, const HwProfile& hw,
                                 const dnn::EvalSet& calib,
                                 const dnn::EvalSet& eval,
                                 const std::vector<Index>& reference,
                                 const TasderOptions& opt) {
  TasderModelResult result;
  if (hw.patterns.empty()) {
    // Dense / unstructured hardware: nothing to decompose for.
    model.clear_tasd();
    return result;
  }
  if (model.weight_sparsity() >= opt.weight_sparse_threshold) {
    result.mode = TasderMode::kWeights;
    result.tasdw = tasdw_layer_wise(model, hw, eval, reference, opt.tasdw);
    result.achieved_agreement = result.tasdw.achieved_agreement;
    result.mac_fraction = result.tasdw.mac_fraction;
  } else if (hw.has_tasd_units) {
    result.mode = TasderMode::kActivations;
    result.tasda =
        tasda_layer_wise_auto(model, hw, calib, eval, reference, opt.tasda);
    result.achieved_agreement = result.tasda.achieved_agreement;
    result.mac_fraction = result.tasda.mac_fraction;
  }
  return result;
}

TasderCompiled compile(dnn::Model& model, const HwProfile& hw,
                       const dnn::EvalSet& calib, const dnn::EvalSet& eval,
                       const std::vector<Index>& reference,
                       const TasderOptions& opt,
                       const rt::CompileOptions& compile_opt,
                       Index measure_positions) {
  TasderModelResult decision =
      optimize_model(model, hw, calib, eval, reference, opt);
  rt::CompiledNetwork network =
      rt::compile(model.name(), dnn::bind_layers(model, measure_positions),
                  compile_opt);
  return {std::move(decision), std::move(network)};
}

}  // namespace tasd::tasder
