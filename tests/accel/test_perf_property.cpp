// Property sweeps over the analytical performance model.
#include <gtest/gtest.h>

#include "accel/perf_model.hpp"

namespace tasd::accel {
namespace {

dnn::GemmWorkload layer(double wd, double ad, bool relu = true) {
  dnn::GemmWorkload l;
  l.m = 256;
  l.k = 2304;
  l.n = 784;
  l.weight_density = wd;
  l.act_density = ad;
  l.act_pseudo_density = relu ? ad * 0.9 : 0.4;
  l.act_relu = relu;
  return l;
}

// ---- TTC: EDP decreases (weakly) as the series gets sparser.
class TtcSeriesSweep : public ::testing::TestWithParam<double> {};

TEST_P(TtcSeriesSweep, SparserSeriesNeverWorse) {
  const double wd = GetParam();
  const auto ttc = ArchConfig::ttc_vegeta_m8();
  const char* ordered[] = {"4:8+2:8", "4:8+1:8", "4:8", "2:8+1:8", "2:8",
                           "1:8"};
  double prev = 1e300;
  for (const char* cfg : ordered) {
    LayerExecution exec{layer(wd, 0.5), TasdConfig::parse(cfg), {}, {}};
    const double edp = simulate_layer(ttc, exec).edp();
    EXPECT_LE(edp, prev * (1.0 + 1e-9)) << cfg;
    prev = edp;
  }
}

INSTANTIATE_TEST_SUITE_P(WeightDensities, TtcSeriesSweep,
                         ::testing::Values(0.02, 0.05, 0.10, 0.25, 0.50));

// ---- DSTC: EDP increases with either operand's density.
class DstcDensitySweep : public ::testing::TestWithParam<double> {};

TEST_P(DstcDensitySweep, MonotoneInWeightDensity) {
  const double ad = GetParam();
  const auto dstc = ArchConfig::dstc();
  double prev = 0.0;
  for (double wd : {0.05, 0.15, 0.35, 0.65, 1.0}) {
    const double edp =
        simulate_layer(dstc, {layer(wd, ad), {}, {}, {}}).edp();
    EXPECT_GE(edp, prev) << "wd=" << wd;
    prev = edp;
  }
}

TEST_P(DstcDensitySweep, MonotoneInActDensity) {
  const double wd = GetParam();
  const auto dstc = ArchConfig::dstc();
  double prev = 0.0;
  for (double ad : {0.1, 0.3, 0.5, 0.8, 1.0}) {
    const double edp =
        simulate_layer(dstc, {layer(wd, ad), {}, {}, {}}).edp();
    EXPECT_GE(edp, prev) << "ad=" << ad;
    prev = edp;
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, DstcDensitySweep,
                         ::testing::Values(0.1, 0.4, 0.8));

// ---- invariants across all architectures and shapes.
struct ShapeCase {
  Index m, k, n;
};

class AllArchShapes : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(AllArchShapes, EnergyAndCyclesPositive) {
  const auto p = GetParam();
  dnn::GemmWorkload l;
  l.m = p.m;
  l.k = p.k;
  l.n = p.n;
  l.weight_density = 0.3;
  l.act_density = 0.5;
  for (const auto& arch : ArchConfig::paper_designs()) {
    LayerExecution exec{l, {}, {}, {}};
    if (arch.kind == HwKind::kTTC)
      exec.weight_cfg = arch.supported_patterns.size() > 2
                            ? TasdConfig::parse("2:8")
                            : TasdConfig{{arch.supported_patterns.front()}};
    // DSTC/TC ignore configs; strip for them.
    if (arch.kind != HwKind::kTTC) exec.weight_cfg.reset();
    const auto sim = simulate_layer(arch, exec);
    EXPECT_GT(sim.cycles, 0.0) << arch.name;
    EXPECT_GT(sim.total_energy(), 0.0) << arch.name;
    EXPECT_GE(sim.cycles, sim.compute_cycles - 1e-9) << arch.name;
    EXPECT_LE(sim.effectual_macs, sim.slot_macs + 1e-9) << arch.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AllArchShapes,
    ::testing::Values(ShapeCase{64, 576, 3136}, ShapeCase{1000, 2048, 1},
                      ShapeCase{768, 768, 128}, ShapeCase{16, 16, 16},
                      ShapeCase{3072, 768, 128}, ShapeCase{1, 1, 1}));

// ---- TTC with a TASD series never takes more compute cycles than TC.
TEST(PerfInvariants, TtcComputeBoundedByDense) {
  const auto tc = ArchConfig::dense_tc();
  const auto ttc = ArchConfig::ttc_vegeta_m8();
  for (double wd : {0.05, 0.5}) {
    const auto l = layer(wd, 0.5);
    const double dense = simulate_layer(tc, {l, {}, {}, {}}).compute_cycles;
    for (const char* cfg : {"1:8", "4:8", "4:8+2:8"}) {
      LayerExecution exec{l, TasdConfig::parse(cfg), {}, {}};
      EXPECT_LE(simulate_layer(ttc, exec).compute_cycles, dense + 1e-9);
    }
  }
}

// ---- TASD-A stall factor only ever increases cycles.
TEST(PerfInvariants, StallNeverSpeedsUp) {
  auto starved = ArchConfig::ttc_vegeta_m8();
  starved.tasd_units_per_engine = 2;
  const auto healthy = ArchConfig::ttc_vegeta_m8();
  LayerExecution exec{layer(1.0, 0.5), {}, TasdConfig::parse("4:8+1:8"), {}};
  EXPECT_GE(simulate_layer(starved, exec).compute_cycles,
            simulate_layer(healthy, exec).compute_cycles);
}

}  // namespace
}  // namespace tasd::accel
