#include "dnn/feature.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sparse/pattern.hpp"
#include "tensor/generator.hpp"

namespace tasd::dnn {
namespace {

TEST(Feature, TaggedAccess) {
  Feature t(Tensor4D(1, 2, 2, 2));
  EXPECT_TRUE(t.is_tensor());
  EXPECT_NO_THROW(t.tensor());
  EXPECT_THROW(t.matrix(), tasd::Error);

  Feature m(MatrixF(2, 3));
  EXPECT_FALSE(m.is_tensor());
  EXPECT_NO_THROW(m.matrix());
  EXPECT_THROW(m.tensor(), tasd::Error);
}

TEST(Feature, SizeAndSparsity) {
  Tensor4D t(1, 1, 2, 2);
  t(0, 0, 0, 0) = 1.0F;
  Feature f(std::move(t));
  EXPECT_EQ(f.size(), 4u);
  EXPECT_DOUBLE_EQ(f.sparsity(), 0.75);
}

TEST(TasdChannelwise, BlocksRunAlongChannels) {
  // 8 channels at one position; 2:8 keeps the two largest magnitudes.
  Tensor4D t(1, 8, 1, 1);
  for (Index c = 0; c < 8; ++c)
    t(0, c, 0, 0) = static_cast<float>(c) + 1.0F;  // 1..8
  const Tensor4D out = tasd_channelwise(t, TasdConfig::parse("2:8"));
  for (Index c = 0; c < 6; ++c) EXPECT_EQ(out(0, c, 0, 0), 0.0F);
  EXPECT_EQ(out(0, 6, 0, 0), 7.0F);
  EXPECT_EQ(out(0, 7, 0, 0), 8.0F);
}

TEST(TasdChannelwise, PositionsIndependent) {
  Rng rng(91);
  const Tensor4D t = random_tensor(2, 8, 3, 3, 1.0, Dist::kNormalStd1, rng);
  const Tensor4D out = tasd_channelwise(t, TasdConfig::parse("4:8"));
  // Per position, exactly 4 of 8 channels survive.
  for (Index n = 0; n < t.n(); ++n)
    for (Index y = 0; y < t.h(); ++y)
      for (Index x = 0; x < t.w(); ++x) {
        int nnz = 0;
        for (Index c = 0; c < 8; ++c)
          if (out(n, c, y, x) != 0.0F) ++nnz;
        EXPECT_EQ(nnz, 4);
      }
}

TEST(TasdChannelwise, LosslessSeriesPreservesTensor) {
  Rng rng(92);
  const Tensor4D t = random_tensor(1, 8, 2, 2, 1.0, Dist::kNormalStd1, rng);
  const Tensor4D out = tasd_channelwise(t, TasdConfig::parse("4:8+4:8"));
  auto fa = t.flat();
  auto fb = out.flat();
  for (Index i = 0; i < fa.size(); ++i) EXPECT_EQ(fa[i], fb[i]);
}

TEST(TasdFeaturewise, BlocksRunAlongFeaturesPerToken) {
  // X is (features x tokens); each token column is decomposed on its own.
  MatrixF x(4, 2);
  // token 0: [1 2 3 4], token 1: [4 3 2 1]
  for (Index f = 0; f < 4; ++f) {
    x(f, 0) = static_cast<float>(f + 1);
    x(f, 1) = static_cast<float>(4 - f);
  }
  const MatrixF out = tasd_featurewise(x, TasdConfig::parse("2:4"));
  EXPECT_EQ(out(0, 0), 0.0F);
  EXPECT_EQ(out(3, 0), 4.0F);
  EXPECT_EQ(out(0, 1), 4.0F);
  EXPECT_EQ(out(3, 1), 0.0F);
}

TEST(TasdFeaturewise, SatisfiesPatternAlongFeatures) {
  Rng rng(93);
  const MatrixF x = random_dense(16, 5, Dist::kNormalStd1, rng);
  const MatrixF out = tasd_featurewise(x, TasdConfig::parse("2:8"));
  // Transposed view has rows = tokens, blocks along features.
  EXPECT_TRUE(
      sparse::satisfies(out.transposed(), sparse::NMPattern(2, 8)));
}

}  // namespace
}  // namespace tasd::dnn
