#include "bench_common.hpp"

namespace tasd::bench {

std::vector<dnn::NetworkWorkload> paper_workloads() {
  return {dnn::resnet50_workload(false, 42), dnn::bert_workload(false, 42),
          dnn::resnet50_workload(true, 42), dnn::bert_workload(true, 42)};
}

accel::NetworkSim run_on(const accel::ArchConfig& arch,
                         const dnn::NetworkWorkload& net) {
  const auto execs =
      tasder::optimize_workload(net, tasder::hw_profile_from(arch));
  return accel::simulate_network(arch, execs, net.name);
}

accel::NetworkSim baseline_tc(const dnn::NetworkWorkload& net) {
  return accel::simulate_network(accel::ArchConfig::dense_tc(),
                                 tasder::plain_executions(net), net.name);
}

}  // namespace tasd::bench
