// Kernel microbenchmarks (google-benchmark): decomposition throughput,
// dense vs N:M-compressed GEMM, and the TASD-series GEMM.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/decompose.hpp"
#include "runtime/dense_gemm.hpp"
#include "runtime/nm_gemm.hpp"
#include "tensor/generator.hpp"

namespace {

using namespace tasd;

void BM_Decompose(benchmark::State& state) {
  Rng rng(9001);
  const auto cfg = TasdConfig::parse(state.range(0) == 1 ? "2:4" : "4:8+1:8");
  const MatrixF m = random_unstructured(256, 256, 0.3, Dist::kNormalStd1, rng);
  for (auto _ : state) {
    auto d = decompose(m, cfg);
    benchmark::DoNotOptimize(d.residual.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.size()));
}
BENCHMARK(BM_Decompose)->Arg(1)->Arg(2);

void BM_DenseGemm(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  Rng rng(9002);
  const MatrixF a = random_dense(n, n, Dist::kNormalStd1, rng);
  const MatrixF b = random_dense(n, n, Dist::kNormalStd1, rng);
  for (auto _ : state) {
    MatrixF c = rt::dense_gemm(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * n * n);
}
BENCHMARK(BM_DenseGemm)->Arg(128)->Arg(256)->Arg(512);

void BM_NmGemm24(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  Rng rng(9003);
  const MatrixF dense = random_dense(n, n, Dist::kNormalStd1, rng);
  const auto d = decompose(dense, TasdConfig::parse("2:4"));
  const sparse::NMSparseMatrix a = d.terms[0].compressed();
  const MatrixF b = random_dense(n, n, Dist::kNormalStd1, rng);
  for (auto _ : state) {
    MatrixF c = rt::nm_gemm(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  // Half the dense MACs are executed.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * n * n / 2);
}
BENCHMARK(BM_NmGemm24)->Arg(128)->Arg(256)->Arg(512);

void BM_TasdSeriesGemm(benchmark::State& state) {
  const auto n = static_cast<Index>(state.range(0));
  Rng rng(9004);
  const MatrixF dense = random_dense(n, n, Dist::kNormalStd1, rng);
  const rt::TasdSeriesGemm series(decompose(dense, TasdConfig::parse("4:8+1:8")));
  const MatrixF b = random_dense(n, n, Dist::kNormalStd1, rng);
  for (auto _ : state) {
    MatrixF c = series.multiply(b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * n * n * 5 / 8);
}
BENCHMARK(BM_TasdSeriesGemm)->Arg(128)->Arg(256)->Arg(512);

}  // namespace
