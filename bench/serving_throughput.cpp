// Serving-throughput bench: the batched execution path on the Fig. 16
// real-system workload (unstructured-sparse ResNet-34, 2:4 kernels).
//
// Each query is one GEMV-style right-hand side per layer; the batch
// shares each layer's one DecompositionPlan across every item and runs
// through the packed batch kernels, which amortize per-k-step overhead
// over the whole batch — the queries/sec gain over batch-1 is the
// serving story (DeepSparse-style CPU runtimes, 2:4 tensor-core serving).
// The sweep runs once per kernel set — the pinned scalar kernels and,
// when the CPU supports them, the AVX2/FMA kernels — so the JSON records
// scalar vs SIMD serving throughput side by side.
//
// A second, open-loop section drives the dynamic-batching ServingEngine
// with timed arrival traces (Poisson and bursty) at offered loads set
// relative to a measured capacity probe. Open-loop means arrivals are
// scheduled on a wall clock and do NOT wait for completions — exactly
// the regime where overload must surface as shedding/expiry rather than
// unbounded queueing, so the JSON records the engine's degradation
// curve (achieved qps, percentile latency, per-status counts).
//
// Emits BENCH_serving.json (schema tasd-bench-serving-v3; see
// docs/reproducing.md and docs/serving.md). Before timing, every
// layer's batched TASD output is checked bit-exact (`==`) against
// looping the single-RHS multiply of the same artifact — a
// wrong-but-fast batch kernel fails loudly here (non-zero exit).
//
// Usage: serving_throughput [output.json] [--quick]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "dnn/workloads.hpp"
#include "runtime/compiled_network.hpp"
#include "runtime/dense_gemm.hpp"
#include "runtime/serving_engine.hpp"
#include "tensor/generator.hpp"

namespace {

using namespace tasd;

/// Batched outputs == per-RHS loops, for every layer of the compiled
/// artifact at one probe batch size: run_batch vs run for the bound
/// (TASD) kernels, plus the artifact's dense batch kernel vs its dense
/// single-RHS kernel on the same weights (one rounding family per
/// artifact — the policy carries the resolved kernel names).
bool verify_bit_exact(const rt::CompiledNetwork& engine, std::size_t batch,
                      Index query_cols) {
  Rng rng(7001);
  const rt::ExecPolicy policy = engine.policy();
  bool ok = true;
  for (std::size_t i = 0; i < engine.layer_count(); ++i) {
    const auto& layer = engine.layer(i);
    std::vector<MatrixF> bs;
    for (std::size_t q = 0; q < batch; ++q)
      bs.push_back(random_dense(layer.k, query_cols, Dist::kNormalStd1, rng));

    const auto dense_batch = rt::dense_gemm_batch(layer.weight, bs, policy);
    for (std::size_t q = 0; q < batch; ++q)
      ok = ok && (dense_batch[q] == rt::dense_gemm(layer.weight, bs[q], policy));

    const auto bound_batch = engine.run_batch(i, bs);
    for (std::size_t q = 0; q < batch; ++q)
      ok = ok && (bound_batch[q] == engine.run(i, bs[q]));

    if (!ok) {
      std::fprintf(stderr, "** NOT BIT-EXACT at layer %s **\n",
                   layer.name.c_str());
      return false;
    }
  }
  return true;
}

struct KernelSetResult {
  std::string label;         ///< "scalar" | "avx2"
  std::string dense_kernel;  ///< resolved registry names
  std::string nm_kernel;
  Index plan_bytes = 0;
  Index artifact_bytes = 0;  ///< full replica footprint (weights + plans)
  double scaling_b16_over_b1 = 0.0;
  std::vector<rt::ServingThroughput> entries;
};

// --- Open-loop engine section ---------------------------------------

struct OpenLoopResult {
  std::string trace;       ///< "poisson" | "burst"
  double load_factor = 0.0;
  double offered_qps = 0.0;
  double achieved_qps = 0.0;  ///< ok completions / wall seconds
  double wall_s = 0.0;
  double mean_batch = 0.0;    ///< batched_requests / batches
  rt::ModelMetrics metrics;
};

/// Single synthetic 2:4 layer sized so one query is a fraction of a
/// millisecond: the trace granularity stays above timer jitter while
/// the whole section finishes in seconds.
dnn::NetworkWorkload open_loop_net() {
  dnn::NetworkWorkload net;
  net.name = "open-loop-2to4";
  net.sparse_weights = true;
  dnn::GemmWorkload l;
  l.name = "ol";
  l.m = 512;
  l.k = 1024;
  l.n = 32;
  l.weight_density = 0.1;
  l.weight_seed = 424;
  net.layers = {l};
  return net;
}

/// Arrival offsets (seconds from trace start) for `n` requests at mean
/// rate `qps`. Poisson: exponential inter-arrivals. Burst: groups of 8
/// back-to-back queries, groups spaced to preserve the mean rate.
std::vector<double> arrival_trace(const std::string& kind, std::size_t n,
                                  double qps, std::uint64_t seed) {
  std::vector<double> at(n);
  if (kind == "poisson") {
    std::mt19937_64 gen(seed);
    std::exponential_distribution<double> gap(qps);
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      t += gap(gen);
      at[i] = t;
    }
  } else {  // burst
    const std::size_t group = 8;
    const double period = static_cast<double>(group) / qps;
    for (std::size_t i = 0; i < n; ++i)
      at[i] = static_cast<double>(i / group) * period;
  }
  return at;
}

/// Drive one trace through a fresh engine. Arrivals are scheduled on
/// the wall clock; when the submitter falls behind (bursts, overload)
/// every due request is submitted immediately — no closed-loop pacing.
OpenLoopResult run_open_loop(const rt::CompileOptions& copt,
                             const std::string& kind, double load_factor,
                             double capacity_qps, std::size_t n) {
  using std::chrono::duration;
  using std::chrono::steady_clock;

  rt::ServingOptions sopt;
  sopt.max_queue_depth = 64;
  sopt.overflow = rt::ServingOptions::Overflow::kReject;
  sopt.admission_window = std::chrono::microseconds(2000);
  sopt.max_batch = 16;
  sopt.default_deadline = std::chrono::milliseconds(100);
  rt::ServingEngine engine(
      rt::compile(open_loop_net(), {TasdConfig::parse("2:4")}, copt), sopt);

  const double offered = capacity_qps * load_factor;
  const auto arrivals = arrival_trace(kind, n, offered, 4242);
  Rng rng(4243);
  std::vector<MatrixF> queries;
  queries.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    queries.push_back(
        random_dense(engine.model(0).layer(0).k, 1, Dist::kNormalStd1, rng));

  std::vector<std::future<rt::Response>> futures;
  futures.reserve(n);
  const auto start = steady_clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    std::this_thread::sleep_until(start + duration<double>(arrivals[i]));
    futures.push_back(engine.submit(0, std::move(queries[i])));
  }
  for (auto& f : futures) (void)f.get();
  const double wall_s = duration<double>(steady_clock::now() - start).count();
  engine.drain();

  OpenLoopResult r;
  r.trace = kind;
  r.load_factor = load_factor;
  r.offered_qps = offered;
  r.wall_s = wall_s;
  r.metrics = engine.metrics(0);
  r.achieved_qps = static_cast<double>(r.metrics.ok) / wall_s;
  r.mean_batch = r.metrics.batches > 0
                     ? static_cast<double>(r.metrics.batched_requests) /
                           static_cast<double>(r.metrics.batches)
                     : 0.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_serving.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else {
      out_path = arg;
    }
  }

  const auto net = dnn::resnet34_workload(true, 42);
  const std::vector<std::optional<TasdConfig>> configs(
      net.layers.size(), TasdConfig::parse("2:4"));

  const std::vector<std::size_t> batch_sizes =
      quick ? std::vector<std::size_t>{1, 16}
            : std::vector<std::size_t>{1, 4, 16, 64};

  // One artifact per kernel set; compiling both reuses every plan
  // through the PlanCache, so the second compile decomposes nothing.
  std::vector<std::pair<std::string, rt::CompileOptions>> kernel_sets;
  {
    rt::CompileOptions scalar;
    scalar.query_cols = 1;
    scalar.measure.repeats = quick ? 1 : 3;
    scalar.dense_kernel = "tiled-parallel";
    scalar.nm_kernel = "row-parallel";
    scalar.dense_batch_kernel = "batch-packed";
    scalar.nm_batch_kernel = "batch-packed";
    kernel_sets.emplace_back("scalar", scalar);
    // Gate on registry membership, not *_available(): a toolchain whose
    // compiler rejects -mavx2/-mavx512f builds no SIMD kernels even on
    // capable hardware, and compiling an unregistered name would throw.
    // (best_dense() no longer works as the gate — on an AVX-512 host it
    // names the avx512 kernel, which must not hide the avx2 set.)
    const auto dense_names = rt::GemmDispatch::instance().dense_kernels();
    const auto registered = [&](const char* name) {
      return std::find(dense_names.begin(), dense_names.end(), name) !=
             dense_names.end();
    };
    if (registered("dense-avx2")) {
      rt::CompileOptions simd = scalar;
      simd.dense_kernel = "dense-avx2";
      simd.nm_kernel = "nm-avx2";
      simd.dense_batch_kernel = "dense-batch-avx2";
      simd.nm_batch_kernel = "nm-batch-avx2";
      kernel_sets.emplace_back("avx2", simd);
    }
    if (registered("dense-avx512")) {
      rt::CompileOptions simd = scalar;
      simd.dense_kernel = "dense-avx512";
      simd.nm_kernel = "nm-avx512";
      simd.dense_batch_kernel = "dense-batch-avx512";
      simd.nm_batch_kernel = "nm-batch-avx512";
      kernel_sets.emplace_back("avx512", simd);
    }
  }

  std::vector<KernelSetResult> results;
  for (const auto& [label, opt] : kernel_sets) {
    std::fprintf(stderr, "[%s] compiling %s (%zu layers)...\n", label.c_str(),
                 net.name.c_str(), net.layers.size());
    const auto engine = rt::compile(net, configs, opt);
    // Every layer is configured here; if the artifact silently bound the
    // dense kernel somewhere, run_batch == run below would hold
    // trivially and the sweep would report dense timings as TASD.
    if (engine.configured_count() != net.layers.size()) {
      std::fprintf(stderr,
                   "** only %zu of %zu layers bound a TASD series **\n",
                   engine.configured_count(), net.layers.size());
      return 1;
    }

    std::fprintf(stderr,
                 "[%s] verifying batched == per-RHS single multiply...\n",
                 label.c_str());
    if (!verify_bit_exact(engine, 5, opt.query_cols)) {
      std::fprintf(stderr,
                   "** batched path is not bit-exact; skipping the timing "
                   "sweep **\n");
      return 1;
    }

    // Dedicated warmup for this kernel set before any timed row: the
    // smallest batch once through the full sweep machinery, so pool
    // spin-up and cold weights are paid here and not by the first row.
    (void)engine.serving_throughput({batch_sizes.front()});

    std::fprintf(stderr, "[%s] measuring %zu batch sizes...\n", label.c_str(),
                 batch_sizes.size());
    KernelSetResult r;
    r.label = label;
    r.dense_kernel = engine.options().dense_kernel;
    r.nm_kernel = engine.options().nm_kernel;
    r.plan_bytes = engine.plan_bytes();
    r.artifact_bytes = engine.artifact_bytes();
    r.entries = engine.serving_throughput(batch_sizes);

    double qps_b1 = 0.0, qps_b16 = 0.0;
    for (const auto& e : r.entries) {
      if (e.batch_size == 1) qps_b1 = e.tasd_qps;
      if (e.batch_size == 16) qps_b16 = e.tasd_qps;
      std::fprintf(stderr,
                   "[%s] batch %3zu  dense %8.2f ms (%7.2f qps)  tasd "
                   "%8.2f ms (%7.2f qps)  speedup %.3fx\n",
                   label.c_str(), e.batch_size, e.dense_ms, e.dense_qps,
                   e.tasd_ms, e.tasd_qps, e.dense_ms / e.tasd_ms);
    }
    r.scaling_b16_over_b1 = qps_b1 > 0.0 ? qps_b16 / qps_b1 : 0.0;
    results.push_back(std::move(r));
  }

  // Open-loop ServingEngine section, on the best available kernel set.
  // Capacity is probed as the engine's own batched service rate (16
  // queries per run_batch), so "1.5x load" is a true overload no matter
  // how much batching helps.
  const rt::CompileOptions& ol_opt = kernel_sets.back().second;
  std::fprintf(stderr, "[open-loop] probing batched capacity...\n");
  const auto probe =
      rt::compile(open_loop_net(), {TasdConfig::parse("2:4")}, ol_opt);
  Rng probe_rng(4244);
  std::vector<MatrixF> probe_batch;
  for (int i = 0; i < 16; ++i)
    probe_batch.push_back(
        random_dense(probe.layer(0).k, 1, Dist::kNormalStd1, probe_rng));
  const double batch_ms = time_ms_min(
      quick ? 2 : 5, [&] { (void)probe.run_batch(0, probe_batch); });
  const double capacity_qps = 16.0 * 1000.0 / batch_ms;
  std::fprintf(stderr, "[open-loop] capacity ~%.0f qps (batch-16 in %.3f ms)\n",
               capacity_qps, batch_ms);

  const std::size_t ol_requests = quick ? 120 : 400;
  std::vector<OpenLoopResult> open_loop;
  for (const char* kind : {"poisson", "burst"}) {
    for (const double load : {0.6, 1.5}) {
      auto r = run_open_loop(ol_opt, kind, load, capacity_qps, ol_requests);
      std::fprintf(stderr,
                   "[open-loop] %-7s load %.1fx  offered %7.0f qps  achieved "
                   "%7.0f qps  ok %llu shed %llu expired %llu failed %llu  "
                   "p95 %.2f ms  mean batch %.1f\n",
                   r.trace.c_str(), r.load_factor, r.offered_qps,
                   r.achieved_qps,
                   static_cast<unsigned long long>(r.metrics.ok),
                   static_cast<unsigned long long>(r.metrics.shed),
                   static_cast<unsigned long long>(r.metrics.expired),
                   static_cast<unsigned long long>(r.metrics.failed),
                   r.metrics.p95_ms, r.mean_batch);
      open_loop.push_back(std::move(r));
    }
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::perror("serving_throughput: cannot open output");
    return 1;
  }
  std::fprintf(f, "{\n  \"schema\": \"tasd-bench-serving-v3\",\n");
  std::fprintf(f, "  \"workload\": \"%s\",\n", net.name.c_str());
  std::fprintf(f, "  \"config\": \"2:4\",\n");
  std::fprintf(f, "  \"query_cols\": 1,\n");
  std::fprintf(f, "  \"bit_exact\": true,\n");
  std::fprintf(f, "  \"kernel_sets\": [\n");
  for (std::size_t s = 0; s < results.size(); ++s) {
    const auto& r = results[s];
    std::fprintf(f, "    {\"kernels\": \"%s\", \"dense_kernel\": \"%s\", ",
                 r.label.c_str(), r.dense_kernel.c_str());
    std::fprintf(f, "\"nm_kernel\": \"%s\", \"plan_bytes\": %zu, ",
                 r.nm_kernel.c_str(), static_cast<std::size_t>(r.plan_bytes));
    std::fprintf(f, "\"artifact_bytes\": %zu,\n",
                 static_cast<std::size_t>(r.artifact_bytes));
    std::fprintf(f, "     \"tasd_qps_batch16_over_batch1\": %.6f,\n",
                 r.scaling_b16_over_b1);
    std::fprintf(f, "     \"entries\": [\n");
    for (std::size_t i = 0; i < r.entries.size(); ++i) {
      const auto& e = r.entries[i];
      std::fprintf(
          f,
          "      {\"batch\": %zu, \"dense_ms\": %.6f, \"tasd_ms\": %.6f, "
          "\"dense_qps\": %.6f, \"tasd_qps\": %.6f}%s\n",
          e.batch_size, e.dense_ms, e.tasd_ms, e.dense_qps, e.tasd_qps,
          i + 1 < r.entries.size() ? "," : "");
    }
    std::fprintf(f, "     ]}%s\n", s + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"open_loop\": {\n");
  std::fprintf(f, "    \"workload\": \"open-loop-2to4\",\n");
  std::fprintf(f, "    \"kernels\": \"%s\",\n",
               kernel_sets.back().first.c_str());
  std::fprintf(f, "    \"capacity_probe_qps\": %.2f,\n", capacity_qps);
  std::fprintf(f, "    \"requests_per_trace\": %zu,\n", ol_requests);
  std::fprintf(f,
               "    \"engine\": {\"max_batch\": 16, \"max_queue_depth\": 64, "
               "\"admission_window_us\": 2000, \"deadline_ms\": 100, "
               "\"overflow\": \"reject\"},\n");
  std::fprintf(f, "    \"entries\": [\n");
  for (std::size_t i = 0; i < open_loop.size(); ++i) {
    const auto& r = open_loop[i];
    const auto& m = r.metrics;
    std::fprintf(
        f,
        "      {\"trace\": \"%s\", \"load_factor\": %.2f, "
        "\"offered_qps\": %.2f, \"achieved_qps\": %.2f, \"wall_s\": %.4f,\n"
        "       \"ok\": %llu, \"shed\": %llu, \"expired\": %llu, "
        "\"failed\": %llu, \"invalid\": %llu,\n"
        "       \"batches\": %llu, \"mean_batch\": %.3f, "
        "\"degraded_batches\": %llu, \"peak_queue_depth\": %zu,\n"
        "       \"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f}%s\n",
        r.trace.c_str(), r.load_factor, r.offered_qps, r.achieved_qps,
        r.wall_s, static_cast<unsigned long long>(m.ok),
        static_cast<unsigned long long>(m.shed),
        static_cast<unsigned long long>(m.expired),
        static_cast<unsigned long long>(m.failed),
        static_cast<unsigned long long>(m.invalid),
        static_cast<unsigned long long>(m.batches), r.mean_batch,
        static_cast<unsigned long long>(m.degraded_batches),
        m.peak_queue_depth, m.p50_ms, m.p95_ms, m.p99_ms,
        i + 1 < open_loop.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  }\n}\n");
  std::fclose(f);

  for (const auto& r : results)
    std::fprintf(stderr, "%s: batch-16 tasd qps / batch-1: %.2fx\n",
                 r.label.c_str(), r.scaling_b16_over_b1);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}
