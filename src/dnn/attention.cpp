#include "dnn/attention.hpp"

#include <cmath>

#include "common/error.hpp"
#include "tensor/gemm_ref.hpp"

namespace tasd::dnn {

AttentionLayer::AttentionLayer(Index dim, Index heads, Rng& rng)
    : dim_(dim), heads_(heads) {
  TASD_CHECK_MSG(dim % heads == 0, "attention dim " << dim
                                                    << " not divisible by "
                                                    << heads << " heads");
  wq_ = make_linear(dim, dim, ActKind::kNone, rng);
  wk_ = make_linear(dim, dim, ActKind::kNone, rng);
  wv_ = make_linear(dim, dim, ActKind::kNone, rng);
  wo_ = make_linear(dim, dim, ActKind::kNone, rng);
  // Paper §4.3: dynamic decomposition on QKV/out projections does not
  // retain quality; TASDER must not target them with TASD-A.
  for (auto* l : {wq_.get(), wk_.get(), wv_.get(), wo_.get()})
    l->set_allow_tasd_a(false);
  wq_->set_name("attn.q");
  wk_->set_name("attn.k");
  wv_->set_name("attn.v");
  wo_->set_name("attn.out");
}

Feature AttentionLayer::forward(const Feature& in) {
  const MatrixF& x = in.matrix();
  TASD_CHECK_MSG(x.rows() == dim_, "attention input features " << x.rows()
                                                               << " != dim "
                                                               << dim_);
  const Index tokens = x.cols();
  const Index dh = dim_ / heads_;

  const MatrixF q = wq_->forward(in).matrix();
  const MatrixF k = wk_->forward(in).matrix();
  const MatrixF v = wv_->forward(in).matrix();

  MatrixF context(dim_, tokens);
  const float scale = 1.0F / std::sqrt(static_cast<float>(dh));
  // Per-head scaled dot-product attention.
  for (Index h = 0; h < heads_; ++h) {
    const Index base = h * dh;
    // scores(i, j) = q_i . k_j over this head's features.
    MatrixF scores(tokens, tokens);
    for (Index i = 0; i < tokens; ++i)
      for (Index j = 0; j < tokens; ++j) {
        float acc = 0.0F;
        for (Index f = 0; f < dh; ++f) acc += q(base + f, i) * k(base + f, j);
        scores(i, j) = acc * scale;
      }
    // Row softmax (max-subtracted for numerical stability).
    for (Index i = 0; i < tokens; ++i) {
      auto row = scores.row(i);
      float mx = row[0];
      for (float s : row) mx = std::max(mx, s);
      float sum = 0.0F;
      for (float& s : row) {
        s = std::exp(s - mx);
        sum += s;
      }
      for (float& s : row) s /= sum;
    }
    // context_i = sum_j attn(i,j) * v_j.
    for (Index i = 0; i < tokens; ++i)
      for (Index f = 0; f < dh; ++f) {
        float acc = 0.0F;
        for (Index j = 0; j < tokens; ++j) acc += scores(i, j) * v(base + f, j);
        context(base + f, i) = acc;
      }
  }

  MatrixF projected = wo_->forward(Feature(std::move(context))).matrix();
  // Skip-dominant residual mixing (see kResidualSkipScale).
  for (Index r = 0; r < projected.rows(); ++r)
    for (Index c = 0; c < projected.cols(); ++c)
      projected(r, c) = projected(r, c) * kResidualBranchScale +
                        x(r, c) * kResidualSkipScale;
  return Feature(std::move(projected));
}

void AttentionLayer::collect_gemm_layers(std::vector<GemmLayer*>& out) {
  wq_->collect_gemm_layers(out);
  wk_->collect_gemm_layers(out);
  wv_->collect_gemm_layers(out);
  wo_->collect_gemm_layers(out);
}

// -------------------------------------------------------- TokenMlpBlockLayer

namespace {

/// Per-token LayerNorm over features, returning a normalized copy.
MatrixF layer_norm_cols(const MatrixF& x) {
  MatrixF out = x;
  const double eps = 1e-5;
  for (Index c = 0; c < out.cols(); ++c) {
    double mean = 0.0;
    for (Index r = 0; r < out.rows(); ++r) mean += out(r, c);
    mean /= static_cast<double>(out.rows());
    double var = 0.0;
    for (Index r = 0; r < out.rows(); ++r) {
      const double d = out(r, c) - mean;
      var += d * d;
    }
    var /= static_cast<double>(out.rows());
    const double inv = 1.0 / std::sqrt(var + eps);
    for (Index r = 0; r < out.rows(); ++r)
      out(r, c) = static_cast<float>((out(r, c) - mean) * inv);
  }
  return out;
}

}  // namespace

TokenMlpBlockLayer::TokenMlpBlockLayer(Index dim, Index hidden, ActKind act,
                                       Rng& rng) {
  fc1_ = make_linear(dim, hidden, act, rng);
  fc2_ = make_linear(hidden, dim, ActKind::kNone, rng);
  fc1_->set_name("mlp.fc1");
  fc2_->set_name("mlp.fc2");
}

Feature TokenMlpBlockLayer::forward(const Feature& in) {
  const MatrixF& x = in.matrix();
  Feature h = fc1_->forward(Feature(layer_norm_cols(x)));
  MatrixF y = fc2_->forward(h).matrix();
  for (Index r = 0; r < y.rows(); ++r)
    for (Index c = 0; c < y.cols(); ++c)
      y(r, c) =
          y(r, c) * kResidualBranchScale + x(r, c) * kResidualSkipScale;
  return Feature(std::move(y));
}

void TokenMlpBlockLayer::collect_gemm_layers(std::vector<GemmLayer*>& out) {
  fc1_->collect_gemm_layers(out);
  fc2_->collect_gemm_layers(out);
}

// --------------------------------------------------------- TokenMeanPool/LN

Feature TokenMeanPoolLayer::forward(const Feature& in) {
  const MatrixF& x = in.matrix();
  MatrixF out(x.rows(), 1);
  for (Index r = 0; r < x.rows(); ++r) {
    double acc = 0.0;
    for (Index c = 0; c < x.cols(); ++c) acc += x(r, c);
    out(r, 0) = static_cast<float>(acc / static_cast<double>(x.cols()));
  }
  return Feature(std::move(out));
}

Feature TokenNormLayer::forward(const Feature& in) {
  return Feature(layer_norm_cols(in.matrix()));
}

}  // namespace tasd::dnn
