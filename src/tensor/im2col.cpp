#include "tensor/im2col.hpp"

namespace tasd {

MatrixF im2col(const Tensor4D& input, Index batch, const ConvShape& shape) {
  TASD_CHECK(batch < input.n());
  TASD_CHECK_MSG(input.c() == shape.in_channels,
                 "input channels " << input.c() << " != conv in_channels "
                                   << shape.in_channels);
  const Index oh = shape.out_h(input.h());
  const Index ow = shape.out_w(input.w());
  MatrixF patches(shape.in_channels * shape.kernel_h * shape.kernel_w,
                  oh * ow);

  for (Index c = 0; c < shape.in_channels; ++c) {
    for (Index kh = 0; kh < shape.kernel_h; ++kh) {
      for (Index kw = 0; kw < shape.kernel_w; ++kw) {
        const Index prow = (c * shape.kernel_h + kh) * shape.kernel_w + kw;
        for (Index y = 0; y < oh; ++y) {
          // Signed arithmetic for the padded coordinate.
          const std::ptrdiff_t in_y =
              static_cast<std::ptrdiff_t>(y * shape.stride + kh) -
              static_cast<std::ptrdiff_t>(shape.padding);
          for (Index x = 0; x < ow; ++x) {
            const std::ptrdiff_t in_x =
                static_cast<std::ptrdiff_t>(x * shape.stride + kw) -
                static_cast<std::ptrdiff_t>(shape.padding);
            float v = 0.0F;
            if (in_y >= 0 && in_y < static_cast<std::ptrdiff_t>(input.h()) &&
                in_x >= 0 && in_x < static_cast<std::ptrdiff_t>(input.w())) {
              v = input(batch, c, static_cast<Index>(in_y),
                        static_cast<Index>(in_x));
            }
            patches(prow, y * ow + x) = v;
          }
        }
      }
    }
  }
  return patches;
}

void col2im_output(const MatrixF& gemm_out, Index batch, Index out_h,
                   Index out_w, Tensor4D& output) {
  TASD_CHECK(batch < output.n());
  TASD_CHECK_MSG(gemm_out.rows() == output.c(),
                 "GEMM rows " << gemm_out.rows() << " != output channels "
                              << output.c());
  TASD_CHECK_MSG(gemm_out.cols() == out_h * out_w,
                 "GEMM cols " << gemm_out.cols() << " != " << out_h << "*"
                              << out_w);
  TASD_CHECK(output.h() == out_h && output.w() == out_w);
  for (Index c = 0; c < output.c(); ++c)
    for (Index y = 0; y < out_h; ++y)
      for (Index x = 0; x < out_w; ++x)
        output(batch, c, y, x) = gemm_out(c, y * out_w + x);
}

}  // namespace tasd
