// Non-linear activation functions (paper §2.2): ReLU-family functions
// induce true zeros (activation sparsity); GELU/Swish do not, which is
// what motivates the paper's pseudo-density heuristic.
#pragma once

#include <string>

namespace tasd::dnn {

/// Supported activation non-linearities.
enum class ActKind {
  kNone,   ///< identity
  kRelu,
  kRelu6,
  kGelu,   ///< tanh approximation, matches common framework defaults
  kSwish,  ///< x * sigmoid(x)
};

/// Apply the scalar activation function.
float apply_act(ActKind kind, float x);

/// Human-readable name ("relu", "gelu", ...).
std::string act_name(ActKind kind);

/// True when the function clips to exact zeros (ReLU family) — such
/// layers produce genuinely sparse activations.
bool induces_sparsity(ActKind kind);

}  // namespace tasd::dnn
