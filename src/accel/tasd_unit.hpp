// TASD-unit pipeline and area models (paper §4.4, Figs. 9–10, §5.4).
//
// A TASD unit is a comparator tree that extracts the largest-|value|
// element of an M-block per cycle; a series with terms N1:M + N2:M + …
// occupies a unit for ΣNi + 1 cycles per block (extract ΣNi elements,
// one cycle to emit). The PE array of one TTC emits pe_cols outputs per
// cycle = pe_cols/M blocks per cycle; with U units per TTC, Little's law
// gives the no-stall condition U >= blocks_per_cycle * cycles_per_block.
#pragma once

#include "accel/arch.hpp"
#include "core/config.hpp"

namespace tasd::accel {

/// Decomposition pipeline occupancy for one TTC engine.
struct TasdUnitModel {
  double blocks_per_cycle = 0.0;   ///< produced by the PE array
  int cycles_per_block = 0;        ///< TASD-unit service time
  double required_units = 0.0;     ///< Little's law L = λ·W
  Index available_units = 0;

  /// ≥ 1; multiply compute cycles by this when the decomposition
  /// pipeline cannot keep up with the PE array.
  [[nodiscard]] double stall_factor() const;
};

/// Evaluate the pipeline for an architecture running the given TASD-A
/// series. Throws if the architecture has no TASD units.
TasdUnitModel tasd_unit_model(const ArchConfig& arch, const TasdConfig& cfg);

/// Area model (paper §5.4): TASD units are comparator trees. We count
/// 2-input fp16 comparators + muxes against the MAC gate budget of the PE
/// array and return the area ratio. The paper reports <= 2 %.
struct TasdAreaModel {
  double tasd_unit_gates = 0.0;   ///< per engine, all units
  double pe_array_gates = 0.0;    ///< per engine
  [[nodiscard]] double ratio() const {
    return pe_array_gates > 0.0 ? tasd_unit_gates / pe_array_gates : 0.0;
  }
};
TasdAreaModel tasd_area_model(const ArchConfig& arch);

}  // namespace tasd::accel
