// Extension experiment (paper §6.2 future work): TASD during training.
//
// The paper's related-work section notes TensorDash/SAVE exploit sparse
// activations and gradients in training, and that "TASD can potentially
// be used to approximate sparse activations and gradients, but we leave
// this to future work". This bench runs that experiment on the MLP
// training substrate: decompose the backward-pass operands with N:M
// series of varying aggressiveness and measure the convergence cost next
// to the compute saved.
#include <iostream>

#include "common/table.hpp"
#include "train/trainer.hpp"

using namespace tasd;
using train::Dataset;
using train::Mlp;
using train::TasdTrainingHooks;
using train::TrainOptions;

int main() {
  print_banner("Extension: TASD-approximated backward pass (paper 6.2)");

  const Dataset train_set = Dataset::synthetic(32, 8, 1024, 1.7, 60, 61);
  const Dataset test_set = Dataset::synthetic(32, 8, 512, 1.7, 60, 62);

  struct Variant {
    const char* name;
    TasdTrainingHooks hooks;
    double backward_mac_fraction;  // of the hooked GEMM operands
  };
  std::vector<Variant> variants;
  variants.push_back({"baseline (exact backward)", {}, 1.0});
  {
    TasdTrainingHooks h;
    h.gradients = TasdConfig::parse("6:8");
    variants.push_back({"gradients 6:8", h, 0.75});
  }
  {
    TasdTrainingHooks h;
    h.gradients = TasdConfig::parse("4:8");
    variants.push_back({"gradients 4:8", h, 0.5});
  }
  {
    TasdTrainingHooks h;
    h.gradients = TasdConfig::parse("2:8");
    variants.push_back({"gradients 2:8", h, 0.25});
  }
  {
    TasdTrainingHooks h;
    h.activations = TasdConfig::parse("4:8");
    variants.push_back({"activations 4:8", h, 0.5});
  }
  {
    TasdTrainingHooks h;
    h.activations = TasdConfig::parse("4:8");
    h.gradients = TasdConfig::parse("4:8");
    variants.push_back({"both 4:8", h, 0.5});
  }

  TextTable t;
  t.header({"backward variant", "hooked-operand slots", "final loss",
            "test accuracy"});
  double baseline_acc = 0.0;
  for (const auto& v : variants) {
    Mlp mlp({32, 64, 32, 8}, 63);
    TrainOptions opt;
    opt.epochs = 25;
    opt.batch = 32;
    opt.lr = 0.15;
    opt.hooks = v.hooks;
    const auto r = train::train(mlp, train_set, test_set, opt);
    if (baseline_acc == 0.0) baseline_acc = r.final_test_accuracy;
    t.row({std::string(v.name), TextTable::pct(v.backward_mac_fraction, 0),
           TextTable::num(r.loss_per_epoch.back(), 4),
           TextTable::pct(r.final_test_accuracy)});
  }
  t.print();

  std::cout << "\nInterpretation: gradient and activation tensors during "
               "training are heavy-tailed, so\nN:M series keep the "
               "dominant directions and convergence lands within ~1 point "
               "of the\nexact baseline while the hooked backward GEMMs "
               "execute 25-75% of the slots — evidence\nfor the paper's "
               "§6.2 future-work hypothesis that TASD extends to "
               "training.\n";
  return 0;
}
