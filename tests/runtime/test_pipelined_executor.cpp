#include "runtime/pipelined_executor.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dnn/workloads.hpp"
#include "tensor/generator.hpp"

namespace tasd::rt {
namespace {

/// The decode stack doubles as the executor fixture: six chainable
/// layers mixing TASD-configured (2:4 projections/MLP) and dense
/// (KV-cache) bindings at GEMV width.
dnn::NetworkWorkload chain_net() {
  return dnn::decode_step_workload(64, 48, true, 515);
}

std::vector<std::optional<TasdConfig>> chain_configs(
    const dnn::NetworkWorkload& net) {
  std::vector<std::optional<TasdConfig>> configs;
  for (const auto& l : net.layers) {
    if (l.weight_density < 1.0)
      configs.emplace_back(TasdConfig::parse("2:4"));
    else
      configs.emplace_back(std::nullopt);
  }
  return configs;
}

CompileOptions exec_options(std::size_t num_threads) {
  CompileOptions opt;
  opt.query_cols = 1;
  opt.n_divisor = 1;
  opt.measure.repeats = 1;
  opt.measure.num_threads = num_threads;
  return opt;
}

/// Ragged batch: item widths cycle 1, 3, 2, ...
std::vector<MatrixF> ragged_batch(Index k, std::size_t items, Rng& rng) {
  const Index widths[] = {1, 3, 2};
  std::vector<MatrixF> out;
  out.reserve(items);
  for (std::size_t i = 0; i < items; ++i)
    out.push_back(random_dense(k, widths[i % 3], Dist::kNormalStd1, rng));
  return out;
}

TEST(PipelinedExecutor, RejectsNonChainableNetwork) {
  dnn::NetworkWorkload net;
  net.name = "broken-chain";
  dnn::GemmWorkload a;
  a.name = "a";
  a.m = 16;
  a.k = 8;
  a.n = 1;
  a.weight_seed = 91;
  dnn::GemmWorkload b = a;
  b.name = "b";
  b.k = 24;  // != a.m: layer b cannot consume layer a's output
  b.weight_seed = 92;
  net.layers = {a, b};
  const auto engine = compile(net, {std::nullopt, std::nullopt},
                              exec_options(2));
  EXPECT_THROW(PipelinedExecutor ex(engine), Error);
}

TEST(PipelinedExecutor, BitExactAcrossThreadCountsAndBatchShapes) {
  const auto net = chain_net();
  const auto configs = chain_configs(net);
  Rng rng(6061);
  // 0 = the shared default pool; the rest dedicated pools, including
  // more workers than this machine has cores and more than some batch
  // sizes have items.
  for (const std::size_t threads : {0ul, 1ul, 2ul, 5ul, 8ul}) {
    const auto engine = compile(net, configs, exec_options(threads));
    const PipelinedExecutor exec(engine);
    for (const std::size_t items : {1ul, 2ul, 5ul, 8ul}) {
      const auto inputs = ragged_batch(engine.layer(0).k, items, rng);
      const auto sequential = engine.run_network_batch(inputs);
      const auto pipelined = exec.run_batch(inputs);
      ASSERT_EQ(pipelined.size(), items);
      for (std::size_t i = 0; i < items; ++i) {
        // Bitwise: pipelined == the layer-major batched path == looping
        // the whole network per item.
        EXPECT_TRUE(pipelined[i] == sequential[i])
            << "threads=" << threads << " items=" << items << " item " << i;
        EXPECT_TRUE(pipelined[i] == engine.run_network(inputs[i]))
            << "threads=" << threads << " items=" << items << " item " << i;
      }
    }
  }
}

TEST(PipelinedExecutor, SingleLayerNetworkIsDegenerate) {
  dnn::NetworkWorkload net;
  net.name = "single-layer";
  dnn::GemmWorkload l;
  l.name = "only";
  l.m = 24;
  l.k = 16;
  l.n = 1;
  l.weight_density = 0.2;
  l.weight_seed = 93;
  net.layers = {l};
  const auto engine =
      compile(net, {TasdConfig::parse("2:4")}, exec_options(4));
  const PipelinedExecutor exec(engine);
  EXPECT_TRUE(exec.pipelining_is_noop(8));
  EXPECT_EQ(exec.schedule(8).size(), 1u);  // one chunk x one layer

  Rng rng(6062);
  const auto inputs = ragged_batch(16, 5, rng);
  const auto out = exec.run_batch(inputs);
  const auto expected = engine.run_network_batch(inputs);
  ASSERT_EQ(out.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_TRUE(out[i] == expected[i]);
}

TEST(PipelinedExecutor, NoopCases) {
  const auto net = chain_net();
  const auto engine = compile(net, chain_configs(net), exec_options(4));
  const PipelinedExecutor exec(engine);
  EXPECT_TRUE(exec.pipelining_is_noop(0));
  EXPECT_TRUE(exec.pipelining_is_noop(1));  // single item: nothing overlaps
  EXPECT_FALSE(exec.pipelining_is_noop(2));

  const auto serial = compile(net, chain_configs(net), exec_options(1));
  const PipelinedExecutor serial_exec(serial);
  EXPECT_TRUE(serial_exec.pipelining_is_noop(8));  // serial pool

  EXPECT_TRUE(exec.run_batch({}).empty());
}

TEST(PipelinedExecutor, ScheduleShape) {
  const auto net = chain_net();
  const std::size_t layers = net.layers.size();
  const auto engine = compile(net, chain_configs(net), exec_options(3));
  const PipelinedExecutor exec(engine);

  // Chunks: min(items, workers) balanced contiguous ranges.
  const auto few = exec.chunks(2);
  ASSERT_EQ(few.size(), 2u);
  EXPECT_EQ(few[0], (std::pair<std::size_t, std::size_t>{0, 1}));
  EXPECT_EQ(few[1], (std::pair<std::size_t, std::size_t>{1, 2}));
  const auto many = exec.chunks(8);
  ASSERT_EQ(many.size(), 3u);
  EXPECT_EQ(many[0], (std::pair<std::size_t, std::size_t>{0, 3}));
  EXPECT_EQ(many[1], (std::pair<std::size_t, std::size_t>{3, 6}));
  EXPECT_EQ(many[2], (std::pair<std::size_t, std::size_t>{6, 8}));

  // Schedule: chunk-major nodes, one chain edge per (chunk, layer > 0).
  const auto nodes = exec.schedule(8);
  ASSERT_EQ(nodes.size(), 3 * layers);
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t l = 0; l < layers; ++l) {
      const auto& node = nodes[c * layers + l];
      EXPECT_EQ(node.chunk, c);
      EXPECT_EQ(node.layer, l);
      if (l == 0) {
        EXPECT_TRUE(node.deps.empty());
      } else {
        ASSERT_EQ(node.deps.size(), 1u);
        EXPECT_EQ(node.deps[0], c * layers + l - 1);
      }
    }
  }
}

TEST(PipelinedExecutor, RunDelegatesToSequentialPath) {
  const auto net = chain_net();
  const auto engine = compile(net, chain_configs(net), exec_options(2));
  const PipelinedExecutor exec(engine);
  Rng rng(6063);
  const MatrixF x = random_dense(engine.layer(0).k, 1, Dist::kNormalStd1, rng);
  EXPECT_TRUE(exec.run(x) == engine.run_network(x));
}

TEST(CompileAndMeasure, MatchesPlainCompileBitwise) {
  const auto net = chain_net();
  const auto configs = chain_configs(net);
  const CompileOptions opt = exec_options(4);

  const auto plain = compile(net, configs, opt);
  const auto overlapped = compile_and_measure(net, configs, opt);

  ASSERT_EQ(overlapped.network.layer_count(), plain.layer_count());
  EXPECT_EQ(overlapped.network.configured_count(), plain.configured_count());

  Rng rng(6064);
  const auto inputs = ragged_batch(plain.layer(0).k, 4, rng);
  const auto a = plain.run_network_batch(inputs);
  const auto b = overlapped.network.run_network_batch(inputs);
  for (std::size_t i = 0; i < inputs.size(); ++i)
    EXPECT_TRUE(a[i] == b[i]) << "item " << i;
}

TEST(CompileAndMeasure, TimingsCoverEveryLayer) {
  const auto net = chain_net();
  const auto configs = chain_configs(net);
  const auto result = compile_and_measure(net, configs, exec_options(2));
  ASSERT_EQ(result.timings.size(), net.layers.size());
  for (std::size_t l = 0; l < result.timings.size(); ++l) {
    const auto& t = result.timings[l];
    EXPECT_EQ(t.name, net.layers[l].name);
    EXPECT_GT(t.dense_ms, 0.0);
    EXPECT_EQ(t.config.has_value(), configs[l].has_value());
    if (configs[l]) {
      EXPECT_GT(t.tasd_ms, 0.0);
      EXPECT_GT(t.kept_nnz_fraction, 0.0);
    }
  }
}

TEST(CompileAndMeasure, RequiresPlanCache) {
  const auto net = chain_net();
  CompileOptions opt = exec_options(2);
  opt.measure.use_plan_cache = false;
  EXPECT_THROW(compile_and_measure(net, chain_configs(net), opt), Error);
}

}  // namespace
}  // namespace tasd::rt
