// Approximation-quality metrics for a TASD decomposition (paper Fig. 4,
// Fig. 17, Fig. 18): dropped non-zero fraction, dropped magnitude
// fraction, MSE and relative Frobenius error of the approximation.
#pragma once

#include "core/decompose.hpp"
#include "tensor/matrix.hpp"

namespace tasd {

/// Quality statistics of approximating `original` by a decomposition.
struct ApproxStats {
  Index original_nnz = 0;
  Index kept_nnz = 0;
  Index dropped_nnz = 0;
  double original_magnitude = 0.0;  ///< Σ|a_ij|
  double kept_magnitude = 0.0;
  double dropped_magnitude = 0.0;
  double mse = 0.0;                   ///< mean((A - Â)^2)
  double rel_frobenius_error = 0.0;   ///< ||A - Â|| / ||A||

  /// dropped_nnz / original_nnz (0 if original had no non-zeros).
  [[nodiscard]] double dropped_nnz_fraction() const;

  /// dropped_magnitude / original_magnitude (0 if original was all-zero).
  [[nodiscard]] double dropped_magnitude_fraction() const;

  /// kept_nnz / original_nnz.
  [[nodiscard]] double nnz_coverage() const;

  /// kept_magnitude / original_magnitude.
  [[nodiscard]] double magnitude_coverage() const;
};

/// Compute stats given the original matrix and its decomposition.
/// The decomposition must have been produced from `original`.
ApproxStats approx_stats(const MatrixF& original, const Decomposition& d);

/// One-call variant: decompose then evaluate.
ApproxStats approx_stats(const MatrixF& original, const TasdConfig& config);

}  // namespace tasd
