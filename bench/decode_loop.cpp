// Autoregressive-decode bench: the pipelined executor against the
// sequential execution paths on the transformer decode step.
//
// Each step is dnn::decode_step_workload — attention projections,
// score/value mixing against the KV cache, and the MLP pair, all at
// query_cols = 1. That is the GEMV regime: per-layer kernel cost is
// dominated by the weight traversal, so executing a batch of decode
// steps one item at a time (seq_loop — the natural per-request serving
// loop, CompiledNetwork::run_network per item) re-traverses every
// weight per item, and the layer-major batched path (seq_batch —
// run_network_batch) pays a full pool barrier per layer.
// rt::PipelinedExecutor splits the batch into per-worker chunks and
// overlaps layer L+1 of chunk c with layer L of chunk c+1 through one
// explicit task graph: chunk-packed kernels amortize the weight
// traversals AND the whole batch costs one pool fork.
//
// The sweep runs per kernel set (pinned scalar and, when registered,
// AVX2/FMA), per pool size (1 = the documented no-op fallback, where
// the pipelined path degenerates to seq_batch; >1 = real overlap), per
// KV-cache length, per batch. Before timing, every cell's pipelined
// output is checked bit-exact (`==`) against both sequential paths of
// the same artifact — a wrong-but-fast schedule fails loudly here
// (non-zero exit).
//
// `speedup` is pipelined vs the per-item sequential loop (the decode
// scenario's baseline); `speedup_vs_batch` isolates the pipelining
// contribution against the already-batched sequential path — expect it
// below 1 on single-core machines (chunking repeats weight traversals
// with no spare core to hide them) and above 1 with real cores.
//
// Emits BENCH_decode.json (schema tasd-bench-decode-v1; see
// docs/reproducing.md and docs/executor.md).
//
// Usage: decode_loop [output.json] [--quick]
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "dnn/workloads.hpp"
#include "runtime/compiled_network.hpp"
#include "runtime/pipelined_executor.hpp"
#include "tensor/generator.hpp"

namespace {

using namespace tasd;

constexpr Index kHidden = 256;

/// 2:4 on the four pruned projection/MLP weights; the KV-cache layers
/// (scores, value mixing) stay dense — they are activations, not
/// weights (workload sets them density 1.0 and TASD-A-ineligible).
std::vector<std::optional<TasdConfig>> decode_configs(
    const dnn::NetworkWorkload& net) {
  std::vector<std::optional<TasdConfig>> configs;
  configs.reserve(net.layers.size());
  for (const auto& l : net.layers) {
    if (l.weight_density < 1.0)
      configs.emplace_back(TasdConfig::parse("2:4"));
    else
      configs.emplace_back(std::nullopt);
  }
  return configs;
}

struct Entry {
  std::size_t threads = 0;
  Index kv = 0;
  std::size_t batch = 0;
  bool noop = false;  ///< pipelining_is_noop: pipe is the seq_batch path
  double seq_loop_ms = 0.0;
  double seq_batch_ms = 0.0;
  double pipe_ms = 0.0;
  [[nodiscard]] double speedup() const {
    return pipe_ms > 0.0 ? seq_loop_ms / pipe_ms : 0.0;
  }
  [[nodiscard]] double speedup_vs_batch() const {
    return pipe_ms > 0.0 ? seq_batch_ms / pipe_ms : 0.0;
  }
};

struct KernelSetResult {
  std::string label;
  std::string dense_kernel;
  std::string nm_kernel;
  std::vector<Entry> entries;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_decode.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else {
      out_path = arg;
    }
  }

  const std::vector<Index> kv_lens =
      quick ? std::vector<Index>{128, 512} : std::vector<Index>{128, 512, 2048};
  const std::vector<std::size_t> batches =
      quick ? std::vector<std::size_t>{1, 4, 8}
            : std::vector<std::size_t>{1, 4, 8, 16};
  const std::vector<std::size_t> pool_sizes =
      quick ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4};
  const int repeats = quick ? 5 : 9;

  std::vector<std::pair<std::string, rt::CompileOptions>> kernel_sets;
  {
    rt::CompileOptions scalar;
    scalar.query_cols = 1;
    scalar.n_divisor = 1;  // decode layers are already n = 1
    scalar.measure.repeats = 1;
    scalar.dense_kernel = "tiled-parallel";
    scalar.nm_kernel = "row-parallel";
    scalar.dense_batch_kernel = "batch-packed";
    scalar.nm_batch_kernel = "batch-packed";
    kernel_sets.emplace_back("scalar", scalar);
    // Gate on registry membership, not *_available(): a toolchain whose
    // compiler rejects -mavx2/-mavx512f builds no SIMD kernels even on
    // capable hardware, and compiling an unregistered name would throw.
    // (best_dense() no longer works as the gate — on an AVX-512 host it
    // names the avx512 kernel, which must not hide the avx2 set.)
    const auto dense_names = rt::GemmDispatch::instance().dense_kernels();
    const auto registered = [&](const char* name) {
      return std::find(dense_names.begin(), dense_names.end(), name) !=
             dense_names.end();
    };
    if (registered("dense-avx2")) {
      rt::CompileOptions simd = scalar;
      simd.dense_kernel = "dense-avx2";
      simd.nm_kernel = "nm-avx2";
      simd.dense_batch_kernel = "dense-batch-avx2";
      simd.nm_batch_kernel = "nm-batch-avx2";
      kernel_sets.emplace_back("avx2", simd);
    }
    if (registered("dense-avx512")) {
      rt::CompileOptions simd = scalar;
      simd.dense_kernel = "dense-avx512";
      simd.nm_kernel = "nm-avx512";
      simd.dense_batch_kernel = "dense-batch-avx512";
      simd.nm_batch_kernel = "nm-batch-avx512";
      kernel_sets.emplace_back("avx512", simd);
    }
  }

  std::vector<KernelSetResult> results;
  volatile float sink = 0.0F;  // defeat dead-code elimination
  for (const auto& [label, base_opt] : kernel_sets) {
    KernelSetResult r;
    r.label = label;
    for (const std::size_t threads : pool_sizes) {
      for (const Index kv : kv_lens) {
        const auto net = dnn::decode_step_workload(kHidden, kv, true, 42);
        rt::CompileOptions opt = base_opt;
        opt.measure.num_threads = threads;
        // Plans are shared through the process-wide cache, so only the
        // first artifact per (weights, config) pair decomposes.
        const auto engine = rt::compile(net, decode_configs(net), opt);
        r.dense_kernel = engine.options().dense_kernel;
        r.nm_kernel = engine.options().nm_kernel;
        const rt::PipelinedExecutor exec(engine);

        // Dedicated warmup for this kernel set / pool / kv cell: spin
        // the pool up, fault the weights in, and let every execution
        // path touch its buffers once before anything is timed —
        // otherwise the first row of each sweep absorbs those one-time
        // costs and reads slower than the identical later rows.
        {
          Rng wrng(8001 + static_cast<std::uint64_t>(kv));
          const std::vector<MatrixF> warm = {
              random_dense(kHidden, 1, Dist::kNormalStd1, wrng)};
          (void)engine.run_network(warm[0]);
          (void)engine.run_network_batch(warm);
          (void)exec.run_batch(warm);
        }

        Rng rng(9001 + static_cast<std::uint64_t>(kv));
        for (const std::size_t batch : batches) {
          std::vector<MatrixF> inputs;
          inputs.reserve(batch);
          for (std::size_t i = 0; i < batch; ++i)
            inputs.push_back(
                random_dense(kHidden, 1, Dist::kNormalStd1, rng));

          // Bit-exactness gate: the pipelined schedule must reproduce
          // both sequential paths exactly before its timing means
          // anything.
          const auto batch_out = engine.run_network_batch(inputs);
          const auto pipe_out = exec.run_batch(inputs);
          for (std::size_t i = 0; i < batch; ++i) {
            if (!(batch_out[i] == pipe_out[i]) ||
                !(engine.run_network(inputs[i]) == pipe_out[i])) {
              std::fprintf(stderr,
                           "** NOT BIT-EXACT: %s threads=%zu kv=%zu "
                           "batch=%zu item %zu **\n",
                           label.c_str(), threads,
                           static_cast<std::size_t>(kv), batch, i);
              return 1;
            }
          }

          Entry e;
          e.threads = threads;
          e.kv = kv;
          e.batch = batch;
          e.noop = exec.pipelining_is_noop(batch);
          e.seq_loop_ms = time_ms_min(repeats, [&] {
            for (const MatrixF& x : inputs)
              sink = sink + engine.run_network(x)(0, 0);
          });
          e.seq_batch_ms = time_ms_min(repeats, [&] {
            sink = sink + engine.run_network_batch(inputs)[0](0, 0);
          });
          e.pipe_ms = time_ms_min(repeats, [&] {
            sink = sink + exec.run_batch(inputs)[0](0, 0);
          });
          std::fprintf(
              stderr,
              "[%s] threads %zu  kv %5zu  batch %3zu%s  loop %9.4f ms  "
              "batched %8.4f ms  pipe %9.4f ms  speedup %.3fx (vs batched "
              "%.3fx)\n",
              label.c_str(), threads, static_cast<std::size_t>(kv), batch,
              e.noop ? "*" : " ", e.seq_loop_ms, e.seq_batch_ms, e.pipe_ms,
              e.speedup(), e.speedup_vs_batch());
          r.entries.push_back(e);
        }
      }
    }
    results.push_back(std::move(r));
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::perror("decode_loop: cannot open output");
    return 1;
  }
  std::fprintf(f, "{\n  \"schema\": \"tasd-bench-decode-v1\",\n");
  std::fprintf(f, "  \"workload\": \"decode_step\",\n");
  std::fprintf(f, "  \"hidden\": %zu,\n", static_cast<std::size_t>(kHidden));
  std::fprintf(f, "  \"config\": \"2:4\",\n");
  std::fprintf(f, "  \"query_cols\": 1,\n");
  std::fprintf(f, "  \"bit_exact\": true,\n");
  std::fprintf(f, "  \"kernel_sets\": [\n");
  for (std::size_t s = 0; s < results.size(); ++s) {
    const auto& r = results[s];
    std::fprintf(f,
                 "    {\"kernels\": \"%s\", \"dense_kernel\": \"%s\", "
                 "\"nm_kernel\": \"%s\",\n     \"entries\": [\n",
                 r.label.c_str(), r.dense_kernel.c_str(), r.nm_kernel.c_str());
    for (std::size_t i = 0; i < r.entries.size(); ++i) {
      const auto& e = r.entries[i];
      std::fprintf(f,
                   "      {\"threads\": %zu, \"kv\": %zu, \"batch\": %zu, "
                   "\"noop\": %s, \"seq_loop_ms\": %.6f, "
                   "\"seq_batch_ms\": %.6f, \"pipe_ms\": %.6f, "
                   "\"speedup\": %.6f, \"speedup_vs_batch\": %.6f}%s\n",
                   e.threads, static_cast<std::size_t>(e.kv), e.batch,
                   e.noop ? "true" : "false", e.seq_loop_ms, e.seq_batch_ms,
                   e.pipe_ms, e.speedup(), e.speedup_vs_batch(),
                   i + 1 < r.entries.size() ? "," : "");
    }
    std::fprintf(f, "     ]}%s\n", s + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}
