// Minimal leveled logging to stderr.
//
// The library itself is silent by default; benches and examples raise the
// level when narrating progress. Not thread-safe by design (all tools in
// this repo are single-threaded).
#pragma once

#include <sstream>
#include <string>

namespace tasd {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

}  // namespace tasd

#define TASD_LOG(level, msg)                                       \
  do {                                                             \
    if (static_cast<int>(level) >=                                 \
        static_cast<int>(::tasd::log_level())) {                   \
      std::ostringstream tasd_log_os_;                             \
      tasd_log_os_ << msg;                                         \
      ::tasd::detail::log_line(level, tasd_log_os_.str());         \
    }                                                              \
  } while (false)

#define TASD_DEBUG(msg) TASD_LOG(::tasd::LogLevel::kDebug, msg)
#define TASD_INFO(msg) TASD_LOG(::tasd::LogLevel::kInfo, msg)
#define TASD_WARN(msg) TASD_LOG(::tasd::LogLevel::kWarn, msg)
#define TASD_ERROR(msg) TASD_LOG(::tasd::LogLevel::kError, msg)
