// Table 4: the representative layers (L1/L2/L3) of each workload, as
// located in the full-scale workload stacks.
#include <iostream>

#include "common/table.hpp"
#include "dnn/workloads.hpp"

using namespace tasd;

int main() {
  print_banner("Table 4: representative layers");
  TextTable t;
  t.header({"id", "M (out)", "K (red.)", "N (pos/tok)", "wgt density",
            "act density", "act fn"});
  for (const auto& l : dnn::table4_layers()) {
    t.row({l.name, std::to_string(l.m), std::to_string(l.k),
           std::to_string(l.n), TextTable::num(l.weight_density, 3),
           TextTable::num(l.act_density, 3),
           l.act_relu ? "ReLU" : "GELU"});
  }
  t.print();
  std::cout << "\nPaper dims (their M-N-K = our N-M-K): dense RN50 "
               "L1 M784-N128-K1152, L2 M3136-N64-K576,\nsparse RN50 L3 "
               "M196-N256-K2304; BERT L1 M768-N128-K768, L2 "
               "M3072-N128-K768, L3 M768-N128-K3072.\n";
  return 0;
}
