// Layer hierarchy for the DNN substrate.
//
// Only CONV and FC layers are TASD targets (paper §4.1); they share the
// GemmLayer interface that TASDER manipulates: a weight matrix in GEMM
// form, an optional TASD-W config (static, applied to weights), an
// optional TASD-A config (dynamic, applied to the input activations —
// the inserted "TASD layer" of Fig. 7/8), and recorded per-forward
// statistics that the accelerator model consumes.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/config.hpp"
#include "dnn/act_fn.hpp"
#include "dnn/feature.hpp"
#include "tensor/im2col.hpp"
#include "tensor/matrix.hpp"

namespace tasd::dnn {

/// GEMM dimensions of one layer execution: C(MxN) = W(MxK) * X(KxN).
struct GemmDims {
  Index m = 0;  ///< output channels / features
  Index k = 0;  ///< reduction dimension
  Index n = 0;  ///< spatial positions x batch, or tokens
};

/// Statistics recorded during the last forward pass of a GEMM layer.
struct GemmLayerStats {
  GemmDims dims;
  double input_density = 1.0;   ///< density of the GEMM X operand (post TASD-A)
  double raw_input_density = 1.0;  ///< density before TASD-A
  double input_pseudo_density = 1.0;  ///< pseudo-density (99% magnitude)
  Index forward_count = 0;
};

/// Abstract layer.
class Layer {
 public:
  virtual ~Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Run the layer. Implementations must not retain references into `in`.
  virtual Feature forward(const Feature& in) = 0;

  /// Append all GEMM (TASD-targetable) layers, in execution order.
  virtual void collect_gemm_layers(std::vector<class GemmLayer*>& out) {
    (void)out;
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

 protected:
  Layer() = default;

 private:
  std::string name_;
};

/// Common base of Conv2d and Linear: weight in GEMM form + TASD hooks.
class GemmLayer : public Layer {
 public:
  /// The weight in GEMM operand form (M x K).
  [[nodiscard]] const MatrixF& weight() const { return weight_; }

  /// Replace the weight (e.g. pruning). Invalidate cached TASD-W terms.
  void set_weight(MatrixF w);

  /// The weight actually multiplied: TASD-W approximation if configured.
  [[nodiscard]] const MatrixF& effective_weight() const;

  /// Configure (or clear) static weight decomposition (TASD-W).
  void set_tasd_w(std::optional<TasdConfig> cfg);
  [[nodiscard]] const std::optional<TasdConfig>& tasd_w() const {
    return tasd_w_;
  }

  /// Configure (or clear) dynamic activation decomposition (TASD-A).
  void set_tasd_a(std::optional<TasdConfig> cfg) { tasd_a_ = std::move(cfg); }
  [[nodiscard]] const std::optional<TasdConfig>& tasd_a() const {
    return tasd_a_;
  }

  /// Whether TASDER may insert a TASD-A layer before this GEMM (QKV /
  /// attention-out projections are excluded, paper §4.3).
  [[nodiscard]] bool allow_tasd_a() const { return allow_tasd_a_; }
  void set_allow_tasd_a(bool v) { allow_tasd_a_ = v; }

  /// Stats from the most recent forward.
  [[nodiscard]] const GemmLayerStats& stats() const { return stats_; }

  /// Activation function fused after the GEMM.
  [[nodiscard]] ActKind act() const { return act_; }

  void collect_gemm_layers(std::vector<GemmLayer*>& out) override {
    out.push_back(this);
  }

 protected:
  GemmLayer(MatrixF weight, ActKind act)
      : weight_(std::move(weight)), act_(act) {}

  /// Record operand stats; called by subclasses inside forward().
  /// `sample_operand` is used for the pseudo-density estimate (one batch
  /// item suffices); `operand_density` is the exact batch-wide density.
  void record_forward(const GemmDims& dims, const MatrixF& sample_operand,
                      double raw_density, double operand_density);

  MatrixF weight_;
  ActKind act_;

 private:
  std::optional<TasdConfig> tasd_w_;
  std::optional<TasdConfig> tasd_a_;
  bool allow_tasd_a_ = true;
  mutable std::optional<MatrixF> effective_weight_cache_;
  GemmLayerStats stats_;
};

/// 2-D convolution executed as im2col + GEMM, with optional batch
/// normalization folded in and a fused activation.
///
/// BN semantics match deployment: statistics are *calibrated on the
/// first forward pass* (per channel, over batch x positions) and frozen
/// afterwards, exactly like folding trained running statistics into an
/// inference engine. A frozen normalization is essential for the TASD
/// experiments — recomputing statistics from decomposed activations
/// would let every approximation shift the whole network's operating
/// point.
class Conv2dLayer final : public GemmLayer {
 public:
  /// Weight is (out_channels) x (in_channels*kh*kw).
  Conv2dLayer(ConvShape shape, MatrixF weight, ActKind act,
              bool batch_norm = true);

  Feature forward(const Feature& in) override;

  [[nodiscard]] const ConvShape& shape() const { return shape_; }

  /// Drop frozen BN statistics (they re-calibrate on the next forward).
  void reset_norm_calibration() { bn_frozen_.clear(); }

 private:
  ConvShape shape_;
  bool batch_norm_;
  /// Per-channel (mean, 1/std) frozen at first forward; empty = not yet
  /// calibrated.
  std::vector<std::pair<float, float>> bn_frozen_;
};

/// Fully-connected layer on (features x tokens) matrices: act(W * X).
class LinearLayer final : public GemmLayer {
 public:
  LinearLayer(MatrixF weight, ActKind act, bool layer_norm = false);

  Feature forward(const Feature& in) override;

 private:
  bool layer_norm_;
};

/// Elementwise activation as a standalone layer (for post-residual ReLU).
class ActLayer final : public Layer {
 public:
  explicit ActLayer(ActKind kind) : kind_(kind) {}
  Feature forward(const Feature& in) override;

 private:
  ActKind kind_;
};

/// 2x2 max pooling with stride 2 (VGG-style).
class MaxPool2Layer final : public Layer {
 public:
  Feature forward(const Feature& in) override;
};

/// Global average pooling: (N,C,H,W) tensor -> (C x N) matrix.
class GlobalAvgPoolLayer final : public Layer {
 public:
  Feature forward(const Feature& in) override;
};

/// (N,C,H,W) tensor -> (C x N*H*W) token matrix (ViT patch flattening;
/// each spatial position of each batch item becomes a token).
class ToTokensLayer final : public Layer {
 public:
  Feature forward(const Feature& in) override;
};

/// Residual mixing weights used by every residual connection in the
/// substrate (ResBlocks, attention, transformer MLPs):
///   out = act(skip * kResidualSkipScale + branch * kResidualBranchScale).
///
/// The weights satisfy skip^2 + branch^2 ~= 1 (variance-preserving) and
/// are deliberately *skip-dominant*. Random-initialized deep stacks with
/// balanced mixing are chaotic — a 0.1 % perturbation grows by orders of
/// magnitude over 50 layers — whereas trained ResNets are perturbation-
/// stable and skip-dominated. Skip-dominant mixing gives the twin models
/// the Jacobian gain ~1 that the paper's trained models have, which the
/// TASD accuracy experiments (Fig. 14/16/20) depend on. See DESIGN.md.
inline constexpr float kResidualSkipScale = 0.95F;
inline constexpr float kResidualBranchScale = 0.31F;

/// Residual block: out = relu(branch(x) + project(x)).
/// `project` is empty for identity skips.
class ResBlockLayer final : public Layer {
 public:
  ResBlockLayer(std::vector<std::unique_ptr<Layer>> branch,
                std::unique_ptr<Layer> project, ActKind out_act);

  Feature forward(const Feature& in) override;
  void collect_gemm_layers(std::vector<GemmLayer*>& out) override;

 private:
  std::vector<std::unique_ptr<Layer>> branch_;
  std::unique_ptr<Layer> project_;  // may be null (identity skip)
  ActKind out_act_;
};

/// Build a He-initialized conv layer.
std::unique_ptr<Conv2dLayer> make_conv(Index in_ch, Index out_ch, Index kernel,
                                       Index stride, Index padding,
                                       ActKind act, Rng& rng,
                                       bool batch_norm = true);

/// Build a He-initialized linear layer.
std::unique_ptr<LinearLayer> make_linear(Index in_features, Index out_features,
                                         ActKind act, Rng& rng,
                                         bool layer_norm = false);

}  // namespace tasd::dnn
