// Versioned on-disk store for CompiledNetwork artifacts — compile once,
// ship the bytes, cold-start a fleet of replicas with zero
// decompositions (ROADMAP item 3; the SparseRT / npu_compiler
// runtime-model pattern: ahead-of-time compile to a deployable blob,
// the runtime just executes it).
//
// save_artifact() serializes everything rt::compile() derived from the
// weights: per layer the weight matrix, the TASD config, the plan's
// compressed N:M term buffers and its quality stats, each section keyed
// by the weight's 128-bit content fingerprint (the PlanCache key).
// load_artifact() rebuilds the plans straight from the compressed
// buffers — no decomposition runs — adopts them into the process-wide
// PlanCache (so later rt::compile() calls on the same weights hit too)
// and assembles a fully bound CompiledNetwork.
//
// Kernel bindings: a statically-bound network stores no kernel names —
// they re-resolve through GemmDispatch::best_*() on the loading host, so
// an artifact saved on an AVX2 machine binds the scalar kernels on a
// machine without AVX2 and executes identically (term buffers are
// kernel-independent). An *autotuned* network additionally stores its
// TuningResult in a trailing tuning section, keyed by the measuring
// host's CPU signature: load restores the per-layer binding verbatim
// when tasd::cpu_signature() matches and falls back to the best_*()
// re-resolution (or re-tunes, when loaded with kAutotune) when it
// doesn't — never a stale binding from foreign hardware.
//
// Failure contract (asserted by tests/artifact/):
//  * wrong magic or unsupported version → Error(kFailedPrecondition)
//    (the file is not something this reader speaks)
//  * any corruption — truncation, short section, CRC mismatch,
//    fingerprint mismatch, inconsistent plan — → Error(kInternal)
//    (data loss: the file claims to be ours but its bytes lie)
//  * unopenable path → Error(kInvalidArgument)
// A load either returns a verified network or throws; it never binds
// silently-wrong kernels or plans.
//
// Format layout: src/artifact/format.hpp and docs/artifact.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/plan_cache.hpp"
#include "runtime/compiled_network.hpp"

namespace tasd::rt {

/// Serialize `net` to `path` in TASDART1 format. The file fully
/// reproduces the network's layers (weights, configs, plans); compile
/// options and kernel bindings are intentionally not stored (see
/// load_artifact). Throws tasd::Error on I/O failure.
void save_artifact(const CompiledNetwork& net, const std::string& path);

/// Load a TASDART1 file into a fully bound CompiledNetwork, performing
/// zero decompositions: plans are reconstructed from the serialized
/// compressed buffers, verified (per-section CRC + weight content
/// fingerprint), and — when opt.measure.use_plan_cache — adopted into
/// the process-wide PlanCache. `opt` plays the same role as in
/// rt::compile(): pool binding, kernel selection ("auto" re-resolves on
/// this host), measurement knobs. See the failure contract above.
CompiledNetwork load_artifact(const std::string& path,
                              const CompileOptions& opt = {});

/// Header + TOC of an artifact file, for tooling and tests. Verifies
/// magic, version and the TOC CRC but does not touch section payloads.
struct ArtifactLayerInfo {
  ContentFingerprint fingerprint;  ///< of the layer's weight bytes
  bool configured = false;         ///< carries a TASD config + plan
  std::uint64_t section_offset = 0;
  std::uint64_t section_size = 0;
  std::uint32_t section_crc32 = 0;
};

struct ArtifactInfo {
  std::uint32_t version = 0;
  std::string name;  ///< the compiled network's name
  std::uint64_t file_bytes = 0;
  bool has_tuning = false;  ///< carries a serialized TuningResult
  std::uint64_t tuning_bytes = 0;
  std::vector<ArtifactLayerInfo> layers;
};

ArtifactInfo inspect_artifact(const std::string& path);

}  // namespace tasd::rt
