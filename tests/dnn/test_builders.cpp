#include "dnn/builders.hpp"

#include <gtest/gtest.h>

#include "dnn/metrics.hpp"

namespace tasd::dnn {
namespace {

ConvNetOptions tiny_conv() {
  ConvNetOptions o;
  o.input_hw = 8;
  o.width_mult = 0.125;
  o.num_classes = 10;
  return o;
}

TransformerOptions tiny_tf() {
  TransformerOptions o;
  o.dim = 16;
  o.layers = 2;
  o.heads = 2;
  o.num_classes = 10;
  return o;
}

TEST(Builders, ResNet18LayerCount) {
  Model m = make_resnet(18, tiny_conv());
  // stem + 8 basic blocks * 2 convs + 3 projections + 2 head FCs = 22.
  EXPECT_EQ(m.gemm_layers().size(), 22u);
}

TEST(Builders, ResNet50LayerCount) {
  Model m = make_resnet(50, tiny_conv());
  // stem + 16 bottleneck * 3 + 4 projections + 2 head FCs = 55.
  EXPECT_EQ(m.gemm_layers().size(), 55u);
}

TEST(Builders, ResNetRejectsUnknownDepth) {
  EXPECT_THROW(make_resnet(99, tiny_conv()), tasd::Error);
}

TEST(Builders, ResNetForwardProducesLogits) {
  Model m = make_resnet(18, tiny_conv());
  const EvalSet eval = EvalSet::images(4, 8, 3, 1);
  const auto labels = predict(m, eval);
  EXPECT_EQ(labels.size(), 4u);
  for (Index l : labels) EXPECT_LT(l, 10u);
}

TEST(Builders, ResNetDeterministicForward) {
  Model m1 = make_resnet(18, tiny_conv());
  Model m2 = make_resnet(18, tiny_conv());
  const EvalSet eval = EvalSet::images(4, 8, 3, 2);
  EXPECT_EQ(predict(m1, eval), predict(m2, eval));
}

TEST(Builders, Vgg11ForwardAndCount) {
  Model m = make_vgg(11, tiny_conv());
  EXPECT_EQ(m.gemm_layers().size(), 8u + 2u);  // 8 convs + head FCs
  const EvalSet eval = EvalSet::images(2, 8, 3, 3);
  EXPECT_EQ(predict(m, eval).size(), 2u);
}

TEST(Builders, Vgg16HasMoreLayersThanVgg11) {
  EXPECT_GT(make_vgg(16, tiny_conv()).gemm_layers().size(),
            make_vgg(11, tiny_conv()).gemm_layers().size());
}

TEST(Builders, ConvNextUsesGelu) {
  Model m = make_convnext(tiny_conv());
  const EvalSet eval = EvalSet::images(2, 8, 3, 4);
  (void)predict(m, eval);
  // GELU network: GEMM inputs are dense (beyond the stem).
  bool saw_dense_mid_layer = false;
  for (auto* l : m.gemm_layers()) {
    if (l->stats().forward_count > 0 && l->stats().raw_input_density > 0.95)
      saw_dense_mid_layer = true;
  }
  EXPECT_TRUE(saw_dense_mid_layer);
}

TEST(Builders, BertForwardOnTokens) {
  Model m = make_bert(tiny_tf());
  EXPECT_EQ(m.input_kind(), InputKind::kTokens);
  // 2 encoders * (4 attention + 2 MLP) + head = 13 GEMM layers.
  EXPECT_EQ(m.gemm_layers().size(), 13u);
  const EvalSet eval = EvalSet::tokens(3, 16, 8, 5);
  EXPECT_EQ(predict(m, eval).size(), 3u);
}

TEST(Builders, VitRunsPerSample) {
  Model m = make_vit(tiny_conv(), tiny_tf());
  EXPECT_TRUE(m.single_sample_batches());
  const EvalSet eval = EvalSet::images(3, 8, 3, 6);
  EXPECT_EQ(predict(m, eval).size(), 3u);
}

TEST(Builders, ParameterCountPositiveAndDenseByDefault) {
  Model m = make_resnet(34, tiny_conv());
  EXPECT_GT(m.parameter_count(), 0u);
  EXPECT_LT(m.weight_sparsity(), 0.01);
}

TEST(Builders, ClearTasdResetsConfigs) {
  Model m = make_resnet(18, tiny_conv());
  for (auto* l : m.gemm_layers()) l->set_tasd_w(TasdConfig::parse("2:4"));
  m.clear_tasd();
  for (auto* l : m.gemm_layers()) {
    EXPECT_FALSE(l->tasd_w().has_value());
    EXPECT_FALSE(l->tasd_a().has_value());
  }
}

}  // namespace
}  // namespace tasd::dnn
