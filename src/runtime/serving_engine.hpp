// Fault-tolerant dynamic-batching serving front-end over CompiledNetwork
// — the request path that cashes in the batched kernels' throughput
// (BENCH_serving.json: batch-16 TASD ≈ 11–12x batch-1) for real traffic,
// hardened so every failure is contained to the request that caused it.
//
// Shape: producers submit(model, layer, input[, deadline]) from any
// thread and get a std::future<Response>; one batcher thread dequeues
// the head request, holds an admission window open to coalesce
// same-(model, layer) requests into one run_batch() call (up to
// max_batch), and resolves every request's future with a definite
// status. There is no path that leaves a future unresolved: overload
// sheds, expiry fails with kDeadline, execution faults fail with the
// mapped status, and drain()/the destructor flush or fail whatever is
// still queued.
//
// Robustness contract (see DESIGN.md § Serving robustness contract and
// docs/serving.md):
//  * Deadlines — a request's deadline is checked when the batcher
//    dequeues it: an expired request completes with kDeadline and is
//    never executed. Deadlines never cancel work mid-kernel.
//  * Backpressure — the queue is bounded (max_queue_depth). When full,
//    Overflow::kReject resolves the new request with kShed immediately
//    (load shedding); Overflow::kBlock blocks the submitting thread
//    until space frees or the engine drains.
//  * Fault containment — each request is validated individually before
//    batching (shape always; NaN/Inf when the artifact was compiled
//    with validate_inputs), so a poisoned input fails only its own
//    future. If run_batch itself throws (a throwing layer, an injected
//    fault, an allocation failure), the engine degrades gracefully:
//    it retries each admitted request alone via run(), so only requests
//    that fail on their own resolve kFailed. The batcher thread and the
//    process survive every per-request failure.
//  * Shutdown — drain() stops admission, flushes the queue through the
//    normal path (deadline expiry still applies; admission windows are
//    skipped so the flush is prompt), resolves everything, and joins
//    the batcher. The destructor drains. Both are idempotent.
//  * Metrics — per-model counters (submitted/ok/invalid/expired/shed/
//    failed, batches, degraded batches, queue depth & peak) and
//    completion-latency percentiles (p50/p95/p99) over a bounded
//    window, plus ok-qps since engine start.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.hpp"
#include "runtime/compiled_network.hpp"

namespace tasd::rt {

/// Terminal status of one serving request. Futures always resolve with
/// a Response carrying one of these; they never carry exceptions.
enum class RequestStatus {
  kOk,        ///< executed; Response::output holds the result
  kInvalid,   ///< rejected by per-request validation (shape, NaN/Inf…)
  kDeadline,  ///< expired in queue; never executed
  kShed,      ///< load-shed (queue full under kReject, or draining)
  kFailed,    ///< execution failed even in isolation
};

const char* to_string(RequestStatus status);

struct ServingOptions {
  /// Bound on queued (admitted, not yet dequeued) requests.
  std::size_t max_queue_depth = 256;
  /// Policy when a submit finds the queue full.
  enum class Overflow {
    kReject,  ///< resolve the new request with kShed immediately
    kBlock,   ///< block the submitter until space frees (or drain)
  };
  Overflow overflow = Overflow::kReject;
  /// How long the batcher holds the head request waiting for batchmates
  /// (same model + layer). Zero = no coalescing wait: execute whatever
  /// is already queued.
  std::chrono::microseconds admission_window{200};
  /// Largest coalesced batch per run_batch call.
  std::size_t max_batch = 16;
  /// Deadline applied to requests submitted without one, measured from
  /// submit time. Zero = no deadline.
  std::chrono::microseconds default_deadline{0};
  /// Completion latencies kept per model for the percentile report.
  std::size_t latency_window = 4096;
};

/// What a request's future resolves to.
struct Response {
  RequestStatus status = RequestStatus::kFailed;
  MatrixF output;            ///< engaged only when status == kOk
  std::string error;         ///< diagnostic when status != kOk
  double queue_ms = 0.0;     ///< submit → dequeue (0 when shed at submit)
  double latency_ms = 0.0;   ///< submit → resolution
  std::size_t batch_size = 0;  ///< coalesced batch it executed in (0 = never ran)
};

/// Engine-wide batcher accounting: where the single batcher thread's
/// wall clock went. Busy time covers dequeue + execute of coalesced
/// groups; idle time covers waiting for work or for the admission
/// window. occupancy = busy / (busy + idle) — the pipeline-occupancy
/// number that makes an overlap win (or a starved batcher) observable;
/// see docs/serving.md § Metrics.
struct EngineMetrics {
  double busy_ms = 0.0;
  double idle_ms = 0.0;
  double occupancy = 0.0;        ///< 0 when the batcher has not run yet
  std::uint64_t groups = 0;      ///< coalesced groups executed
};

/// Counters and latency digest for one resident model.
struct ModelMetrics {
  std::string model;
  std::uint64_t submitted = 0;
  std::uint64_t ok = 0;
  std::uint64_t invalid = 0;
  std::uint64_t expired = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;
  std::uint64_t batches = 0;           ///< run_batch calls executed
  std::uint64_t batched_requests = 0;  ///< requests those calls served
  std::uint64_t degraded_batches = 0;  ///< fell back to per-request run()
  std::size_t queue_depth = 0;         ///< this model's requests queued now
  std::size_t peak_queue_depth = 0;
  double qps = 0.0;      ///< ok completions / seconds since engine start
  double p50_ms = 0.0;   ///< completion latency percentiles of ok
  double p95_ms = 0.0;   ///< requests over the latency window
  double p99_ms = 0.0;
};

/// Concurrent dynamic-batching executor over one or more resident
/// CompiledNetwork artifacts. Thread-safe: submit() from any number of
/// threads; one internal batcher thread executes. Not movable (the
/// batcher thread holds `this`).
class ServingEngine {
 public:
  explicit ServingEngine(CompiledNetwork model, ServingOptions opt = {});
  explicit ServingEngine(std::vector<CompiledNetwork> models,
                         ServingOptions opt = {});
  ~ServingEngine();  // drains

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Enqueue one query against models()[model_index]'s layer_index.
  /// `deadline` (from now) overrides ServingOptions::default_deadline;
  /// zero means no deadline. The returned future always resolves with a
  /// definite Response — it never carries an exception. model_index out
  /// of range is a caller contract violation and throws immediately;
  /// everything else (bad layer, bad shape, poisoned values, overload,
  /// expiry, kernel failure) resolves through the future's status.
  std::future<Response> submit(
      std::size_t model_index, std::size_t layer_index, MatrixF input,
      std::optional<std::chrono::microseconds> deadline = std::nullopt);

  /// Single-model convenience: submit against models()[0].
  std::future<Response> submit(
      std::size_t layer_index, MatrixF input,
      std::optional<std::chrono::microseconds> deadline = std::nullopt);

  /// A completion callback: invoked exactly once with the request's
  /// definite Response. Callbacks must not throw; a throwing callback
  /// is caught and reported to stderr, never propagated.
  using Callback = std::function<void(Response)>;

  /// Continuation-style submit: like submit(), but the Response is
  /// delivered to `on_done` instead of a future, so a caller with many
  /// requests in flight burns zero blocked threads waiting on .get().
  /// The callback runs on the batcher thread (or inline on the
  /// submitting thread when the request is shed at submit time), so it
  /// must be brief and must not call drain() or block on other
  /// futures/submissions of the same engine. Every admission, deadline,
  /// overflow, and fault rule of submit() applies unchanged — including
  /// Overflow::kBlock backpressure blocking the submitting thread.
  void submit_async(
      std::size_t model_index, std::size_t layer_index, MatrixF input,
      Callback on_done,
      std::optional<std::chrono::microseconds> deadline = std::nullopt);

  /// Single-model convenience: submit_async against models()[0].
  void submit_async(
      std::size_t layer_index, MatrixF input, Callback on_done,
      std::optional<std::chrono::microseconds> deadline = std::nullopt);

  /// Stop admitting, flush or fail everything still queued, join the
  /// batcher. Idempotent; called by the destructor. After drain(),
  /// submit() resolves every request with kShed.
  void drain();

  [[nodiscard]] std::size_t model_count() const { return nets_.size(); }
  [[nodiscard]] const CompiledNetwork& model(std::size_t i) const;
  [[nodiscard]] const ServingOptions& options() const { return opt_; }

  /// Queued-but-not-dequeued requests right now (all models).
  [[nodiscard]] std::size_t queue_depth() const;

  /// Snapshot of one model's counters and latency digest.
  [[nodiscard]] ModelMetrics metrics(std::size_t model_index = 0) const;

  /// Snapshot of the batcher's busy/idle accounting (all models).
  [[nodiscard]] EngineMetrics engine_metrics() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    std::promise<Response> promise;  ///< unused in callback mode
    Callback callback;               ///< empty in future mode
    std::size_t model = 0;
    std::size_t layer = 0;
    MatrixF input;
    Clock::time_point submit_time;
    std::optional<Clock::time_point> deadline;
  };

  /// Mutable per-model counters. One entry per nets_ entry; every
  /// field is guarded by mu_ through the enclosing stats_ annotation.
  struct ModelStats {
    std::uint64_t submitted = 0;
    std::uint64_t ok = 0;
    std::uint64_t invalid = 0;
    std::uint64_t expired = 0;
    std::uint64_t shed = 0;
    std::uint64_t failed = 0;
    std::uint64_t batches = 0;
    std::uint64_t batched_requests = 0;
    std::uint64_t degraded_batches = 0;
    std::size_t queued = 0;
    std::size_t peak_queued = 0;
    /// Ring of ok-completion latencies for the percentile digest.
    std::vector<double> latencies;
    std::size_t latency_next = 0;
  };

  void batcher_main() TASD_EXCLUDES(mu_);
  /// Shared admission path of submit()/submit_async(): enqueue or shed.
  void enqueue(Request req) TASD_EXCLUDES(mu_);
  /// Execute one coalesced group (dequeue-time expiry, per-request
  /// validation, batched execution with per-request fallback). Called
  /// without locks held; takes them as needed for metrics.
  void execute_group(std::vector<Request> group) TASD_EXCLUDES(mu_);
  /// Resolve one request and record its terminal status (locks mu_).
  void resolve(Request& req, Response response) TASD_EXCLUDES(mu_);
  /// Queued requests with this (model, layer) — the admission window's
  /// "how full is the forming batch" probe.
  [[nodiscard]] std::size_t matching_locked(std::size_t model,
                                            std::size_t layer) const
      TASD_REQUIRES(mu_);

  ServingOptions opt_;
  /// Resident artifacts. The vector and each CompiledNetwork are
  /// immutable after construction, so execution reads them without
  /// mu_; every mutable per-model counter lives in stats_ instead.
  std::vector<CompiledNetwork> nets_;
  Clock::time_point start_time_;  ///< const after construction

  mutable Mutex mu_;
  CondVar work_cv_;   ///< batcher waits: work or stop
  CondVar space_cv_;  ///< kBlock submitters wait: space
  std::deque<Request> queue_ TASD_GUARDED_BY(mu_);
  /// Parallel to nets_ (same index); sized once in the constructor.
  std::vector<ModelStats> stats_ TASD_GUARDED_BY(mu_);
  /// Batcher wall-clock accounting: time spent waiting on work_cv_ vs
  /// dequeuing + executing groups.
  double batcher_idle_ms_ TASD_GUARDED_BY(mu_) = 0.0;
  double batcher_busy_ms_ TASD_GUARDED_BY(mu_) = 0.0;
  std::uint64_t groups_ TASD_GUARDED_BY(mu_) = 0;
  bool draining_ TASD_GUARDED_BY(mu_) = false;
  /// Serializes the join (drain vs destructor). Never taken while mu_
  /// is held, so no ordering edge with mu_ exists.
  Mutex drain_mu_;
  std::thread batcher_ TASD_GUARDED_BY(drain_mu_);
};

}  // namespace tasd::rt
