// Model pruning: unstructured (magnitude) pruning with a per-layer
// sparsity profile shaped like the paper's Fig. 6, and structured (N:M
// view) pruning for the Fig. 19 ablation's "HW-aware fine-tuned" models.
#pragma once

#include <string>
#include <vector>

#include "dnn/model.hpp"
#include "sparse/pattern.hpp"

namespace tasd::dnn {

/// Per-layer sparsity target for unstructured pruning.
///
/// Mirrors the SparseZoo 95 %-sparse ResNet-50 shape (paper Fig. 6):
/// early layers are pruned less (they are small and accuracy-critical),
/// the bulk of mid/late layers sit slightly above the global target, and
/// the final classifier is pruned less. `position` in [0,1] is the layer's
/// normalized depth; `is_last` marks the classifier.
double layer_sparsity_target(double global_sparsity, double position,
                             bool is_last);

/// Magnitude-prune every GEMM layer of `model` to the Fig. 6-shaped
/// profile around `global_sparsity`. Returns the achieved global weight
/// sparsity (parameter-weighted).
double prune_unstructured(Model& model, double global_sparsity);

/// Prune every GEMM layer to the given N:M pattern (keep the N largest
/// per block). This models a structured-pruned ("HW-aware fine-tuned")
/// model. Returns the achieved global weight sparsity.
double prune_structured(Model& model, const sparse::NMPattern& pattern);

/// Per-layer sparsity report (Fig. 6 rows).
struct LayerSparsityRow {
  std::string name;
  double weight_sparsity = 0.0;
  double act_sparsity = 0.0;  ///< from the layer's last recorded forward
};
std::vector<LayerSparsityRow> sparsity_report(Model& model);

}  // namespace tasd::dnn
