#include "dnn/attention.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/generator.hpp"

namespace tasd::dnn {
namespace {

TEST(Attention, PreservesShape) {
  Rng rng(121);
  AttentionLayer attn(16, 4, rng);
  const MatrixF x = random_dense(16, 6, Dist::kNormalStd1, rng);
  const Feature out = attn.forward(Feature(MatrixF(x)));
  EXPECT_EQ(out.matrix().rows(), 16u);
  EXPECT_EQ(out.matrix().cols(), 6u);
}

TEST(Attention, RejectsIndivisibleHeads) {
  Rng rng(122);
  EXPECT_THROW(AttentionLayer(10, 4, rng), tasd::Error);
}

TEST(Attention, RejectsWrongFeatureCount) {
  Rng rng(123);
  AttentionLayer attn(8, 2, rng);
  EXPECT_THROW(attn.forward(Feature(MatrixF(6, 3))), tasd::Error);
}

TEST(Attention, ExposesFourGemmLayers) {
  Rng rng(124);
  AttentionLayer attn(8, 2, rng);
  std::vector<GemmLayer*> gemms;
  attn.collect_gemm_layers(gemms);
  EXPECT_EQ(gemms.size(), 4u);
  // Paper §4.3: QKV/out projections are not TASD-A targets.
  for (auto* g : gemms) EXPECT_FALSE(g->allow_tasd_a());
}

TEST(Attention, SingleTokenIsStable) {
  Rng rng(125);
  AttentionLayer attn(8, 2, rng);
  const MatrixF x = random_dense(8, 1, Dist::kNormalStd1, rng);
  const Feature out = attn.forward(Feature(MatrixF(x)));
  for (float v : out.matrix().flat()) EXPECT_TRUE(std::isfinite(v));
}

TEST(TokenMlpBlock, PreservesShapeAndExposesTwoFcs) {
  Rng rng(126);
  TokenMlpBlockLayer mlp(8, 32, ActKind::kGelu, rng);
  const MatrixF x = random_dense(8, 5, Dist::kNormalStd1, rng);
  const Feature out = mlp.forward(Feature(MatrixF(x)));
  EXPECT_EQ(out.matrix().rows(), 8u);
  EXPECT_EQ(out.matrix().cols(), 5u);
  std::vector<GemmLayer*> gemms;
  mlp.collect_gemm_layers(gemms);
  ASSERT_EQ(gemms.size(), 2u);
  // MLP FCs are the TASD-A-eligible transformer layers (Fig. 8d).
  EXPECT_TRUE(gemms[0]->allow_tasd_a());
  EXPECT_TRUE(gemms[1]->allow_tasd_a());
}

TEST(TokenMeanPool, PoolsToOneColumn) {
  MatrixF x(2, 3, {1, 2, 3, 4, 5, 6});
  TokenMeanPoolLayer pool;
  const Feature out = pool.forward(Feature(std::move(x)));
  EXPECT_EQ(out.matrix().cols(), 1u);
  EXPECT_FLOAT_EQ(out.matrix()(0, 0), 2.0F);
  EXPECT_FLOAT_EQ(out.matrix()(1, 0), 5.0F);
}

TEST(TokenNorm, NormalizesEachTokenColumn) {
  Rng rng(127);
  const MatrixF x = random_dense(16, 4, Dist::kNormalStd1, rng);
  TokenNormLayer norm;
  const MatrixF out = norm.forward(Feature(MatrixF(x))).matrix();
  for (Index c = 0; c < out.cols(); ++c) {
    double mean = 0.0, var = 0.0;
    for (Index r = 0; r < out.rows(); ++r) mean += out(r, c);
    mean /= 16.0;
    for (Index r = 0; r < out.rows(); ++r)
      var += (out(r, c) - mean) * (out(r, c) - mean);
    var /= 16.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

}  // namespace
}  // namespace tasd::dnn
