#include "runtime/engine.hpp"

namespace tasd::rt {

namespace {

CompileOptions to_compile_options(const MeasureOptions& measure,
                                  Index n_divisor, Index query_cols) {
  CompileOptions opt;
  opt.measure = measure;
  opt.n_divisor = n_divisor;
  opt.query_cols = query_cols;
  return opt;
}

}  // namespace

std::vector<LayerTiming> measure_workload(
    const dnn::NetworkWorkload& net,
    const std::vector<std::optional<TasdConfig>>& configs,
    const EngineOptions& opt) {
  return compile(net, configs, to_compile_options(opt, opt.n_divisor, 1))
      .measure();
}

std::vector<ServingThroughput> measure_serving_throughput(
    const dnn::NetworkWorkload& net,
    const std::vector<std::optional<TasdConfig>>& configs,
    const ServingOptions& opt) {
  return compile(net, configs, to_compile_options(opt, 4, opt.query_cols))
      .serving_throughput(opt.batch_sizes);
}

}  // namespace tasd::rt
