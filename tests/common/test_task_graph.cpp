#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace tasd::rt {
namespace {

TEST(TaskGraph, EmptyGraphRuns) {
  ThreadPool pool(4);
  TaskGraph graph;
  EXPECT_EQ(graph.size(), 0u);
  EXPECT_NO_THROW(graph.run(pool));
}

TEST(TaskGraph, EveryTaskRunsExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(threads);
    TaskGraph graph;
    std::vector<std::atomic<int>> runs(32);
    for (std::size_t i = 0; i < runs.size(); ++i)
      graph.add([&runs, i] { runs[i]++; });
    graph.run(pool);
    for (const auto& r : runs) EXPECT_EQ(r.load(), 1);
  }
}

TEST(TaskGraph, DependenciesFinishBeforeDependents) {
  // A chain per "item" (the pipelined executor's shape): each task
  // asserts its predecessor's completion flag. Run under a wide pool so
  // a scheduling bug would race.
  ThreadPool pool(8);
  TaskGraph graph;
  constexpr std::size_t kItems = 6;
  constexpr std::size_t kLayers = 5;
  std::atomic<bool> done[kItems][kLayers] = {};
  std::atomic<int> violations{0};
  for (std::size_t i = 0; i < kItems; ++i) {
    TaskGraph::TaskId prev = 0;
    for (std::size_t l = 0; l < kLayers; ++l) {
      const std::vector<TaskGraph::TaskId> deps =
          l == 0 ? std::vector<TaskGraph::TaskId>{}
                 : std::vector<TaskGraph::TaskId>{prev};
      prev = graph.add(
          [&, i, l] {
            if (l > 0 && !done[i][l - 1].load()) violations++;
            done[i][l] = true;
          },
          deps);
    }
  }
  graph.run(pool);
  EXPECT_EQ(violations.load(), 0);
  for (const auto& item : done)
    for (const auto& d : item) EXPECT_TRUE(d.load());
}

TEST(TaskGraph, DiamondDependency) {
  ThreadPool pool(4);
  TaskGraph graph;
  std::atomic<bool> a_done{false};
  std::atomic<int> mid_done{0};
  std::atomic<bool> join_saw_both{false};
  const auto a = graph.add([&] { a_done = true; });
  const auto b = graph.add(
      [&] {
        EXPECT_TRUE(a_done.load());
        mid_done++;
      },
      {a});
  const auto c = graph.add(
      [&] {
        EXPECT_TRUE(a_done.load());
        mid_done++;
      },
      {a});
  graph.add([&] { join_saw_both = mid_done.load() == 2; }, {b, c});
  graph.run(pool);
  EXPECT_TRUE(join_saw_both.load());
}

TEST(TaskGraph, SerialPoolRunsInlineInIdOrder) {
  // A serial pool executes on the calling thread in submission order
  // (restricted to readiness) — the deterministic schedule the
  // bit-exactness contract leans on at num_threads <= 1.
  ThreadPool pool(1);
  TaskGraph graph;
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < 8; ++i)
    graph.add([&order, i, caller] {
      EXPECT_EQ(std::this_thread::get_id(), caller);
      order.push_back(i);
    });
  graph.run(pool);
  ASSERT_EQ(order.size(), 8u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(TaskGraph, TaskBodiesMayCallParallelFor) {
  ThreadPool pool(4);
  TaskGraph graph;
  std::atomic<long> sum{0};
  for (int t = 0; t < 6; ++t)
    graph.add([&] {
      // Nested parallel_for runs inline on the claiming worker.
      pool.parallel_for(0, 100, 1, [&](std::size_t b, std::size_t e) {
        long local = 0;
        for (std::size_t i = b; i < e; ++i) local += static_cast<long>(i);
        sum += local;
      });
    });
  graph.run(pool);
  EXPECT_EQ(sum.load(), 6L * (99L * 100L / 2));
}

TEST(TaskGraph, FirstExceptionRethrownAndDependentsSkipped) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(threads);
    TaskGraph graph;
    std::atomic<bool> dependent_ran{false};
    const auto boom =
        graph.add([] { throw std::runtime_error("scheduled failure"); });
    graph.add([&] { dependent_ran = true; }, {boom});
    EXPECT_THROW(graph.run(pool), std::runtime_error);
    EXPECT_FALSE(dependent_ran.load());
  }
}

TEST(TaskGraph, ExceptionStillDrainsIndependentGraph) {
  // run() must terminate (done reaches total) even when the first task
  // fails: successors of skipped tasks are released, not abandoned.
  ThreadPool pool(2);
  TaskGraph graph;
  TaskGraph::TaskId prev =
      graph.add([] { throw std::runtime_error("head failure"); });
  for (int i = 0; i < 16; ++i)
    prev = graph.add([] {}, {prev});
  EXPECT_THROW(graph.run(pool), std::runtime_error);
}

TEST(TaskGraph, ForwardDependencyIsRejected) {
  TaskGraph graph;
  (void)graph.add([] {});
  // A task may only depend on already-added tasks (deps < id): the
  // graph is acyclic by construction.
  EXPECT_THROW(graph.add([] {}, {5}), Error);
  EXPECT_THROW(graph.add([] {}, {1}), Error);
}

TEST(TaskGraph, SingleUse) {
  ThreadPool pool(2);
  TaskGraph graph;
  graph.add([] {});
  graph.run(pool);
  EXPECT_THROW(graph.run(pool), Error);
  EXPECT_THROW(graph.add([] {}), Error);
}

}  // namespace
}  // namespace tasd::rt
