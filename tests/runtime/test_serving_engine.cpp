// ServingEngine robustness acceptance suite: admitted requests are
// bit-identical to direct run_batch; under injected faults (throwing
// layer, slow kernel, poisoned input, queue overflow) every request
// resolves with a definite status, the engine never crashes or
// deadlocks, and drain() terminates. Runs under both TSan and ASan in
// CI (the engine is the repo's first long-lived multi-threaded
// component).
#include "runtime/serving_engine.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/fault.hpp"
#include "common/rng.hpp"
#include "tensor/generator.hpp"

namespace tasd::rt {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

/// Small two-layer workload (one TASD, one dense). Seeds are distinct
/// from every other suite so PlanCache cross-talk can't mask anything.
dnn::NetworkWorkload tiny_net(std::uint64_t seed_base = 7100) {
  dnn::NetworkWorkload net;
  net.name = "tiny-serving";
  net.sparse_weights = true;
  dnn::GemmWorkload l1;
  l1.name = "a";
  l1.m = 48;
  l1.k = 128;
  l1.n = 32;
  l1.weight_density = 0.1;
  l1.weight_seed = seed_base;
  dnn::GemmWorkload l2 = l1;
  l2.name = "b";
  l2.m = 64;
  l2.k = 96;
  l2.weight_seed = seed_base + 1;
  net.layers = {l1, l2};
  return net;
}

std::vector<std::optional<TasdConfig>> mixed_configs() {
  return {TasdConfig::parse("2:4"), std::nullopt};
}

CompiledNetwork compile_tiny(bool validate_inputs = false,
                             std::size_t threads = 0) {
  CompileOptions opt;
  opt.validate_inputs = validate_inputs;
  opt.measure.num_threads = threads;
  return compile(tiny_net(), mixed_configs(), opt);
}

MatrixF query(Rng& rng, Index rows, Index cols = 1) {
  return random_dense(rows, cols, Dist::kNormalStd1, rng);
}

TEST(ServingEngine, AdmittedResultsBitIdenticalToDirectRunBatch) {
  // A second compile of the same net shares plans and kernel selection,
  // so its outputs are the bit-exact reference for the engine's.
  const auto reference = compile_tiny();
  ServingOptions sopt;
  sopt.admission_window = milliseconds(20);
  sopt.max_batch = 4;
  ServingEngine engine(compile_tiny(), sopt);

  Rng rng(9001);
  std::vector<std::pair<std::size_t, MatrixF>> queries;
  for (int i = 0; i < 24; ++i) {
    const std::size_t layer = static_cast<std::size_t>(i) % 2;
    queries.emplace_back(layer,
                         query(rng, reference.layer(layer).k, 1 + i % 3));
  }
  std::vector<std::future<Response>> futures;
  for (auto& [layer, input] : queries)
    futures.push_back(engine.submit(layer, input));
  engine.drain();

  for (std::size_t i = 0; i < queries.size(); ++i) {
    Response resp = futures[i].get();
    ASSERT_EQ(resp.status, RequestStatus::kOk) << resp.error;
    EXPECT_GE(resp.batch_size, 1u);
    // run_batch of one item == run item-by-item (the repo's serving
    // invariant), so run() is the per-request reference regardless of
    // the batch the engine coalesced.
    EXPECT_EQ(resp.output, reference.run(queries[i].first, queries[i].second))
        << "request " << i;
    EXPECT_GE(resp.latency_ms, resp.queue_ms);
  }
  const auto m = engine.metrics();
  EXPECT_EQ(m.ok, queries.size());
  EXPECT_EQ(m.submitted, queries.size());
  EXPECT_EQ(m.batched_requests, queries.size());
  EXPECT_GT(m.batches, 0u);
  EXPECT_GT(m.qps, 0.0);
  EXPECT_LE(m.p50_ms, m.p95_ms);
  EXPECT_LE(m.p95_ms, m.p99_ms);
}

TEST(ServingEngine, CoalescesSameLayerRequestsIntoOneBatch) {
  ServingOptions sopt;
  sopt.admission_window = milliseconds(200);  // plenty to collect all 6
  sopt.max_batch = 6;
  ServingEngine engine(compile_tiny(), sopt);

  Rng rng(9002);
  const Index k = engine.model(0).layer(0).k;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(engine.submit(0, query(rng, k)));
  for (auto& f : futures) {
    const Response resp = f.get();
    ASSERT_EQ(resp.status, RequestStatus::kOk) << resp.error;
    // The window was far longer than the submit loop, and the batch
    // closes the moment it fills, so all 6 ran together.
    EXPECT_EQ(resp.batch_size, 6u);
  }
  const auto m = engine.metrics();
  EXPECT_EQ(m.batches, 1u);
  EXPECT_EQ(m.batched_requests, 6u);
}

TEST(ServingEngine, ExpiredRequestsCompleteWithDeadlineAndNeverRun) {
  // Deterministic expiry: a sacrificial request on layer 'b' stalls the
  // batcher for 30 ms (injected slow batch), so the 1 µs deadlines of
  // the layer-'a' requests queued behind it have long expired when the
  // batcher dequeues them.
  fault::Spec slow;
  slow.site = "serving.execute";
  slow.kind = fault::Kind::kDelay;
  slow.delay_us = 30000;
  slow.max_fires = 1;
  const fault::ScopedFault stall(slow);
  fault::Spec probe;  // counts kernel-path entries; fires nothing
  probe.site = "rt.run";
  probe.probability = 0.0;
  const fault::ScopedFault executions(probe);

  ServingOptions sopt;
  sopt.admission_window = microseconds(0);
  ServingEngine engine(compile_tiny(), sopt);

  Rng rng(9003);
  auto sacrificial = engine.submit(1, query(rng, engine.model(0).layer(1).k));
  const Index k = engine.model(0).layer(0).k;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 5; ++i)
    futures.push_back(engine.submit(0, query(rng, k), microseconds(1)));
  for (auto& f : futures) {
    const Response resp = f.get();
    EXPECT_EQ(resp.status, RequestStatus::kDeadline);
    EXPECT_NE(resp.error.find("deadline"), std::string::npos);
    EXPECT_EQ(resp.batch_size, 0u) << "expired requests must never run";
    EXPECT_GE(resp.queue_ms, 1e-3);
  }
  EXPECT_EQ(sacrificial.get().status, RequestStatus::kOk);
  engine.drain();
  const auto m = engine.metrics();
  EXPECT_EQ(m.expired, 5u);
  EXPECT_EQ(m.ok, 1u);
  EXPECT_EQ(m.batches, 1u) << "only the sacrificial batch may execute";
  EXPECT_EQ(executions.hits(), 1u)
      << "an expired request reached the execution path";
}

TEST(ServingEngine, RejectPolicyShedsWhenQueueFull) {
  // Stall the batcher with an injected slow kernel so the queue backs
  // up behind the first request.
  fault::Spec slow;
  slow.site = "rt.run_batch";
  slow.kind = fault::Kind::kDelay;
  slow.delay_us = 30000;
  const fault::ScopedFault stall(slow);

  ServingOptions sopt;
  sopt.admission_window = microseconds(0);
  sopt.max_queue_depth = 2;
  sopt.max_batch = 1;
  sopt.overflow = ServingOptions::Overflow::kReject;
  ServingEngine engine(compile_tiny(), sopt);

  Rng rng(9004);
  const Index k = engine.model(0).layer(0).k;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 12; ++i) futures.push_back(engine.submit(0, query(rng, k)));
  engine.drain();

  std::size_t ok = 0, shed = 0;
  for (auto& f : futures) {
    const Response resp = f.get();
    ASSERT_TRUE(resp.status == RequestStatus::kOk ||
                resp.status == RequestStatus::kShed)
        << to_string(resp.status) << ": " << resp.error;
    if (resp.status == RequestStatus::kOk) ++ok;
    if (resp.status == RequestStatus::kShed) {
      ++shed;
      EXPECT_NE(resp.error.find("queue full"), std::string::npos);
    }
  }
  EXPECT_GT(ok, 0u);
  EXPECT_GT(shed, 0u) << "12 instant submits into a depth-2 queue behind a "
                         "30 ms kernel must shed";
  const auto m = engine.metrics();
  EXPECT_EQ(m.ok, ok);
  EXPECT_EQ(m.shed, shed);
  EXPECT_EQ(m.submitted, futures.size());
}

TEST(ServingEngine, BlockPolicyBackpressuresAndEventuallyServesAll) {
  ServingOptions sopt;
  sopt.admission_window = microseconds(0);
  sopt.max_queue_depth = 2;
  sopt.overflow = ServingOptions::Overflow::kBlock;
  ServingEngine engine(compile_tiny(), sopt);

  Rng rng(9005);
  const Index k = engine.model(0).layer(0).k;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 20; ++i) futures.push_back(engine.submit(0, query(rng, k)));
  for (auto& f : futures)
    EXPECT_EQ(f.get().status, RequestStatus::kOk)
        << "blocking submitters must be served, not shed";
  const auto m = engine.metrics();
  EXPECT_EQ(m.ok, 20u);
  EXPECT_LE(m.peak_queue_depth, sopt.max_queue_depth);
}

TEST(ServingEngine, BatchFaultDegradesToPerRequestExecution) {
  // The whole-batch call throws once; the engine must retry each
  // request alone and serve all of them (rt.run is unarmed).
  fault::Spec spec;
  spec.site = "rt.run_batch";
  spec.max_fires = 1;
  spec.message = "injected batch fault";
  const fault::ScopedFault batch_fault(spec);

  ServingOptions sopt;
  sopt.admission_window = milliseconds(100);
  sopt.max_batch = 5;
  ServingEngine engine(compile_tiny(), sopt);

  const auto reference = compile_tiny();
  Rng rng(9006);
  std::vector<MatrixF> inputs;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 5; ++i) {
    inputs.push_back(query(rng, reference.layer(0).k));
    futures.push_back(engine.submit(0, inputs.back()));
  }
  engine.drain();

  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Response resp = futures[i].get();
    ASSERT_EQ(resp.status, RequestStatus::kOk) << resp.error;
    EXPECT_EQ(resp.batch_size, 1u) << "degraded requests run alone";
    EXPECT_EQ(resp.output, reference.run(0, inputs[i]));
  }
  EXPECT_EQ(batch_fault.fires(), 1u);
  const auto m = engine.metrics();
  EXPECT_EQ(m.ok, 5u);
  EXPECT_GE(m.degraded_batches, 1u);
}

TEST(ServingEngine, AllocationFailureFaultIsContained) {
  fault::Spec spec;
  spec.site = "rt.run_batch";
  spec.kind = fault::Kind::kBadAlloc;
  spec.max_fires = 1;
  const fault::ScopedFault alloc_fault(spec);

  ServingOptions sopt;
  sopt.admission_window = milliseconds(50);
  sopt.max_batch = 4;
  ServingEngine engine(compile_tiny(), sopt);

  Rng rng(9007);
  const Index k = engine.model(0).layer(0).k;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(engine.submit(0, query(rng, k)));
  engine.drain();
  for (auto& f : futures)
    EXPECT_EQ(f.get().status, RequestStatus::kOk)
        << "one std::bad_alloc in the batch path must degrade, not kill";
  EXPECT_EQ(alloc_fault.fires(), 1u);
}

TEST(ServingEngine, PersistentLayerFaultFailsRequestsNotTheEngine) {
  ServingOptions sopt;
  sopt.admission_window = microseconds(0);
  ServingEngine engine(compile_tiny(), sopt);
  Rng rng(9008);
  const Index k = engine.model(0).layer(0).k;

  {
    // Both the batch path and the per-request fallback throw for layer
    // 'a': every request against it fails — with a definite status.
    fault::Spec batch;
    batch.site = "rt.run_batch";
    batch.detail = "a";
    fault::Spec single;
    single.site = "rt.run";
    single.detail = "a";
    const fault::ScopedFault f1(batch);
    const fault::ScopedFault f2(single);

    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 4; ++i)
      futures.push_back(engine.submit(0, query(rng, k)));
    for (auto& f : futures) {
      const Response resp = f.get();
      EXPECT_EQ(resp.status, RequestStatus::kFailed);
      EXPECT_NE(resp.error.find("injected fault"), std::string::npos);
    }
    // The dense layer 'b' is unaffected even while the fault is armed.
    const Response dense =
        engine.submit(1, query(rng, engine.model(0).layer(1).k)).get();
    EXPECT_EQ(dense.status, RequestStatus::kOk) << dense.error;
  }

  // Fault disarmed: the same engine serves layer 'a' again.
  const Response after = engine.submit(0, query(rng, k)).get();
  EXPECT_EQ(after.status, RequestStatus::kOk) << after.error;
  const auto m = engine.metrics();
  EXPECT_EQ(m.failed, 4u);
  EXPECT_EQ(m.ok, 2u);
}

TEST(ServingEngine, PoisonedInputFailsOnlyItsOwnRequest) {
  ServingOptions sopt;
  sopt.admission_window = milliseconds(100);
  sopt.max_batch = 4;
  ServingEngine engine(compile_tiny(/*validate_inputs=*/true), sopt);
  const auto reference = compile_tiny();

  Rng rng(9009);
  const Index k = engine.model(0).layer(0).k;
  std::vector<MatrixF> inputs;
  for (int i = 0; i < 4; ++i) inputs.push_back(query(rng, k));
  inputs[2](k / 2, 0) = std::nanf("");

  std::vector<std::future<Response>> futures;
  for (auto& in : inputs) futures.push_back(engine.submit(0, in));
  engine.drain();

  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Response resp = futures[i].get();
    if (i == 2) {
      EXPECT_EQ(resp.status, RequestStatus::kInvalid);
      EXPECT_NE(resp.error.find("non-finite"), std::string::npos);
      EXPECT_EQ(resp.batch_size, 0u) << "poisoned inputs must never run";
    } else {
      ASSERT_EQ(resp.status, RequestStatus::kOk) << resp.error;
      EXPECT_EQ(resp.output, reference.run(0, inputs[i]))
          << "batchmates of a poisoned input must still be exact";
    }
  }
  const auto m = engine.metrics();
  EXPECT_EQ(m.invalid, 1u);
  EXPECT_EQ(m.ok, 3u);
}

TEST(ServingEngine, ShapeMismatchAndBadLayerAreContained) {
  ServingOptions sopt;
  sopt.admission_window = milliseconds(50);
  sopt.max_batch = 3;
  ServingEngine engine(compile_tiny(), sopt);

  Rng rng(9010);
  const Index k = engine.model(0).layer(0).k;
  auto good = engine.submit(0, query(rng, k));
  auto wrong_shape = engine.submit(0, query(rng, k + 1));
  auto bad_layer = engine.submit(99, query(rng, k));
  engine.drain();

  EXPECT_EQ(good.get().status, RequestStatus::kOk);
  const Response ws = wrong_shape.get();
  EXPECT_EQ(ws.status, RequestStatus::kInvalid);
  EXPECT_NE(ws.error.find("right-hand side"), std::string::npos);
  EXPECT_EQ(bad_layer.get().status, RequestStatus::kInvalid);
}

TEST(ServingEngine, DrainFlushesQueuedWorkAndRejectsNewWork) {
  ServingOptions sopt;
  sopt.admission_window = milliseconds(200);
  ServingEngine engine(compile_tiny(), sopt);
  Rng rng(9011);
  const Index k = engine.model(0).layer(0).k;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 10; ++i) futures.push_back(engine.submit(0, query(rng, k)));
  engine.drain();  // must terminate without waiting out the window
  for (auto& f : futures)
    EXPECT_EQ(f.get().status, RequestStatus::kOk) << "drain must flush";
  EXPECT_EQ(engine.queue_depth(), 0u);

  const Response late = engine.submit(0, query(rng, k)).get();
  EXPECT_EQ(late.status, RequestStatus::kShed);
  EXPECT_NE(late.error.find("draining"), std::string::npos);
  engine.drain();  // idempotent
}

TEST(ServingEngine, DestructorResolvesEverything) {
  std::vector<std::future<Response>> futures;
  {
    ServingOptions sopt;
    sopt.admission_window = milliseconds(100);
    ServingEngine engine(compile_tiny(), sopt);
    Rng rng(9012);
    const Index k = engine.model(0).layer(0).k;
    for (int i = 0; i < 8; ++i)
      futures.push_back(engine.submit(0, query(rng, k)));
  }  // destructor drains
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready)
        << "destroying the engine left a future unresolved";
    EXPECT_EQ(f.get().status, RequestStatus::kOk);
  }
}

TEST(ServingEngine, ConcurrentProducersEveryRequestResolves) {
  ServingOptions sopt;
  sopt.admission_window = microseconds(200);
  sopt.max_queue_depth = 16;
  sopt.overflow = ServingOptions::Overflow::kReject;
  ServingEngine engine(compile_tiny(), sopt);
  const auto reference = compile_tiny();

  constexpr int kThreads = 4, kPerThread = 25;
  std::vector<std::thread> producers;
  std::vector<std::vector<std::pair<MatrixF, std::future<Response>>>> work(
      kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      Rng rng(9100 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        const std::size_t layer = static_cast<std::size_t>(i) % 2;
        MatrixF in = query(rng, reference.layer(layer).k);
        auto fut = engine.submit(layer, in);
        work[t].emplace_back(std::move(in), std::move(fut));
      }
    });
  }
  for (auto& p : producers) p.join();
  engine.drain();

  std::size_t ok = 0, shed = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < work[t].size(); ++i) {
      Response resp = work[t][i].second.get();
      ASSERT_TRUE(resp.status == RequestStatus::kOk ||
                  resp.status == RequestStatus::kShed)
          << to_string(resp.status) << ": " << resp.error;
      if (resp.status == RequestStatus::kOk) {
        ++ok;
        EXPECT_EQ(resp.output,
                  reference.run(static_cast<std::size_t>(i) % 2,
                                work[t][i].first));
      } else {
        ++shed;
      }
    }
  }
  EXPECT_EQ(ok + shed, kThreads * kPerThread);
  EXPECT_GT(ok, 0u);
  const auto m = engine.metrics();
  EXPECT_EQ(m.submitted, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(m.ok + m.shed, m.submitted);
}

TEST(ServingEngine, MultiModelRoutingAndPerModelMetrics) {
  std::vector<CompiledNetwork> models;
  models.push_back(compile(tiny_net(7100), mixed_configs(), {}));
  models.push_back(compile(tiny_net(7200), mixed_configs(), {}));
  ServingOptions sopt;
  sopt.admission_window = milliseconds(10);
  ServingEngine engine(std::move(models), sopt);
  ASSERT_EQ(engine.model_count(), 2u);

  const auto ref_a = compile(tiny_net(7100), mixed_configs(), {});
  const auto ref_b = compile(tiny_net(7200), mixed_configs(), {});
  Rng rng(9013);
  const MatrixF qa = query(rng, ref_a.layer(0).k);
  const MatrixF qb = query(rng, ref_b.layer(0).k);
  auto fa = engine.submit(0, 0, qa);
  auto fb = engine.submit(1, 0, qb);
  engine.drain();

  const Response ra = fa.get(), rb = fb.get();
  ASSERT_EQ(ra.status, RequestStatus::kOk) << ra.error;
  ASSERT_EQ(rb.status, RequestStatus::kOk) << rb.error;
  EXPECT_EQ(ra.output, ref_a.run(0, qa));
  EXPECT_EQ(rb.output, ref_b.run(0, qb));
  EXPECT_EQ(engine.metrics(0).ok, 1u);
  EXPECT_EQ(engine.metrics(1).ok, 1u);
  EXPECT_THROW(engine.metrics(2), Error);
  EXPECT_THROW(engine.submit(7, 0, MatrixF(1, 1)), Error);
}

TEST(ServingEngine, SlowKernelExpiresLaterArrivalsButTerminates) {
  // 40 ms per executed batch against 100 ms default deadlines: the
  // sleeps alone guarantee the fourth-and-later requests expire
  // (3 x 40 ms > 100 ms), while the first has 100 ms of slack to reach
  // the batcher — robust even under sanitizer slowdowns.
  fault::Spec slow;
  slow.site = "rt.run_batch";
  slow.kind = fault::Kind::kDelay;
  slow.delay_us = 40000;
  const fault::ScopedFault stall(slow);

  ServingOptions sopt;
  sopt.admission_window = microseconds(0);
  sopt.max_batch = 1;
  sopt.max_queue_depth = 64;
  sopt.default_deadline = milliseconds(100);
  ServingEngine engine(compile_tiny(), sopt);

  Rng rng(9014);
  const Index k = engine.model(0).layer(0).k;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(engine.submit(0, query(rng, k)));
  engine.drain();

  std::size_t ok = 0, expired = 0;
  for (auto& f : futures) {
    const Response resp = f.get();
    ASSERT_TRUE(resp.status == RequestStatus::kOk ||
                resp.status == RequestStatus::kDeadline)
        << to_string(resp.status) << ": " << resp.error;
    resp.status == RequestStatus::kOk ? ++ok : ++expired;
  }
  EXPECT_GT(ok, 0u);
  EXPECT_GT(expired, 0u)
      << "a 40 ms kernel with 100 ms deadlines over 8 serial batches must "
         "expire the tail";
  const auto m = engine.metrics();
  EXPECT_EQ(m.ok + m.expired, 8u);
}

TEST(ServingEngine, ValidatesOptions) {
  ServingOptions bad;
  bad.max_queue_depth = 0;
  EXPECT_THROW(ServingEngine(compile_tiny(), bad), Error);
  ServingOptions bad_batch;
  bad_batch.max_batch = 0;
  EXPECT_THROW(ServingEngine(compile_tiny(), bad_batch), Error);
  EXPECT_THROW(ServingEngine(std::vector<CompiledNetwork>{}, {}), Error);
}

TEST(ServingEngine, StatusNamesAreStable) {
  EXPECT_STREQ(to_string(RequestStatus::kOk), "ok");
  EXPECT_STREQ(to_string(RequestStatus::kInvalid), "invalid");
  EXPECT_STREQ(to_string(RequestStatus::kDeadline), "deadline");
  EXPECT_STREQ(to_string(RequestStatus::kShed), "shed");
  EXPECT_STREQ(to_string(RequestStatus::kFailed), "failed");
}

TEST(ServingEngine, SubmitAsyncDeliversOkResponse) {
  const auto reference = compile_tiny();
  ServingOptions sopt;
  sopt.admission_window = milliseconds(5);
  ServingEngine engine(compile_tiny(), sopt);

  Rng rng(9401);
  const MatrixF input = query(rng, reference.layer(0).k);
  std::promise<Response> delivered;
  engine.submit_async(0, input, [&](Response resp) {
    delivered.set_value(std::move(resp));
  });
  Response resp = delivered.get_future().get();
  ASSERT_EQ(resp.status, RequestStatus::kOk) << resp.error;
  EXPECT_EQ(resp.output, reference.run(0, input));
  EXPECT_GE(resp.batch_size, 1u);
  engine.drain();
  EXPECT_EQ(engine.metrics().ok, 1u);
}

TEST(ServingEngine, SubmitAsyncShedAtSubmitRunsInline) {
  ServingEngine engine(compile_tiny());
  engine.drain();  // all further admission sheds at submit time

  Rng rng(9402);
  bool called_inline = false;
  engine.submit_async(0, query(rng, engine.model(0).layer(0).k),
                      [&](Response resp) {
                        EXPECT_EQ(resp.status, RequestStatus::kShed);
                        called_inline = true;
                      });
  // Shed-at-submit delivers on the submitting thread, before returning.
  EXPECT_TRUE(called_inline);
  EXPECT_EQ(engine.metrics().shed, 1u);
}

TEST(ServingEngine, SubmitAsyncThrowingCallbackIsContained) {
  const auto reference = compile_tiny();
  ServingEngine engine(compile_tiny());

  Rng rng(9403);
  std::promise<void> threw;
  engine.submit_async(0, query(rng, reference.layer(0).k), [&](Response) {
    threw.set_value();
    throw std::runtime_error("misbehaving callback");
  });
  threw.get_future().get();

  // The batcher thread survived the throw: a subsequent request still
  // executes and resolves normally.
  const MatrixF input = query(rng, reference.layer(0).k);
  Response resp = engine.submit(0, input).get();
  ASSERT_EQ(resp.status, RequestStatus::kOk) << resp.error;
  EXPECT_EQ(resp.output, reference.run(0, input));
}

TEST(ServingEngine, SubmitAsyncRequiresCallback) {
  ServingEngine engine(compile_tiny());
  Rng rng(9404);
  EXPECT_THROW(
      engine.submit_async(0, query(rng, engine.model(0).layer(0).k), nullptr),
      Error);
}

TEST(ServingEngine, MixedFuturesAndCallbacksResolveIdentically) {
  const auto reference = compile_tiny();
  ServingOptions sopt;
  sopt.admission_window = milliseconds(10);
  sopt.max_batch = 8;
  ServingEngine engine(compile_tiny(), sopt);

  Rng rng(9405);
  std::vector<MatrixF> inputs;
  for (int i = 0; i < 8; ++i)
    inputs.push_back(query(rng, reference.layer(0).k));

  std::vector<std::future<Response>> futures;
  std::vector<std::promise<Response>> via_callback(4);
  for (int i = 0; i < 4; ++i) {
    futures.push_back(engine.submit(0, inputs[i]));
    engine.submit_async(0, inputs[4 + i],
                        [&via_callback, i](Response resp) {
                          via_callback[i].set_value(std::move(resp));
                        });
  }
  for (int i = 0; i < 4; ++i) {
    Response from_future = futures[i].get();
    Response from_callback = via_callback[i].get_future().get();
    ASSERT_EQ(from_future.status, RequestStatus::kOk) << from_future.error;
    ASSERT_EQ(from_callback.status, RequestStatus::kOk) << from_callback.error;
    EXPECT_EQ(from_future.output, reference.run(0, inputs[i]));
    EXPECT_EQ(from_callback.output, reference.run(0, inputs[4 + i]));
  }
  engine.drain();
  EXPECT_EQ(engine.metrics().ok, 8u);
}

TEST(ServingEngine, EngineMetricsTrackBatcherOccupancy) {
  ServingOptions sopt;
  sopt.admission_window = milliseconds(1);
  ServingEngine engine(compile_tiny());

  const auto before = engine.engine_metrics();
  EXPECT_EQ(before.groups, 0u);
  EXPECT_EQ(before.busy_ms, 0.0);
  EXPECT_GE(before.idle_ms, 0.0);
  EXPECT_GE(before.occupancy, 0.0);
  EXPECT_LE(before.occupancy, 1.0);

  Rng rng(9406);
  const Index k = engine.model(0).layer(0).k;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 6; ++i)
    futures.push_back(engine.submit(0, query(rng, k)));
  for (auto& f : futures) ASSERT_EQ(f.get().status, RequestStatus::kOk);
  // The busy/group accumulators are written after the group's futures
  // resolve (the batcher reacquires mu_ once delivery is done), so
  // join the batcher before snapshotting.
  engine.drain();

  const auto after = engine.engine_metrics();
  EXPECT_GE(after.groups, 1u);
  EXPECT_GT(after.busy_ms, 0.0);
  EXPECT_GE(after.busy_ms + after.idle_ms, before.busy_ms + before.idle_ms);
  EXPECT_GT(after.occupancy, 0.0);
  EXPECT_LE(after.occupancy, 1.0);
}

}  // namespace
}  // namespace tasd::rt
