// Property sweep: the timed runtime kernels agree bit-for-bit in shape
// and numerically with the functional model across patterns/densities.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/decompose.hpp"
#include "kernel_families.hpp"
#include "runtime/dense_gemm.hpp"
#include "runtime/nm_gemm.hpp"
#include "tensor/gemm_ref.hpp"
#include "tensor/generator.hpp"
#include "tensor/norms.hpp"

namespace tasd::rt {
namespace {

struct KernelCase {
  const char* config;
  double density;
  Index m, k, n;
};

void PrintTo(const KernelCase& c, std::ostream* os) {
  *os << c.config << " d=" << c.density << " " << c.m << "x" << c.k << "x"
      << c.n;
}

class KernelEquivalence : public ::testing::TestWithParam<KernelCase> {};

TEST_P(KernelEquivalence, SeriesKernelMatchesFunctionalModel) {
  const auto p = GetParam();
  Rng rng(3000 + p.m + p.k);
  const MatrixF a =
      random_unstructured(p.m, p.k, p.density, Dist::kNormalStd1, rng);
  const MatrixF b = random_dense(p.k, p.n, Dist::kNormalStd1, rng);
  const auto d = decompose(a, TasdConfig::parse(p.config));
  const TasdSeriesGemm series(d);
  const MatrixF kernel_out = series.multiply(b);
  const MatrixF functional = gemm_ref(d.approximation(), b);
  EXPECT_TRUE(allclose(kernel_out, functional, 1e-4, 1e-4));
}

TEST_P(KernelEquivalence, DenseKernelMatchesReference) {
  const auto p = GetParam();
  Rng rng(4000 + p.m + p.k);
  const MatrixF a =
      random_unstructured(p.m, p.k, p.density, Dist::kNormalStd1, rng);
  const MatrixF b = random_dense(p.k, p.n, Dist::kNormalStd1, rng);
  EXPECT_TRUE(allclose(dense_gemm(a, b), gemm_ref(a, b), 1e-4, 1e-4));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KernelEquivalence,
    ::testing::Values(KernelCase{"2:4", 0.1, 16, 32, 8},
                      KernelCase{"2:4", 0.9, 16, 32, 8},
                      KernelCase{"1:8", 0.05, 32, 64, 4},
                      KernelCase{"4:8", 0.5, 8, 64, 16},
                      KernelCase{"4:8+1:8", 0.4, 16, 48, 8},
                      KernelCase{"2:8+1:8", 0.2, 8, 40, 12},
                      KernelCase{"2:4+2:8", 0.7, 16, 30, 5},  // ragged K
                      KernelCase{"1:4", 1.0, 4, 7, 3}));      // tiny ragged

// --- Registry-wide property sweep: every registered kernel name (scalar
// and AVX2 families, single-RHS and batch) × threads {0, 1, 2, 5, 8}.
// Each kernel must (a) agree with the tensor/gemm_ref oracle to float
// tolerance and (b) be bit-identical to its own 1-thread run; each batch
// kernel must be bit-identical to looping its family's single-RHS kernel
// over a ragged batch mix.

const std::size_t kSweepThreads[] = {0, 1, 2, 5, 8};

using testing::paired_single_kernel;

TEST(KernelRegistrySweep, EveryDenseKernelMatchesOracleAndItsSerialSelf) {
  Rng rng(6001);
  // Odd shape: m=1 row chunk, k not a multiple of the unroll, n crossing
  // the 32/8-lane vector blocks with a scalar remainder.
  const MatrixF a = random_dense(13, 30, Dist::kNormalStd1, rng);
  const MatrixF b = random_dense(30, 43, Dist::kNormalStd1, rng);
  const MatrixF oracle = gemm_ref(a, b);
  for (const auto& kernel : GemmDispatch::instance().dense_kernels()) {
    ExecPolicy serial_policy;
    serial_policy.dense_kernel = kernel;
    ThreadPool one(1);
    serial_policy.pool = &one;
    const MatrixF reference = dense_gemm(a, b, serial_policy);
    EXPECT_TRUE(allclose(reference, oracle, 1e-4, 1e-4)) << kernel;
    for (std::size_t threads : kSweepThreads) {
      ThreadPool pool(threads);
      ExecPolicy policy;
      policy.pool = &pool;
      policy.dense_kernel = kernel;
      EXPECT_TRUE(dense_gemm(a, b, policy) == reference)
          << kernel << " threads=" << threads;
    }
  }
}

TEST(KernelRegistrySweep, EveryNmKernelMatchesOracleAndItsSerialSelf) {
  Rng rng(6002);
  const MatrixF dense =
      random_unstructured(17, 40, 0.4, Dist::kNormalStd1, rng);
  const auto d = decompose(dense, TasdConfig::parse("2:4"));
  const sparse::NMSparseMatrix a = d.terms[0].compressed();
  const MatrixF b = random_dense(40, 37, Dist::kNormalStd1, rng);
  const MatrixF oracle = gemm_ref(d.terms[0].dense, b);
  for (const auto& kernel : GemmDispatch::instance().nm_kernels()) {
    ExecPolicy serial_policy;
    serial_policy.nm_kernel = kernel;
    ThreadPool one(1);
    serial_policy.pool = &one;
    const MatrixF reference = nm_gemm(a, b, serial_policy);
    EXPECT_TRUE(allclose(reference, oracle, 1e-4, 1e-4)) << kernel;
    for (std::size_t threads : kSweepThreads) {
      ThreadPool pool(threads);
      ExecPolicy policy;
      policy.pool = &pool;
      policy.nm_kernel = kernel;
      EXPECT_TRUE(nm_gemm(a, b, policy) == reference)
          << kernel << " threads=" << threads;
    }
  }
}

TEST(KernelRegistrySweep, EveryBatchKernelMatchesItsFamilyOnRaggedMixes) {
  Rng rng(6003);
  const MatrixF aw = random_dense(21, 36, Dist::kNormalStd1, rng);
  const MatrixF nm_dense =
      random_unstructured(21, 36, 0.4, Dist::kNormalStd1, rng);
  const auto d = decompose(nm_dense, TasdConfig::parse("2:4"));
  const sparse::NMSparseMatrix an = d.terms[0].compressed();
  // Ragged mixes: GEMV-style width-1 queries, a zero-column item, and
  // widths straddling the batch column grain.
  const std::vector<std::vector<Index>> mixes = {
      {1, 1, 1, 1}, {5, 0, 2, 9, 1}, {130, 3, 31}};
  for (const auto& widths : mixes) {
    std::vector<MatrixF> bs;
    for (Index w : widths)
      bs.push_back(random_dense(36, w, Dist::kNormalStd1, rng));
    for (const auto& kernel :
         GemmDispatch::instance().dense_batch_kernels()) {
      ExecPolicy single;
      single.dense_kernel = paired_single_kernel(kernel, true);
      std::vector<MatrixF> want;
      for (const auto& b : bs) want.push_back(dense_gemm(aw, b, single));
      for (std::size_t threads : kSweepThreads) {
        ThreadPool pool(threads);
        ExecPolicy policy;
        policy.pool = &pool;
        policy.dense_batch_kernel = kernel;
        const auto cs = dense_gemm_batch(aw, bs, policy);
        for (std::size_t i = 0; i < cs.size(); ++i)
          EXPECT_TRUE(cs[i] == want[i])
              << kernel << " threads=" << threads << " item=" << i;
      }
    }
    for (const auto& kernel : GemmDispatch::instance().nm_batch_kernels()) {
      ExecPolicy single;
      single.nm_kernel = paired_single_kernel(kernel, false);
      std::vector<MatrixF> want;
      for (const auto& b : bs) want.push_back(nm_gemm(an, b, single));
      for (std::size_t threads : kSweepThreads) {
        ThreadPool pool(threads);
        ExecPolicy policy;
        policy.pool = &pool;
        policy.nm_batch_kernel = kernel;
        const auto cs = nm_gemm_batch(an, bs, policy);
        for (std::size_t i = 0; i < cs.size(); ++i)
          EXPECT_TRUE(cs[i] == want[i])
              << kernel << " threads=" << threads << " item=" << i;
      }
    }
  }
}

TEST(KernelEdgeCases, OneByOne) {
  MatrixF a(1, 1, {3.0F});
  MatrixF b(1, 1, {4.0F});
  EXPECT_EQ(dense_gemm(a, b)(0, 0), 12.0F);
  const auto d = decompose(a, TasdConfig::parse("1:4"));
  EXPECT_EQ(TasdSeriesGemm(d).multiply(b)(0, 0), 12.0F);
}

TEST(KernelEdgeCases, EmptyOutputColumns) {
  Rng rng(5000);
  const MatrixF a = random_dense(4, 8, Dist::kNormalStd1, rng);
  const MatrixF b(8, 0);
  const MatrixF c = dense_gemm(a, b);
  EXPECT_EQ(c.cols(), 0u);
}

}  // namespace
}  // namespace tasd::rt
