#include "accel/tasd_unit.hpp"

#include <gtest/gtest.h>

namespace tasd::accel {
namespace {

TEST(TasdUnit, PaperExampleFourEightPlusOneEight) {
  // Paper §4.4: 4:8+1:8 takes 5 extraction cycles (+1 emit in our model);
  // a 16-column engine with M=8 emits 2 blocks/cycle; 16 units suffice.
  const auto a = ArchConfig::ttc_vegeta_m8();
  const auto m = tasd_unit_model(a, TasdConfig::parse("4:8+1:8"));
  EXPECT_DOUBLE_EQ(m.blocks_per_cycle, 2.0);
  EXPECT_EQ(m.cycles_per_block, 6);
  EXPECT_DOUBLE_EQ(m.required_units, 12.0);
  EXPECT_DOUBLE_EQ(m.stall_factor(), 1.0);
}

TEST(TasdUnit, LittlesLawBoundary) {
  // Worst admissible series on M=8: ΣN + 1 = 8 cycles -> exactly 16
  // units needed (paper: "by Little's law, 16 = 2 x 8").
  auto a = ArchConfig::ttc_vegeta_m8();
  a.max_tasd_terms = 3;
  const auto m = tasd_unit_model(a, TasdConfig::parse("4:8+2:8+1:8"));
  EXPECT_EQ(m.cycles_per_block, 8);
  EXPECT_DOUBLE_EQ(m.required_units, 16.0);
  EXPECT_DOUBLE_EQ(m.stall_factor(), 1.0);
}

TEST(TasdUnit, UndersizedUnitsStall) {
  auto a = ArchConfig::ttc_vegeta_m8();
  a.tasd_units_per_engine = 4;
  const auto m = tasd_unit_model(a, TasdConfig::parse("4:8+1:8"));
  EXPECT_GT(m.stall_factor(), 1.0);
  EXPECT_DOUBLE_EQ(m.stall_factor(), 12.0 / 4.0);
}

TEST(TasdUnit, M4EngineNeverStallsWithSixteenUnits) {
  const auto a = ArchConfig::ttc_vegeta_m4();
  // Heaviest admissible M=4 series: 2:4+1:4 -> 4 cycles, 4 blocks/cycle.
  const auto m = tasd_unit_model(a, TasdConfig::parse("2:4+1:4"));
  EXPECT_DOUBLE_EQ(m.blocks_per_cycle, 4.0);
  EXPECT_LE(m.required_units, 16.0);
  EXPECT_DOUBLE_EQ(m.stall_factor(), 1.0);
}

TEST(TasdUnit, RequiresTasdHardware) {
  const auto a = ArchConfig::vegeta_m8_no_tasd();
  EXPECT_THROW(tasd_unit_model(a, TasdConfig::parse("2:8")), tasd::Error);
}

TEST(TasdUnit, MixedBlockSizesRejected) {
  const auto a = ArchConfig::ttc_vegeta_m8();
  EXPECT_THROW(tasd_unit_model(a, TasdConfig::parse("2:8+2:4")), tasd::Error);
}

TEST(TasdArea, UnderTwoPercentOfPeArray) {
  // Paper §5.4: TASD units cost <= 2 % of the PE area.
  for (const auto& arch : {ArchConfig::ttc_vegeta_m8(),
                           ArchConfig::ttc_vegeta_m4(),
                           ArchConfig::ttc_stc_m8()}) {
    const auto a = tasd_area_model(arch);
    EXPECT_GT(a.ratio(), 0.0);
    EXPECT_LE(a.ratio(), 0.02) << arch.name;
  }
}

TEST(TasdArea, LargerBlocksCostMore) {
  const auto m8 = tasd_area_model(ArchConfig::ttc_vegeta_m8());
  const auto m4 = tasd_area_model(ArchConfig::ttc_vegeta_m4());
  EXPECT_GT(m8.tasd_unit_gates, m4.tasd_unit_gates);
}

}  // namespace
}  // namespace tasd::accel
