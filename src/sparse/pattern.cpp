#include "sparse/pattern.hpp"

#include <charconv>

#include "common/error.hpp"

namespace tasd::sparse {

NMPattern::NMPattern(int n_, int m_) : n(n_), m(m_) {
  TASD_CHECK_MSG(m > 0, "N:M pattern needs M > 0, got M=" << m);
  TASD_CHECK_MSG(n >= 0 && n <= m,
                 "N:M pattern needs 0 <= N <= M, got " << n << ":" << m);
}

NMPattern NMPattern::parse(const std::string& text) {
  const auto colon = text.find(':');
  TASD_CHECK_MSG(colon != std::string::npos,
                 "pattern '" << text << "' is not of the form N:M");
  int n = 0;
  int m = 0;
  const char* begin = text.data();
  auto r1 = std::from_chars(begin, begin + colon, n);
  auto r2 =
      std::from_chars(begin + colon + 1, begin + text.size(), m);
  TASD_CHECK_MSG(r1.ec == std::errc() && r1.ptr == begin + colon &&
                     r2.ec == std::errc() && r2.ptr == begin + text.size(),
                 "pattern '" << text << "' is not of the form N:M");
  return {n, m};
}

std::string NMPattern::str() const {
  return std::to_string(n) + ":" + std::to_string(m);
}

namespace {

/// Visit each M-aligned block of each row, calling f(nnz_in_block).
template <typename F>
void for_each_block_nnz(const MatrixF& matrix, int m, F&& f) {
  const Index cols = matrix.cols();
  for (Index r = 0; r < matrix.rows(); ++r) {
    auto row = matrix.row(r);
    for (Index b = 0; b < cols; b += static_cast<Index>(m)) {
      const Index end = std::min(cols, b + static_cast<Index>(m));
      int nnz = 0;
      for (Index i = b; i < end; ++i)
        if (row[i] != 0.0F) ++nnz;
      f(nnz);
    }
  }
}

}  // namespace

bool satisfies(const MatrixF& matrix, const NMPattern& pattern) {
  return count_violating_blocks(matrix, pattern) == 0;
}

Index count_violating_blocks(const MatrixF& matrix, const NMPattern& pattern) {
  Index violations = 0;
  for_each_block_nnz(matrix, pattern.m, [&](int nnz) {
    if (nnz > pattern.n) ++violations;
  });
  return violations;
}

}  // namespace tasd::sparse
