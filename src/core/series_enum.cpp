#include "core/series_enum.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"

namespace tasd {

namespace {

/// Recursive subset builder over the supported patterns.
void build(const std::vector<sparse::NMPattern>& supported, std::size_t from,
           int remaining_terms, std::vector<sparse::NMPattern>& current,
           std::vector<TasdConfig>& out) {
  if (!current.empty()) {
    auto sorted = current;
    // Densest-first extraction order inside a series.
    std::sort(sorted.begin(), sorted.end(),
              [](const sparse::NMPattern& a, const sparse::NMPattern& b) {
                if (a.density() != b.density()) return a.density() > b.density();
                return a.m < b.m;
              });
    out.emplace_back(std::move(sorted));
  }
  if (remaining_terms == 0) return;
  for (std::size_t i = from; i < supported.size(); ++i) {
    current.push_back(supported[i]);
    build(supported, i + 1, remaining_terms - 1, current, out);
    current.pop_back();
  }
}

}  // namespace

std::vector<TasdConfig> enumerate_configs(
    const std::vector<sparse::NMPattern>& supported, int max_terms) {
  TASD_CHECK_MSG(max_terms >= 1, "max_terms must be >= 1");
  std::vector<TasdConfig> out;
  std::vector<sparse::NMPattern> current;
  // Dedicated top-level loop so the empty config is never emitted.
  for (std::size_t i = 0; i < supported.size(); ++i) {
    current.push_back(supported[i]);
    build(supported, i + 1, max_terms - 1, current, out);
    current.pop_back();
  }
  // Deduplicate identical term multisets.
  std::sort(out.begin(), out.end(), [](const TasdConfig& a, const TasdConfig& b) {
    if (a.terms.size() != b.terms.size()) return a.terms.size() < b.terms.size();
    return a.str() < b.str();
  });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  // Most aggressive first (highest approximated sparsity == lowest density).
  std::stable_sort(out.begin(), out.end(),
                   [](const TasdConfig& a, const TasdConfig& b) {
                     return a.max_density() < b.max_density();
                   });
  return out;
}

std::optional<TasdConfig> config_for_effective_pattern(
    const std::vector<sparse::NMPattern>& supported, int max_terms, int n,
    int m) {
  TASD_CHECK_MSG(m > 0 && n >= 0 && n <= m,
                 "invalid effective pattern " << n << ":" << m);
  std::optional<TasdConfig> best;
  for (auto& cfg : enumerate_configs(supported, max_terms)) {
    // Σ Ni/Mi must equal n/m exactly; compare as integer cross-products
    // over a common denominator to avoid floating-point equality.
    // density = Σ Ni/Mi == n/m  <=>  m * Σ(Ni * Π Mj≠i) == n * Π Mi.
    long long num = 0;
    long long den = 1;
    for (const auto& p : cfg.terms) den *= p.m;
    for (std::size_t i = 0; i < cfg.terms.size(); ++i) {
      long long partial = cfg.terms[i].n;
      for (std::size_t j = 0; j < cfg.terms.size(); ++j)
        if (j != i) partial *= cfg.terms[j].m;
      num += partial;
    }
    if (num * m == static_cast<long long>(n) * den) {
      if (!best || cfg.terms.size() < best->terms.size()) best = cfg;
    }
  }
  return best;
}

std::vector<int> reachable_effective_n(
    const std::vector<sparse::NMPattern>& supported, int max_terms, int m) {
  std::set<int> ns;
  for (int n = 0; n <= m; ++n) {
    if (config_for_effective_pattern(supported, max_terms, n, m)) ns.insert(n);
  }
  return {ns.begin(), ns.end()};
}

}  // namespace tasd
