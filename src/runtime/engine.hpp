// Wall-clock execution engine for full-scale GEMM workloads — the
// repository's stand-in for the paper's TensorRT-on-RTX3080 real-system
// experiment (§5.5, Fig. 16). See DESIGN.md's substitution table.
//
// For each layer the engine measures the dense kernel and (when a TASD
// series is chosen) the compressed structured kernel, then composes
// network latency from per-layer timings exactly the way a layer-serial
// inference runtime does.
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "dnn/workloads.hpp"
#include "runtime/nm_gemm.hpp"

namespace tasd::rt {

/// Measured timings of one layer.
struct LayerTiming {
  std::string name;
  Index m = 0, k = 0, n = 0;
  double dense_ms = 0.0;
  double tasd_ms = 0.0;              ///< 0 when no series configured
  std::optional<TasdConfig> config;
  double kept_nnz_fraction = 0.0;    ///< stored values / total positions

  /// Best available time for this layer. A deployment engineer who
  /// measures both engines keeps the dense kernel when the TASD series
  /// turns out slower, so a configured layer contributes the minimum of
  /// the two timings, never a slower-than-dense TASD time.
  [[nodiscard]] double best_ms() const {
    return config ? std::min(tasd_ms, dense_ms) : dense_ms;
  }

  /// Wall-clock saved by converting this layer (dense_ms - best_ms():
  /// zero for unconfigured or slower-than-dense layers, never negative).
  [[nodiscard]] double conversion_savings_ms() const {
    return dense_ms - best_ms();
  }
};

/// Engine options.
struct EngineOptions {
  /// Shrink every layer's N (positions) by this factor so per-layer
  /// measurements finish quickly; speed-up ratios are unaffected because
  /// both kernels scale linearly in N. The division rounds to nearest
  /// with a floor of min(n, n_divisor - 1), so layers with fewer than
  /// n_divisor positions are not shrunk at all and the measured N is
  /// monotone in the layer's N — truncating tiny layers to n=1 would
  /// distort the dense/TASD ratio the Fig. 16 experiment depends on.
  Index n_divisor = 4;
  /// Timing repetitions; the minimum is reported.
  int repeats = 3;
  std::uint64_t data_seed = 99;
  /// Kernel parallelism. 0 = the process default (TASD_NUM_THREADS, or
  /// hardware concurrency when unset); any other value builds a dedicated
  /// pool of that size for this measurement. Timings change with the
  /// thread count, kernel *results* never do.
  std::size_t num_threads = 0;
  /// Reuse decompositions from the process-wide PlanCache: repeated
  /// measurements of the same weights (TASDER sweeps, bench reruns)
  /// perform zero additional decompositions.
  bool use_plan_cache = true;
};

/// Measure every layer of a workload under the given per-layer configs
/// (entries align with net.layers; nullopt = dense).
std::vector<LayerTiming> measure_workload(
    const dnn::NetworkWorkload& net,
    const std::vector<std::optional<TasdConfig>>& configs,
    const EngineOptions& opt = {});

/// Compose total network latency with the first `num_converted` layers
/// (by the given order) using their best_ms() — a converted layer keeps
/// the dense kernel when TASD measured slower — and the rest dense.
/// `order` holds indices into `timings`. With the conversion_order()
/// ranking, latency is non-increasing in num_converted.
double network_latency_ms(const std::vector<LayerTiming>& timings,
                          const std::vector<std::size_t>& order,
                          std::size_t num_converted);

/// Order layers by descending wall-clock saved (conversion_savings_ms):
/// the order in which a deployment engineer would convert layers.
/// Layers that are not convertible (no config) or would lose time
/// (tasd_ms >= dense_ms) save exactly zero and therefore rank after
/// every layer with a real saving — never ahead of them.
std::vector<std::size_t> conversion_order(
    const std::vector<LayerTiming>& timings);

// ------------------------------------------------------- serving path

/// Options for the batched serving-throughput measurement.
struct ServingOptions {
  /// Concurrent queries measured per data point.
  std::vector<std::size_t> batch_sizes{1, 4, 16, 64};
  /// Right-hand-side columns of one query (1 = GEMV-style serving, the
  /// latency-bound case batching amortizes).
  Index query_cols = 1;
  /// Timing repetitions; the minimum is reported.
  int repeats = 3;
  std::uint64_t data_seed = 99;
  /// Kernel parallelism (same contract as EngineOptions::num_threads).
  std::size_t num_threads = 0;
  /// Reuse decompositions from the process-wide PlanCache; one plan per
  /// layer is shared across every batch size and every batch item.
  bool use_plan_cache = true;
};

/// Serving throughput of a whole network at one batch size: the batch
/// latency is the sum of per-layer batched kernel times (layer-serial,
/// like network_latency_ms), and queries/sec follows directly.
struct ServingThroughput {
  std::size_t batch_size = 0;
  double dense_ms = 0.0;   ///< whole-net batch latency, dense kernels
  double tasd_ms = 0.0;    ///< same with configured layers on TASD batch
  double dense_qps = 0.0;  ///< batch_size / dense seconds
  double tasd_qps = 0.0;   ///< batch_size / TASD seconds
};

/// Measure dense vs TASD serving throughput (queries/sec) at each batch
/// size. Configured layers execute through TasdSeriesGemm::multiply_batch
/// (one DecompositionPlan shared across the batch); unconfigured layers
/// through the dense batch kernel. One entry per batch size, in order.
std::vector<ServingThroughput> measure_serving_throughput(
    const dnn::NetworkWorkload& net,
    const std::vector<std::optional<TasdConfig>>& configs,
    const ServingOptions& opt = {});

}  // namespace tasd::rt
