#include "core/decompose.hpp"

#include "common/error.hpp"
#include "sparse/view.hpp"

namespace tasd {

MatrixF Decomposition::approximation() const {
  MatrixF acc(residual.rows(), residual.cols());
  for (const auto& t : terms) acc += t.dense;
  return acc;
}

MatrixF Decomposition::reconstruct_exact() const {
  MatrixF acc = approximation();
  acc += residual;
  return acc;
}

bool Decomposition::lossless() const {
  for (float v : residual.flat())
    if (v != 0.0F) return false;
  return true;
}

Decomposition decompose(const MatrixF& matrix, const TasdConfig& config) {
  Decomposition out;
  out.config = config;
  out.residual = matrix;
  out.terms.reserve(config.terms.size());
  for (const auto& pattern : config.terms) {
    auto split = sparse::split_nm(out.residual, pattern);
    out.terms.push_back(TasdTerm{pattern, std::move(split.view)});
    out.residual = std::move(split.residual);
  }
  return out;
}

MatrixF approximate(const MatrixF& matrix, const TasdConfig& config) {
  return decompose(matrix, config).approximation();
}

}  // namespace tasd
