#include "runtime/nm_gemm.hpp"

#include "common/error.hpp"

namespace tasd::rt {

MatrixF nm_gemm(const sparse::NMSparseMatrix& a, const MatrixF& b,
                const ExecPolicy& policy) {
  MatrixF c(a.rows(), b.cols());
  nm_gemm_accumulate(a, b, c, policy);
  return c;
}

void nm_gemm_accumulate(const sparse::NMSparseMatrix& a, const MatrixF& b,
                        MatrixF& c, const ExecPolicy& policy) {
  TASD_CHECK_MSG(a.cols() == b.rows(), "N:M GEMM inner dim mismatch");
  TASD_CHECK(c.rows() == a.rows() && c.cols() == b.cols());
  GemmDispatch::instance().nm(policy.nm_kernel)(a, b, c,
                                                resolve_pool(policy));
}

std::vector<MatrixF> nm_gemm_batch(const sparse::NMSparseMatrix& a,
                                   std::span<const MatrixF> bs,
                                   const ExecPolicy& policy) {
  std::vector<MatrixF> cs;
  cs.reserve(bs.size());
  for (const MatrixF& b : bs) cs.emplace_back(a.rows(), b.cols());
  nm_gemm_batch_accumulate(a, bs, cs, policy);
  return cs;
}

void nm_gemm_batch_accumulate(const sparse::NMSparseMatrix& a,
                              std::span<const MatrixF> bs,
                              std::span<MatrixF> cs,
                              const ExecPolicy& policy) {
  TASD_CHECK_MSG(bs.size() == cs.size(), "batch GEMM item count mismatch");
  for (std::size_t i = 0; i < bs.size(); ++i) {
    TASD_CHECK_MSG(a.cols() == bs[i].rows(),
                   "N:M batch GEMM inner dim mismatch at item " << i);
    TASD_CHECK(cs[i].rows() == a.rows() && cs[i].cols() == bs[i].cols());
  }
  if (bs.empty()) return;
  GemmDispatch::instance().nm_batch(policy.nm_batch_kernel)(
      a, bs, cs, resolve_pool(policy));
}

TasdSeriesGemm::TasdSeriesGemm(const Decomposition& decomposition)
    : rows_(decomposition.residual.rows()),
      cols_(decomposition.residual.cols()) {
  owned_terms_.reserve(decomposition.terms.size());
  for (const auto& t : decomposition.terms)
    owned_terms_.push_back(t.compressed());
}

TasdSeriesGemm::TasdSeriesGemm(std::shared_ptr<const DecompositionPlan> plan)
    : rows_(plan->rows), cols_(plan->cols), plan_(std::move(plan)) {}

MatrixF TasdSeriesGemm::multiply(const MatrixF& b,
                                 const ExecPolicy& policy) const {
  TASD_CHECK_MSG(cols_ == b.rows(),
                 "TASD series GEMM shape mismatch: series is "
                     << rows_ << "x" << cols_ << ", so b needs " << cols_
                     << " rows, got " << b.rows() << "x" << b.cols());
  MatrixF c(rows_, b.cols());
  // Term-major through the registry so kernel selection (policy or
  // set_default_nm) applies to the series path too. Per output element
  // the accumulation order is terms in series order, k ascending within
  // a term — identical at every thread count and for every row-partition
  // kernel.
  const NmKernel kernel = GemmDispatch::instance().nm(policy.nm_kernel);
  ThreadPool& pool = resolve_pool(policy);
  for (const auto& t : terms()) kernel(t, b, c, pool);
  return c;
}

std::vector<MatrixF> TasdSeriesGemm::multiply_batch(
    std::span<const MatrixF> bs, const ExecPolicy& policy) const {
  std::vector<MatrixF> cs;
  cs.reserve(bs.size());
  for (std::size_t i = 0; i < bs.size(); ++i) {
    TASD_CHECK_MSG(cols_ == bs[i].rows(),
                   "TASD series batch GEMM shape mismatch: series is "
                       << rows_ << "x" << cols_ << ", so every item needs "
                       << cols_ << " rows, got " << bs[i].rows() << "x"
                       << bs[i].cols() << " at item " << i);
    cs.emplace_back(rows_, bs[i].cols());
  }
  if (bs.empty()) return cs;
  // Pack the batch once and run every term against the packed pair as a
  // single-item batch (re-packing per term would waste copies on the
  // serving hot path). Term-major: per output element the accumulation
  // order is terms in series order, k ascending within a term — exactly
  // multiply()'s order — and the tile cores' per-element order does not
  // depend on column position, so the batch is bit-identical to a
  // per-item loop.
  const NmBatchKernel kernel =
      GemmDispatch::instance().nm_batch(policy.nm_batch_kernel);
  ThreadPool& pool = resolve_pool(policy);
  const auto off = batch_offsets(bs);
  if (off.back() == 0) return cs;
  const MatrixF bp = pack_batch(bs, off);
  MatrixF cp(rows_, off.back());
  for (const auto& t : terms()) kernel(t, {&bp, 1}, {&cp, 1}, pool);
  unpack_batch(cp, off, cs);
  return cs;
}

Index TasdSeriesGemm::nnz() const {
  Index total = 0;
  for (const auto& t : terms()) total += t.nnz();
  return total;
}

}  // namespace tasd::rt
