// Error handling for the TASD library.
//
// All precondition violations throw tasd::Error with a message that
// includes the failing expression and source location. TASD_CHECK is
// compiled in every build type (these are API-contract checks, not
// debug-only asserts).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tasd {

/// Exception type thrown on any TASD API contract violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void raise_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "TASD_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace tasd

/// Contract check, active in all build types. Throws tasd::Error.
#define TASD_CHECK(expr)                                                   \
  do {                                                                     \
    if (!(expr))                                                           \
      ::tasd::detail::raise_check_failure(#expr, __FILE__, __LINE__, "");  \
  } while (false)

/// Contract check with a streamed message: TASD_CHECK_MSG(x > 0, "x=" << x).
#define TASD_CHECK_MSG(expr, msg)                                          \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream tasd_check_os_;                                   \
      tasd_check_os_ << msg;                                               \
      ::tasd::detail::raise_check_failure(#expr, __FILE__, __LINE__,       \
                                          tasd_check_os_.str());           \
    }                                                                      \
  } while (false)
