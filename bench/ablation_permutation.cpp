// Extension ablation (paper §6.1): channel permutation + TASD.
//
// The paper notes TASD composes with the channel-permutation technique
// (Pool & Yu '21) and that combining them should improve decomposition
// quality. This bench quantifies it: dropped non-zeros of layer-wise
// TASD-W series on the sparse ResNet-50 workload, with and without a
// permutation pre-pass.
#include <iostream>

#include "accel/network_sim.hpp"
#include "common/table.hpp"
#include "core/permute.hpp"
#include "dnn/workloads.hpp"
#include "tasder/workload_opt.hpp"

using namespace tasd;

int main() {
  print_banner("Ablation: channel permutation + TASD-W "
               "(sparse ResNet-50 layers)");

  const auto net = dnn::resnet50_workload(true, 42);
  TextTable t;
  t.header({"layer", "config", "dropped nnz (identity)",
            "dropped nnz (permuted)", "reduction"});
  double sum_before = 0.0;
  double sum_after = 0.0;
  // A representative spread of layers (every 7th).
  for (std::size_t i = 0; i < net.layers.size(); i += 7) {
    const auto& layer = net.layers[i];
    const MatrixF w = dnn::materialize_weight(layer);
    const auto cfg = TasdConfig::parse("1:8");
    const auto r = find_tasd_permutation(w, cfg);
    sum_before += static_cast<double>(r.before.dropped_nnz);
    sum_after += static_cast<double>(r.after.dropped_nnz);
    t.row({layer.name, cfg.str(),
           TextTable::pct(r.before.dropped_nnz_fraction(), 2),
           TextTable::pct(r.after.dropped_nnz_fraction(), 2),
           TextTable::pct(r.dropped_nnz_reduction(), 1)});
  }
  t.print();
  std::cout << "\ntotal dropped non-zeros saved by permutation: "
            << TextTable::pct(
                   sum_before > 0.0 ? 1.0 - sum_after / sum_before : 0.0)
            << "\nInterpretation: permutation lets the same 1:8 series "
               "keep more of the model,\nwhich translates into either "
               "higher quality at equal sparsity or a sparser valid\n"
               "config (the paper's §6.1 expectation).\n";

  // End-to-end effect: TASDER with and without the pre-pass on the
  // accelerator model (sparser valid series => fewer slot MACs => lower
  // EDP).
  {
    std::cout << "\nTASDER + permutation on TTC-VEGETA-M8 (normalized "
                 "EDP, sparse ResNet-50):\n";
    const auto arch = accel::ArchConfig::ttc_vegeta_m8();
    const auto hw = tasder::hw_profile_from(arch);
    const auto base = accel::simulate_network(
        accel::ArchConfig::dense_tc(), tasder::plain_executions(net),
        net.name);
    tasder::WorkloadOptOptions plain_opt;
    tasder::WorkloadOptOptions perm_opt;
    perm_opt.use_channel_permutation = true;
    const auto e_plain = accel::normalized_edp(
        accel::simulate_network(
            arch, tasder::optimize_workload(net, hw, plain_opt), net.name),
        base);
    const auto e_perm = accel::normalized_edp(
        accel::simulate_network(
            arch, tasder::optimize_workload(net, hw, perm_opt), net.name),
        base);
    TextTable t2;
    t2.header({"TASDER variant", "normalized EDP"});
    t2.row({"without permutation", TextTable::num(e_plain, 3)});
    t2.row({"with permutation pre-pass", TextTable::num(e_perm, 3)});
    t2.print();
  }
  return 0;
}
