// TASD-W end-to-end: take an unstructured-sparse ResNet-50, let TASDER
// pick a per-layer series for TTC-VEGETA-M8 under the 99 % quality rule,
// then estimate the hardware win with the accelerator model — the
// deployment flow of paper Figs. 5/7.
//
//   build/examples/sparse_resnet_tasdw
#include <iostream>

#include "accel/network_sim.hpp"
#include "common/table.hpp"
#include "dnn/builders.hpp"
#include "dnn/pruning.hpp"
#include "tasder/framework.hpp"
#include "tasder/workload_opt.hpp"

using namespace tasd;

int main() {
  print_banner("TASD-W on a 95% unstructured-sparse ResNet-50");

  // 1. The model developer hands over an unstructured-pruned model.
  dnn::ConvNetOptions o;
  o.input_hw = 16;
  o.width_mult = 0.25;
  o.num_classes = 100;
  dnn::Model model = dnn::make_resnet(50, o);
  const double sparsity = dnn::prune_unstructured(model, 0.95);
  std::cout << "model: " << model.name() << ", "
            << model.gemm_layers().size() << " GEMM layers, "
            << TextTable::pct(sparsity) << " weight sparsity\n";

  // 2. TASDER searches per-layer TASD series for the target hardware.
  const auto eval = dnn::EvalSet::images(96, 16, 3, 42);
  const auto calib = dnn::EvalSet::images(16, 16, 3, 43);
  const auto ref = dnn::confident_labels(model, eval, 0.5);
  const auto hw = tasder::hw_profile_from(accel::ArchConfig::ttc_vegeta_m8());
  const auto result = tasder::optimize_model(model, hw, calib, eval, ref);
  std::cout << "TASDER mode: " << result.mode_name()
            << ", agreement: " << TextTable::pct(result.achieved_agreement)
            << ", slot MACs: " << TextTable::pct(result.mac_fraction)
            << " of dense\n";

  // Show a few per-layer decisions.
  TextTable t;
  t.header({"layer", "series", "dropped nnz"});
  int shown = 0;
  for (const auto& d : result.tasdw.decisions) {
    if (!d.config || shown >= 8) continue;
    t.row({d.layer_name, d.config->str(),
           TextTable::pct(d.dropped_nnz_fraction, 2)});
    ++shown;
  }
  t.print();

  // 3. Estimate the hardware-level payoff on the full-scale workload.
  const auto net = dnn::resnet50_workload(true, 42);
  const auto execs = tasder::optimize_workload(net, hw);
  const auto sim = accel::simulate_network(accel::ArchConfig::ttc_vegeta_m8(),
                                           execs, net.name);
  const auto base = accel::simulate_network(
      accel::ArchConfig::dense_tc(), tasder::plain_executions(net), net.name);
  std::cout << "\nfull-scale " << net.name << " on TTC-VEGETA-M8: "
            << "EDP " << TextTable::num(accel::normalized_edp(sim, base), 3)
            << "x of dense TC (paper: ~0.17x)\n";
  return 0;
}
