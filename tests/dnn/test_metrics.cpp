#include "dnn/metrics.hpp"

#include <gtest/gtest.h>

#include "dnn/builders.hpp"

namespace tasd::dnn {
namespace {

ConvNetOptions tiny() {
  ConvNetOptions o;
  o.input_hw = 8;
  o.width_mult = 0.125;
  o.num_classes = 10;
  return o;
}

TEST(EvalSet, ImageCountAndBatching) {
  const EvalSet s = EvalSet::images(35, 8, 3, 1);
  EXPECT_EQ(s.count(), 35u);
  EXPECT_TRUE(s.is_images());
  // 35 = 2 full batches of 16 + one of 3.
  ASSERT_EQ(s.image_batches().size(), 3u);
  EXPECT_EQ(s.image_batches().back().n(), 3u);
}

TEST(EvalSet, TokensCount) {
  const EvalSet s = EvalSet::tokens(5, 16, 8, 2);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_FALSE(s.is_images());
  EXPECT_EQ(s.sequences().size(), 5u);
}

TEST(EvalSet, SeededReproducibility) {
  const EvalSet a = EvalSet::images(4, 8, 3, 7);
  const EvalSet b = EvalSet::images(4, 8, 3, 7);
  EXPECT_EQ(a.image_batches()[0].flat()[0], b.image_batches()[0].flat()[0]);
}

TEST(Agreement, PerfectAndPartial) {
  EXPECT_DOUBLE_EQ(agreement({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(agreement({1, 2, 3, 4}, {1, 2, 0, 0}), 0.5);
  EXPECT_DOUBLE_EQ(agreement({}, {}), 1.0);
}

TEST(Agreement, LengthMismatchThrows) {
  EXPECT_THROW(agreement({1}, {1, 2}), tasd::Error);
}

TEST(Predict, UnmodifiedModelAgreesWithItself) {
  Model m = make_resnet(18, tiny());
  const EvalSet eval = EvalSet::images(8, 8, 3, 3);
  const auto ref = predict(m, eval);
  EXPECT_DOUBLE_EQ(top1_agreement(m, eval, ref), 1.0);
}

TEST(Predict, WrongInputKindThrows) {
  Model m = make_resnet(18, tiny());
  const EvalSet tokens = EvalSet::tokens(2, 16, 4, 4);
  EXPECT_THROW(predict(m, tokens), tasd::Error);
}

TEST(Predict, MildTasdKeepsHighAgreement) {
  Model m = make_resnet(18, tiny());
  const EvalSet eval = EvalSet::images(16, 8, 3, 5);
  const auto ref = predict(m, eval);
  // A lossless-ish two-term series on dense weights: 4:8+4:8 keeps all.
  for (auto* l : m.gemm_layers()) l->set_tasd_w(TasdConfig::parse("4:8+4:8"));
  EXPECT_DOUBLE_EQ(top1_agreement(m, eval, ref), 1.0);
}

TEST(Predict, AggressiveTasdDegradesAgreement) {
  Model m = make_resnet(18, tiny());
  const EvalSet eval = EvalSet::images(16, 8, 3, 6);
  const auto ref = predict(m, eval);
  for (auto* l : m.gemm_layers()) l->set_tasd_w(TasdConfig::parse("1:16"));
  // Keeping 1/16 of dense weights should break most predictions.
  EXPECT_LT(top1_agreement(m, eval, ref), 0.9);
}

}  // namespace
}  // namespace tasd::dnn
