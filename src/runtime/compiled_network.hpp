// Compile-once / execute-many runtime sessions — the deployment story of
// the paper's real-system experiment (§5.5, Fig. 16) as an explicit
// artifact, in the spirit of TensorRT engines and DeepSparse compiled
// pipelines: TASDER picks per-layer series offline, rt::compile() binds
// them into an immutable CompiledNetwork, and an inference runtime
// executes that artifact repeatedly.
//
// The artifact owns, per layer, the materialized weight, the bound kernel
// (dense, or a TasdSeriesGemm over the layer's DecompositionPlan) and the
// execution policy / thread-pool binding. Plans are prewarmed through the
// process-wide PlanCache exactly once, at compile time: run(), run_batch(),
// measure() and serving_throughput() never decompose anything.
//
// Contract (see DESIGN.md § Compile-once / execute-many):
//  * Immutability — a CompiledNetwork has no mutating methods; every
//    execution of the same artifact sees the same plans and weights.
//  * Bit-exactness — run()/run_batch() are the same kernels the free
//    execution paths use (TasdSeriesGemm::multiply / multiply_batch,
//    dense_gemm / dense_gemm_batch), so outputs are bit-identical to those
//    paths under the artifact's resolved policy() at every thread count.
//    Kernel *selection* ("auto" → AVX2 vs scalar) picks a rounding family
//    (see docs/kernels.md); within a family results never vary.
//  * Plan prewarm — compile() performs at most one decomposition per
//    configured layer (zero when the PlanCache already holds the plan);
//    executing the artifact performs zero additional decompositions.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/plan_cache.hpp"
#include "dnn/layer_binding.hpp"
#include "dnn/workloads.hpp"
#include "runtime/autotune.hpp"
#include "runtime/nm_gemm.hpp"

namespace tasd::rt {

/// Measurement knobs shared by every timed execution surface (the
/// engine-style per-layer measurement, the serving sweep, and compile
/// itself). Previously duplicated across EngineOptions / ServingOptions.
struct MeasureOptions {
  /// Timing repetitions; the minimum is reported.
  int repeats = 3;
  std::uint64_t data_seed = 99;
  /// Kernel parallelism. 0 = the process default (TASD_NUM_THREADS, or
  /// hardware concurrency when unset); any other value builds a dedicated
  /// pool of that size, owned by the artifact. Timings change with the
  /// thread count, kernel *results* never do.
  std::size_t num_threads = 0;
  /// Reuse decompositions from the process-wide PlanCache: repeated
  /// compiles of the same weights (TASDER sweeps, bench reruns) perform
  /// zero additional decompositions.
  bool use_plan_cache = true;
};

/// Measured timings of one layer.
struct LayerTiming {
  std::string name;
  Index m = 0, k = 0, n = 0;
  double dense_ms = 0.0;
  double tasd_ms = 0.0;              ///< 0 when no series configured
  std::optional<TasdConfig> config;
  double kept_nnz_fraction = 0.0;    ///< stored values / total positions

  /// Best available time for this layer. A deployment engineer who
  /// measures both engines keeps the dense kernel when the TASD series
  /// turns out slower, so a configured layer contributes the minimum of
  /// the two timings, never a slower-than-dense TASD time.
  [[nodiscard]] double best_ms() const {
    return config ? std::min(tasd_ms, dense_ms) : dense_ms;
  }

  /// Wall-clock saved by converting this layer (dense_ms - best_ms():
  /// zero for unconfigured or slower-than-dense layers, never negative).
  [[nodiscard]] double conversion_savings_ms() const {
    return dense_ms - best_ms();
  }
};

/// Compose total network latency with the first `num_converted` layers
/// (by the given order) using their best_ms() — a converted layer keeps
/// the dense kernel when TASD measured slower — and the rest dense.
/// `order` holds indices into `timings`. With the conversion_order()
/// ranking, latency is non-increasing in num_converted.
double network_latency_ms(const std::vector<LayerTiming>& timings,
                          const std::vector<std::size_t>& order,
                          std::size_t num_converted);

/// Order layers by descending wall-clock saved (conversion_savings_ms):
/// the order in which a deployment engineer would convert layers.
/// Layers that are not convertible (no config) or would lose time
/// (tasd_ms >= dense_ms) save exactly zero and therefore rank after
/// every layer with a real saving — never ahead of them.
std::vector<std::size_t> conversion_order(
    const std::vector<LayerTiming>& timings);

/// The shrunk measurement width measure() uses for a layer with `n`
/// full-scale positions under a given n_divisor: rounded division with
/// a floor of min(n, n_divisor - 1) — monotone in n, never zero (see
/// CompileOptions::n_divisor). Shared with compile_and_measure
/// (runtime/pipelined_executor.hpp) so both measurement paths shrink
/// identically.
Index measured_n(Index n, Index n_divisor);

/// Serving throughput of a whole network at one batch size: the batch
/// latency is the sum of per-layer batched kernel times (layer-serial,
/// like network_latency_ms), and queries/sec follows directly.
struct ServingThroughput {
  std::size_t batch_size = 0;
  double dense_ms = 0.0;   ///< whole-net batch latency, dense kernels
  double tasd_ms = 0.0;    ///< same with configured layers on TASD batch
  double dense_qps = 0.0;  ///< batch_size / dense seconds
  double tasd_qps = 0.0;   ///< batch_size / TASD seconds
};

/// How compile() binds each layer's kernels.
enum class KernelPolicy {
  /// One network-wide binding from the kernel-name options below
  /// ("auto" → GemmDispatch::best_*()). Free; no measurement.
  kStatic,
  /// Micro-bench every registered candidate per layer on the compiling
  /// host and bind the per-layer winner, recording a TuningResult on the
  /// artifact (runtime/autotune.hpp). Costs repeats x candidates x
  /// layers timed kernel runs at compile time.
  kAutotune,
};

/// Everything fixed at compile time: measurement knobs, the measurement
/// shape shrink, the serving query width, and kernel selection.
struct CompileOptions {
  MeasureOptions measure;
  /// measure() shrinks every layer's N (positions) by this factor so
  /// per-layer measurements finish quickly; speed-up ratios are
  /// unaffected because both kernels scale linearly in N. The division
  /// rounds to nearest with a floor of min(n, n_divisor - 1), so layers
  /// with fewer than n_divisor positions are not shrunk at all and the
  /// measured N is monotone in the layer's N — truncating tiny layers to
  /// n=1 would distort the dense/TASD ratio Fig. 16 depends on.
  Index n_divisor = 4;
  /// Right-hand-side columns of one serving query (1 = GEMV-style
  /// serving, the latency-bound case batching amortizes).
  Index query_cols = 1;
  /// Kernel selection by registry name. "auto" (the default) resolves at
  /// compile() time through GemmDispatch::best_*() — the AVX2/FMA kernel
  /// when runtime detection registered it, the scalar tiled kernel
  /// otherwise — and the artifact's policy() reports the resolved name.
  /// Empty = the GemmDispatch registry defaults (always scalar).
  std::string dense_kernel = "auto";
  std::string nm_kernel = "auto";
  std::string dense_batch_kernel = "auto";
  std::string nm_batch_kernel = "auto";
  /// kAutotune measures candidates per layer and overrides the
  /// network-wide names above with each layer's winner (the names still
  /// bind measure()'s dense-vs-TASD comparison and the tuning fallback).
  KernelPolicy kernel_policy = KernelPolicy::kStatic;
  /// Batch-slot tuning workload: this many query_cols-wide right-hand
  /// sides per timed batch call. Match it to the serving batch size the
  /// artifact will see; 16 is the knee of the batching curve in
  /// BENCH_serving.json.
  std::size_t autotune_batch_hint = 16;
  /// Opt-in activation guard: run()/run_batch() reject NaN/Inf inputs
  /// with a tasd::Error (kInvalidArgument) naming the offending batch
  /// item, instead of silently producing garbage. Costs one pass over
  /// each input; off by default for trusted callers.
  bool validate_inputs = false;
};

class CompiledNetwork;

namespace detail {

/// One layer the way the artifact loader (src/artifact/) reconstructs
/// it: weight plus an already-built DecompositionPlan instead of a
/// decomposition request. `plan` null means dense (config must be
/// nullopt) or, on the compile() path, "decompose per CompileOptions".
struct PreboundLayer {
  std::string name;
  Index positions = 0;
  MatrixF weight;
  std::optional<TasdConfig> config;
  std::shared_ptr<const DecompositionPlan> plan;
};

/// Assemble an artifact from layers whose plans may be prebuilt: a
/// layer carrying a plan binds it directly — zero decompositions — and
/// a configured layer without one decomposes exactly as compile() does.
/// Kernel names resolve through GemmDispatch at assembly time ("auto" →
/// best_*()), so a deserialized network re-binds the fastest kernels
/// registered on the *loading* host. This is the single constructor
/// path behind both rt::compile() and rt::load_artifact().
///
/// `restored` is the load path's deserialized TuningResult: when it
/// transfers to this host (signature match, kernels registered —
/// detail::apply_tuning) it rebinds the layers without re-measuring;
/// otherwise the static resolution stands, and opt.kernel_policy ==
/// kAutotune re-tunes from scratch exactly as a fresh compile would.
CompiledNetwork assemble_network(std::string name,
                                 std::vector<PreboundLayer> layers,
                                 const CompileOptions& opt,
                                 const TuningResult* restored = nullptr);

}  // namespace detail

/// An immutable executable artifact: per-layer bound kernels (dense or
/// TASD series), shared decomposition plans, and the execution policy.
/// Move-only; all methods are const.
class CompiledNetwork {
 public:
  /// One bound layer: the owned weight, the chosen series (if any), its
  /// shared plan, and the full-scale GEMM shape for measurement.
  struct BoundLayer {
    std::string name;
    Index m = 0, k = 0, n = 0;  ///< C(m x n) = W(m x k) * X(k x n)
    MatrixF weight;
    std::optional<TasdConfig> config;
    /// Shared, prewarmed decomposition; null for dense layers.
    std::shared_ptr<const DecompositionPlan> plan;
    /// Bound structured kernel; engaged exactly when config is.
    std::optional<TasdSeriesGemm> series;
    double kept_nnz_fraction = 0.0;  ///< stored values / total positions
    /// Per-layer kernel binding run()/run_batch() execute through: N:M
    /// slot names when `series` is bound, dense slot names otherwise.
    /// Initialized to the network-wide resolved names; kAutotune and a
    /// restored artifact tuning rebind them per layer.
    std::string kernel;
    std::string batch_kernel;
  };

  CompiledNetwork(CompiledNetwork&&) = default;
  CompiledNetwork& operator=(CompiledNetwork&&) = default;
  CompiledNetwork(const CompiledNetwork&) = delete;
  CompiledNetwork& operator=(const CompiledNetwork&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t layer_count() const { return layers_.size(); }
  [[nodiscard]] const BoundLayer& layer(std::size_t i) const;
  [[nodiscard]] const CompileOptions& options() const { return opt_; }

  /// Layers with a bound TASD series.
  [[nodiscard]] std::size_t configured_count() const;

  /// Compressed plan footprint in bytes across configured layers — the
  /// per-artifact memory a serving process holds resident.
  [[nodiscard]] Index plan_bytes() const;

  /// Honest full footprint of everything the artifact store serializes
  /// for this network: weight bytes + compressed term buffers
  /// (plan_bytes) + per-plan metadata (shape, config patterns, quality
  /// stats). plan_bytes() alone understates what a replica must hold
  /// (and what save_artifact writes) because the weights dominate it.
  [[nodiscard]] Index artifact_bytes() const;

  /// Check one right-hand side against layer(layer_index)'s contract:
  /// the row count always, and value finiteness when the artifact was
  /// compiled with validate_inputs. Throws tasd::Error(kInvalidArgument)
  /// naming the layer (and `item`, when not npos — the batch position
  /// the serving path reports). run()/run_batch() apply the same checks;
  /// this entry point lets a batching front-end validate per request so
  /// one poisoned input fails that request instead of its whole batch.
  void validate_input(std::size_t layer_index, const MatrixF& input,
                      std::size_t item = static_cast<std::size_t>(-1)) const;

  /// Execute one layer on a dense right-hand side through its bound
  /// kernel: the TASD series (TasdSeriesGemm::multiply) when configured,
  /// the dense kernel otherwise. Bit-identical to those paths at every
  /// thread count. `input` must have layer(i).k rows.
  [[nodiscard]] MatrixF run(std::size_t layer_index,
                            const MatrixF& input) const;

  /// Execute one layer on a batch of right-hand sides (ragged widths
  /// allowed) through its bound batch kernel, sharing the layer's one
  /// plan across every item. Bit-identical to looping run() over the
  /// items, at every thread count and batch size.
  [[nodiscard]] std::vector<MatrixF> run_batch(
      std::size_t layer_index, std::span<const MatrixF> inputs) const;

  /// True when the artifact's layers form an executable chain: every
  /// layer's reduction dimension equals the previous layer's output
  /// dimension (layer(L).k == layer(L-1).m), so run_network() is defined.
  /// Trivially true for empty and single-layer artifacts.
  [[nodiscard]] bool is_chain() const;

  /// Execute the whole network on one input: feed `input` through layer
  /// 0, its output through layer 1, and so on — the strictly sequential
  /// whole-network forward. Requires is_chain(). Bit-identical to calling
  /// run() layer by layer (it is exactly that loop).
  [[nodiscard]] MatrixF run_network(const MatrixF& input) const;

  /// Execute the whole network on a batch of inputs (ragged widths
  /// allowed), layer-major with a full barrier per layer: every item
  /// finishes layer L (one run_batch call) before any item starts layer
  /// L+1. This is the sequential baseline the PipelinedExecutor
  /// (runtime/pipelined_executor.hpp) overlaps; outputs are bit-identical
  /// to looping run_network() per item at every thread count (the batch
  /// kernels' contract).
  [[nodiscard]] std::vector<MatrixF> run_network_batch(
      std::span<const MatrixF> inputs) const;

  /// Measure every layer (dense kernel, and the TASD series where bound)
  /// at the compile-time n_divisor shrink: the Fig. 16 per-layer report.
  /// Feed the result to conversion_order() / network_latency_ms().
  [[nodiscard]] std::vector<LayerTiming> measure() const;

  /// Measure dense vs TASD serving throughput (queries/sec) at each
  /// batch size, query_cols columns per query. One entry per batch size,
  /// in order. Every batch size reuses the prewarmed plans.
  [[nodiscard]] std::vector<ServingThroughput> serving_throughput(
      const std::vector<std::size_t>& batch_sizes = {1, 4, 16, 64}) const;

  /// The network-wide execution policy (the artifact's pool binding and
  /// resolved kernel-name options) — what measure() and the dense-vs-
  /// TASD comparison paths run under. run()/run_batch() execute through
  /// layer_policy(), which overlays the per-layer binding.
  [[nodiscard]] ExecPolicy policy() const;

  /// policy() with layer i's own kernel/batch_kernel binding substituted
  /// into the slot pair the layer executes (N:M when configured, dense
  /// otherwise) — the exact policy run()/run_batch() pass to the kernels.
  [[nodiscard]] ExecPolicy layer_policy(std::size_t i) const;

  /// The per-layer tuning record when this artifact was autotuned (at
  /// compile, or restored from a saved artifact); nullopt for static
  /// bindings.
  [[nodiscard]] const std::optional<TuningResult>& tuning() const {
    return tuning_;
  }

 private:
  friend CompiledNetwork detail::assemble_network(
      std::string name, std::vector<detail::PreboundLayer> layers,
      const CompileOptions& opt, const TuningResult* restored);
  friend TuningResult detail::run_autotune(CompiledNetwork& net);
  friend bool detail::apply_tuning(CompiledNetwork& net,
                                   const TuningResult& tuning);
  CompiledNetwork() = default;

  std::string name_;
  CompileOptions opt_;
  std::vector<BoundLayer> layers_;
  std::optional<TuningResult> tuning_;
  /// Dedicated pool when opt_.measure.num_threads != 0 (unique_ptr so
  /// the ExecPolicy pool pointer survives moves of the artifact).
  std::unique_ptr<ThreadPool> pool_;
};

/// Compile a full-scale workload under per-layer configs (entries align
/// with net.layers; nullopt = dense) into an executable artifact,
/// prewarming every configured layer's plan exactly once.
CompiledNetwork compile(const dnn::NetworkWorkload& net,
                        const std::vector<std::optional<TasdConfig>>& configs,
                        const CompileOptions& opt = {});

/// Compile explicit layer bindings (e.g. dnn::bind_layers of a model the
/// TASDER facade optimized — see tasder::compile).
CompiledNetwork compile(std::string name,
                        std::vector<dnn::LayerBinding> layers,
                        const CompileOptions& opt = {});

}  // namespace tasd::rt
