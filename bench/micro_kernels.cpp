// Kernel microbenchmarks: dense vs N:M-compressed vs TASD-series GEMM
// across the parallel execution layer's thread counts AND the registered
// kernel implementations (scalar tiled vs AVX2/FMA side by side), plus
// decomposition and plan-cache throughput.
//
// Emits BENCH_kernels.json (schema tasd-bench-kernels-v3; see
// docs/reproducing.md). Every parallel measurement is checked bit-exact
// against the serial result of the *same* implementation before it is
// recorded — a wrong-but-fast kernel fails loudly here. The AVX2 rows
// additionally record speedup_vs_scalar: their win over the scalar
// implementation at the same thread count (the acceptance number of the
// SIMD backend).
//
// Usage: micro_kernels [output.json] [--quick]
#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/cpu_features.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/decompose.hpp"
#include "core/plan_cache.hpp"
#include "runtime/dense_gemm.hpp"
#include "runtime/nm_gemm.hpp"
#include "tensor/generator.hpp"

namespace {

using namespace tasd;

struct Entry {
  std::string kernel;  ///< operation family: dense_gemm / nm_gemm / ...
  std::string impl;    ///< GemmDispatch kernel name executing it
  Index m = 0, k = 0, n = 0;
  std::string config;
  double sparsity = 0.0;
  std::size_t threads = 1;
  double ms = 0.0;
  double gops = 0.0;
  double speedup_vs_serial = 1.0;
  double speedup_vs_scalar = 1.0;  ///< same op/shape/threads, scalar impl
  bool bit_exact = true;
};

/// Run `make_result` at every thread count, timing it and checking the
/// output bit-exact against the serial (1-thread) result of the same
/// implementation. `scalar_ms` maps threads -> the scalar impl's time for
/// this op/shape (filled by the scalar sweep, consumed by SIMD sweeps).
void sweep(const std::string& kernel, const std::string& impl, Index m,
           Index k, Index n, const std::string& config, double sparsity,
           double macs, int repeats,
           const std::vector<std::size_t>& thread_counts,
           const std::function<MatrixF(rt::ExecPolicy&)>& make_result,
           std::map<std::size_t, double>* scalar_ms,
           std::vector<Entry>& out) {
  const bool is_scalar_baseline = scalar_ms != nullptr && scalar_ms->empty();
  double serial_ms = 0.0;
  MatrixF serial_result;
  for (std::size_t threads : thread_counts) {
    rt::ThreadPool pool(threads);
    rt::ExecPolicy policy;
    policy.pool = &pool;
    MatrixF result = make_result(policy);
    const double ms =
        time_ms_min(repeats, [&] { result = make_result(policy); });
    Entry e{kernel, impl, m,  k,  n,   config, sparsity, threads,
            ms,     macs / (ms * 1e6),  // 1e9 ops/s from ms
            1.0,    1.0, true};
    if (threads == thread_counts.front()) {
      serial_ms = ms;
      serial_result = std::move(result);
    } else {
      e.speedup_vs_serial = serial_ms / ms;
      e.bit_exact = (result == serial_result);
    }
    if (scalar_ms != nullptr) {
      if (is_scalar_baseline)
        (*scalar_ms)[threads] = ms;
      else if (auto it = scalar_ms->find(threads); it != scalar_ms->end())
        e.speedup_vs_scalar = it->second / ms;
    }
    std::fprintf(stderr,
                 "%-10s %-16s %4zux%-4zux%-4zu %-8s t=%zu  %8.3f ms"
                 "  %5.2fx scalar%s\n",
                 kernel.c_str(), impl.c_str(), static_cast<std::size_t>(m),
                 static_cast<std::size_t>(k), static_cast<std::size_t>(n),
                 config.empty() ? "-" : config.c_str(), threads, e.ms,
                 e.speedup_vs_scalar,
                 e.bit_exact ? "" : "  ** NOT BIT-EXACT **");
    out.push_back(std::move(e));
  }
}

void write_json(const std::string& path, const std::vector<Entry>& entries) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::perror("micro_kernels: cannot open output");
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": \"tasd-bench-kernels-v3\",\n");
  std::fprintf(f, "  \"avx2_available\": %s,\n",
               avx2_available() ? "true" : "false");
  std::fprintf(f, "  \"entries\": [\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::fprintf(
        f,
        "    {\"kernel\": \"%s\", \"impl\": \"%s\", \"m\": %zu, \"k\": %zu, "
        "\"n\": %zu, \"config\": \"%s\", \"sparsity\": %.6f, "
        "\"threads\": %zu, \"ms\": %.6f, \"gops\": %.6f, "
        "\"speedup_vs_serial\": %.6f, \"speedup_vs_scalar\": %.6f, "
        "\"bit_exact\": %s}%s\n",
        e.kernel.c_str(), e.impl.c_str(), static_cast<std::size_t>(e.m),
        static_cast<std::size_t>(e.k), static_cast<std::size_t>(e.n),
        e.config.c_str(), e.sparsity, e.threads, e.ms, e.gops,
        e.speedup_vs_serial, e.speedup_vs_scalar,
        e.bit_exact ? "true" : "false", i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

/// Kernel implementations to sweep for one slot: the scalar parallel
/// kernel first (it seeds the speedup_vs_scalar baseline), then the AVX2
/// kernel when the registry has it.
std::vector<std::string> impls_for(const std::vector<std::string>& registered,
                                   const std::string& scalar,
                                   const std::string& simd) {
  std::vector<std::string> impls{scalar};
  if (std::find(registered.begin(), registered.end(), simd) !=
      registered.end())
    impls.push_back(simd);
  return impls;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_kernels.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else {
      out_path = arg;
    }
  }

  // Minimum-of-repeats absorbs scheduler jitter; 5 keeps the scalar/AVX2
  // per-thread-count comparisons stable even on a loaded single-core box.
  const int repeats = quick ? 1 : 5;
  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  const std::vector<Index> gemm_sizes =
      quick ? std::vector<Index>{128, 256} : std::vector<Index>{256, 512, 1024};

  auto& dispatch = rt::GemmDispatch::instance();
  const auto dense_impls =
      impls_for(dispatch.dense_kernels(), "tiled-parallel", "dense-avx2");
  const auto nm_impls =
      impls_for(dispatch.nm_kernels(), "row-parallel", "nm-avx2");

  std::vector<Entry> entries;
  Rng rng(9001);

  // Dense GEMM (every MAC executed), scalar vs AVX2.
  for (Index n : gemm_sizes) {
    const MatrixF a = random_dense(n, n, Dist::kNormalStd1, rng);
    const MatrixF b = random_dense(n, n, Dist::kNormalStd1, rng);
    std::map<std::size_t, double> scalar_ms;
    for (const auto& impl : dense_impls)
      sweep("dense_gemm", impl, n, n, n, "", 0.0,
            2.0 * static_cast<double>(n) * n * n, repeats, thread_counts,
            [&](rt::ExecPolicy& p) {
              p.dense_kernel = impl;
              return rt::dense_gemm(a, b, p);
            },
            &scalar_ms, entries);
  }

  // 2:4-compressed GEMM over a 50 %-sparse operand, scalar vs AVX2.
  for (Index n : gemm_sizes) {
    const MatrixF dense = random_dense(n, n, Dist::kNormalStd1, rng);
    const auto d = decompose(dense, TasdConfig::parse("2:4"));
    const sparse::NMSparseMatrix a = d.terms[0].compressed();
    const MatrixF b = random_dense(n, n, Dist::kNormalStd1, rng);
    std::map<std::size_t, double> scalar_ms;
    for (const auto& impl : nm_impls)
      sweep("nm_gemm", impl, n, n, n, "2:4", 0.5,
            2.0 * static_cast<double>(a.nnz()) * n, repeats, thread_counts,
            [&](rt::ExecPolicy& p) {
              p.nm_kernel = impl;
              return rt::nm_gemm(a, b, p);
            },
            &scalar_ms, entries);
  }

  // TASD-series GEMM (4:8+1:8) over a 90 %-sparse operand, executed from
  // a cached DecompositionPlan exactly the way the engine runs it; the
  // series' term loop routes through the selected N:M kernel.
  for (Index n : gemm_sizes) {
    const MatrixF dense =
        random_unstructured(n, n, 0.1, Dist::kNormalStd1, rng);
    const auto plan =
        plan_cache().get_or_build(dense, TasdConfig::parse("4:8+1:8"));
    const rt::TasdSeriesGemm series(plan);
    const MatrixF b = random_dense(n, n, Dist::kNormalStd1, rng);
    std::map<std::size_t, double> scalar_ms;
    for (const auto& impl : nm_impls)
      sweep("tasd_gemm", impl, n, n, n, "4:8+1:8", 0.9,
            2.0 * static_cast<double>(series.nnz()) * n, repeats,
            thread_counts,
            [&](rt::ExecPolicy& p) {
              p.nm_kernel = impl;
              return series.multiply(b, p);
            },
            &scalar_ms, entries);
  }

  // Decomposition throughput: cold build_plan vs plan-cache hit.
  {
    const Index sz = quick ? 256 : 1024;
    const auto cfg = TasdConfig::parse("4:8+1:8");
    const MatrixF m =
        random_unstructured(sz, sz, 0.3, Dist::kNormalStd1, rng);
    const double cold_ms = time_ms_min(repeats, [&] {
      const auto p = build_plan(m, cfg);
      (void)p;
    });
    entries.push_back({"decompose_cold", "-", sz, sz, 0, cfg.str(), 0.7, 1,
                       cold_ms, 0.0, 1.0, 1.0, true});
    plan_cache().get_or_build(m, cfg);  // warm
    const double hit_ms = time_ms_min(repeats, [&] {
      const auto p = plan_cache().get_or_build(m, cfg);
      (void)p;
    });
    entries.push_back({"decompose_cached", "-", sz, sz, 0, cfg.str(), 0.7, 1,
                       hit_ms, 0.0, cold_ms / std::max(hit_ms, 1e-9), 1.0,
                       true});
  }

  write_json(out_path, entries);
  const bool all_exact =
      std::all_of(entries.begin(), entries.end(),
                  [](const Entry& e) { return e.bit_exact; });
  std::fprintf(stderr, "wrote %s (%zu entries)%s\n", out_path.c_str(),
               entries.size(), all_exact ? "" : "  ** EXACTNESS FAILURES **");
  return all_exact ? 0 : 1;
}
