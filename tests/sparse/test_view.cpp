#include "sparse/view.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/generator.hpp"

namespace tasd::sparse {
namespace {

TEST(NmView, KeepsLargestMagnitudePerBlock) {
  MatrixF m(1, 4, {1.0F, -3.0F, 2.0F, 0.5F});
  const MatrixF v = nm_view(m, NMPattern(2, 4));
  EXPECT_EQ(v(0, 0), 0.0F);
  EXPECT_EQ(v(0, 1), -3.0F);  // |−3| largest
  EXPECT_EQ(v(0, 2), 2.0F);
  EXPECT_EQ(v(0, 3), 0.0F);
}

TEST(NmView, TieBreaksTowardLowerIndex) {
  MatrixF m(1, 4, {1.0F, 1.0F, 1.0F, 1.0F});
  const MatrixF v = nm_view(m, NMPattern(2, 4));
  EXPECT_EQ(v(0, 0), 1.0F);
  EXPECT_EQ(v(0, 1), 1.0F);
  EXPECT_EQ(v(0, 2), 0.0F);
  EXPECT_EQ(v(0, 3), 0.0F);
}

TEST(NmView, AlreadyConformingIsIdentity) {
  Rng rng(41);
  const MatrixF m = random_nm_structured(4, 16, 2, 4, Dist::kNormalStd1, rng);
  EXPECT_EQ(nm_view(m, NMPattern(2, 4)), m);
}

TEST(NmView, ResultAlwaysSatisfiesPattern) {
  Rng rng(42);
  for (double density : {0.2, 0.5, 0.9}) {
    const MatrixF m =
        random_unstructured(8, 32, density, Dist::kNormalStd1, rng);
    for (int n = 0; n <= 4; ++n) {
      EXPECT_TRUE(satisfies(nm_view(m, NMPattern(n, 4)), NMPattern(n, 4)))
          << "density " << density << " pattern " << n << ":4";
    }
  }
}

TEST(SplitNm, ViewPlusResidualIsExact) {
  Rng rng(43);
  const MatrixF m = random_unstructured(8, 24, 0.8, Dist::kNormalStd1, rng);
  const auto split = split_nm(m, NMPattern(1, 4));
  MatrixF sum = split.view;
  sum += split.residual;
  EXPECT_EQ(sum, m);  // exact: elements are moved, not recomputed
}

TEST(SplitNm, ViewAndResidualAreDisjoint) {
  Rng rng(44);
  const MatrixF m = random_unstructured(6, 16, 0.9, Dist::kNormalStd1, rng);
  const auto split = split_nm(m, NMPattern(2, 4));
  auto fv = split.view.flat();
  auto fr = split.residual.flat();
  for (Index i = 0; i < fv.size(); ++i)
    EXPECT_FALSE(fv[i] != 0.0F && fr[i] != 0.0F)
        << "element " << i << " present in both view and residual";
}

TEST(SplitNm, ZeroPatternDropsEverything) {
  Rng rng(45);
  const MatrixF m = random_dense(4, 8, Dist::kNormalStd1, rng);
  const auto split = split_nm(m, NMPattern(0, 4));
  EXPECT_EQ(split.view.nnz(), 0u);
  EXPECT_EQ(split.residual, m);
}

TEST(SplitNm, DensePatternKeepsEverything) {
  Rng rng(46);
  const MatrixF m = random_dense(4, 8, Dist::kNormalStd1, rng);
  const auto split = split_nm(m, NMPattern(4, 4));
  EXPECT_EQ(split.view, m);
  EXPECT_EQ(split.residual.nnz(), 0u);
}

TEST(SplitNm, RaggedTailBlock) {
  // 6 columns, M=4: tail block of 2, N=1 keeps the larger one.
  MatrixF m(1, 6, {0, 0, 0, 0, 2.0F, -5.0F});
  const auto split = split_nm(m, NMPattern(1, 4));
  EXPECT_EQ(split.view(0, 5), -5.0F);
  EXPECT_EQ(split.view(0, 4), 0.0F);
  EXPECT_EQ(split.residual(0, 4), 2.0F);
}

TEST(NmView, EmptyMatrix) {
  MatrixF m(0, 0);
  EXPECT_NO_THROW(nm_view(m, NMPattern(2, 4)));
}

}  // namespace
}  // namespace tasd::sparse
