#include "tasder/tasda.hpp"

#include "common/logging.hpp"
#include "tasder/util.hpp"

namespace tasd::tasder {

std::optional<TasdConfig> select_tasda_config(
    const std::vector<TasdConfig>& candidates, double sparsity, double alpha) {
  for (const auto& cfg : candidates) {
    if (cfg.approximated_sparsity() < sparsity + alpha) return cfg;
  }
  return std::nullopt;
}

namespace {

TasdaResult finalize(dnn::Model& model, const dnn::EvalSet& eval,
                     const std::vector<Index>& reference,
                     std::vector<TasdaLayerDecision> decisions,
                     std::string strategy) {
  TasdaResult r;
  r.decisions = std::move(decisions);
  r.strategy = std::move(strategy);
  r.achieved_agreement = dnn::top1_agreement(model, eval, reference);
  r.mac_fraction = model_slot_mac_fraction(model);
  return r;
}

}  // namespace

TasdaResult tasda_layer_wise(dnn::Model& model, const HwProfile& hw,
                             const dnn::EvalSet& calib,
                             const dnn::EvalSet& eval,
                             const std::vector<Index>& reference,
                             const TasdaOptions& opt) {
  // Profile the unmodified model on the calibration set.
  for (auto* l : model.gemm_layers()) l->set_tasd_a(std::nullopt);
  const auto stats = dnn::collect_calibration(model, calib);
  const auto candidates = hw.candidate_configs();

  std::vector<TasdaLayerDecision> decisions;
  for (const auto& st : stats) {
    TasdaLayerDecision d;
    d.layer_name = st.name;
    if (st.layer->allow_tasd_a()) {
      double sparsity;
      if (st.act_induces_sparsity) {
        sparsity = 1.0 - (opt.use_p99_density ? st.p99_density
                                              : st.mean_density);
        d.used_pseudo_density = false;
      } else {
        // GELU/Swish: no literal zeros; use magnitude-based
        // pseudo-density instead (paper §4.3).
        sparsity = 1.0 - st.mean_pseudo_density;
        d.used_pseudo_density = true;
      }
      d.act_sparsity_used = sparsity;
      d.config = select_tasda_config(candidates, sparsity, opt.alpha);
      if (d.config) st.layer->set_tasd_a(*d.config);
    }
    decisions.push_back(std::move(d));
  }
  return finalize(model, eval, reference, std::move(decisions),
                  "layer-wise alpha=" + std::to_string(opt.alpha));
}

TasdaResult tasda_layer_wise_auto(dnn::Model& model, const HwProfile& hw,
                                  const dnn::EvalSet& calib,
                                  const dnn::EvalSet& eval,
                                  const std::vector<Index>& reference,
                                  const TasdaOptions& opt) {
  // From aggressive to conservative; first to pass the quality rule wins.
  // Strongly negative alphas restrict decomposition to the layers with
  // the very sparsest activations — a graceful fallback for models whose
  // quality is sensitive to dynamic decomposition.
  const double alphas[] = {opt.alpha, opt.alpha / 2.0, 0.0,   -0.05, -0.10,
                           -0.20,     -0.30,           -0.40, -0.50};
  for (double alpha : alphas) {
    TasdaOptions o = opt;
    o.alpha = alpha;
    TasdaResult r = tasda_layer_wise(model, hw, calib, eval, reference, o);
    if (r.achieved_agreement >= opt.quality_threshold) return r;
    TASD_INFO("tasda auto: alpha " << alpha << " failed quality ("
                                   << r.achieved_agreement << ")");
  }
  // Give up: no TASD-A at all.
  for (auto* l : model.gemm_layers()) l->set_tasd_a(std::nullopt);
  return finalize(model, eval, reference, {}, "layer-wise (none valid)");
}

TasdaResult tasda_apply_uniform(dnn::Model& model, const TasdConfig& cfg,
                                const dnn::EvalSet& eval,
                                const std::vector<Index>& reference) {
  std::vector<TasdaLayerDecision> decisions;
  for (auto* l : model.gemm_layers()) {
    if (!l->allow_tasd_a()) continue;
    l->set_tasd_a(cfg);
    TasdaLayerDecision d;
    d.layer_name = l->name();
    d.config = cfg;
    decisions.push_back(std::move(d));
  }
  return finalize(model, eval, reference, std::move(decisions),
                  "network-wise " + cfg.str());
}

}  // namespace tasd::tasder
