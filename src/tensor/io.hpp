// Matrix serialization: CSV (interoperable, human-readable) and a raw
// binary format (fast, exact). Lets users bring their own pruned weights
// into the decomposition tools and export results for plotting.
//
// The io::ByteWriter / io::ByteReader helpers underneath the binary
// matrix format define every multi-byte field as explicit little-endian
// (byte-swapped on big-endian hosts, memcpy on little-endian ones) and
// turn every malformed input — short read, truncated file, size-overflow
// header — into a typed tasd::Error instead of UB or garbage data. The
// artifact store (src/artifact/) reuses the same helpers, so both on-disk
// formats share one byte-order and bounds-checking discipline.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "tensor/matrix.hpp"

namespace tasd::io {

static_assert(std::numeric_limits<float>::is_iec559 && sizeof(float) == 4,
              "binary formats store float32 as IEEE-754 bit patterns");
static_assert(std::numeric_limits<double>::is_iec559 && sizeof(double) == 8,
              "binary formats store float64 as IEEE-754 bit patterns");

/// Convert a host integer to/from the on-disk little-endian byte order.
/// No-op on little-endian hosts; a byte swap on big-endian ones — the
/// explicit byte-order guard both binary formats rely on.
template <typename T>
[[nodiscard]] constexpr T to_little_endian(T v) {
  static_assert(std::is_unsigned_v<T>);
  if constexpr (std::endian::native == std::endian::little) {
    return v;
  } else {
    T out = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
      out |= ((v >> (8 * i)) & T{0xFF}) << (8 * (sizeof(T) - 1 - i));
    return out;
  }
}
template <typename T>
[[nodiscard]] constexpr T from_little_endian(T v) {
  return to_little_endian(v);  // involution
}

/// Append-only builder of a little-endian byte stream. Variable-length
/// payloads can be padded to a power-of-two boundary with pad_to() so
/// fixed-width fields stay naturally aligned for mmap-style access.
class ByteWriter {
 public:
  void u32(std::uint32_t v) { append_int(v); }
  void u64(std::uint64_t v) { append_int(v); }
  void f32(float v) { append_int(std::bit_cast<std::uint32_t>(v)); }
  void f64(double v) { append_int(std::bit_cast<std::uint64_t>(v)); }

  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    buf_.insert(buf_.end(), p, p + size);
  }

  /// Bulk float32 array: one memcpy on little-endian hosts.
  void f32_array(std::span<const float> values) {
    if constexpr (std::endian::native == std::endian::little) {
      bytes(values.data(), values.size() * sizeof(float));
    } else {
      for (float v : values) f32(v);
    }
  }

  /// Bulk u64 array under the same byte-order rule.
  void u64_array(std::span<const std::uint64_t> values) {
    if constexpr (std::endian::native == std::endian::little) {
      bytes(values.data(), values.size() * sizeof(std::uint64_t));
    } else {
      for (std::uint64_t v : values) u64(v);
    }
  }

  /// Zero-pad to the next multiple of `alignment` (a power of two).
  void pad_to(std::size_t alignment) {
    while (buf_.size() % alignment != 0) buf_.push_back(0);
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const std::vector<unsigned char>& data() const { return buf_; }

 private:
  template <typename T>
  void append_int(T v) {
    const T le = to_little_endian(v);
    bytes(&le, sizeof(T));
  }

  std::vector<unsigned char> buf_;
};

/// Bounds-checked cursor over a little-endian byte span. Every over-read
/// throws tasd::Error(kInternal) naming `context` — a truncated or
/// corrupt input can never be silently read past its end.
class ByteReader {
 public:
  ByteReader(std::span<const unsigned char> data, std::string context)
      : data_(data), context_(std::move(context)) {}

  [[nodiscard]] std::uint32_t u32() { return read_int<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return read_int<std::uint64_t>(); }
  [[nodiscard]] float f32() {
    return std::bit_cast<float>(read_int<std::uint32_t>());
  }
  [[nodiscard]] double f64() {
    return std::bit_cast<double>(read_int<std::uint64_t>());
  }

  void bytes(void* out, std::size_t size) {
    require(size);
    std::memcpy(out, data_.data() + pos_, size);
    pos_ += size;
  }

  void f32_array(std::span<float> out) {
    if constexpr (std::endian::native == std::endian::little) {
      bytes(out.data(), out.size() * sizeof(float));
    } else {
      for (float& v : out) v = f32();
    }
  }

  void u64_array(std::span<std::uint64_t> out) {
    if constexpr (std::endian::native == std::endian::little) {
      bytes(out.data(), out.size() * sizeof(std::uint64_t));
    } else {
      for (std::uint64_t& v : out) v = u64();
    }
  }

  /// Skip the zero padding pad_to() wrote.
  void skip_pad(std::size_t alignment) {
    while (pos_ % alignment != 0) (void)read_int<std::uint8_t>();
  }

  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  template <typename T>
  [[nodiscard]] T read_int() {
    require(sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    if constexpr (sizeof(T) > 1) v = from_little_endian(v);
    return v;
  }

  void require(std::size_t size) const {
    if (remaining() < size)
      throw Error(Error::Code::kInternal,
                  context_ + ": truncated (need " + std::to_string(size) +
                      " bytes at offset " + std::to_string(pos_) + ", have " +
                      std::to_string(remaining()) + ")");
  }

  std::span<const unsigned char> data_;
  std::size_t pos_ = 0;
  std::string context_;
};

/// Read a whole file into memory. Throws tasd::Error(kInvalidArgument)
/// when the file cannot be opened and kInternal on a short read.
std::vector<unsigned char> read_file(const std::string& path);

/// Write bytes to a file, replacing any existing contents. Throws
/// tasd::Error(kInvalidArgument) on open failure, kInternal on a short
/// write.
void write_file(const std::string& path, std::span<const unsigned char> bytes);

}  // namespace tasd::io

namespace tasd {

/// Write `m` as CSV (one row per line, '%.9g' precision — lossless for
/// float32). Throws tasd::Error on I/O failure.
void save_matrix_csv(const MatrixF& m, const std::string& path);

/// Read a CSV matrix; every row must have the same column count.
MatrixF load_matrix_csv(const std::string& path);

/// Binary format: magic "TASDMAT1", u64 rows, u64 cols, float32 data
/// (little-endian, row-major). Exact round trip. load throws
/// kFailedPrecondition on a wrong magic and kInternal on truncation,
/// trailing bytes, or a size-overflow header.
void save_matrix_binary(const MatrixF& m, const std::string& path);
MatrixF load_matrix_binary(const std::string& path);

}  // namespace tasd
