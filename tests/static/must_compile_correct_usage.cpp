// Positive control for the negative-compile harness: fully annotated,
// fully correct locking. If THIS fails under -Wthread-safety -Werror,
// the harness (flags, include path, or sync.hpp itself) is broken and
// every must_not_compile result is meaningless.
#include "common/sync.hpp"

namespace {

class Queue {
 public:
  void push(int v) TASD_EXCLUDES(mu_) {
    {
      tasd::MutexLock lock(mu_);
      value_ = v;
      has_value_ = true;
    }
    cv_.notify_one();
  }

  int pop() TASD_EXCLUDES(mu_) {
    tasd::MutexLock lock(mu_);
    while (!has_value_) cv_.wait(mu_);
    has_value_ = false;
    return value_;
  }

  int peek_locked() const TASD_REQUIRES(mu_) { return value_; }

  int peek() const TASD_EXCLUDES(mu_) {
    tasd::MutexLock lock(mu_);
    return peek_locked();
  }

 private:
  mutable tasd::Mutex mu_;
  tasd::CondVar cv_;
  int value_ TASD_GUARDED_BY(mu_) = 0;
  bool has_value_ TASD_GUARDED_BY(mu_) = false;
};

}  // namespace

int probe() {
  Queue q;
  q.push(1);
  (void)q.peek();
  return q.pop();
}
