#include "runtime/engine.hpp"

#include <algorithm>
#include <functional>
#include <numeric>
#include <optional>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/plan_cache.hpp"
#include "runtime/dense_gemm.hpp"
#include "tensor/generator.hpp"

namespace tasd::rt {

std::vector<LayerTiming> measure_workload(
    const dnn::NetworkWorkload& net,
    const std::vector<std::optional<TasdConfig>>& configs,
    const EngineOptions& opt) {
  TASD_CHECK_MSG(configs.size() == net.layers.size(),
                 "config list must align with workload layers");
  Rng rng(opt.data_seed);
  std::vector<LayerTiming> out;
  out.reserve(net.layers.size());

  std::optional<ThreadPool> dedicated;
  if (opt.num_threads != 0) dedicated.emplace(opt.num_threads);
  ExecPolicy policy;
  policy.pool = dedicated ? &*dedicated : nullptr;

  for (std::size_t i = 0; i < net.layers.size(); ++i) {
    const auto& layer = net.layers[i];
    LayerTiming t;
    t.name = layer.name;
    t.m = layer.m;
    t.k = layer.k;
    // Rounded division with a uniform floor of min(layer.n, n_divisor-1):
    // layers with fewer than n_divisor positions keep their full N, the
    // measured N is monotone in layer.n (no cliff at layer.n ==
    // n_divisor), and above the floor region it is exactly proportional
    // to the true N, so cross-layer savings rankings are preserved.
    // Layers whose rounded quotient falls below the floor all measure at
    // the floor — the unavoidable cost of any floor, accepted because
    // clamping toward n=1 (the old max(1, n/div)) had the same plateau
    // at 1 *and* distorted the per-layer dense/TASD ratio there.
    TASD_CHECK_MSG(opt.n_divisor >= 1, "n_divisor must be >= 1");
    t.n = std::max<Index>(
        {Index{1}, (layer.n + opt.n_divisor / 2) / opt.n_divisor,
         std::min<Index>(layer.n, opt.n_divisor - 1)});
    t.config = configs[i];

    const MatrixF w = dnn::materialize_weight(layer);
    const MatrixF b = random_dense(t.k, t.n, Dist::kNormalStd1, rng);

    volatile float sink = 0.0F;  // defeat dead-code elimination
    t.dense_ms = time_ms_min(opt.repeats, [&] {
      const MatrixF c = dense_gemm(w, b, policy);
      sink = sink + c(0, 0);
    });

    if (t.config) {
      const TasdSeriesGemm series =
          opt.use_plan_cache
              ? TasdSeriesGemm(plan_cache().get_or_build(w, *t.config))
              : TasdSeriesGemm(
                    std::make_shared<const DecompositionPlan>(
                        build_plan(w, *t.config)));
      t.kept_nnz_fraction =
          static_cast<double>(series.nnz()) / static_cast<double>(w.size());
      t.tasd_ms = time_ms_min(opt.repeats, [&] {
        const MatrixF c = series.multiply(b, policy);
        sink = sink + c(0, 0);
      });
    }
    out.push_back(std::move(t));
  }
  return out;
}

double network_latency_ms(const std::vector<LayerTiming>& timings,
                          const std::vector<std::size_t>& order,
                          std::size_t num_converted) {
  TASD_CHECK_MSG(num_converted <= order.size(),
                 "num_converted exceeds layer count");
  std::vector<bool> converted(timings.size(), false);
  for (std::size_t i = 0; i < num_converted; ++i) converted[order[i]] = true;
  double total = 0.0;
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const auto& t = timings[i];
    // A converted layer keeps the faster of its two measured engines.
    total += converted[i] ? t.best_ms() : t.dense_ms;
  }
  return total;
}

std::vector<std::size_t> conversion_order(
    const std::vector<LayerTiming>& timings) {
  std::vector<std::size_t> order(timings.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // conversion_savings_ms() is zero for unconfigured layers and for
  // configured layers whose TASD series measured slower than dense, so
  // neither can rank ahead of a layer with a real saving (the old -1.0
  // sentinel let a layer *losing* up to 1 ms outrank unconfigured ones).
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double save_a = timings[a].conversion_savings_ms();
    const double save_b = timings[b].conversion_savings_ms();
    if (save_a != save_b) return save_a > save_b;
    return a < b;
  });
  return order;
}

std::vector<ServingThroughput> measure_serving_throughput(
    const dnn::NetworkWorkload& net,
    const std::vector<std::optional<TasdConfig>>& configs,
    const ServingOptions& opt) {
  TASD_CHECK_MSG(configs.size() == net.layers.size(),
                 "config list must align with workload layers");
  TASD_CHECK_MSG(opt.query_cols >= 1, "query_cols must be >= 1");

  std::optional<ThreadPool> dedicated;
  if (opt.num_threads != 0) dedicated.emplace(opt.num_threads);
  ExecPolicy policy;
  policy.pool = dedicated ? &*dedicated : nullptr;

  // Materialize weights and build each configured layer's decomposition
  // plan once; the same plan then serves every batch size and item.
  struct LayerExec {
    MatrixF w;
    std::optional<TasdSeriesGemm> series;
  };
  std::vector<LayerExec> layers;
  layers.reserve(net.layers.size());
  for (std::size_t i = 0; i < net.layers.size(); ++i) {
    LayerExec le;
    le.w = dnn::materialize_weight(net.layers[i]);
    if (configs[i]) {
      le.series.emplace(
          opt.use_plan_cache
              ? plan_cache().get_or_build(le.w, *configs[i])
              : std::make_shared<const DecompositionPlan>(
                    build_plan(le.w, *configs[i])));
    }
    layers.push_back(std::move(le));
  }

  std::vector<ServingThroughput> out;
  out.reserve(opt.batch_sizes.size());
  volatile float sink = 0.0F;  // defeat dead-code elimination
  for (const std::size_t batch : opt.batch_sizes) {
    TASD_CHECK_MSG(batch >= 1, "batch sizes must be >= 1");
    ServingThroughput r;
    r.batch_size = batch;
    Rng rng(opt.data_seed + batch);
    for (const auto& le : layers) {
      std::vector<MatrixF> bs;
      bs.reserve(batch);
      for (std::size_t q = 0; q < batch; ++q)
        bs.push_back(
            random_dense(le.w.cols(), opt.query_cols, Dist::kNormalStd1, rng));
      const double dense_ms = time_ms_min(opt.repeats, [&] {
        const auto cs = dense_gemm_batch(le.w, bs, policy);
        sink = sink + cs[0](0, 0);
      });
      r.dense_ms += dense_ms;
      if (le.series) {
        r.tasd_ms += time_ms_min(opt.repeats, [&] {
          const auto cs = le.series->multiply_batch(bs, policy);
          sink = sink + cs[0](0, 0);
        });
      } else {
        r.tasd_ms += dense_ms;
      }
    }
    const double queries = static_cast<double>(batch);
    r.dense_qps = r.dense_ms > 0.0 ? queries * 1e3 / r.dense_ms : 0.0;
    r.tasd_qps = r.tasd_ms > 0.0 ? queries * 1e3 / r.tasd_ms : 0.0;
    out.push_back(r);
  }
  return out;
}

}  // namespace tasd::rt
