// 4-D tensor in NCHW layout for the convolution substrate.
#pragma once

#include <vector>

#include "common/error.hpp"
#include "tensor/matrix.hpp"

namespace tasd {

/// Dense NCHW float tensor (batch, channels, height, width).
class Tensor4D {
 public:
  Tensor4D() = default;
  Tensor4D(Index n, Index c, Index h, Index w);

  [[nodiscard]] Index n() const { return n_; }
  [[nodiscard]] Index c() const { return c_; }
  [[nodiscard]] Index h() const { return h_; }
  [[nodiscard]] Index w() const { return w_; }
  [[nodiscard]] Index size() const { return data_.size(); }

  float& operator()(Index n, Index c, Index h, Index w) {
    return data_[((n * c_ + c) * h_ + h) * w_ + w];
  }
  const float& operator()(Index n, Index c, Index h, Index w) const {
    return data_[((n * c_ + c) * h_ + h) * w_ + w];
  }

  float& at(Index n, Index c, Index h, Index w);
  [[nodiscard]] const float& at(Index n, Index c, Index h, Index w) const;

  std::span<float> flat() { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const { return {data_.data(), data_.size()}; }

  /// Number of non-zero elements.
  [[nodiscard]] Index nnz() const;

  /// Fraction of zero elements.
  [[nodiscard]] double sparsity() const;

  /// Reinterpret one batch item as a (C, H*W) matrix copy.
  [[nodiscard]] MatrixF as_matrix(Index batch) const;

 private:
  Index n_ = 0, c_ = 0, h_ = 0, w_ = 0;
  std::vector<float> data_;
};

}  // namespace tasd
