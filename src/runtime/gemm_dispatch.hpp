// GemmDispatch: the kernel registry every GEMM path routes through.
//
// All dense and N:M-compressed CPU kernels register here by name; callers
// pick one through an ExecPolicy (or take the default). This is the seam
// future backends (batched, sharded, SIMD-specialized) plug into without
// touching call sites, and what lets the benches sweep kernels and thread
// counts uniformly.
//
// Built-in dense kernels:
//   "tiled-parallel"  row-parallel, j-tiled, 4-wide k-unrolled (default)
//   "tiled-serial"    the same arithmetic on one thread
//   "reference"       the tensor/gemm_ref correctness oracle
// Built-in N:M kernels:
//   "row-parallel"    row-parallel compressed traversal (default)
//   "serial"          the same arithmetic on one thread
// Built-in batch kernels (dense and N:M, serving path):
//   "batch-packed"    pack the batch into one wide RHS and partition
//                     (output-row, batch-column) tiles over the pool
//                     (default)
//   "batch-loop"      per-item serial loop of the single-RHS core
// AVX2/FMA kernels (registered only when tasd::avx2_available() — CPUID
// says AVX2+FMA, the OS saves YMM state, TASD_DISABLE_AVX2 unset; see
// runtime/kernels_avx2.hpp and docs/kernels.md):
//   "dense-avx2"        "nm-avx2"
//   "dense-batch-avx2"  "nm-batch-avx2"
// AVX-512 kernels (tasd::avx512_available() — CPUID F+BW, the OS saves
// ZMM/opmask state, TASD_DISABLE_AVX512 unset; runtime/kernels_avx512.hpp):
//   "dense-avx512"        "nm-avx512"
//   "dense-batch-avx512"  "nm-batch-avx512"
//
// Every kernel partitions work by output row (batch kernels also by
// batch column) with no shared float accumulation, so all of them
// produce bit-identical results at every thread count. Batch kernels
// additionally preserve each output element's MAC order exactly as the
// single-RHS kernels of the same family execute it, so a batched call is
// bit-identical to looping that single-RHS kernel over the batch. The
// scalar (mul+add) and FMA (AVX2 + AVX-512, one fused multiply-add per
// step) families round differently and agree to float tolerance, not
// bitwise; within the FMA family the two vector widths are bit-identical
// to each other. best_dense() / best_nm() / best_*_batch() name the
// statically-preferred registered kernel of each slot (avx512 > avx2 >
// scalar) so callers can auto-select per artifact (CompileOptions
// "auto"); per-layer autotuning (runtime/autotune.hpp) refines that
// choice by measurement.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "sparse/nm_matrix.hpp"
#include "tensor/matrix.hpp"

namespace tasd::rt {

/// How a GEMM call should execute: which pool and which kernels. The
/// defaults (null pool, empty names) mean "the process default pool and
/// the registry's default kernels".
struct ExecPolicy {
  ThreadPool* pool = nullptr;
  std::string dense_kernel;
  std::string nm_kernel;
  std::string dense_batch_kernel;
  std::string nm_batch_kernel;
};

/// Resolve the pool an ExecPolicy designates.
ThreadPool& resolve_pool(const ExecPolicy& policy);

/// A dense kernel accumulates C += A * B using the given pool.
using DenseKernel = std::function<void(const MatrixF& a, const MatrixF& b,
                                       MatrixF& c, ThreadPool& pool)>;

/// An N:M kernel accumulates C += A * B for a compressed A.
using NmKernel =
    std::function<void(const sparse::NMSparseMatrix& a, const MatrixF& b,
                       MatrixF& c, ThreadPool& pool)>;

/// A batched dense kernel accumulates cs[i] += A * bs[i] for every item
/// of a batch of right-hand sides (items may have ragged widths). The
/// contract every registered kernel must keep: output bits identical to
/// looping the single-RHS kernel over the items, at every thread count.
using DenseBatchKernel =
    std::function<void(const MatrixF& a, std::span<const MatrixF> bs,
                       std::span<MatrixF> cs, ThreadPool& pool)>;

/// A batched N:M kernel accumulates cs[i] += A * bs[i] for compressed A,
/// under the same bit-exactness contract.
using NmBatchKernel =
    std::function<void(const sparse::NMSparseMatrix& a,
                       std::span<const MatrixF> bs, std::span<MatrixF> cs,
                       ThreadPool& pool)>;

/// Thread-safe named registry of GEMM kernels.
class GemmDispatch {
 public:
  /// Process-wide registry, pre-populated with the built-ins.
  static GemmDispatch& instance();

  void register_dense(const std::string& name, DenseKernel kernel);
  void register_nm(const std::string& name, NmKernel kernel);
  void register_dense_batch(const std::string& name, DenseBatchKernel kernel);
  void register_nm_batch(const std::string& name, NmBatchKernel kernel);
  void set_default_dense(const std::string& name);
  void set_default_nm(const std::string& name);
  void set_default_dense_batch(const std::string& name);
  void set_default_nm_batch(const std::string& name);

  /// Registered kernel names, sorted.
  [[nodiscard]] std::vector<std::string> dense_kernels() const;
  [[nodiscard]] std::vector<std::string> nm_kernels() const;
  [[nodiscard]] std::vector<std::string> dense_batch_kernels() const;
  [[nodiscard]] std::vector<std::string> nm_batch_kernels() const;
  [[nodiscard]] std::string default_dense() const;
  [[nodiscard]] std::string default_nm() const;
  [[nodiscard]] std::string default_dense_batch() const;
  [[nodiscard]] std::string default_nm_batch() const;

  /// Auto-selection policy: the fastest registered kernel for each slot —
  /// the AVX2 kernel when runtime detection registered it, the (scalar)
  /// registry default otherwise. CompileOptions' "auto" kernel names
  /// resolve through these at rt::compile() time.
  [[nodiscard]] std::string best_dense() const;
  [[nodiscard]] std::string best_nm() const;
  [[nodiscard]] std::string best_dense_batch() const;
  [[nodiscard]] std::string best_nm_batch() const;

  /// Look up a kernel ("" = the default). Throws tasd::Error on unknown
  /// names.
  [[nodiscard]] DenseKernel dense(const std::string& name = {}) const;
  [[nodiscard]] NmKernel nm(const std::string& name = {}) const;
  [[nodiscard]] DenseBatchKernel dense_batch(const std::string& name = {}) const;
  [[nodiscard]] NmBatchKernel nm_batch(const std::string& name = {}) const;

 private:
  GemmDispatch();
  struct Impl;
  Impl* impl_;
};

// ------------------------------------------------------ row-range cores
// The serial units the kernels partition over; exposed so composite
// kernels (TASD series) and tests can drive exact row ranges.

/// Dense C += A*B restricted to output rows [row_begin, row_end):
/// j-tiled, 4-wide k-unrolled, every MAC executed (no zero skip).
void dense_gemm_rows(const MatrixF& a, const MatrixF& b, MatrixF& c,
                     Index row_begin, Index row_end);

/// Compressed N:M C += A*B restricted to output rows [row_begin,
/// row_end).
void nm_gemm_rows(const sparse::NMSparseMatrix& a, const MatrixF& b,
                  MatrixF& c, Index row_begin, Index row_end);

/// Dense C += A*B restricted to output rows [row_begin, row_end) and
/// output columns [col_begin, col_end). Per-element MAC order (k
/// ascending, 4-wide) is the same for every tile shape, so any disjoint
/// tiling of the output reproduces the full-range result bit-for-bit.
void dense_gemm_tile(const MatrixF& a, const MatrixF& b, MatrixF& c,
                     Index row_begin, Index row_end, Index col_begin,
                     Index col_end);

/// Compressed N:M C += A*B restricted to an (output-row, output-column)
/// tile, same bit-exactness property as dense_gemm_tile.
void nm_gemm_tile(const sparse::NMSparseMatrix& a, const MatrixF& b,
                  MatrixF& c, Index row_begin, Index row_end,
                  Index col_begin, Index col_end);

// Packed batch layout: items' columns laid side by side in one wide
// matrix, packed(r, off[i] + j) == item_i(r, j). Pack/unpack are exact
// copies, so callers that run many kernels over the same batch (e.g. a
// TASD series' term loop) can pack once, pass the packed pair through
// the batch kernels as a single-item batch, and unpack once.

/// Prefix sums of item widths; off.back() is the packed column count.
std::vector<Index> batch_offsets(std::span<const MatrixF> items);

/// Copy items (all with equal row counts) into one packed wide matrix.
MatrixF pack_batch(std::span<const MatrixF> items,
                   const std::vector<Index>& off);

/// Copy packed columns back out into the per-item matrices.
void unpack_batch(const MatrixF& packed, const std::vector<Index>& off,
                  std::span<MatrixF> items);

/// A packed-batch tile body: C += A*B restricted to output rows
/// [r0, r1) and output columns [c0, c1) of the packed pair.
using PackedTileFn = std::function<void(const MatrixF& b, MatrixF& c,
                                        Index r0, Index r1, Index c0,
                                        Index c1)>;

/// Shared scheduling body of the packed batch kernels: single-item
/// batches run the (row, batch-column) tile grid in place; larger
/// batches pack B and C once, run the grid over the packed pair, and
/// unpack. Exposed so SIMD backends reuse the exact grid — any tile core
/// whose per-element MAC order is independent of the column range keeps
/// the batched-equals-looped bit-exactness contract through this body.
void run_packed_batch(Index rows, std::span<const MatrixF> bs,
                      std::span<MatrixF> cs, ThreadPool& pool,
                      const PackedTileFn& tile);

}  // namespace tasd::rt
