#include "common/cpu_features.hpp"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace tasd {

#if defined(__x86_64__) || defined(__i386__)

namespace {

// XGETBV(0) without requiring -mxsave at compile time; only executed
// after CPUID confirms OSXSAVE.
unsigned long long read_xcr0() {
  unsigned int eax = 0, edx = 0;
  __asm__ volatile(".byte 0x0f, 0x01, 0xd0"  // xgetbv
                   : "=a"(eax), "=d"(edx)
                   : "c"(0));
  return (static_cast<unsigned long long>(edx) << 32) | eax;
}

// CPUID.7.0 feature bits; <cpuid.h> ships named constants for these on
// current toolchains but not on every one we must build with.
constexpr unsigned int kBitAvx512F = 1U << 16;   // EBX
constexpr unsigned int kBitAvx512Bw = 1U << 30;  // EBX
constexpr unsigned int kBitAvx512Vnni = 1U << 11;  // ECX

/// CPUID brand string (leaves 0x80000002-4), trimmed of the leading
/// spaces vendors pad it with; "unknown-x86" when the leaves are absent.
std::string brand_string() {
  unsigned int regs[4] = {0, 0, 0, 0};
  if (!__get_cpuid(0x80000000U, &regs[0], &regs[1], &regs[2], &regs[3]) ||
      regs[0] < 0x80000004U)
    return "unknown-x86";
  char brand[49] = {};
  for (unsigned int leaf = 0; leaf < 3; ++leaf) {
    __get_cpuid(0x80000002U + leaf, &regs[0], &regs[1], &regs[2], &regs[3]);
    std::memcpy(brand + 16 * leaf, regs, 16);
  }
  const char* p = brand;
  while (*p == ' ') ++p;
  return *p != '\0' ? std::string(p) : std::string("unknown-x86");
}

}  // namespace

CpuFeatures detect_cpu_features() {
  CpuFeatures f;
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return f;
  f.fma = (ecx & bit_FMA) != 0;
  const bool osxsave = (ecx & bit_OSXSAVE) != 0;
  const unsigned long long xcr0 = osxsave ? read_xcr0() : 0;
  // XCR0 bits 1 (SSE) and 2 (AVX): the OS context-switches YMM state.
  f.os_ymm = (xcr0 & 0x6) == 0x6;
  // AVX-512 additionally needs bits 5 (opmask), 6 (ZMM low 256) and
  // 7 (ZMM high 16 registers) — 0xE0 — on top of the YMM set.
  f.os_zmm = (xcr0 & 0xE6) == 0xE6;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    f.avx2 = (ebx & bit_AVX2) != 0;
    f.avx512f = (ebx & kBitAvx512F) != 0;
    f.avx512bw = (ebx & kBitAvx512Bw) != 0;
    f.avx512vnni = (ecx & kBitAvx512Vnni) != 0;
  }
  return f;
}

namespace {
std::string host_brand() { return brand_string(); }
}  // namespace

#else

CpuFeatures detect_cpu_features() { return {}; }

namespace {
std::string host_brand() { return "non-x86"; }
}  // namespace

#endif

namespace {

bool env_disables(const char* var) {
  const char* v = std::getenv(var);
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

}  // namespace

bool avx2_enabled(const CpuFeatures& features, bool disabled_by_env) {
  return features.avx2_usable() && !disabled_by_env;
}

bool avx2_disabled_by_env() { return env_disables("TASD_DISABLE_AVX2"); }

bool avx2_available() {
  static const bool available =
      avx2_enabled(detect_cpu_features(), avx2_disabled_by_env());
  return available;
}

bool avx512_enabled(const CpuFeatures& features, bool disabled_by_env) {
  return features.avx512_usable() && !disabled_by_env;
}

bool avx512_disabled_by_env() { return env_disables("TASD_DISABLE_AVX512"); }

bool avx512_available() {
  static const bool available =
      avx512_enabled(detect_cpu_features(), avx512_disabled_by_env());
  return available;
}

std::string cpu_signature() {
  if (const char* v = std::getenv("TASD_CPU_SIGNATURE");
      v != nullptr && *v != '\0')
    return v;
  // The env disables fold into the signature because they change the
  // candidate pool a tuning run measured over — an artifact tuned with
  // AVX-512 disabled must not restore onto the same CPU with it enabled.
  static const std::string brand = host_brand();
  std::string sig = brand;
  sig += "|avx2=";
  sig += avx2_available() ? '1' : '0';
  sig += ",avx512=";
  sig += avx512_available() ? '1' : '0';
  return sig;
}

}  // namespace tasd
