// Tests for the channel-permutation pre-pass inside workload TASDER.
#include <gtest/gtest.h>

#include "tasder/workload_opt.hpp"

namespace tasd::tasder {
namespace {

TEST(WorkloadPermutation, NeverLessAggressiveThanPlain) {
  // BERT keeps this test fast (7 distinct layers vs ResNet-50's 54).
  const auto net = dnn::bert_workload(true, 42);
  const auto hw = hw_profile_from(accel::ArchConfig::ttc_vegeta_m8());
  WorkloadOptOptions plain;
  WorkloadOptOptions perm;
  perm.use_channel_permutation = true;
  const auto e_plain = optimize_workload(net, hw, plain);
  const auto e_perm = optimize_workload(net, hw, perm);
  ASSERT_EQ(e_plain.size(), e_perm.size());
  for (std::size_t i = 0; i < e_plain.size(); ++i) {
    const double d_plain =
        e_plain[i].weight_cfg ? e_plain[i].weight_cfg->max_density() : 1.0;
    const double d_perm =
        e_perm[i].weight_cfg ? e_perm[i].weight_cfg->max_density() : 1.0;
    // Candidates are tried most-aggressive-first; the permutation can
    // only unlock earlier (sparser) candidates.
    EXPECT_LE(d_perm, d_plain + 1e-12) << e_plain[i].layer.name;
  }
}

TEST(WorkloadPermutation, UnlocksSparserSeriesSomewhere) {
  const auto net = dnn::bert_workload(true, 42);
  const auto hw = hw_profile_from(accel::ArchConfig::ttc_vegeta_m8());
  WorkloadOptOptions plain;
  WorkloadOptOptions perm;
  perm.use_channel_permutation = true;
  const auto e_plain = optimize_workload(net, hw, plain);
  const auto e_perm = optimize_workload(net, hw, perm);
  double plain_density = 0.0;
  double perm_density = 0.0;
  for (std::size_t i = 0; i < e_plain.size(); ++i) {
    plain_density +=
        e_plain[i].weight_cfg ? e_plain[i].weight_cfg->max_density() : 1.0;
    perm_density +=
        e_perm[i].weight_cfg ? e_perm[i].weight_cfg->max_density() : 1.0;
  }
  EXPECT_LT(perm_density, plain_density);
}

TEST(WorkloadPermutation, NoEffectOnTasdAWorkloads) {
  const auto net = dnn::resnet50_workload(false, 42);  // dense weights
  const auto hw = hw_profile_from(accel::ArchConfig::ttc_vegeta_m8());
  WorkloadOptOptions perm;
  perm.use_channel_permutation = true;
  const auto a = optimize_workload(net, hw, {});
  const auto b = optimize_workload(net, hw, perm);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].act_cfg.has_value(), b[i].act_cfg.has_value());
    if (a[i].act_cfg) EXPECT_EQ(a[i].act_cfg->str(), b[i].act_cfg->str());
  }
}

}  // namespace
}  // namespace tasd::tasder
