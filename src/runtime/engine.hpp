// Deprecated one-shot wrappers around the compile-once/execute-many
// session API (runtime/compiled_network.hpp).
//
// The wall-clock execution engine — the repository's stand-in for the
// paper's TensorRT-on-RTX3080 real-system experiment (§5.5, Fig. 16) —
// now lives in rt::CompiledNetwork: rt::compile() binds per-layer kernels
// and prewarms decomposition plans once, then measure() /
// serving_throughput() / run() execute the artifact repeatedly. The free
// functions below compile a throwaway artifact per call; they are kept
// for one PR for source compatibility and will be removed.
#pragma once

#include "runtime/compiled_network.hpp"

namespace tasd::rt {

/// Options of the one-shot measure_workload wrapper. The measurement
/// fields live in the shared rt::MeasureOptions base; only the N shrink
/// is engine-specific. Prefer rt::CompileOptions.
struct EngineOptions : MeasureOptions {
  /// See CompileOptions::n_divisor.
  Index n_divisor = 4;
};

/// Options of the one-shot measure_serving_throughput wrapper. The
/// measurement fields live in the shared rt::MeasureOptions base.
/// Prefer rt::CompileOptions + CompiledNetwork::serving_throughput().
struct ServingOptions : MeasureOptions {
  /// Concurrent queries measured per data point.
  std::vector<std::size_t> batch_sizes{1, 4, 16, 64};
  /// See CompileOptions::query_cols.
  Index query_cols = 1;
};

/// Measure every layer of a workload under the given per-layer configs
/// (entries align with net.layers; nullopt = dense).
[[deprecated(
    "compile once and execute many: rt::compile(net, configs, opts)"
    ".measure()")]]
std::vector<LayerTiming> measure_workload(
    const dnn::NetworkWorkload& net,
    const std::vector<std::optional<TasdConfig>>& configs,
    const EngineOptions& opt = {});

/// Measure dense vs TASD serving throughput (queries/sec) at each batch
/// size. Configured layers execute through TasdSeriesGemm::multiply_batch
/// (one DecompositionPlan shared across the batch); unconfigured layers
/// through the dense batch kernel. One entry per batch size, in order.
[[deprecated(
    "compile once and execute many: rt::compile(net, configs, opts)"
    ".serving_throughput(batch_sizes)")]]
std::vector<ServingThroughput> measure_serving_throughput(
    const dnn::NetworkWorkload& net,
    const std::vector<std::optional<TasdConfig>>& configs,
    const ServingOptions& opt = {});

}  // namespace tasd::rt
