// Tests for the confident-reference machinery (margin-filtered labels).
#include <gtest/gtest.h>

#include "dnn/builders.hpp"
#include "dnn/metrics.hpp"

namespace tasd::dnn {
namespace {

ConvNetOptions tiny() {
  ConvNetOptions o;
  o.input_hw = 8;
  o.width_mult = 0.125;
  o.num_classes = 10;
  return o;
}

TEST(ConfidentLabels, KeepFractionRespected) {
  Model m = make_resnet(18, tiny());
  const EvalSet eval = EvalSet::images(32, 8, 3, 801);
  const auto labels = confident_labels(m, eval, 0.5);
  ASSERT_EQ(labels.size(), 32u);
  Index kept = 0;
  for (Index l : labels)
    if (l != kIgnoreLabel) ++kept;
  EXPECT_EQ(kept, 16u);
}

TEST(ConfidentLabels, FullFractionKeepsEverything) {
  Model m = make_resnet(18, tiny());
  const EvalSet eval = EvalSet::images(16, 8, 3, 802);
  const auto all = confident_labels(m, eval, 1.0);
  for (Index l : all) EXPECT_NE(l, kIgnoreLabel);
  // And equals plain predict.
  EXPECT_EQ(all, predict(m, eval));
}

TEST(ConfidentLabels, RejectsBadFraction) {
  Model m = make_resnet(18, tiny());
  const EvalSet eval = EvalSet::images(4, 8, 3, 803);
  EXPECT_THROW(confident_labels(m, eval, 0.0), tasd::Error);
  EXPECT_THROW(confident_labels(m, eval, 1.5), tasd::Error);
}

TEST(ConfidentLabels, KeptLabelsMatchPredictions) {
  Model m = make_resnet(18, tiny());
  const EvalSet eval = EvalSet::images(24, 8, 3, 804);
  const auto conf = confident_labels(m, eval, 0.25);
  const auto pred = predict(m, eval);
  for (std::size_t i = 0; i < conf.size(); ++i)
    if (conf[i] != kIgnoreLabel) EXPECT_EQ(conf[i], pred[i]);
}

TEST(ConfidentLabels, AgreementSkipsIgnored) {
  // Only non-sentinel entries count.
  std::vector<Index> ref{1, kIgnoreLabel, 3, kIgnoreLabel};
  std::vector<Index> pred{1, 99, 4, 98};
  EXPECT_DOUBLE_EQ(agreement(ref, pred), 0.5);
  // All ignored -> vacuous agreement.
  std::vector<Index> all_ignored{kIgnoreLabel, kIgnoreLabel};
  EXPECT_DOUBLE_EQ(agreement(all_ignored, {0, 1}), 1.0);
}

TEST(ConfidentLabels, SelfAgreementIsPerfect) {
  Model m = make_resnet(18, tiny());
  const EvalSet eval = EvalSet::images(32, 8, 3, 805);
  const auto ref = confident_labels(m, eval, 0.5);
  EXPECT_DOUBLE_EQ(top1_agreement(m, eval, ref), 1.0);
}

TEST(ConfidentLabels, ConfidentSubsetMoreRobustToPerturbation) {
  // The reason the mechanism exists: under a mild perturbation, the
  // confident half must agree at least as well as the full set.
  Model m = make_resnet(18, tiny());
  const EvalSet eval = EvalSet::images(64, 8, 3, 806);
  const auto conf = confident_labels(m, eval, 0.5);
  const auto full = predict(m, eval);
  for (auto* l : m.gemm_layers()) l->set_tasd_w(TasdConfig::parse("6:8"));
  const auto perturbed = predict(m, eval);
  EXPECT_GE(agreement(conf, perturbed) + 1e-12, agreement(full, perturbed));
}

}  // namespace
}  // namespace tasd::dnn
