// Compressed Sparse Row format, used as the unstructured-sparsity
// reference format (what an unstructured accelerator like DSTC consumes).
#pragma once

#include <vector>

#include "tensor/matrix.hpp"

namespace tasd::sparse {

/// Immutable CSR matrix.
class CSRMatrix {
 public:
  CSRMatrix() = default;

  /// Compress a dense matrix (zeros dropped).
  explicit CSRMatrix(const MatrixF& dense);

  [[nodiscard]] Index rows() const { return rows_; }
  [[nodiscard]] Index cols() const { return cols_; }
  [[nodiscard]] Index nnz() const { return values_.size(); }
  [[nodiscard]] double sparsity() const;

  /// Decompress to dense (exact).
  [[nodiscard]] MatrixF to_dense() const;

  /// y = this * x for a dense vector x (sized cols()).
  [[nodiscard]] std::vector<float> spmv(std::span<const float> x) const;

  /// C = this * B for a dense matrix B.
  [[nodiscard]] MatrixF spmm(const MatrixF& b) const;

  /// Storage bytes: 4B value + 4B column index per nnz + 8B per row ptr.
  [[nodiscard]] Index storage_bytes() const {
    return nnz() * 8 + (rows_ + 1) * 8;
  }

  [[nodiscard]] const std::vector<float>& values() const { return values_; }
  [[nodiscard]] const std::vector<Index>& col_index() const {
    return col_index_;
  }
  [[nodiscard]] const std::vector<Index>& row_ptr() const { return row_ptr_; }

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<float> values_;
  std::vector<Index> col_index_;
  std::vector<Index> row_ptr_;  // rows_+1 entries
};

}  // namespace tasd::sparse
