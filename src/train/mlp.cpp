#include "train/mlp.hpp"

#include <cmath>

#include "common/error.hpp"
#include "core/decompose.hpp"
#include "tensor/gemm_ref.hpp"

namespace tasd::train {

Mlp::Mlp(const std::vector<Index>& sizes, std::uint64_t seed) {
  TASD_CHECK_MSG(sizes.size() >= 2, "MLP needs at least input and output");
  Rng rng(seed);
  for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
    DenseLayer layer;
    layer.weight = MatrixF(sizes[i + 1], sizes[i]);
    const double stddev = std::sqrt(2.0 / static_cast<double>(sizes[i]));
    for (float& v : layer.weight.flat())
      v = static_cast<float>(rng.normal(0.0, stddev));
    layer.bias.assign(sizes[i + 1], 0.0F);
    layer.relu = i + 2 < sizes.size();  // last layer is linear
    layers_.push_back(std::move(layer));
  }
  grad_w_.resize(layers_.size());
  grad_b_.resize(layers_.size());
}

MatrixF Mlp::forward(const MatrixF& x) {
  MatrixF cur = x;
  for (auto& layer : layers_) {
    TASD_CHECK_MSG(cur.rows() == layer.weight.cols(),
                   "MLP input features mismatch");
    layer.input = cur;
    MatrixF y = gemm_ref(layer.weight, cur);
    for (Index r = 0; r < y.rows(); ++r)
      for (Index c = 0; c < y.cols(); ++c) y(r, c) += layer.bias[r];
    layer.pre_act = y;
    if (layer.relu)
      for (float& v : y.flat()) v = v > 0.0F ? v : 0.0F;
    cur = std::move(y);
  }
  return cur;
}

double Mlp::softmax_ce_loss(const MatrixF& logits,
                            const std::vector<Index>& labels,
                            MatrixF& dlogits) {
  TASD_CHECK_MSG(labels.size() == logits.cols(),
                 "one label per logits column required");
  dlogits = MatrixF(logits.rows(), logits.cols());
  double loss = 0.0;
  const auto batch = static_cast<double>(logits.cols());
  for (Index c = 0; c < logits.cols(); ++c) {
    TASD_CHECK_MSG(labels[c] < logits.rows(), "label out of range");
    float mx = logits(0, c);
    for (Index r = 1; r < logits.rows(); ++r) mx = std::max(mx, logits(r, c));
    double sum = 0.0;
    for (Index r = 0; r < logits.rows(); ++r)
      sum += std::exp(static_cast<double>(logits(r, c)) - mx);
    for (Index r = 0; r < logits.rows(); ++r) {
      const double p =
          std::exp(static_cast<double>(logits(r, c)) - mx) / sum;
      dlogits(r, c) = static_cast<float>(
          (p - (r == labels[c] ? 1.0 : 0.0)) / batch);
      if (r == labels[c]) loss -= std::log(std::max(p, 1e-12));
    }
  }
  return loss / batch;
}

void Mlp::backward(const MatrixF& dlogits, const TasdTrainingHooks& hooks) {
  MatrixF dy = dlogits;
  for (std::size_t li = layers_.size(); li-- > 0;) {
    auto& layer = layers_[li];
    // ReLU gate.
    if (layer.relu) {
      for (Index r = 0; r < dy.rows(); ++r)
        for (Index c = 0; c < dy.cols(); ++c)
          if (layer.pre_act(r, c) <= 0.0F) dy(r, c) = 0.0F;
    }
    // Optional TASD approximation of the upstream gradient (paper §6.2:
    // gradients are sparse/skewed during training; decompose them to cut
    // the backward GEMM work). Blocks along the output-feature dim.
    const MatrixF* dy_used = &dy;
    MatrixF dy_approx;
    if (hooks.gradients) {
      dy_approx = approximate(dy.transposed(), *hooks.gradients).transposed();
      dy_used = &dy_approx;
    }
    // Optional TASD approximation of the stored activations feeding dW.
    const MatrixF* x_used = &layer.input;
    MatrixF x_approx;
    if (hooks.activations) {
      x_approx =
          approximate(layer.input.transposed(), *hooks.activations)
              .transposed();
      x_used = &x_approx;
    }

    // dW = dY * X^T, db = row-sums of dY, dX = W^T * dY.
    if (grad_w_[li].empty()) {
      grad_w_[li] = MatrixF(layer.weight.rows(), layer.weight.cols());
      grad_b_[li].assign(layer.weight.rows(), 0.0F);
    }
    gemm_ref_accumulate(*dy_used, x_used->transposed(), grad_w_[li]);
    for (Index r = 0; r < dy_used->rows(); ++r)
      for (Index c = 0; c < dy_used->cols(); ++c)
        grad_b_[li][r] += (*dy_used)(r, c);
    if (li > 0) dy = gemm_ref(layer.weight.transposed(), *dy_used);
  }
}

void Mlp::step(double lr) {
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    if (grad_w_[li].empty()) continue;
    auto wf = layers_[li].weight.flat();
    auto gf = grad_w_[li].flat();
    for (Index i = 0; i < wf.size(); ++i)
      wf[i] -= static_cast<float>(lr) * gf[i];
    for (Index r = 0; r < layers_[li].bias.size(); ++r)
      layers_[li].bias[r] -= static_cast<float>(lr) * grad_b_[li][r];
    grad_w_[li] = MatrixF();
    grad_b_[li].clear();
  }
}

std::vector<Index> Mlp::predict(const MatrixF& x) {
  const MatrixF logits = forward(x);
  std::vector<Index> out;
  out.reserve(logits.cols());
  for (Index c = 0; c < logits.cols(); ++c) {
    Index best = 0;
    for (Index r = 1; r < logits.rows(); ++r)
      if (logits(r, c) > logits(best, c)) best = r;
    out.push_back(best);
  }
  return out;
}

}  // namespace tasd::train
