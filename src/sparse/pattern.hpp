// N:M structured sparsity pattern descriptor.
//
// An N:M pattern constrains each M-aligned block of consecutive elements
// (along the row dimension) to at most N non-zeros (paper §2.1, Fig. 2).
#pragma once

#include <compare>
#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace tasd::sparse {

/// Fine-grained N:M structured sparsity pattern (e.g. 2:4).
struct NMPattern {
  int n = 0;  ///< max non-zeros per block
  int m = 1;  ///< block size

  NMPattern() = default;
  NMPattern(int n_, int m_);

  /// Parse "N:M" (e.g. "2:4"). Throws tasd::Error on malformed input.
  static NMPattern parse(const std::string& text);

  /// "N:M" rendering.
  [[nodiscard]] std::string str() const;

  /// Fraction of elements that may be non-zero (N/M).
  [[nodiscard]] double density() const {
    return static_cast<double>(n) / static_cast<double>(m);
  }

  /// Sparsity degree enforced by the pattern (1 - N/M); the paper calls
  /// this the pattern's "approximated sparsity".
  [[nodiscard]] double approximated_sparsity() const { return 1.0 - density(); }

  /// True when the pattern imposes no constraint (N == M, i.e. dense).
  [[nodiscard]] bool is_dense() const { return n == m; }

  friend auto operator<=>(const NMPattern&, const NMPattern&) = default;
};

/// Does `m` satisfy the pattern? Blocks are M-aligned within each row; a
/// ragged final block (cols % M != 0) is checked against the same N limit.
bool satisfies(const MatrixF& matrix, const NMPattern& pattern);

/// Number of violating blocks (0 means satisfies()).
Index count_violating_blocks(const MatrixF& matrix, const NMPattern& pattern);

}  // namespace tasd::sparse
