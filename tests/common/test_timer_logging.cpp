#include <gtest/gtest.h>

#include <thread>

#include "common/logging.hpp"
#include "common/timer.hpp"

namespace tasd {
namespace {

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.millis(), 15.0);
  EXPECT_LT(t.millis(), 2000.0);
}

TEST(Timer, ResetRestarts) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.reset();
  EXPECT_LT(t.millis(), 15.0);
}

TEST(Timer, SecondsAndMillisConsistent) {
  Timer t;
  const double s = t.seconds();
  const double ms = t.millis();
  EXPECT_GE(ms, s * 1e3 * 0.5);  // both sampled close together
}

TEST(Logging, LevelGate) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold logging must be a no-op (no crash, no output check
  // needed — we only verify the gate holds).
  TASD_DEBUG("suppressed");
  TASD_INFO("suppressed");
  set_log_level(old);
}

TEST(Logging, OffSilencesEverything) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::kOff);
  TASD_ERROR("suppressed even at error level");
  set_log_level(old);
}

}  // namespace
}  // namespace tasd
