// Enumeration of the TASD series a given piece of structured sparse
// hardware can execute (paper Table 2).
//
// Hardware supports a base set of N:M patterns (e.g. VEGETA-M8: {1:8,
// 2:8, 4:8}); with up to `max_terms` TASD terms the achievable *effective*
// densities are the subset sums of the base densities. Table 2's
// "5:8 = 4:8 + 1:8" falls out of this enumeration.
#pragma once

#include <optional>
#include <vector>

#include "core/config.hpp"

namespace tasd {

/// All distinct TASD configurations with 1..max_terms terms drawn from
/// `supported` (combinations without repetition, each pattern usable at
/// most once per series — matching the paper's Table 2 where every N:8
/// pattern appears at most once). Terms within a config are ordered
/// densest-first (the greedy extraction order). Results are sorted from
/// most aggressive (highest approximated sparsity) to least.
std::vector<TasdConfig> enumerate_configs(
    const std::vector<sparse::NMPattern>& supported, int max_terms);

/// The config from enumerate_configs() whose total density Σ Ni/Mi
/// exactly provides `n`:`m` effective sparsity, if one exists (Table 2
/// lookup: effective 5:8 → "4:8+1:8"). Prefers fewer terms.
std::optional<TasdConfig> config_for_effective_pattern(
    const std::vector<sparse::NMPattern>& supported, int max_terms, int n,
    int m);

/// Effective N numerators (over denominator m) reachable with ≤ max_terms
/// terms — Table 2's left column. Includes 0 (empty config excluded, but
/// n=0 pattern may exist) only if reachable.
std::vector<int> reachable_effective_n(
    const std::vector<sparse::NMPattern>& supported, int max_terms, int m);

}  // namespace tasd
