#include "tensor/matrix.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tasd {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  MatrixF m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ZeroInitialized) {
  MatrixF m(3, 4);
  for (float v : m.flat()) EXPECT_EQ(v, 0.0F);
  EXPECT_EQ(m.size(), 12u);
}

TEST(Matrix, FillConstructor) {
  MatrixF m(2, 2, 7.0F);
  for (float v : m.flat()) EXPECT_EQ(v, 7.0F);
}

TEST(Matrix, FlatConstructorChecksSize) {
  EXPECT_THROW(MatrixF(2, 3, std::vector<float>{1.0F}), Error);
  EXPECT_NO_THROW(MatrixF(1, 2, std::vector<float>{1.0F, 2.0F}));
}

TEST(Matrix, RowMajorIndexing) {
  MatrixF m(2, 3, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(m(0, 0), 0.0F);
  EXPECT_EQ(m(0, 2), 2.0F);
  EXPECT_EQ(m(1, 0), 3.0F);
  EXPECT_EQ(m(1, 2), 5.0F);
}

TEST(Matrix, AtChecksBounds) {
  MatrixF m(2, 2);
  EXPECT_THROW(m.at(2, 0), Error);
  EXPECT_THROW(m.at(0, 2), Error);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(Matrix, RowViewIsContiguous) {
  MatrixF m(2, 3, {0, 1, 2, 3, 4, 5});
  auto r = m.row(1);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0], 3.0F);
  EXPECT_EQ(r[2], 5.0F);
  r[0] = 9.0F;
  EXPECT_EQ(m(1, 0), 9.0F);
}

TEST(Matrix, AddSubtract) {
  MatrixF a(2, 2, {1, 2, 3, 4});
  MatrixF b(2, 2, {4, 3, 2, 1});
  MatrixF sum = a + b;
  for (float v : sum.flat()) EXPECT_EQ(v, 5.0F);
  MatrixF diff = sum - b;
  EXPECT_EQ(diff, a);
}

TEST(Matrix, ShapeMismatchThrows) {
  MatrixF a(2, 2);
  MatrixF b(2, 3);
  EXPECT_THROW(a += b, Error);
}

TEST(Matrix, ScalarScale) {
  MatrixF a(1, 3, {1, 2, 3});
  a *= 2.0F;
  EXPECT_EQ(a(0, 2), 6.0F);
}

TEST(Matrix, Transposed) {
  MatrixF a(2, 3, {1, 2, 3, 4, 5, 6});
  MatrixF t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(0, 1), 4.0F);
  EXPECT_EQ(t(2, 0), 3.0F);
  EXPECT_EQ(t.transposed(), a);
}

TEST(Matrix, NnzAndSparsity) {
  MatrixF a(2, 2, {0, 1, 0, 2});
  EXPECT_EQ(a.nnz(), 2u);
  EXPECT_DOUBLE_EQ(a.sparsity(), 0.5);
}

TEST(Matrix, EmptySparsityIsZero) {
  MatrixF m;
  EXPECT_DOUBLE_EQ(m.sparsity(), 0.0);
}

TEST(Matrix, ExactEquality) {
  MatrixF a(1, 2, {1.0F, 2.0F});
  MatrixF b(1, 2, {1.0F, 2.0F});
  MatrixF c(2, 1, {1.0F, 2.0F});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);  // same data, different shape
}

}  // namespace
}  // namespace tasd
