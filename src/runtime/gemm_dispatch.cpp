#include "runtime/gemm_dispatch.hpp"

#include <algorithm>
#include <map>
#include <mutex>

#include "common/error.hpp"
#include "tensor/gemm_ref.hpp"

namespace tasd::rt {

ThreadPool& resolve_pool(const ExecPolicy& policy) {
  return policy.pool ? *policy.pool : default_pool();
}

// ------------------------------------------------------ row-range cores

void dense_gemm_rows(const MatrixF& a, const MatrixF& b, MatrixF& c,
                     Index row_begin, Index row_end) {
  const Index k = a.cols(), n = b.cols();
  // j-tile sized to keep the C row segment plus four B row segments in
  // L1 while streaming; per-element accumulation order (k ascending,
  // 4-wide) is independent of the tile size.
  constexpr Index kTileN = 512;
  for (Index i = row_begin; i < row_end; ++i) {
    float* __restrict crow = c.data() + i * n;
    const float* arow = a.data() + i * k;
    for (Index jt = 0; jt < n; jt += kTileN) {
      const Index je = std::min(n, jt + kTileN);
      Index p = 0;
      for (; p + 4 <= k; p += 4) {
        const float a0 = arow[p], a1 = arow[p + 1];
        const float a2 = arow[p + 2], a3 = arow[p + 3];
        const float* __restrict b0 = b.data() + p * n;
        const float* __restrict b1 = b0 + n;
        const float* __restrict b2 = b1 + n;
        const float* __restrict b3 = b2 + n;
        for (Index j = jt; j < je; ++j)
          crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
      }
      for (; p < k; ++p) {
        const float av = arow[p];
        const float* __restrict brow = b.data() + p * n;
        for (Index j = jt; j < je; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

void nm_gemm_rows(const sparse::NMSparseMatrix& a, const MatrixF& b,
                  MatrixF& c, Index row_begin, Index row_end) {
  const Index n = b.cols();
  const auto m = static_cast<Index>(a.pattern().m);
  const auto& values = a.values();
  const auto& idx = a.in_block_index();
  const auto& offsets = a.block_offsets();
  const Index blocks_per_row = a.blocks_per_row();

  for (Index r = row_begin; r < row_end; ++r) {
    float* __restrict crow = c.data() + r * n;
    Index group = r * blocks_per_row;
    for (Index blk = 0; blk < blocks_per_row; ++blk, ++group) {
      const Index k_base = blk * m;
      for (Index s = offsets[group]; s < offsets[group + 1]; ++s) {
        const float av = values[s];
        const float* __restrict brow = b.data() + (k_base + idx[s]) * n;
        for (Index j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

// ------------------------------------------------------------- registry

struct GemmDispatch::Impl {
  mutable std::mutex mutex;
  std::map<std::string, DenseKernel> dense;
  std::map<std::string, NmKernel> nm;
  std::string default_dense;
  std::string default_nm;
};

namespace {

// Row grain: below this many rows per chunk the fork/join overhead beats
// the win; partitioning stays deterministic either way.
constexpr std::size_t kRowGrain = 8;

void dense_tiled_parallel(const MatrixF& a, const MatrixF& b, MatrixF& c,
                          ThreadPool& pool) {
  pool.parallel_for(0, a.rows(), kRowGrain,
                    [&](Index r0, Index r1) { dense_gemm_rows(a, b, c, r0, r1); });
}

void dense_tiled_serial(const MatrixF& a, const MatrixF& b, MatrixF& c,
                        ThreadPool& /*pool*/) {
  dense_gemm_rows(a, b, c, 0, a.rows());
}

void dense_reference(const MatrixF& a, const MatrixF& b, MatrixF& c,
                     ThreadPool& /*pool*/) {
  gemm_ref_accumulate(a, b, c);
}

void nm_row_parallel(const sparse::NMSparseMatrix& a, const MatrixF& b,
                     MatrixF& c, ThreadPool& pool) {
  pool.parallel_for(0, a.rows(), kRowGrain,
                    [&](Index r0, Index r1) { nm_gemm_rows(a, b, c, r0, r1); });
}

void nm_serial(const sparse::NMSparseMatrix& a, const MatrixF& b, MatrixF& c,
               ThreadPool& /*pool*/) {
  nm_gemm_rows(a, b, c, 0, a.rows());
}

}  // namespace

GemmDispatch::GemmDispatch() : impl_(new Impl) {
  impl_->dense["tiled-parallel"] = dense_tiled_parallel;
  impl_->dense["tiled-serial"] = dense_tiled_serial;
  impl_->dense["reference"] = dense_reference;
  impl_->default_dense = "tiled-parallel";
  impl_->nm["row-parallel"] = nm_row_parallel;
  impl_->nm["serial"] = nm_serial;
  impl_->default_nm = "row-parallel";
}

GemmDispatch& GemmDispatch::instance() {
  static GemmDispatch dispatch;
  return dispatch;
}

void GemmDispatch::register_dense(const std::string& name,
                                  DenseKernel kernel) {
  TASD_CHECK_MSG(!name.empty(), "kernel name must be non-empty");
  std::lock_guard lock(impl_->mutex);
  impl_->dense[name] = std::move(kernel);
}

void GemmDispatch::register_nm(const std::string& name, NmKernel kernel) {
  TASD_CHECK_MSG(!name.empty(), "kernel name must be non-empty");
  std::lock_guard lock(impl_->mutex);
  impl_->nm[name] = std::move(kernel);
}

void GemmDispatch::set_default_dense(const std::string& name) {
  std::lock_guard lock(impl_->mutex);
  TASD_CHECK_MSG(impl_->dense.contains(name),
                 "unknown dense kernel '" << name << "'");
  impl_->default_dense = name;
}

void GemmDispatch::set_default_nm(const std::string& name) {
  std::lock_guard lock(impl_->mutex);
  TASD_CHECK_MSG(impl_->nm.contains(name),
                 "unknown N:M kernel '" << name << "'");
  impl_->default_nm = name;
}

std::vector<std::string> GemmDispatch::dense_kernels() const {
  std::lock_guard lock(impl_->mutex);
  std::vector<std::string> names;
  names.reserve(impl_->dense.size());
  for (const auto& [name, _] : impl_->dense) names.push_back(name);
  return names;
}

std::vector<std::string> GemmDispatch::nm_kernels() const {
  std::lock_guard lock(impl_->mutex);
  std::vector<std::string> names;
  names.reserve(impl_->nm.size());
  for (const auto& [name, _] : impl_->nm) names.push_back(name);
  return names;
}

std::string GemmDispatch::default_dense() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->default_dense;
}

std::string GemmDispatch::default_nm() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->default_nm;
}

DenseKernel GemmDispatch::dense(const std::string& name) const {
  std::lock_guard lock(impl_->mutex);
  const std::string& key = name.empty() ? impl_->default_dense : name;
  const auto it = impl_->dense.find(key);
  TASD_CHECK_MSG(it != impl_->dense.end(),
                 "unknown dense kernel '" << key << "'");
  return it->second;
}

NmKernel GemmDispatch::nm(const std::string& name) const {
  std::lock_guard lock(impl_->mutex);
  const std::string& key = name.empty() ? impl_->default_nm : name;
  const auto it = impl_->nm.find(key);
  TASD_CHECK_MSG(it != impl_->nm.end(),
                 "unknown N:M kernel '" << key << "'");
  return it->second;
}

}  // namespace tasd::rt
