#include "runtime/autotune.hpp"

#include <algorithm>
#include <utility>

#include "common/cpu_features.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "runtime/compiled_network.hpp"
#include "runtime/dense_gemm.hpp"
#include "tensor/generator.hpp"

namespace tasd::rt {

namespace {

// Measurement-override hook (test seam). Plain static: set/cleared from
// one thread before compiling, per the header contract.
TuneTimer& timer_hook() {
  static TuneTimer hook;
  return hook;
}

/// Pick the fastest candidate; ties break toward the first name in table
/// order (the tables are built from the registry's sorted name lists, so
/// the choice is deterministic under identical timings — what the fake-
/// timer CI test pins).
const TuneCandidate& winner(const std::vector<TuneCandidate>& table) {
  TASD_CHECK_MSG(!table.empty(), "autotune candidate table is empty");
  const auto it = std::min_element(
      table.begin(), table.end(),
      [](const TuneCandidate& a, const TuneCandidate& b) { return a.ms < b.ms; });
  return *it;
}

}  // namespace

void set_autotune_timer(TuneTimer hook) { timer_hook() = std::move(hook); }

const LayerTuning* TuningResult::find(const std::string& layer) const {
  for (const auto& l : layers)
    if (l.layer == layer) return &l;
  return nullptr;
}

namespace detail {

TuningResult run_autotune(CompiledNetwork& net) {
  const auto& dispatch = GemmDispatch::instance();
  const CompileOptions& opt = net.options();
  const ExecPolicy base = net.policy();  // pool binding + fallback names
  const TuneTimer& hook = timer_hook();

  TuningResult result;
  result.host_signature = cpu_signature();
  result.layers.reserve(net.layers_.size());

  Rng rng(opt.measure.data_seed);
  volatile float sink = 0.0F;  // defeat dead-code elimination
  for (auto& l : net.layers_) {
    LayerTuning lt;
    lt.layer = l.name;
    lt.nm = l.series.has_value();

    // The tuning workloads mirror what the artifact will execute: the
    // single-RHS slot at measure()'s shrunk width (the n_divisor story —
    // both engines scale linearly in N, so the shrink preserves the
    // ranking), the batch slot at autotune_batch_hint serving queries of
    // query_cols width each.
    const Index n_single = measured_n(l.n, opt.n_divisor);
    const MatrixF b = random_dense(l.k, n_single, Dist::kNormalStd1, rng);
    std::vector<MatrixF> bs;
    bs.reserve(opt.autotune_batch_hint);
    for (std::size_t q = 0; q < opt.autotune_batch_hint; ++q)
      bs.push_back(random_dense(l.k, opt.query_cols, Dist::kNormalStd1, rng));

    const auto time_single = [&](const std::string& name) {
      if (hook)
        return hook({l.name, name, lt.nm, false, l.m, l.k, n_single, 0});
      ExecPolicy p = base;
      (lt.nm ? p.nm_kernel : p.dense_kernel) = name;
      return time_ms_min(opt.measure.repeats, [&] {
        const MatrixF c = lt.nm ? l.series->multiply(b, p)
                                : dense_gemm(l.weight, b, p);
        sink = sink + c(0, 0);
      });
    };
    const auto time_batch = [&](const std::string& name) {
      if (hook)
        return hook({l.name, name, lt.nm, true, l.m, l.k, opt.query_cols,
                     bs.size()});
      ExecPolicy p = base;
      (lt.nm ? p.nm_batch_kernel : p.dense_batch_kernel) = name;
      return time_ms_min(opt.measure.repeats, [&] {
        const auto cs = lt.nm ? l.series->multiply_batch(bs, p)
                              : dense_gemm_batch(l.weight, bs, p);
        sink = sink + cs[0](0, 0);
      });
    };

    for (const auto& name :
         lt.nm ? dispatch.nm_kernels() : dispatch.dense_kernels())
      lt.single.push_back({name, time_single(name)});
    for (const auto& name : lt.nm ? dispatch.nm_batch_kernels()
                                  : dispatch.dense_batch_kernels())
      lt.batch.push_back({name, time_batch(name)});

    lt.chosen_single = winner(lt.single).kernel;
    lt.chosen_batch = winner(lt.batch).kernel;
    l.kernel = lt.chosen_single;
    l.batch_kernel = lt.chosen_batch;
    result.layers.push_back(std::move(lt));
  }
  return result;
}

bool apply_tuning(CompiledNetwork& net, const TuningResult& tuning) {
  if (tuning.host_signature != cpu_signature()) return false;
  const auto& dispatch = GemmDispatch::instance();
  const auto dense_names = dispatch.dense_kernels();
  const auto nm_names = dispatch.nm_kernels();
  const auto dense_batch_names = dispatch.dense_batch_kernels();
  const auto nm_batch_names = dispatch.nm_batch_kernels();
  const auto registered = [](const std::vector<std::string>& names,
                             const std::string& name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };

  // All-or-nothing: validate every layer before touching any binding, so
  // a result that only half-transfers never leaves a mixed state.
  std::vector<const LayerTuning*> found;
  found.reserve(net.layers_.size());
  for (const auto& l : net.layers_) {
    const LayerTuning* lt = tuning.find(l.name);
    if (lt == nullptr || lt->nm != l.series.has_value()) return false;
    if (!registered(lt->nm ? nm_names : dense_names, lt->chosen_single) ||
        !registered(lt->nm ? nm_batch_names : dense_batch_names,
                    lt->chosen_batch))
      return false;
    found.push_back(lt);
  }
  for (std::size_t i = 0; i < net.layers_.size(); ++i) {
    net.layers_[i].kernel = found[i]->chosen_single;
    net.layers_[i].batch_kernel = found[i]->chosen_batch;
  }
  net.tuning_ = tuning;
  return true;
}

}  // namespace detail

}  // namespace tasd::rt
