// Per-layer kernel autotuning (ROADMAP item 4): make rt::compile pick
// each layer's kernel by measurement instead of the static best_*()
// chain. PR 5's benches showed the fastest kernel is a function of
// (shape, batch, threads) — dense-avx2 out-serves 2:4 at GEMV widths
// while TASD wins at wider N — and SparseRT (PAPERS.md) shows the win of
// ahead-of-time per-matrix specialization; the GemmDispatch registry's
// bit-exactness contracts are what make the candidates interchangeable.
//
// When CompileOptions::kernel_policy == KernelPolicy::kAutotune,
// assemble_network micro-benches every registered candidate of each
// layer's slot pair (single-RHS at the measured width, batch at the
// batch hint) on the compiling host — min-of-N with an untimed warmup
// via time_ms_min — binds the per-layer winner, and records the full
// TuningResult (candidate tables, timings, chosen names, host CPU
// signature) on the CompiledNetwork. save_artifact serializes the
// result into a TASDART1 tuning section; load_artifact restores the
// binding when tasd::cpu_signature() matches and falls back to best_*()
// re-resolution when it doesn't (see docs/artifact.md).
//
// Correctness is unaffected by construction: candidates within a
// rounding family are bitwise interchangeable and across families agree
// to float tolerance (docs/kernels.md), so an autotuned network differs
// from a statically-bound one at most by family rounding.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace tasd::rt {

class CompiledNetwork;

/// One micro-benched candidate: a registered kernel name and its
/// min-of-N time on this layer's tuning workload.
struct TuneCandidate {
  std::string kernel;
  double ms = 0.0;
};

/// Tuning record of one layer: the full candidate tables (so benches and
/// artifacts can report *why* a kernel won, not just which) and the
/// chosen names for the single-RHS and batch slots.
struct LayerTuning {
  std::string layer;
  bool nm = false;  ///< candidates come from the N:M slots (layer has a
                    ///< bound series) rather than the dense slots
  std::vector<TuneCandidate> single;
  std::vector<TuneCandidate> batch;
  std::string chosen_single;
  std::string chosen_batch;
};

/// A whole network's tuning: per-layer records plus the host signature
/// they were measured under (tasd::cpu_signature()). Only trusted —
/// restored from an artifact — on a host reporting the same signature.
struct TuningResult {
  std::string host_signature;
  std::vector<LayerTuning> layers;

  /// The record for `layer`, or nullptr.
  [[nodiscard]] const LayerTuning* find(const std::string& layer) const;
};

/// What one timer invocation measured — handed to the override hook so a
/// fake timer can key its answer on everything the real one depends on.
struct TuneMeasurement {
  std::string layer;
  std::string kernel;
  bool nm = false;     ///< N:M slot (vs dense slot)
  bool batch = false;  ///< batch slot (vs single-RHS slot)
  Index m = 0, k = 0, n = 0;   ///< timed operand shape (n = RHS width)
  std::size_t batch_items = 0;  ///< batch-slot item count (0 for single)
};

/// Measurement override: when set, autotune calls the hook instead of
/// wall-clock timing — the deterministic-CI seam (fixed fake timings
/// must yield a fixed binding; tests/runtime/test_autotune.cpp). Pass an
/// empty function to restore wall-clock measurement. Not thread-safe:
/// set it before compiling, from one thread (a test fixture, not
/// production code).
using TuneTimer = std::function<double(const TuneMeasurement&)>;
void set_autotune_timer(TuneTimer hook);

namespace detail {

/// Micro-bench every registered candidate for every layer of `net`,
/// rebind each layer to its winners, and return the full record. Called
/// by assemble_network under kAutotune; requires the layers to be bound.
TuningResult run_autotune(CompiledNetwork& net);

/// Rebind `net`'s layers from a deserialized tuning result. Returns
/// false — leaving the static binding untouched — when the result does
/// not transfer to this process: host signature mismatch, layer set
/// mismatch, or a chosen kernel that is not registered here.
bool apply_tuning(CompiledNetwork& net, const TuningResult& tuning);

}  // namespace detail

}  // namespace tasd::rt
