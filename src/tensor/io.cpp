#include "tensor/io.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace tasd {

namespace {
constexpr char kMagic[8] = {'T', 'A', 'S', 'D', 'M', 'A', 'T', '1'};
}

void save_matrix_csv(const MatrixF& m, const std::string& path) {
  std::ofstream out(path);
  TASD_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  char buf[64];
  for (Index r = 0; r < m.rows(); ++r) {
    for (Index c = 0; c < m.cols(); ++c) {
      std::snprintf(buf, sizeof buf, "%.9g", static_cast<double>(m(r, c)));
      if (c) out << ',';
      out << buf;
    }
    out << '\n';
  }
  TASD_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

MatrixF load_matrix_csv(const std::string& path) {
  std::ifstream in(path);
  TASD_CHECK_MSG(in.good(), "cannot open '" << path << "' for reading");
  std::vector<float> data;
  Index cols = 0;
  Index rows = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Index line_cols = 0;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      try {
        // Parse through double: stof rejects subnormal float values,
        // stod handles them and the cast rounds correctly.
        data.push_back(static_cast<float>(std::stod(cell)));
      } catch (const std::exception&) {
        TASD_CHECK_MSG(false, "bad CSV cell '" << cell << "' in " << path);
      }
      ++line_cols;
    }
    if (rows == 0) {
      cols = line_cols;
    } else {
      TASD_CHECK_MSG(line_cols == cols, "ragged CSV: row " << rows << " has "
                                                           << line_cols
                                                           << " cells, expected "
                                                           << cols);
    }
    ++rows;
  }
  TASD_CHECK_MSG(rows > 0, "empty CSV file '" << path << "'");
  return {rows, cols, std::move(data)};
}

void save_matrix_binary(const MatrixF& m, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  TASD_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  out.write(kMagic, sizeof kMagic);
  const std::uint64_t rows = m.rows();
  const std::uint64_t cols = m.cols();
  out.write(reinterpret_cast<const char*>(&rows), sizeof rows);
  out.write(reinterpret_cast<const char*>(&cols), sizeof cols);
  out.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(float)));
  TASD_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

MatrixF load_matrix_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  TASD_CHECK_MSG(in.good(), "cannot open '" << path << "' for reading");
  char magic[sizeof kMagic];
  in.read(magic, sizeof magic);
  TASD_CHECK_MSG(in.good() && std::memcmp(magic, kMagic, sizeof kMagic) == 0,
                 "'" << path << "' is not a TASD matrix file");
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  in.read(reinterpret_cast<char*>(&rows), sizeof rows);
  in.read(reinterpret_cast<char*>(&cols), sizeof cols);
  TASD_CHECK_MSG(in.good(), "truncated header in '" << path << "'");
  TASD_CHECK_MSG(rows * cols < (1ULL << 32),
                 "implausible matrix size in '" << path << "'");
  MatrixF m(static_cast<Index>(rows), static_cast<Index>(cols));
  in.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(float)));
  TASD_CHECK_MSG(in.good() || m.size() == 0,
                 "truncated data in '" << path << "'");
  return m;
}

}  // namespace tasd
