// Shared helper for the kernel property/batch test suites.
#pragma once

#include <string>

namespace tasd::rt::testing {

/// The single-RHS kernel a batch kernel's output must match bitwise: a
/// SIMD batch kernel pairs with its same-family single-RHS sibling,
/// every scalar batch kernel with the scalar registry default (empty
/// name). Batched == looped holds *within* a rounding family; across
/// families results agree only to float tolerance (FMA vs mul+add —
/// docs/kernels.md). The avx512 check runs first: both names contain
/// "avx", so substring order matters.
inline std::string paired_single_kernel(const std::string& batch_kernel,
                                        bool dense) {
  if (batch_kernel.find("avx512") != std::string::npos)
    return dense ? "dense-avx512" : "nm-avx512";
  if (batch_kernel.find("avx2") != std::string::npos)
    return dense ? "dense-avx2" : "nm-avx2";
  return {};
}

/// The rounding family a kernel name belongs to. Every "avx" kernel —
/// AVX2 and AVX-512 alike — issues exactly one FMA per k-step per
/// output, so they share one family and agree bitwise with each other;
/// the scalar tiled/serial/batch kernels form the mul+add family, and
/// "reference" is its own single-member family (same math as scalar but
/// a different accumulation order is not guaranteed). Across families
/// only float tolerance holds.
inline std::string rounding_family(const std::string& kernel) {
  if (kernel.find("avx") != std::string::npos) return "fma";
  if (kernel.find("reference") != std::string::npos) return "reference";
  return "scalar";
}

}  // namespace tasd::rt::testing
