#include "core/block_decompose.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace tasd {

BlockPattern::BlockPattern(Index bh_, Index bw_, Index keep_)
    : bh(bh_), bw(bw_), keep_per_row(keep_) {
  TASD_CHECK_MSG(bh > 0 && bw > 0, "block dims must be positive");
  TASD_CHECK_MSG(keep_per_row > 0, "keep_per_row must be positive");
}

double BlockPattern::density(Index cols) const {
  if (cols == 0) return 0.0;
  const Index tiles_per_row = (cols + bw - 1) / bw;
  return std::min(1.0, static_cast<double>(keep_per_row) /
                           static_cast<double>(tiles_per_row));
}

MatrixF HybridDecomposition::approximation() const {
  MatrixF acc(residual.rows(), residual.cols());
  for (const auto& t : block_terms) acc += t.dense;
  for (const auto& t : nm_terms) acc += t.dense;
  return acc;
}

MatrixF HybridDecomposition::reconstruct_exact() const {
  MatrixF acc = approximation();
  acc += residual;
  return acc;
}

bool HybridDecomposition::lossless() const {
  for (float v : residual.flat())
    if (v != 0.0F) return false;
  return true;
}

Index HybridDecomposition::kept_nnz() const {
  Index total = 0;
  for (const auto& t : block_terms) total += t.dense.nnz();
  for (const auto& t : nm_terms) total += t.dense.nnz();
  return total;
}

BlockSplit split_block(const MatrixF& matrix, const BlockPattern& pattern) {
  BlockSplit out{MatrixF(matrix.rows(), matrix.cols()), matrix};
  const Index tile_rows = (matrix.rows() + pattern.bh - 1) / pattern.bh;
  const Index tile_cols = (matrix.cols() + pattern.bw - 1) / pattern.bw;

  for (Index tr = 0; tr < tile_rows; ++tr) {
    // Squared Frobenius norm of each tile in this tile-row.
    std::vector<double> norms(tile_cols, 0.0);
    const Index r0 = tr * pattern.bh;
    const Index r1 = std::min(matrix.rows(), r0 + pattern.bh);
    for (Index tc = 0; tc < tile_cols; ++tc) {
      const Index c0 = tc * pattern.bw;
      const Index c1 = std::min(matrix.cols(), c0 + pattern.bw);
      double acc = 0.0;
      for (Index r = r0; r < r1; ++r)
        for (Index c = c0; c < c1; ++c)
          acc += static_cast<double>(matrix(r, c)) * matrix(r, c);
      norms[tc] = acc;
    }
    // Keep the `keep_per_row` largest-norm tiles (ties: lower index).
    std::vector<Index> order(tile_cols);
    std::iota(order.begin(), order.end(), Index{0});
    const Index keep = std::min<Index>(pattern.keep_per_row, tile_cols);
    std::partial_sort(order.begin(), order.begin() + static_cast<long>(keep),
                      order.end(), [&norms](Index a, Index b) {
                        if (norms[a] != norms[b]) return norms[a] > norms[b];
                        return a < b;
                      });
    for (Index i = 0; i < keep; ++i) {
      const Index tc = order[i];
      if (norms[tc] == 0.0) continue;  // empty tile: nothing to move
      const Index c0 = tc * pattern.bw;
      const Index c1 = std::min(matrix.cols(), c0 + pattern.bw);
      for (Index r = r0; r < r1; ++r)
        for (Index c = c0; c < c1; ++c) {
          out.view(r, c) = matrix(r, c);
          out.residual(r, c) = 0.0F;
        }
    }
  }
  return out;
}

HybridDecomposition hybrid_decompose(const MatrixF& matrix,
                                     const std::vector<BlockPattern>& blocks,
                                     const TasdConfig& nm) {
  HybridDecomposition out;
  out.residual = matrix;
  for (const auto& pattern : blocks) {
    BlockSplit split = split_block(out.residual, pattern);
    out.block_terms.push_back(BlockTerm{pattern, std::move(split.view)});
    out.residual = std::move(split.residual);
  }
  Decomposition d = decompose(out.residual, nm);
  out.nm_terms = std::move(d.terms);
  out.residual = std::move(d.residual);
  return out;
}

}  // namespace tasd
