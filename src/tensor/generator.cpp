#include "tensor/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace tasd {

namespace {

float draw(Dist dist, Rng& rng) {
  switch (dist) {
    case Dist::kUniform01:
      return rng.uniform_float(0.0F, 1.0F);
    case Dist::kNormal:
      return static_cast<float>(rng.normal(0.0, 1.0 / 3.0));
    case Dist::kNormalStd1:
      return static_cast<float>(rng.normal(0.0, 1.0));
  }
  return 0.0F;
}

/// Draw a non-zero value (re-draws the rare exact zero).
float draw_nonzero(Dist dist, Rng& rng) {
  float v = draw(dist, rng);
  while (v == 0.0F) v = draw(dist, rng);
  return v;
}

}  // namespace

MatrixF random_dense(Index rows, Index cols, Dist dist, Rng& rng) {
  MatrixF m(rows, cols);
  for (auto& v : m.flat()) v = draw(dist, rng);
  return m;
}

MatrixF random_unstructured(Index rows, Index cols, double density, Dist dist,
                            Rng& rng) {
  TASD_CHECK_MSG(density >= 0.0 && density <= 1.0,
                 "density " << density << " out of [0,1]");
  MatrixF m(rows, cols);
  for (auto& v : m.flat())
    if (rng.bernoulli(density)) v = draw_nonzero(dist, rng);
  return m;
}

MatrixF random_nm_structured(Index rows, Index cols, int n, int m, Dist dist,
                             Rng& rng) {
  TASD_CHECK_MSG(n >= 0 && m > 0 && n <= m, "invalid N:M = " << n << ":" << m);
  MatrixF out(rows, cols);
  std::vector<Index> positions;
  for (Index r = 0; r < rows; ++r) {
    for (Index b = 0; b < cols; b += static_cast<Index>(m)) {
      const Index block_len = std::min<Index>(static_cast<Index>(m), cols - b);
      positions.resize(block_len);
      std::iota(positions.begin(), positions.end(), b);
      rng.shuffle(positions);
      const Index keep = std::min<Index>(static_cast<Index>(n), block_len);
      for (Index i = 0; i < keep; ++i)
        out(r, positions[i]) = draw_nonzero(dist, rng);
    }
  }
  return out;
}

Tensor4D random_tensor(Index n, Index c, Index h, Index w, double density,
                       Dist dist, Rng& rng) {
  TASD_CHECK_MSG(density >= 0.0 && density <= 1.0,
                 "density " << density << " out of [0,1]");
  Tensor4D t(n, c, h, w);
  for (auto& v : t.flat())
    if (density >= 1.0 || rng.bernoulli(density)) v = draw_nonzero(dist, rng);
  return t;
}

MatrixF magnitude_prune(const MatrixF& dense, double target_sparsity) {
  TASD_CHECK_MSG(target_sparsity >= 0.0 && target_sparsity <= 1.0,
                 "sparsity " << target_sparsity << " out of [0,1]");
  MatrixF out = dense;
  const Index total = out.size();
  const auto to_zero = static_cast<Index>(
      std::llround(target_sparsity * static_cast<double>(total)));
  if (to_zero == 0) return out;

  std::vector<Index> order(total);
  std::iota(order.begin(), order.end(), Index{0});
  auto flat = out.flat();
  // nth_element on |value| finds the pruning threshold set in O(n).
  std::nth_element(order.begin(), order.begin() + static_cast<long>(to_zero),
                   order.end(), [&flat](Index a, Index b) {
                     const float fa = std::fabs(flat[a]);
                     const float fb = std::fabs(flat[b]);
                     if (fa != fb) return fa < fb;
                     return a < b;  // deterministic tie-break
                   });
  for (Index i = 0; i < to_zero; ++i) flat[order[i]] = 0.0F;
  return out;
}

}  // namespace tasd
