#include "accel/perf_model.hpp"

#include <gtest/gtest.h>

namespace tasd::accel {
namespace {

/// A mid-network conv layer: compute-bound on all designs.
dnn::GemmWorkload conv_layer(double w_density, double a_density,
                             bool act_relu = true) {
  dnn::GemmWorkload l;
  l.name = "test";
  l.m = 256;
  l.k = 2304;
  l.n = 784;
  l.weight_density = w_density;
  l.act_density = a_density;
  l.act_pseudo_density = act_relu ? a_density * 0.9 : 0.4;
  l.act_relu = act_relu;
  return l;
}

TEST(PerfModel, DenseTcBaselineCycles) {
  const auto arch = ArchConfig::dense_tc();
  const LayerSim sim = simulate_layer(arch, {conv_layer(1.0, 1.0), {}, {}, {}});
  // ceil(256/32)*ceil(784/32)*2304 = 8*25*2304.
  EXPECT_DOUBLE_EQ(sim.compute_cycles, 8.0 * 25.0 * 2304.0);
  EXPECT_GT(sim.total_energy(), 0.0);
  EXPECT_DOUBLE_EQ(sim.effectual_macs, 256.0 * 2304.0 * 784.0);
}

TEST(PerfModel, DenseTcIgnoresSparsity) {
  const auto arch = ArchConfig::dense_tc();
  const LayerSim dense =
      simulate_layer(arch, {conv_layer(1.0, 1.0), {}, {}, {}});
  const LayerSim sparse =
      simulate_layer(arch, {conv_layer(0.05, 0.4), {}, {}, {}});
  EXPECT_DOUBLE_EQ(dense.cycles, sparse.cycles);
  EXPECT_DOUBLE_EQ(dense.total_energy(), sparse.total_energy());
}

TEST(PerfModel, DstcExploitsBothSides) {
  const auto arch = ArchConfig::dstc();
  const LayerSim sim =
      simulate_layer(arch, {conv_layer(0.05, 0.4), {}, {}, {}});
  EXPECT_NEAR(sim.effectual_macs, 256.0 * 2304.0 * 784.0 * 0.05 * 0.4, 1.0);
  const LayerSim dense_tc = simulate_layer(ArchConfig::dense_tc(),
                                           {conv_layer(0.05, 0.4), {}, {}, {}});
  EXPECT_LT(sim.edp(), dense_tc.edp());
}

TEST(PerfModel, DstcLosesOnDenseWorkloads) {
  // Paper Fig. 12: DSTC has worse EDP than TC when operands are dense.
  const auto dstc = ArchConfig::dstc();
  const auto tc = ArchConfig::dense_tc();
  const auto layer = conv_layer(1.0, 1.0, /*act_relu=*/false);
  EXPECT_GT(simulate_layer(dstc, {layer, {}, {}, {}}).edp(),
            simulate_layer(tc, {layer, {}, {}, {}}).edp());
}

TEST(PerfModel, TtcWithoutConfigRunsDense) {
  const auto ttc = ArchConfig::ttc_vegeta_m8();
  const auto tc = ArchConfig::dense_tc();
  const auto layer = conv_layer(0.05, 0.4);
  const LayerSim a = simulate_layer(ttc, {layer, {}, {}, {}});
  const LayerSim b = simulate_layer(tc, {layer, {}, {}, {}});
  EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
  EXPECT_DOUBLE_EQ(a.total_energy(), b.total_energy());
}

TEST(PerfModel, TasdWCutsCyclesBySeriesDensity) {
  const auto ttc = ArchConfig::ttc_vegeta_m8();
  const auto layer = conv_layer(0.05, 0.4);
  const LayerSim dense = simulate_layer(ttc, {layer, {}, {}, {}});
  LayerExecution exec{layer, TasdConfig::parse("2:8"), {}, {}};
  const LayerSim sim = simulate_layer(ttc, exec);
  EXPECT_NEAR(sim.compute_cycles / dense.compute_cycles, 0.25, 1e-9);
  EXPECT_LT(sim.edp(), dense.edp());
}

TEST(PerfModel, UnsupportedSeriesRejected) {
  const auto ttc = ArchConfig::ttc_stc_m4();
  LayerExecution exec{conv_layer(0.05, 0.4), TasdConfig::parse("2:8"), {}, {}};
  EXPECT_THROW(simulate_layer(ttc, exec), tasd::Error);
}

TEST(PerfModel, BothSparsitiesConcurrentlyRejected) {
  const auto ttc = ArchConfig::ttc_vegeta_m8();
  LayerExecution exec{conv_layer(0.5, 0.5), TasdConfig::parse("2:8"),
                      TasdConfig::parse("2:8"), {}};
  EXPECT_THROW(simulate_layer(ttc, exec), tasd::Error);
}

TEST(PerfModel, GatingSavesMacEnergyOnSparseActs) {
  // TASD-W with sparse activations gates ineffectual MACs: energy falls
  // with activation density, cycles do not (paper §5.3).
  const auto ttc = ArchConfig::ttc_vegeta_m8();
  LayerExecution wet{conv_layer(0.05, 0.8), TasdConfig::parse("2:8"), {}, {}};
  LayerExecution dry{conv_layer(0.05, 0.2), TasdConfig::parse("2:8"), {}, {}};
  const LayerSim sim_wet = simulate_layer(ttc, wet);
  const LayerSim sim_dry = simulate_layer(ttc, dry);
  EXPECT_DOUBLE_EQ(sim_wet.compute_cycles, sim_dry.compute_cycles);
  EXPECT_GT(sim_wet.energy_pj[static_cast<std::size_t>(Component::kMac)],
            sim_dry.energy_pj[static_cast<std::size_t>(Component::kMac)]);
}

TEST(PerfModel, TasdAChargesTasdUnitEnergy) {
  const auto ttc = ArchConfig::ttc_vegeta_m8();
  LayerExecution exec{conv_layer(1.0, 0.4), {}, TasdConfig::parse("2:8"), {}};
  const LayerSim sim = simulate_layer(ttc, exec);
  EXPECT_GT(sim.energy_pj[static_cast<std::size_t>(Component::kTasdUnit)],
            0.0);
  // TASD-W must not charge the unit (offline decomposition).
  LayerExecution wexec{conv_layer(0.05, 0.4), TasdConfig::parse("2:8"), {}, {}};
  EXPECT_DOUBLE_EQ(simulate_layer(ttc, wexec)
                       .energy_pj[static_cast<std::size_t>(Component::kTasdUnit)],
                   0.0);
}

TEST(PerfModel, ExtraTermPaysL1Reaccumulation) {
  const auto ttc = ArchConfig::ttc_vegeta_m8();
  const auto layer = conv_layer(0.05, 0.4);
  LayerExecution one{layer, TasdConfig::parse("4:8"), {}, {}};
  LayerExecution two{layer, TasdConfig::parse("2:8+2:8"), {}, {}};
  // Same slot density (0.5): compute cycles equal...
  const LayerSim s1 = simulate_layer(ttc, one);
  const LayerSim s2 = simulate_layer(ttc, two);
  EXPECT_DOUBLE_EQ(s1.compute_cycles, s2.compute_cycles);
  // ...but the two-term series re-reads/writes C tiles at L1.
  EXPECT_GT(s2.energy_pj[static_cast<std::size_t>(Component::kL1)],
            s1.energy_pj[static_cast<std::size_t>(Component::kL1)]);
}

TEST(PerfModel, MemoryBoundLayerLimitedByDram) {
  // A reduction-heavy single-tile layer streams M*K + K*N operand
  // elements for only K compute cycles: DRAM-bound.
  dnn::GemmWorkload fc;
  fc.m = 32;
  fc.k = 65536;
  fc.n = 32;
  const LayerSim sim =
      simulate_layer(ArchConfig::dense_tc(), {fc, {}, {}, {}});
  EXPECT_GT(sim.memory_cycles, sim.compute_cycles);
  EXPECT_DOUBLE_EQ(sim.cycles, sim.memory_cycles);
}

TEST(PerfModel, GeluActsFillAllSlots) {
  // For GELU (dense) activations, TASD-A slots are fully occupied: the
  // effectual MACs equal the slot MACs.
  const auto ttc = ArchConfig::ttc_vegeta_m8();
  LayerExecution exec{conv_layer(1.0, 1.0, /*act_relu=*/false),
                      {}, TasdConfig::parse("4:8"), {}};
  const LayerSim sim = simulate_layer(ttc, exec);
  EXPECT_NEAR(sim.effectual_macs, sim.slot_macs, sim.slot_macs * 1e-9);
}

TEST(PerfModel, WeightKeptFractionOverridesAnalyticEstimate) {
  const auto ttc = ArchConfig::ttc_vegeta_m8();
  const auto layer = conv_layer(0.05, 1.0);
  LayerExecution analytic{layer, TasdConfig::parse("2:8"), {}, {}};
  LayerExecution measured{layer, TasdConfig::parse("2:8"), {}, 0.03};
  const double mac_a = simulate_layer(ttc, analytic)
                           .energy_pj[static_cast<std::size_t>(Component::kMac)];
  const double mac_m = simulate_layer(ttc, measured)
                           .energy_pj[static_cast<std::size_t>(Component::kMac)];
  EXPECT_GT(mac_a, mac_m);  // 0.05 kept (analytic) vs 0.03 (measured)
}

}  // namespace
}  // namespace tasd::accel
