// Deterministic fault injection (common/fault.hpp): matching, seeded
// fire schedules, fire caps, kinds, and RAII disarm.
#include "common/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <new>
#include <vector>

#include "common/error.hpp"
#include "common/timer.hpp"

namespace tasd::fault {
namespace {

TEST(Fault, NothingArmedIsANoop) {
  ASSERT_FALSE(any_armed());
  EXPECT_NO_THROW(inject("rt.run", "layer"));
}

TEST(Fault, ScopedFaultArmsAndDisarms) {
  {
    Spec spec;
    spec.site = "unit.site";
    const ScopedFault f(spec);
    EXPECT_TRUE(any_armed());
    EXPECT_THROW(inject("unit.site"), Error);
    EXPECT_EQ(f.hits(), 1u);
    EXPECT_EQ(f.fires(), 1u);
  }
  EXPECT_FALSE(any_armed());
  EXPECT_NO_THROW(inject("unit.site"));
}

TEST(Fault, SiteAndDetailMatchAsSubstrings) {
  Spec spec;
  spec.site = "run_batch";
  spec.detail = "conv";
  const ScopedFault f(spec);
  EXPECT_NO_THROW(inject("rt.run", "conv1"));        // site mismatch
  EXPECT_NO_THROW(inject("rt.run_batch", "fc7"));    // detail mismatch
  EXPECT_THROW(inject("rt.run_batch", "conv1"), Error);
  EXPECT_EQ(f.hits(), 1u) << "non-matching hits must not count";
}

TEST(Fault, EmptySiteMatchesEverySite) {
  Spec spec;
  spec.max_fires = 0;  // observe only
  const ScopedFault f(spec);
  inject("a");
  inject("b", "c");
  EXPECT_EQ(f.hits(), 2u);
  EXPECT_EQ(f.fires(), 0u);
}

TEST(Fault, MaxFiresCapsButHitsKeepCounting) {
  Spec spec;
  spec.site = "capped";
  spec.max_fires = 2;
  const ScopedFault f(spec);
  EXPECT_THROW(inject("capped"), Error);
  EXPECT_THROW(inject("capped"), Error);
  EXPECT_NO_THROW(inject("capped"));
  EXPECT_NO_THROW(inject("capped"));
  EXPECT_EQ(f.hits(), 4u);
  EXPECT_EQ(f.fires(), 2u);
}

TEST(Fault, SeededScheduleIsDeterministic) {
  const auto schedule = [](std::uint64_t seed) {
    Spec spec;
    spec.site = "seeded";
    spec.probability = 0.5;
    spec.seed = seed;
    const ScopedFault f(spec);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      bool threw = false;
      try {
        inject("seeded");
      } catch (const Error&) {
        threw = true;
      }
      fired.push_back(threw);
    }
    return fired;
  };
  const auto a = schedule(42), b = schedule(42), c = schedule(43);
  EXPECT_EQ(a, b) << "same seed must reproduce the same fire pattern";
  EXPECT_NE(a, c) << "different seeds must differ (64 draws at p=0.5)";
  // p=0.5 over 64 draws: both outcomes occur.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

TEST(Fault, ThrownErrorCarriesInternalCodeSiteAndMessage) {
  Spec spec;
  spec.site = "msgsite";
  spec.message = "custom fault text";
  const ScopedFault f(spec);
  try {
    inject("msgsite", "layer9");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Error::Code::kInternal);
    const std::string what = e.what();
    EXPECT_NE(what.find("custom fault text"), std::string::npos);
    EXPECT_NE(what.find("msgsite"), std::string::npos);
    EXPECT_NE(what.find("layer9"), std::string::npos);
  }
}

TEST(Fault, BadAllocKindThrowsBadAlloc) {
  Spec spec;
  spec.site = "alloc";
  spec.kind = Kind::kBadAlloc;
  const ScopedFault f(spec);
  EXPECT_THROW(inject("alloc"), std::bad_alloc);
}

TEST(Fault, DelayKindSleepsAndContinues) {
  Spec spec;
  spec.site = "slow";
  spec.kind = Kind::kDelay;
  spec.delay_us = 20000;
  const ScopedFault f(spec);
  Timer t;
  EXPECT_NO_THROW(inject("slow"));
  EXPECT_GE(t.millis(), 15.0) << "delay fault did not stall";
  EXPECT_EQ(f.fires(), 1u);
}

TEST(Fault, StackedFaultsAllConsulted) {
  Spec observe;
  observe.max_fires = 0;
  Spec thrower;
  thrower.site = "stacked";
  const ScopedFault watch(observe);
  const ScopedFault boom(thrower);
  EXPECT_THROW(inject("stacked"), Error);
  EXPECT_EQ(watch.hits(), 1u) << "earlier specs still record the hit";
}

}  // namespace
}  // namespace tasd::fault
