// Model family builders.
//
// These construct the paper's evaluation networks as *scaled-down twins*:
// the same depth, block structure, width ratios, and activation functions
// as the originals, but at a reduced input resolution and channel width so
// the accuracy experiments run in seconds on a CPU (see DESIGN.md,
// substitution table). The full-scale GEMM shapes used by the accelerator
// model live in workloads.hpp.
#pragma once

#include <cstdint>

#include "dnn/model.hpp"

namespace tasd::dnn {

/// Options shared by the convolutional families.
struct ConvNetOptions {
  Index input_hw = 32;        ///< square input resolution
  Index input_channels = 3;
  Index num_classes = 100;
  double width_mult = 0.25;   ///< channel width multiplier vs the original
  std::uint64_t seed = 1;
};

/// Options for the transformer families.
struct TransformerOptions {
  Index dim = 128;
  Index layers = 4;
  Index heads = 4;
  Index mlp_ratio = 4;
  Index num_classes = 100;
  std::uint64_t seed = 1;
};

/// ResNet-{18, 34, 50}-like (50 uses bottleneck blocks). ReLU-based.
Model make_resnet(int depth, const ConvNetOptions& opt);

/// VGG-{11, 16}-like. ReLU-based.
Model make_vgg(int depth, const ConvNetOptions& opt);

/// ConvNeXt-Tiny-like: GELU conv blocks (dense activations).
Model make_convnext(const ConvNetOptions& opt);

/// MobileNet-like: inverted-residual-style expand/project blocks with
/// ReLU6 (the clipped-sparse activation the paper lists alongside ReLU).
Model make_mobilenet(const ConvNetOptions& opt);

/// BERT-base-like encoder stack on pre-embedded token matrices.
/// GELU-based (dense activations).
Model make_bert(const TransformerOptions& opt);

/// ViT-B-16-like: conv patchifier + transformer encoder. GELU-based.
Model make_vit(const ConvNetOptions& conv_opt, const TransformerOptions& opt);

}  // namespace tasd::dnn
