// Channel permutation for TASD (paper §6.1).
//
// The paper notes TASD is compatible with the channel-permutation trick
// (Pool & Yu, NeurIPS'21): reordering the columns of a weight matrix
// regroups which elements share an M-block, which can substantially
// reduce what an N:M view must drop. This module implements the search
// as an optional pre-pass: find a single column permutation that
// minimizes the series' dropped non-zeros; the GEMM stays exact because
// C = A·B = A[:,p]·B[p,:].
#pragma once

#include <vector>

#include "core/approx_stats.hpp"
#include "core/config.hpp"
#include "tensor/matrix.hpp"

namespace tasd {

/// A column permutation and its effect on decomposition quality.
struct PermutationResult {
  std::vector<Index> perm;   ///< new column j comes from old column perm[j]
  ApproxStats before;        ///< stats with the identity permutation
  ApproxStats after;         ///< stats with `perm` applied

  /// Relative reduction of dropped non-zeros (0 = none, 1 = all saved).
  [[nodiscard]] double dropped_nnz_reduction() const;
};

/// Reorder columns: out(:, j) = in(:, perm[j]).
MatrixF apply_column_permutation(const MatrixF& m,
                                 const std::vector<Index>& perm);

/// Reorder rows (for the B operand of a permuted GEMM):
/// out(perm-inverse applied) such that A_perm * permute_rows(B, perm)
/// == A * B. Concretely out(i, :) = in(perm[i], :).
MatrixF permute_rows(const MatrixF& m, const std::vector<Index>& perm);

/// Search a column permutation that reduces the dropped non-zeros of
/// decompose(A, cfg).
///
/// Strategy: density-balancing construction (deal columns, sorted by
/// non-zero count, round-robin across the M-column groups) followed by
/// `refine_passes` of greedy pairwise-swap hill climbing on the exact
/// dropped-non-zero objective. Deterministic.
PermutationResult find_tasd_permutation(const MatrixF& matrix,
                                        const TasdConfig& config,
                                        int refine_passes = 2);

}  // namespace tasd
