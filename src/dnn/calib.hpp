// Calibration profiling for TASD-A (paper §4.3): run a small calibration
// set through the model and collect per-layer activation sparsity
// statistics (mean, p99) plus pseudo-density for dense-activation nets.
#pragma once

#include <string>
#include <vector>

#include "dnn/metrics.hpp"
#include "dnn/model.hpp"

namespace tasd::dnn {

/// Per-GEMM-layer activation statistics gathered over calibration runs.
struct LayerCalibStats {
  std::string name;
  GemmLayer* layer = nullptr;
  Index samples = 0;
  double mean_density = 1.0;
  double p99_density = 1.0;  ///< 99th percentile of per-forward densities
  double mean_pseudo_density = 1.0;
  bool act_induces_sparsity = false;  ///< input comes from a ReLU-family act

  /// Mean activation sparsity degree (1 - mean density).
  [[nodiscard]] double mean_sparsity() const { return 1.0 - mean_density; }
};

/// Run the calibration set through the model (current configuration) and
/// collect per-layer input-operand statistics.
std::vector<LayerCalibStats> collect_calibration(Model& model,
                                                 const EvalSet& calib);

}  // namespace tasd::dnn
