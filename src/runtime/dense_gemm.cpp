#include "runtime/dense_gemm.hpp"

#include "common/error.hpp"

namespace tasd::rt {

MatrixF dense_gemm(const MatrixF& a, const MatrixF& b) {
  MatrixF c(a.rows(), b.cols());
  dense_gemm_accumulate(a, b, c);
  return c;
}

void dense_gemm_accumulate(const MatrixF& a, const MatrixF& b, MatrixF& c) {
  TASD_CHECK_MSG(a.cols() == b.rows(), "GEMM inner dim mismatch");
  TASD_CHECK(c.rows() == a.rows() && c.cols() == b.cols());
  const Index m = a.rows(), k = a.cols(), n = b.cols();
  // i-k-j with 4-wide k unrolling; every MAC executed (no zero skip).
  for (Index i = 0; i < m; ++i) {
    float* __restrict crow = c.data() + i * n;
    const float* arow = a.data() + i * k;
    Index p = 0;
    for (; p + 4 <= k; p += 4) {
      const float a0 = arow[p], a1 = arow[p + 1];
      const float a2 = arow[p + 2], a3 = arow[p + 3];
      const float* __restrict b0 = b.data() + p * n;
      const float* __restrict b1 = b0 + n;
      const float* __restrict b2 = b1 + n;
      const float* __restrict b3 = b2 + n;
      for (Index j = 0; j < n; ++j)
        crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
    }
    for (; p < k; ++p) {
      const float av = arow[p];
      const float* __restrict brow = b.data() + p * n;
      for (Index j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace tasd::rt
