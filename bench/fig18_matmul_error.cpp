// Figure 18 (Appendix A): relative Frobenius error of TASD-approximated
// matrix multiplication, ||(A - A*)B|| / ||A B||, for 256x256 matrices
// (U[0,1] values), A at 20 % / 80 % unstructured sparsity, one-term N:4
// and N:8 configurations.
//
// Paper takeaways: error falls with lower approximated sparsity; the
// sparser A, the smaller the error; N:8 beats N:4 at equal approximated
// sparsity (better expressiveness).
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/tasd_gemm.hpp"
#include "tensor/gemm_ref.hpp"
#include "tensor/generator.hpp"
#include "tensor/norms.hpp"

using namespace tasd;

int main() {
  print_banner("Figure 18: matmul error vs approximated sparsity (256x256)");

  Rng rng(1800);
  const MatrixF b = random_dense(256, 256, Dist::kUniform01, rng);

  TextTable t;
  t.header({"A sparsity", "config", "approx sparsity", "rel. error"});
  for (double sparsity : {0.80, 0.20}) {
    Rng arng(1801 + static_cast<std::uint64_t>(sparsity * 100));
    const MatrixF a =
        random_unstructured(256, 256, 1.0 - sparsity, Dist::kUniform01, arng);
    const MatrixF exact = gemm_ref(a, b);
    for (int m : {4, 8}) {
      for (int n = 1; n < m; ++n) {
        TasdConfig cfg;
        cfg.terms.push_back(sparse::NMPattern(n, m));
        const MatrixF approx = tasd_gemm(a, b, cfg);
        const double err = relative_frobenius_error(exact, approx);
        t.row({TextTable::pct(sparsity, 0), cfg.str(),
               TextTable::pct(cfg.approximated_sparsity(), 1),
               err < 1e-12 ? "0" : TextTable::num(err, 5)});
      }
    }
  }
  t.print();

  std::cout << "\nPaper shape check: error decreases with lower "
               "approximated sparsity; the 80%-sparse A\nshows ~10x lower "
               "error than the 20%-sparse A; at 75% approximated sparsity "
               "2:8 < 1:4.\n";
  return 0;
}
