// Round-trip and corruption-matrix tests for the TASDART1 artifact
// store (ISSUE 9 acceptance): a load either reproduces the compiled
// network bit-for-bit with zero decompositions, or fails with the
// documented error code — never a silently-wrong network.
#include "artifact/artifact.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <optional>

#include "artifact/format.hpp"
#include "common/rng.hpp"
#include "core/plan_cache.hpp"
#include "dnn/workloads.hpp"
#include "tensor/generator.hpp"
#include "tensor/io.hpp"

namespace tasd::rt {
namespace {

/// Two sparse layers plus one dense layer; seeds distinct from every
/// other suite so cross-suite PlanCache hits can't mask the counters.
dnn::NetworkWorkload tiny_net() {
  dnn::NetworkWorkload net;
  net.name = "tiny-artifact";
  net.sparse_weights = true;
  dnn::GemmWorkload l1;
  l1.name = "a";
  l1.m = 48;
  l1.k = 256;
  l1.n = 32;
  l1.weight_density = 0.1;
  l1.weight_seed = 9105;
  dnn::GemmWorkload l2 = l1;
  l2.name = "b";
  l2.m = 96;
  l2.k = 120;  // ragged final 2:8 block: cols % 8 != 0
  l2.weight_seed = 9106;
  dnn::GemmWorkload l3 = l1;
  l3.name = "c-dense";
  l3.m = 32;
  l3.k = 64;
  l3.weight_density = 1.0;
  l3.weight_seed = 9107;
  net.layers = {l1, l2, l3};
  return net;
}

std::vector<std::optional<TasdConfig>> mixed_configs() {
  return {TasdConfig::parse("2:4"), TasdConfig::parse("2:8+1:8"),
          std::nullopt};
}

/// RAII temp file path (removed on destruction).
struct TempPath {
  std::string path;
  explicit TempPath(const std::string& name)
      : path(testing::TempDir() + name) {}
  ~TempPath() { std::remove(path.c_str()); }
};

/// The error code a callable fails with (nullopt = it didn't throw).
template <typename Fn>
std::optional<Error::Code> failure_code(Fn&& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.code();
  }
  return std::nullopt;
}

void patch_u32(std::vector<unsigned char>& bytes, std::size_t offset,
               std::uint32_t v) {
  const std::uint32_t le = io::to_little_endian(v);
  std::memcpy(bytes.data() + offset, &le, sizeof le);
}

void patch_u64(std::vector<unsigned char>& bytes, std::size_t offset,
               std::uint64_t v) {
  const std::uint64_t le = io::to_little_endian(v);
  std::memcpy(bytes.data() + offset, &le, sizeof le);
}

std::uint64_t peek_u64(const std::vector<unsigned char>& bytes,
                       std::size_t offset) {
  std::uint64_t v;
  std::memcpy(&v, bytes.data() + offset, sizeof v);
  return io::from_little_endian(v);
}

/// Save tiny_net once and return the file bytes for patching.
std::vector<unsigned char> saved_bytes(const TempPath& tmp) {
  const auto engine = compile(tiny_net(), mixed_configs(), {});
  save_artifact(engine, tmp.path);
  return io::read_file(tmp.path);
}

TEST(Artifact, RoundTripIsBitExactAtEveryThreadCount) {
  const auto net = tiny_net();
  const auto cfgs = mixed_configs();
  TempPath tmp("tasd_roundtrip.tasdart");

  Rng rng(921);
  std::vector<MatrixF> inputs;
  for (std::size_t i = 0; i < net.layers.size(); ++i)
    inputs.push_back(
        random_dense(net.layers[i].k, 9, Dist::kNormalStd1, rng));
  std::vector<MatrixF> batch;
  for (const Index cols : {1u, 7u, 0u, 16u})
    batch.push_back(
        random_dense(net.layers[0].k, cols, Dist::kNormalStd1, rng));

  for (const std::size_t threads : {0u, 1u, 2u, 5u, 8u}) {
    CompileOptions opt;
    opt.measure.num_threads = threads;
    const auto engine = compile(net, cfgs, opt);
    save_artifact(engine, tmp.path);
    const auto loaded = load_artifact(tmp.path, opt);

    ASSERT_EQ(loaded.layer_count(), engine.layer_count());
    EXPECT_EQ(loaded.name(), engine.name());
    EXPECT_EQ(loaded.configured_count(), engine.configured_count());
    EXPECT_EQ(loaded.plan_bytes(), engine.plan_bytes());
    EXPECT_EQ(loaded.artifact_bytes(), engine.artifact_bytes());
    for (std::size_t i = 0; i < net.layers.size(); ++i) {
      const auto& a = engine.layer(i);
      const auto& b = loaded.layer(i);
      EXPECT_EQ(b.name, a.name);
      EXPECT_EQ(b.weight, a.weight) << "layer " << i;
      EXPECT_EQ(b.config.has_value(), a.config.has_value());
      EXPECT_DOUBLE_EQ(b.kept_nnz_fraction, a.kept_nnz_fraction);
      EXPECT_EQ(loaded.run(i, inputs[i]), engine.run(i, inputs[i]))
          << "layer " << i << " threads=" << threads;
    }
    const auto want = engine.run_batch(0, batch);
    const auto got = loaded.run_batch(0, batch);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t q = 0; q < want.size(); ++q)
      EXPECT_EQ(got[q], want[q]) << "threads=" << threads << " item=" << q;
  }
}

TEST(Artifact, LoadPerformsZeroDecompositions) {
  TempPath tmp("tasd_zerodecomp.tasdart");
  const auto engine = compile(tiny_net(), mixed_configs(), {});
  save_artifact(engine, tmp.path);

  // Start cold: no resident plans for these weights.
  plan_cache().clear();
  const auto before = plan_cache().stats();
  const auto loaded = load_artifact(tmp.path, {});
  const auto after = plan_cache().stats();
  EXPECT_EQ(after.decompositions, before.decompositions)
      << "load_artifact must reconstruct plans, never rebuild them";
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.preloads, before.preloads + 2)
      << "one preload per configured layer";
  EXPECT_EQ(loaded.configured_count(), 2u);
  for (std::size_t i = 0; i < loaded.layer_count(); ++i)
    EXPECT_EQ(bool(loaded.layer(i).series), bool(loaded.layer(i).config));
}

TEST(Artifact, LoadAdoptsPlansSoLaterCompilesHit) {
  TempPath tmp("tasd_adopt.tasdart");
  const auto net = tiny_net();
  const auto cfgs = mixed_configs();
  save_artifact(compile(net, cfgs, {}), tmp.path);

  plan_cache().clear();
  const auto loaded = load_artifact(tmp.path, {});
  const auto before = plan_cache().stats();
  const auto recompiled = compile(net, cfgs, {});
  const auto after = plan_cache().stats();
  EXPECT_EQ(after.decompositions, before.decompositions)
      << "compiling weights an artifact preloaded must hit the cache";
  EXPECT_EQ(after.hits, before.hits + 2);
  // Same resident plan object on both sides.
  EXPECT_EQ(recompiled.layer(0).plan.get(), loaded.layer(0).plan.get());
}

TEST(Artifact, CacheOptOutLoadStaysPrivate) {
  TempPath tmp("tasd_private.tasdart");
  save_artifact(compile(tiny_net(), mixed_configs(), {}), tmp.path);
  plan_cache().clear();
  CompileOptions opt;
  opt.measure.use_plan_cache = false;
  const auto before = plan_cache().stats();
  const auto loaded = load_artifact(tmp.path, opt);
  const auto after = plan_cache().stats();
  EXPECT_EQ(after.preloads, before.preloads);
  EXPECT_EQ(plan_cache().size(), 0u);
  EXPECT_EQ(loaded.configured_count(), 2u);
}

TEST(Artifact, InspectReportsHeaderAndToc) {
  TempPath tmp("tasd_inspect.tasdart");
  const auto bytes = saved_bytes(tmp);
  const auto info = inspect_artifact(tmp.path);
  EXPECT_EQ(info.version, artifact::kVersion);
  EXPECT_EQ(info.name, "tiny-artifact");
  EXPECT_EQ(info.file_bytes, bytes.size());
  ASSERT_EQ(info.layers.size(), 3u);
  EXPECT_TRUE(info.layers[0].configured);
  EXPECT_TRUE(info.layers[1].configured);
  EXPECT_FALSE(info.layers[2].configured);
  for (const auto& l : info.layers) {
    EXPECT_EQ(l.section_offset % artifact::kSectionAlign, 0u);
    EXPECT_GT(l.section_size, 0u);
    EXPECT_LE(l.section_offset + l.section_size, bytes.size());
  }
}

TEST(Artifact, UnopenablePathIsInvalidArgument) {
  EXPECT_EQ(failure_code([] {
              (void)load_artifact("/nonexistent/dir/net.tasdart", {});
            }),
            Error::Code::kInvalidArgument);
}

TEST(Artifact, BadMagicIsFailedPrecondition) {
  TempPath tmp("tasd_badmagic.tasdart");
  auto bytes = saved_bytes(tmp);
  bytes[0] = 'X';
  io::write_file(tmp.path, bytes);
  EXPECT_EQ(failure_code([&] { (void)load_artifact(tmp.path, {}); }),
            Error::Code::kFailedPrecondition);
}

TEST(Artifact, UnsupportedVersionIsFailedPrecondition) {
  TempPath tmp("tasd_version.tasdart");
  auto bytes = saved_bytes(tmp);
  patch_u32(bytes, artifact::kHeaderVersionOffset, artifact::kVersion + 1);
  io::write_file(tmp.path, bytes);
  EXPECT_EQ(failure_code([&] { (void)load_artifact(tmp.path, {}); }),
            Error::Code::kFailedPrecondition);
}

TEST(Artifact, FlippedPayloadBitIsInternal) {
  // A single flipped bit inside the last section: the section CRC (not
  // the TOC CRC, which never covers payloads) must catch it.
  TempPath tmp("tasd_bitflip.tasdart");
  auto bytes = saved_bytes(tmp);
  bytes.back() ^= 0x10;
  io::write_file(tmp.path, bytes);
  EXPECT_EQ(failure_code([&] { (void)load_artifact(tmp.path, {}); }),
            Error::Code::kInternal);
}

TEST(Artifact, TruncationIsInternal) {
  TempPath tmp("tasd_trunc.tasdart");
  const auto bytes = saved_bytes(tmp);
  // Mid-TOC truncation and a stub shorter than the magic.
  for (const std::size_t keep : {artifact::kHeaderBytes + 8, std::size_t{4}}) {
    io::write_file(tmp.path, std::span(bytes).subspan(0, keep));
    EXPECT_EQ(failure_code([&] { (void)load_artifact(tmp.path, {}); }),
              Error::Code::kInternal)
        << "kept " << keep << " bytes";
  }
}

TEST(Artifact, FingerprintMismatchIsInternal) {
  // Re-point layer 0's TOC entry at a fingerprint that does not hash its
  // weight, fixing up the TOC CRC so only the fingerprint gate can fire:
  // the load must refuse to pair a weight with someone else's plan.
  TempPath tmp("tasd_fp.tasdart");
  auto bytes = saved_bytes(tmp);
  const std::uint64_t toc_offset =
      peek_u64(bytes, artifact::kHeaderTocOffsetOffset);
  const std::uint64_t fp_lo =
      peek_u64(bytes, toc_offset + artifact::kTocFpLoOffset);
  patch_u64(bytes, toc_offset + artifact::kTocFpLoOffset, fp_lo ^ 1);
  const std::size_t toc_bytes = 3 * artifact::kTocEntryBytes;
  patch_u32(bytes, artifact::kHeaderTocCrcOffset,
            artifact::crc32(bytes.data() + toc_offset, toc_bytes));
  io::write_file(tmp.path, bytes);
  EXPECT_EQ(failure_code([&] { (void)load_artifact(tmp.path, {}); }),
            Error::Code::kInternal);
}

TEST(Artifact, ArtifactBytesCoversWeightsAndPlans) {
  const auto engine = compile(tiny_net(), mixed_configs(), {});
  Index weight_bytes = 0;
  for (std::size_t i = 0; i < engine.layer_count(); ++i)
    weight_bytes += engine.layer(i).weight.size() * sizeof(float);
  EXPECT_GT(engine.artifact_bytes(), engine.plan_bytes());
  EXPECT_GT(engine.artifact_bytes(), weight_bytes);
  EXPECT_LE(engine.artifact_bytes(),
            weight_bytes + engine.plan_bytes() + 4096)
      << "metadata overhead should stay small for a tiny net";
}

}  // namespace
}  // namespace tasd::rt
