#include "core/decompose.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sparse/pattern.hpp"
#include "sparse/view.hpp"
#include "tensor/generator.hpp"

namespace tasd {
namespace {

TEST(Decompose, SingleTermMatchesView) {
  Rng rng(61);
  const MatrixF m = random_unstructured(8, 32, 0.6, Dist::kNormalStd1, rng);
  const auto d = decompose(m, TasdConfig::parse("2:4"));
  ASSERT_EQ(d.terms.size(), 1u);
  EXPECT_EQ(d.terms[0].dense, sparse::nm_view(m, sparse::NMPattern(2, 4)));
}

TEST(Decompose, TermsAreDisjointSupports) {
  Rng rng(62);
  const MatrixF m = random_dense(8, 32, Dist::kNormalStd1, rng);
  const auto d = decompose(m, TasdConfig::parse("2:8+2:8+2:8"));
  // Every position is non-zero in at most one term.
  for (Index i = 0; i < m.size(); ++i) {
    int holders = 0;
    for (const auto& t : d.terms)
      if (t.dense.flat()[i] != 0.0F) ++holders;
    EXPECT_LE(holders, 1);
  }
}

TEST(Decompose, SuccessiveTermsTakeSmallerMagnitudes) {
  Rng rng(63);
  const MatrixF m = random_dense(4, 32, Dist::kNormalStd1, rng);
  const auto d = decompose(m, TasdConfig::parse("2:8+2:8"));
  // Per block, the smallest |v| kept by term 1 dominates the largest |v|
  // kept by term 2 (greedy extraction from the residual).
  for (Index r = 0; r < m.rows(); ++r) {
    for (Index b = 0; b < m.cols(); b += 8) {
      float min_t1 = 1e30F;
      float max_t2 = 0.0F;
      for (Index i = b; i < b + 8; ++i) {
        const float v1 = std::fabs(d.terms[0].dense(r, i));
        const float v2 = std::fabs(d.terms[1].dense(r, i));
        if (v1 > 0.0F) min_t1 = std::min(min_t1, v1);
        max_t2 = std::max(max_t2, v2);
      }
      EXPECT_GE(min_t1, max_t2);
    }
  }
}

TEST(Decompose, EmptyConfigKeepsAllInResidual) {
  Rng rng(64);
  const MatrixF m = random_dense(4, 8, Dist::kNormalStd1, rng);
  const auto d = decompose(m, TasdConfig{});
  EXPECT_TRUE(d.terms.empty());
  EXPECT_EQ(d.residual, m);
  EXPECT_EQ(d.approximation(), MatrixF(4, 8));
}

TEST(Decompose, LosslessWhenMatrixAlreadyConforming) {
  Rng rng(65);
  const MatrixF m = random_nm_structured(8, 32, 2, 4, Dist::kNormalStd1, rng);
  const auto d = decompose(m, TasdConfig::parse("2:4"));
  EXPECT_TRUE(d.lossless());
  EXPECT_EQ(d.approximation(), m);
}

TEST(Decompose, MixedBlockSizesAcrossTerms) {
  Rng rng(66);
  const MatrixF m = random_dense(4, 16, Dist::kNormalStd1, rng);
  const auto d = decompose(m, TasdConfig::parse("2:4+2:8+2:16"));
  ASSERT_EQ(d.terms.size(), 3u);
  EXPECT_TRUE(sparse::satisfies(d.terms[0].dense, sparse::NMPattern(2, 4)));
  EXPECT_TRUE(sparse::satisfies(d.terms[1].dense, sparse::NMPattern(2, 8)));
  EXPECT_TRUE(sparse::satisfies(d.terms[2].dense, sparse::NMPattern(2, 16)));
}

TEST(Decompose, ApproximationPlusResidualReconstructs) {
  Rng rng(67);
  const MatrixF m = random_unstructured(16, 40, 0.7, Dist::kNormal, rng);
  const auto d = decompose(m, TasdConfig::parse("1:4+1:8"));
  EXPECT_EQ(d.reconstruct_exact(), m);
}

TEST(Decompose, CompressedTermRoundTrips) {
  Rng rng(68);
  const MatrixF m = random_unstructured(8, 24, 0.5, Dist::kNormalStd1, rng);
  const auto d = decompose(m, TasdConfig::parse("2:4"));
  const auto compressed = d.terms[0].compressed();
  EXPECT_EQ(compressed.to_dense(), d.terms[0].dense);
}

TEST(Approximate, MatchesDecomposeApproximation) {
  Rng rng(69);
  const MatrixF m = random_dense(4, 16, Dist::kNormalStd1, rng);
  const auto cfg = TasdConfig::parse("4:8+1:8");
  EXPECT_EQ(approximate(m, cfg), decompose(m, cfg).approximation());
}

TEST(Decompose, AllZeroMatrixIsTriviallyLossless) {
  const MatrixF m(4, 16);
  const auto d = decompose(m, TasdConfig::parse("1:8"));
  EXPECT_TRUE(d.lossless());
  EXPECT_EQ(d.terms[0].dense.nnz(), 0u);
}

}  // namespace
}  // namespace tasd
