#include "common/rng.hpp"

namespace tasd {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

float Rng::uniform_float(float lo, float hi) {
  std::uniform_real_distribution<float> d(lo, hi);
  return d(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(engine_);
}

bool Rng::bernoulli(double p) {
  std::bernoulli_distribution d(p);
  return d(engine_);
}

Rng Rng::fork() {
  // Draw a fresh seed from this stream; the child is then independent.
  return Rng(engine_());
}

}  // namespace tasd
