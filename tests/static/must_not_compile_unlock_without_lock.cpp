// MUST NOT COMPILE under -Wthread-safety -Werror: releases a mutex
// that is not held ("releasing mutex ... that was not held").
#include "common/sync.hpp"

void probe() {
  tasd::Mutex mu;
  mu.unlock();  // never locked: compile error
}
