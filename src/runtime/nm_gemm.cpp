#include "runtime/nm_gemm.hpp"

#include "common/error.hpp"

namespace tasd::rt {

MatrixF nm_gemm(const sparse::NMSparseMatrix& a, const MatrixF& b,
                const ExecPolicy& policy) {
  MatrixF c(a.rows(), b.cols());
  nm_gemm_accumulate(a, b, c, policy);
  return c;
}

void nm_gemm_accumulate(const sparse::NMSparseMatrix& a, const MatrixF& b,
                        MatrixF& c, const ExecPolicy& policy) {
  TASD_CHECK_MSG(a.cols() == b.rows(), "N:M GEMM inner dim mismatch");
  TASD_CHECK(c.rows() == a.rows() && c.cols() == b.cols());
  GemmDispatch::instance().nm(policy.nm_kernel)(a, b, c,
                                                resolve_pool(policy));
}

TasdSeriesGemm::TasdSeriesGemm(const Decomposition& decomposition)
    : rows_(decomposition.residual.rows()),
      cols_(decomposition.residual.cols()) {
  owned_terms_.reserve(decomposition.terms.size());
  for (const auto& t : decomposition.terms)
    owned_terms_.push_back(t.compressed());
}

TasdSeriesGemm::TasdSeriesGemm(std::shared_ptr<const DecompositionPlan> plan)
    : rows_(plan->rows), cols_(plan->cols), plan_(std::move(plan)) {}

MatrixF TasdSeriesGemm::multiply(const MatrixF& b,
                                 const ExecPolicy& policy) const {
  TASD_CHECK_MSG(cols_ == b.rows(), "TASD series GEMM inner dim mismatch");
  MatrixF c(rows_, b.cols());
  // Term-major through the registry so kernel selection (policy or
  // set_default_nm) applies to the series path too. Per output element
  // the accumulation order is terms in series order, k ascending within
  // a term — identical at every thread count and for every row-partition
  // kernel.
  const NmKernel kernel = GemmDispatch::instance().nm(policy.nm_kernel);
  ThreadPool& pool = resolve_pool(policy);
  for (const auto& t : terms()) kernel(t, b, c, pool);
  return c;
}

Index TasdSeriesGemm::nnz() const {
  Index total = 0;
  for (const auto& t : terms()) total += t.nnz();
  return total;
}

}  // namespace tasd::rt
