// Analytical per-layer performance/energy model (the Sparseloop-style
// substrate of the paper's §5.1 methodology).
//
// The model counts compute cycles (structured-compressed reduction loop),
// memory traffic per hierarchy level under the Fig. 11 decomposition-aware
// dataflow, and per-component energy. It is a counting model, not a
// cycle-accurate simulator; only relative numbers are meaningful, which is
// all the paper's normalized figures need.
#pragma once

#include <array>
#include <optional>
#include <string>

#include "accel/arch.hpp"
#include "accel/energy_table.hpp"
#include "dnn/workloads.hpp"

namespace tasd::accel {

/// Energy breakdown components (Fig. 15 categories).
enum class Component : std::size_t {
  kMac = 0,
  kRf,
  kL1,
  kL2,
  kDram,
  kTasdUnit,
  kAccumBuf,  ///< DSTC's unstructured accumulation-buffer overhead
  kCount,
};

constexpr std::size_t kComponentCount =
    static_cast<std::size_t>(Component::kCount);

/// Name of a component ("MAC", "RF", ...).
const char* component_name(Component c);

/// One layer plus the TASD decision applied to it. At most one of
/// weight_cfg / act_cfg may be set (the paper does not exploit both
/// sparsities concurrently, §5.1).
struct LayerExecution {
  dnn::GemmWorkload layer;
  std::optional<TasdConfig> weight_cfg;  ///< TASD-W series
  std::optional<TasdConfig> act_cfg;     ///< TASD-A series
  /// Measured fraction of *all* weight positions kept by the series
  /// (from an actual decomposition); if unset the model uses
  /// min(weight_density, series density).
  std::optional<double> weight_kept_fraction;
};

/// Simulation result for one layer.
struct LayerSim {
  double compute_cycles = 0.0;
  double memory_cycles = 0.0;
  double cycles = 0.0;  ///< max(compute incl. stalls, memory)
  double effectual_macs = 0.0;
  double slot_macs = 0.0;  ///< MAC issue slots occupied (burn time)
  std::array<double, kComponentCount> energy_pj{};

  [[nodiscard]] double total_energy() const;
  [[nodiscard]] double edp() const { return cycles * total_energy(); }
};

/// Simulate one layer on one architecture.
LayerSim simulate_layer(const ArchConfig& arch, const LayerExecution& exec,
                        const EnergyTable& table = kDefaultEnergy);

}  // namespace tasd::accel
