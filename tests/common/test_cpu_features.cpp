// CPU feature detection and the AVX2 enablement policy (the gate the
// GemmDispatch registry consults before registering the SIMD kernels).
#include "common/cpu_features.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace tasd {
namespace {

TEST(CpuFeatures, DetectionIsStableWithinAProcess) {
  const CpuFeatures a = detect_cpu_features();
  const CpuFeatures b = detect_cpu_features();
  EXPECT_EQ(a.avx2, b.avx2);
  EXPECT_EQ(a.fma, b.fma);
  EXPECT_EQ(a.os_ymm, b.os_ymm);
}

TEST(CpuFeatures, Avx2UsableRequiresIsaAndOsSupport) {
  CpuFeatures f;
  EXPECT_FALSE(f.avx2_usable());
  f.avx2 = true;
  f.fma = true;
  EXPECT_FALSE(f.avx2_usable()) << "OS must save YMM state";
  f.os_ymm = true;
  EXPECT_TRUE(f.avx2_usable());
  f.fma = false;
  EXPECT_FALSE(f.avx2_usable()) << "the kernels use FMA instructions";
}

TEST(CpuFeatures, EnablementPolicyHonorsTheDisableFlag) {
  // The pure policy behind avx2_available(): hardware support is
  // necessary, and TASD_DISABLE_AVX2 vetoes it — the forced-fallback
  // path the scalar CI leg runs.
  CpuFeatures capable;
  capable.avx2 = capable.fma = capable.os_ymm = true;
  EXPECT_TRUE(avx2_enabled(capable, /*disabled_by_env=*/false));
  EXPECT_FALSE(avx2_enabled(capable, /*disabled_by_env=*/true));
  EXPECT_FALSE(avx2_enabled(CpuFeatures{}, /*disabled_by_env=*/false));
  EXPECT_FALSE(avx2_enabled(CpuFeatures{}, /*disabled_by_env=*/true));
}

TEST(CpuFeatures, DisableFlagParsesLikeABoolean) {
  // Empty and "0" mean "not disabled"; anything else disables. Restore
  // the variable afterwards so sibling tests see the process's real
  // environment.
  const char* saved = std::getenv("TASD_DISABLE_AVX2");
  const std::string saved_value = saved ? saved : "";
  const bool had = saved != nullptr;

  unsetenv("TASD_DISABLE_AVX2");
  EXPECT_FALSE(avx2_disabled_by_env());
  setenv("TASD_DISABLE_AVX2", "", 1);
  EXPECT_FALSE(avx2_disabled_by_env());
  setenv("TASD_DISABLE_AVX2", "0", 1);
  EXPECT_FALSE(avx2_disabled_by_env());
  setenv("TASD_DISABLE_AVX2", "1", 1);
  EXPECT_TRUE(avx2_disabled_by_env());
  setenv("TASD_DISABLE_AVX2", "yes", 1);
  EXPECT_TRUE(avx2_disabled_by_env());

  if (had)
    setenv("TASD_DISABLE_AVX2", saved_value.c_str(), 1);
  else
    unsetenv("TASD_DISABLE_AVX2");
}

TEST(CpuFeatures, CachedAvailabilityMatchesThePolicy) {
  // avx2_available() caches the process-start answer; it must equal the
  // policy applied to the current probe as long as the env var did not
  // change after first use (this suite restores it above).
  EXPECT_EQ(avx2_available(),
            avx2_enabled(detect_cpu_features(), avx2_disabled_by_env()));
}

}  // namespace
}  // namespace tasd
