#include "runtime/compiled_network.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/plan_cache.hpp"
#include "dnn/layer_binding.hpp"
#include "runtime/dense_gemm.hpp"
#include "tensor/generator.hpp"

namespace tasd::rt {
namespace {

/// Small synthetic workload: two layers, generous sparsity. Seeds are
/// distinct from the engine tests so cross-suite PlanCache hits can't
/// mask this file's prewarm accounting.
dnn::NetworkWorkload tiny_net() {
  dnn::NetworkWorkload net;
  net.name = "tiny-compiled";
  net.sparse_weights = true;
  dnn::GemmWorkload l1;
  l1.name = "a";
  l1.m = 64;
  l1.k = 256;
  l1.n = 64;
  l1.weight_density = 0.1;
  l1.weight_seed = 7005;
  dnn::GemmWorkload l2 = l1;
  l2.name = "b";
  l2.m = 128;
  l2.k = 128;
  l2.weight_seed = 7006;
  net.layers = {l1, l2};
  return net;
}

std::vector<std::optional<TasdConfig>> mixed_configs() {
  return {TasdConfig::parse("2:4"), std::nullopt};
}

TEST(CompiledNetwork, CompileBindsLayersAndPrewarmsPlansExactlyOnce) {
  const auto net = tiny_net();
  const std::vector<std::optional<TasdConfig>> cfgs{
      TasdConfig::parse("2:4"), TasdConfig::parse("1:4")};
  const auto before = plan_cache().stats();
  const auto engine = compile(net, cfgs, {});
  const auto after = plan_cache().stats();
  // One cache visit per configured layer, no more.
  EXPECT_EQ(after.hits + after.misses, before.hits + before.misses + 2);

  ASSERT_EQ(engine.layer_count(), 2u);
  EXPECT_EQ(engine.name(), "tiny-compiled");
  EXPECT_EQ(engine.configured_count(), 2u);
  EXPECT_GT(engine.plan_bytes(), 0u);
  for (std::size_t i = 0; i < 2; ++i) {
    const auto& l = engine.layer(i);
    EXPECT_EQ(l.name, net.layers[i].name);
    EXPECT_EQ(l.m, net.layers[i].m);
    EXPECT_EQ(l.k, net.layers[i].k);
    EXPECT_EQ(l.n, net.layers[i].n);
    ASSERT_TRUE(l.plan);
    ASSERT_TRUE(l.series);
    EXPECT_GT(l.kept_nnz_fraction, 0.0);
  }

  // A second compile of the same weights performs zero additional
  // decompositions — the plans are shared through the cache.
  const auto engine2 = compile(net, cfgs, {});
  const auto again = plan_cache().stats();
  EXPECT_EQ(again.decompositions, after.decompositions);
  EXPECT_GE(again.hits, after.hits + 2);
  EXPECT_EQ(engine2.layer(0).plan.get(), engine.layer(0).plan.get());
}

TEST(CompiledNetwork, ConfigListMustAlign) {
  EXPECT_THROW(compile(tiny_net(), {std::nullopt}, {}), Error);
}

TEST(CompiledNetwork, RunMatchesDirectKernelPathsAtEveryThreadCount) {
  // Acceptance invariant: run()/run_batch() are bit-identical to the
  // TasdSeriesGemm::multiply / multiply_batch (and dense_gemm) paths at
  // every thread count. The direct paths execute under the artifact's
  // resolved kernel selection ("auto" may bind the AVX2 family, whose
  // bits differ from the scalar registry defaults) but on the default
  // pool — the kernel name fixes the bits, the pool never does.
  const auto net = tiny_net();
  const auto cfgs = mixed_configs();

  Rng rng(424);
  const MatrixF b0 = random_dense(net.layers[0].k, 9, Dist::kNormalStd1, rng);
  const MatrixF b1 = random_dense(net.layers[1].k, 9, Dist::kNormalStd1, rng);

  const MatrixF w0 = dnn::materialize_weight(net.layers[0]);
  const MatrixF w1 = dnn::materialize_weight(net.layers[1]);
  const TasdSeriesGemm series(plan_cache().get_or_build(w0, *cfgs[0]));
  ExecPolicy resolved;  // what "auto" resolves to, on the default pool
  resolved.dense_kernel = GemmDispatch::instance().best_dense();
  resolved.nm_kernel = GemmDispatch::instance().best_nm();
  const MatrixF want0 = series.multiply(b0, resolved);
  const MatrixF want1 = dense_gemm(w1, b1, resolved);

  for (const std::size_t threads : {0u, 1u, 2u, 5u, 8u}) {
    CompileOptions opt;
    opt.measure.num_threads = threads;
    const auto engine = compile(net, cfgs, opt);
    EXPECT_EQ(engine.run(0, b0), want0) << "threads=" << threads;
    EXPECT_EQ(engine.run(1, b1), want1) << "threads=" << threads;
  }
}

TEST(CompiledNetwork, RunBatchMatchesLoopedRunAtEveryThreadCount) {
  const auto net = tiny_net();
  const auto cfgs = mixed_configs();

  Rng rng(425);
  // Ragged batch, including a zero-width item.
  std::vector<MatrixF> bs;
  for (const Index cols : {1u, 7u, 0u, 16u})
    bs.push_back(random_dense(net.layers[0].k, cols, Dist::kNormalStd1, rng));

  for (const std::size_t threads : {0u, 1u, 2u, 5u, 8u}) {
    CompileOptions opt;
    opt.measure.num_threads = threads;
    const auto engine = compile(net, cfgs, opt);
    const auto batch = engine.run_batch(0, bs);
    ASSERT_EQ(batch.size(), bs.size());
    for (std::size_t q = 0; q < bs.size(); ++q)
      EXPECT_EQ(batch[q], engine.run(0, bs[q]))
          << "threads=" << threads << " item=" << q;
  }
}

TEST(CompiledNetwork, RepeatedRunsPerformZeroAdditionalDecompositions) {
  const auto net = tiny_net();
  const auto engine = compile(net, mixed_configs(), {});
  Rng rng(426);
  const MatrixF b = random_dense(net.layers[0].k, 5, Dist::kNormalStd1, rng);
  const std::vector<MatrixF> bs{b, b};

  const auto before = plan_cache().stats();
  for (int pass = 0; pass < 3; ++pass) {
    (void)engine.run(0, b);
    (void)engine.run_batch(0, bs);
  }
  (void)engine.measure();
  (void)engine.serving_throughput({1, 2});
  const auto after = plan_cache().stats();
  EXPECT_EQ(after.decompositions, before.decompositions)
      << "executing a compiled artifact must never decompose";
  EXPECT_EQ(after.hits, before.hits)
      << "executing a compiled artifact must not even consult the cache";
  EXPECT_EQ(after.misses, before.misses);
}

TEST(CompiledNetwork, PlanCacheOptOutBuildsPrivatePlans) {
  const auto net = tiny_net();
  CompileOptions opt;
  opt.measure.use_plan_cache = false;
  const auto before = plan_cache().stats();
  const auto engine = compile(net, mixed_configs(), opt);
  const auto after = plan_cache().stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  ASSERT_TRUE(engine.layer(0).series);
  Rng rng(427);
  const MatrixF b = random_dense(net.layers[0].k, 3, Dist::kNormalStd1, rng);
  EXPECT_EQ(engine.run(0, b).rows(), net.layers[0].m);
}

TEST(CompiledNetwork, MeasureReportsEveryLayer) {
  const auto net = tiny_net();
  CompileOptions opt;
  opt.n_divisor = 1;
  opt.measure.repeats = 1;
  const auto engine = compile(net, mixed_configs(), opt);
  const auto timings = engine.measure();
  ASSERT_EQ(timings.size(), 2u);
  EXPECT_EQ(timings[0].name, "a");
  EXPECT_GT(timings[0].dense_ms, 0.0);
  EXPECT_GT(timings[0].tasd_ms, 0.0);
  EXPECT_TRUE(timings[0].config.has_value());
  EXPECT_DOUBLE_EQ(timings[0].kept_nnz_fraction,
                   engine.layer(0).kept_nnz_fraction);
  EXPECT_FALSE(timings[1].config.has_value());
  EXPECT_EQ(timings[1].tasd_ms, 0.0);
}

TEST(CompiledNetwork, MeasureAppliesNDivisorShrink) {
  auto net = tiny_net();
  net.layers[0].n = 6;    // < n_divisor: must keep full N
  net.layers[1].n = 100;  // 100/8 = 12.5: must round to 13
  CompileOptions opt;
  opt.n_divisor = 8;
  opt.measure.repeats = 1;
  const auto timings =
      compile(net, {std::nullopt, std::nullopt}, opt).measure();
  EXPECT_EQ(timings[0].n, 6u);
  EXPECT_EQ(timings[1].n, 13u);
}

TEST(CompiledNetwork, ServingThroughputMeasuresEveryBatchSize) {
  const auto net = tiny_net();
  CompileOptions opt;
  opt.measure.repeats = 1;
  const auto engine = compile(net, mixed_configs(), opt);
  const auto results = engine.serving_throughput({1, 3});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].batch_size, 1u);
  EXPECT_EQ(results[1].batch_size, 3u);
  for (const auto& r : results) {
    EXPECT_GT(r.dense_ms, 0.0);
    EXPECT_GT(r.tasd_ms, 0.0);
    EXPECT_GT(r.dense_qps, 0.0);
    EXPECT_GT(r.tasd_qps, 0.0);
  }
  EXPECT_THROW(engine.serving_throughput({0}), Error);
}

TEST(CompiledNetwork, RunValidatesShapesAndIndices) {
  const auto net = tiny_net();
  const auto engine = compile(net, mixed_configs(), {});
  Rng rng(428);
  const MatrixF wrong =
      random_dense(net.layers[0].k + 1, 3, Dist::kNormalStd1, rng);
  EXPECT_THROW((void)engine.run(0, wrong), Error);
  EXPECT_THROW((void)engine.run(1, wrong), Error);  // dense path too
  const std::vector<MatrixF> bad{wrong};
  EXPECT_THROW((void)engine.run_batch(0, bad), Error);
  EXPECT_THROW((void)engine.layer(2), Error);
  const MatrixF ok = random_dense(net.layers[0].k, 3, Dist::kNormalStd1, rng);
  EXPECT_THROW((void)engine.run(5, ok), Error);
}

TEST(CompiledNetwork, CompileFromExplicitBindings) {
  Rng rng(429);
  std::vector<dnn::LayerBinding> bindings(2);
  bindings[0].name = "sparse";
  bindings[0].weight = random_dense(16, 32, Dist::kNormalStd1, rng);
  bindings[0].positions = 12;
  bindings[0].config = TasdConfig::parse("2:4");
  bindings[1].name = "dense";
  bindings[1].weight = random_dense(8, 16, Dist::kNormalStd1, rng);
  bindings[1].positions = 12;

  const MatrixF w0 = bindings[0].weight;  // compile moves the bindings
  const auto engine = compile("handmade", std::move(bindings), {});
  EXPECT_EQ(engine.name(), "handmade");
  ASSERT_EQ(engine.layer_count(), 2u);
  EXPECT_EQ(engine.configured_count(), 1u);
  const MatrixF b = random_dense(32, 4, Dist::kNormalStd1, rng);
  const TasdSeriesGemm series(
      plan_cache().get_or_build(w0, TasdConfig::parse("2:4")));
  EXPECT_EQ(engine.run(0, b), series.multiply(b, engine.policy()));
}

TEST(CompiledNetwork, CompileValidatesOptions) {
  CompileOptions bad_div;
  bad_div.n_divisor = 0;
  EXPECT_THROW(compile(tiny_net(), mixed_configs(), bad_div), Error);
  CompileOptions bad_cols;
  bad_cols.query_cols = 0;
  EXPECT_THROW(compile(tiny_net(), mixed_configs(), bad_cols), Error);
}

TEST(CompiledNetwork, CompileRejectsUnknownKernelNamesEagerly) {
  // Kernel binding is a compile-time promise: a name the registry does
  // not know must fail at compile(), not mid-inference at first run().
  for (auto field : {&CompileOptions::dense_kernel, &CompileOptions::nm_kernel,
                     &CompileOptions::dense_batch_kernel,
                     &CompileOptions::nm_batch_kernel}) {
    CompileOptions opt;
    opt.*field = "no-such-kernel";
    EXPECT_THROW(compile(tiny_net(), mixed_configs(), opt), Error);
  }
  // Known non-default names still compile and execute. Within one
  // rounding family, kernel selection only changes scheduling: the
  // serial scalar kernels produce the same bits as the parallel scalar
  // kernels (AVX2 kernels are a different family — docs/kernels.md).
  CompileOptions serial;
  serial.nm_kernel = "serial";
  serial.dense_kernel = "tiled-serial";
  const auto engine = compile(tiny_net(), mixed_configs(), serial);
  CompileOptions scalar;
  scalar.nm_kernel = "row-parallel";
  scalar.dense_kernel = "tiled-parallel";
  Rng rng(430);
  const MatrixF b =
      random_dense(tiny_net().layers[0].k, 3, Dist::kNormalStd1, rng);
  EXPECT_EQ(engine.run(0, b),
            compile(tiny_net(), mixed_configs(), scalar).run(0, b))
      << "within a kernel family, selection must not change results, "
         "only scheduling";
}

}  // namespace
}  // namespace tasd::rt
