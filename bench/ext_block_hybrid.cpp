// Extension: TASD beyond N:M (paper §3: "the method is general").
//
// Compares three structured families at (approximately) equal kept-
// element budget on matrices with different sparsity *structure*:
//   * pure N:M series,
//   * pure block sparsity,
//   * hybrid (block term + N:M mop-up).
// Random scattered sparsity favours N:M; clustered sparsity favours
// blocks; the hybrid is robust to both — the argument for a TASD
// abstraction that is not tied to one pattern family.
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/block_decompose.hpp"
#include "tensor/generator.hpp"
#include "tensor/norms.hpp"

using namespace tasd;

namespace {

/// Scattered unstructured sparsity.
MatrixF scattered(Rng& rng) {
  return random_unstructured(64, 128, 0.25, Dist::kNormalStd1, rng);
}

/// Clustered sparsity: dense 8x16 patches on an empty background plus a
/// light scatter.
MatrixF clustered(Rng& rng) {
  MatrixF m(64, 128);
  for (int patch = 0; patch < 8; ++patch) {
    const Index r0 = static_cast<Index>(rng.uniform_int(0, 56));
    const Index c0 = static_cast<Index>(rng.uniform_int(0, 112));
    for (Index r = r0; r < r0 + 8; ++r)
      for (Index c = c0; c < c0 + 16; ++c)
        m(r, c) = static_cast<float>(rng.normal(0.0, 1.0));
  }
  for (Index i = 0; i < m.size() / 50; ++i) {
    const auto r = static_cast<Index>(rng.uniform_int(0, 63));
    const auto c = static_cast<Index>(rng.uniform_int(0, 127));
    m(r, c) = static_cast<float>(rng.normal(0.0, 0.5));
  }
  return m;
}

double kept_magnitude_fraction(const MatrixF& original,
                               const MatrixF& residual) {
  const double total = magnitude_sum(original);
  if (total == 0.0) return 1.0;
  return 1.0 - magnitude_sum(residual) / total;
}

}  // namespace

int main() {
  print_banner("Extension: N:M vs block vs hybrid TASD terms "
               "(~37.5% kept-slot budget)");

  TextTable t;
  t.header({"matrix structure", "decomposition", "kept magnitude",
            "dropped nnz"});
  for (auto [label, make] :
       {std::pair<const char*, MatrixF (*)(Rng&)>{"scattered", &scattered},
        std::pair<const char*, MatrixF (*)(Rng&)>{"clustered", &clustered}}) {
    Rng rng(7100);
    const MatrixF m = make(rng);

    // Pure N:M at 3/8 density.
    const auto nm = decompose(m, TasdConfig::parse("2:8+1:8"));
    t.row({label, "N:M 2:8+1:8",
           TextTable::pct(kept_magnitude_fraction(m, nm.residual)),
           std::to_string(nm.residual.nnz())});

    // Pure block: 8x16 tiles, keep 3 of 8 per tile-row (3/8 budget).
    const auto blk = hybrid_decompose(m, {BlockPattern(8, 16, 3)},
                                      TasdConfig{});
    t.row({label, "block 8x16 keep3",
           TextTable::pct(kept_magnitude_fraction(m, blk.residual)),
           std::to_string(blk.residual.nnz())});

    // Hybrid: one block tile per row (1/8) + 2:8 N:M (2/8).
    const auto hyb = hybrid_decompose(m, {BlockPattern(8, 16, 1)},
                                      TasdConfig::parse("2:8"));
    t.row({label, "hybrid block+2:8",
           TextTable::pct(kept_magnitude_fraction(m, hyb.residual)),
           std::to_string(hyb.residual.nnz())});
  }
  t.print();

  std::cout << "\nInterpretation: scattered sparsity favours fine-grained "
               "N:M terms; clustered\nsparsity favours block terms; the "
               "hybrid stays near the better of the two on both —\n"
               "supporting the paper's claim that TASD generalizes across "
               "structured families.\n";
  return 0;
}
