#include "accel/network_sim.hpp"

#include <gtest/gtest.h>

#include "dnn/workloads.hpp"
#include "tasder/workload_opt.hpp"

namespace tasd::accel {
namespace {

TEST(NetworkSim, AggregatesRepeats) {
  dnn::GemmWorkload l;
  l.m = 64;
  l.k = 64;
  l.n = 64;
  l.repeat = 3;
  const auto arch = ArchConfig::dense_tc();
  const NetworkSim one =
      simulate_network(arch, {{l, {}, {}, {}}}, "one");
  dnn::GemmWorkload single = l;
  single.repeat = 1;
  const NetworkSim base =
      simulate_network(arch, {{single, {}, {}, {}}}, "base");
  EXPECT_DOUBLE_EQ(one.cycles, 3.0 * base.cycles);
  EXPECT_DOUBLE_EQ(one.energy_pj, 3.0 * base.energy_pj);
}

TEST(NetworkSim, EnergyComponentsSumToTotal) {
  const auto net = dnn::resnet50_workload(false, 42);
  const auto arch = ArchConfig::dense_tc();
  const NetworkSim sim = simulate_network(
      arch, tasder::plain_executions(net), net.name);
  double sum = 0.0;
  for (double e : sim.energy_by_component) sum += e;
  EXPECT_NEAR(sum, sim.energy_pj, sim.energy_pj * 1e-9);
}

TEST(NetworkSim, NormalizedEdpOfBaselineIsOne) {
  const auto net = dnn::bert_workload(false, 42);
  const auto arch = ArchConfig::dense_tc();
  const NetworkSim sim =
      simulate_network(arch, tasder::plain_executions(net), net.name);
  EXPECT_DOUBLE_EQ(normalized_edp(sim, sim), 1.0);
}

TEST(NetworkSim, Geomean) {
  EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(geomean({8.0}), 8.0);
  EXPECT_THROW(geomean({}), tasd::Error);
  EXPECT_THROW(geomean({1.0, 0.0}), tasd::Error);
}

TEST(NetworkSim, TtcBeatsTcOnSparseResnet) {
  // The headline claim, at network scale with TASDER decisions.
  const auto net = dnn::resnet50_workload(true, 42);
  const auto tc = ArchConfig::dense_tc();
  const auto ttc = ArchConfig::ttc_vegeta_m8();
  const auto baseline =
      simulate_network(tc, tasder::plain_executions(net), net.name);
  const auto execs =
      tasder::optimize_workload(net, tasder::hw_profile_from(ttc));
  const auto sim = simulate_network(ttc, execs, net.name);
  // Paper Fig. 12: ~83 % EDP reduction; require at least 60 % here.
  EXPECT_LT(normalized_edp(sim, baseline), 0.4);
}

}  // namespace
}  // namespace tasd::accel
