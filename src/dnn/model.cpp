#include "dnn/model.hpp"

#include "common/error.hpp"

namespace tasd::dnn {

Feature Model::forward(const Feature& input) {
  TASD_CHECK_MSG(!layers_.empty(), "model '" << name_ << "' has no layers");
  Feature x = layers_.front()->forward(input);
  for (std::size_t i = 1; i < layers_.size(); ++i) x = layers_[i]->forward(x);
  return x;
}

std::vector<GemmLayer*> Model::gemm_layers() {
  std::vector<GemmLayer*> out;
  for (auto& l : layers_) l->collect_gemm_layers(out);
  return out;
}

void Model::clear_tasd() {
  for (auto* l : gemm_layers()) {
    l->set_tasd_w(std::nullopt);
    l->set_tasd_a(std::nullopt);
  }
}

Index Model::parameter_count() {
  Index total = 0;
  for (auto* l : gemm_layers()) total += l->weight().size();
  return total;
}

double Model::weight_sparsity() {
  Index total = 0;
  Index nnz = 0;
  for (auto* l : gemm_layers()) {
    total += l->weight().size();
    nnz += l->weight().nnz();
  }
  if (total == 0) return 0.0;
  return 1.0 - static_cast<double>(nnz) / static_cast<double>(total);
}

}  // namespace tasd::dnn
