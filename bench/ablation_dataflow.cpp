// Ablation: the decomposition-aware dataflow (paper Fig. 11 / §4.4).
//
// The TTC keeps B tiles in L2 and C tiles in L1/RF across the TASD
// terms; the naive alternative executes each term as an independent GEMM
// pass, streaming partial C through DRAM. This bench quantifies what the
// dataflow is worth on two-term series.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"

using namespace tasd;

int main() {
  print_banner("Ablation: decomposition-aware dataflow vs naive "
               "term-by-term execution");

  const auto workloads = bench::paper_workloads();
  auto aware = accel::ArchConfig::ttc_vegeta_m8();
  auto naive = accel::ArchConfig::ttc_vegeta_m8();
  naive.name = "TTC-VEGETA-M8 (naive)";
  naive.decomposition_aware_dataflow = false;

  TextTable t;
  t.header({"workload", "EDP (aware)", "EDP (naive)", "naive/aware"});
  for (const auto& net : workloads) {
    const auto base = bench::baseline_tc(net);
    const double e_aware =
        accel::normalized_edp(bench::run_on(aware, net), base);
    const double e_naive =
        accel::normalized_edp(bench::run_on(naive, net), base);
    t.row({net.name, TextTable::num(e_aware, 3), TextTable::num(e_naive, 3),
           TextTable::num(e_naive / e_aware, 3)});
  }
  t.print();
  std::cout << "\nInterpretation: multi-term series pay extra C traffic; "
               "the Fig. 11 dataflow keeps it\nat L1 instead of DRAM. "
               "Workloads whose TASDER decisions use 2-term series show "
               "the gap;\nsingle-term decisions are unaffected.\n";
  return 0;
}
