// Shared helper for the kernel property/batch test suites.
#pragma once

#include <string>

namespace tasd::rt::testing {

/// The single-RHS kernel a batch kernel's output must match bitwise: a
/// SIMD batch kernel pairs with its same-family single-RHS sibling,
/// every scalar batch kernel with the scalar registry default (empty
/// name). Batched == looped holds *within* a rounding family; across
/// families results agree only to float tolerance (FMA vs mul+add —
/// docs/kernels.md). Extend here when a new family (e.g. AVX-512)
/// registers batch kernels.
inline std::string paired_single_kernel(const std::string& batch_kernel,
                                        bool dense) {
  if (batch_kernel.find("avx2") != std::string::npos)
    return dense ? "dense-avx2" : "nm-avx2";
  return {};
}

}  // namespace tasd::rt::testing
