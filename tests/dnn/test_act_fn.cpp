#include "dnn/act_fn.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tasd::dnn {
namespace {

TEST(ActFn, ReluClipsNegatives) {
  EXPECT_EQ(apply_act(ActKind::kRelu, -1.5F), 0.0F);
  EXPECT_EQ(apply_act(ActKind::kRelu, 2.0F), 2.0F);
  EXPECT_EQ(apply_act(ActKind::kRelu, 0.0F), 0.0F);
}

TEST(ActFn, Relu6ClipsBothSides) {
  EXPECT_EQ(apply_act(ActKind::kRelu6, -1.0F), 0.0F);
  EXPECT_EQ(apply_act(ActKind::kRelu6, 3.0F), 3.0F);
  EXPECT_EQ(apply_act(ActKind::kRelu6, 9.0F), 6.0F);
}

TEST(ActFn, GeluNeverExactlyZeroForNegatives) {
  // The paper's motivation for pseudo-density: GELU outputs are tiny but
  // non-zero for moderate negative inputs.
  const float y = apply_act(ActKind::kGelu, -1.0F);
  EXPECT_NE(y, 0.0F);
  EXPECT_LT(std::fabs(y), 0.2F);
}

TEST(ActFn, GeluApproachesIdentityForLargePositive) {
  EXPECT_NEAR(apply_act(ActKind::kGelu, 5.0F), 5.0F, 1e-3);
}

TEST(ActFn, SwishProperties) {
  EXPECT_NEAR(apply_act(ActKind::kSwish, 0.0F), 0.0F, 1e-6);
  EXPECT_NEAR(apply_act(ActKind::kSwish, 6.0F), 6.0F, 0.02);
  EXPECT_LT(apply_act(ActKind::kSwish, -1.0F), 0.0F);  // non-monotone dip
}

TEST(ActFn, NoneIsIdentity) {
  EXPECT_EQ(apply_act(ActKind::kNone, -3.25F), -3.25F);
}

TEST(ActFn, SparsityInducingClassification) {
  EXPECT_TRUE(induces_sparsity(ActKind::kRelu));
  EXPECT_TRUE(induces_sparsity(ActKind::kRelu6));
  EXPECT_FALSE(induces_sparsity(ActKind::kGelu));
  EXPECT_FALSE(induces_sparsity(ActKind::kSwish));
  EXPECT_FALSE(induces_sparsity(ActKind::kNone));
}

TEST(ActFn, Names) {
  EXPECT_EQ(act_name(ActKind::kRelu), "relu");
  EXPECT_EQ(act_name(ActKind::kGelu), "gelu");
}

}  // namespace
}  // namespace tasd::dnn
