// Tests for the MobileNet-like (ReLU6) family.
#include <gtest/gtest.h>

#include "dnn/builders.hpp"
#include "dnn/calib.hpp"
#include "dnn/metrics.hpp"

namespace tasd::dnn {
namespace {

ConvNetOptions tiny() {
  ConvNetOptions o;
  o.input_hw = 8;
  o.width_mult = 0.25;
  o.num_classes = 10;
  return o;
}

TEST(MobileNet, ForwardProducesLogits) {
  Model m = make_mobilenet(tiny());
  const EvalSet eval = EvalSet::images(4, 8, 3, 811);
  const auto labels = predict(m, eval);
  EXPECT_EQ(labels.size(), 4u);
}

TEST(MobileNet, Relu6ActivationsAreSparseAndClipped) {
  Model m = make_mobilenet(tiny());
  const EvalSet eval = EvalSet::images(16, 8, 3, 812);
  (void)predict(m, eval);
  // ReLU6 induces real zeros: mid-network layers see sparse inputs.
  Index sparse_inputs = 0;
  for (auto* l : m.gemm_layers()) {
    if (l->stats().forward_count > 0 && l->stats().raw_input_density < 0.9)
      ++sparse_inputs;
  }
  EXPECT_GT(sparse_inputs, 2u);
}

TEST(MobileNet, CalibrationSeesReluFamilySparsity) {
  Model m = make_mobilenet(tiny());
  const EvalSet calib = EvalSet::images(16, 8, 3, 813);
  const auto stats = collect_calibration(m, calib);
  Index induces = 0;
  for (const auto& s : stats)
    if (s.act_induces_sparsity) ++induces;
  EXPECT_GT(induces, stats.size() / 3);
}

TEST(MobileNet, DeterministicConstruction) {
  Model a = make_mobilenet(tiny());
  Model b = make_mobilenet(tiny());
  const EvalSet eval = EvalSet::images(4, 8, 3, 814);
  EXPECT_EQ(predict(a, eval), predict(b, eval));
}

TEST(MobileNet, HeadExcludedFromTasdA) {
  Model m = make_mobilenet(tiny());
  for (auto* l : m.gemm_layers()) {
    if (l->name().rfind("head", 0) == 0) EXPECT_FALSE(l->allow_tasd_a());
  }
}

}  // namespace
}  // namespace tasd::dnn
