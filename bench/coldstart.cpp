// Cold-start bench for the TASDART1 artifact store (ROADMAP item 3):
// the deployment question it answers is "what does a serving replica pay
// to become ready?". The compile path materializes sparse_resnet34's
// weights and decomposes every pruned layer at 2:4; the artifact path
// loads the blob save_artifact wrote — reconstructing the plans from
// their compressed term buffers, zero decompositions (asserted via
// PlanCache stats, non-zero exit on violation).
//
// Before any timing, the loaded artifact is checked bit-exact (`==`)
// against the compiled one on a per-layer input set — a fast loader that
// deserializes the wrong bits fails loudly here.
//
// Timing protocol: min over repeats; every compile repetition starts
// from a cleared PlanCache (a warm cache would measure the cache, not
// the decomposition work the artifact amortizes away), every load
// repetition too (so adoption cost is included honestly).
//
// Emits BENCH_coldstart.json (schema tasd-bench-coldstart-v1; see
// docs/reproducing.md and docs/artifact.md).
//
// Usage: coldstart [output.json] [--quick]
#include <cstdio>
#include <string>
#include <vector>

#include "artifact/artifact.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/plan_cache.hpp"
#include "dnn/workloads.hpp"
#include "runtime/compiled_network.hpp"
#include "tensor/generator.hpp"

namespace {

using namespace tasd;

/// 2:4 on every pruned layer; dense layers stay dense (same rule the
/// decode and fig16 benches use).
std::vector<std::optional<TasdConfig>> sparse_configs(
    const dnn::NetworkWorkload& net) {
  std::vector<std::optional<TasdConfig>> configs;
  configs.reserve(net.layers.size());
  for (const auto& l : net.layers) {
    if (l.weight_density < 1.0)
      configs.emplace_back(TasdConfig::parse("2:4"));
    else
      configs.emplace_back(std::nullopt);
  }
  return configs;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_coldstart.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else {
      out_path = arg;
    }
  }

  auto net = dnn::resnet34_workload(true, 42);
  if (quick) net.layers.resize(8);  // first residual stages only
  const auto configs = sparse_configs(net);
  const int repeats = quick ? 3 : 5;
  const std::string artifact_path = out_path + ".tasdart";

  rt::CompileOptions opt;  // "auto" kernels: resolved per host, both paths

  // Reference build + the artifact under test.
  plan_cache().clear();
  const auto compiled = rt::compile(net, configs, opt);
  rt::save_artifact(compiled, artifact_path);
  const auto info = rt::inspect_artifact(artifact_path);

  // --- bit-exactness gate -------------------------------------------------
  plan_cache().clear();
  plan_cache().reset_stats();
  const auto loaded = rt::load_artifact(artifact_path, opt);
  const auto load_stats = plan_cache().stats();
  const std::size_t decompositions_load = load_stats.decompositions;
  if (decompositions_load != 0) {
    std::fprintf(stderr,
                 "** load_artifact decomposed %zu times — must be 0 **\n",
                 static_cast<std::size_t>(decompositions_load));
    return 1;
  }
  if (load_stats.preloads != compiled.configured_count()) {
    std::fprintf(stderr, "** expected %zu preloads, saw %zu **\n",
                 compiled.configured_count(),
                 static_cast<std::size_t>(load_stats.preloads));
    return 1;
  }
  Rng rng(7301);
  for (std::size_t i = 0; i < compiled.layer_count(); ++i) {
    const MatrixF x =
        random_dense(compiled.layer(i).k, 4, Dist::kNormalStd1, rng);
    if (!(loaded.run(i, x) == compiled.run(i, x))) {
      std::fprintf(stderr, "** NOT BIT-EXACT at layer %zu (%s) **\n", i,
                   compiled.layer(i).name.c_str());
      return 1;
    }
  }

  // --- timings ------------------------------------------------------------
  std::size_t decompositions_compile = 0;
  const double compile_ms = time_ms_min(repeats, [&] {
    plan_cache().clear();
    plan_cache().reset_stats();
    const auto engine = rt::compile(net, configs, opt);
    decompositions_compile = plan_cache().stats().decompositions;
    if (engine.layer_count() != net.layers.size()) std::abort();
  });
  const double load_ms = time_ms_min(repeats, [&] {
    plan_cache().clear();
    const auto engine = rt::load_artifact(artifact_path, opt);
    if (engine.layer_count() != net.layers.size()) std::abort();
  });
  const double speedup = load_ms > 0.0 ? compile_ms / load_ms : 0.0;

  std::fprintf(stderr,
               "coldstart %s: %zu layers (%zu configured)\n"
               "  compile %9.3f ms  (%zu decompositions)\n"
               "  load    %9.3f ms  (0 decompositions)\n"
               "  speedup %.2fx   file %zu bytes  artifact_bytes %zu  "
               "plan_bytes %zu\n",
               net.name.c_str(), compiled.layer_count(),
               compiled.configured_count(), compile_ms, decompositions_compile,
               load_ms, speedup, static_cast<std::size_t>(info.file_bytes),
               static_cast<std::size_t>(compiled.artifact_bytes()),
               static_cast<std::size_t>(compiled.plan_bytes()));

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::perror("coldstart: cannot open output");
    return 1;
  }
  std::fprintf(f, "{\n  \"schema\": \"tasd-bench-coldstart-v1\",\n");
  std::fprintf(f, "  \"workload\": \"%s\",\n", net.name.c_str());
  std::fprintf(f, "  \"config\": \"2:4\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"layers\": %zu,\n", compiled.layer_count());
  std::fprintf(f, "  \"configured_layers\": %zu,\n",
               compiled.configured_count());
  std::fprintf(f, "  \"bit_exact\": true,\n");
  std::fprintf(f, "  \"compile_ms\": %.6f,\n", compile_ms);
  std::fprintf(f, "  \"load_ms\": %.6f,\n", load_ms);
  std::fprintf(f, "  \"speedup\": %.6f,\n", speedup);
  std::fprintf(f, "  \"decompositions_compile\": %zu,\n",
               decompositions_compile);
  std::fprintf(f, "  \"decompositions_load\": %zu,\n", decompositions_load);
  std::fprintf(f, "  \"file_bytes\": %zu,\n",
               static_cast<std::size_t>(info.file_bytes));
  std::fprintf(f, "  \"artifact_bytes\": %zu,\n",
               static_cast<std::size_t>(compiled.artifact_bytes()));
  std::fprintf(f, "  \"plan_bytes\": %zu\n",
               static_cast<std::size_t>(compiled.plan_bytes()));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::remove(artifact_path.c_str());
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}
