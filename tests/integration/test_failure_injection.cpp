// Failure injection: malformed inputs must fail loudly (tasd::Error),
// never silently corrupt results.
#include <gtest/gtest.h>

#include "accel/perf_model.hpp"
#include "core/decompose.hpp"
#include "core/series_enum.hpp"
#include "dnn/builders.hpp"
#include "dnn/metrics.hpp"
#include "runtime/compiled_network.hpp"
#include "tasder/tasda.hpp"

namespace tasd {
namespace {

TEST(FailureInjection, MalformedConfigStrings) {
  for (const char* bad : {"", "2", "2:", ":4", "2:4+", "+", "2;4", "a:b",
                          "2:4 + 1:8", "-1:4", "5:4"}) {
    EXPECT_THROW(TasdConfig::parse(bad), Error) << '"' << bad << '"';
  }
}

TEST(FailureInjection, OversizedPatternRejected) {
  EXPECT_THROW(sparse::NMPattern(9, 8), Error);
  EXPECT_THROW(sparse::NMPattern(1, -4), Error);
}

TEST(FailureInjection, EmptyModelForwardThrows) {
  dnn::Model empty("empty", dnn::InputKind::kImage);
  EXPECT_THROW(empty.forward(dnn::Feature(Tensor4D(1, 1, 2, 2))), Error);
}

TEST(FailureInjection, MismatchedEvalSetThrows) {
  dnn::ConvNetOptions o;
  o.input_hw = 8;
  o.width_mult = 0.125;
  o.num_classes = 10;
  dnn::Model m = dnn::make_resnet(18, o);
  // Wrong channel count fails inside im2col's contract check.
  const auto eval = dnn::EvalSet::images(2, 8, 5, 1);
  EXPECT_THROW(dnn::predict(m, eval), Error);
}

TEST(FailureInjection, PerfModelRejectsForeignSeries) {
  dnn::GemmWorkload l;
  l.m = l.k = l.n = 64;
  const auto stc = accel::ArchConfig::ttc_stc_m4();
  accel::LayerExecution exec{l, TasdConfig::parse("1:4"), {}, {}};
  EXPECT_THROW(accel::simulate_layer(stc, exec), Error);
}

TEST(FailureInjection, CompileRejectsMisalignedConfigList) {
  dnn::NetworkWorkload net;
  net.name = "x";
  dnn::GemmWorkload l;
  l.m = l.k = l.n = 8;
  net.layers = {l, l};
  EXPECT_THROW(rt::compile(net, {std::nullopt}, {}), Error);
}

TEST(FailureInjection, SeriesEnumRejectsZeroTermBudget) {
  EXPECT_THROW(enumerate_configs({sparse::NMPattern(2, 4)}, 0), Error);
}

TEST(FailureInjection, AgreementLengthMismatch) {
  EXPECT_THROW(dnn::agreement({1, 2}, {1}), Error);
}

TEST(FailureInjection, DecomposeWithNonFiniteValuesStillExact) {
  // Even pathological values must preserve the move-exactness invariant
  // (no NaN arithmetic is performed on the kept/dropped split).
  MatrixF m(1, 8, {1.0F, -2.0F, 1e30F, -1e30F, 1e-30F, 0.0F, 3.0F, -4.0F});
  const auto d = decompose(m, TasdConfig::parse("2:4+2:8"));
  EXPECT_EQ(d.reconstruct_exact(), m);
}

TEST(FailureInjection, TasdaSelectionHandlesExtremeSparsity) {
  const auto candidates =
      tasder::hw_profile_from(accel::ArchConfig::ttc_vegeta_m8())
          .candidate_configs();
  // Sparsity above 1 (impossible but defensive): picks the sparsest.
  const auto cfg = tasder::select_tasda_config(candidates, 1.5, 0.0);
  ASSERT_TRUE(cfg);
  EXPECT_EQ(cfg->str(), "1:8");
  // Negative sparsity: nothing fits.
  EXPECT_FALSE(tasder::select_tasda_config(candidates, -1.0, 0.0));
}

}  // namespace
}  // namespace tasd
