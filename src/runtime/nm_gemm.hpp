// Structured sparse GEMM over compressed N:M operands — the CPU analogue
// of a sparse tensor core: it executes one MAC per *stored* value, so a
// 2:4-compressed operand does half the work of the dense kernel through
// the same inner loop.
#pragma once

#include "core/decompose.hpp"
#include "sparse/nm_matrix.hpp"
#include "tensor/matrix.hpp"

namespace tasd::rt {

/// C = A_compressed * B.
MatrixF nm_gemm(const sparse::NMSparseMatrix& a, const MatrixF& b);

/// C += A_compressed * B.
void nm_gemm_accumulate(const sparse::NMSparseMatrix& a, const MatrixF& b,
                        MatrixF& c);

/// C = Σ_i term_i * B over a whole TASD series (distributive execution of
/// the decomposed GEMM, paper §3.2). Terms are pre-compressed once.
class TasdSeriesGemm {
 public:
  /// Compress the decomposition's terms for repeated execution.
  explicit TasdSeriesGemm(const Decomposition& decomposition);

  /// Execute against a dense right-hand side.
  [[nodiscard]] MatrixF multiply(const MatrixF& b) const;

  /// Stored non-zeros across terms.
  [[nodiscard]] Index nnz() const;

  [[nodiscard]] Index rows() const { return rows_; }
  [[nodiscard]] Index cols() const { return cols_; }
  [[nodiscard]] std::size_t term_count() const { return terms_.size(); }

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<sparse::NMSparseMatrix> terms_;
};

}  // namespace tasd::rt
