// Model-quality metric: top-1 agreement with the unmodified model.
//
// The paper's validity rule (MLPerf-style) is "accuracy >= 99 % of the
// original model's accuracy". With synthetic data we use the equivalent
// relative criterion: the fraction of evaluation inputs whose predicted
// class under the TASD-transformed model matches the original model's
// prediction (the original scores 100 % by construction). See DESIGN.md.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "dnn/model.hpp"

namespace tasd::dnn {

/// A fixed, seeded evaluation set: images for convnets or pre-embedded
/// token sequences for transformers.
class EvalSet {
 public:
  /// `count` images of shape (channels, hw, hw), values N(0,1).
  static EvalSet images(Index count, Index hw, Index channels,
                        std::uint64_t seed);

  /// `count` sequences of `tokens` tokens with `dim` features, N(0,1).
  static EvalSet tokens(Index count, Index dim, Index tokens,
                        std::uint64_t seed);

  [[nodiscard]] Index count() const;
  [[nodiscard]] bool is_images() const { return is_images_; }
  [[nodiscard]] const std::vector<Tensor4D>& image_batches() const {
    return image_batches_;
  }
  [[nodiscard]] const std::vector<MatrixF>& sequences() const {
    return sequences_;
  }

  /// Batch size used for image batches (BN statistics are computed per
  /// batch, so the split is part of the metric's definition).
  static constexpr Index kImageBatch = 16;

 private:
  bool is_images_ = true;
  std::vector<Tensor4D> image_batches_;  // each up to kImageBatch items
  std::vector<MatrixF> sequences_;       // one per sample
};

/// Predicted class per evaluation sample under the model's *current*
/// configuration (TASD configs included if set).
std::vector<Index> predict(Model& model, const EvalSet& eval);

/// Reference-label sentinel: samples marked with this value are excluded
/// from agreement (used by confident_labels()).
inline constexpr Index kIgnoreLabel = static_cast<Index>(-1);

/// Reference labels restricted to *decisively classified* samples: the
/// top `keep_fraction` of the evaluation set by top-1/top-2 logit margin
/// keep their predicted label; the rest are marked kIgnoreLabel.
///
/// Rationale (DESIGN.md): the paper's accuracy constraint is evaluated on
/// a trained ImageNet model whose correct top-1 decisions are mostly
/// high-margin. Random-weight twin models have razor-thin margins on a
/// tail of samples, which would make the metric measure margin noise
/// rather than approximation damage; filtering to confident samples
/// restores the trained-model behaviour the experiments rely on.
std::vector<Index> confident_labels(Model& model, const EvalSet& eval,
                                    double keep_fraction = 0.5);

/// Fraction of samples where `predictions` matches `reference`, skipping
/// reference entries equal to kIgnoreLabel.
double agreement(const std::vector<Index>& reference,
                 const std::vector<Index>& predictions);

/// Convenience: predict under the current configuration and compare with
/// precomputed reference labels.
double top1_agreement(Model& model, const EvalSet& eval,
                      const std::vector<Index>& reference);

}  // namespace tasd::dnn
