// Wall-clock timing for the CPU runtime experiments.
#pragma once

#include <algorithm>
#include <chrono>
#include <functional>

namespace tasd {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Best (minimum) wall-clock milliseconds of `fn` over `repeats` timed
/// runs, after `warmup` untimed runs — the one measurement rule the
/// engine's measure()/serving_throughput() and every bench share. The
/// warm-up run faults code and data (instruction cache, branch
/// predictors, lazily-allocated output buffers, thread-pool wake-up)
/// out of the first *timed* run, so single-digit-repeat measurements —
/// exactly the regime where the pipelined-vs-sequential deltas at GEMV
/// widths live — are not dominated by one cold first iteration.
inline double time_ms_min(int repeats, const std::function<void()>& fn,
                          int warmup = 1) {
  for (int w = 0; w < warmup; ++w) fn();
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.millis());
  }
  return best;
}

}  // namespace tasd
