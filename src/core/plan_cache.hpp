// Decomposition plans and the process-wide plan cache.
//
// A DecompositionPlan is the execution-path form of a TASD decomposition:
// every term is held directly in the compressed N:M format the runtime
// kernels consume — no dense per-term MatrixF is ever materialized — plus
// the approximation-quality statistics TASDER's search needs. Plans for
// the same (matrix contents, shape, config) are expensive to rebuild and
// bit-identical every time, so PlanCache memoizes them: the engine,
// TASDER and the benches all decompose a given weight matrix exactly
// once.
//
// The dense-term Decomposition in core/decompose.hpp remains the
// functional model used by tests and the accuracy experiments;
// build_plan() peels the same series with the same selection rule, so
// plan terms decompress to exactly the Decomposition's dense terms.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/approx_stats.hpp"
#include "core/config.hpp"
#include "sparse/nm_matrix.hpp"
#include "tensor/matrix.hpp"

namespace tasd {

/// Compressed, execution-ready decomposition of one matrix.
struct DecompositionPlan {
  TasdConfig config;
  Index rows = 0;
  Index cols = 0;
  /// One compressed term per series pattern, in series order.
  std::vector<sparse::NMSparseMatrix> terms;
  /// Quality of the approximation vs. the original matrix (identical to
  /// approx_stats(original, decompose(original, config))).
  ApproxStats stats;

  /// Total stored non-zeros across terms.
  [[nodiscard]] Index nnz() const;

  /// Compressed storage footprint in bytes across terms (hardware-style
  /// encoding, see NMSparseMatrix::storage_bytes) — the per-plan memory
  /// a serving process pays to share one decomposition across a batch.
  [[nodiscard]] Index storage_bytes() const;

  /// Dense Σ terms (bit-identical to Decomposition::approximation():
  /// every element lives in at most one term, so no summation-order
  /// effects exist).
  [[nodiscard]] MatrixF approximation() const;
};

/// Decompose `matrix` straight into compressed form (no per-term dense
/// intermediates). Uncached building block; prefer plan_cache().
DecompositionPlan build_plan(const MatrixF& matrix, const TasdConfig& config);

/// 128-bit content fingerprint over a matrix's bytes: FNV-1a plus an
/// independent multiply-rotate hash. Cheap relative to a decomposition,
/// stable across runs and processes, and a simultaneous collision of
/// both 64-bit halves (plus shape and config) is ~2^-128. The PlanCache
/// keys on it, and the artifact store (src/artifact/) writes it next to
/// every serialized section so a load can verify it binds plans to the
/// weights they were decomposed from.
struct ContentFingerprint {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const ContentFingerprint&,
                         const ContentFingerprint&) = default;
};

ContentFingerprint content_fingerprint(const MatrixF& m);

/// Cache observability counters (monotonic since process start or the
/// last reset_stats()).
struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t decompositions = 0;  ///< plans actually built (== misses)
  std::uint64_t evictions = 0;
  std::uint64_t preloads = 0;  ///< plans adopted via insert_preloaded()
};

/// Thread-safe LRU cache of DecompositionPlans keyed on (matrix
/// fingerprint, shape, config). The fingerprint hashes the full matrix
/// contents, so logically-equal matrices share an entry regardless of
/// where they live.
class PlanCache {
 public:
  /// Process-wide instance. Capacity defaults to 256 plans and can be
  /// overridden with the TASD_PLAN_CACHE_CAPACITY environment variable.
  static PlanCache& instance();

  explicit PlanCache(std::size_t capacity);
  ~PlanCache();
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Return the cached plan for (matrix, config), building and inserting
  /// it on miss.
  std::shared_ptr<const DecompositionPlan> get_or_build(
      const MatrixF& matrix, const TasdConfig& config);

  /// Adopt a plan that was built elsewhere (the artifact loader,
  /// src/artifact/) under exactly the key get_or_build() would use for
  /// (matrix, plan->config) — so later compiles of the same weights hit
  /// without decomposing. Counts as neither hit, miss nor decomposition;
  /// PlanCacheStats::preloads tracks it. The plan's shape and config
  /// must describe `matrix` (checked). Returns the resident plan: when
  /// the key is already cached the existing entry wins, preserving
  /// sharing between artifacts that were loaded or compiled earlier.
  std::shared_ptr<const DecompositionPlan> insert_preloaded(
      const MatrixF& matrix, std::shared_ptr<const DecompositionPlan> plan);

  [[nodiscard]] PlanCacheStats stats() const;
  void reset_stats();

  /// Number of cached plans.
  [[nodiscard]] std::size_t size() const;

  /// Drop every cached plan (stats are kept).
  void clear();

  /// Change capacity; evicts LRU entries if shrinking below size().
  void set_capacity(std::size_t capacity);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Shorthand for PlanCache::instance().
PlanCache& plan_cache();

}  // namespace tasd
