#include "sparse/csr.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/gemm_ref.hpp"
#include "tensor/generator.hpp"
#include "tensor/norms.hpp"

namespace tasd::sparse {
namespace {

TEST(CSRMatrix, RoundTripExact) {
  Rng rng(31);
  const MatrixF m = random_unstructured(10, 12, 0.3, Dist::kNormalStd1, rng);
  const CSRMatrix c(m);
  EXPECT_EQ(c.to_dense(), m);
  EXPECT_EQ(c.nnz(), m.nnz());
}

TEST(CSRMatrix, SpmvMatchesDense) {
  Rng rng(32);
  const MatrixF m = random_unstructured(8, 16, 0.4, Dist::kNormalStd1, rng);
  const MatrixF x = random_dense(16, 1, Dist::kNormalStd1, rng);
  const CSRMatrix c(m);
  const auto y = c.spmv(x.flat());
  const MatrixF oracle = gemm_ref(m, x);
  ASSERT_EQ(y.size(), 8u);
  for (Index i = 0; i < 8; ++i) EXPECT_NEAR(y[i], oracle(i, 0), 1e-4);
}

TEST(CSRMatrix, SpmvSizeMismatchThrows) {
  const CSRMatrix c(MatrixF(2, 3));
  std::vector<float> wrong(4);
  EXPECT_THROW(c.spmv(wrong), tasd::Error);
}

TEST(CSRMatrix, SpmmMatchesDense) {
  Rng rng(33);
  const MatrixF m = random_unstructured(6, 10, 0.5, Dist::kNormalStd1, rng);
  const MatrixF b = random_dense(10, 7, Dist::kNormalStd1, rng);
  const CSRMatrix c(m);
  EXPECT_TRUE(allclose(c.spmm(b), gemm_ref(m, b), 1e-4, 1e-5));
}

TEST(CSRMatrix, SpmmInnerDimMismatchThrows) {
  const CSRMatrix c(MatrixF(2, 3));
  EXPECT_THROW(c.spmm(MatrixF(4, 2)), tasd::Error);
}

TEST(CSRMatrix, EmptyAndAllZero) {
  const CSRMatrix empty{MatrixF(0, 0)};
  EXPECT_EQ(empty.nnz(), 0u);
  const CSRMatrix zeros{MatrixF(3, 3)};
  EXPECT_EQ(zeros.nnz(), 0u);
  EXPECT_EQ(zeros.to_dense(), MatrixF(3, 3));
}

TEST(CSRMatrix, RowPtrInvariant) {
  Rng rng(34);
  const MatrixF m = random_unstructured(5, 8, 0.4, Dist::kNormalStd1, rng);
  const CSRMatrix c(m);
  const auto& ptr = c.row_ptr();
  ASSERT_EQ(ptr.size(), 6u);
  EXPECT_EQ(ptr.front(), 0u);
  EXPECT_EQ(ptr.back(), c.nnz());
  for (std::size_t i = 1; i < ptr.size(); ++i) EXPECT_LE(ptr[i - 1], ptr[i]);
}

TEST(CSRMatrix, StorageGrowsWithNnz) {
  MatrixF sparse_m(4, 100);
  sparse_m(0, 0) = 1.0F;
  MatrixF denser = sparse_m;
  for (Index c = 0; c < 50; ++c) denser(1, c) = 2.0F;
  EXPECT_LT(CSRMatrix(sparse_m).storage_bytes(),
            CSRMatrix(denser).storage_bytes());
}

}  // namespace
}  // namespace tasd::sparse
