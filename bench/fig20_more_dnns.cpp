// Figure 20: layer-wise TASD on more DNN families.
//  Left: TASD-W MAC reduction on sparse VGG-11/16 and ResNet-18/34
//        (paper: ~49 % MAC reduction at 99 % accuracy).
//  Right: TASD-A MAC reduction on dense VGG-16, ResNet-18/50,
//        ConvNeXt-T, ViT-B (paper: ~32 % average reduction).
#include <iostream>

#include "common/table.hpp"
#include "dnn/builders.hpp"
#include "dnn/pruning.hpp"
#include "tasder/framework.hpp"

using namespace tasd;

namespace {

dnn::ConvNetOptions twin_opts() {
  dnn::ConvNetOptions o;
  o.input_hw = 16;
  o.width_mult = 0.25;
  o.num_classes = 100;
  return o;
}

dnn::TransformerOptions tf_opts() {
  dnn::TransformerOptions o;
  o.dim = 64;
  o.layers = 3;
  o.heads = 4;
  o.num_classes = 100;
  return o;
}

struct Row {
  std::string model;
  double mac_fraction;
  double agreement;
};

Row run(dnn::Model model, bool sparse_weights, std::uint64_t seed) {
  if (sparse_weights) (void)dnn::prune_unstructured(model, 0.95);
  const bool tokens = model.input_kind() == dnn::InputKind::kTokens;
  const auto eval = tokens ? dnn::EvalSet::tokens(96, 64, 16, seed)
                           : dnn::EvalSet::images(96, 16, 3, seed);
  const auto calib = tokens ? dnn::EvalSet::tokens(16, 64, 16, seed + 1)
                            : dnn::EvalSet::images(16, 16, 3, seed + 1);
  const auto ref = dnn::confident_labels(model, eval, 0.5);
  const auto hw =
      tasder::hw_profile_from(accel::ArchConfig::ttc_vegeta_m8());
  const auto r = tasder::optimize_model(model, hw, calib, eval, ref);
  return {model.name(), r.mac_fraction, r.achieved_agreement};
}

}  // namespace

int main() {
  print_banner("Figure 20: layer-wise TASD on more DNN models");

  {
    std::cout << "\n-- layer-wise TASD-W (95% unstructured-sparse twins) "
                 "--\n";
    TextTable t;
    t.header({"model", "normalized MACs", "agreement"});
    std::vector<double> fracs;
    std::vector<Row> rows;
    rows.push_back(run(dnn::make_vgg(11, twin_opts()), true, 2001));
    rows.push_back(run(dnn::make_vgg(16, twin_opts()), true, 2002));
    rows.push_back(run(dnn::make_resnet(18, twin_opts()), true, 2003));
    rows.push_back(run(dnn::make_resnet(34, twin_opts()), true, 2004));
    for (const auto& r : rows) {
      t.row({r.model, TextTable::num(r.mac_fraction, 3),
             TextTable::pct(r.agreement)});
      fracs.push_back(r.mac_fraction);
    }
    double geo = 1.0;
    for (double f : fracs) geo *= f;
    geo = std::pow(geo, 1.0 / static_cast<double>(fracs.size()));
    t.row({"geomean", TextTable::num(geo, 3), ""});
    t.print();
    std::cout << "Paper: ~0.51 normalized MACs (49% reduction).\n";
  }

  {
    std::cout << "\n-- layer-wise TASD-A (dense models) --\n";
    TextTable t;
    t.header({"model", "normalized MACs", "agreement"});
    std::vector<double> fracs;
    std::vector<Row> rows;
    rows.push_back(run(dnn::make_vgg(16, twin_opts()), false, 2101));
    rows.push_back(run(dnn::make_resnet(18, twin_opts()), false, 2102));
    rows.push_back(run(dnn::make_resnet(50, twin_opts()), false, 2103));
    rows.push_back(run(dnn::make_convnext(twin_opts()), false, 2104));
    rows.push_back(run(dnn::make_vit(twin_opts(), tf_opts()), false, 2105));
    for (const auto& r : rows) {
      t.row({r.model, TextTable::num(r.mac_fraction, 3),
             TextTable::pct(r.agreement)});
      fracs.push_back(r.mac_fraction);
    }
    double geo = 1.0;
    for (double f : fracs) geo *= f;
    geo = std::pow(geo, 1.0 / static_cast<double>(fracs.size()));
    t.row({"geomean", TextTable::num(geo, 3), ""});
    t.print();
    std::cout << "Paper: ~0.68 normalized MACs (32% reduction) on "
                 "average.\n";
  }
  return 0;
}
