// Kernel auto-selection: CompileOptions' "auto" names resolve through
// GemmDispatch::best_*() at compile() time — the static fallback chain
// avx512 > avx2 > scalar, walking down as runtime detection (or the
// TASD_DISABLE_AVX512 / TASD_DISABLE_AVX2 escape hatches the CI matrix
// legs set) removes families. On a scalar-only pool "auto" must bind
// the tiled kernels and stay bit-exact.
#include <gtest/gtest.h>

#include "common/cpu_features.hpp"
#include "common/rng.hpp"
#include "runtime/compiled_network.hpp"
#include "runtime/dense_gemm.hpp"
#include "tensor/gemm_ref.hpp"
#include "tensor/generator.hpp"
#include "tensor/norms.hpp"

namespace tasd::rt {
namespace {

dnn::NetworkWorkload tiny_net() {
  dnn::NetworkWorkload net;
  net.name = "tiny-selection";
  net.sparse_weights = true;
  dnn::GemmWorkload l1;
  l1.name = "a";
  l1.m = 48;
  l1.k = 96;
  l1.n = 32;
  l1.weight_density = 0.2;
  l1.weight_seed = 9101;
  dnn::GemmWorkload l2 = l1;
  l2.name = "b";
  l2.weight_seed = 9102;
  net.layers = {l1, l2};
  return net;
}

std::vector<std::optional<TasdConfig>> mixed_configs() {
  return {TasdConfig::parse("2:4"), std::nullopt};
}

TEST(KernelSelection, AutoResolvesToBestAtCompileTime) {
  const auto engine = compile(tiny_net(), mixed_configs(), {});
  const auto& dispatch = GemmDispatch::instance();
  const auto& opt = engine.options();
  // The artifact's bound names are concrete registry names, never the
  // "auto" sentinel, and equal the registry's best picks.
  EXPECT_EQ(opt.dense_kernel, dispatch.best_dense());
  EXPECT_EQ(opt.nm_kernel, dispatch.best_nm());
  EXPECT_EQ(opt.dense_batch_kernel, dispatch.best_dense_batch());
  EXPECT_EQ(opt.nm_batch_kernel, dispatch.best_nm_batch());
  if (avx512_available()) {
    // Static chain head: AVX-512 outranks AVX2 when both registered.
    EXPECT_EQ(opt.dense_kernel, "dense-avx512");
    EXPECT_EQ(opt.nm_kernel, "nm-avx512");
    EXPECT_EQ(opt.dense_batch_kernel, "dense-batch-avx512");
    EXPECT_EQ(opt.nm_batch_kernel, "nm-batch-avx512");
  } else if (avx2_available()) {
    // Middle of the chain: no AVX-512 (hardware or TASD_DISABLE_AVX512
    // as in the avx2 CI leg) falls to the AVX2 family.
    EXPECT_EQ(opt.dense_kernel, "dense-avx2");
    EXPECT_EQ(opt.nm_kernel, "nm-avx2");
  } else {
    // Forced-fallback acceptance: without any SIMD family the auto
    // selection must pick the scalar tiled kernels.
    EXPECT_EQ(opt.dense_kernel, "tiled-parallel");
    EXPECT_EQ(opt.nm_kernel, "row-parallel");
    EXPECT_EQ(opt.dense_batch_kernel, "batch-packed");
    EXPECT_EQ(opt.nm_batch_kernel, "batch-packed");
  }
}

TEST(KernelSelection, AutoSelectedKernelsStayBitExact) {
  // Whatever family "auto" bound: run() matches the direct kernel path
  // under the resolved policy bitwise at several thread counts, the
  // batched path matches looped run(), and the result agrees with the
  // scalar oracle to float tolerance.
  const auto net = tiny_net();
  const auto engine = compile(net, mixed_configs(), {});
  Rng rng(9200);
  const MatrixF b = random_dense(net.layers[0].k, 11, Dist::kNormalStd1, rng);
  const MatrixF w1 = dnn::materialize_weight(net.layers[1]);

  ExecPolicy resolved = engine.policy();
  const MatrixF dense_direct = dense_gemm(w1, b, resolved);
  EXPECT_EQ(engine.run(1, b), dense_direct);
  EXPECT_TRUE(allclose(dense_direct, gemm_ref(w1, b), 1e-4, 1e-4));

  std::vector<MatrixF> bs;
  for (const Index cols : {1u, 4u, 0u, 9u})
    bs.push_back(random_dense(net.layers[0].k, cols, Dist::kNormalStd1, rng));
  for (const std::size_t threads : {0u, 1u, 2u, 5u, 8u}) {
    CompileOptions opt;
    opt.measure.num_threads = threads;
    const auto at = compile(net, mixed_configs(), opt);
    const auto batch = at.run_batch(0, bs);
    for (std::size_t q = 0; q < bs.size(); ++q)
      EXPECT_EQ(batch[q], at.run(0, bs[q]))
          << "threads=" << threads << " item=" << q;
    EXPECT_EQ(at.run(1, b), dense_direct) << "threads=" << threads;
  }
}

TEST(KernelSelection, EmptyNamesKeepRegistryDefaults) {
  // "" (the pre-auto spelling) still means the registry defaults, which
  // stay scalar — existing callers that pinned the defaults keep their
  // exact bits regardless of what hardware the process lands on.
  CompileOptions opt;
  opt.dense_kernel.clear();
  opt.nm_kernel.clear();
  opt.dense_batch_kernel.clear();
  opt.nm_batch_kernel.clear();
  const auto engine = compile(tiny_net(), mixed_configs(), opt);
  EXPECT_EQ(engine.options().dense_kernel, "");
  Rng rng(9300);
  const MatrixF b =
      random_dense(tiny_net().layers[0].k, 5, Dist::kNormalStd1, rng);
  CompileOptions scalar;
  scalar.dense_kernel = "tiled-parallel";
  scalar.nm_kernel = "row-parallel";
  scalar.dense_batch_kernel = "batch-packed";
  scalar.nm_batch_kernel = "batch-packed";
  const auto pinned = compile(tiny_net(), mixed_configs(), scalar);
  EXPECT_EQ(engine.run(0, b), pinned.run(0, b));
  EXPECT_EQ(engine.run(1, b), pinned.run(1, b));
}

TEST(KernelSelection, ScalarFallbackSelectionIsBitExactToPinnedScalar) {
  // When best == scalar (non-AVX2 machine or TASD_DISABLE_AVX2=1), the
  // auto artifact must be indistinguishable from explicitly pinning the
  // scalar kernels. On AVX2 machines this asserts the complementary
  // fact for the AVX2 family.
  const auto net = tiny_net();
  const auto auto_engine = compile(net, mixed_configs(), {});
  CompileOptions pin;
  pin.dense_kernel = auto_engine.options().dense_kernel;
  pin.nm_kernel = auto_engine.options().nm_kernel;
  pin.dense_batch_kernel = auto_engine.options().dense_batch_kernel;
  pin.nm_batch_kernel = auto_engine.options().nm_batch_kernel;
  const auto pinned = compile(net, mixed_configs(), pin);
  Rng rng(9400);
  const MatrixF b = random_dense(net.layers[0].k, 7, Dist::kNormalStd1, rng);
  EXPECT_EQ(auto_engine.run(0, b), pinned.run(0, b));
  EXPECT_EQ(auto_engine.run(1, b), pinned.run(1, b));
}

}  // namespace
}  // namespace tasd::rt
