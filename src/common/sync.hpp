// Compile-time-checked synchronization primitives.
//
// Every mutex and condition variable in the library goes through the
// wrappers in this header so that locking invariants are *machine
// checked* on every Clang build instead of living in comments and
// hoping a TSan run exercises the racy interleaving (PRs 6 and 7 each
// shipped a race only a TSan run exposed). The wrappers carry Clang's
// thread-safety attributes (-Wthread-safety); under any other compiler
// the annotation macros expand to nothing and the types are
// zero-overhead shims over <mutex>/<condition_variable>.
//
// Usage contract (see docs/static_analysis.md § Annotation conventions):
//  * Declare shared state with TASD_GUARDED_BY(mu) naming the
//    tasd::Mutex that protects it. The analysis then rejects any read
//    or write of that field without the mutex held.
//  * Hold a mutex with tasd::MutexLock (RAII; supports manual
//    unlock()/lock() for drop-the-lock-while-working sections, like
//    std::unique_lock).
//  * Wait on a tasd::CondVar by passing the *Mutex* (not the lock
//    object): `cv.wait(mu)` requires the capability `mu` at the call
//    site, so waiting without the right mutex held is a compile error.
//  * Write condition-wait loops as explicit `while (!cond) cv.wait(mu);`
//    with the condition inline in the function that holds the lock —
//    a predicate *lambda* is analyzed as a separate function that does
//    not hold the capability, so guarded reads inside it would warn.
//    Helper predicates that must be factored out take
//    TASD_REQUIRES(mu) instead.
//  * Annotate private helpers that expect the lock held with
//    TASD_REQUIRES(mu), helpers that take it themselves with
//    TASD_EXCLUDES(mu).
//
// Negative-compile tests in tests/static/ assert the analysis has
// teeth: an unguarded read of a TASD_GUARDED_BY field, an unlock
// without a lock, and a CV wait without the right mutex each fail to
// compile under -Wthread-safety -Werror.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// ----------------------------------------------------------------------
// Attribute macros. Active under Clang (any version with the capability
// attributes, i.e. every Clang this project supports); no-ops under
// GCC/MSVC, so the annotations cost nothing where they cannot be
// checked.
#if defined(__clang__) && !defined(SWIG)
#define TASD_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define TASD_THREAD_ANNOTATION_(x)
#endif

/// Marks a type as a lockable capability (applies to class declarations).
#define TASD_CAPABILITY(x) TASD_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type whose lifetime acquires/releases a capability.
#define TASD_SCOPED_CAPABILITY TASD_THREAD_ANNOTATION_(scoped_lockable)

/// Field/variable is readable and writable only with `x` held.
#define TASD_GUARDED_BY(x) TASD_THREAD_ANNOTATION_(guarded_by(x))

/// Pointee of this pointer field is protected by `x` (the pointer
/// itself is not).
#define TASD_PT_GUARDED_BY(x) TASD_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and does
/// not release them).
#define TASD_REQUIRES(...) \
  TASD_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on exit).
#define TASD_ACQUIRE(...) \
  TASD_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (must be held on entry).
#define TASD_RELEASE(...) \
  TASD_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define TASD_TRY_ACQUIRE(b, ...) \
  TASD_THREAD_ANNOTATION_(try_acquire_capability(b, __VA_ARGS__))

/// Function must NOT be called with the listed capabilities held
/// (deadlock prevention for self-locking functions).
#define TASD_EXCLUDES(...) TASD_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declares lock-acquisition ordering between mutex declarations.
#define TASD_ACQUIRED_AFTER(...) \
  TASD_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define TASD_ACQUIRED_BEFORE(...) \
  TASD_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

/// Function returns a reference to the mutex guarding its result.
#define TASD_RETURN_CAPABILITY(x) TASD_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: skip analysis of this function body. Every use needs a
/// comment explaining why the invariant holds anyway.
#define TASD_NO_THREAD_SAFETY_ANALYSIS \
  TASD_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace tasd {

/// Annotated std::mutex. Non-recursive; same semantics, same cost.
class TASD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TASD_ACQUIRE() { mu_.lock(); }
  void unlock() TASD_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() TASD_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

  /// The wrapped mutex, for CondVar's internal wait plumbing. Locking
  /// through this bypasses the analysis — don't.
  [[nodiscard]] std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock over a tasd::Mutex. Acquires in the constructor, releases
/// in the destructor; unlock()/lock() support drop-the-lock-while-
/// working sections (the analysis tracks the held/released state, as
/// with std::unique_lock). Not movable: the scoped-capability analysis
/// tracks one lexical scope.
class TASD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TASD_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() TASD_RELEASE() {
    if (held_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Re-acquire after unlock(). Precondition: not currently held.
  void lock() TASD_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }
  /// Release early. Precondition: currently held.
  void unlock() TASD_RELEASE() {
    held_ = false;
    mu_.unlock();
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// Annotated std::condition_variable. Waits take the tasd::Mutex itself
/// and require its capability, so "wait without the right mutex held"
/// is a compile error under -Wthread-safety. The caller keeps the
/// mutex held across the call from the analysis' point of view (the
/// wait's internal unlock/re-lock is invisible, which matches the
/// invariant: guarded state is only touched while the wait is blocked
/// or before/after it with the lock held).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Block until notified (or spuriously woken). `mu` must be held.
  void wait(Mutex& mu) TASD_REQUIRES(mu) {
    std::unique_lock<std::mutex> ul(mu.native(), std::adopt_lock);
    cv_.wait(ul);
    ul.release();  // ownership stays with the caller's MutexLock
  }

  /// Block until `pred()` holds. Prefer an explicit
  /// `while (!cond) cv.wait(mu);` loop when `cond` reads
  /// TASD_GUARDED_BY state — a lambda body is analyzed without the
  /// caller's capabilities (see header comment).
  template <typename Predicate>
  void wait(Mutex& mu, Predicate pred) TASD_REQUIRES(mu) {
    while (!pred()) wait(mu);
  }

  /// Block until notified or `tp` passes. Returns std::cv_status.
  template <typename Clock, typename Duration>
  std::cv_status wait_until(Mutex& mu,
                            const std::chrono::time_point<Clock, Duration>& tp)
      TASD_REQUIRES(mu) {
    std::unique_lock<std::mutex> ul(mu.native(), std::adopt_lock);
    const std::cv_status status = cv_.wait_until(ul, tp);
    ul.release();
    return status;
  }

  /// Block until notified or `d` elapses. Returns std::cv_status.
  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& d)
      TASD_REQUIRES(mu) {
    std::unique_lock<std::mutex> ul(mu.native(), std::adopt_lock);
    const std::cv_status status = cv_.wait_for(ul, d);
    ul.release();
    return status;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace tasd
