#include "common/error.hpp"

#include <gtest/gtest.h>

namespace tasd {
namespace {

TEST(Error, CheckPassesOnTrue) { EXPECT_NO_THROW(TASD_CHECK(1 + 1 == 2)); }

TEST(Error, CheckThrowsOnFalse) {
  EXPECT_THROW(TASD_CHECK(false), Error);
}

TEST(Error, MessageContainsExpressionAndLocation) {
  try {
    TASD_CHECK_MSG(2 < 1, "custom detail " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("custom detail 42"), std::string::npos);
    EXPECT_NE(what.find("test_error.cpp"), std::string::npos);
  }
}

TEST(Error, IsRuntimeError) {
  EXPECT_THROW(TASD_CHECK(false), std::runtime_error);
}

TEST(Error, DefaultCodeIsInvalidArgument) {
  // The one-argument form keeps every pre-taxonomy call site meaning
  // what it always meant: a broken API contract.
  const Error e("plain message");
  EXPECT_EQ(e.code(), Error::Code::kInvalidArgument);
}

TEST(Error, ChecksCarryInvalidArgument) {
  try {
    TASD_CHECK(false);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Error::Code::kInvalidArgument);
  }
}

TEST(Error, ExplicitCodesRoundTrip) {
  for (const auto code :
       {Error::Code::kInvalidArgument, Error::Code::kFailedPrecondition,
        Error::Code::kDeadlineExceeded, Error::Code::kResourceExhausted,
        Error::Code::kUnavailable, Error::Code::kInternal}) {
    const Error a(code, "msg");
    EXPECT_EQ(a.code(), code);
    const Error b("msg", code);  // both argument orders are supported
    EXPECT_EQ(b.code(), code);
    EXPECT_STREQ(a.what(), "msg");
  }
}

TEST(Error, CodeNamesAreStable) {
  EXPECT_STREQ(error_code_name(Error::Code::kInvalidArgument),
               "invalid_argument");
  EXPECT_STREQ(error_code_name(Error::Code::kFailedPrecondition),
               "failed_precondition");
  EXPECT_STREQ(error_code_name(Error::Code::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(error_code_name(Error::Code::kResourceExhausted),
               "resource_exhausted");
  EXPECT_STREQ(error_code_name(Error::Code::kUnavailable), "unavailable");
  EXPECT_STREQ(error_code_name(Error::Code::kInternal), "internal");
}

}  // namespace
}  // namespace tasd
