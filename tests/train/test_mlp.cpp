#include "train/mlp.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/generator.hpp"
#include "tensor/norms.hpp"

namespace tasd::train {
namespace {

TEST(Mlp, ForwardShapes) {
  Mlp mlp({8, 16, 4}, 1);
  Rng rng(1);
  const MatrixF x = random_dense(8, 5, Dist::kNormalStd1, rng);
  const MatrixF logits = mlp.forward(x);
  EXPECT_EQ(logits.rows(), 4u);
  EXPECT_EQ(logits.cols(), 5u);
}

TEST(Mlp, RejectsBadArchitecture) {
  EXPECT_THROW(Mlp({8}, 1), Error);
}

TEST(Mlp, SoftmaxLossOfUniformLogitsIsLogC) {
  MatrixF logits(4, 3);  // all-zero logits: uniform distribution
  MatrixF dlogits;
  const double loss = Mlp::softmax_ce_loss(logits, {0, 1, 2}, dlogits);
  EXPECT_NEAR(loss, std::log(4.0), 1e-6);
  // Gradient: p - onehot, scaled by 1/batch.
  EXPECT_NEAR(dlogits(0, 0), (0.25 - 1.0) / 3.0, 1e-6);
  EXPECT_NEAR(dlogits(1, 0), 0.25 / 3.0, 1e-6);
}

TEST(Mlp, LossRejectsBadLabels) {
  MatrixF logits(4, 2);
  MatrixF dlogits;
  EXPECT_THROW(Mlp::softmax_ce_loss(logits, {0}, dlogits), Error);
  EXPECT_THROW(Mlp::softmax_ce_loss(logits, {0, 7}, dlogits), Error);
}

TEST(Mlp, GradientMatchesFiniteDifference) {
  // Numeric check of the hand-written backward pass on a handful of
  // weight elements across both layers.
  Rng rng(7);
  const MatrixF x = random_dense(4, 2, Dist::kNormalStd1, rng);
  const std::vector<Index> labels{1, 2};

  // Analytic gradients, recovered from a unit-lr SGD step.
  Mlp analytic_model({4, 6, 3}, 7);
  MatrixF dlogits;
  (void)Mlp::softmax_ce_loss(analytic_model.forward(x), labels, dlogits);
  analytic_model.backward(dlogits, {});
  std::vector<MatrixF> weights_before;
  for (const auto& l : analytic_model.layers())
    weights_before.push_back(l.weight);
  analytic_model.step(1.0);

  auto loss_with_nudge = [&](std::size_t li, Index r, Index c, float eps) {
    Mlp probe({4, 6, 3}, 7);
    probe.layers_mutable()[li].weight(r, c) += eps;
    MatrixF dummy;
    return Mlp::softmax_ce_loss(probe.forward(x), labels, dummy);
  };

  const float eps = 1e-3F;
  for (std::size_t li = 0; li < 2; ++li) {
    for (const auto [r, c] : {std::pair<Index, Index>{0, 0},
                              std::pair<Index, Index>{2, 1}}) {
      const double numeric =
          (loss_with_nudge(li, r, c, eps) - loss_with_nudge(li, r, c, -eps)) /
          (2.0 * eps);
      const double analytic =
          weights_before[li](r, c) - analytic_model.layers()[li].weight(r, c);
      EXPECT_NEAR(analytic, numeric, 5e-3)
          << "layer " << li << " element (" << r << "," << c << ")";
    }
  }
}

TEST(Mlp, LosslessHooksMatchPlainBackward) {
  // 4:8+4:8 keeps every element: hooked training must be bit-identical.
  Rng rng(9);
  const MatrixF x = random_dense(8, 4, Dist::kNormalStd1, rng);
  const std::vector<Index> labels{0, 1, 2, 3};

  Mlp plain({8, 16, 4}, 11);
  Mlp hooked({8, 16, 4}, 11);
  TasdTrainingHooks hooks;
  hooks.activations = TasdConfig::parse("4:8+4:8");
  hooks.gradients = TasdConfig::parse("4:8+4:8");

  for (int it = 0; it < 3; ++it) {
    MatrixF dl_a, dl_b;
    (void)Mlp::softmax_ce_loss(plain.forward(x), labels, dl_a);
    (void)Mlp::softmax_ce_loss(hooked.forward(x), labels, dl_b);
    plain.backward(dl_a, {});
    hooked.backward(dl_b, hooks);
    plain.step(0.1);
    hooked.step(0.1);
  }
  for (std::size_t li = 0; li < plain.layers().size(); ++li)
    EXPECT_EQ(plain.layers()[li].weight, hooked.layers()[li].weight);
}

TEST(Mlp, PredictReturnsValidClasses) {
  Mlp mlp({8, 12, 5}, 13);
  Rng rng(13);
  const MatrixF x = random_dense(8, 10, Dist::kNormalStd1, rng);
  for (Index cls : mlp.predict(x)) EXPECT_LT(cls, 5u);
}

}  // namespace
}  // namespace tasd::train
