// Minimal trainable MLP with explicit forward/backward — the substrate
// for the paper's §6.2 future-work experiment: using TASD to approximate
// activations and gradients *during training*.
//
// Scope: fully-connected ReLU layers + softmax cross-entropy, plain SGD.
// Deliberately no autograd framework; the backward pass is written out
// so the TASD hooks (decompose the activation/gradient operands of the
// backward GEMMs) are explicit and auditable.
#pragma once

#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "core/config.hpp"
#include "tensor/matrix.hpp"

namespace tasd::train {

/// Where TASD approximation is applied inside the training step.
struct TasdTrainingHooks {
  /// Decompose the stored forward activations consumed by the weight-
  /// gradient GEMM (dW = dY · X^T): X is replaced by its approximation.
  std::optional<TasdConfig> activations;
  /// Decompose the upstream gradient consumed by both backward GEMMs.
  std::optional<TasdConfig> gradients;
};

/// One fully-connected layer with ReLU (hidden) or identity (output).
struct DenseLayer {
  MatrixF weight;      // (out x in)
  std::vector<float> bias;
  bool relu = true;

  // Saved by forward() for the backward pass.
  MatrixF input;       // (in x batch)
  MatrixF pre_act;     // (out x batch)
};

/// A small MLP classifier.
class Mlp {
 public:
  /// Layer sizes, e.g. {in, hidden, hidden, classes}.
  Mlp(const std::vector<Index>& sizes, std::uint64_t seed);

  /// Forward pass; input is (features x batch). Returns logits
  /// (classes x batch). Saves intermediates for backward().
  MatrixF forward(const MatrixF& x);

  /// Softmax cross-entropy loss against integer labels; also writes the
  /// logits gradient into `dlogits`.
  static double softmax_ce_loss(const MatrixF& logits,
                                const std::vector<Index>& labels,
                                MatrixF& dlogits);

  /// Backward pass from the logits gradient; accumulates weight/bias
  /// gradients. TASD hooks approximate the backward GEMM operands.
  void backward(const MatrixF& dlogits, const TasdTrainingHooks& hooks);

  /// SGD update with the accumulated gradients, then clears them.
  void step(double lr);

  [[nodiscard]] const std::vector<DenseLayer>& layers() const {
    return layers_;
  }

  /// Mutable layer access (weight surgery: pruning, finite-difference
  /// verification).
  [[nodiscard]] std::vector<DenseLayer>& layers_mutable() { return layers_; }

  /// Predicted class per column of x.
  std::vector<Index> predict(const MatrixF& x);

 private:
  std::vector<DenseLayer> layers_;
  std::vector<MatrixF> grad_w_;
  std::vector<std::vector<float>> grad_b_;
};

}  // namespace tasd::train
