#include "dnn/workloads.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dnn/pruning.hpp"
#include "sparse/view.hpp"
#include "tensor/generator.hpp"

namespace tasd::dnn {

Index NetworkWorkload::total_macs() const {
  Index total = 0;
  for (const auto& l : layers) total += l.macs() * l.repeat;
  return total;
}

Index NetworkWorkload::total_params() const {
  Index total = 0;
  for (const auto& l : layers) total += l.m * l.k * l.repeat;
  return total;
}

namespace {

/// Deterministic per-layer jitter in [0,1) (classic sin-hash).
double layer_noise(Index i) {
  const double v = std::sin(static_cast<double>(i + 1) * 12.9898) * 43758.5453;
  return v - std::floor(v);
}

/// Activation density for a ReLU-based network layer. Matches the Fig. 6
/// measurement: mid-band densities, a dense first layer (image input).
double relu_act_density(Index layer_idx, bool sparse_model) {
  if (layer_idx == 0) return 1.0;  // network input is a dense image
  const double base = sparse_model ? 0.34 : 0.46;
  return base + 0.22 * layer_noise(layer_idx);
}

/// Pseudo-density of GELU activations (dense but magnitude-skewed).
double gelu_pseudo_density(Index layer_idx) {
  return 0.32 + 0.12 * layer_noise(layer_idx * 7 + 3);
}

struct Builder {
  NetworkWorkload net;
  Index idx = 0;
  std::uint64_t seed = 0;
  double global_weight_sparsity = 0.0;  // 0 = dense
  Index expected_layers = 1;            // for the depth-profile position
  bool relu_net = true;

  void add(std::string name, Index m, Index k, Index n, Index repeat = 1) {
    GemmWorkload l;
    l.name = std::move(name);
    l.m = m;
    l.k = k;
    l.n = n;
    l.repeat = repeat;
    const double pos =
        expected_layers > 1
            ? static_cast<double>(idx) / static_cast<double>(expected_layers - 1)
            : 0.0;
    const bool is_last = idx + 1 == expected_layers;
    l.weight_density =
        global_weight_sparsity > 0.0
            ? 1.0 - layer_sparsity_target(global_weight_sparsity, pos, is_last)
            : 1.0;
    if (relu_net) {
      l.act_relu = true;
      l.act_density = relu_act_density(idx, global_weight_sparsity > 0.0);
      // ReLU zeros dominate: pseudo-density is slightly below density.
      l.act_pseudo_density = l.act_density * 0.92;
    } else {
      l.act_relu = false;
      l.act_density = 1.0;
      l.act_pseudo_density = gelu_pseudo_density(idx);
    }
    l.weight_seed = seed * 1000003ULL + idx;
    ++idx;
    net.layers.push_back(std::move(l));
  }
};

/// Count of GEMM layers in ResNet-50: stem + 16 blocks*(3 or 4 convs) + fc.
constexpr Index kResNet50Layers = 1 + (3 + 4 + 6 + 3) * 3 + 4 + 1;  // 54
constexpr Index kResNet34Layers = 1 + (3 + 4 + 6 + 3) * 2 + 3 + 1;  // 37
constexpr Index kBertLayers = 6 + 1;  // 6 distinct per-encoder shapes + head

void add_bottleneck(Builder& b, const std::string& prefix, Index in_ch,
                    Index mid, Index spatial_in, Index stride) {
  const Index out_spatial = spatial_in / stride;
  b.add(prefix + ".conv1", mid, in_ch, spatial_in * spatial_in);
  b.add(prefix + ".conv2", mid, mid * 9, out_spatial * out_spatial);
  b.add(prefix + ".conv3", mid * 4, mid, out_spatial * out_spatial);
  if (in_ch != mid * 4 || stride != 1) {
    b.add(prefix + ".proj", mid * 4, in_ch, out_spatial * out_spatial);
    // Skip-path projection: not a Fig. 8 TASD-A target.
    b.net.layers.back().tasd_a_eligible = false;
  }
}

void add_basic(Builder& b, const std::string& prefix, Index in_ch, Index width,
               Index spatial_in, Index stride) {
  const Index out_spatial = spatial_in / stride;
  b.add(prefix + ".conv1", width, in_ch * 9, out_spatial * out_spatial);
  b.add(prefix + ".conv2", width, width * 9, out_spatial * out_spatial);
  if (in_ch != width || stride != 1) {
    b.add(prefix + ".proj", width, in_ch, out_spatial * out_spatial);
    b.net.layers.back().tasd_a_eligible = false;
  }
}

}  // namespace

NetworkWorkload resnet50_workload(bool sparse_weights, std::uint64_t seed) {
  Builder b;
  b.net.name = sparse_weights ? "sparse_resnet50" : "dense_resnet50";
  b.net.sparse_weights = sparse_weights;
  b.seed = seed;
  b.global_weight_sparsity = sparse_weights ? 0.95 : 0.0;
  b.expected_layers = kResNet50Layers;
  b.relu_net = true;

  b.add("stem", 64, 3 * 49, 112 * 112);
  const Index stage_blocks[4] = {3, 4, 6, 3};
  const Index stage_width[4] = {64, 128, 256, 512};
  const Index stage_spatial[4] = {56, 28, 14, 7};
  Index in_ch = 64;
  for (Index s = 0; s < 4; ++s) {
    for (Index blk = 0; blk < stage_blocks[s]; ++blk) {
      const Index stride = (s > 0 && blk == 0) ? 2 : 1;
      const Index spatial_in = stride == 2 ? stage_spatial[s] * 2
                                           : stage_spatial[s];
      add_bottleneck(b,
                     "s" + std::to_string(s) + ".b" + std::to_string(blk),
                     in_ch, stage_width[s], spatial_in, stride);
      in_ch = stage_width[s] * 4;
    }
  }
  b.add("fc", 1000, 2048, 1);
  b.net.layers.back().tasd_a_eligible = false;  // classifier head
  return std::move(b.net);
}

NetworkWorkload resnet34_workload(bool sparse_weights, std::uint64_t seed) {
  Builder b;
  b.net.name = sparse_weights ? "sparse_resnet34" : "dense_resnet34";
  b.net.sparse_weights = sparse_weights;
  b.seed = seed + 7;
  b.global_weight_sparsity = sparse_weights ? 0.95 : 0.0;
  b.expected_layers = kResNet34Layers;
  b.relu_net = true;

  b.add("stem", 64, 3 * 49, 112 * 112);
  const Index stage_blocks[4] = {3, 4, 6, 3};
  const Index stage_width[4] = {64, 128, 256, 512};
  const Index stage_spatial[4] = {56, 28, 14, 7};
  Index in_ch = 64;
  for (Index s = 0; s < 4; ++s) {
    for (Index blk = 0; blk < stage_blocks[s]; ++blk) {
      const Index stride = (s > 0 && blk == 0) ? 2 : 1;
      const Index spatial_in =
          stride == 2 ? stage_spatial[s] * 2 : stage_spatial[s];
      add_basic(b, "s" + std::to_string(s) + ".b" + std::to_string(blk), in_ch,
                stage_width[s], spatial_in, stride);
      in_ch = stage_width[s];
    }
  }
  b.add("fc", 1000, 512, 1);
  b.net.layers.back().tasd_a_eligible = false;  // classifier head
  return std::move(b.net);
}

NetworkWorkload bert_workload(bool sparse_weights, std::uint64_t seed) {
  Builder b;
  b.net.name = sparse_weights ? "sparse_bert" : "dense_bert";
  b.net.sparse_weights = sparse_weights;
  b.seed = seed + 13;
  b.global_weight_sparsity = sparse_weights ? 0.90 : 0.0;
  b.expected_layers = kBertLayers;
  b.relu_net = false;  // GELU: dense activations

  const Index d = 768;
  const Index tokens = 128;
  // 12 identical encoders; shapes stored once with repeat=12.
  b.add("enc.q", d, d, tokens, 12);
  b.add("enc.k", d, d, tokens, 12);
  b.add("enc.v", d, d, tokens, 12);
  b.add("enc.attn_out", d, d, tokens, 12);
  b.add("enc.fc1", 4 * d, d, tokens, 12);
  b.add("enc.fc2", d, 4 * d, tokens, 12);
  b.add("head", 2, d, 1);
  // Input provenance (paper §4.3 / Fig. 8): Q/K/V and the attention
  // output projection are not TASD-A targets, and their inputs are
  // LayerNorm outputs — dense AND unskewed. Only fc2 consumes the
  // magnitude-skewed GELU output.
  for (auto& l : b.net.layers) {
    if (l.name == "enc.fc2") {
      l.act_pseudo_density = 0.40;
    } else if (l.name == "head") {
      l.act_pseudo_density = 0.75;
    } else {
      l.act_pseudo_density = 0.76;
      if (l.name != "enc.fc1") l.tasd_a_eligible = false;
    }
  }
  return std::move(b.net);
}

NetworkWorkload decode_step_workload(Index hidden, Index kv_len,
                                     bool sparse_weights, std::uint64_t seed) {
  TASD_CHECK_MSG(hidden >= 1 && kv_len >= 1,
                 "decode_step_workload needs hidden >= 1 and kv_len >= 1");
  Builder b;
  b.net.name = (sparse_weights ? "sparse_decode_h" : "dense_decode_h") +
               std::to_string(hidden) + "_kv" + std::to_string(kv_len);
  b.net.sparse_weights = sparse_weights;
  b.seed = seed + 29;
  b.global_weight_sparsity = sparse_weights ? 0.90 : 0.0;
  b.expected_layers = 6;
  b.relu_net = false;  // GELU MLP: dense activations

  const Index h = hidden;
  // The chain invariant (layer k == previous layer m) is what makes the
  // stack a run_network/PipelinedExecutor input: q_proj (hxh) feeds
  // scores (kv x h, the K cache as weight), which feeds value mixing
  // (h x kv, V transposed), then out_proj and the MLP pair.
  b.add("dec.q_proj", h, h, 1);
  b.add("dec.scores", kv_len, h, 1);
  b.add("dec.attn_v", h, kv_len, 1);
  b.add("dec.out_proj", h, h, 1);
  b.add("dec.mlp_up", 4 * h, h, 1);
  b.add("dec.mlp_down", h, 4 * h, 1);
  for (auto& l : b.net.layers) {
    if (l.name == "dec.scores" || l.name == "dec.attn_v") {
      // KV-cache operands are activations, not weights: always dense,
      // never a TASD conversion target.
      l.weight_density = 1.0;
      l.tasd_a_eligible = false;
    } else if (l.name == "dec.q_proj" || l.name == "dec.out_proj") {
      // Attention projections consume LayerNorm outputs: excluded from
      // TASD-A per Fig. 8. (The MLP pair stays eligible.)
      l.tasd_a_eligible = false;
    }
  }
  return std::move(b.net);
}

std::vector<GemmWorkload> table4_layers() {
  // Table 4 dims, translated to our convention (M = output channels/
  // features, N = spatial positions/tokens, K = reduction).
  auto pick = [](const NetworkWorkload& net, Index m, Index k, Index n,
                 const std::string& label) {
    for (const auto& l : net.layers)
      if (l.m == m && l.k == k && l.n == n) {
        GemmWorkload copy = l;
        copy.name = label;
        return copy;
      }
    GemmWorkload fallback;
    fallback.name = label + " (synthetic)";
    fallback.m = m;
    fallback.k = k;
    fallback.n = n;
    return fallback;
  };

  const auto dense_rn50 = resnet50_workload(false, 42);
  const auto sparse_rn50 = resnet50_workload(true, 42);
  const auto dense_bert = bert_workload(false, 42);
  const auto sparse_bert = bert_workload(true, 42);

  std::vector<GemmWorkload> out;
  // Dense/sparse ResNet-50: L1 = s1 conv2 (M128-K1152-N784),
  // L2 = s0 conv2 (M64-K576-N3136), L3 = s2 conv2 (M256-K2304-N196).
  out.push_back(pick(dense_rn50, 128, 1152, 784, "dense_rn50/L1"));
  out.push_back(pick(dense_rn50, 64, 576, 3136, "dense_rn50/L2"));
  out.push_back(pick(dense_rn50, 256, 2304, 196, "dense_rn50/L3"));
  out.push_back(pick(sparse_rn50, 128, 1152, 784, "sparse_rn50/L1"));
  out.push_back(pick(sparse_rn50, 64, 576, 3136, "sparse_rn50/L2"));
  out.push_back(pick(sparse_rn50, 256, 2304, 196, "sparse_rn50/L3"));
  // BERT: L1 = QKV (768x768, N128), L2 = fc1 (3072x768), L3 = fc2.
  out.push_back(pick(dense_bert, 768, 768, 128, "dense_bert/L1"));
  out.push_back(pick(dense_bert, 3072, 768, 128, "dense_bert/L2"));
  out.push_back(pick(dense_bert, 768, 3072, 128, "dense_bert/L3"));
  out.push_back(pick(sparse_bert, 768, 768, 128, "sparse_bert/L1"));
  out.push_back(pick(sparse_bert, 3072, 768, 128, "sparse_bert/L2"));
  out.push_back(pick(sparse_bert, 768, 3072, 128, "sparse_bert/L3"));
  return out;
}

MatrixF materialize_weight(const GemmWorkload& layer) {
  Rng rng(layer.weight_seed);
  MatrixF w(layer.m, layer.k);
  const double stddev = std::sqrt(2.0 / static_cast<double>(layer.k));
  for (float& v : w.flat()) v = static_cast<float>(rng.normal(0.0, stddev));
  if (layer.structured_m > 0) {
    // Structured-pruned model: keep the N largest per M-block (exactly
    // what HW-aware fine-tuning would leave behind).
    w = sparse::nm_view(
        w, sparse::NMPattern(layer.structured_n, layer.structured_m));
  } else if (layer.weight_density < 1.0) {
    w = magnitude_prune(w, 1.0 - layer.weight_density);
  }
  return w;
}

}  // namespace tasd::dnn
