// N:M views (paper Fig. 2): the lossy projection of an arbitrary matrix
// onto an N:M pattern by keeping the N largest-magnitude elements per
// block. This single primitive is the building block of TASD terms.
#pragma once

#include "sparse/nm_matrix.hpp"
#include "sparse/pattern.hpp"
#include "tensor/matrix.hpp"

namespace tasd::sparse {

/// Keep the `pattern.n` largest-|value| elements of every M-aligned block
/// of each row, zeroing the rest. Ties are broken toward the lower column
/// index (deterministic). The result always satisfies `pattern`.
MatrixF nm_view(const MatrixF& matrix, const NMPattern& pattern);

/// Split `matrix` into (view, residual) where view = nm_view(matrix,
/// pattern) and residual = matrix - view computed by element *moves* (no
/// arithmetic): every element lands in exactly one of the two outputs, so
/// view + residual == matrix holds exactly in floating point.
struct ViewSplit {
  MatrixF view;
  MatrixF residual;
};
ViewSplit split_nm(const MatrixF& matrix, const NMPattern& pattern);

/// Extract the `pattern` view of `residual` directly into compressed
/// form, zeroing the extracted elements in `residual` in place.
/// Equivalent to split_nm followed by compressing the view — same
/// selection, same tie-breaking — but never materializes the dense view
/// (the execution-path variant used by DecompositionPlan).
NMSparseMatrix extract_term_inplace(MatrixF& residual,
                                    const NMPattern& pattern);

}  // namespace tasd::sparse
