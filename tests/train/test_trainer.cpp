#include "train/trainer.hpp"

#include <gtest/gtest.h>

namespace tasd::train {
namespace {

Dataset small_train() { return Dataset::synthetic(16, 4, 256, 0.6, 20, 21); }
Dataset small_test() { return Dataset::synthetic(16, 4, 128, 0.6, 20, 22); }

TEST(Dataset, SyntheticShapes) {
  const Dataset d = Dataset::synthetic(8, 3, 50, 0.5, 1, 2);
  EXPECT_EQ(d.inputs.rows(), 8u);
  EXPECT_EQ(d.inputs.cols(), 50u);
  EXPECT_EQ(d.labels.size(), 50u);
  for (Index l : d.labels) EXPECT_LT(l, 3u);
}

TEST(Dataset, RejectsDegenerateClassCount) {
  EXPECT_THROW(Dataset::synthetic(8, 1, 10, 0.5, 1, 2), Error);
}

TEST(Trainer, BaselineLearnsTheTask) {
  Mlp mlp({16, 32, 4}, 31);
  TrainOptions opt;
  opt.epochs = 15;
  const auto r = train(mlp, small_train(), small_test(), opt);
  // Loss decreases and accuracy ends well above the 25 % chance level.
  EXPECT_LT(r.loss_per_epoch.back(), r.loss_per_epoch.front());
  EXPECT_GT(r.final_test_accuracy, 0.7);
}

TEST(Trainer, LosslessHooksReproduceBaseline) {
  Mlp a({16, 32, 4}, 33);
  Mlp b({16, 32, 4}, 33);
  TrainOptions plain;
  plain.epochs = 5;
  TrainOptions hooked = plain;
  hooked.hooks.gradients = TasdConfig::parse("4:8+4:8");
  hooked.hooks.activations = TasdConfig::parse("4:8+4:8");
  const auto ra = train(a, small_train(), small_test(), plain);
  const auto rb = train(b, small_train(), small_test(), hooked);
  EXPECT_DOUBLE_EQ(ra.final_test_accuracy, rb.final_test_accuracy);
}

TEST(Trainer, MildTasdHooksPreserveConvergence) {
  // The §6.2 hypothesis: approximating backward operands with a
  // moderately sparse series still trains.
  Mlp plain_mlp({16, 32, 4}, 35);
  Mlp hooked_mlp({16, 32, 4}, 35);
  TrainOptions plain;
  plain.epochs = 15;
  TrainOptions hooked = plain;
  hooked.hooks.gradients = TasdConfig::parse("4:8");
  const auto rp = train(plain_mlp, small_train(), small_test(), plain);
  const auto rh = train(hooked_mlp, small_train(), small_test(), hooked);
  EXPECT_GT(rh.final_test_accuracy, rp.final_test_accuracy - 0.1);
}

TEST(Trainer, HookDescriptionRecordsConfigs) {
  Mlp mlp({16, 8, 4}, 37);
  TrainOptions opt;
  opt.epochs = 1;
  opt.hooks.activations = TasdConfig::parse("2:8");
  const auto r = train(mlp, small_train(), small_test(), opt);
  EXPECT_NE(r.hook_description.find("act=2:8"), std::string::npos);
  EXPECT_NE(r.hook_description.find("grad=none"), std::string::npos);
}

TEST(Trainer, RejectsInvalidOptions) {
  Mlp mlp({16, 8, 4}, 39);
  TrainOptions opt;
  opt.batch = 0;
  EXPECT_THROW(train(mlp, small_train(), small_test(), opt), Error);
}

}  // namespace
}  // namespace tasd::train
