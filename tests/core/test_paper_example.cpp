// The worked example of paper Fig. 4: a 2x8 matrix decomposed as
// 2:4 + 2:8, including every intermediate quantity the figure reports.
#include <gtest/gtest.h>

#include "core/approx_stats.hpp"
#include "core/decompose.hpp"

namespace tasd {
namespace {

/// The paper's matrix A (2x8): 6 zeros / 16 elements, element sum 25.
MatrixF paper_matrix() {
  return MatrixF(2, 8,
                 {1, 3, 0, 0, 2, 4, 4, 1,
                  2, 0, 0, 0, 0, 3, 1, 4});
}

TEST(PaperExample, MatrixProperties) {
  const MatrixF a = paper_matrix();
  EXPECT_EQ(a.size() - a.nnz(), 6u);
  EXPECT_DOUBLE_EQ(a.sparsity(), 0.375);
  double sum = 0.0;
  for (float v : a.flat()) sum += v;
  EXPECT_DOUBLE_EQ(sum, 25.0);
}

TEST(PaperExample, FirstTermIs24View) {
  const auto d = decompose(paper_matrix(), TasdConfig::parse("2:4"));
  ASSERT_EQ(d.terms.size(), 1u);
  const MatrixF expected(2, 8,
                         {1, 3, 0, 0, 0, 4, 4, 0,
                          2, 0, 0, 0, 0, 3, 0, 4});
  EXPECT_EQ(d.terms[0].dense, expected);
  // Fig. 4: A1 sums to 21, three non-zeros remain in the residual.
  double sum = 0.0;
  for (float v : d.terms[0].dense.flat()) sum += v;
  EXPECT_DOUBLE_EQ(sum, 21.0);
  EXPECT_EQ(d.residual.nnz(), 3u);
}

TEST(PaperExample, OneTermCoverage) {
  // Paper: the 2:4 term covers 70 % of non-zeros and 84 % of magnitude.
  const auto stats =
      approx_stats(paper_matrix(), TasdConfig::parse("2:4"));
  EXPECT_DOUBLE_EQ(stats.nnz_coverage(), 0.7);
  EXPECT_DOUBLE_EQ(stats.magnitude_coverage(), 21.0 / 25.0);
}

TEST(PaperExample, ThreeFourViewCoverage) {
  // Paper: a 3:4 structured decomposition drops only one non-zero,
  // covering 90 % of non-zeros and 96 % of magnitude.
  const auto stats =
      approx_stats(paper_matrix(), TasdConfig::parse("3:4"));
  EXPECT_DOUBLE_EQ(stats.nnz_coverage(), 0.9);
  EXPECT_DOUBLE_EQ(stats.magnitude_coverage(), 24.0 / 25.0);
}

TEST(PaperExample, SecondTermIs28ViewOfResidual) {
  const auto d = decompose(paper_matrix(), TasdConfig::parse("2:4+2:8"));
  ASSERT_EQ(d.terms.size(), 2u);
  const MatrixF expected_a2(2, 8,
                            {0, 0, 0, 0, 2, 0, 0, 1,
                             0, 0, 0, 0, 0, 0, 1, 0});
  EXPECT_EQ(d.terms[1].dense, expected_a2);
  double sum = 0.0;
  for (float v : d.terms[1].dense.flat()) sum += v;
  EXPECT_DOUBLE_EQ(sum, 4.0);  // Fig. 4: A2 sums to 4
}

TEST(PaperExample, TwoTermSeriesIsLossless) {
  // Fig. 4: A == A1(2:4) + A2(2:8) exactly.
  const auto d = decompose(paper_matrix(), TasdConfig::parse("2:4+2:8"));
  EXPECT_TRUE(d.lossless());
  EXPECT_EQ(d.approximation(), paper_matrix());
  const auto stats = approx_stats(paper_matrix(), d);
  EXPECT_DOUBLE_EQ(stats.dropped_nnz_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(stats.rel_frobenius_error, 0.0);
}

}  // namespace
}  // namespace tasd
