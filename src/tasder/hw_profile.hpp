// What TASDER knows about the target hardware (paper Fig. 5 inputs):
// the supported structured sparsity patterns, the TASD term budget, and
// whether dynamic (activation) decomposition units exist.
#pragma once

#include <vector>

#include "accel/arch.hpp"
#include "core/config.hpp"
#include "core/series_enum.hpp"

namespace tasd::tasder {

/// Hardware capabilities relevant to TASD configuration search.
struct HwProfile {
  std::string name;
  std::vector<sparse::NMPattern> patterns;
  int max_terms = 1;
  bool has_tasd_units = false;  ///< dynamic TASD-A possible

  /// All executable series, most aggressive (sparsest) first.
  [[nodiscard]] std::vector<TasdConfig> candidate_configs() const {
    return enumerate_configs(patterns, max_terms);
  }
};

/// Derive the profile from an accelerator design point. Dense / DSTC
/// designs yield an empty pattern set (TASDER will leave the model
/// untouched for them).
HwProfile hw_profile_from(const accel::ArchConfig& arch);

}  // namespace tasd::tasder
