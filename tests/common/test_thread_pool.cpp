// Tests for the shared parallel execution layer (common/parallel.hpp):
// coverage/exclusivity of the partition, serial fallback, reuse,
// exception propagation, nesting, and partition determinism.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace tasd::rt {
namespace {

TEST(ThreadPool, SerialPoolSpawnsNoWorkers) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.workers(), 0u);
  EXPECT_EQ(zero.num_threads(), 1u);
  ThreadPool one(1);
  EXPECT_EQ(one.workers(), 0u);
  EXPECT_EQ(one.num_threads(), 1u);
}

TEST(ThreadPool, ParallelPoolSpawnsWorkers) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  EXPECT_EQ(pool.workers(), 3u);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {0u, 1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    for (std::size_t len : {0u, 1u, 2u, 7u, 64u, 1000u}) {
      std::vector<std::atomic<int>> hits(len);
      pool.parallel_for(0, len, 1, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
      });
      for (std::size_t i = 0; i < len; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads
                                     << " len=" << len << " i=" << i;
    }
  }
}

TEST(ThreadPool, RespectsRangeOffset) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(20);
  pool.parallel_for(5, 15, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < 20; ++i)
    EXPECT_EQ(hits[i].load(), (i >= 5 && i < 15) ? 1 : 0) << "i=" << i;
}

TEST(ThreadPool, PartitionIsDeterministicAndOrdered) {
  ThreadPool pool(4);
  const auto a = pool.partition(103, 1);
  const auto b = pool.partition(103, 1);
  EXPECT_EQ(a, b);
  ASSERT_GE(a.size(), 2u);
  EXPECT_EQ(a.front(), 0u);
  EXPECT_EQ(a.back(), 103u);
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_LT(a[i - 1], a[i]);
  // At most num_threads chunks.
  EXPECT_LE(a.size() - 1, 4u);
}

TEST(ThreadPool, GrainLimitsChunkCount) {
  ThreadPool pool(8);
  // 20 iterations at grain 16 -> a single chunk.
  EXPECT_EQ(pool.partition(20, 16).size() - 1, 1u);
  // grain 5 -> at most 4 chunks.
  EXPECT_LE(pool.partition(20, 5).size() - 1, 4u);
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<long> sum{0};
    pool.parallel_for(0, 100, 1, [&](std::size_t b, std::size_t e) {
      long local = 0;
      for (std::size_t i = b; i < e; ++i) local += static_cast<long>(i);
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 4950);
  }
}

TEST(ThreadPool, PropagatesChunkException) {
  for (std::size_t threads : {0u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.parallel_for(0, 100, 1,
                          [&](std::size_t b, std::size_t) {
                            if (b == 0) throw Error("chunk failure");
                          }),
        Error);
    // Pool stays usable after a failed run.
    std::atomic<int> count{0};
    pool.parallel_for(0, 10, 1, [&](std::size_t b, std::size_t e) {
      count.fetch_add(static_cast<int>(e - b));
    });
    EXPECT_EQ(count.load(), 10);
  }
}

TEST(ThreadPool, RecoversAfterExceptionsAcrossManyRounds) {
  // A long-lived pool (the serving engine's execution substrate) must
  // survive arbitrary interleavings of throwing and clean rounds.
  for (std::size_t threads : {0u, 2u, 8u}) {
    ThreadPool pool(threads);
    for (int round = 0; round < 20; ++round) {
      if (round % 2 == 0) {
        EXPECT_THROW(
            pool.parallel_for(0, 64, 1,
                              [&](std::size_t b, std::size_t) {
                                if (b % 2 == 0) throw Error("round failure");
                              }),
            Error)
            << "threads=" << threads << " round=" << round;
      } else {
        std::atomic<long> sum{0};
        pool.parallel_for(0, 64, 1, [&](std::size_t b, std::size_t e) {
          long local = 0;
          for (std::size_t i = b; i < e; ++i) local += static_cast<long>(i);
          sum.fetch_add(local);
        });
        EXPECT_EQ(sum.load(), 2016)
            << "threads=" << threads << " round=" << round;
      }
    }
  }
}

TEST(ThreadPool, EveryChunkThrowingPropagatesExactlyOneException) {
  for (std::size_t threads : {0u, 2u, 8u}) {
    ThreadPool pool(threads);
    std::atomic<int> attempts{0};
    try {
      pool.parallel_for(0, 100, 1, [&](std::size_t, std::size_t) {
        attempts.fetch_add(1);
        throw Error("all chunks fail");
      });
      FAIL() << "should have thrown (threads=" << threads << ")";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("all chunks fail"),
                std::string::npos);
    }
    // Every chunk ran to its throw; none was abandoned mid-queue.
    EXPECT_EQ(attempts.load(),
              static_cast<int>(pool.partition(100, 1).size() - 1));
    std::atomic<int> count{0};
    pool.parallel_for(0, 10, 1, [&](std::size_t b, std::size_t e) {
      count.fetch_add(static_cast<int>(e - b));
    });
    EXPECT_EQ(count.load(), 10) << "pool unusable after mass failure";
  }
}

TEST(ThreadPool, NonTasdExceptionsPropagateToo) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 16, 1,
                                 [&](std::size_t b, std::size_t) {
                                   if (b == 0) throw std::bad_alloc();
                                 }),
               std::bad_alloc);
  std::atomic<int> count{0};
  pool.parallel_for(0, 16, 1, [&](std::size_t b, std::size_t e) {
    count.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, ExceptionInNestedParallelForReachesOuterCaller) {
  for (std::size_t threads : {0u, 2u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.parallel_for(0, 8, 1,
                          [&](std::size_t b, std::size_t) {
                            pool.parallel_for(
                                0, 4, 1, [&](std::size_t nb, std::size_t) {
                                  if (b == 0 && nb == 0)
                                    throw Error("nested failure");
                                });
                          }),
        Error)
        << "threads=" << threads;
    // Outer and inner levels both stay usable.
    std::atomic<int> total{0};
    pool.parallel_for(0, 4, 1, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        pool.parallel_for(0, 2, 1, [&](std::size_t nb, std::size_t ne) {
          total.fetch_add(static_cast<int>(ne - nb));
        });
      }
    });
    EXPECT_EQ(total.load(), 8) << "threads=" << threads;
  }
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  // Without the reentrancy guard this deadlocks (workers waiting on work
  // they themselves must execute).
  pool.parallel_for(0, 8, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      pool.parallel_for(0, 4, 1, [&](std::size_t nb, std::size_t ne) {
        total.fetch_add(static_cast<int>(ne - nb));
      });
    }
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(5, 5, 1,
                    [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, DefaultPoolIsConsistent) {
  EXPECT_GE(default_num_threads(), 1u);
  EXPECT_EQ(default_pool().num_threads(), default_num_threads());
  std::atomic<int> count{0};
  parallel_for(0, 17, 1, [&](std::size_t b, std::size_t e) {
    count.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(count.load(), 17);
}

}  // namespace
}  // namespace tasd::rt
