// Wall-clock timing for the CPU runtime experiments.
#pragma once

#include <chrono>

namespace tasd {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace tasd
