#include "runtime/pipelined_executor.hpp"

#include <array>
#include <memory>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "runtime/dense_gemm.hpp"
#include "tensor/generator.hpp"

namespace tasd::rt {

PipelinedExecutor::PipelinedExecutor(const CompiledNetwork& net) : net_(net) {
  TASD_CHECK_MSG(net.layer_count() >= 1,
                 "PipelinedExecutor needs at least one layer");
  for (std::size_t l = 1; l < net.layer_count(); ++l) {
    const auto& prev = net.layer(l - 1);
    const auto& cur = net.layer(l);
    if (cur.k != prev.m) {
      throw Error(Error::Code::kFailedPrecondition,
                  "layers do not chain: layer '" + cur.name + "' expects a " +
                      std::to_string(cur.k) +
                      "-row input but layer '" + prev.name + "' produces " +
                      std::to_string(prev.m) + " rows");
    }
  }
}

std::vector<std::pair<std::size_t, std::size_t>> PipelinedExecutor::chunks(
    std::size_t items) const {
  if (items == 0) return {};
  std::size_t count = 1;
  if (!pipelining_is_noop(items)) {
    // One chunk per pool worker, capped at one item per chunk: enough
    // chunks that every worker has a pipeline stage to run, and no more
    // — each extra chunk repeats the per-layer weight traversal its
    // batch kernel would otherwise amortize.
    count = std::min(items, resolve_pool(net_.policy()).num_threads());
  }
  std::vector<std::pair<std::size_t, std::size_t>> out;
  out.reserve(count);
  const std::size_t base = items / count;
  const std::size_t extra = items % count;
  std::size_t begin = 0;
  for (std::size_t c = 0; c < count; ++c) {
    const std::size_t size = base + (c < extra ? 1 : 0);
    out.emplace_back(begin, begin + size);
    begin += size;
  }
  return out;
}

std::vector<PipelinedExecutor::ScheduleNode> PipelinedExecutor::schedule(
    std::size_t items) const {
  const std::size_t layers = net_.layer_count();
  const std::size_t count = chunks(items).size();
  std::vector<ScheduleNode> nodes;
  nodes.reserve(count * layers);
  for (std::size_t c = 0; c < count; ++c) {
    for (std::size_t l = 0; l < layers; ++l) {
      ScheduleNode node;
      node.chunk = c;
      node.layer = l;
      if (l > 0) node.deps.push_back(nodes.size() - 1);
      nodes.push_back(std::move(node));
    }
  }
  return nodes;
}

bool PipelinedExecutor::pipelining_is_noop(std::size_t items) const {
  return items < 2 || net_.layer_count() < 2 ||
         resolve_pool(net_.policy()).num_threads() < 2;
}

MatrixF PipelinedExecutor::run(const MatrixF& input) const {
  return net_.run_network(input);
}

std::vector<MatrixF> PipelinedExecutor::run_batch(
    std::span<const MatrixF> inputs) const {
  if (inputs.empty()) return {};
  // Degenerate schedules carry no overlappable work: execute the
  // sequential path, which performs the same arithmetic (bit-identical
  // by the batched-equals-looped kernel contract).
  if (pipelining_is_noop(inputs.size()))
    return net_.run_network_batch(inputs);

  const std::size_t layers = net_.layer_count();
  const auto ranges = chunks(inputs.size());
  // Two activation buffers per chunk, ping-ponged between layers:
  // layer l reads slot[l % 2] (layer 0 reads the caller's inputs) and
  // writes slot[(l + 1) % 2]. Only one node per chunk is ever in
  // flight (the chain edge), so reader and writer never race, and each
  // chunk holds at most two activation sets however deep the network.
  std::vector<std::array<std::vector<MatrixF>, 2>> slots(ranges.size());

  TaskGraph graph;
  for (std::size_t c = 0; c < ranges.size(); ++c) {
    TaskGraph::TaskId prev = 0;
    for (std::size_t l = 0; l < layers; ++l) {
      const std::vector<TaskGraph::TaskId> deps =
          l == 0 ? std::vector<TaskGraph::TaskId>{}
                 : std::vector<TaskGraph::TaskId>{prev};
      prev = graph.add(
          [this, &inputs, &slots, &ranges, c, l] {
            const std::span<const MatrixF> src =
                l == 0 ? inputs.subspan(ranges[c].first,
                                        ranges[c].second - ranges[c].first)
                       : std::span<const MatrixF>(slots[c][l % 2]);
            // The artifact's own bound batch kernel on this chunk; its
            // nested parallel_for runs inline on the claiming worker,
            // so the node is one serial kernel call and overlap happens
            // across nodes, never inside one.
            slots[c][(l + 1) % 2] = net_.run_batch(l, src);
          },
          deps);
    }
  }
  graph.run(resolve_pool(net_.policy()));

  std::vector<MatrixF> out;
  out.reserve(inputs.size());
  for (std::size_t c = 0; c < ranges.size(); ++c)
    for (MatrixF& m : slots[c][layers % 2]) out.push_back(std::move(m));
  return out;
}

CompileMeasureResult compile_and_measure(
    const dnn::NetworkWorkload& net,
    const std::vector<std::optional<TasdConfig>>& configs,
    const CompileOptions& opt) {
  TASD_CHECK_MSG(configs.size() == net.layers.size(),
                 "config list must align with workload layers");
  TASD_CHECK_MSG(opt.measure.use_plan_cache,
                 "compile_and_measure requires the plan cache (prewarmed "
                 "plans reach the compile step through it)");
  TASD_CHECK_MSG(opt.n_divisor >= 1, "n_divisor must be >= 1");

  auto bindings = dnn::bind_layers(net, configs);

  // Resolve the measurement policy the artifact will use, so the timed
  // kernels here are the ones run()/measure() will bind.
  const auto& dispatch = GemmDispatch::instance();
  ExecPolicy policy;
  policy.dense_kernel = opt.dense_kernel == "auto" ? dispatch.best_dense()
                                                   : opt.dense_kernel;
  policy.nm_kernel =
      opt.nm_kernel == "auto" ? dispatch.best_nm() : opt.nm_kernel;
  std::unique_ptr<ThreadPool> dedicated;
  if (opt.measure.num_threads != 0)
    dedicated = std::make_unique<ThreadPool>(opt.measure.num_threads);
  ThreadPool& pool = dedicated ? *dedicated : default_pool();
  policy.pool = &pool;

  // Pre-generate every layer's measurement input with the same one Rng
  // stream measure() draws from, in layer order, so the data is
  // identical whichever path measured it.
  Rng rng(opt.measure.data_seed);
  std::vector<MatrixF> bs;
  std::vector<LayerTiming> timings(bindings.size());
  bs.reserve(bindings.size());
  for (std::size_t l = 0; l < bindings.size(); ++l) {
    LayerTiming& t = timings[l];
    t.name = bindings[l].name;
    t.m = bindings[l].weight.rows();
    t.k = bindings[l].weight.cols();
    t.n = measured_n(bindings[l].positions, opt.n_divisor);
    t.config = bindings[l].config;
    bs.push_back(random_dense(t.k, t.n, Dist::kNormalStd1, rng));
  }

  // The overlap graph: prewarm node P_l per configured layer (the
  // layer's one decomposition, through the shared cache), measurement
  // node M_l depending on {P_l, M_{l-1}} — measurements stay mutually
  // serialized so they never time each other's noise, while spare
  // workers decompose layers the measurement pass has not reached yet.
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::shared_ptr<const DecompositionPlan>> plans(bindings.size());
  TaskGraph graph;
  std::size_t prev_measure = kNone;
  volatile float sink = 0.0F;  // defeat dead-code elimination
  for (std::size_t l = 0; l < bindings.size(); ++l) {
    std::size_t prewarm = kNone;
    if (bindings[l].config) {
      prewarm = graph.add([&bindings, &plans, l] {
        plans[l] =
            plan_cache().get_or_build(bindings[l].weight, *bindings[l].config);
      });
    }
    std::vector<TaskGraph::TaskId> deps;
    if (prewarm != kNone) deps.push_back(prewarm);
    if (prev_measure != kNone) deps.push_back(prev_measure);
    prev_measure = graph.add(
        [&bindings, &plans, &bs, &timings, &policy, &opt, &sink, l] {
          LayerTiming& t = timings[l];
          t.dense_ms = time_ms_min(opt.measure.repeats, [&] {
            const MatrixF c = dense_gemm(bindings[l].weight, bs[l], policy);
            sink = sink + c(0, 0);
          });
          if (plans[l]) {
            const TasdSeriesGemm series(plans[l]);
            t.kept_nnz_fraction =
                static_cast<double>(series.nnz()) /
                static_cast<double>(bindings[l].weight.size());
            t.tasd_ms = time_ms_min(opt.measure.repeats, [&] {
              const MatrixF c = series.multiply(bs[l], policy);
              sink = sink + c(0, 0);
            });
          }
        },
        deps);
  }
  graph.run(pool);

  // Every configured layer's plan is now cached: this compile performs
  // zero decompositions and the artifact meets the usual prewarm
  // contract.
  CompileMeasureResult result{compile(net.name, std::move(bindings), opt),
                              std::move(timings)};
  return result;
}

}  // namespace tasd::rt
