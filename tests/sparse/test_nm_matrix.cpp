#include "sparse/nm_matrix.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sparse/view.hpp"
#include "tensor/generator.hpp"

namespace tasd::sparse {
namespace {

TEST(NMSparseMatrix, RejectsNonConformingInput) {
  MatrixF dense(2, 8, 1.0F);
  EXPECT_THROW(NMSparseMatrix(dense, NMPattern(2, 4)), tasd::Error);
}

TEST(NMSparseMatrix, RoundTripExact) {
  Rng rng(21);
  const MatrixF m = random_nm_structured(8, 32, 2, 4, Dist::kNormalStd1, rng);
  const NMSparseMatrix c(m, NMPattern(2, 4));
  EXPECT_EQ(c.to_dense(), m);  // bit-exact
  EXPECT_EQ(c.nnz(), m.nnz());
}

TEST(NMSparseMatrix, RoundTripRaggedColumns) {
  Rng rng(22);
  // 10 columns with M=4: final block is 2 wide.
  const MatrixF m = random_nm_structured(3, 10, 1, 4, Dist::kNormalStd1, rng);
  const NMSparseMatrix c(m, NMPattern(1, 4));
  EXPECT_EQ(c.to_dense(), m);
  EXPECT_EQ(c.blocks_per_row(), 3u);  // ceil(10/4)
}

TEST(NMSparseMatrix, SparsityMatchesDense) {
  Rng rng(23);
  const MatrixF m = random_nm_structured(4, 16, 2, 8, Dist::kNormalStd1, rng);
  const NMSparseMatrix c(m, NMPattern(2, 8));
  EXPECT_DOUBLE_EQ(c.sparsity(), m.sparsity());
}

TEST(NMSparseMatrix, StorageSmallerThanDense) {
  Rng rng(24);
  const MatrixF m = random_nm_structured(16, 64, 2, 8, Dist::kNormalStd1, rng);
  const NMSparseMatrix c(m, NMPattern(2, 8));
  // 2:8 keeps 1/4 of the values: compressed size should be well under
  // half the dense footprint even with metadata.
  EXPECT_LT(c.storage_bytes(), c.dense_bytes() / 2);
}

TEST(NMSparseMatrix, StorageAccountsReservedSlots) {
  // Hardware reserves N slots per block regardless of occupancy: an
  // all-zero matrix still pays for the slots.
  MatrixF zeros(4, 16);
  const NMSparseMatrix c(zeros, NMPattern(2, 4));
  EXPECT_GT(c.storage_bytes(), 0u);
  EXPECT_EQ(c.nnz(), 0u);
}

TEST(NMSparseMatrix, EmptyMatrix) {
  MatrixF empty(0, 0);
  const NMSparseMatrix c(empty, NMPattern(2, 4));
  EXPECT_EQ(c.nnz(), 0u);
  EXPECT_EQ(c.to_dense().size(), 0u);
}

TEST(NMSparseMatrix, ViewThenCompressAlwaysWorks) {
  Rng rng(25);
  // Arbitrary unstructured matrix: project to a view first, then
  // compression must accept it.
  const MatrixF m = random_unstructured(8, 32, 0.7, Dist::kNormalStd1, rng);
  const MatrixF v = nm_view(m, NMPattern(2, 4));
  EXPECT_NO_THROW(NMSparseMatrix(v, NMPattern(2, 4)));
}

TEST(NMSparseMatrix, BlockOffsetsConsistent) {
  Rng rng(26);
  const MatrixF m = random_nm_structured(4, 16, 3, 8, Dist::kNormalStd1, rng);
  const NMSparseMatrix c(m, NMPattern(3, 8));
  const auto& off = c.block_offsets();
  ASSERT_EQ(off.size(), 4u * 2u + 1u);
  EXPECT_EQ(off.front(), 0u);
  EXPECT_EQ(off.back(), c.nnz());
  for (std::size_t i = 1; i < off.size(); ++i) {
    EXPECT_LE(off[i - 1], off[i]);
    EXPECT_LE(off[i] - off[i - 1], 3u);  // at most N per block
  }
}

}  // namespace
}  // namespace tasd::sparse
