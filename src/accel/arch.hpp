// Accelerator architecture configurations (paper Table 3).
#pragma once

#include <string>
#include <vector>

#include "core/config.hpp"
#include "sparse/pattern.hpp"

namespace tasd::accel {

/// Hardware family.
enum class HwKind {
  kDenseTC,  ///< dense tensor core — no sparsity support
  kDSTC,     ///< dual-side unstructured sparse tensor core
  kTTC,      ///< structured sparse core (STC/VEGETA) + TASD extension
};

/// One accelerator design point. All designs share the PE count and
/// memory hierarchy (paper §5.1).
struct ArchConfig {
  std::string name;
  HwKind kind = HwKind::kDenseTC;

  // PE array: engines laid out 2x2, each rows x cols MACs.
  Index num_engines = 4;
  Index pe_rows = 16;
  Index pe_cols = 16;

  // Structured sparsity support (TTC kinds only).
  std::vector<sparse::NMPattern> supported_patterns;
  int max_tasd_terms = 1;

  /// TTC extension: dynamic TASD units for activations. Without them the
  /// design is a plain structured accelerator (VEGETA/STC) that can only
  /// use pre-decomposed (weight) operands.
  bool has_tasd_units = false;
  Index tasd_units_per_engine = 16;

  /// The Fig. 11 decomposition-aware dataflow: keep C tiles resident in
  /// L1/RF across TASD terms (extra-term re-accumulation charged at L1).
  /// When disabled, each term streams its partial C through DRAM — the
  /// naive multi-pass execution the dataflow is designed to avoid
  /// (ablation knob).
  bool decomposition_aware_dataflow = true;

  /// MACs available per cycle.
  [[nodiscard]] Index macs_per_cycle() const {
    return num_engines * pe_rows * pe_cols;
  }

  /// Output-tile dims (engines arranged 2x2).
  [[nodiscard]] Index tile_m() const { return pe_rows * 2; }
  [[nodiscard]] Index tile_n() const { return pe_cols * 2; }

  /// Block size M of the structured support (0 when none).
  [[nodiscard]] int block_size() const;

  /// Can this design execute the given series? (every term's pattern must
  /// be natively supported, and the term count within max_tasd_terms).
  [[nodiscard]] bool supports(const TasdConfig& cfg) const;

  // ----- the six designs evaluated in the paper (Table 3) -----
  static ArchConfig dense_tc();
  static ArchConfig dstc();
  static ArchConfig ttc_stc_m4();
  static ArchConfig ttc_stc_m8();
  static ArchConfig ttc_vegeta_m4();
  static ArchConfig ttc_vegeta_m8();

  /// Plain VEGETA-M8 without the TASD-unit extension (Fig. 19 ablation).
  static ArchConfig vegeta_m8_no_tasd();

  /// All six Table 3 designs in paper order.
  static std::vector<ArchConfig> paper_designs();
};

}  // namespace tasd::accel
