// Figure 17 (Appendix A): dropped-non-zero and dropped-magnitude
// percentages vs original density for 1/2/3-term TASD series on a
// 128x128 synthetic matrix, N(0, 1/3) values.
//
// Paper takeaways: (1) at low density, two terms already drop < 1 % of
// non-zeros; (2) dropped magnitude % < dropped count % (greedy keeps the
// largest elements).
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/approx_stats.hpp"
#include "tensor/generator.hpp"

using namespace tasd;

int main() {
  print_banner("Figure 17: synthetic TASD quality vs density (128x128, "
               "N(0,1/3))");

  const std::vector<const char*> series = {"2:4", "2:4+2:8", "2:4+2:8+2:16"};
  const std::vector<double> densities = {0.10, 0.20, 0.30, 0.40,
                                         0.50, 0.60, 0.75};

  TextTable t;
  t.header({"density", "series", "dropped nnz %", "dropped magnitude %"});
  for (double density : densities) {
    Rng rng(1700 + static_cast<std::uint64_t>(density * 100));
    const MatrixF m =
        random_unstructured(128, 128, density, Dist::kNormal, rng);
    for (const char* s : series) {
      const auto stats = approx_stats(m, TasdConfig::parse(s));
      t.row({TextTable::num(density, 2), s,
             TextTable::pct(stats.dropped_nnz_fraction(), 2),
             TextTable::pct(stats.dropped_magnitude_fraction(), 2)});
    }
  }
  t.print();

  // Appendix A also observes that the dropped-count percentage is nearly
  // distribution-independent while dropped magnitude varies slightly and
  // MSE varies a lot.
  std::cout << "\nDistribution sensitivity (density 0.5, series 2:4+2:8):\n";
  TextTable d;
  d.header({"distribution", "dropped nnz %", "dropped magnitude %", "MSE"});
  for (auto [name, dist] :
       {std::pair<const char*, Dist>{"uniform[0,1)", Dist::kUniform01},
        std::pair<const char*, Dist>{"normal(0,1/3)", Dist::kNormal},
        std::pair<const char*, Dist>{"normal(0,1)", Dist::kNormalStd1}}) {
    Rng rng(1750);
    const MatrixF m = random_unstructured(128, 128, 0.5, dist, rng);
    const auto stats = approx_stats(m, TasdConfig::parse("2:4+2:8"));
    d.row({name, TextTable::pct(stats.dropped_nnz_fraction(), 2),
           TextTable::pct(stats.dropped_magnitude_fraction(), 2),
           TextTable::num(stats.mse, 6)});
  }
  d.print();

  std::cout << "\nPaper shape check: dropped fractions grow with density "
               "and shrink with extra terms;\nat density 0.1-0.2 the "
               "two-term series drops <1% of non-zeros; magnitude% < "
               "count%;\ndropped-count % is distribution-insensitive while "
               "MSE varies strongly.\n";
  return 0;
}
